package fpdyn

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (see DESIGN.md §3 for the index), plus the
// ablation benches for the design choices called out in DESIGN.md §4.
// Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks measure the *regeneration cost* of each artifact on a
// shared synthetic world; the artifacts themselves are printed by
// cmd/fpreport and cmd/fpstalker.

import (
	"sync"
	"testing"
	"time"

	"fpdyn/internal/browserid"
	"fpdyn/internal/canvas"
	"fpdyn/internal/correlate"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/fpstalker"
	"fpdyn/internal/inference"
	"fpdyn/internal/linker"
	"fpdyn/internal/mlearn"
	"fpdyn/internal/population"
	"fpdyn/internal/stats"
	"fpdyn/internal/useragent"
)

type benchWorld struct {
	ds      *population.Dataset
	gt      *browserid.GroundTruth
	dyns    []*dynamics.Dynamics
	changed []*dynamics.Dynamics
	cl      *dynamics.Classifier
}

var (
	worldOnce sync.Once
	bw        benchWorld
)

func world(b *testing.B) *benchWorld {
	worldOnce.Do(func() {
		cfg := population.DefaultConfig(2500)
		cfg.Seed = 42
		bw.ds = population.Simulate(cfg)
		bw.gt = browserid.Build(bw.ds.Records)
		bw.dyns = dynamics.Generate(bw.gt)
		bw.changed = dynamics.Changed(bw.dyns)
		bw.cl = &dynamics.Classifier{Images: dynamics.MapImages(bw.ds.CanvasImages)}
	})
	return &bw
}

// --- Table/Figure regeneration benches -------------------------------

func BenchmarkFigure2AnonymitySets(b *testing.B) {
	w := world(b)
	inst := func(i int) string { return w.gt.IDs[i] }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.AnonymitySets(w.ds.Records, inst, true, 10)
	}
}

func BenchmarkTable1FeatureStats(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.FeatureTable(w.ds.Records, w.dyns)
	}
}

func BenchmarkFigure3IdentifierBreakdown(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.UserBrowserCookie(w.gt)
	}
}

func BenchmarkFigure4VisitSeries(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.VisitSeries(w.ds.Records, w.gt.IDs, 7*24*time.Hour)
	}
}

func BenchmarkFigure5And6TypeBreakdown(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.TypeBreakdown(w.gt)
	}
}

func BenchmarkFigure7Stability(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.StabilityBreakdown(w.gt, 12)
	}
}

func BenchmarkTable2Classification(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dynamics.Analyze(w.changed, w.cl, w.gt.NumInstances())
	}
}

func BenchmarkFigure8EmojiPixelDiff(b *testing.B) {
	before := canvas.Render(canvas.Params{TextEngine: 3, TextWidth: 2, EmojiMajor: 6})
	after := canvas.Render(canvas.Params{TextEngine: 3, TextWidth: 2, EmojiMajor: 7})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := canvas.Diff(before, after)
		if !d.EmojiOnly() {
			b.Fatal("figure 8 diff must be emoji-only")
		}
	}
}

// evolvedQuery builds a plausible non-exact query from a known record.
func evolvedQuery(rec *fingerprint.Record) *fingerprint.Record {
	cp := *rec
	fp := rec.FP.Clone()
	fp.CanvasHash = "evolved"
	fp.TimezoneOffset += 60
	cp.FP = fp
	cp.Time = rec.Time.Add(24 * time.Hour)
	return &cp
}

// engineModes are the two matching-engine configurations every Figure 9
// bench compares: the paper's serial linear scan and the blocked,
// parallel engine.
var engineModes = []struct {
	name       string
	noBlocking bool
	workers    int
}{
	{"scan", true, 1},
	{"engine", false, 0},
}

func BenchmarkFigure9MatchTimeRule(b *testing.B) {
	w := world(b)
	for _, size := range []int{1000, 4000, len(w.ds.Records)} {
		for _, mode := range engineModes {
			b.Run(itoa(size)+"/"+mode.name, func(b *testing.B) {
				l := fpstalker.NewRuleLinker()
				l.NoBlocking = mode.noBlocking
				l.Workers = mode.workers
				for i := 0; i < size && i < len(w.ds.Records); i++ {
					l.Add(fpstalker.InstanceID(w.ds.TrueInstance[i]), w.ds.Records[i])
				}
				q := evolvedQuery(w.ds.Records[size/2])
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					l.TopK(q, 10)
				}
			})
		}
	}
}

func BenchmarkFigure9MatchTimeLearning(b *testing.B) {
	w := world(b)
	n := len(w.ds.Records) / 2
	forest, err := fpstalker.TrainPairModel(w.ds.Records[:n], w.ds.TrueInstance[:n],
		mlearn.ForestConfig{Seed: 1, NumTrees: 10, MaxDepth: 8})
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{1000, 4000} {
		for _, mode := range engineModes {
			b.Run(itoa(size)+"/"+mode.name, func(b *testing.B) {
				l := fpstalker.NewLearnLinker(forest)
				l.NoBlocking = mode.noBlocking
				l.Workers = mode.workers
				for i := 0; i < size; i++ {
					l.Add(fpstalker.InstanceID(w.ds.TrueInstance[i]), w.ds.Records[i])
				}
				q := evolvedQuery(w.ds.Records[size/2])
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					l.TopK(q, 10)
				}
			})
		}
	}
}

// BenchmarkTopKBlocked isolates the candidate-blocking lever: serial
// scoring either over the whole table (the paper's scan) or only the
// query's (browser, OS, mobile) bucket.
func BenchmarkTopKBlocked(b *testing.B) {
	w := world(b)
	q := evolvedQuery(w.ds.Records[len(w.ds.Records)/2])
	for _, mode := range []struct {
		name       string
		noBlocking bool
	}{{"scan", true}, {"blocked", false}} {
		b.Run(mode.name, func(b *testing.B) {
			l := fpstalker.NewRuleLinker()
			l.NoBlocking = mode.noBlocking
			l.Workers = 1
			for i, rec := range w.ds.Records {
				l.Add(fpstalker.InstanceID(w.ds.TrueInstance[i]), rec)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.TopK(q, 10)
			}
		})
	}
}

// BenchmarkTopKParallel isolates the worker-pool lever: the full
// unblocked table scored serially versus across all cores, for both
// FP-Stalker variants (the learning one's per-pair forest evaluation
// parallelizes best).
func BenchmarkTopKParallel(b *testing.B) {
	w := world(b)
	n := len(w.ds.Records) / 2
	forest, err := fpstalker.TrainPairModel(w.ds.Records[:n], w.ds.TrueInstance[:n],
		mlearn.ForestConfig{Seed: 1, NumTrees: 10, MaxDepth: 8})
	if err != nil {
		b.Fatal(err)
	}
	q := evolvedQuery(w.ds.Records[len(w.ds.Records)/2])
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run("rule/"+mode.name, func(b *testing.B) {
			l := fpstalker.NewRuleLinker()
			l.NoBlocking = true
			l.Workers = mode.workers
			for i, rec := range w.ds.Records {
				l.Add(fpstalker.InstanceID(w.ds.TrueInstance[i]), rec)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.TopK(q, 10)
			}
		})
		b.Run("learning/"+mode.name, func(b *testing.B) {
			l := fpstalker.NewLearnLinker(forest)
			l.NoBlocking = true
			l.Workers = mode.workers
			for i, rec := range w.ds.Records {
				l.Add(fpstalker.InstanceID(w.ds.TrueInstance[i]), rec)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.TopK(q, 10)
			}
		})
	}
}

func BenchmarkFigure10F1Rule(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := fpstalker.Evaluate(fpstalker.NewRuleLinker(), w.ds.Records, w.ds.TrueInstance, 10)
		if res.F1() == 0 {
			b.Fatal("zero F1")
		}
	}
}

func BenchmarkFigure10F1Learning(b *testing.B) {
	w := world(b)
	n := len(w.ds.Records) / 2
	forest, err := fpstalker.TrainPairModel(w.ds.Records[:n], w.ds.TrueInstance[:n],
		mlearn.ForestConfig{Seed: 1, NumTrees: 10, MaxDepth: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fpstalker.Evaluate(fpstalker.NewLearnLinker(forest), w.ds.Records, w.ds.TrueInstance, 10)
	}
}

func BenchmarkFigure11CaseStudies(b *testing.B) {
	// The four crafted FP/FN pairs, evaluated against a fresh linker.
	mobile := useragent.UA{Browser: useragent.ChromeMobile, BrowserVersion: useragent.V(77, 0, 3865, 92),
		OS: useragent.Android, OSVersion: useragent.V(9), Device: "SM-N960U", Mobile: true}
	known := &fingerprint.Record{FP: &fingerprint.Fingerprint{
		UserAgent: mobile.String(), CookieEnabled: true, LocalStorage: true, WebGL: true,
		CPUCores: 4, CanvasHash: "c", GPUImageHash: "g",
	}}
	queries := []*fingerprint.Record{}
	q1 := &fingerprint.Record{FP: known.FP.Clone()}
	q1.FP.UserAgent = mobile.RequestDesktop().String()
	q2 := &fingerprint.Record{FP: known.FP.Clone()}
	q2.FP.CookieEnabled, q2.FP.LocalStorage = false, false
	q3 := &fingerprint.Record{FP: known.FP.Clone()}
	q3.FP.CPUCores = 2
	queries = append(queries, q1, q2, q3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := fpstalker.NewRuleLinker()
		l.Add("known", known)
		for _, q := range queries {
			l.TopK(q, 10)
		}
	}
}

func BenchmarkTable3UpdateCorrelations(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		correlate.UpdateCorrelations(w.changed, w.cl)
	}
}

func BenchmarkFigure12AdoptionSeries(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		correlate.AdoptionSeries(w.changed, useragent.Chrome, 64,
			w.ds.Cfg.Start, w.ds.Cfg.End, 7*24*time.Hour, w.gt.NumInstances())
	}
}

func BenchmarkInsight1EmojiLeaks(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inference.EmojiLeaks(w.changed, w.cl)
	}
}

func BenchmarkInsight1SoftwareFromFonts(b *testing.B) {
	w := world(b)
	latest := map[string]*fingerprint.Fingerprint{}
	for id, recs := range w.gt.Instances {
		latest[id] = recs[len(recs)-1].FP
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inference.SoftwareFromFonts(w.changed, latest)
	}
}

func BenchmarkInsight1GPUInference(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inference.GPUInference(w.ds.Records, w.ds.GPUImageInfo)
	}
}

func BenchmarkInsight1Velocity(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inference.Velocity(w.gt.Instances, w.ds.Geo)
	}
}

func BenchmarkInsight3ImplicitCorrelations(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		correlate.Implicit(w.changed, 3)
	}
}

func BenchmarkGroundTruthBuild(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		browserid.Build(w.ds.Records)
	}
}

func BenchmarkDynamicsGeneration(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dynamics.Generate(w.gt)
	}
}

// --- Ablation benches (DESIGN.md §4) ----------------------------------

// BenchmarkAblationDeltaVsPair measures the §2.3 representation choice:
// the distinct-value compression that canonical deltas buy over raw
// fingerprint pairs.
func BenchmarkAblationDeltaVsPair(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairs, deltas, ratio := stats.DeltaCompression(w.changed)
		if pairs < deltas || ratio < 1 {
			b.Fatalf("compression inverted: %d pairs, %d deltas", pairs, deltas)
		}
	}
}

// BenchmarkAblationLinkerCache measures Advice 6: the exact-match hash
// index versus the full scan for exact re-presentations.
func BenchmarkAblationLinkerCache(b *testing.B) {
	w := world(b)
	build := func(noIndex bool) *fpstalker.RuleLinker {
		l := fpstalker.NewRuleLinker()
		l.NoExactIndex = noIndex
		for i, rec := range w.ds.Records {
			l.Add(fpstalker.InstanceID(w.ds.TrueInstance[i]), rec)
		}
		return l
	}
	q := w.ds.Records[len(w.ds.Records)-1]
	b.Run("indexed", func(b *testing.B) {
		l := build(false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.TopK(q, 10)
		}
	})
	b.Run("scan", func(b *testing.B) {
		l := build(true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.TopK(q, 10)
		}
	})
}

// BenchmarkExtensionHybridLinker compares the dynamics-aware hybrid
// linker (the paper's Advices 5–8, implemented in internal/linker)
// against rule-based FP-Stalker on the same replay.
func BenchmarkExtensionHybridLinker(b *testing.B) {
	w := world(b)
	b.Run("rule-evaluate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fpstalker.Evaluate(fpstalker.NewRuleLinker(), w.ds.Records, w.ds.TrueInstance, 10)
		}
	})
	b.Run("hybrid-evaluate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fpstalker.Evaluate(linker.New(), w.ds.Records, w.ds.TrueInstance, 10)
		}
	})
}

// BenchmarkAblationCanvasHashVsPixels measures §2.3.2's choice of hash
// pairs over pixel diffs for canvas dynamics.
func BenchmarkAblationCanvasHashVsPixels(b *testing.B) {
	x := canvas.Render(canvas.Params{EmojiMajor: 1})
	y := canvas.Render(canvas.Params{EmojiMajor: 2})
	hx, hy := x.Hash(), y.Hash()
	b.Run("hash-pair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if hx == hy {
				b.Fatal("hashes equal")
			}
		}
	})
	b.Run("pixel-diff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if canvas.Diff(x, y).Changed == 0 {
				b.Fatal("no diff")
			}
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
