package fpdyn_test

import (
	"fmt"
	"testing"

	"fpdyn"
)

// TestFacadePipeline exercises the whole public surface.
func TestFacadePipeline(t *testing.T) {
	ds := fpdyn.Simulate(fpdyn.DefaultConfig(200))
	gt := fpdyn.BuildGroundTruth(ds.Records)
	if gt.NumInstances() == 0 {
		t.Fatal("no instances")
	}
	dyns := fpdyn.ChangedDynamics(gt)
	if len(dyns) == 0 {
		t.Fatal("no dynamics")
	}
	b := fpdyn.ClassifyAll(dyns, ds, gt)
	if b.TotalChanged != len(dyns) {
		t.Fatalf("breakdown counted %d of %d", b.TotalChanged, len(dyns))
	}
	c := fpdyn.Classify(dyns[0], ds)
	if c.Empty() && b.Unclassified == 0 {
		t.Log("first delta unclassified; acceptable for rare combinations")
	}
	rule := fpdyn.EvaluateLinker(fpdyn.NewRuleLinker(), ds)
	hyb := fpdyn.EvaluateLinker(fpdyn.NewHybridLinker(), ds)
	if rule.F1() <= 0 || hyb.F1() <= 0 {
		t.Fatalf("F1: rule %.3f hybrid %.3f", rule.F1(), hyb.F1())
	}
}

// ExampleDiff at the facade level.
func ExampleDiff() {
	a := &fpdyn.Fingerprint{Fonts: []string{"Arial"}, TimezoneOffset: 60}
	b := &fpdyn.Fingerprint{Fonts: []string{"Arial", "MT Extra"}, TimezoneOffset: 60}
	d := fpdyn.Diff(a, b)
	fmt.Println(len(d.Fields), "feature changed")
	// Output:
	// 1 feature changed
}
