package fpdyn

// The public facade: the types and entry points a downstream user
// needs, re-exported from the internal packages. The facade follows the
// pipeline order of the paper:
//
//	world := fpdyn.Simulate(fpdyn.DefaultConfig(5000))   // or collect real records
//	gt := fpdyn.BuildGroundTruth(world.Records)           // browser IDs (§2.3.1)
//	dyns := fpdyn.ChangedDynamics(gt)                     // the dynamics dataset (§2.3.2)
//	breakdown := fpdyn.ClassifyAll(dyns, world, gt)       // Table 2
//	res := fpdyn.EvaluateLinker(fpdyn.NewRuleLinker(), world)   // Figures 9–10
//
// Everything here is a thin alias or one-line wrapper; the package docs
// of the internal packages hold the detailed documentation.

import (
	"fpdyn/internal/browserid"
	"fpdyn/internal/diff"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/fpstalker"
	"fpdyn/internal/linker"
	"fpdyn/internal/population"
)

// Core data types.
type (
	// Fingerprint is one collected browser fingerprint (Table 1's
	// feature set).
	Fingerprint = fingerprint.Fingerprint
	// Record is one visit: fingerprint plus out-of-band identifiers.
	Record = fingerprint.Record
	// Delta is the diff between two consecutive fingerprints (§2.3.2).
	Delta = diff.Delta
	// Dynamics is one piece of fingerprint dynamics with its context.
	Dynamics = dynamics.Dynamics
	// Classification is the set of causes behind one piece of dynamics.
	Classification = dynamics.Classification
	// GroundTruth holds browser IDs built over a raw dataset.
	GroundTruth = browserid.GroundTruth
	// Dataset is a simulated world with ground-truth labels.
	Dataset = population.Dataset
	// Config controls the synthetic world.
	Config = population.Config
	// EvalResult aggregates a linking evaluation (Figure 9/10 metrics).
	EvalResult = fpstalker.EvalResult
	// Linker is the interface all three linker implementations satisfy.
	Linker = fpstalker.Linker
)

// DefaultConfig returns the calibrated synthetic-world configuration at
// the given user scale.
func DefaultConfig(users int) Config { return population.DefaultConfig(users) }

// Simulate generates a synthetic raw dataset (the stand-in for the
// paper's NDA-gated deployment data).
func Simulate(cfg Config) *Dataset { return population.Simulate(cfg) }

// BuildGroundTruth constructs browser IDs over time-ordered records.
func BuildGroundTruth(records []*Record) *GroundTruth { return browserid.Build(records) }

// Diff computes the delta between two fingerprints.
func Diff(a, b *Fingerprint) *Delta { return diff.Diff(a, b) }

// GenerateDynamics produces the dynamics dataset from ground truth,
// including unchanged pairs (Figure 7 needs them).
func GenerateDynamics(gt *GroundTruth) []*Dynamics { return dynamics.Generate(gt) }

// ChangedDynamics produces only the dynamics whose core fingerprint
// changed.
func ChangedDynamics(gt *GroundTruth) []*Dynamics {
	return dynamics.Changed(dynamics.Generate(gt))
}

// Classify labels one piece of dynamics with its causes. The dataset's
// canvas image store enables emoji/text subtype resolution; pass nil
// to default canvas changes to the emoji subtype.
func Classify(d *Dynamics, ds *Dataset) Classification {
	cl := dynamics.Classifier{}
	if ds != nil {
		cl.Images = dynamics.MapImages(ds.CanvasImages)
	}
	return cl.Classify(d)
}

// ClassifyAll classifies every changed dynamics and aggregates the
// Table 2 quantities.
func ClassifyAll(dyns []*Dynamics, ds *Dataset, gt *GroundTruth) *dynamics.Breakdown {
	cl := &dynamics.Classifier{}
	if ds != nil {
		cl.Images = dynamics.MapImages(ds.CanvasImages)
	}
	return dynamics.Analyze(dyns, cl, gt.NumInstances())
}

// NewRuleLinker returns the rule-based FP-Stalker baseline.
func NewRuleLinker() Linker { return fpstalker.NewRuleLinker() }

// NewHybridLinker returns the dynamics-aware linker implementing the
// paper's Advices 5–8.
func NewHybridLinker() Linker { return linker.New() }

// EvaluateLinker replays a labelled world through a linker, measuring
// top-10 precision/recall/F1 and matching latency.
func EvaluateLinker(l Linker, ds *Dataset) EvalResult {
	return fpstalker.Evaluate(l, ds.Records, ds.TrueInstance, 10)
}
