// Package fpdyn is a from-scratch Go reproduction of "Who Touched My
// Browser Fingerprint? A Large-scale Measurement Study and
// Classification of Fingerprint Dynamics" (Li & Cao, IMC 2020).
//
// The library lives under internal/: the measurement platform
// (collector, storage), the ground-truth construction (browserid), the
// diff engine (diff), the dynamics classifier (dynamics), the
// FP-Stalker baseline (fpstalker, mlearn), the analyses (stats,
// inference, correlate) and the synthetic population substrate
// (population, canvas, geoip, useragent, fontdb) that stands in for the
// paper's NDA-gated dataset. The root package carries the benchmark
// harness that regenerates every table and figure; see bench_test.go,
// DESIGN.md and EXPERIMENTS.md.
package fpdyn
