package dynamics

import (
	"fmt"
	"testing"

	"fpdyn/internal/browserid"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/population"
)

// categoryOf maps a simulator ground-truth event to the classifier
// category it should produce.
func categoryOf(ev population.EventType) Category {
	switch {
	case ev == population.EvBrowserUpdate:
		return CatBrowserUpdate
	case ev == population.EvOSUpdate:
		return CatOSUpdate
	case ev.IsUserAction():
		return CatUserAction
	default:
		return CatEnvironment
	}
}

// TestClassifierAgainstSimulatorTruth generates a world, regroups
// records by true instance, classifies every changed pair, and checks
// the predicted categories against the simulator's cause labels.
func TestClassifierAgainstSimulatorTruth(t *testing.T) {
	ds := population.Simulate(population.DefaultConfig(600))
	cl := Classifier{Images: MapImages(ds.CanvasImages)}

	// Regroup by true instance, tracking the truth per "to" record.
	groups := make(map[string][]*fingerprint.Record)
	truthFor := make(map[*fingerprint.Record][]population.EventType)
	for i, r := range ds.Records {
		id := fmt.Sprintf("inst-%d", ds.TrueInstance[i])
		groups[id] = append(groups[id], r)
		truthFor[r] = ds.Truth[i]
	}
	dyns := Changed(GenerateGrouped(groups))
	if len(dyns) == 0 {
		t.Fatal("no dynamics generated")
	}

	catHits := map[Category]int{}
	catTotal := map[Category]int{}
	exact, total := 0, 0
	for _, d := range dyns {
		truth := truthFor[d.To]
		if len(truth) == 0 {
			continue
		}
		want := map[Category]bool{}
		for _, ev := range truth {
			want[categoryOf(ev)] = true
		}
		got := map[Category]bool{}
		for _, cat := range cl.Classify(d).Categories() {
			got[cat] = true
		}
		total++
		match := len(want) == len(got)
		for cat := range want {
			catTotal[cat]++
			if got[cat] {
				catHits[cat]++
			} else {
				match = false
			}
		}
		if match {
			exact++
		}
	}
	if total == 0 {
		t.Fatal("no labelled dynamics")
	}
	exactRate := float64(exact) / float64(total)
	t.Logf("exact category-set match: %.1f%% over %d dynamics", exactRate*100, total)
	for cat, n := range catTotal {
		t.Logf("  %-20s recall %.1f%% (%d cases)", cat, 100*float64(catHits[cat])/float64(n), n)
	}
	if exactRate < 0.70 {
		t.Errorf("exact match rate %.2f below 0.70", exactRate)
	}
	for _, cat := range []Category{CatBrowserUpdate, CatOSUpdate, CatUserAction} {
		if catTotal[cat] == 0 {
			continue
		}
		if recall := float64(catHits[cat]) / float64(catTotal[cat]); recall < 0.80 {
			t.Errorf("%s recall %.2f below 0.80", cat, recall)
		}
	}
}

// TestGenerateFromGroundTruth runs the paper's actual pipeline: build
// browser IDs from raw records, then generate the dynamics dataset.
func TestGenerateFromGroundTruth(t *testing.T) {
	ds := population.Simulate(population.DefaultConfig(300))
	gt := browserid.Build(ds.Records)
	dyns := Generate(gt)
	changed := Changed(dyns)
	if len(changed) == 0 {
		t.Fatal("no changed dynamics")
	}
	if len(changed) >= len(dyns) {
		t.Fatal("every visit changed the fingerprint; stability is expected")
	}
	// Browser IDs must be close to true instances in count.
	ratio := float64(gt.NumInstances()) / float64(ds.NumInstances)
	if ratio < 0.9 || ratio > 1.15 {
		t.Errorf("browser IDs %d vs true instances %d (ratio %.2f)", gt.NumInstances(), ds.NumInstances, ratio)
	}
}

// TestAnalyzeShapeMatchesTable2 checks the headline shape of Table 2 on
// a simulated world: user actions are the largest pure category, the
// instance share with changes is substantial, and composites exist.
func TestAnalyzeShapeMatchesTable2(t *testing.T) {
	ds := population.Simulate(population.DefaultConfig(800))
	gt := browserid.Build(ds.Records)
	cl := Classifier{Images: MapImages(ds.CanvasImages)}
	b := Analyze(Generate(gt), &cl, gt.NumInstances())

	if b.TotalChanged == 0 {
		t.Fatal("no changes")
	}
	ua := b.PureCategory[CatUserAction]
	bu := b.PureCategory[CatBrowserUpdate]
	if ua <= bu {
		t.Errorf("user actions (%d) should exceed browser updates (%d)", ua, bu)
	}
	if len(b.Combo) == 0 {
		t.Error("no composite changes observed")
	}
	share := b.PctInstances(b.InstancesWithChange)
	t.Logf("instances with ≥1 change: %.1f%% (paper: 62.3%% of multi-visit-weighted population)", share)
	if b.Unclassified > b.TotalChanged/10 {
		t.Errorf("unclassified rate too high: %d of %d", b.Unclassified, b.TotalChanged)
	}
	t.Logf("pure: %v", b.PureCategory)
	t.Logf("combos: %v", b.Combo)
	t.Logf("causes: %d distinct", len(b.CauseChanges))
}
