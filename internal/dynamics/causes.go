package dynamics

// Cause is a fine-grained reason for a fingerprint change, one per
// Table 2 subcategory row.
type Cause string

// Category is one of the paper's three top-level cause categories, plus
// the update split it reports separately.
type Category string

// Categories.
const (
	CatOSUpdate      Category = "OS Updates"
	CatBrowserUpdate Category = "Browser Updates"
	CatUserAction    Category = "User Actions"
	CatEnvironment   Category = "Environment Updates"
)

// Causes, named after the Table 2 rows.
const (
	// Updates.
	CauseOSUpdate      Cause = "OS update"
	CauseBrowserUpdate Cause = "browser update"

	// User actions.
	CauseTimezone     Cause = "change timezone"
	CausePrivate      Cause = "private browsing mode"
	CauseZoom         Cause = "zoom in/out webpage"
	CauseFlash        Cause = "enable/disable Flash"
	CauseFakeLang     Cause = "fake supported languages"
	CauseFakeRes      Cause = "fake screen resolution"
	CauseMonitor      Cause = "switch monitor/change resolution"
	CauseDesktopSite  Cause = "request desktop website"
	CauseFakeAgent    Cause = "fake agent string"
	CausePlugin       Cause = "install plugins"
	CauseLocalStorage Cause = "enable/disable localStorage"
	CauseCookieToggle Cause = "enable/disable cookie"

	// Environment updates.
	CauseFontOffice  Cause = "font update (MS Office)"
	CauseFontAdobe   Cause = "font update (Adobe)"
	CauseFontLibre   Cause = "font update (LibreOffice)"
	CauseFontWPS     Cause = "font update (WPS)"
	CauseFontOther   Cause = "font update (other)"
	CauseCanvasEmoji Cause = "canvas update (emoji)"
	CauseCanvasText  Cause = "canvas update (text)"
	CauseAudio       Cause = "audio update"
	CauseHeaderLang  Cause = "HTTP header language update"
	CauseSysLang     Cause = "system language update"
	CauseColorDepth  Cause = "screen color depth update"
	CauseGPURender   Cause = "GPU render update"
)

// Category returns the top-level category of a cause.
func (c Cause) Category() Category {
	switch c {
	case CauseOSUpdate:
		return CatOSUpdate
	case CauseBrowserUpdate:
		return CatBrowserUpdate
	case CauseTimezone, CausePrivate, CauseZoom, CauseFlash, CauseFakeLang,
		CauseFakeRes, CauseMonitor, CauseDesktopSite, CauseFakeAgent,
		CausePlugin, CauseLocalStorage, CauseCookieToggle:
		return CatUserAction
	}
	return CatEnvironment
}

// Classification is the set of causes assigned to one piece of
// dynamics.
type Classification struct {
	Causes []Cause
}

// Has reports whether cause c was assigned.
func (cl Classification) Has(c Cause) bool {
	for _, x := range cl.Causes {
		if x == c {
			return true
		}
	}
	return false
}

// Categories returns the distinct top-level categories, in the fixed
// order OS, Browser, UserAction, Environment.
func (cl Classification) Categories() []Category {
	seen := map[Category]bool{}
	for _, c := range cl.Causes {
		seen[c.Category()] = true
	}
	var out []Category
	for _, cat := range []Category{CatOSUpdate, CatBrowserUpdate, CatUserAction, CatEnvironment} {
		if seen[cat] {
			out = append(out, cat)
		}
	}
	return out
}

// Composite reports whether more than one top-level category applies.
func (cl Classification) Composite() bool { return len(cl.Categories()) > 1 }

// Empty reports whether no cause was found.
func (cl Classification) Empty() bool { return len(cl.Causes) == 0 }

func (cl *Classification) add(c Cause) {
	if !cl.Has(c) {
		cl.Causes = append(cl.Causes, c)
	}
}
