// Package dynamics implements the paper's primary contribution: the
// generation of the fingerprint-dynamics dataset (§2.3) and the
// classification of each piece of dynamics into its causes (§3.2.2,
// Table 2) — browser or OS updates, user actions, and environment
// updates, plus their composites.
package dynamics

import (
	"sort"

	"fpdyn/internal/browserid"
	"fpdyn/internal/diff"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/parallel"
)

// Dynamics is one piece of fingerprint dynamics: the delta between two
// consecutive fingerprints of the same browser instance, with the
// records kept for context (the classifier parses user agents and
// consults cookies/timestamps).
type Dynamics struct {
	BrowserID string
	From, To  *fingerprint.Record
	Delta     *diff.Delta
}

// CoreChanged reports whether any non-IP feature changed. IP features
// move whenever the user does and are excluded from the fingerprint
// identity (§3.1), so a pure IP delta is not a fingerprint change.
func (d *Dynamics) CoreChanged() bool {
	for _, fd := range d.Delta.Fields {
		if !fingerprint.Describe(fd.Feature).IsIP {
			return true
		}
	}
	return false
}

// Generate builds the dynamics dataset from ground-truth browser IDs:
// for every instance with more than one visit, the diff between each
// pair of consecutive fingerprints. Unchanged pairs are included with
// empty deltas (Figure 7 needs the stable-visit counts); use Changed to
// filter.
func Generate(gt *browserid.GroundTruth) []*Dynamics {
	return GenerateParallel(gt, 1)
}

// GenerateParallel is Generate with the per-instance diff chains
// fanned out over a worker pool. Instances are independent — each
// chain only touches its own records — and the chains are collected in
// sorted-instance-ID order, so the output matches Generate exactly for
// every worker count.
func GenerateParallel(gt *browserid.GroundTruth, workers int) []*Dynamics {
	ids := gt.InstanceIDs()
	return generateChains(ids, func(id string) []*fingerprint.Record {
		return gt.Instances[id]
	}, workers)
}

// GenerateGrouped builds dynamics from an arbitrary pre-grouped
// record sequence (e.g. the simulator's true instances). Group keys
// become browser IDs; groups are processed in sorted key order, so the
// output is deterministic.
func GenerateGrouped(groups map[string][]*fingerprint.Record) []*Dynamics {
	return GenerateGroupedParallel(groups, 1)
}

// GenerateGroupedParallel is GenerateGrouped over a worker pool,
// identical output for every worker count.
func GenerateGroupedParallel(groups map[string][]*fingerprint.Record, workers int) []*Dynamics {
	ids := make([]string, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return generateChains(ids, func(id string) []*fingerprint.Record {
		return groups[id]
	}, workers)
}

// generateChains diffs each instance's consecutive record pairs,
// concatenating the per-instance chains in the given ID order.
func generateChains(ids []string, recsOf func(string) []*fingerprint.Record, workers int) []*Dynamics {
	return parallel.FlatMap(workers, len(ids), func(k int) []*Dynamics {
		id := ids[k]
		recs := recsOf(id)
		if len(recs) < 2 {
			return nil
		}
		out := make([]*Dynamics, 0, len(recs)-1)
		for i := 1; i < len(recs); i++ {
			out = append(out, &Dynamics{
				BrowserID: id,
				From:      recs[i-1],
				To:        recs[i],
				Delta:     diff.Diff(recs[i-1].FP, recs[i].FP),
			})
		}
		return out
	})
}

// Changed filters to dynamics whose core fingerprint actually changed.
func Changed(dyns []*Dynamics) []*Dynamics {
	out := make([]*Dynamics, 0, len(dyns))
	for _, d := range dyns {
		if d.CoreChanged() {
			out = append(out, d)
		}
	}
	return out
}
