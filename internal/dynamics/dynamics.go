// Package dynamics implements the paper's primary contribution: the
// generation of the fingerprint-dynamics dataset (§2.3) and the
// classification of each piece of dynamics into its causes (§3.2.2,
// Table 2) — browser or OS updates, user actions, and environment
// updates, plus their composites.
package dynamics

import (
	"fpdyn/internal/browserid"
	"fpdyn/internal/diff"
	"fpdyn/internal/fingerprint"
)

// Dynamics is one piece of fingerprint dynamics: the delta between two
// consecutive fingerprints of the same browser instance, with the
// records kept for context (the classifier parses user agents and
// consults cookies/timestamps).
type Dynamics struct {
	BrowserID string
	From, To  *fingerprint.Record
	Delta     *diff.Delta
}

// CoreChanged reports whether any non-IP feature changed. IP features
// move whenever the user does and are excluded from the fingerprint
// identity (§3.1), so a pure IP delta is not a fingerprint change.
func (d *Dynamics) CoreChanged() bool {
	for _, fd := range d.Delta.Fields {
		if !fingerprint.Describe(fd.Feature).IsIP {
			return true
		}
	}
	return false
}

// Generate builds the dynamics dataset from ground-truth browser IDs:
// for every instance with more than one visit, the diff between each
// pair of consecutive fingerprints. Unchanged pairs are included with
// empty deltas (Figure 7 needs the stable-visit counts); use Changed to
// filter.
func Generate(gt *browserid.GroundTruth) []*Dynamics {
	var out []*Dynamics
	for _, id := range gt.InstanceIDs() {
		recs := gt.Instances[id]
		for i := 1; i < len(recs); i++ {
			out = append(out, &Dynamics{
				BrowserID: id,
				From:      recs[i-1],
				To:        recs[i],
				Delta:     diff.Diff(recs[i-1].FP, recs[i].FP),
			})
		}
	}
	return out
}

// GenerateGrouped builds dynamics from an arbitrary pre-grouped
// record sequence (e.g. the simulator's true instances). Group keys
// become browser IDs.
func GenerateGrouped(groups map[string][]*fingerprint.Record) []*Dynamics {
	var out []*Dynamics
	for id, recs := range groups {
		for i := 1; i < len(recs); i++ {
			out = append(out, &Dynamics{
				BrowserID: id,
				From:      recs[i-1],
				To:        recs[i],
				Delta:     diff.Diff(recs[i-1].FP, recs[i].FP),
			})
		}
	}
	return out
}

// Changed filters to dynamics whose core fingerprint actually changed.
func Changed(dyns []*Dynamics) []*Dynamics {
	out := make([]*Dynamics, 0, len(dyns))
	for _, d := range dyns {
		if d.CoreChanged() {
			out = append(out, d)
		}
	}
	return out
}
