package dynamics

import (
	"reflect"
	"testing"

	"fpdyn/internal/browserid"
	"fpdyn/internal/population"
)

func simulatedGT(t *testing.T, users int) (*population.Dataset, *browserid.GroundTruth) {
	t.Helper()
	ds := population.Simulate(population.DefaultConfig(users))
	return ds, browserid.Build(ds.Records)
}

// TestGenerateParallelMatchesSerial: the diff chains must be identical
// — same order, same deltas — for every worker count.
func TestGenerateParallelMatchesSerial(t *testing.T) {
	_, gt := simulatedGT(t, 150)
	serial := Generate(gt)
	for _, workers := range []int{2, 8, -1} {
		par := GenerateParallel(gt, workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d dynamics, want %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if !reflect.DeepEqual(serial[i], par[i]) {
				t.Fatalf("workers=%d: dynamics %d differs", workers, i)
			}
		}
	}
}

// TestGenerateGroupedParallelMatchesSerial covers the pre-grouped
// entry point (the simulator's true instances).
func TestGenerateGroupedParallelMatchesSerial(t *testing.T) {
	_, gt := simulatedGT(t, 120)
	serial := GenerateGrouped(gt.Instances)
	for _, workers := range []int{3, 8} {
		par := GenerateGroupedParallel(gt.Instances, workers)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: grouped dynamics differ", workers)
		}
	}
}

// TestClassifyAllMatchesClassify: the batch pass must agree with the
// one-at-a-time rules at every worker count, and the memo it leaves
// behind must serve identical classifications.
func TestClassifyAllMatchesClassify(t *testing.T) {
	ds, gt := simulatedGT(t, 150)
	changed := Changed(Generate(gt))
	if len(changed) == 0 {
		t.Fatal("no changed dynamics in the test world")
	}

	ref := &Classifier{Images: MapImages(ds.CanvasImages)}
	want := make([]Classification, len(changed))
	for i, d := range changed {
		want[i] = ref.Classify(d)
	}

	for _, workers := range []int{1, 4, -1} {
		c := &Classifier{Images: MapImages(ds.CanvasImages)}
		got := c.ClassifyAll(changed, workers)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: batch classifications differ from serial Classify", workers)
		}
		for i, d := range changed {
			if !reflect.DeepEqual(c.Classify(d), want[i]) {
				t.Fatalf("workers=%d: memoized Classify(%d) differs", workers, i)
			}
		}
	}
}
