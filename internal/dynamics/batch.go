package dynamics

import "fpdyn/internal/parallel"

// ClassifyAll classifies every dynamics concurrently and returns the
// classifications in input order. Each dynamics is classified exactly
// once; the results are also memoized on the classifier, so the
// report's downstream passes (Table 2/3, correlation updates, the
// insight sections) get cache hits from their per-dynamics Classify
// calls instead of re-running the decision rules.
//
// The rules themselves only read shared state — the immutable image
// store and the concurrency-safe cached UA parser — so the parallel
// pass is safe, and ordered collection keeps the output identical for
// every worker count.
func (c *Classifier) ClassifyAll(dyns []*Dynamics, workers int) []Classification {
	out := parallel.Map(workers, len(dyns), func(i int) Classification {
		return c.classify(dyns[i])
	})
	if c.memo == nil {
		c.memo = make(map[*Dynamics]Classification, len(dyns))
	}
	for i, d := range dyns {
		c.memo[d] = out[i]
	}
	return out
}
