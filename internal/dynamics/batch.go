package dynamics

import "fpdyn/internal/parallel"

// ClassifyAll classifies every dynamics concurrently and returns the
// classifications in input order. Each dynamics is classified exactly
// once; the results are also memoized on the classifier, so the
// report's downstream passes (Table 2/3, correlation updates, the
// insight sections) get cache hits from their per-dynamics Classify
// calls instead of re-running the decision rules.
//
// The rules themselves only read shared state — the immutable image
// store and the concurrency-safe cached UA parser — so the parallel
// pass is safe, and ordered collection keeps the output identical for
// every worker count.
func (c *Classifier) ClassifyAll(dyns []*Dynamics, workers int) []Classification {
	out := c.ClassifyBatch(dyns, workers)
	if c.memo == nil {
		c.memo = make(map[*Dynamics]Classification, len(dyns))
	}
	for i, d := range dyns {
		c.memo[d] = out[i]
	}
	return out
}

// ClassifyBatch classifies every dynamics concurrently and returns the
// classifications in input order, WITHOUT memoizing. This is the
// streaming path's entry point: there the dynamics are transient chunk
// objects that are dropped after accumulation, and a memo keyed by
// their identity would retain every chunk for the whole run. Output is
// identical for every worker count.
func (c *Classifier) ClassifyBatch(dyns []*Dynamics, workers int) []Classification {
	return parallel.Map(workers, len(dyns), func(i int) Classification {
		return c.classify(dyns[i])
	})
}
