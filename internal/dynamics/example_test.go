package dynamics_test

import (
	"fmt"
	"time"

	"fpdyn/internal/diff"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/useragent"
)

// ExampleClassifier_Classify labels one piece of dynamics with its
// causes, the paper's Table 2 taxonomy.
func ExampleClassifier_Classify() {
	base := func() *fingerprint.Record {
		ua := useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(63, 0, 3239, 84),
			OS: useragent.Windows, OSVersion: useragent.V(10)}
		return &fingerprint.Record{
			Time:   time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC),
			Cookie: "ck",
			FP: &fingerprint.Fingerprint{
				UserAgent: ua.String(), CookieEnabled: true, LocalStorage: true,
				TimezoneOffset: 60, ScreenResolution: "1920x1080", PixelRatio: "1",
				ConsLanguage: true, ConsResolution: true, ConsOS: true, ConsBrowser: true,
			},
		}
	}
	from := base()
	to := base()
	// The user traveled (timezone moved) and the browser updated.
	to.FP.TimezoneOffset = -300
	ua := useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(64, 0, 3282, 140),
		OS: useragent.Windows, OSVersion: useragent.V(10)}
	to.FP.UserAgent = ua.String()

	var cl dynamics.Classifier
	c := cl.Classify(&dynamics.Dynamics{
		From: from, To: to, Delta: diff.Diff(from.FP, to.FP),
	})
	for _, cause := range c.Causes {
		fmt.Println(cause)
	}
	fmt.Println("composite:", c.Composite())
	// Output:
	// browser update
	// change timezone
	// composite: true
}
