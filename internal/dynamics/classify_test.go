package dynamics

import (
	"testing"
	"time"

	"fpdyn/internal/canvas"
	"fpdyn/internal/diff"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/fontdb"
	"fpdyn/internal/useragent"
)

// base returns a realistic desktop Chrome fingerprint record.
func base() *fingerprint.Record {
	ua := useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(56, 0, 2924, 87), OS: useragent.Windows, OSVersion: useragent.V(10)}
	return &fingerprint.Record{
		Time:   time.Date(2018, 1, 10, 10, 0, 0, 0, time.UTC),
		UserID: "u1", Cookie: "ck-1",
		Browser: useragent.Chrome, OS: useragent.Windows,
		FP: &fingerprint.Fingerprint{
			UserAgent:     ua.String(),
			Accept:        "text/html",
			Encoding:      "gzip, deflate, br",
			Language:      "de-DE,de;q=0.9,en;q=0.8",
			HeaderList:    []string{"Host", "User-Agent", "Accept"},
			Plugins:       []string{"Chrome PDF Plugin", "Native Client"},
			CookieEnabled: true, WebGL: true, LocalStorage: true,
			TimezoneOffset: 60,
			Languages:      []string{"de-DE"},
			Fonts:          []string{"Arial", "Calibri", "Verdana"},
			CanvasHash:     "c-old",
			GPUVendor:      "NVIDIA Corporation",
			GPURenderer:    "GeForce GTX 970",
			GPUType:        "ANGLE (Direct3D11)",
			CPUCores:       4, CPUClass: "x86",
			AudioInfo:        "channels:2;rate:44100",
			ScreenResolution: "1920x1080", ColorDepth: 24, PixelRatio: "1",
			IPCity: "Berlin", IPRegion: "Berlin", IPCountry: "Germany",
			ConsLanguage: true, ConsResolution: true, ConsOS: true, ConsBrowser: true,
			GPUImageHash: "g-old",
		},
	}
}

// dyn builds a Dynamics from a mutation applied to the base record.
func dyn(mutate func(*fingerprint.Record)) *Dynamics {
	from := base()
	to := base()
	to.Time = from.Time.Add(48 * time.Hour)
	mutate(to)
	return &Dynamics{BrowserID: "b1", From: from, To: to, Delta: diff.Diff(from.FP, to.FP)}
}

func classify(t *testing.T, d *Dynamics) Classification {
	t.Helper()
	var cl Classifier
	return cl.Classify(d)
}

func TestClassifyBrowserUpdate(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) {
		ua := useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(57, 0, 2987, 98), OS: useragent.Windows, OSVersion: useragent.V(10)}
		r.FP.UserAgent = ua.String()
		r.FP.CanvasHash = "c-new" // updates often change canvas
	})
	c := classify(t, d)
	if !c.Has(CauseBrowserUpdate) {
		t.Fatalf("causes = %v, want browser update", c.Causes)
	}
	if c.Has(CauseCanvasEmoji) || c.Has(CauseCanvasText) {
		t.Error("canvas change must be attributed to the update, not environment")
	}
	if c.Composite() {
		t.Errorf("single-category expected, got %v", c.Categories())
	}
}

func TestClassifyOSUpdate(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) {
		ua := useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(56, 0, 2924, 87), OS: useragent.Windows, OSVersion: useragent.V(10)}
		_ = ua
		// Simulate an iOS-style OS bump visible in the UA: use macOS.
		ua2 := useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(56, 0, 2924, 87), OS: useragent.Windows, OSVersion: useragent.V(10)}
		r.FP.UserAgent = ua2.String()
	})
	// Windows hides sub-versions, so craft a Safari/macOS pair instead.
	from := base()
	fromUA := useragent.UA{Browser: useragent.Safari, BrowserVersion: useragent.V(11, 0, 2), OS: useragent.MacOSX, OSVersion: useragent.V(10, 13, 2)}
	from.FP.UserAgent = fromUA.String()
	to := base()
	toUA := useragent.UA{Browser: useragent.Safari, BrowserVersion: useragent.V(11, 0, 2), OS: useragent.MacOSX, OSVersion: useragent.V(10, 13, 3)}
	to.FP.UserAgent = toUA.String()
	d = &Dynamics{BrowserID: "b", From: from, To: to, Delta: diff.Diff(from.FP, to.FP)}
	c := classify(t, d)
	if !c.Has(CauseOSUpdate) || c.Has(CauseBrowserUpdate) {
		t.Fatalf("causes = %v, want OS update only", c.Causes)
	}
}

func TestClassifyDesktopRequest(t *testing.T) {
	// Figure 11(a): mobile Chrome presents a Linux desktop UA.
	from := base()
	mUA := useragent.UA{Browser: useragent.ChromeMobile, BrowserVersion: useragent.V(77, 0, 3865, 92), OS: useragent.Android, OSVersion: useragent.V(9), Device: "SM-N960U", Mobile: true}
	from.FP.UserAgent = mUA.String()
	to := base()
	to.FP.UserAgent = mUA.RequestDesktop().String()
	to.FP.ConsOS = false
	d := &Dynamics{BrowserID: "b", From: from, To: to, Delta: diff.Diff(from.FP, to.FP)}
	c := classify(t, d)
	if !c.Has(CauseDesktopSite) {
		t.Fatalf("causes = %v, want desktop request", c.Causes)
	}
	if c.Has(CauseFakeAgent) {
		t.Error("desktop request misread as fake agent")
	}
}

func TestClassifyFakeAgent(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) {
		fake := useragent.UA{Browser: useragent.Firefox, BrowserVersion: useragent.V(52), OS: useragent.Windows, OSVersion: useragent.V(10)}
		r.FP.UserAgent = fake.String()
		r.FP.ConsBrowser = false
	})
	c := classify(t, d)
	if !c.Has(CauseFakeAgent) {
		t.Fatalf("causes = %v, want fake agent", c.Causes)
	}
}

func TestClassifyTimezone(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) {
		r.FP.TimezoneOffset = -300
		r.FP.IPCity, r.FP.IPRegion, r.FP.IPCountry = "New York", "New York", "United States"
	})
	c := classify(t, d)
	if !c.Has(CauseTimezone) || len(c.Causes) != 1 {
		t.Fatalf("causes = %v, want timezone only", c.Causes)
	}
}

func TestClassifyPrivateBrowsing(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) {
		r.FP.LocalStorage = false
		r.Cookie = "pv-throwaway"
	})
	c := classify(t, d)
	if !c.Has(CausePrivate) {
		t.Fatalf("causes = %v, want private browsing", c.Causes)
	}
}

func TestClassifyStorageToggleSameCookie(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) { r.FP.LocalStorage = false })
	c := classify(t, d)
	if !c.Has(CauseLocalStorage) || c.Has(CausePrivate) {
		t.Fatalf("causes = %v, want localStorage toggle", c.Causes)
	}
}

func TestClassifyChromeCookieStorageCoupling(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) {
		r.FP.LocalStorage = false
		r.FP.CookieEnabled = false
		r.Cookie = ""
	})
	c := classify(t, d)
	if !c.Has(CauseCookieToggle) || !c.Has(CauseLocalStorage) {
		t.Fatalf("causes = %v, want both cookie and localStorage toggles", c.Causes)
	}
}

func TestClassifyZoom(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) {
		r.FP.ScreenResolution = "1536x864" // 1920x1080 / 1.25
		r.FP.PixelRatio = "1.25"
	})
	c := classify(t, d)
	if !c.Has(CauseZoom) || c.Has(CauseMonitor) {
		t.Fatalf("causes = %v, want zoom", c.Causes)
	}
}

func TestClassifyMonitorSwitch(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) { r.FP.ScreenResolution = "1280x1024" })
	c := classify(t, d)
	if !c.Has(CauseMonitor) || c.Has(CauseZoom) {
		t.Fatalf("causes = %v, want monitor switch", c.Causes)
	}
}

func TestClassifyFakeResolution(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) {
		r.FP.ScreenResolution = "800x600"
		r.FP.ConsResolution = false
	})
	c := classify(t, d)
	if !c.Has(CauseFakeRes) {
		t.Fatalf("causes = %v, want fake resolution", c.Causes)
	}
}

func TestClassifyFlashToggle(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) {
		r.FP.Plugins = append(r.FP.Plugins, "Shockwave Flash")
	})
	c := classify(t, d)
	if !c.Has(CauseFlash) || c.Has(CausePlugin) {
		t.Fatalf("causes = %v, want flash toggle", c.Causes)
	}
}

func TestClassifyPluginInstall(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) {
		r.FP.Plugins = append(r.FP.Plugins, "VLC Web Plugin")
	})
	c := classify(t, d)
	if !c.Has(CausePlugin) {
		t.Fatalf("causes = %v, want plugin install", c.Causes)
	}
}

func TestClassifyOfficeFontUpdate(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) {
		r.FP.Fonts = fingerprint.AddFonts(r.FP.Fonts, []string{fontdb.MTExtra})
	})
	c := classify(t, d)
	if !c.Has(CauseFontOffice) {
		t.Fatalf("causes = %v, want Office font update", c.Causes)
	}
}

func TestClassifyLibreOfficeInstall(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) {
		r.FP.Fonts = fingerprint.AddFonts(r.FP.Fonts, fontdb.LibreOffice)
	})
	c := classify(t, d)
	if !c.Has(CauseFontLibre) {
		t.Fatalf("causes = %v, want LibreOffice", c.Causes)
	}
}

func TestClassifyAdobeInstall(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) {
		r.FP.Fonts = fingerprint.AddFonts(r.FP.Fonts, fontdb.Adobe)
	})
	c := classify(t, d)
	if !c.Has(CauseFontAdobe) {
		t.Fatalf("causes = %v, want Adobe", c.Causes)
	}
}

func TestClassifyCanvasEmojiWithImages(t *testing.T) {
	imgA := canvas.Render(canvas.Params{EmojiMajor: 1})
	imgB := canvas.Render(canvas.Params{EmojiMajor: 2})
	cl := Classifier{Images: MapImages{imgA.Hash(): imgA, imgB.Hash(): imgB}}
	from := base()
	from.FP.CanvasHash = imgA.Hash()
	to := base()
	to.FP.CanvasHash = imgB.Hash()
	d := &Dynamics{BrowserID: "b", From: from, To: to, Delta: diff.Diff(from.FP, to.FP)}
	c := cl.Classify(d)
	if !c.Has(CauseCanvasEmoji) {
		t.Fatalf("causes = %v, want emoji canvas update", c.Causes)
	}
}

func TestClassifyCanvasTextWithImages(t *testing.T) {
	imgA := canvas.Render(canvas.Params{TextEngine: 1, EmojiMajor: 1})
	imgB := canvas.Render(canvas.Params{TextEngine: 2, EmojiMajor: 1})
	cl := Classifier{Images: MapImages{imgA.Hash(): imgA, imgB.Hash(): imgB}}
	from := base()
	from.FP.CanvasHash = imgA.Hash()
	to := base()
	to.FP.CanvasHash = imgB.Hash()
	d := &Dynamics{BrowserID: "b", From: from, To: to, Delta: diff.Diff(from.FP, to.FP)}
	c := cl.Classify(d)
	if !c.Has(CauseCanvasText) {
		t.Fatalf("causes = %v, want text canvas update", c.Causes)
	}
}

func TestClassifyAudioGPUColorDepth(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) {
		r.FP.AudioInfo = "channels:2;rate:48000"
		r.FP.GPUType = "ANGLE (Direct3D9Ex)"
		r.FP.ColorDepth = 30
	})
	c := classify(t, d)
	for _, want := range []Cause{CauseAudio, CauseGPURender, CauseColorDepth} {
		if !c.Has(want) {
			t.Errorf("causes = %v, missing %v", c.Causes, want)
		}
	}
}

func TestClassifyHeaderLanguageVsFake(t *testing.T) {
	// Same primary tag → environment header-language update.
	d := dyn(func(r *fingerprint.Record) { r.FP.Language = "de-DE,de;q=0.9,en;q=0.8,fr;q=0.7" })
	c := classify(t, d)
	if !c.Has(CauseHeaderLang) {
		t.Fatalf("causes = %v, want header language update", c.Causes)
	}
	// Different primary + consistency flip → fake.
	d = dyn(func(r *fingerprint.Record) {
		r.FP.Language = "en"
		r.FP.ConsLanguage = false
	})
	c = classify(t, d)
	if !c.Has(CauseFakeLang) {
		t.Fatalf("causes = %v, want fake languages", c.Causes)
	}
}

func TestClassifySystemLanguage(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) {
		r.FP.Languages = append(r.FP.Languages, "ja-JP")
	})
	c := classify(t, d)
	if !c.Has(CauseSysLang) {
		t.Fatalf("causes = %v, want system language", c.Causes)
	}
}

func TestIPOnlyChangeIsNotCore(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) {
		r.FP.IPCity, r.FP.IPRegion = "Munich", "Bavaria"
	})
	if d.CoreChanged() {
		t.Fatal("IP-only delta flagged as core change")
	}
}

func TestCompositeClassification(t *testing.T) {
	d := dyn(func(r *fingerprint.Record) {
		ua := useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(57, 0, 2987, 98), OS: useragent.Windows, OSVersion: useragent.V(10)}
		r.FP.UserAgent = ua.String()
		r.FP.TimezoneOffset = 0
	})
	c := classify(t, d)
	if !c.Composite() {
		t.Fatalf("want composite, got %v", c.Categories())
	}
	if ComboLabel(c.Categories()) != "Browser Updates + User Actions" {
		t.Fatalf("label = %q", ComboLabel(c.Categories()))
	}
}

func TestAnalyzeAggregation(t *testing.T) {
	// Grouped by BrowserID, as every Generate* output is (Analyze's
	// accumulator dedups per instance on the group boundaries).
	dyns := []*Dynamics{
		dyn(func(r *fingerprint.Record) { r.FP.TimezoneOffset = 0 }),
		dyn(func(r *fingerprint.Record) {
			ua := useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(57), OS: useragent.Windows, OSVersion: useragent.V(10)}
			r.FP.UserAgent = ua.String()
		}),
		dyn(func(r *fingerprint.Record) { r.FP.IPCity = "Munich" }), // IP only: not counted
		dyn(func(r *fingerprint.Record) { r.FP.TimezoneOffset = 120 }),
	}
	dyns[3].BrowserID = "b2"
	var cl Classifier
	b := Analyze(dyns, &cl, 10)
	if b.TotalChanged != 3 {
		t.Fatalf("TotalChanged = %d, want 3", b.TotalChanged)
	}
	if b.PureCategory[CatUserAction] != 2 || b.PureCategory[CatBrowserUpdate] != 1 {
		t.Fatalf("pure = %v", b.PureCategory)
	}
	if b.CauseInstances[CauseTimezone] != 2 {
		t.Fatalf("timezone instances = %d, want 2", b.CauseInstances[CauseTimezone])
	}
	if b.InstancesWithChange != 2 { // b1 and b2
		t.Fatalf("instances with change = %d", b.InstancesWithChange)
	}
	if got := b.PctChanges(b.PureCategory[CatUserAction]); got < 66 || got > 67 {
		t.Fatalf("pct changes = %v", got)
	}
	if b.Unclassified != 0 {
		t.Fatalf("unclassified = %d", b.Unclassified)
	}
}
