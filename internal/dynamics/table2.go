package dynamics

import "sort"

// Breakdown aggregates classified dynamics into the quantities Table 2
// reports: the share of changes per category/cause and the share of
// browser instances exhibiting each.
type Breakdown struct {
	// TotalInstances is the number of browser instances in the dataset
	// (visiting once or more).
	TotalInstances int
	// TotalChanged is the number of dynamics with a core fingerprint
	// change — the denominator of the "% of Changes" column.
	TotalChanged int
	// InstancesWithChange counts instances with at least one change —
	// Table 2's bottom-right 62.32% cell.
	InstancesWithChange int

	// PureCategory counts dynamics whose causes fall in exactly one
	// category; Combo counts the composite rows.
	PureCategory map[Category]int
	Combo        map[string]int

	// CauseChanges / CauseInstances count per fine-grained cause.
	CauseChanges   map[Cause]int
	CauseInstances map[Cause]int

	// CategoryChanges / CategoryInstances count dynamics/instances
	// containing the category at all (composites included).
	CategoryChanges   map[Category]int
	CategoryInstances map[Category]int

	// Unclassified counts changed dynamics the classifier could not
	// attribute to any cause.
	Unclassified int

	// BrowserUpdatesByFamily breaks browser-update dynamics down by
	// browser family (Table 2's Chrome/Firefox/… sub-rows), and
	// OSUpdatesByOS by OS family (its iOS/Android/… sub-rows).
	BrowserUpdatesByFamily map[string]int
	OSUpdatesByOS          map[string]int
	// BrowserUpdateInstancesByFamily / OSUpdateInstancesByOS count
	// distinct browser IDs per sub-row.
	BrowserUpdateInstancesByFamily map[string]int
	OSUpdateInstancesByOS          map[string]int
}

// ComboLabel renders a composite category set as a Table 2 row label.
func ComboLabel(cats []Category) string {
	switch len(cats) {
	case 0:
		return "None"
	case 1:
		return string(cats[0])
	}
	names := make([]string, len(cats))
	for i, c := range cats {
		names[i] = string(c)
	}
	return joinPlus(names)
}

func joinPlus(names []string) string {
	out := names[0]
	for _, n := range names[1:] {
		out += " + " + n
	}
	return out
}

// Analyze classifies every piece of dynamics and aggregates the
// Table 2 quantities. totalInstances is the full instance count
// (including single-visit instances, which can never show dynamics).
// dyns must be grouped by BrowserID — true for every Generate*
// output, whose chains are contiguous per instance — because the
// per-instance dedup runs on instance boundaries (Accumulator).
func Analyze(dyns []*Dynamics, cl *Classifier, totalInstances int) *Breakdown {
	a := NewAccumulator()
	for _, d := range dyns {
		if !d.CoreChanged() {
			continue
		}
		a.Add(d, cl.Classify(d))
	}
	return a.Finish(totalInstances)
}

// Accumulator aggregates classified dynamics into a Breakdown one
// piece at a time, holding only counters plus the per-instance dedup
// state of the CURRENT instance — the streaming pipeline's bounded-
// memory replacement for Analyze's per-instance sets. Dynamics must
// arrive grouped by BrowserID (each instance's pieces contiguous);
// within that, any order. Only core-changed dynamics should be fed.
type Accumulator struct {
	b *Breakdown

	// Current-instance dedup state, reset at each BrowserID boundary.
	curID     string
	curActive bool
	curCauses map[Cause]bool
	curCats   map[Category]bool
	curFams   map[string]bool
	curOSes   map[string]bool
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{
		b: &Breakdown{
			PureCategory:                   make(map[Category]int),
			Combo:                          make(map[string]int),
			CauseChanges:                   make(map[Cause]int),
			CauseInstances:                 make(map[Cause]int),
			CategoryChanges:                make(map[Category]int),
			CategoryInstances:              make(map[Category]int),
			BrowserUpdatesByFamily:         make(map[string]int),
			OSUpdatesByOS:                  make(map[string]int),
			BrowserUpdateInstancesByFamily: make(map[string]int),
			OSUpdateInstancesByOS:          make(map[string]int),
		},
		curCauses: make(map[Cause]bool),
		curCats:   make(map[Category]bool),
		curFams:   make(map[string]bool),
		curOSes:   make(map[string]bool),
	}
}

// Add feeds one core-changed dynamics with its classification.
func (a *Accumulator) Add(d *Dynamics, c Classification) {
	b := a.b
	if !a.curActive || d.BrowserID != a.curID {
		a.flushInstance()
		a.curID = d.BrowserID
		a.curActive = true
	}
	b.TotalChanged++
	if c.Empty() {
		b.Unclassified++
		return
	}
	cats := c.Categories()
	if len(cats) == 1 {
		b.PureCategory[cats[0]]++
	} else {
		b.Combo[ComboLabel(cats)]++
	}
	for _, cat := range cats {
		b.CategoryChanges[cat]++
		a.curCats[cat] = true
	}
	for _, cause := range c.Causes {
		b.CauseChanges[cause]++
		a.curCauses[cause] = true
	}
	// Per-family sub-rows, keyed by the browser/OS the instance runs
	// (the "to" record's parsed identity).
	if c.Has(CauseBrowserUpdate) {
		b.BrowserUpdatesByFamily[d.To.Browser]++
		a.curFams[d.To.Browser] = true
	}
	if c.Has(CauseOSUpdate) {
		b.OSUpdatesByOS[d.To.OS]++
		a.curOSes[d.To.OS] = true
	}
}

// flushInstance folds the current instance's dedup sets into the
// per-instance counters and clears them.
func (a *Accumulator) flushInstance() {
	if !a.curActive {
		return
	}
	b := a.b
	b.InstancesWithChange++
	for cause := range a.curCauses {
		b.CauseInstances[cause]++
		delete(a.curCauses, cause)
	}
	for cat := range a.curCats {
		b.CategoryInstances[cat]++
		delete(a.curCats, cat)
	}
	for fam := range a.curFams {
		b.BrowserUpdateInstancesByFamily[fam]++
		delete(a.curFams, fam)
	}
	for os := range a.curOSes {
		b.OSUpdateInstancesByOS[os]++
		delete(a.curOSes, os)
	}
	a.curActive = false
}

// Finish flushes the last instance and returns the Breakdown.
// totalInstances is the full instance count (including never-changing
// ones), the "% of Browser IDs" denominator.
func (a *Accumulator) Finish(totalInstances int) *Breakdown {
	a.flushInstance()
	a.b.TotalInstances = totalInstances
	return a.b
}

// PctChanges returns n as a percentage of total changed dynamics.
func (b *Breakdown) PctChanges(n int) float64 {
	if b.TotalChanged == 0 {
		return 0
	}
	return 100 * float64(n) / float64(b.TotalChanged)
}

// PctInstances returns n as a percentage of all instances.
func (b *Breakdown) PctInstances(n int) float64 {
	if b.TotalInstances == 0 {
		return 0
	}
	return 100 * float64(n) / float64(b.TotalInstances)
}

// ComboLabels returns the composite row labels sorted by descending
// count (stable for reports).
func (b *Breakdown) ComboLabels() []string {
	labels := make([]string, 0, len(b.Combo))
	for l := range b.Combo {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		if b.Combo[labels[i]] != b.Combo[labels[j]] {
			return b.Combo[labels[i]] > b.Combo[labels[j]]
		}
		return labels[i] < labels[j]
	})
	return labels
}
