package dynamics

import "sort"

// Breakdown aggregates classified dynamics into the quantities Table 2
// reports: the share of changes per category/cause and the share of
// browser instances exhibiting each.
type Breakdown struct {
	// TotalInstances is the number of browser instances in the dataset
	// (visiting once or more).
	TotalInstances int
	// TotalChanged is the number of dynamics with a core fingerprint
	// change — the denominator of the "% of Changes" column.
	TotalChanged int
	// InstancesWithChange counts instances with at least one change —
	// Table 2's bottom-right 62.32% cell.
	InstancesWithChange int

	// PureCategory counts dynamics whose causes fall in exactly one
	// category; Combo counts the composite rows.
	PureCategory map[Category]int
	Combo        map[string]int

	// CauseChanges / CauseInstances count per fine-grained cause.
	CauseChanges   map[Cause]int
	CauseInstances map[Cause]int

	// CategoryChanges / CategoryInstances count dynamics/instances
	// containing the category at all (composites included).
	CategoryChanges   map[Category]int
	CategoryInstances map[Category]int

	// Unclassified counts changed dynamics the classifier could not
	// attribute to any cause.
	Unclassified int

	// BrowserUpdatesByFamily breaks browser-update dynamics down by
	// browser family (Table 2's Chrome/Firefox/… sub-rows), and
	// OSUpdatesByOS by OS family (its iOS/Android/… sub-rows).
	BrowserUpdatesByFamily map[string]int
	OSUpdatesByOS          map[string]int
	// BrowserUpdateInstancesByFamily / OSUpdateInstancesByOS count
	// distinct browser IDs per sub-row.
	BrowserUpdateInstancesByFamily map[string]int
	OSUpdateInstancesByOS          map[string]int
}

// ComboLabel renders a composite category set as a Table 2 row label.
func ComboLabel(cats []Category) string {
	switch len(cats) {
	case 0:
		return "None"
	case 1:
		return string(cats[0])
	}
	names := make([]string, len(cats))
	for i, c := range cats {
		names[i] = string(c)
	}
	return joinPlus(names)
}

func joinPlus(names []string) string {
	out := names[0]
	for _, n := range names[1:] {
		out += " + " + n
	}
	return out
}

// Analyze classifies every piece of dynamics and aggregates the
// Table 2 quantities. totalInstances is the full instance count
// (including single-visit instances, which can never show dynamics).
func Analyze(dyns []*Dynamics, cl *Classifier, totalInstances int) *Breakdown {
	b := &Breakdown{
		TotalInstances:                 totalInstances,
		PureCategory:                   make(map[Category]int),
		Combo:                          make(map[string]int),
		CauseChanges:                   make(map[Cause]int),
		CauseInstances:                 make(map[Cause]int),
		CategoryChanges:                make(map[Category]int),
		CategoryInstances:              make(map[Category]int),
		BrowserUpdatesByFamily:         make(map[string]int),
		OSUpdatesByOS:                  make(map[string]int),
		BrowserUpdateInstancesByFamily: make(map[string]int),
		OSUpdateInstancesByOS:          make(map[string]int),
	}
	instCause := make(map[Cause]map[string]bool)
	instCat := make(map[Category]map[string]bool)
	instChanged := make(map[string]bool)
	instFam := make(map[string]map[string]bool)
	instOS := make(map[string]map[string]bool)

	for _, d := range dyns {
		if !d.CoreChanged() {
			continue
		}
		b.TotalChanged++
		instChanged[d.BrowserID] = true
		c := cl.Classify(d)
		if c.Empty() {
			b.Unclassified++
			continue
		}
		cats := c.Categories()
		if len(cats) == 1 {
			b.PureCategory[cats[0]]++
		} else {
			b.Combo[ComboLabel(cats)]++
		}
		for _, cat := range cats {
			b.CategoryChanges[cat]++
			if instCat[cat] == nil {
				instCat[cat] = make(map[string]bool)
			}
			instCat[cat][d.BrowserID] = true
		}
		for _, cause := range c.Causes {
			b.CauseChanges[cause]++
			if instCause[cause] == nil {
				instCause[cause] = make(map[string]bool)
			}
			instCause[cause][d.BrowserID] = true
		}
		// Per-family sub-rows, keyed by the browser/OS the instance runs
		// (the "to" record's parsed identity).
		if c.Has(CauseBrowserUpdate) {
			fam := d.To.Browser
			b.BrowserUpdatesByFamily[fam]++
			if instFam[fam] == nil {
				instFam[fam] = make(map[string]bool)
			}
			instFam[fam][d.BrowserID] = true
		}
		if c.Has(CauseOSUpdate) {
			os := d.To.OS
			b.OSUpdatesByOS[os]++
			if instOS[os] == nil {
				instOS[os] = make(map[string]bool)
			}
			instOS[os][d.BrowserID] = true
		}
	}
	b.InstancesWithChange = len(instChanged)
	for cause, set := range instCause {
		b.CauseInstances[cause] = len(set)
	}
	for cat, set := range instCat {
		b.CategoryInstances[cat] = len(set)
	}
	for fam, set := range instFam {
		b.BrowserUpdateInstancesByFamily[fam] = len(set)
	}
	for os, set := range instOS {
		b.OSUpdateInstancesByOS[os] = len(set)
	}
	return b
}

// PctChanges returns n as a percentage of total changed dynamics.
func (b *Breakdown) PctChanges(n int) float64 {
	if b.TotalChanged == 0 {
		return 0
	}
	return 100 * float64(n) / float64(b.TotalChanged)
}

// PctInstances returns n as a percentage of all instances.
func (b *Breakdown) PctInstances(n int) float64 {
	if b.TotalInstances == 0 {
		return 0
	}
	return 100 * float64(n) / float64(b.TotalInstances)
}

// ComboLabels returns the composite row labels sorted by descending
// count (stable for reports).
func (b *Breakdown) ComboLabels() []string {
	labels := make([]string, 0, len(b.Combo))
	for l := range b.Combo {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		if b.Combo[labels[i]] != b.Combo[labels[j]] {
			return b.Combo[labels[i]] > b.Combo[labels[j]]
		}
		return labels[i] < labels[j]
	})
	return labels
}
