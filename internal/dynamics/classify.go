package dynamics

import (
	"strings"

	"fpdyn/internal/canvas"
	"fpdyn/internal/diff"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/fontdb"
	"fpdyn/internal/useragent"
)

// ImageProvider resolves a canvas/GPU image hash to its stored pixels.
// The collection server's content-addressed value store provides this:
// the client sends a hash, the server keeps full content, and the
// offline analysis can pixel-diff (the paper's Figure 8 workflow).
type ImageProvider interface {
	Image(hash string) (*canvas.Image, bool)
}

// MapImages adapts a plain map to ImageProvider.
type MapImages map[string]*canvas.Image

// Image implements ImageProvider.
func (m MapImages) Image(hash string) (*canvas.Image, bool) {
	img, ok := m[hash]
	return img, ok
}

// Classifier assigns causes to dynamics. Images is optional; without
// it, canvas changes default to the emoji subtype (the dominant one —
// 87.6% in the paper).
type Classifier struct {
	Images ImageProvider

	// memo caches per-dynamics classifications, keyed by identity.
	// ClassifyAll fills it once (after its parallel pass, so there are
	// no concurrent writes); later Classify calls for the same dynamics
	// — Table 2/3 tallies, correlation updates, report insights — hit
	// the cache instead of re-running the rules.
	memo map[*Dynamics]Classification
}

// Classify determines the causes behind one piece of dynamics,
// following the decision rules of §3.2.2: parse the user agent for
// update semantics, recognize user-action signatures (consistency
// flips, aspect-preserving resolution changes, Flash toggles,
// storage/cookie couplings), and attribute the rest to environment
// updates with font/canvas signature matching. Results computed by a
// prior ClassifyAll are returned from the cache.
func (c *Classifier) Classify(d *Dynamics) Classification {
	if cl, ok := c.memo[d]; ok {
		return cl
	}
	return c.classify(d)
}

// classify runs the decision rules (uncached).
func (c *Classifier) classify(d *Dynamics) Classification {
	var cl Classification
	delta := d.Delta
	from, to := d.From.FP, d.To.FP

	browserUpdated, osUpdated := c.classifyUA(d, &cl)

	// Timezone: user movement.
	if delta.Has(fingerprint.FeatTimezone) {
		cl.add(CauseTimezone)
	}

	// Storage and cookie toggles; private browsing signature.
	cookieToggled := delta.Has(fingerprint.FeatCookie)
	lsToggled := delta.Has(fingerprint.FeatLocalStorage)
	if cookieToggled {
		cl.add(CauseCookieToggle)
	}
	if lsToggled {
		switch {
		case cookieToggled:
			// The Chrome single-checkbox coupling (Insight 3 example 1).
			cl.add(CauseLocalStorage)
		case d.From.Cookie != d.To.Cookie:
			// localStorage flipped alongside a fresh cookie: private
			// browsing's signature (storage unavailable, throwaway cookie).
			cl.add(CausePrivate)
		default:
			cl.add(CauseLocalStorage)
		}
	}

	// Screen resolution and pixel ratio.
	resChanged := delta.Has(fingerprint.FeatScreenResolution)
	prChanged := delta.Has(fingerprint.FeatPixelRatio)
	consResFlipped := delta.Has(fingerprint.FeatConsResolution)
	switch {
	case consResFlipped:
		cl.add(CauseFakeRes)
	case resChanged && sameAspect(from.ScreenResolution, to.ScreenResolution):
		cl.add(CauseZoom)
	case resChanged:
		cl.add(CauseMonitor)
	case prChanged:
		cl.add(CauseZoom)
	}

	// Plugins.
	if fd := delta.Field(fingerprint.FeatPlugins); fd != nil {
		if pluginDeltaIsFlash(fd) {
			cl.add(CauseFlash)
		} else if browserUpdated {
			// Updates may drop bundled plugins (Chromium 62→63, Table 3);
			// already attributed to the update.
		} else {
			cl.add(CausePlugin)
		}
	}

	// Language header.
	if delta.Has(fingerprint.FeatLanguage) {
		switch {
		case delta.Has(fingerprint.FeatConsLanguage):
			cl.add(CauseFakeLang)
		case sharesPrimaryLanguage(from.Language, to.Language):
			cl.add(CauseHeaderLang)
		default:
			cl.add(CauseFakeLang)
		}
	}

	// System language list.
	if delta.Has(fingerprint.FeatLanguageList) {
		cl.add(CauseSysLang)
	}

	// Fonts: software signatures always win; unattributed font churn
	// belongs to the browser/OS update when one happened.
	if fd := delta.Field(fingerprint.FeatFontList); fd != nil {
		if cause, ok := fontCause(fd); ok {
			cl.add(cause)
		} else if !browserUpdated && !osUpdated {
			cl.add(CauseFontOther)
		}
	}

	// Canvas.
	if fd := delta.Field(fingerprint.FeatCanvas); fd != nil {
		if !browserUpdated && !osUpdated {
			cl.add(c.canvasCause(fd))
		}
	}

	// Audio.
	if delta.Has(fingerprint.FeatAudio) {
		cl.add(CauseAudio)
	}

	// GPU: renderer/type churn outside an update is a driver change.
	if (delta.Has(fingerprint.FeatGPUType) || delta.Has(fingerprint.FeatGPURenderer) || delta.Has(fingerprint.FeatGPUImage)) &&
		!browserUpdated && !osUpdated {
		cl.add(CauseGPURender)
	}

	if delta.Has(fingerprint.FeatColorDepth) {
		cl.add(CauseColorDepth)
	}

	return cl
}

// classifyUA handles the user-agent delta: browser updates, OS updates,
// and the two inconsistency actions (desktop-site requests, faked
// agent strings). Returns whether a browser/OS update was detected.
func (c *Classifier) classifyUA(d *Dynamics, cl *Classification) (browserUpdated, osUpdated bool) {
	if !d.Delta.Has(fingerprint.FeatUserAgent) {
		// The browser consistency flag can flip even when the presented
		// UA string happens to match (rare); treat as fake agent.
		if d.Delta.Has(fingerprint.FeatConsBrowser) {
			cl.add(CauseFakeAgent)
		}
		return false, false
	}
	fromUA, errFrom := useragent.CachedParse(d.From.FP.UserAgent)
	toUA, errTo := useragent.CachedParse(d.To.FP.UserAgent)
	if errFrom != nil || errTo != nil {
		cl.add(CauseFakeAgent)
		return false, false
	}

	sameFamily := fromUA.Browser == toUA.Browser
	sameOS := fromUA.OS == toUA.OS

	if sameFamily && sameOS {
		if toUA.OSVersion.Compare(fromUA.OSVersion) > 0 {
			cl.add(CauseOSUpdate)
			osUpdated = true
		}
		if toUA.BrowserVersion.Compare(fromUA.BrowserVersion) > 0 {
			// Mobile Safari ships with iOS: its version bump *is* the OS
			// update, which the paper counts under OS updates only (the
			// reason browser+OS composites are rare in Table 2).
			if !(osUpdated && toUA.Browser == useragent.MobileSafari) {
				cl.add(CauseBrowserUpdate)
				browserUpdated = true
			}
		}
		if !browserUpdated && !osUpdated {
			// Same identity, no forward version movement: downgrade or
			// tampering — the paper observed no genuine OS downgrades.
			cl.add(CauseFakeAgent)
		}
		return browserUpdated, osUpdated
	}

	// Family or platform changed: a desktop request keeps the engine
	// version while swapping the platform; anything else is a faked
	// agent string. Consistency flags corroborate.
	if isDesktopRequestPair(fromUA, toUA) || d.Delta.Has(fingerprint.FeatConsOS) {
		cl.add(CauseDesktopSite)
	} else {
		cl.add(CauseFakeAgent)
	}
	return false, false
}

// isDesktopRequestPair recognizes a mobile↔desktop swap that preserves
// the engine version (Figure 11(a)).
func isDesktopRequestPair(a, b useragent.UA) bool {
	if a.Mobile == b.Mobile {
		return false
	}
	mob, desk := a, b
	if b.Mobile {
		mob, desk = b, a
	}
	return mob.RequestDesktop().Browser == desk.Browser &&
		mob.BrowserVersion.Compare(desk.BrowserVersion) == 0
}

// pluginDeltaIsFlash reports whether the plugin change is exactly a
// Flash toggle.
func pluginDeltaIsFlash(fd *diff.FieldDelta) bool {
	only := func(set []string) bool {
		return len(set) == 1 && set[0] == "Shockwave Flash"
	}
	if len(fd.Added) == 1 && len(fd.Deleted) == 0 {
		return only(fd.Added)
	}
	if len(fd.Deleted) == 1 && len(fd.Added) == 0 {
		return only(fd.Deleted)
	}
	return false
}

// sameAspect reports whether two WxH strings have the same aspect ratio
// within 1.5% (zoom preserves the ratio up to rounding).
func sameAspect(a, b string) bool {
	w1, h1, ok1 := parseRes(a)
	w2, h2, ok2 := parseRes(b)
	if !ok1 || !ok2 || h1 == 0 || h2 == 0 {
		return false
	}
	r1 := float64(w1) / float64(h1)
	r2 := float64(w2) / float64(h2)
	d := r1 - r2
	if d < 0 {
		d = -d
	}
	return d/r1 < 0.015
}

func parseRes(s string) (w, h int, ok bool) {
	i := strings.IndexByte(s, 'x')
	if i <= 0 || i == len(s)-1 {
		return 0, 0, false
	}
	w, okW := atoi(s[:i])
	h, okH := atoi(s[i+1:])
	return w, h, okW && okH
}

func atoi(s string) (int, bool) {
	n := 0
	if s == "" {
		return 0, false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		n = n*10 + int(s[i]-'0')
	}
	return n, true
}

// sharesPrimaryLanguage reports whether two Accept-Language values
// start with the same primary tag — a locale preference tweak rather
// than wholesale spoofing.
func sharesPrimaryLanguage(a, b string) bool {
	return primaryLang(a) == primaryLang(b) && primaryLang(a) != ""
}

func primaryLang(s string) string {
	if i := strings.IndexAny(s, ",;"); i >= 0 {
		s = s[:i]
	}
	if i := strings.IndexByte(s, '-'); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

// fontCause matches a font delta against the known software signatures
// of Insight 1.2 / Appendix A.
func fontCause(fd *diff.FieldDelta) (Cause, bool) {
	overlap := func(sig []string) int {
		set := make(map[string]bool, len(sig))
		for _, f := range sig {
			set[f] = true
		}
		n := 0
		for _, f := range fd.Added {
			if set[f] {
				n++
			}
		}
		return n
	}
	switch {
	case len(fd.Added) == 1 && fd.Added[0] == fontdb.MTExtra:
		return CauseFontOffice, true
	case overlap(fontdb.OfficeDetect) >= len(fontdb.OfficeDetect)/2:
		return CauseFontOffice, true
	case overlap(fontdb.Adobe) >= len(fontdb.Adobe)/2:
		return CauseFontAdobe, true
	case overlap(fontdb.LibreOffice) >= len(fontdb.LibreOffice)/2:
		return CauseFontLibre, true
	case overlap(fontdb.WPS) >= len(fontdb.WPS)/2:
		return CauseFontWPS, true
	}
	return "", false
}

// canvasCause decides the canvas subtype. With stored images it pixel
// diffs (the Figure 8 workflow); without, it defaults to the dominant
// emoji subtype.
func (c *Classifier) canvasCause(fd *diff.FieldDelta) Cause {
	if c.Images != nil {
		a, okA := c.Images.Image(fd.OldHash)
		b, okB := c.Images.Image(fd.NewHash)
		if okA && okB {
			pd := canvas.Diff(a, b)
			if pd.EmojiOnly() {
				return CauseCanvasEmoji
			}
			if pd.TextChanged > 0 && pd.EmojiChanged == 0 {
				return CauseCanvasText
			}
			if pd.EmojiChanged >= pd.TextChanged {
				return CauseCanvasEmoji
			}
			return CauseCanvasText
		}
	}
	return CauseCanvasEmoji
}
