// Package useragent models the user-agent strings observed in the study.
//
// The paper's diff operation (§2.3.2) parses the user agent into ordered
// subfields — browser name, version, subversion, slashes, parentheses and
// even whitespace — so that a Chrome 56→57 update on two differently
// configured instances produces the same delta. This package provides
//
//   - a structured UA type covering every browser/OS family the paper's
//     Table 2 and Figures 5–6 report (Chrome, Firefox, Safari, Edge,
//     Opera, Samsung Internet and their mobile variants, on Windows,
//     Mac OS X, iOS, Android and Linux),
//   - synthesis of realistic UA strings per family (used by the
//     population simulator),
//   - parsing back from string form, and
//   - the ordered-subfield tokenizer the diff engine consumes.
package useragent

import (
	"fmt"
	"strings"
)

// Browser families used throughout the study. The names match the labels
// the paper uses in Table 2 and Figure 5.
const (
	Chrome        = "Chrome"
	ChromeMobile  = "Chrome Mobile"
	Firefox       = "Firefox"
	FirefoxMobile = "Firefox Mobile"
	Safari        = "Safari"
	MobileSafari  = "Mobile Safari"
	Edge          = "Edge"
	Opera         = "Opera"
	Samsung       = "Samsung Internet"
	Maxthon       = "Maxthon"
	IE            = "IE"
)

// OS families, matching Figure 6.
const (
	Windows = "Windows"
	MacOSX  = "Mac OS X"
	IOS     = "iOS"
	Android = "Android"
	Linux   = "Linux"
)

// UA is a structured user agent: the parsed identity of a browser
// instance as transmitted in the User-Agent header.
type UA struct {
	Browser        string  // browser family, e.g. Chrome
	BrowserVersion Version // full browser version
	OS             string  // OS family, e.g. Windows
	OSVersion      Version // OS version as exposed in the UA
	Device         string  // device model for mobile ("SM-J330F", "iPhone"); empty on desktop
	Mobile         bool    // whether this is a mobile-form-factor UA
}

// IsMobileFamily reports whether a browser family name denotes a mobile
// browser.
func IsMobileFamily(browser string) bool {
	switch browser {
	case ChromeMobile, FirefoxMobile, MobileSafari, Samsung:
		return true
	}
	return false
}

// webkitFor returns the AppleWebKit token version appropriate for the
// browser generation; Safari's engine version tracks its own release.
func (u UA) webkitFor() string {
	switch u.Browser {
	case Safari, MobileSafari:
		switch {
		case u.BrowserVersion.Major >= 12:
			return "605.1.15"
		case u.BrowserVersion.Major >= 11:
			return "604.4.7"
		default:
			return "603.3.8"
		}
	}
	return "537.36"
}

// chromeEngineVersion returns the Chrome/x token embedded in Samsung
// Internet UAs: Samsung pins an older Chromium engine.
func samsungEngine(samsungMajor int) string {
	switch {
	case samsungMajor >= 7:
		return "59.0.3071.125"
	case samsungMajor >= 6:
		return "56.0.2924.87"
	default:
		return "51.0.2704.106"
	}
}

// String synthesizes the canonical user-agent string for the structured
// UA. The formats follow the real-world conventions of each family so
// that parsing, subfield diffing and report examples (e.g. Figure 11)
// look like the paper's.
func (u UA) String() string {
	switch u.Browser {
	case Chrome:
		return fmt.Sprintf("Mozilla/5.0 (%s) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%s Safari/537.36",
			u.desktopPlatform(), u.BrowserVersion)
	case ChromeMobile:
		if u.OS == IOS {
			// Chrome on iOS wraps WebKit and announces itself as CriOS.
			return fmt.Sprintf("Mozilla/5.0 (%s; CPU %s %s like Mac OS X) AppleWebKit/604.4.7 (KHTML, like Gecko) CriOS/%s Mobile/15C114 Safari/604.1",
				u.Device, iphoneOSToken(u.Device), u.OSVersion.Underscored(), u.BrowserVersion)
		}
		return fmt.Sprintf("Mozilla/5.0 (Linux; Android %s; %s) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%s Mobile Safari/537.36",
			u.OSVersion, u.Device, u.BrowserVersion)
	case Samsung:
		device := ""
		if u.Device != "" {
			device = "; SAMSUNG " + u.Device
		}
		return fmt.Sprintf("Mozilla/5.0 (Linux; Android %s%s) AppleWebKit/537.36 (KHTML, like Gecko) SamsungBrowser/%d.%d Chrome/%s Mobile Safari/537.36",
			u.OSVersion, device, u.BrowserVersion.Major, max0(u.BrowserVersion.Minor), samsungEngine(u.BrowserVersion.Major))
	case Firefox:
		return fmt.Sprintf("Mozilla/5.0 (%s; rv:%d.0) Gecko/20100101 Firefox/%d.0",
			u.desktopPlatform(), u.BrowserVersion.Major, u.BrowserVersion.Major)
	case FirefoxMobile:
		if u.OS == IOS {
			// Firefox on iOS wraps WebKit and announces itself as FxiOS.
			return fmt.Sprintf("Mozilla/5.0 (%s; CPU %s %s like Mac OS X) AppleWebKit/604.4.7 (KHTML, like Gecko) FxiOS/%d.0 Mobile/15C114 Safari/604.1",
				u.Device, iphoneOSToken(u.Device), u.OSVersion.Underscored(), u.BrowserVersion.Major)
		}
		return fmt.Sprintf("Mozilla/5.0 (Android %s; Mobile; rv:%d.0) Gecko/%d.0 Firefox/%d.0",
			u.OSVersion, u.BrowserVersion.Major, u.BrowserVersion.Major, u.BrowserVersion.Major)
	case Safari:
		wk := u.webkitFor()
		return fmt.Sprintf("Mozilla/5.0 (Macintosh; Intel Mac OS X %s) AppleWebKit/%s (KHTML, like Gecko) Version/%s Safari/%s",
			u.OSVersion.Underscored(), wk, u.BrowserVersion, wk)
	case MobileSafari:
		wk := u.webkitFor()
		return fmt.Sprintf("Mozilla/5.0 (%s; CPU %s %s like Mac OS X) AppleWebKit/%s (KHTML, like Gecko) Version/%s Mobile/15C153 Safari/604.1",
			u.Device, iphoneOSToken(u.Device), u.OSVersion.Underscored(), wk, u.BrowserVersion)
	case Edge:
		return fmt.Sprintf("Mozilla/5.0 (%s) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/58.0.3029.110 Safari/537.36 Edge/%d.%d",
			u.desktopPlatform(), u.BrowserVersion.Major, max0(u.BrowserVersion.Minor))
	case Opera:
		return fmt.Sprintf("Mozilla/5.0 (%s) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/62.0.3202.94 Safari/537.36 OPR/%s",
			u.desktopPlatform(), u.BrowserVersion)
	case Maxthon:
		return fmt.Sprintf("Mozilla/5.0 (%s) AppleWebKit/537.36 (KHTML, like Gecko) Maxthon/%s Chrome/61.0.3163.79 Safari/537.36",
			u.desktopPlatform(), u.BrowserVersion)
	case IE:
		return fmt.Sprintf("Mozilla/5.0 (Windows NT %s; Trident/7.0; rv:%d.0) like Gecko",
			u.OSVersion, u.BrowserVersion.Major)
	}
	return fmt.Sprintf("Mozilla/5.0 (Unknown) Generic/%s", u.BrowserVersion)
}

func max0(n int) int {
	if n < 0 {
		return 0
	}
	return n
}

// desktopPlatform renders the parenthesised platform token for desktop
// UAs.
func (u UA) desktopPlatform() string {
	switch u.OS {
	case Windows:
		return fmt.Sprintf("Windows NT %s; Win64; x64", windowsNT(u.OSVersion))
	case MacOSX:
		return fmt.Sprintf("Macintosh; Intel Mac OS X %s", u.OSVersion.Underscored())
	case Linux:
		return "X11; Linux x86_64"
	}
	return "X11; Linux x86_64"
}

// windowsNT maps marketing Windows versions to their NT kernel tokens.
func windowsNT(v Version) string {
	switch v.Major {
	case 7:
		return "6.1"
	case 8:
		if v.Minor == 1 {
			return "6.3"
		}
		return "6.2"
	case 10:
		return "10.0"
	}
	return v.String()
}

// ntToWindows is the inverse of windowsNT.
func ntToWindows(s string) Version {
	switch s {
	case "6.1":
		return V(7)
	case "6.2":
		return V(8)
	case "6.3":
		return V(8, 1)
	case "10.0":
		return V(10)
	}
	if v, err := ParseVersion(s); err == nil {
		return v
	}
	return V(0)
}

func iphoneOSToken(device string) string {
	if strings.Contains(device, "iPad") {
		return "OS" // iPad UAs read "CPU OS 11_2 like Mac OS X"
	}
	return "iPhone OS"
}

// RequestDesktop returns the UA a mobile browser presents after the user
// requests the desktop version of a site: the platform token switches to
// a desktop one while the engine/version tokens stay. This is the
// paper's Figure 11(a) false-negative scenario.
func (u UA) RequestDesktop() UA {
	d := u
	d.Mobile = false
	d.Device = ""
	switch u.Browser {
	case ChromeMobile, Samsung:
		d.Browser = Chrome
		d.OS = Linux
		d.OSVersion = V(0)
	case MobileSafari:
		d.Browser = Safari
		d.OS = MacOSX
		d.OSVersion = V(10, 13)
	case FirefoxMobile:
		d.Browser = Firefox
		d.OS = Linux
		d.OSVersion = V(0)
	}
	return d
}
