package useragent

import (
	"fmt"
	"strconv"
	"strings"
)

// Version is a dotted software version with up to four components
// (major.minor.patch.build). Missing components are -1 and are omitted
// when formatting, so Version{63, 0, 3239, 132} prints "63.0.3239.132"
// while Version{11, 2, -1, -1} prints "11.2".
type Version struct {
	Major, Minor, Patch, Build int
}

// V constructs a Version from the given components; pass fewer than four
// to leave the remainder unset.
func V(parts ...int) Version {
	v := Version{-1, -1, -1, -1}
	if len(parts) > 0 {
		v.Major = parts[0]
	}
	if len(parts) > 1 {
		v.Minor = parts[1]
	}
	if len(parts) > 2 {
		v.Patch = parts[2]
	}
	if len(parts) > 3 {
		v.Build = parts[3]
	}
	return v
}

// ParseVersion parses a dotted version string. It accepts 1–4 numeric
// components; anything else is an error.
func ParseVersion(s string) (Version, error) {
	v := Version{-1, -1, -1, -1}
	if s == "" {
		return v, fmt.Errorf("useragent: empty version")
	}
	parts := strings.Split(s, ".")
	if len(parts) > 4 {
		return v, fmt.Errorf("useragent: too many version components in %q", s)
	}
	dst := []*int{&v.Major, &v.Minor, &v.Patch, &v.Build}
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return Version{-1, -1, -1, -1}, fmt.Errorf("useragent: bad version component %q in %q", p, s)
		}
		*dst[i] = n
	}
	return v, nil
}

// String formats the version, omitting unset trailing components.
func (v Version) String() string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(v.Major))
	for _, c := range []int{v.Minor, v.Patch, v.Build} {
		if c < 0 {
			break
		}
		b.WriteByte('.')
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// Underscored formats like String but with underscores, the convention
// Apple platforms use inside user-agent strings ("10_13_2").
func (v Version) Underscored() string {
	return strings.ReplaceAll(v.String(), ".", "_")
}

// Compare returns -1, 0 or +1 as v is lower than, equal to, or higher
// than o. Unset components compare as zero, so 11 == 11.0.
func (v Version) Compare(o Version) int {
	cmp := func(a, b int) int {
		if a < 0 {
			a = 0
		}
		if b < 0 {
			b = 0
		}
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	if c := cmp(v.Major, o.Major); c != 0 {
		return c
	}
	if c := cmp(v.Minor, o.Minor); c != 0 {
		return c
	}
	if c := cmp(v.Patch, o.Patch); c != 0 {
		return c
	}
	return cmp(v.Build, o.Build)
}

// Less reports whether v sorts before o.
func (v Version) Less(o Version) bool { return v.Compare(o) < 0 }

// IsZero reports whether the version is entirely unset.
func (v Version) IsZero() bool { return v.Major < 0 }
