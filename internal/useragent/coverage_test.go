package useragent

import (
	"strings"
	"testing"
)

func TestIsMobileFamily(t *testing.T) {
	for _, f := range []string{ChromeMobile, FirefoxMobile, MobileSafari, Samsung} {
		if !IsMobileFamily(f) {
			t.Errorf("%s should be mobile", f)
		}
	}
	for _, f := range []string{Chrome, Firefox, Safari, Edge, Opera, IE, Maxthon} {
		if IsMobileFamily(f) {
			t.Errorf("%s should not be mobile", f)
		}
	}
}

func TestVersionLessAndIsZero(t *testing.T) {
	if !V(56).Less(V(57)) || V(57).Less(V(56)) {
		t.Fatal("Less wrong")
	}
	if !(Version{-1, -1, -1, -1}).IsZero() {
		t.Fatal("unset version should be zero")
	}
	if V(1).IsZero() {
		t.Fatal("set version should not be zero")
	}
}

func TestWebkitForSafariGenerations(t *testing.T) {
	cases := []struct {
		v    Version
		want string
	}{
		{V(12, 0), "605.1.15"},
		{V(11, 1), "604.4.7"},
		{V(10, 1, 2), "603.3.8"},
	}
	for _, c := range cases {
		u := UA{Browser: Safari, BrowserVersion: c.v, OS: MacOSX, OSVersion: V(10, 13)}
		if got := u.webkitFor(); got != c.want {
			t.Errorf("webkitFor(Safari %v) = %q, want %q", c.v, got, c.want)
		}
	}
	// Non-Safari families always use the Blink token.
	u := UA{Browser: Chrome, BrowserVersion: V(63)}
	if u.webkitFor() != "537.36" {
		t.Errorf("Chrome webkit = %q", u.webkitFor())
	}
}

func TestSamsungEngineGenerations(t *testing.T) {
	if samsungEngine(7) != "59.0.3071.125" || samsungEngine(6) != "56.0.2924.87" || samsungEngine(5) != "51.0.2704.106" {
		t.Fatal("samsung engine mapping wrong")
	}
}

func TestWindowsNTAllVersions(t *testing.T) {
	cases := []struct {
		v    Version
		want string
	}{
		{V(7), "6.1"}, {V(8), "6.2"}, {V(8, 1), "6.3"}, {V(10), "10.0"},
		{V(11), "11"}, // pass-through for unmapped versions
	}
	for _, c := range cases {
		if got := windowsNT(c.v); got != c.want {
			t.Errorf("windowsNT(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	// Round trips through ntToWindows.
	for _, c := range cases[:4] {
		if got := ntToWindows(c.want); got.Compare(c.v) != 0 {
			t.Errorf("ntToWindows(%q) = %v, want %v", c.want, got, c.v)
		}
	}
	if got := ntToWindows("bogus"); got.Major != 0 {
		t.Errorf("ntToWindows(bogus) = %v", got)
	}
}

func TestDesktopPlatformAllOSes(t *testing.T) {
	for _, c := range []struct {
		os   string
		want string
	}{
		{Windows, "Windows NT"},
		{MacOSX, "Macintosh"},
		{Linux, "X11; Linux"},
		{"SomethingElse", "X11; Linux"}, // fallback
	} {
		u := UA{Browser: Chrome, BrowserVersion: V(63), OS: c.os, OSVersion: V(10, 13)}
		if got := u.desktopPlatform(); !strings.Contains(got, c.want) {
			t.Errorf("desktopPlatform(%s) = %q", c.os, got)
		}
	}
}

func TestRequestDesktopAllFamilies(t *testing.T) {
	cases := []struct {
		family string
		want   string
	}{
		{ChromeMobile, Chrome},
		{Samsung, Chrome},
		{MobileSafari, Safari},
		{FirefoxMobile, Firefox},
	}
	for _, c := range cases {
		m := UA{Browser: c.family, BrowserVersion: V(60), OS: Android, OSVersion: V(8), Device: "X", Mobile: true}
		if c.family == MobileSafari {
			m.OS = IOS
		}
		d := m.RequestDesktop()
		if d.Browser != c.want || d.Mobile || d.Device != "" {
			t.Errorf("RequestDesktop(%s) = %+v", c.family, d)
		}
	}
	// A desktop UA is unchanged.
	desk := UA{Browser: Chrome, BrowserVersion: V(63), OS: Windows, OSVersion: V(10)}
	if got := desk.RequestDesktop(); got.Browser != Chrome || got.OS != Windows {
		t.Errorf("desktop RequestDesktop = %+v", got)
	}
}

func TestIEAndUnknownFamilies(t *testing.T) {
	ie := UA{Browser: IE, BrowserVersion: V(11), OS: Windows, OSVersion: V(7)}
	s := ie.String()
	if !strings.Contains(s, "Trident/7.0") || !strings.Contains(s, "rv:11.0") {
		t.Fatalf("IE UA = %q", s)
	}
	parsed, err := Parse(s)
	if err != nil || parsed.Browser != IE || parsed.OSVersion.Major != 7 {
		t.Fatalf("IE parse = %+v, %v", parsed, err)
	}
	unknown := UA{Browser: "Netscape", BrowserVersion: V(4)}
	if !strings.Contains(unknown.String(), "Generic/4") {
		t.Fatalf("unknown family UA = %q", unknown.String())
	}
}

func TestMax0(t *testing.T) {
	if max0(-3) != 0 || max0(5) != 5 || max0(0) != 0 {
		t.Fatal("max0 wrong")
	}
}

func TestIPadOSToken(t *testing.T) {
	ipad := UA{Browser: MobileSafari, BrowserVersion: V(11, 0), OS: IOS, OSVersion: V(11, 2), Device: "iPad", Mobile: true}
	s := ipad.String()
	if !strings.Contains(s, "CPU OS 11_2 like Mac OS X") {
		t.Fatalf("iPad UA = %q (want the bare OS token)", s)
	}
	iphone := UA{Browser: MobileSafari, BrowserVersion: V(11, 0), OS: IOS, OSVersion: V(11, 2), Device: "iPhone", Mobile: true}
	if !strings.Contains(iphone.String(), "CPU iPhone OS 11_2") {
		t.Fatalf("iPhone UA = %q", iphone.String())
	}
}

func TestParseOperaAndMaxthon(t *testing.T) {
	op := UA{Browser: Opera, BrowserVersion: V(50, 0, 2762, 45), OS: Windows, OSVersion: V(10)}
	got, err := Parse(op.String())
	if err != nil || got.Browser != Opera {
		t.Fatalf("Opera parse = %+v, %v", got, err)
	}
	mx := UA{Browser: Maxthon, BrowserVersion: V(5, 1, 3, 2000), OS: Windows, OSVersion: V(10)}
	got, err = Parse(mx.String())
	if err != nil || got.Browser != Maxthon {
		t.Fatalf("Maxthon parse = %+v, %v", got, err)
	}
}
