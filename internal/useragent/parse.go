package useragent

import (
	"fmt"
	"regexp"
	"strings"
)

// Parsing covers the UA formats this package synthesizes (every family in
// the study). The collection client uses Parse to derive the Browser, OS
// and Device features of Table 1 from the raw User-Agent header, and the
// dynamics classifier uses it to decide whether a UA delta is a browser
// update, an OS update, or an inconsistency.

var (
	reSamsung    = regexp.MustCompile(`SamsungBrowser/([\d.]+)`)
	reChrome     = regexp.MustCompile(`Chrome/([\d.]+)`)
	reCriOS      = regexp.MustCompile(`CriOS/([\d.]+)`)
	reFxiOS      = regexp.MustCompile(`FxiOS/([\d.]+)`)
	reFirefox    = regexp.MustCompile(`Firefox/([\d.]+)`)
	reVersionTok = regexp.MustCompile(`Version/([\d.]+)`)
	reEdge       = regexp.MustCompile(`Edge/([\d.]+)`)
	reOpera      = regexp.MustCompile(`OPR/([\d.]+)`)
	reMaxthon    = regexp.MustCompile(`Maxthon/([\d.]+)`)
	reTrident    = regexp.MustCompile(`Trident/[\d.]+; rv:([\d.]+)`)
	reWindowsNT  = regexp.MustCompile(`Windows NT ([\d.]+)`)
	reMacOS      = regexp.MustCompile(`Mac OS X ([\d_]+)`)
	reIOSDevice  = regexp.MustCompile(`\((iPhone|iPad|iPod touch); CPU (?:iPhone )?OS ([\d_]+) like Mac OS X\)`)
	reAndroid    = regexp.MustCompile(`Android ([\d.]+)(?:; (?:SAMSUNG )?([^);]+))?`)
)

// Parse decodes a user-agent string into its structured form. It
// recognizes the formats synthesized by UA.String; for anything else it
// returns an error (the collection pipeline records such UAs verbatim and
// flags a consistency feature instead of guessing).
func Parse(s string) (UA, error) {
	var u UA
	switch {
	case reSamsung.MatchString(s):
		u.Browser = Samsung
		u.Mobile = true
		u.BrowserVersion = mustVer(reSamsung, s)
	case reOpera.MatchString(s):
		u.Browser = Opera
		u.BrowserVersion = mustVer(reOpera, s)
	case reEdge.MatchString(s):
		u.Browser = Edge
		u.BrowserVersion = mustVer(reEdge, s)
	case reMaxthon.MatchString(s):
		u.Browser = Maxthon
		u.BrowserVersion = mustVer(reMaxthon, s)
	case reCriOS.MatchString(s):
		u.Browser = ChromeMobile
		u.Mobile = true
		u.BrowserVersion = mustVer(reCriOS, s)
	case reFxiOS.MatchString(s):
		u.Browser = FirefoxMobile
		u.Mobile = true
		u.BrowserVersion = mustVer(reFxiOS, s)
	case reFirefox.MatchString(s):
		u.BrowserVersion = mustVer(reFirefox, s)
		if strings.Contains(s, "Android") {
			u.Browser = FirefoxMobile
			u.Mobile = true
		} else {
			u.Browser = Firefox
		}
	case reChrome.MatchString(s):
		u.BrowserVersion = mustVer(reChrome, s)
		if strings.Contains(s, "Mobile Safari") {
			u.Browser = ChromeMobile
			u.Mobile = true
		} else {
			u.Browser = Chrome
		}
	case reVersionTok.MatchString(s) && strings.Contains(s, "Safari"):
		u.BrowserVersion = mustVer(reVersionTok, s)
		if strings.Contains(s, "Mobile/") {
			u.Browser = MobileSafari
			u.Mobile = true
		} else {
			u.Browser = Safari
		}
	case reTrident.MatchString(s):
		u.Browser = IE
		u.BrowserVersion = mustVer(reTrident, s)
	default:
		return UA{}, fmt.Errorf("useragent: unrecognized user agent %q", s)
	}

	// Platform.
	switch {
	case reIOSDevice.MatchString(s):
		m := reIOSDevice.FindStringSubmatch(s)
		u.OS = IOS
		u.Device = m[1]
		u.OSVersion = underscoredVer(m[2])
	case reAndroid.MatchString(s):
		m := reAndroid.FindStringSubmatch(s)
		u.OS = Android
		if v, err := ParseVersion(m[1]); err == nil {
			u.OSVersion = v
		}
		if len(m) > 2 {
			u.Device = strings.TrimSpace(m[2])
		}
	case reWindowsNT.MatchString(s):
		u.OS = Windows
		u.OSVersion = ntToWindows(reWindowsNT.FindStringSubmatch(s)[1])
	case reMacOS.MatchString(s):
		u.OS = MacOSX
		u.OSVersion = underscoredVer(reMacOS.FindStringSubmatch(s)[1])
	case strings.Contains(s, "Linux"):
		u.OS = Linux
		u.OSVersion = V(0)
	default:
		u.OS = Linux
		u.OSVersion = V(0)
	}
	// Mobile-only browser families imply their platform even when the
	// platform token is missing or mangled.
	if u.OS == Linux {
		switch u.Browser {
		case Samsung, FirefoxMobile:
			u.OS = Android
		case ChromeMobile:
			if u.Mobile {
				u.OS = Android
			}
		case MobileSafari:
			u.OS = IOS
		}
	}
	return u, nil
}

func mustVer(re *regexp.Regexp, s string) Version {
	m := re.FindStringSubmatch(s)
	v, err := ParseVersion(m[1])
	if err != nil {
		return V(0)
	}
	return v
}

func underscoredVer(s string) Version {
	v, err := ParseVersion(strings.ReplaceAll(s, "_", "."))
	if err != nil {
		return V(0)
	}
	return v
}

// Subfields tokenizes a user-agent (or any header) string into the
// ordered subfields of §2.3.2: runs of letters/digits, individual
// punctuation marks, and runs of whitespace each become one subfield.
// Keeping whitespace as its own token preserves deltas like Maxthon's
// "gzip,deflate" → "gzip, deflate" change cited in the paper.
func Subfields(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	var cur strings.Builder
	class := func(r byte) int {
		switch {
		case r == ' ' || r == '\t':
			return 0 // whitespace run
		case r >= '0' && r <= '9':
			return 1 // digit run
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
			return 2 // letter run
		default:
			return 3 // punctuation: one token per character
		}
	}
	prev := -1
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := class(s[i])
		if c == 3 { // punctuation never coalesces
			flush()
			out = append(out, s[i:i+1]) // byte-exact slice, not a rune conversion
			prev = -1
			continue
		}
		if c != prev {
			flush()
		}
		cur.WriteByte(s[i])
		prev = c
	}
	flush()
	return out
}

// JoinSubfields reassembles a subfield slice back into the original
// string. Subfields and JoinSubfields are exact inverses.
func JoinSubfields(fields []string) string {
	return strings.Join(fields, "")
}
