package useragent

import (
	"fmt"
	"sync"
	"testing"
)

// TestCachedParseAgreesWithParse: the memo must be invisible — same
// result and same error disposition as Parse for every input, hot or
// cold.
func TestCachedParseAgreesWithParse(t *testing.T) {
	inputs := []string{
		UA{Browser: Chrome, BrowserVersion: V(63, 0, 3239, 132), OS: Windows, OSVersion: V(10)}.String(),
		UA{Browser: Firefox, BrowserVersion: V(58), OS: Linux}.String(),
		UA{Browser: MobileSafari, BrowserVersion: V(11, 0), OS: IOS, OSVersion: V(11, 2), Device: "iPhone", Mobile: true}.String(),
		UA{Browser: Samsung, BrowserVersion: V(6, 2), OS: Android, OSVersion: V(7, 0), Device: "SM-J330F", Mobile: true}.String(),
		"TotallyUnknownAgent/1.0",
		"",
	}
	for _, s := range inputs {
		want, wantErr := Parse(s)
		for pass := 0; pass < 2; pass++ { // cold then hot
			got, gotErr := CachedParse(s)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("CachedParse(%q) pass %d: err=%v, Parse err=%v", s, pass, gotErr, wantErr)
			}
			if got != want {
				t.Fatalf("CachedParse(%q) pass %d = %+v, want %+v", s, pass, got, want)
			}
		}
	}
}

// TestCachedParseConcurrent exercises the memo from many goroutines;
// meaningful under -race.
func TestCachedParseConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				u := UA{Browser: Chrome, BrowserVersion: V(50+i%20, 0), OS: Windows, OSVersion: V(10)}
				s := u.String()
				got, err := CachedParse(s)
				if err != nil || got.Browser != Chrome {
					t.Errorf("goroutine %d: CachedParse(%q) = %+v, %v", g, s, got, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCachedParseBounded: the memo resets instead of growing without
// bound when sprayed with unique strings.
func TestCachedParseBounded(t *testing.T) {
	for i := 0; i < maxParseCache+10; i++ {
		CachedParse(fmt.Sprintf("SprayAgent/%d.0", i))
	}
	parseCache.mu.RLock()
	n := len(parseCache.m)
	parseCache.mu.RUnlock()
	if n > maxParseCache {
		t.Fatalf("cache grew to %d entries, cap is %d", n, maxParseCache)
	}
}
