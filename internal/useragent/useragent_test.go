package useragent

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestVersionString(t *testing.T) {
	cases := []struct {
		v    Version
		want string
	}{
		{V(63, 0, 3239, 132), "63.0.3239.132"},
		{V(11, 2), "11.2"},
		{V(58), "58"},
		{V(7, 0), "7.0"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("Version%v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseVersionRoundTrip(t *testing.T) {
	for _, s := range []string{"63.0.3239.132", "11.2", "58", "10.13.2"} {
		v, err := ParseVersion(s)
		if err != nil {
			t.Fatalf("ParseVersion(%q): %v", s, err)
		}
		if v.String() != s {
			t.Errorf("round trip %q -> %q", s, v.String())
		}
	}
}

func TestParseVersionErrors(t *testing.T) {
	for _, s := range []string{"", "a.b", "1.2.3.4.5", "1.-2", "1..2"} {
		if _, err := ParseVersion(s); err == nil {
			t.Errorf("ParseVersion(%q) should fail", s)
		}
	}
}

func TestVersionCompare(t *testing.T) {
	cases := []struct {
		a, b Version
		want int
	}{
		{V(56), V(57), -1},
		{V(57), V(56), 1},
		{V(11, 2), V(11, 2), 0},
		{V(11), V(11, 0), 0}, // unset compares as zero
		{V(10, 3, 2), V(10, 3, 3), -1},
		{V(63, 0, 3239, 108), V(63, 0, 3239, 132), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestVersionUnderscored(t *testing.T) {
	if got := V(10, 13, 2).Underscored(); got != "10_13_2" {
		t.Errorf("Underscored = %q", got)
	}
}

// sample returns one representative UA per family.
func sampleUAs() []UA {
	return []UA{
		{Browser: Chrome, BrowserVersion: V(63, 0, 3239, 132), OS: Windows, OSVersion: V(10)},
		{Browser: Chrome, BrowserVersion: V(64, 0, 3282, 140), OS: MacOSX, OSVersion: V(10, 13, 2)},
		{Browser: ChromeMobile, BrowserVersion: V(63, 0, 3239, 111), OS: Android, OSVersion: V(7, 0), Device: "SM-G920F", Mobile: true},
		{Browser: Samsung, BrowserVersion: V(6, 2), OS: Android, OSVersion: V(7, 0), Device: "SM-J330F", Mobile: true},
		{Browser: Firefox, BrowserVersion: V(58), OS: Windows, OSVersion: V(7)},
		{Browser: FirefoxMobile, BrowserVersion: V(58), OS: Android, OSVersion: V(8, 0, 0), Mobile: true},
		{Browser: Safari, BrowserVersion: V(11, 0, 2), OS: MacOSX, OSVersion: V(10, 13, 2)},
		{Browser: MobileSafari, BrowserVersion: V(11, 0), OS: IOS, OSVersion: V(11, 2, 1), Device: "iPhone", Mobile: true},
		{Browser: ChromeMobile, BrowserVersion: V(63, 0, 3239, 73), OS: IOS, OSVersion: V(11, 2), Device: "iPhone", Mobile: true},
		{Browser: FirefoxMobile, BrowserVersion: V(10), OS: IOS, OSVersion: V(11, 2), Device: "iPad", Mobile: true},
		{Browser: Edge, BrowserVersion: V(16, 16299), OS: Windows, OSVersion: V(10)},
		{Browser: Opera, BrowserVersion: V(49, 0, 2725, 47), OS: Windows, OSVersion: V(10)},
		{Browser: Maxthon, BrowserVersion: V(5, 1, 3, 2000), OS: Windows, OSVersion: V(10)},
	}
}

func TestSynthesizeParseRoundTrip(t *testing.T) {
	for _, u := range sampleUAs() {
		s := u.String()
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got.Browser != u.Browser {
			t.Errorf("%q: browser = %q, want %q", s, got.Browser, u.Browser)
		}
		if got.BrowserVersion.Compare(u.BrowserVersion) != 0 {
			t.Errorf("%q: version = %v, want %v", s, got.BrowserVersion, u.BrowserVersion)
		}
		if got.OS != u.OS {
			t.Errorf("%q: os = %q, want %q", s, got.OS, u.OS)
		}
		if got.Mobile != u.Mobile {
			t.Errorf("%q: mobile = %v, want %v", s, got.Mobile, u.Mobile)
		}
	}
}

func TestParseDeviceModel(t *testing.T) {
	u := UA{Browser: Samsung, BrowserVersion: V(6, 2), OS: Android, OSVersion: V(7, 0), Device: "SM-J330F", Mobile: true}
	got, err := Parse(u.String())
	if err != nil {
		t.Fatal(err)
	}
	if got.Device != "SM-J330F" {
		t.Errorf("device = %q, want SM-J330F", got.Device)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "curl/7.58.0", "definitely not a UA"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestWindowsNTTokens(t *testing.T) {
	u := UA{Browser: Chrome, BrowserVersion: V(63), OS: Windows, OSVersion: V(7)}
	if s := u.String(); !strings.Contains(s, "Windows NT 6.1") {
		t.Errorf("Windows 7 should render NT 6.1, got %q", s)
	}
	got, err := Parse(u.String())
	if err != nil {
		t.Fatal(err)
	}
	if got.OSVersion.Major != 7 {
		t.Errorf("parsed windows version = %v, want 7", got.OSVersion)
	}
}

func TestRequestDesktopScenario(t *testing.T) {
	// Figure 11(a): mobile Chrome requesting a desktop page presents a
	// Linux desktop UA with the same Chrome version.
	m := UA{Browser: ChromeMobile, BrowserVersion: V(77, 0, 3865, 92), OS: Android, OSVersion: V(9), Device: "SM-N960U", Mobile: true}
	d := m.RequestDesktop()
	if d.Browser != Chrome || d.OS != Linux || d.Mobile {
		t.Fatalf("RequestDesktop = %+v", d)
	}
	if d.BrowserVersion.Compare(m.BrowserVersion) != 0 {
		t.Error("browser version must be preserved across desktop request")
	}
	if !strings.Contains(d.String(), "X11; Linux x86_64") {
		t.Errorf("desktop UA = %q", d.String())
	}
}

func TestRequestDesktopSafari(t *testing.T) {
	m := UA{Browser: MobileSafari, BrowserVersion: V(11, 0), OS: IOS, OSVersion: V(11, 2), Device: "iPad", Mobile: true}
	d := m.RequestDesktop()
	if d.Browser != Safari || d.OS != MacOSX {
		t.Fatalf("RequestDesktop for iOS = %+v", d)
	}
}

func TestSubfieldsWhitespacePreserved(t *testing.T) {
	// The Maxthon 4.9→5.1 example: "gzip,deflate" vs "gzip, deflate".
	a := Subfields("gzip,deflate")
	b := Subfields("gzip, deflate")
	if len(b) != len(a)+1 {
		t.Fatalf("whitespace must be its own subfield: %v vs %v", a, b)
	}
}

func TestSubfieldsJoinInverse(t *testing.T) {
	for _, u := range sampleUAs() {
		s := u.String()
		if got := JoinSubfields(Subfields(s)); got != s {
			t.Errorf("join(subfields(%q)) = %q", s, got)
		}
	}
}

func TestSubfieldsSplitsVersions(t *testing.T) {
	fields := Subfields("Chrome/63.0.3239.132")
	// Expect "Chrome", "/", "63", ".", "0", ".", "3239", ".", "132".
	if len(fields) != 9 {
		t.Fatalf("fields = %v (len %d), want 9 tokens", fields, len(fields))
	}
	if fields[0] != "Chrome" || fields[2] != "63" || fields[8] != "132" {
		t.Fatalf("unexpected tokenization: %v", fields)
	}
}

func TestSubfieldsEmpty(t *testing.T) {
	if got := Subfields(""); got != nil {
		t.Errorf("Subfields(\"\") = %v, want nil", got)
	}
}

// Property: JoinSubfields is the exact inverse of Subfields for printable
// ASCII strings (the character set of real header values).
func TestSubfieldsRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		s := make([]byte, 0, len(raw))
		for _, b := range raw {
			s = append(s, 32+b%95) // printable ASCII
		}
		return JoinSubfields(Subfields(string(s))) == string(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: version compare is antisymmetric and String round-trips.
func TestVersionCompareProperty(t *testing.T) {
	f := func(a, b uint8, c, d uint8) bool {
		v1 := V(int(a), int(b))
		v2 := V(int(c), int(d))
		if v1.Compare(v2) != -v2.Compare(v1) {
			return false
		}
		rt, err := ParseVersion(v1.String())
		return err == nil && rt.Compare(v1) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseChrome(b *testing.B) {
	s := UA{Browser: Chrome, BrowserVersion: V(63, 0, 3239, 132), OS: Windows, OSVersion: V(10)}.String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubfields(b *testing.B) {
	s := UA{Browser: Samsung, BrowserVersion: V(6, 2), OS: Android, OSVersion: V(7, 0), Device: "SM-J330F", Mobile: true}.String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Subfields(s)
	}
}
