package useragent

import "testing"

// FuzzParse exercises the UA parser with arbitrary input: it must
// never panic, and whatever it accepts must re-render to a string that
// parses back to the same structured identity.
func FuzzParse(f *testing.F) {
	for _, u := range sampleUAs() {
		f.Add(u.String())
	}
	f.Add("")
	f.Add("curl/7.58.0")
	f.Add("Mozilla/5.0 (Windows NT 99.9) Chrome/1.2.3.4.5.6")
	f.Add("Chrome/63.0.3239.132 SamsungBrowser/6.2 OPR/1 Edge/2 Firefox/3")
	f.Fuzz(func(t *testing.T, s string) {
		ua1, err := Parse(s)
		if err != nil {
			return
		}
		// Arbitrary input may describe combinations our synthesizer
		// cannot render (e.g. a desktop browser claiming Android), so
		// the first round may normalize. The invariant is convergence:
		// after one parse→render round, identity must be a fixed point.
		ua2, err := Parse(ua1.String())
		if err != nil {
			t.Fatalf("synthesized UA unparseable: %q from %q", ua1.String(), s)
		}
		ua3, err := Parse(ua2.String())
		if err != nil {
			t.Fatalf("re-synthesized UA unparseable: %q", ua2.String())
		}
		if ua3.Browser != ua2.Browser || ua3.OS != ua2.OS || ua3.Mobile != ua2.Mobile {
			t.Fatalf("identity did not converge: %#v vs %#v (input %q)", ua3, ua2, s)
		}
	})
}

// FuzzSubfields verifies the tokenizer's exact-inverse property on
// arbitrary strings.
func FuzzSubfields(f *testing.F) {
	f.Add("gzip, deflate, br")
	f.Add("Mozilla/5.0 (Windows NT 10.0; Win64; x64)")
	f.Add("")
	f.Add("  spaces   and\ttabs ")
	f.Fuzz(func(t *testing.T, s string) {
		if got := JoinSubfields(Subfields(s)); got != s {
			t.Fatalf("join(subfields(%q)) = %q", s, got)
		}
	})
}

// FuzzParseVersion: the version parser must never panic and accepted
// versions must round trip.
func FuzzParseVersion(f *testing.F) {
	f.Add("63.0.3239.132")
	f.Add("11.2")
	f.Add("")
	f.Add("1..2")
	f.Add("-1.2")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseVersion(s)
		if err != nil {
			return
		}
		rt, err := ParseVersion(v.String())
		if err != nil || rt.Compare(v) != 0 {
			t.Fatalf("version %q did not round trip: %v, %v", s, rt, err)
		}
	})
}
