package useragent

import "sync"

// maxParseCache bounds the memo below. The UA strings of a real
// deployment have low cardinality relative to traffic (the study's 7.2M
// fingerprints carry ~115K distinct user agents), so a memo converges
// quickly — but a hostile or misconfigured client could spray unique
// strings, so the cache resets instead of growing without bound.
const maxParseCache = 1 << 16

type parseResult struct {
	ua  UA
	err error
}

var parseCache struct {
	mu sync.RWMutex
	m  map[string]parseResult
}

// CachedParse is Parse behind a process-wide concurrent memo. The
// matching engine calls it on every query and every stored fingerprint,
// and the pair-model trainer calls it once per training pair; memoizing
// turns the regex cascade into a map lookup for every repeat string.
// Errors are cached too: an unparseable UA stays unparseable.
func CachedParse(s string) (UA, error) {
	parseCache.mu.RLock()
	r, ok := parseCache.m[s]
	parseCache.mu.RUnlock()
	if ok {
		return r.ua, r.err
	}
	ua, err := Parse(s)
	parseCache.mu.Lock()
	if parseCache.m == nil || len(parseCache.m) >= maxParseCache {
		parseCache.m = make(map[string]parseResult, 1024)
	}
	parseCache.m[s] = parseResult{ua, err}
	parseCache.mu.Unlock()
	return ua, err
}
