package report

import (
	"bytes"
	"strings"
	"testing"

	"fpdyn/internal/population"
)

var repWorld *population.Dataset

func reporter(t testing.TB) (*Reporter, *bytes.Buffer) {
	if repWorld == nil {
		cfg := population.DefaultConfig(900)
		cfg.Seed = 6
		repWorld = population.Simulate(cfg)
	}
	var buf bytes.Buffer
	return New(repWorld, &buf), &buf
}

// contains asserts every needle appears in the rendered output.
func contains(t *testing.T, buf *bytes.Buffer, needles ...string) {
	t.Helper()
	out := buf.String()
	for _, n := range needles {
		if !strings.Contains(out, n) {
			t.Errorf("output missing %q\n--- got:\n%.600s", n, out)
		}
	}
}

func TestSummary(t *testing.T) {
	r, buf := reporter(t)
	r.Summary()
	contains(t, buf, "fingerprints", "browser instances", "dynamics")
}

func TestEstimateSection(t *testing.T) {
	r, buf := reporter(t)
	r.Estimate()
	contains(t, buf, "§2.3.3", "false negatives", "false positives", "cookie-clearing")
}

func TestFig2Section(t *testing.T) {
	r, buf := reporter(t)
	r.Fig2()
	contains(t, buf, "Figure 2", "Mobile Safari", "desktop", "set size ≤")
	// Ten threshold rows.
	if got := strings.Count(buf.String(), "%"); got < 40 {
		t.Errorf("expected a dense percentage table, saw %d%% signs", got)
	}
}

func TestTable1Section(t *testing.T) {
	r, buf := reporter(t)
	r.Table1()
	contains(t, buf, "Table 1", "Font List", "User-agent", "Overall (excluding IP)", "Dyn Distinct #")
}

func TestFig3Through7Sections(t *testing.T) {
	r, buf := reporter(t)
	r.Fig3()
	r.Fig4()
	r.Fig5()
	r.Fig6()
	r.Fig7()
	contains(t, buf,
		"Figure 3", "browser IDs per user ID",
		"Figure 4", "first-time visits",
		"Figure 5", "Chrome",
		"Figure 6", "Windows",
		"Figure 7", "stable share",
	)
}

func TestTable2Section(t *testing.T) {
	r, buf := reporter(t)
	r.Table2()
	contains(t, buf,
		"Table 2", "OS Updates", "Browser Updates", "User Actions", "Environment Updates",
		"change timezone", "Total (instances with ≥1 change)",
	)
}

func TestFig8Section(t *testing.T) {
	r, buf := reporter(t)
	r.Fig8()
	contains(t, buf, "Figure 8", "emoji-only: true", "pixel difference map")
	// The diff map must mark changes only in the right (emoji) half.
	for _, line := range strings.Split(buf.String(), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, ".") && !strings.HasPrefix(line, "X") {
			continue
		}
		if strings.Contains(line[:len(line)/2], "X") {
			t.Fatalf("text-band pixels changed in the fig8 map: %q", line)
		}
	}
}

func TestTable3Section(t *testing.T) {
	r, buf := reporter(t)
	r.Table3()
	contains(t, buf, "Table 3", "Correlated feature")
}

func TestFig12Section(t *testing.T) {
	r, buf := reporter(t)
	r.Fig12()
	contains(t, buf, "Figure 12", "Chrome → 64", "Firefox → 59", "released")
}

func TestInsightSections(t *testing.T) {
	r, buf := reporter(t)
	r.Insight1()
	r.Insight3()
	contains(t, buf,
		"Insight 1.2", "Office", "Insight 1.3", "Insight 1.4", "VPN/proxy",
		"Insight 3", "lift",
	)
}

func TestCompressionSection(t *testing.T) {
	r, buf := reporter(t)
	r.Compression()
	contains(t, buf, "delta ablation", "compression")
}

func TestTradeoffSection(t *testing.T) {
	r, buf := reporter(t)
	r.Tradeoff()
	contains(t, buf, "uniqueness", "Entropy (bits)", "Font List")
}

func TestStemmingSection(t *testing.T) {
	r, buf := reporter(t)
	r.Stemming()
	contains(t, buf, "feature-stemming", "identifiable at anonymous-set size 1")
}

func TestGroundTruthExposed(t *testing.T) {
	r, _ := reporter(t)
	if r.GroundTruth() == nil || r.GroundTruth().NumInstances() == 0 {
		t.Fatal("ground truth not exposed")
	}
}
