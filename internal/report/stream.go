package report

// The out-of-core report path. The in-memory Reporter materializes the
// whole dataset plus ground truth and dynamics; StreamReporter produces
// the same core artifacts — the Summary line, the §2.3.3 estimate and
// Table 2 — from a re-streamable record source in bounded memory:
//
//	pass 1  stream records    → browser-ID union pass (browserid.StreamBuilder)
//	regroup re-stream records → external sort keyed (canonical ID, stream position)
//	analyze merged stream     → per-instance chains: diff, classify in
//	                            fixed-size parallel chunks, accumulate
//
// The regroup sort is what keeps memory flat: grouped by canonical ID,
// each instance's records arrive contiguously in time order, so the
// dynamics chain needs only the previous record and the §2.3.3 cookie
// analysis only the current instance's cookie sequence. What stays
// resident is proportional to instances/users/cookies (the union-find,
// the estimate maps), never to records.
//
// Chunk boundaries are deterministic (fixed ChunkSize over the merged
// order) and chunks are classified with the ordered parallel.Map, so
// output is byte-identical for every worker count — and equal to the
// in-memory Reporter's bytes for the same records.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"fpdyn/internal/browserid"
	"fpdyn/internal/diff"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/extsort"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/obs"
	"fpdyn/internal/parallel"
	"fpdyn/internal/population"
	"fpdyn/internal/storage"
)

// RecordIter iterates time-ordered records; ok=false ends the stream.
type RecordIter interface {
	Next() (*fingerprint.Record, bool, error)
	Close() error
}

// RecordSource opens a fresh iterator over the same record sequence.
// It must be re-openable: the ground-truth build takes two passes.
type RecordSource func() (RecordIter, error)

type sliceIter struct {
	recs []*fingerprint.Record
	i    int
}

func (it *sliceIter) Next() (*fingerprint.Record, bool, error) {
	if it.i >= len(it.recs) {
		return nil, false, nil
	}
	r := it.recs[it.i]
	it.i++
	return r, true, nil
}

func (it *sliceIter) Close() error { return nil }

// SliceSource adapts an in-memory record slice to a RecordSource — the
// legacy entry point for callers that already hold the dataset.
func SliceSource(recs []*fingerprint.Record) RecordSource {
	return func() (RecordIter, error) { return &sliceIter{recs: recs}, nil }
}

type spillIter struct{ rs *population.RecordStream }

func (it *spillIter) Next() (*fingerprint.Record, bool, error) {
	item, ok, err := it.rs.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return item.Rec, true, nil
}

func (it *spillIter) Close() error { return it.rs.Close() }

// SpillSource adapts a spilled simulation to a RecordSource.
func SpillSource(sd *population.SpilledDataset) RecordSource {
	return func() (RecordIter, error) {
		rs, err := sd.Stream()
		if err != nil {
			return nil, err
		}
		return &spillIter{rs: rs}, nil
	}
}

// StreamOptions configures the out-of-core report pipeline.
type StreamOptions struct {
	// Workers is the pool size for hashing, diffing and classifying
	// chunks (0 or 1 = serial, negative = NumCPU). Output is identical
	// for every value.
	Workers int
	// SpillDir hosts the regroup sort's run files (subdirectory
	// "regroup"); empty means a fresh temp directory. Removed when the
	// pipeline finishes either way.
	SpillDir string
	// ChunkSize is the number of records per parallel work chunk
	// (default 8192). It shapes memory and parallelism, never output.
	ChunkSize int
	Registry  *obs.Registry
	Timings   *obs.Timings
	// OpenFile opens regroup run files (fault-injection hook).
	OpenFile func(path string) (storage.SegmentFile, error)
}

func (o *StreamOptions) chunk() int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	return 8192
}

// StreamReporter renders the streaming-computable report sections.
type StreamReporter struct {
	w io.Writer

	records      int64
	numInstances int
	numUsers     int
	numDyns      int64
	numChanged   int64
	breakdown    *dynamics.Breakdown
	est          browserid.Rates
	multiShare   float64
}

// grouped is the regroup sort's item: a record keyed by its canonical
// browser ID and its position in the time-ordered input (the input is
// (time, serial)-sorted, so Seq preserves exactly that order within
// each group).
type grouped struct {
	ID  string              `json:"id"`
	Seq int64               `json:"seq"`
	Rec *fingerprint.Record `json:"rec"`
}

func groupedLess(a, b grouped) bool {
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	return a.Seq < b.Seq
}

// NewStream runs the out-of-core pipeline over src and returns a
// reporter whose Summary, Estimate and Table2 print bytes identical to
// the in-memory Reporter over the same records. images resolves canvas
// hashes for the classifier (nil-able via dynamics.MapImages(nil)).
func NewStream(src RecordSource, images dynamics.ImageProvider, w io.Writer, opts StreamOptions) (*StreamReporter, error) {
	workers := opts.Workers
	if workers == 0 {
		workers = 1
	}
	chunkSize := opts.chunk()
	r := &StreamReporter{w: w}

	var chunkGauge *obs.Gauge
	if opts.Registry != nil {
		chunkGauge = opts.Registry.Gauge("report_stream_chunk_records", "records buffered in the current processing chunk")
	}
	inFlight := func(n int) {
		if chunkGauge != nil {
			chunkGauge.SetInt(int64(n))
		}
	}

	// Pass 1: the cookie-linking union pass. Initial-ID hashing is the
	// hot part; it fans out per chunk while the owner bookkeeping stays
	// serial in stream order (the owner is the FIRST ID seen).
	stop := opts.Timings.Start("ground_truth_pass1")
	builder := browserid.NewStreamBuilder()
	chunk := make([]*fingerprint.Record, 0, chunkSize)
	flushObserve := func() {
		if len(chunk) == 0 {
			return
		}
		inFlight(len(chunk))
		ids := parallel.Map(workers, len(chunk), func(i int) string {
			return browserid.InitialID(chunk[i])
		})
		for i, rec := range chunk {
			builder.ObserveWithID(rec, ids[i])
		}
		chunk = chunk[:0]
		inFlight(0)
	}
	it, err := src()
	if err != nil {
		return nil, err
	}
	for {
		rec, ok, err := it.Next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if !ok {
			break
		}
		r.records++
		chunk = append(chunk, rec)
		if len(chunk) == chunkSize {
			flushObserve()
		}
	}
	flushObserve()
	if err := it.Close(); err != nil {
		return nil, err
	}
	builder.Seal()
	stop(int(r.records))

	// Regroup: re-stream, resolve canonical IDs, spill into an external
	// sort keyed (canonical ID, stream position).
	stop = opts.Timings.Start("regroup")
	root := opts.SpillDir
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "fpdyn-report-*")
		if err != nil {
			return nil, fmt.Errorf("report: spill dir: %w", err)
		}
		defer os.RemoveAll(root)
	}
	sorter, err := extsort.New(extsort.Options[grouped]{
		Dir:  filepath.Join(root, "regroup"),
		Less: groupedLess,
		Encode: func(dst []byte, v grouped) ([]byte, error) {
			b, err := json.Marshal(&v)
			if err != nil {
				return dst, err
			}
			return append(dst, b...), nil
		},
		Decode: func(p []byte) (grouped, error) {
			var v grouped
			err := json.Unmarshal(p, &v)
			return v, err
		},
		MaxRunItems: chunkSize,
		OpenFile:    opts.OpenFile,
		Registry:    opts.Registry,
		Name:        "regroup",
	})
	if err != nil {
		return nil, err
	}
	defer sorter.Close()
	it, err = src()
	if err != nil {
		return nil, err
	}
	var seq int64
	gchunk := make([]*fingerprint.Record, 0, chunkSize)
	flushRegroup := func() error {
		if len(gchunk) == 0 {
			return nil
		}
		inFlight(len(gchunk))
		ids := parallel.Map(workers, len(gchunk), func(i int) string {
			return browserid.InitialID(gchunk[i])
		})
		for i, rec := range gchunk {
			// find() is a serial map walk; the expensive hash above ran
			// on the pool.
			if err := sorter.Push(grouped{ID: builder.CanonicalOf(ids[i]), Seq: seq, Rec: rec}); err != nil {
				return err
			}
			seq++
		}
		gchunk = gchunk[:0]
		inFlight(0)
		return nil
	}
	for {
		rec, ok, err := it.Next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if !ok {
			break
		}
		gchunk = append(gchunk, rec)
		if len(gchunk) == chunkSize {
			if err := flushRegroup(); err != nil {
				it.Close()
				return nil, err
			}
		}
	}
	if err := flushRegroup(); err != nil {
		it.Close()
		return nil, err
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	if err := sorter.Flush(); err != nil {
		return nil, err
	}
	stop(int(r.records))

	// Analyze: walk the grouped merge. Each instance is a contiguous
	// run in time order, so the chain needs one previous record and the
	// estimate one cookie sequence at a time. Consecutive pairs are
	// diffed and classified in fixed-size parallel chunks.
	stop = opts.Timings.Start("analyze")
	merge, err := sorter.Merge()
	if err != nil {
		return nil, err
	}
	defer merge.Close()

	cl := &dynamics.Classifier{Images: images}
	acc := dynamics.NewAccumulator()
	est := browserid.NewEstimateAccumulator()

	type pair struct {
		id       string
		from, to *fingerprint.Record
	}
	pairs := make([]pair, 0, chunkSize)
	flushPairs := func() {
		if len(pairs) == 0 {
			return
		}
		inFlight(len(pairs))
		dyns := parallel.Map(workers, len(pairs), func(i int) *dynamics.Dynamics {
			p := pairs[i]
			return &dynamics.Dynamics{
				BrowserID: p.id,
				From:      p.from,
				To:        p.to,
				Delta:     diff.Diff(p.from.FP, p.to.FP),
			}
		})
		changed := dyns[:0]
		for _, d := range dyns {
			if d.CoreChanged() {
				changed = append(changed, d)
			}
		}
		r.numChanged += int64(len(changed))
		for i, c := range cl.ClassifyBatch(changed, workers) {
			acc.Add(changed[i], c)
		}
		pairs = pairs[:0]
		inFlight(0)
	}

	var curID string
	var curUser string
	var prev *fingerprint.Record
	var cookieSeq []string
	endInstance := func() {
		if curID == "" {
			return
		}
		est.AddInstance(curID, curUser, cookieSeq)
		cookieSeq = cookieSeq[:0]
		prev = nil
	}
	for {
		g, ok, err := merge.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if g.ID != curID {
			endInstance()
			curID = g.ID
			curUser = g.Rec.UserID
		}
		if g.Rec.Cookie != "" {
			cookieSeq = append(cookieSeq, g.Rec.Cookie)
		}
		if prev != nil {
			r.numDyns++
			pairs = append(pairs, pair{id: g.ID, from: prev, to: g.Rec})
			if len(pairs) == chunkSize {
				flushPairs()
			}
		}
		prev = g.Rec
	}
	endInstance()
	flushPairs()
	stop(int(r.records))

	r.numInstances = est.NumInstances()
	r.numUsers = est.NumUsers()
	r.breakdown = acc.Finish(r.numInstances)
	r.est = est.Rates()
	r.multiShare = est.MultiBrowserUserShare()
	return r, nil
}

// Summary prints the dataset header line (same bytes as Reporter).
func (r *StreamReporter) Summary() {
	renderSummary(r.w, int(r.records), r.numInstances, r.numUsers, int(r.numDyns), int(r.numChanged))
}

// Estimate prints the §2.3.3 estimation (same bytes as Reporter).
func (r *StreamReporter) Estimate() {
	renderEstimate(r.w, r.est, r.multiShare)
}

// Table2 prints the dynamics classification (same bytes as Reporter).
func (r *StreamReporter) Table2() {
	renderTable2(r.w, r.breakdown)
}

// Breakdown exposes the accumulated Table 2 quantities.
func (r *StreamReporter) Breakdown() *dynamics.Breakdown { return r.breakdown }

// NumRecords returns the streamed record count.
func (r *StreamReporter) NumRecords() int64 { return r.records }

// NumInstances returns the canonical browser-instance count.
func (r *StreamReporter) NumInstances() int { return r.numInstances }
