package report

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"fpdyn/internal/dynamics"
	"fpdyn/internal/faultinject"
	"fpdyn/internal/obs"
	"fpdyn/internal/population"
	"fpdyn/internal/storage"
)

// inMemorySections renders the streaming-computable sections with the
// legacy Reporter.
func inMemorySections(t *testing.T, ds *population.Dataset) string {
	t.Helper()
	var buf bytes.Buffer
	r := New(ds, &buf)
	r.Summary()
	r.Estimate()
	r.Table2()
	return buf.String()
}

// TestStreamReportMatchesInMemory is the consumer-side determinism
// gate: the streaming pipeline's Summary/Estimate/Table2 must print the
// exact bytes the in-memory Reporter prints, for every worker count and
// chunk size — including chunk sizes small enough to split instances
// across chunks.
func TestStreamReportMatchesInMemory(t *testing.T) {
	cfg := population.DefaultConfig(200)
	cfg.Seed = 11
	ds := population.Simulate(cfg)
	want := inMemorySections(t, ds)

	for _, tc := range []struct {
		workers, chunk int
	}{
		{1, 8192},
		{1, 17}, // chunks split instance runs
		{8, 8192},
		{8, 17},
	} {
		var buf bytes.Buffer
		sr, err := NewStream(SliceSource(ds.Records), dynamics.MapImages(ds.CanvasImages), &buf,
			StreamOptions{Workers: tc.workers, ChunkSize: tc.chunk})
		if err != nil {
			t.Fatalf("workers=%d chunk=%d: %v", tc.workers, tc.chunk, err)
		}
		sr.Summary()
		sr.Estimate()
		sr.Table2()
		if got := buf.String(); got != want {
			t.Fatalf("workers=%d chunk=%d: stream output differs from in-memory:\n--- stream ---\n%s\n--- in-memory ---\n%s",
				tc.workers, tc.chunk, got, want)
		}
	}
}

// TestStreamReportFromSpill runs the full out-of-core chain — spilled
// simulation feeding the streaming report — and checks it against the
// fully in-memory pipeline.
func TestStreamReportFromSpill(t *testing.T) {
	cfg := population.DefaultConfig(150)
	cfg.Seed = 3
	cfg.Workers = 2
	want := inMemorySections(t, population.Simulate(cfg))

	sd, err := population.SimulateSpill(cfg, population.StreamOptions{UsersPerBatch: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()

	reg := obs.NewRegistry()
	var buf bytes.Buffer
	sr, err := NewStream(SpillSource(sd), dynamics.MapImages(sd.CanvasImages), &buf,
		StreamOptions{Workers: 2, ChunkSize: 64, SpillDir: sd.SpillRoot(), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	sr.Summary()
	sr.Estimate()
	sr.Table2()
	if got := buf.String(); got != want {
		t.Fatalf("spill-fed stream output differs:\n--- stream ---\n%s\n--- in-memory ---\n%s", got, want)
	}

	snap := reg.Snapshot()
	if snap.Counters[`extsort_runs_total{sort="regroup"}`] == 0 {
		t.Fatal("regroup sort spilled no runs at ChunkSize=64")
	}
}

// TestStreamReportSpillFault injects a write failure into the regroup
// spill: the pipeline must surface it, not drop records.
func TestStreamReportSpillFault(t *testing.T) {
	cfg := population.DefaultConfig(80)
	ds := population.Simulate(cfg)
	_, err := NewStream(SliceSource(ds.Records), dynamics.MapImages(ds.CanvasImages), os.Stderr,
		StreamOptions{
			ChunkSize: 32,
			OpenFile: func(path string) (storage.SegmentFile, error) {
				f, err := os.Create(path)
				if err != nil {
					return nil, err
				}
				return &faultinject.File{F: f, Script: &faultinject.Script{FailAfter: 1024}}, nil
			},
		})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want injected spill error, got %v", err)
	}
}
