// Package report renders every table and figure of the paper's
// evaluation to an io.Writer. cmd/fpreport is a thin flag wrapper over
// this package; keeping the rendering here makes each artifact
// regenerable (and testable) programmatically:
//
//	r := report.New(ds, os.Stdout)
//	r.Table2()
//	r.Fig12()
package report

import (
	"fmt"
	"io"
	"sort"
	"time"

	"fpdyn/internal/browserid"
	"fpdyn/internal/canvas"
	"fpdyn/internal/correlate"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/inference"
	"fpdyn/internal/obs"
	"fpdyn/internal/population"
	"fpdyn/internal/stats"
	"fpdyn/internal/stemming"
	"fpdyn/internal/textplot"
	"fpdyn/internal/useragent"
)

// Reporter holds the processed dataset every section draws from.
type Reporter struct {
	w       io.Writer
	ds      *population.Dataset
	gt      *browserid.GroundTruth
	dyns    []*dynamics.Dynamics
	changed []*dynamics.Dynamics
	cl      *dynamics.Classifier
}

// New processes a dataset once (ground truth + dynamics + classifier)
// and returns a Reporter writing to w.
func New(ds *population.Dataset, w io.Writer) *Reporter {
	return NewWorkers(ds, w, 0)
}

// NewWorkers is New with the processing pipeline fanned out over a
// worker pool: ground-truth key hashing, per-instance diff chains and
// the batch classification of every changed dynamics all run on up to
// `workers` goroutines (0 or 1 = serial, negative = NumCPU). The
// processed state — and therefore every table and figure — is
// identical for every worker count; the batch pass also warms the
// classifier's memo so the report sections reuse classifications
// instead of re-deriving them.
func NewWorkers(ds *population.Dataset, w io.Writer, workers int) *Reporter {
	return NewWorkersTimed(ds, w, workers, nil)
}

// NewWorkersTimed is NewWorkers with per-stage wall-time observability:
// each pipeline stage (ground truth, dynamics, classify) is timed into
// timings with its record count, so cmd/fpreport can emit the
// machine-readable stage-timing JSON alongside BENCH_pipeline.json. A
// nil timings is a no-op.
func NewWorkersTimed(ds *population.Dataset, w io.Writer, workers int, timings *obs.Timings) *Reporter {
	if workers == 0 {
		workers = 1
	}
	stop := timings.Start("ground_truth")
	gt := browserid.BuildParallel(ds.Records, workers)
	stop(len(ds.Records))

	stop = timings.Start("dynamics")
	dyns := dynamics.GenerateParallel(gt, workers)
	stop(len(dyns))

	changed := dynamics.Changed(dyns)
	cl := &dynamics.Classifier{Images: dynamics.MapImages(ds.CanvasImages)}
	stop = timings.Start("classify")
	cl.ClassifyAll(changed, workers)
	stop(len(changed))
	return &Reporter{
		w:       w,
		ds:      ds,
		gt:      gt,
		dyns:    dyns,
		changed: changed,
		cl:      cl,
	}
}

// GroundTruth exposes the processed ground truth (cmd tools reuse it).
func (r *Reporter) GroundTruth() *browserid.GroundTruth { return r.gt }

// Summary prints the dataset header line.
func (r *Reporter) Summary() {
	renderSummary(r.w, len(r.ds.Records), r.gt.NumInstances(), len(r.gt.UserInstances), len(r.dyns), len(r.changed))
}

// renderSummary is the header line both the in-memory and the streaming
// reporter print — byte-identical given the same counts.
func renderSummary(w io.Writer, records, instances, users, dyns, changed int) {
	fmt.Fprintf(w, "dataset: %d fingerprints, %d browser instances, %d users, %d dynamics (%d changed)\n\n",
		records, instances, users, dyns, changed)
}

// Estimate prints the §2.3.3 browser-ID error estimation.
func (r *Reporter) Estimate() {
	renderEstimate(r.w, r.gt.Estimate(), r.gt.MultiBrowserUserShare())
}

func renderEstimate(w io.Writer, e browserid.Rates, multiShare float64) {
	fmt.Fprintln(w, "§2.3.3 browser-ID error estimation")
	fmt.Fprintf(w, "  abnormal shared-cookie rate: %.3f%% (paper: ~0.5%%)\n", 100*e.AbnormalSharedCookieRate)
	fmt.Fprintf(w, "  cookie-clearing share:       %.1f%%  (paper: ~32%%)\n", 100*e.CookieClearingShare)
	fmt.Fprintf(w, "  estimated false negatives:   %.3f%% (paper: ~0.3%%)\n", 100*e.FalseNegativeRate)
	fmt.Fprintf(w, "  estimated false positives:   %.3f%% (paper: ~0.1%%)\n", 100*e.FalsePositiveRate)
	fmt.Fprintf(w, "  multi-browser users:         %.1f%%  (paper: 14%%+)\n\n", 100*multiShare)
}

// Fig2 prints the identifiability-vs-anonymous-set-size table.
func (r *Reporter) Fig2() {
	inst := func(i int) string { return r.gt.IDs[i] }
	curve := stats.AnonymitySets(r.ds.Records, inst, true, 10)
	fmt.Fprintln(r.w, "Figure 2: % identifiable fingerprints vs anonymous-set size (with IP features)")
	rows := [][]string{{"set size ≤", "overall"}}
	type split struct {
		name string
		keep func(*fingerprint.Record) bool
	}
	splits := []split{
		{"desktop", func(rec *fingerprint.Record) bool { return !rec.Mobile }},
		{"mobile", func(rec *fingerprint.Record) bool { return rec.Mobile }},
		{"Firefox Mobile", func(rec *fingerprint.Record) bool { return rec.Browser == useragent.FirefoxMobile }},
		{"Mobile Safari", func(rec *fingerprint.Record) bool { return rec.Browser == useragent.MobileSafari }},
	}
	curves := make([]stats.AnonymityCurve, len(splits))
	for i, s := range splits {
		idx := stats.Filter(r.ds.Records, s.keep)
		sub := stats.Select(r.ds.Records, idx)
		curves[i] = stats.AnonymitySets(sub, func(j int) string { return r.gt.IDs[idx[j]] }, true, 10)
		rows[0] = append(rows[0], s.name)
	}
	for k := 1; k <= 10; k++ {
		row := []string{fmt.Sprintf("%d", k), fmt.Sprintf("%.1f%%", curve.PctIdentifiable[k-1])}
		for i := range splits {
			row = append(row, fmt.Sprintf("%.1f%%", curves[i].PctIdentifiable[k-1]))
		}
		rows = append(rows, row)
	}
	textplot.Table(r.w, rows)
	fmt.Fprintln(r.w)
}

// Table1 prints the per-feature distinct/unique statistics.
func (r *Reporter) Table1() {
	rows := stats.FeatureTable(r.ds.Records, r.dyns)
	out := [][]string{{"Feature", "Distinct #", "Unique #", "Dyn Distinct #", "Dyn Unique #"}}
	for _, row := range rows {
		name := row.Name
		if !row.IsGroup {
			name = "  " + name
		}
		out = append(out, []string{
			name,
			fmt.Sprintf("%d", row.Distinct), fmt.Sprintf("%d", row.Unique),
			fmt.Sprintf("%d", row.DynDistinct), fmt.Sprintf("%d", row.DynUnique),
		})
	}
	fmt.Fprintln(r.w, "Table 1: static and dynamics value statistics per feature")
	textplot.Table(r.w, out)
	fmt.Fprintln(r.w)
}

// Fig3 prints the identifier breakdowns. Each histogram's total is
// computed once and the per-bucket shares read through the cached-sum
// path (Histogram.ShareOf).
func (r *Reporter) Fig3() {
	perUser, perBrowser := stats.UserBrowserCookie(r.gt)
	userTotal := perUser.Total()
	browserTotal := perBrowser.Total()
	fmt.Fprintln(r.w, "Figure 3: identifier breakdowns")
	one, two := perUser.ShareOf(1, userTotal), perUser.ShareOf(2, userTotal)
	fmt.Fprintf(r.w, "  # browser IDs per user ID:  1: %.1f%%  2: %.1f%%  3+: %.1f%%  (paper: 86%% have one)\n",
		100*one, 100*two, 100*(1-one-two))
	multi := 1 - perBrowser.ShareOf(0, browserTotal) - perBrowser.ShareOf(1, browserTotal)
	fmt.Fprintf(r.w, "  # cookies per browser ID:   1: %.1f%%  >1: %.1f%%  (paper: 32%% have more than one)\n\n",
		100*perBrowser.ShareOf(1, browserTotal), 100*multi)
}

// Fig4 prints the weekly first-time/returning visit series.
func (r *Reporter) Fig4() {
	series := stats.VisitSeries(r.ds.Records, r.gt.IDs, 7*24*time.Hour)
	xs := make([]string, len(series))
	first := make([]float64, len(series))
	ret := make([]float64, len(series))
	for i, b := range series {
		xs[i] = b.Start.Format("01-02")
		first[i] = float64(b.FirstTime)
		ret[i] = float64(b.Returning)
	}
	textplot.Series(r.w, "Figure 4: first-time visits per week", xs, first, 5)
	textplot.Series(r.w, "Figure 4: returning visits per week", xs, ret, 5)
	fmt.Fprintln(r.w)
}

// Fig5 prints the browser-type breakdown; Fig6 the OS-type breakdown.
func (r *Reporter) Fig5() {
	byBrowser, _ := stats.TypeBreakdown(r.gt)
	textplot.BarMap(r.w, "Figure 5: browser instances by browser type", byBrowser, 46)
	fmt.Fprintln(r.w)
}

// Fig6 prints the OS-type breakdown.
func (r *Reporter) Fig6() {
	_, byOS := stats.TypeBreakdown(r.gt)
	textplot.BarMap(r.w, "Figure 6: browser instances by OS type", byOS, 46)
	fmt.Fprintln(r.w)
}

// Fig7 prints fingerprint stability by visit count.
func (r *Reporter) Fig7() {
	cells := stats.StabilityBreakdown(r.gt, 12)
	fmt.Fprintln(r.w, "Figure 7: fingerprint stability by visit count (share of instances with 0 dynamics)")
	rows := [][]string{{"visits", "instances", "stable share"}}
	for v := 2; v <= 12; v++ {
		total := 0
		for cell, n := range cells {
			if cell.Visits == v {
				total += n
			}
		}
		if total == 0 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", v), fmt.Sprintf("%d", total),
			fmt.Sprintf("%.1f%%", 100*stats.StableShareAtVisits(cells, v)),
		})
	}
	textplot.Table(r.w, rows)
	fmt.Fprintln(r.w)
}

// Table2 prints the classification of fingerprint dynamics.
func (r *Reporter) Table2() {
	renderTable2(r.w, dynamics.Analyze(r.changed, r.cl, r.gt.NumInstances()))
}

// renderTable2 renders a Breakdown as Table 2. The streaming reporter
// produces the same Breakdown from its bounded-memory accumulator, so
// both paths print identical bytes.
func renderTable2(w io.Writer, b *dynamics.Breakdown) {
	fmt.Fprintln(w, "Table 2: classification of fingerprint dynamics")
	rows := [][]string{{"Category", "% of Changes", "% of Browser IDs"}}
	subRows := func(byKey, instByKey map[string]int) {
		keys := make([]string, 0, len(byKey))
		for k := range byKey {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if byKey[keys[i]] != byKey[keys[j]] {
				return byKey[keys[i]] > byKey[keys[j]]
			}
			return keys[i] < keys[j]
		})
		for _, k := range keys {
			rows = append(rows, []string{
				"  " + k,
				fmt.Sprintf("%.2f%%", b.PctChanges(byKey[k])),
				fmt.Sprintf("%.2f%%", b.PctInstances(instByKey[k])),
			})
		}
	}
	for _, cat := range []dynamics.Category{
		dynamics.CatOSUpdate, dynamics.CatBrowserUpdate,
		dynamics.CatUserAction, dynamics.CatEnvironment,
	} {
		rows = append(rows, []string{
			string(cat),
			fmt.Sprintf("%.2f%%", b.PctChanges(b.PureCategory[cat])),
			fmt.Sprintf("%.2f%%", b.PctInstances(b.CategoryInstances[cat])),
		})
		switch cat {
		case dynamics.CatOSUpdate:
			subRows(b.OSUpdatesByOS, b.OSUpdateInstancesByOS)
		case dynamics.CatBrowserUpdate:
			subRows(b.BrowserUpdatesByFamily, b.BrowserUpdateInstancesByFamily)
		}
		var causes []dynamics.Cause
		for cause := range b.CauseChanges {
			if cause.Category() == cat {
				causes = append(causes, cause)
			}
		}
		sort.Slice(causes, func(i, j int) bool {
			if b.CauseChanges[causes[i]] != b.CauseChanges[causes[j]] {
				return b.CauseChanges[causes[i]] > b.CauseChanges[causes[j]]
			}
			return causes[i] < causes[j]
		})
		for _, cause := range causes {
			if cause == dynamics.CauseOSUpdate || cause == dynamics.CauseBrowserUpdate {
				continue
			}
			rows = append(rows, []string{
				"  " + string(cause),
				fmt.Sprintf("%.2f%%", b.PctChanges(b.CauseChanges[cause])),
				fmt.Sprintf("%.2f%%", b.PctInstances(b.CauseInstances[cause])),
			})
		}
	}
	for _, label := range b.ComboLabels() {
		rows = append(rows, []string{
			label, fmt.Sprintf("%.2f%%", b.PctChanges(b.Combo[label])), "",
		})
	}
	rows = append(rows, []string{
		"Total (instances with ≥1 change)", "100%",
		fmt.Sprintf("%.2f%%", b.PctInstances(b.InstancesWithChange)),
	})
	textplot.Table(w, rows)
	if b.Unclassified > 0 {
		fmt.Fprintf(w, "(unclassified: %d of %d)\n", b.Unclassified, b.TotalChanged)
	}
	fmt.Fprintln(w)
}

// Fig8 renders the Samsung 6.2 emoji update and its pixel diff.
func (r *Reporter) Fig8() {
	fmt.Fprintln(r.w, "Figure 8: Samsung Browser 6.2 emoji update as seen from a co-installed browser")
	before := canvas.Render(canvas.Params{TextEngine: 3, TextWidth: 2, EmojiMajor: 6, EmojiMinor: 0})
	after := canvas.Render(canvas.Params{TextEngine: 3, TextWidth: 2, EmojiMajor: 7, EmojiMinor: 0})
	d := canvas.Diff(before, after)
	fmt.Fprintf(r.w, "  canvas hash before: %s\n", before.Hash())
	fmt.Fprintf(r.w, "  canvas hash after:  %s\n", after.Hash())
	fmt.Fprintf(r.w, "  changed pixels: %d (text band: %d, emoji band: %d)\n",
		d.Changed, d.TextChanged, d.EmojiChanged)
	fmt.Fprintf(r.w, "  subtypes: %v, emoji-only: %v\n", d.Subtypes(), d.EmojiOnly())
	fmt.Fprintln(r.w, "  pixel difference map (right band = emoji glyph):")
	for y := 0; y < canvas.Height; y += 2 {
		fmt.Fprint(r.w, "    ")
		for x := 0; x < canvas.Width; x += 2 {
			if before.Pix[y][x] != after.Pix[y][x] {
				fmt.Fprint(r.w, "X")
			} else {
				fmt.Fprint(r.w, ".")
			}
		}
		fmt.Fprintln(r.w)
	}
	fmt.Fprintln(r.w)
}

// Table3 prints update-correlated features.
func (r *Reporter) Table3() {
	rows := correlate.UpdateCorrelations(r.changed, r.cl)
	fmt.Fprintln(r.w, "Table 3: feature correlations with browser/OS updates")
	out := [][]string{{"Update", "Platform", "Correlated feature", "Count"}}
	limit := 25
	for _, row := range rows {
		if limit == 0 {
			break
		}
		limit--
		out = append(out, []string{row.Update, row.Platform, row.Feature, fmt.Sprintf("%d", row.Count)})
	}
	textplot.Table(r.w, out)
	fmt.Fprintln(r.w)
}

// Fig12 prints adoption curves for the marked releases.
func (r *Reporter) Fig12() {
	fmt.Fprintln(r.w, "Figure 12: % of instances with update dynamics per week")
	week := 7 * 24 * time.Hour
	type curve struct {
		family  string
		major   int
		release time.Time
	}
	curves := []curve{
		{useragent.Chrome, 64, time.Date(2018, 1, 24, 0, 0, 0, 0, time.UTC)},
		{useragent.Chrome, 65, time.Date(2018, 3, 6, 0, 0, 0, 0, time.UTC)},
		{useragent.Chrome, 66, time.Date(2018, 4, 17, 0, 0, 0, 0, time.UTC)},
		{useragent.Firefox, 58, time.Date(2018, 1, 23, 0, 0, 0, 0, time.UTC)},
		{useragent.Firefox, 59, time.Date(2018, 3, 13, 0, 0, 0, 0, time.UTC)},
		{useragent.Firefox, 60, time.Date(2018, 5, 9, 0, 0, 0, 0, time.UTC)},
	}
	for _, c := range curves {
		series := correlate.AdoptionSeries(r.changed, c.family, c.major,
			r.ds.Cfg.Start, r.ds.Cfg.End, week, r.gt.NumInstances())
		xs := make([]string, len(series))
		ys := make([]float64, len(series))
		for i, p := range series {
			xs[i] = p.Start.Format("01-02")
			ys[i] = p.Pct
		}
		textplot.Series(r.w,
			fmt.Sprintf("%s → %d (released %s)", c.family, c.major, c.release.Format("2006-01-02")),
			xs, ys, 4)
	}
	fmt.Fprintln(r.w)
}

// Insight1 prints the privacy-leak analyses.
func (r *Reporter) Insight1() {
	fmt.Fprintln(r.w, "Insight 1.1: emoji leaks (canvas changes revealing co-installed software updates)")
	rep := inference.EmojiLeaks(r.changed, r.cl)
	for fam, n := range rep.LeakingDynamics {
		fmt.Fprintf(r.w, "  %-18s %d leaking dynamics, %d instances\n", fam, n, rep.LeakingInstances[fam])
	}
	patch := inference.UnpatchedWindows7(r.changed, r.cl, r.gt.Instances)
	if patch.UpdateObserved > 0 {
		fmt.Fprintf(r.w, "  Windows 7 emoji patch: %d transitions observed (paper: 9); %d instances still unpatched (paper: 6,968)\n",
			patch.UpdateObserved, patch.UnpatchedInstances)
	}

	fmt.Fprintln(r.w, "Insight 1.2: software inference from fonts")
	latest := map[string]*fingerprint.Fingerprint{}
	for id, recs := range r.gt.Instances {
		latest[id] = recs[len(recs)-1].FP
	}
	sw := inference.SoftwareFromFonts(r.changed, latest)
	fmt.Fprintf(r.w, "  Office update (MT Extra added):   %d instances (paper: 1,199)\n", sw.OfficeUpdateInstances)
	fmt.Fprintf(r.w, "  Office install observed:          %d dynamics (paper: 7)\n", sw.OfficeInstallDynamics)
	fmt.Fprintf(r.w, "  Office installed (static fonts):  %d instances (paper: 50,869)\n", sw.OfficeInstalledInstances)
	fmt.Fprintf(r.w, "  Adobe/Libre/WPS installs:         %d / %d / %d instances\n",
		sw.AdobeInstances, sw.LibreInstances, sw.WPSInstances)

	fmt.Fprintln(r.w, "Insight 1.3: GPU image → renderer inference")
	gpu := inference.GPUInference(r.ds.Records, r.ds.GPUImageInfo)
	fmt.Fprintf(r.w, "  distinct images: %d; unique→renderer: %.0f%% (paper: 32%%); ≤3 renderers: %.0f%% (paper: 38%%)\n",
		gpu.DistinctImages, 100*gpu.UniqueShare, 100*gpu.WithinThreeShare)
	vendors := make([]string, 0, len(gpu.VendorAccuracy))
	for v := range gpu.VendorAccuracy {
		vendors = append(vendors, v)
	}
	sort.Strings(vendors)
	for _, v := range vendors {
		fmt.Fprintf(r.w, "    %-28s %.0f%%\n", v, 100*gpu.VendorAccuracy[v])
	}

	fmt.Fprintln(r.w, "Insight 1.4: IP velocity / VPN detection")
	vel := inference.Velocity(r.gt.Instances, r.ds.Geo)
	fmt.Fprintf(r.w, "  movement pairs: %d (slow <150km/h: %d, 150–2000: %d, impossible >2000: %d)\n",
		vel.Pairs, vel.Slow, vel.Mid, vel.Impossible)
	fmt.Fprintf(r.w, "  VPN/proxy instances: %d (paper: 2,916)\n", len(vel.VPNInstances))
	for i, c := range vel.Cases {
		if i == 3 {
			break
		}
		fmt.Fprintf(r.w, "    case: %s → %s in %s (%.0f km/h)\n", c.FromCity, c.ToCity, c.Gap, c.SpeedKmh)
	}
	fmt.Fprintln(r.w)
}

// Insight3 prints the implicit dynamics correlations.
func (r *Reporter) Insight3() {
	fmt.Fprintln(r.w, "Insight 3: implicit dynamics correlations (top by lift, ≥3 joint)")
	cors := correlate.Implicit(r.changed, 3)
	for i, c := range cors {
		if i == 12 {
			break
		}
		fmt.Fprintf(r.w, "  %-52s together=%d lift=%.1f\n", c.Label(), c.Together, c.Lift)
	}
	fmt.Fprintln(r.w)
}

// Compression prints the §2.3 delta-vs-pair ablation.
func (r *Reporter) Compression() {
	pairs, deltas, ratio := stats.DeltaCompression(r.changed)
	fmt.Fprintf(r.w, "§2.3 delta ablation: %d distinct fingerprint pairs vs %d distinct deltas (%.2fx compression)\n\n",
		pairs, deltas, ratio)
}

// Tradeoff prints the uniqueness/linkability frontier.
func (r *Reporter) Tradeoff() {
	rows := stats.UniquenessLinkability(stats.FirstRecords(r.gt.Instances), r.changed)
	fmt.Fprintln(r.w, "Future work: uniqueness (entropy) vs linkability (stability) per feature")
	out := [][]string{{"Feature", "Entropy (bits)", "Instability (% of dynamics)", "Utility"}}
	for _, row := range rows {
		out = append(out, []string{
			row.Name,
			fmt.Sprintf("%.2f", row.EntropyBits),
			fmt.Sprintf("%.1f%%", row.InstabilityPct),
			fmt.Sprintf("%.2f", row.Utility),
		})
	}
	textplot.Table(r.w, out)
	fmt.Fprintln(r.w)
}

// Stemming prints the §6.1 feature-stemming comparison.
func (r *Reporter) Stemming() {
	rawChanged, stemChanged, pairs := stemming.StabilityGain(r.gt.Instances)
	fmt.Fprintln(r.w, "§6.1 feature-stemming baseline (Pugliese et al.)")
	if pairs > 0 {
		fmt.Fprintf(r.w, "  consecutive pairs changed: raw %d/%d (%.1f%%), stemmed %d/%d (%.1f%%)\n",
			rawChanged, pairs, 100*float64(rawChanged)/float64(pairs),
			stemChanged, pairs, 100*float64(stemChanged)/float64(pairs))
	}
	inst := func(i int) string { return r.gt.IDs[i] }
	raw := stats.AnonymitySets(r.ds.Records, inst, false, 1)
	stemmed := make([]*fingerprint.Record, len(r.ds.Records))
	for i, rec := range r.ds.Records {
		cp := *rec
		cp.FP = stemming.Stem(rec.FP)
		stemmed[i] = &cp
	}
	st := stats.AnonymitySets(stemmed, inst, false, 1)
	fmt.Fprintf(r.w, "  identifiable at anonymous-set size 1: raw %.1f%%, stemmed %.1f%%\n",
		raw.PctIdentifiable[0], st.PctIdentifiable[0])
	fmt.Fprintln(r.w, "  (stability improves but uniqueness drops — the paper's trade-off critique)")
	fmt.Fprintln(r.w)
}
