package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestWriterFailAfterBytes(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, Script: &Script{FailAfter: 10}}
	n, err := w.Write(make([]byte, 6))
	if n != 6 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	// The write crossing the 10-byte boundary transfers 4 and fails.
	n, err = w.Write(make([]byte, 6))
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("boundary write: n=%d err=%v", n, err)
	}
	if buf.Len() != 10 {
		t.Fatalf("underlying saw %d bytes, want 10", buf.Len())
	}
	// Once tripped, everything fails without transferring.
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trip write: n=%d err=%v", n, err)
	}
	if !w.Script.Tripped() {
		t.Fatal("script not marked tripped")
	}
}

func TestWriterShortWrites(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, Script: &Script{ShortWrites: true}}
	n, err := w.Write(make([]byte, 8))
	if n != 4 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	// A 1-byte write cannot be shortened.
	if n, err := w.Write([]byte("x")); n != 1 || err != nil {
		t.Fatalf("1-byte write: n=%d err=%v", n, err)
	}
}

func TestWriterCustomError(t *testing.T) {
	sentinel := errors.New("boom")
	w := &Writer{W: io.Discard, Script: &Script{FailAfter: 1, Err: sentinel}}
	if _, err := w.Write([]byte("ab")); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestNilScriptPassesThrough(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf}
	if n, err := w.Write([]byte("hello")); n != 5 || err != nil {
		t.Fatalf("n=%d err=%v", n, err)
	}
	var s *Script
	if s.Tripped() {
		t.Fatal("nil script tripped")
	}
}

func TestConnDropAfterBytes(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := &Conn{Conn: a, WriteScript: &Script{FailAfter: 4}, CloseOnTrip: true}
	errs := make(chan error, 1)
	go func() {
		buf := make([]byte, 64)
		total := 0
		for {
			n, err := b.Read(buf[total:])
			total += n
			if err != nil {
				if total != 4 {
					errs <- errors.New("peer saw wrong byte count")
					return
				}
				errs <- nil
				return
			}
		}
	}()
	n, err := fc.Write([]byte("abcdefgh"))
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	// The conn closed on trip: further writes fail at the transport.
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Fatal("write succeeded on closed conn")
	}
}

func TestConnStall(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := &Conn{Conn: a, WriteScript: &Script{Stall: 30 * time.Millisecond}}
	go io.Copy(io.Discard, b)
	start := time.Now()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("write returned after %v, want >= stall", d)
	}
}

func TestConnReadBudgetRefund(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := &Conn{Conn: a, ReadScript: &Script{FailAfter: 10}}
	go b.Write([]byte("abc"))
	buf := make([]byte, 64)
	n, err := fc.Read(buf)
	if n != 3 || err != nil {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	// Only 3 of the 10-byte budget is consumed: 7 more bytes pass.
	go b.Write([]byte("defghijkl")) // 9 bytes: fault fires at byte 7
	total := 0
	for {
		n, err = fc.Read(buf)
		total += n
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("read err = %v", err)
			}
			break
		}
	}
	if total != 7 {
		t.Fatalf("read %d more bytes before trip, want 7", total)
	}
}

type memFile struct {
	bytes.Buffer
	syncs int
}

func (m *memFile) Sync() error  { m.syncs++; return nil }
func (m *memFile) Close() error { return nil }

func TestFileFailSyncAt(t *testing.T) {
	mf := &memFile{}
	f := &File{F: mf, FailSyncAt: 2}
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("third sync: %v", err)
	}
	if mf.syncs != 1 {
		t.Fatalf("underlying synced %d times, want 1", mf.syncs)
	}
	if f.Syncs() != 3 {
		t.Fatalf("observed %d syncs, want 3", f.Syncs())
	}
}

func TestFileWriteFault(t *testing.T) {
	mf := &memFile{}
	f := &File{F: mf, Script: &Script{FailAfter: 3}}
	if n, err := f.Write([]byte("abcd")); n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if mf.Len() != 3 {
		t.Fatalf("underlying holds %d bytes, want 3", mf.Len())
	}
}
