// Package faultinject provides scripted failure injection for the
// collection platform's robustness tests: wrappers over net.Conn,
// io.Writer, and the storage tier's segment files that drop a
// connection after N bytes, stall, return short writes, or fail fsync
// on cue. The chaos tests in internal/collector use them to prove the
// WAL-backed store loses no ACKed record across crashes (the paper's
// §2.2 outage scenario, pushed down from "server unreachable" to
// "server torn mid-write").
package faultinject

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// ErrInjected is the default error returned by a tripped fault script.
var ErrInjected = errors.New("faultinject: injected fault")

// Script is a byte-budget fault plan shared by the writer and conn
// wrappers. The zero value injects nothing. A Script must not be
// shared between wrappers unless the combined byte budget is intended.
type Script struct {
	// FailAfter injects Err once this many bytes have passed through
	// (0 disables). The operation that crosses the boundary transfers
	// the bytes up to it and returns the error.
	FailAfter int64
	// Err is the injected error; defaults to ErrInjected.
	Err error
	// ShortWrites makes every write transfer at most half its buffer,
	// returning io.ErrShortWrite for the remainder. Exercises callers'
	// partial-write handling.
	ShortWrites bool
	// Stall sleeps this long before every operation — a slow-client
	// simulation for deadline tests.
	Stall time.Duration

	mu      sync.Mutex
	passed  int64
	tripped bool
}

// Stalled sleeps for the script's Stall duration, if any — a
// compute-path fault point for code with no byte stream to wrap
// (linkd injects it into the scoring path to simulate slow queries in
// overload tests). Nil-safe and free when Stall is zero.
func (s *Script) Stalled() {
	if s != nil && s.Stall > 0 {
		time.Sleep(s.Stall)
	}
}

// Tripped reports whether the byte-budget fault has fired.
func (s *Script) Tripped() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tripped
}

func (s *Script) err() error {
	if s.Err != nil {
		return s.Err
	}
	return ErrInjected
}

// admit decides how many of n bytes may pass and which error (if any)
// to return after transferring them.
func (s *Script) admit(n int) (allow int, short bool, err error) {
	if s == nil {
		return n, false, nil
	}
	if s.Stall > 0 {
		time.Sleep(s.Stall)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	allow = n
	if s.FailAfter > 0 {
		if s.tripped {
			return 0, false, s.err()
		}
		if remaining := s.FailAfter - s.passed; int64(allow) >= remaining {
			allow = int(remaining)
			s.tripped = true
			err = s.err()
		}
	}
	if s.ShortWrites && err == nil && allow > 1 {
		allow = (allow + 1) / 2
		short = true
	}
	s.passed += int64(allow)
	return allow, short, err
}

// Writer wraps an io.Writer with a fault script.
type Writer struct {
	W      io.Writer
	Script *Script
}

func (w *Writer) Write(p []byte) (int, error) {
	allow, short, ferr := w.Script.admit(len(p))
	n, err := w.W.Write(p[:allow])
	if err != nil {
		return n, err
	}
	if ferr != nil {
		return n, ferr
	}
	if short || n < len(p) {
		return n, io.ErrShortWrite
	}
	return n, nil
}

// Conn wraps a net.Conn with independent read- and write-side fault
// scripts. A tripped write script also closes the underlying
// connection when CloseOnTrip is set, simulating a peer torn away
// mid-frame.
type Conn struct {
	net.Conn
	ReadScript  *Script
	WriteScript *Script
	CloseOnTrip bool

	closeOnce sync.Once
}

func (c *Conn) Read(p []byte) (int, error) {
	s := c.ReadScript
	if s == nil {
		return c.Conn.Read(p)
	}
	if s.Stall > 0 {
		time.Sleep(s.Stall)
	}
	// Unlike writes, a read may return fewer bytes than admitted, so
	// the budget is charged on actual bytes after the read.
	s.mu.Lock()
	if s.FailAfter > 0 && s.tripped {
		s.mu.Unlock()
		return 0, s.err()
	}
	allow := len(p)
	if s.FailAfter > 0 {
		if remaining := s.FailAfter - s.passed; int64(allow) > remaining {
			allow = int(remaining)
		}
	}
	s.mu.Unlock()
	n, err := c.Conn.Read(p[:allow])
	s.mu.Lock()
	s.passed += int64(n)
	var ferr error
	if s.FailAfter > 0 && s.passed >= s.FailAfter {
		s.tripped = true
		ferr = s.err()
	}
	s.mu.Unlock()
	if err != nil {
		return n, err
	}
	return n, ferr
}

func (c *Conn) Write(p []byte) (int, error) {
	allow, short, ferr := c.WriteScript.admit(len(p))
	var n int
	var err error
	if allow > 0 {
		n, err = c.Conn.Write(p[:allow])
	}
	if ferr != nil && c.CloseOnTrip {
		c.closeOnce.Do(func() { c.Conn.Close() })
	}
	if err != nil {
		return n, err
	}
	if ferr != nil {
		return n, ferr
	}
	if short || n < len(p) {
		return n, io.ErrShortWrite
	}
	return n, nil
}

// File wraps a WAL segment file (anything with Write/Sync/Close),
// injecting write faults via Script and fsync failures via FailSyncAt.
// It satisfies storage.SegmentFile.
type File struct {
	F interface {
		io.Writer
		Sync() error
		Close() error
	}
	Script *Script
	// FailSyncAt makes the n-th Sync call (1-based) and every later
	// one return SyncErr; 0 disables.
	FailSyncAt int
	// SyncErr defaults to ErrInjected.
	SyncErr error

	mu    sync.Mutex
	syncs int
}

func (f *File) Write(p []byte) (int, error) {
	allow, short, ferr := f.Script.admit(len(p))
	n, err := f.F.Write(p[:allow])
	if err != nil {
		return n, err
	}
	if ferr != nil {
		return n, ferr
	}
	if short || n < len(p) {
		return n, io.ErrShortWrite
	}
	return n, nil
}

func (f *File) Sync() error {
	f.mu.Lock()
	f.syncs++
	fail := f.FailSyncAt > 0 && f.syncs >= f.FailSyncAt
	f.mu.Unlock()
	if fail {
		if f.SyncErr != nil {
			return f.SyncErr
		}
		return ErrInjected
	}
	return f.F.Sync()
}

func (f *File) Close() error { return f.F.Close() }

// Syncs returns the number of Sync calls observed.
func (f *File) Syncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}
