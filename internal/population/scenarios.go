package population

// Scenario presets: named configurations for sensitivity analysis. The
// default world mirrors the paper's deployment; the variants move one
// population characteristic at a time so analyses can report how each
// result responds (the reproduction's substitute for the paper's
// single fixed population).

// Scenario names accepted by NamedConfig.
const (
	// ScenarioPaper is the calibrated default world.
	ScenarioPaper = "paper"
	// ScenarioMobileHeavy shifts the platform mix toward phones, as a
	// consumer-content site would see.
	ScenarioMobileHeavy = "mobile-heavy"
	// ScenarioEnterprise models a corporate intranet: Windows-dominated,
	// slow updates, little travel, Office everywhere.
	ScenarioEnterprise = "enterprise"
	// ScenarioFastUpdaters models a tech-savvy audience: updates adopted
	// quickly, more privacy actions.
	ScenarioFastUpdaters = "fast-updaters"
	// ScenarioLoyal models a site with very frequent returning visitors
	// (more visits → more observable dynamics, the Figure 7 regime).
	ScenarioLoyal = "loyal"
)

// Scenarios lists the available preset names.
func Scenarios() []string {
	return []string{ScenarioPaper, ScenarioMobileHeavy, ScenarioEnterprise, ScenarioFastUpdaters, ScenarioLoyal}
}

// NamedConfig returns the preset configuration for a scenario name; ok
// is false for unknown names.
func NamedConfig(name string, users int) (Config, bool) {
	cfg := DefaultConfig(users)
	switch name {
	case ScenarioPaper:
		return cfg, true
	case ScenarioMobileHeavy:
		cfg.MultiDeviceShare = 0.25 // phone + tablet households
		cfg.SecondBrowserShare = 0.10
		return cfg, true
	case ScenarioEnterprise:
		cfg.NeverUpdateShare = 0.6 // managed, frozen images
		cfg.MeanUpdateLagDays = 60
		cfg.MultiDeviceShare = 0.05
		cfg.ReturnProb = 0.8 // daily intranet use
		cfg.MaxVisits = 120
		return cfg, true
	case ScenarioFastUpdaters:
		cfg.NeverUpdateShare = 0.05
		cfg.MeanUpdateLagDays = 4
		return cfg, true
	case ScenarioLoyal:
		cfg.ReturnProb = 0.85
		cfg.MaxVisits = 100
		return cfg, true
	}
	return Config{}, false
}
