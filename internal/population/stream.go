package population

// Streaming, out-of-core simulation. The in-memory Simulate materializes
// the whole Dataset — records, ground-truth slices, canvas stores — which
// caps runs around ~20k users while the paper's dataset is 7.2M
// fingerprints. SimulateSpill runs the same generative model in bounded
// memory: users are simulated in batches, each batch's visit timeline is
// sorted and spilled as one CRC-framed run file (the storage WAL
// framing, via internal/extsort), and Stream() k-way merges the runs on
// (time, serial) back into the global record order. Only one batch of
// per-user simulation state plus one merge head per run is ever live.
//
// Determinism discipline: the streamed sequence is byte-identical to the
// in-memory path at the same Config — Workers == 0 threads the single
// legacy RNG through the batched creation passes (the visit loops
// already draw from per-instance streams keyed by global serial, so
// partitioning is invisible), and Workers != 0 reproduces the sharded
// path's per-user sub-RNGs and prefix-sum serial numbering. Batch size
// only decides when state is spilled, never what is emitted.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"fpdyn/internal/canvas"
	"fpdyn/internal/extsort"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/geoip"
	"fpdyn/internal/obs"
	"fpdyn/internal/parallel"
	"fpdyn/internal/storage"
)

// StreamItem is one record of the spilled dataset: the visit record
// plus its ground truth, the unit the run files frame and the merged
// stream yields.
type StreamItem struct {
	Rec        *fingerprint.Record `json:"rec"`
	Instance   int                 `json:"inst"`
	VisitIndex int                 `json:"vi"`
	Truth      []EventType         `json:"truth,omitempty"`
}

// StreamOptions configures the out-of-core path. The zero value works:
// a temp spill directory and a default memory budget.
type StreamOptions struct {
	// SpillDir hosts the run files. Empty means a fresh temp directory
	// (removed on Close). A caller-provided directory is created if
	// absent and only its fpdyn-owned subdirectories are removed.
	SpillDir string
	// MemBudget bounds the memory the simulation phase holds in flight,
	// in bytes; it is translated into a users-per-batch count with a
	// calibrated per-user estimate (default 256 MiB). The budget covers
	// the batched simulation state and spill buffers — the merge side
	// adds only one read head per run file.
	MemBudget int64
	// UsersPerBatch overrides the derived batch size directly (takes
	// precedence over MemBudget). Batch size never changes the output,
	// only peak memory and run count.
	UsersPerBatch int
	// Registry receives spill/merge metrics (runs, bytes, heap size,
	// records in flight). Nil disables.
	Registry *obs.Registry
	// Timings, when non-nil, records the simulate+spill stage.
	Timings *obs.Timings
	// OpenFile opens run files for writing (fault-injection hook);
	// defaults to os.Create.
	OpenFile func(path string) (storage.SegmentFile, error)
}

// bytesPerUserEstimate is the calibrated in-flight cost of one user in
// a simulation batch: instance + device state, the batch's records
// (~3.3 per user) and the sort/spill buffers.
const bytesPerUserEstimate = 16 << 10

func (o *StreamOptions) usersPerBatch() int {
	if o.UsersPerBatch > 0 {
		return o.UsersPerBatch
	}
	budget := o.MemBudget
	if budget <= 0 {
		budget = 256 << 20
	}
	n := int(budget / bytesPerUserEstimate)
	if n < 16 {
		n = 16
	}
	return n
}

// SpilledDataset is the out-of-core counterpart of Dataset: the scalar
// ground truth (instance count, dedup image stores, geo DB) stays in
// memory — it is bounded by the world's distinct states, not by visit
// volume — while the records live in spilled, sorted run files and are
// consumed through Stream.
type SpilledDataset struct {
	Cfg          Config
	NumInstances int
	CanvasImages map[string]*canvas.Image
	GPUImageInfo map[string]canvas.GPUInfo
	Geo          *geoip.DB
	Records      int // total records spilled

	sorter  *extsort.Sorter[StreamItem]
	root    string // spill root; removed on Close when ownRoot
	ownRoot bool
}

func itemLess(a, b StreamItem) bool {
	if !a.Rec.Time.Equal(b.Rec.Time) {
		return a.Rec.Time.Before(b.Rec.Time)
	}
	return a.Instance < b.Instance
}

func encodeItem(dst []byte, v StreamItem) ([]byte, error) {
	b, err := json.Marshal(&v)
	if err != nil {
		return dst, err
	}
	return append(dst, b...), nil
}

func decodeItem(p []byte) (StreamItem, error) {
	var v StreamItem
	err := json.Unmarshal(p, &v)
	return v, err
}

// NewSpillSorter builds an extsort sorter for StreamItem runs under
// dir, ordered by (time, serial). The report's by-instance re-sort
// reuses the same codec with a different order through extsort
// directly; this helper is the (time, serial) record stream.
func NewSpillSorter(dir, name string, reg *obs.Registry, open func(string) (storage.SegmentFile, error)) (*extsort.Sorter[StreamItem], error) {
	return extsort.New(extsort.Options[StreamItem]{
		Dir:      dir,
		Less:     itemLess,
		Encode:   encodeItem,
		Decode:   decodeItem,
		OpenFile: open,
		Registry: reg,
		Name:     name,
	})
}

// SimulateSpill generates the dataset out-of-core: every batch of users
// is simulated, sorted by (time, serial) and spilled as one run, then
// the per-batch state is dropped. The result streams the identical
// record sequence the in-memory Simulate would return for the same
// Config — for the legacy serial path (Workers == 0) and the sharded
// path (any other worker count) alike.
func SimulateSpill(cfg Config, opts StreamOptions) (sd *SpilledDataset, err error) {
	stop := opts.Timings.Start("simulate_spill")
	root := opts.SpillDir
	ownRoot := false
	if root == "" {
		root, err = os.MkdirTemp("", "fpdyn-spill-*")
		if err != nil {
			return nil, fmt.Errorf("population: spill dir: %w", err)
		}
		ownRoot = true
	} else if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("population: spill dir: %w", err)
	}
	sorter, err := NewSpillSorter(filepath.Join(root, "sim"), "simulate", opts.Registry, opts.OpenFile)
	if err != nil {
		return nil, err
	}
	out := &SpilledDataset{
		Cfg:          cfg,
		CanvasImages: make(map[string]*canvas.Image),
		GPUImageInfo: make(map[string]canvas.GPUInfo),
		Geo:          geoip.New(cfg.Cities),
		sorter:       sorter,
		root:         root,
		ownRoot:      ownRoot,
	}
	sd = out
	defer func() {
		if err != nil {
			out.Close()
			sd = nil
		}
	}()

	// Workers == 0 is the legacy serial reproduction path: one shared
	// RNG threads through every user's creation in order, across batch
	// boundaries. Any other value reproduces the sharded path.
	var serialRNG *rand.Rand
	if cfg.Workers == 0 {
		serialRNG = rand.New(rand.NewSource(cfg.Seed))
	}
	visitWorkers := cfg.Workers
	if visitWorkers == 0 {
		visitWorkers = 1
	}

	// gpuBest tracks, per GPU image hash, the earliest (time, serial)
	// render claim seen so far across batches — the serial path's
	// global-timeline first-wins, reconstructed from per-shard maps.
	// Only the Workers == 0 reproduction path needs it: the sharded
	// in-memory path merges in shard order, which the batch loop's
	// user-ordered fold already matches.
	var gpuBest map[string]gpuFirstKey
	if cfg.Workers == 0 {
		gpuBest = make(map[string]gpuFirstKey)
	}

	batchSize := opts.usersPerBatch()
	instBase, devBase := 0, 0
	for u0 := 0; u0 < cfg.Users; u0 += batchSize {
		u1 := u0 + batchSize
		if u1 > cfg.Users {
			u1 = cfg.Users
		}
		n := u1 - u0

		// Creation. The serial path draws from the shared stream in user
		// order; the sharded path builds each user from its own sub-RNG
		// with shard-local serials, renumbered by the running prefix sums
		// — the exact numbering simulateSharded assigns.
		var shards []*userShard
		if cfg.Workers == 0 {
			shards = make([]*userShard, n)
			for i := 0; i < n; i++ {
				ins, devs := buildUser(serialRNG, cfg, sd.Geo, u0+i, instBase, devBase)
				shards[i] = &userShard{instances: ins, devices: devs}
				instBase += len(ins)
				devBase += len(devs)
			}
		} else {
			shards = parallel.Map(cfg.Workers, n, func(i int) *userShard {
				rng := rand.New(rand.NewSource(userSeed(cfg, u0+i)))
				ins, devs := buildUser(rng, cfg, sd.Geo, u0+i, 0, 0)
				return &userShard{instances: ins, devices: devs}
			})
			for _, sh := range shards {
				for _, in := range sh.instances {
					in.serial += instBase
				}
				for _, dv := range sh.devices {
					dv.serial += devBase
					for i := range dv.schedule {
						if dv.schedule[i].except >= 0 {
							dv.schedule[i].except += instBase
						}
					}
				}
				instBase += len(sh.instances)
				devBase += len(sh.devices)
			}
		}

		// Visits: per-shard loops into private outputs (per-instance RNG
		// streams keyed by global serial make the partitioning invisible).
		parallel.ForEach(visitWorkers, n, func(i int) {
			sh := shards[i]
			sh.out = &Dataset{
				Cfg:          cfg,
				CanvasImages: make(map[string]*canvas.Image),
				GPUImageInfo: make(map[string]canvas.GPUInfo),
				Geo:          sd.Geo,
			}
			if gpuBest != nil {
				sh.out.gpuFirst = make(map[string]gpuFirstKey)
			}
			simulateVisits(cfg, sh.instances, sh.out)
		})

		// Collect the batch timeline, sort by (time, serial), spill as
		// one run; fold the dedup image stores (identical hash →
		// identical content, so first-wins is exact).
		total := 0
		for _, sh := range shards {
			total += len(sh.out.Records)
		}
		items := make([]StreamItem, 0, total)
		for _, sh := range shards {
			out := sh.out
			for i := range out.Records {
				items = append(items, StreamItem{
					Rec:        out.Records[i],
					Instance:   out.TrueInstance[i],
					VisitIndex: out.VisitIndex[i],
					Truth:      out.Truth[i],
				})
			}
			for h, img := range out.CanvasImages {
				if _, ok := sd.CanvasImages[h]; !ok {
					sd.CanvasImages[h] = img
				}
			}
			// GPU image hashes can collide across distinct GPUInfo values
			// (integrated GPUs cluster), so the winner matters. Workers ==
			// 0 reproduces the serial path's global-timeline first-wins
			// via the recorded claim keys; the sharded path merges in
			// shard (user) order exactly like simulateSharded.
			for h, info := range out.GPUImageInfo {
				if gpuBest != nil {
					k := out.gpuFirst[h]
					if old, ok := gpuBest[h]; !ok || k.before(old) {
						gpuBest[h] = k
						sd.GPUImageInfo[h] = info
					}
				} else if _, ok := sd.GPUImageInfo[h]; !ok {
					sd.GPUImageInfo[h] = info
				}
			}
		}
		sort.Slice(items, func(i, j int) bool { return itemLess(items[i], items[j]) })
		if err := sorter.WriteRun(items); err != nil {
			return nil, err
		}
		sd.Records += len(items)
	}
	sd.NumInstances = instBase
	stop(sd.Records)
	return sd, nil
}

// Stream returns a bounded-memory iterator over the merged (time,
// serial) record sequence. It can be called repeatedly; each call
// replays the identical sequence from the spilled runs (the two-pass
// ground-truth build streams twice).
func (sd *SpilledDataset) Stream() (*RecordStream, error) {
	st, err := sd.sorter.Merge()
	if err != nil {
		return nil, err
	}
	return &RecordStream{st: st}, nil
}

// SpilledBytes returns the bytes written to run files.
func (sd *SpilledDataset) SpilledBytes() int64 { return sd.sorter.SpilledBytes() }

// Runs returns the number of spilled run files.
func (sd *SpilledDataset) Runs() int { return sd.sorter.Runs() }

// SpillRoot returns the spill root directory (the report's by-instance
// re-sort spills its runs under the same root).
func (sd *SpilledDataset) SpillRoot() string { return sd.root }

// Registry returns nothing; metrics are registered on the Registry the
// caller passed in StreamOptions.

// Close deletes the spilled runs (and the temp root, when owned).
func (sd *SpilledDataset) Close() error {
	var err error
	if sd.sorter != nil {
		err = sd.sorter.Close()
	}
	if sd.ownRoot && sd.root != "" {
		if rerr := os.RemoveAll(sd.root); err == nil {
			err = rerr
		}
	}
	return err
}

// Load drains the stream into an in-memory Dataset — the legacy slice
// adapter. It exists for the digest-equality tests and for callers that
// want the spill-path generation but the slice-consuming analyses; at
// large scale use Stream instead.
func (sd *SpilledDataset) Load() (*Dataset, error) {
	ds := &Dataset{
		Cfg:          sd.Cfg,
		CanvasImages: sd.CanvasImages,
		GPUImageInfo: sd.GPUImageInfo,
		Geo:          sd.Geo,
		NumInstances: sd.NumInstances,
	}
	st, err := sd.Stream()
	if err != nil {
		return nil, err
	}
	defer st.Close()
	for {
		item, ok, err := st.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return ds, nil
		}
		ds.Records = append(ds.Records, item.Rec)
		ds.TrueInstance = append(ds.TrueInstance, item.Instance)
		ds.VisitIndex = append(ds.VisitIndex, item.VisitIndex)
		ds.Truth = append(ds.Truth, item.Truth)
	}
}

// RecordStream iterates the merged record sequence.
type RecordStream struct {
	st *extsort.Stream[StreamItem]
}

// Next yields the next item in (time, serial) order; ok=false at the
// end. Errors (torn or corrupt run files) poison the stream.
func (rs *RecordStream) Next() (StreamItem, bool, error) { return rs.st.Next() }

// Close releases the merge readers.
func (rs *RecordStream) Close() error { return rs.st.Close() }
