package population

import (
	"math/rand"
	"sort"

	"fpdyn/internal/canvas"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/geoip"
	"fpdyn/internal/hashutil"
	"fpdyn/internal/parallel"
)

// userSeed derives the RNG seed for one user's shard: the global seed
// folded with the hash of the stable user ID. Each user gets an
// independent stream, so shards can be simulated in any order, on any
// number of workers, and still draw exactly the same values.
func userSeed(cfg Config, u int) int64 {
	return cfg.Seed ^ int64(hashutil.Hash64(userHash(cfg.Seed, u)))
}

// userShard is one user's simulated world before merging: the
// creation-phase output and, later, the emitted per-shard records.
type userShard struct {
	instances []*instance
	devices   []*device
	out       *Dataset
}

// simulateSharded is the parallel generator behind Simulate for
// cfg.Workers != 0. It runs in three phases:
//
//  1. build every user's devices and instances concurrently, each from
//     its own userSeed sub-RNG, with shard-local serials;
//  2. renumber the local serials into the global, user-ordered
//     numbering (a serial prefix-sum pass, so the assignment is
//     independent of scheduling);
//  3. run each user's visit loop concurrently into a private shard
//     Dataset, then merge all shards into one global timeline sorted
//     by (time, instance serial) — the same order the serial visit
//     loop emits.
//
// Users never share devices and the per-instance RNG streams are keyed
// by global serial, so phases 1 and 3 are embarrassingly parallel; the
// only shared state, the geolocation DB, is immutable after New.
func simulateSharded(cfg Config) *Dataset {
	workers := parallel.Resolve(cfg.Workers)
	geo := geoip.New(cfg.Cities)

	// Phase 1: creation, one shard per user, local serials from 0.
	shards := parallel.Map(workers, cfg.Users, func(u int) *userShard {
		rng := rand.New(rand.NewSource(userSeed(cfg, u)))
		ins, devs := buildUser(rng, cfg, geo, u, 0, 0)
		return &userShard{instances: ins, devices: devs}
	})

	// Phase 2: renumber shard-local serials into the global numbering.
	// devChange.except holds instance serials captured at creation time
	// (the Samsung self-exclusion), so it shifts with the instances.
	instBase, devBase := 0, 0
	for _, sh := range shards {
		for _, in := range sh.instances {
			in.serial += instBase
		}
		for _, dv := range sh.devices {
			dv.serial += devBase
			for i := range dv.schedule {
				if dv.schedule[i].except >= 0 {
					dv.schedule[i].except += instBase
				}
			}
		}
		instBase += len(sh.instances)
		devBase += len(sh.devices)
	}

	// Phase 3: per-shard visit loops into private Datasets. The shards
	// share the immutable Geo; image stores are merged afterwards
	// (identical hash → identical content, so first-wins is exact).
	parallel.ForEach(workers, len(shards), func(i int) {
		sh := shards[i]
		sh.out = &Dataset{
			Cfg:          cfg,
			CanvasImages: make(map[string]*canvas.Image),
			GPUImageInfo: make(map[string]canvas.GPUInfo),
			Geo:          geo,
		}
		simulateVisits(cfg, sh.instances, sh.out)
	})

	// Merge: concatenate in user order, then sort the combined timeline
	// by (time, serial) — per-instance visit times strictly increase,
	// so the order is total and independent of the concatenation order.
	ds := &Dataset{
		Cfg:          cfg,
		CanvasImages: make(map[string]*canvas.Image),
		GPUImageInfo: make(map[string]canvas.GPUInfo),
		Geo:          geo,
		NumInstances: instBase,
	}
	total := 0
	for _, sh := range shards {
		total += len(sh.out.Records)
	}
	records := make([]recordRef, 0, total)
	for _, sh := range shards {
		for i := range sh.out.Records {
			records = append(records, recordRef{sh.out, i})
		}
		for h, img := range sh.out.CanvasImages {
			if _, ok := ds.CanvasImages[h]; !ok {
				ds.CanvasImages[h] = img
			}
		}
		for h, info := range sh.out.GPUImageInfo {
			if _, ok := ds.GPUImageInfo[h]; !ok {
				ds.GPUImageInfo[h] = info
			}
		}
	}
	sort.Slice(records, func(i, j int) bool {
		ri, rj := &records[i], &records[j]
		ti, tj := ri.ds.Records[ri.i].Time, rj.ds.Records[rj.i].Time
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return ri.ds.TrueInstance[ri.i] < rj.ds.TrueInstance[rj.i]
	})
	ds.Records = make([]*fingerprint.Record, 0, total)
	ds.TrueInstance = make([]int, 0, total)
	ds.VisitIndex = make([]int, 0, total)
	ds.Truth = make([][]EventType, 0, total)
	for _, r := range records {
		ds.Records = append(ds.Records, r.ds.Records[r.i])
		ds.TrueInstance = append(ds.TrueInstance, r.ds.TrueInstance[r.i])
		ds.VisitIndex = append(ds.VisitIndex, r.ds.VisitIndex[r.i])
		ds.Truth = append(ds.Truth, r.ds.Truth[r.i])
	}
	return ds
}

// recordRef points at one record inside a shard's private Dataset.
type recordRef struct {
	ds *Dataset
	i  int
}
