package population

import (
	"testing"
)

// Cross-instance canvas consistency: two browser instances with the
// same environment (platform, browser family, generations) must render
// identical canvases — that sharing is what creates anonymous sets on
// mobile and what lets the Insight 1.1 emoji leak be recognized across
// devices.
func TestSameEnvironmentSameCanvas(t *testing.T) {
	cfg := DefaultConfig(1500)
	cfg.Seed = 58
	ds := Simulate(cfg)

	// Group first-visit records by (browser, OS, osVersion, UA) — the
	// rendering environment proxy — and check canvas hashes agree.
	type envKey struct{ browser, os, ua string }
	seen := map[envKey]string{}
	checked, mismatched := 0, 0
	for i, r := range ds.Records {
		if ds.VisitIndex[i] != 0 {
			continue
		}
		k := envKey{r.Browser, r.OS, r.FP.UserAgent}
		if prev, ok := seen[k]; ok {
			checked++
			if prev != r.FP.CanvasHash {
				// Same UA but different canvas is legitimate when device
				// state diverged (emoji pack generation, WPS install, the
				// Windows 7 patch split) — but it must be the minority.
				mismatched++
			}
		} else {
			seen[k] = r.FP.CanvasHash
		}
	}
	if checked == 0 {
		t.Skip("no same-environment pairs at this scale")
	}
	rate := float64(mismatched) / float64(checked)
	t.Logf("same-UA pairs: %d, canvas mismatch rate: %.2f", checked, rate)
	if rate > 0.5 {
		t.Errorf("same-environment canvases diverge too often (%.2f): sharing broken", rate)
	}
}

// Canvas determinism at the instance level: an instance whose
// generations did not change must keep its canvas hash across visits.
func TestCanvasStableWithoutEvents(t *testing.T) {
	cfg := DefaultConfig(800)
	cfg.Seed = 59
	ds := Simulate(cfg)
	last := map[int]int{}
	for i := range ds.Records {
		inst := ds.TrueInstance[i]
		if j, ok := last[inst]; ok && len(ds.Truth[i]) == 0 {
			// No events between visits j and i: the canvas must match.
			if ds.Records[j].FP.CanvasHash != ds.Records[i].FP.CanvasHash {
				t.Fatalf("instance %d canvas changed without any event between visits", inst)
			}
		}
		last[inst] = i
	}
}

// GPU images follow the same rule: stable absent driver/update events.
func TestGPUImageStableWithoutEvents(t *testing.T) {
	cfg := DefaultConfig(800)
	cfg.Seed = 60
	ds := Simulate(cfg)
	last := map[int]int{}
	for i := range ds.Records {
		inst := ds.TrueInstance[i]
		if j, ok := last[inst]; ok && len(ds.Truth[i]) == 0 {
			if ds.Records[j].FP.GPUImageHash != ds.Records[i].FP.GPUImageHash {
				t.Fatalf("instance %d GPU image changed without any event", inst)
			}
		}
		last[inst] = i
	}
}
