package population

import (
	"testing"
	"time"
)

// Tests for the §2.2.2 deployment-artifact simulation: hot patches and
// the partial server outage.

func deploymentWorld(t *testing.T) *Dataset {
	t.Helper()
	cfg := DefaultConfig(800)
	cfg.Seed = 9
	cfg.SimulateDeployment = true
	return Simulate(cfg)
}

func TestHotPatchHeaderList(t *testing.T) {
	ds := deploymentWorld(t)
	patch := ds.Cfg.Start.Add(HotPatchHeaderListDay * 24 * time.Hour)
	sawBefore, sawAfter := false, false
	for _, r := range ds.Records {
		if r.Time.Before(patch) {
			sawBefore = true
			if len(r.FP.HeaderList) != 0 {
				t.Fatalf("header list collected before the day-%d hot patch", HotPatchHeaderListDay)
			}
		} else {
			if len(r.FP.HeaderList) != 0 {
				sawAfter = true
			}
		}
	}
	if !sawBefore || !sawAfter {
		t.Skipf("window not sampled on both sides (before=%v after=%v)", sawBefore, sawAfter)
	}
}

func TestHotPatchAccept(t *testing.T) {
	ds := deploymentWorld(t)
	patch := ds.Cfg.Start.Add(HotPatchAcceptDay * 24 * time.Hour)
	for _, r := range ds.Records {
		if r.Time.Before(patch) {
			if r.FP.Accept != "*/*" {
				t.Fatalf("pre-patch Accept = %q, want the buggy */*", r.FP.Accept)
			}
		} else if r.FP.Accept == "*/*" {
			t.Fatal("post-patch record still carries the buggy Accept")
		}
	}
}

func TestOutageThinsTraffic(t *testing.T) {
	cfg := DefaultConfig(2000)
	cfg.Seed = 9
	clean := Simulate(cfg)
	cfg.SimulateDeployment = true
	outage := Simulate(cfg)

	count := func(ds *Dataset, fromDay, toDay int) int {
		lo := ds.Cfg.Start.Add(time.Duration(fromDay) * 24 * time.Hour)
		hi := ds.Cfg.Start.Add(time.Duration(toDay) * 24 * time.Hour)
		n := 0
		for _, r := range ds.Records {
			if !r.Time.Before(lo) && r.Time.Before(hi) {
				n++
			}
		}
		return n
	}
	cleanWin := count(clean, OutageStartDay, OutageEndDay)
	outageWin := count(outage, OutageStartDay, OutageEndDay)
	if cleanWin == 0 {
		t.Skip("no traffic in the outage window at this scale")
	}
	ratio := float64(outageWin) / float64(cleanWin)
	t.Logf("outage window records: %d clean vs %d with outage (%.2f)", cleanWin, outageWin, ratio)
	if ratio > 0.75 {
		t.Errorf("outage removed too little traffic: ratio %.2f", ratio)
	}
	// Outside the outage, traffic is not thinned (same seed, but RNG
	// consumption differs slightly; allow wide tolerance).
	cleanOut := count(clean, OutageEndDay+10, OutageEndDay+60)
	outageOut := count(outage, OutageEndDay+10, OutageEndDay+60)
	if cleanOut > 100 && float64(outageOut) < 0.7*float64(cleanOut) {
		t.Errorf("traffic outside the outage window also thinned: %d vs %d", outageOut, cleanOut)
	}
}

func TestOutagePreservesTruthConsistency(t *testing.T) {
	ds := deploymentWorld(t)
	if len(ds.Records) != len(ds.Truth) || len(ds.Records) != len(ds.TrueInstance) {
		t.Fatal("parallel arrays inconsistent under deployment simulation")
	}
	// First recorded visit of each instance must still carry no labels.
	seen := map[int]bool{}
	for i := range ds.Records {
		inst := ds.TrueInstance[i]
		if !seen[inst] {
			seen[inst] = true
			if len(ds.Truth[i]) != 0 {
				t.Fatalf("first recorded visit of instance %d carries labels %v", inst, ds.Truth[i])
			}
		}
	}
}

func TestDeploymentOffByDefault(t *testing.T) {
	cfg := DefaultConfig(50)
	ds := Simulate(cfg)
	for _, r := range ds.Records {
		if r.FP.Accept == "*/*" {
			t.Fatal("deployment artifacts leaked into the default configuration")
		}
	}
}
