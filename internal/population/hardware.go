package population

import (
	"math/rand"

	"fpdyn/internal/canvas"
	"fpdyn/internal/useragent"
)

// Hardware and platform pools the simulator samples from. Shares are
// tuned to the breakdowns of Figures 5 and 6: Windows is the most used
// OS, iOS next, Android on par with iOS, macOS smaller, Linux tiny; on
// mobile the default browser (Safari or Samsung) dominates.

type platformChoice struct {
	os      string
	mobile  bool
	weight  int
	browser []browserChoice
}

type browserChoice struct {
	family string
	weight int
}

var platformPool = []platformChoice{
	{os: useragent.Windows, mobile: false, weight: 38, browser: []browserChoice{
		{useragent.Chrome, 52}, {useragent.Firefox, 24}, {useragent.Edge, 12},
		{useragent.Opera, 6}, {useragent.IE, 4}, {useragent.Maxthon, 2},
	}},
	{os: useragent.IOS, mobile: true, weight: 26, browser: []browserChoice{
		{useragent.MobileSafari, 84}, {useragent.ChromeMobile, 12}, {useragent.FirefoxMobile, 4},
	}},
	{os: useragent.Android, mobile: true, weight: 24, browser: []browserChoice{
		{useragent.ChromeMobile, 46}, {useragent.Samsung, 40}, {useragent.FirefoxMobile, 14},
	}},
	{os: useragent.MacOSX, mobile: false, weight: 10, browser: []browserChoice{
		{useragent.Safari, 55}, {useragent.Chrome, 32}, {useragent.Firefox, 13},
	}},
	{os: useragent.Linux, mobile: false, weight: 2, browser: []browserChoice{
		{useragent.Firefox, 55}, {useragent.Chrome, 45},
	}},
}

func pickPlatform(rng *rand.Rand) platformChoice {
	total := 0
	for _, p := range platformPool {
		total += p.weight
	}
	n := rng.Intn(total)
	for _, p := range platformPool {
		if n < p.weight {
			return p
		}
		n -= p.weight
	}
	return platformPool[0]
}

func pickBrowser(rng *rand.Rand, p platformChoice) string {
	total := 0
	for _, b := range p.browser {
		total += b.weight
	}
	n := rng.Intn(total)
	for _, b := range p.browser {
		if n < b.weight {
			return b.family
		}
		n -= b.weight
	}
	return p.browser[0].family
}

// initialVersion returns the browser version an instance starts the
// deployment window with: mostly the latest pre-window release, with a
// tail of stale installs (the paper: many browsers are not constantly
// updated).
func initialVersion(rng *rand.Rand, family string) useragent.Version {
	rels := releasesFor(BrowserReleases, family)
	if len(rels) == 0 {
		// Families without in-window releases sit on a fixed version;
		// Mobile Safari's presented version is overridden to track iOS.
		switch family {
		case useragent.MobileSafari:
			return useragent.V(11, 0)
		case useragent.IE:
			return useragent.V(11)
		case useragent.Maxthon:
			if rng.Intn(5) == 0 {
				return useragent.V(4, 9, 5, 1000) // the paper's whitespace example
			}
			return useragent.V(5, 1, 3, 2000)
		}
		return useragent.V(1)
	}
	first := rels[0].V
	// 65%: already on the newest pre-window release; 35%: a stale
	// install one or two majors behind (many browsers are not constantly
	// updated — the paper finds only 13.81% of instances update at all).
	if rng.Intn(100) < 65 {
		return first
	}
	back := 1 + rng.Intn(2)
	stale := first
	stale.Major -= back
	if stale.Major < 1 {
		stale.Major = 1
	}
	// Synthesize plausible older sub-version numbers.
	if stale.Patch >= 0 {
		stale.Patch -= 37 * back
		if stale.Patch < 0 {
			stale.Patch = 2000 + stale.Major
		}
	}
	return stale
}

var gpuPool = []canvas.GPUInfo{
	{Vendor: "Intel Inc.", Renderer: "Intel(R) HD Graphics 520"},
	{Vendor: "Intel Inc.", Renderer: "Intel(R) HD Graphics 620"},
	{Vendor: "Intel Inc.", Renderer: "Intel(R) UHD Graphics 630"},
	{Vendor: "Intel Inc.", Renderer: "Intel(R) HD Graphics 4000"},
	{Vendor: "AMD", Renderer: "AMD Radeon R7 200 Series"},
	{Vendor: "AMD", Renderer: "AMD Radeon RX 580"},
	{Vendor: "NVIDIA Corporation", Renderer: "GeForce GTX 970"},
	{Vendor: "NVIDIA Corporation", Renderer: "GeForce GTX 1060"},
	{Vendor: "NVIDIA Corporation", Renderer: "GeForce GTX 1080"},
	{Vendor: "NVIDIA Corporation", Renderer: "GeForce GT 730"},
}

var desktopResolutions = []string{
	"1920x1080", "1366x768", "1536x864", "1440x900", "1600x900",
	"2560x1440", "1280x1024", "1680x1050", "3840x2160", "1280x800",
}

// mobileProfile ties a device model to its fixed hardware: real phones
// of one model are identical, which is what gives mobile fingerprints
// their larger anonymous sets (Figure 2's mobile curves).
type mobileProfile struct {
	model  string
	screen string
	dpr    float64
	cores  int
	gpu    canvas.GPUInfo
	weight int
}

var iosProfiles = []mobileProfile{
	{"iPhone", "375x667", 2, 2, canvas.GPUInfo{Vendor: "Apple Inc.", Renderer: "Apple A10 GPU"}, 45},
	{"iPhone", "375x812", 3, 6, canvas.GPUInfo{Vendor: "Apple Inc.", Renderer: "Apple A11 GPU"}, 30},
	{"iPad", "768x1024", 2, 4, canvas.GPUInfo{Vendor: "Apple Inc.", Renderer: "Apple A10 GPU"}, 25},
}

var androidProfiles = []mobileProfile{
	{"SM-G920F", "360x640", 4, 8, canvas.GPUInfo{Vendor: "ARM", Renderer: "Mali-T880"}, 18},
	{"SM-G950F", "360x740", 4, 8, canvas.GPUInfo{Vendor: "ARM", Renderer: "Mali-G71"}, 16},
	{"SM-J330F", "360x640", 2, 4, canvas.GPUInfo{Vendor: "ARM", Renderer: "Mali-T880"}, 14},
	{"SM-A520F", "360x640", 3, 8, canvas.GPUInfo{Vendor: "ARM", Renderer: "Mali-T880"}, 12},
	{"Pixel 2", "412x732", 2.625, 8, canvas.GPUInfo{Vendor: "Qualcomm", Renderer: "Adreno (TM) 540"}, 12},
	{"Nexus 5X", "412x732", 2.625, 6, canvas.GPUInfo{Vendor: "Qualcomm", Renderer: "Adreno (TM) 530"}, 10},
	{"HUAWEI P10", "360x640", 3, 8, canvas.GPUInfo{Vendor: "ARM", Renderer: "Mali-G71"}, 10},
	{"Moto G (5)", "360x640", 3, 8, canvas.GPUInfo{Vendor: "Imagination Technologies", Renderer: "PowerVR SGX 554"}, 8},
}

func pickProfile(rng *rand.Rand, profiles []mobileProfile) mobileProfile {
	total := 0
	for _, p := range profiles {
		total += p.weight
	}
	n := rng.Intn(total)
	for _, p := range profiles {
		if n < p.weight {
			return p
		}
		n -= p.weight
	}
	return profiles[0]
}

var languagePool = [][2]string{
	// {Accept-Language header value, primary system language}
	{"en-US,en;q=0.9", "en-US"},
	{"en-GB,en;q=0.9", "en-GB"},
	{"de-DE,de;q=0.9,en;q=0.8", "de-DE"},
	{"fr-FR,fr;q=0.9,en;q=0.8", "fr-FR"},
	{"es-ES,es;q=0.9,en;q=0.8", "es-ES"},
	{"it-IT,it;q=0.9,en;q=0.8", "it-IT"},
	{"nl-NL,nl;q=0.9,en;q=0.8", "nl-NL"},
	{"pl-PL,pl;q=0.9,en;q=0.8", "pl-PL"},
	{"pt-PT,pt;q=0.9,en;q=0.8", "pt-PT"},
	{"sv-SE,sv;q=0.9,en;q=0.8", "sv-SE"},
	{"ru-RU,ru;q=0.9,en;q=0.8", "ru-RU"},
	{"tr-TR,tr;q=0.9,en;q=0.8", "tr-TR"},
}

// acceptFor returns the Accept header a browser family sends. The pool
// is small (Table 1: 9 distinct values).
func acceptFor(family string) string {
	switch family {
	case useragent.Firefox, useragent.FirefoxMobile:
		return "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8"
	case useragent.Safari, useragent.MobileSafari:
		return "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8"
	case useragent.IE:
		return "text/html, application/xhtml+xml, image/jxr, */*"
	}
	return "text/html,application/xhtml+xml,application/xml;q=0.9,image/webp,image/apng,*/*;q=0.8"
}

// encodingFor returns the Accept-Encoding value. Maxthon 4.9.5.1000's
// missing whitespace is the paper's §2.3.2 example.
func encodingFor(family string, v useragent.Version) string {
	switch family {
	case useragent.Maxthon:
		if v.Compare(useragent.V(5)) < 0 {
			return "gzip,deflate"
		}
		return "gzip, deflate"
	case useragent.IE:
		return "gzip, deflate"
	case useragent.Safari, useragent.MobileSafari:
		return "br, gzip, deflate"
	}
	return "gzip, deflate, br"
}

// headerListFor returns the ordered list of HTTP header names the
// browser family sends.
func headerListFor(family string, mobile bool) []string {
	base := []string{"Host", "Connection", "User-Agent", "Accept", "Accept-Encoding", "Accept-Language", "Cookie"}
	switch family {
	case useragent.Firefox, useragent.FirefoxMobile:
		base = append(base, "Upgrade-Insecure-Requests", "DNT")
	case useragent.Chrome, useragent.ChromeMobile, useragent.Opera, useragent.Samsung:
		base = append(base, "Upgrade-Insecure-Requests")
	}
	if mobile {
		base = append(base, "X-Requested-With")
	}
	return base
}

// pluginsFor returns the default plugin list per family/platform.
// Mobile browsers expose none; that asymmetry is itself fingerprintable.
func pluginsFor(family string, mobile bool) []string {
	if mobile {
		return nil
	}
	switch family {
	case useragent.Chrome, useragent.Opera, useragent.Maxthon:
		return []string{"Chrome PDF Plugin", "Chrome PDF Viewer", "Native Client", "Widevine Content Decryption Module"}
	case useragent.Firefox:
		return []string{"OpenH264 Video Codec", "Widevine Content Decryption Module"}
	case useragent.Safari:
		return []string{"WebKit built-in PDF"}
	case useragent.Edge, useragent.IE:
		return []string{"Edge PDF Viewer"}
	}
	return nil
}

var optionalPlugins = []string{
	"Shockwave Flash", "Java Applet Plug-in", "Silverlight Plug-In",
	"QuickTime Plug-in", "VLC Web Plugin", "DivX Web Player",
}
