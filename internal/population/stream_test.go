package population

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fpdyn/internal/faultinject"
	"fpdyn/internal/hashutil"
	"fpdyn/internal/storage"
)

func streamTestConfig(workers int) Config {
	cfg := DefaultConfig(150)
	cfg.Seed = 42
	cfg.Workers = workers
	return cfg
}

// datasetDigest hashes the full dataset through JSON — record bytes,
// ground truth, image stores — so byte-identical means byte-identical
// after the spill round-trip too (reflect.DeepEqual would trip over
// time.Time monotonic clocks).
func datasetDigest(t *testing.T, ds *Dataset) uint64 {
	t.Helper()
	var parts []string
	for i, r := range ds.Records {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := json.Marshal(ds.Truth[i])
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, string(b), string(truth))
		parts = append(parts,
			string(rune(ds.TrueInstance[i])),
			string(rune(ds.VisitIndex[i])))
	}
	imgs, err := json.Marshal(ds.CanvasImages)
	if err != nil {
		t.Fatal(err)
	}
	gpus, err := json.Marshal(ds.GPUImageInfo)
	if err != nil {
		t.Fatal(err)
	}
	parts = append(parts, string(imgs), string(gpus))
	return hashutil.HashStrings(parts...)
}

// TestSpillDigestEquality is the tentpole determinism gate: the spill
// path must reproduce the in-memory Simulate byte-for-byte at every
// worker count — the legacy serial stream (Workers 0) and the sharded
// path (1 and 8).
func TestSpillDigestEquality(t *testing.T) {
	for _, workers := range []int{0, 1, 8} {
		cfg := streamTestConfig(workers)
		want := Simulate(cfg)
		sd, err := SimulateSpill(cfg, StreamOptions{UsersPerBatch: 32})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := sd.Load()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sd.NumInstances != want.NumInstances {
			t.Fatalf("workers=%d: NumInstances %d, want %d", workers, sd.NumInstances, want.NumInstances)
		}
		if len(got.Records) != len(want.Records) {
			t.Fatalf("workers=%d: %d records, want %d", workers, len(got.Records), len(want.Records))
		}
		if dg, dw := datasetDigest(t, got), datasetDigest(t, want); dg != dw {
			t.Fatalf("workers=%d: stream digest %016x != in-memory %016x", workers, dg, dw)
		}
		if sd.Records != len(want.Records) {
			t.Fatalf("workers=%d: spilled %d records, want %d", workers, sd.Records, len(want.Records))
		}
		if err := sd.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSpillBatchInvariance asserts batch size changes spill layout but
// never output: tiny batches and one giant batch stream identically.
func TestSpillBatchInvariance(t *testing.T) {
	for _, workers := range []int{0, 2} {
		cfg := streamTestConfig(workers)
		var digests []uint64
		var runs []int
		for _, batch := range []int{7, 1000} {
			sd, err := SimulateSpill(cfg, StreamOptions{UsersPerBatch: batch})
			if err != nil {
				t.Fatal(err)
			}
			ds, err := sd.Load()
			if err != nil {
				t.Fatal(err)
			}
			digests = append(digests, datasetDigest(t, ds))
			runs = append(runs, sd.Runs())
			sd.Close()
		}
		if digests[0] != digests[1] {
			t.Fatalf("workers=%d: batch=7 digest %016x != batch=1000 digest %016x",
				workers, digests[0], digests[1])
		}
		if runs[0] <= runs[1] {
			t.Fatalf("workers=%d: expected more runs at batch=7 (%d) than batch=1000 (%d)",
				workers, runs[0], runs[1])
		}
	}
}

// TestSpillStreamOrder checks the merged stream is globally
// (time, serial)-ordered and restreamable.
func TestSpillStreamOrder(t *testing.T) {
	cfg := streamTestConfig(4)
	sd, err := SimulateSpill(cfg, StreamOptions{UsersPerBatch: 25})
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	for pass := 0; pass < 2; pass++ {
		st, err := sd.Stream()
		if err != nil {
			t.Fatal(err)
		}
		var prev StreamItem
		n := 0
		for {
			item, ok, err := st.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if n > 0 && itemLess(item, prev) {
				t.Fatalf("pass %d: stream out of order at record %d", pass, n)
			}
			prev = item
			n++
		}
		st.Close()
		if n != sd.Records {
			t.Fatalf("pass %d: streamed %d records, want %d", pass, n, sd.Records)
		}
	}
}

// TestSpillWriteFailure scripts a spill-file write fault: SimulateSpill
// must fail loudly instead of recording a short run.
func TestSpillWriteFailure(t *testing.T) {
	cfg := streamTestConfig(1)
	sd, err := SimulateSpill(cfg, StreamOptions{
		UsersPerBatch: 50,
		OpenFile: func(path string) (storage.SegmentFile, error) {
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			return &faultinject.File{F: f, Script: &faultinject.Script{FailAfter: 4096}}, nil
		},
	})
	if !errors.Is(err, faultinject.ErrInjected) {
		if sd != nil {
			sd.Close()
		}
		t.Fatalf("want injected write error, got %v", err)
	}
	if sd != nil {
		t.Fatal("SimulateSpill returned a dataset alongside an error")
	}
}

// TestSpillTornSegment truncates a spilled run mid-frame: the merge
// must surface a torn-frame error, never silently drop the tail.
func TestSpillTornSegment(t *testing.T) {
	cfg := streamTestConfig(1)
	dir := t.TempDir()
	sd, err := SimulateSpill(cfg, StreamOptions{UsersPerBatch: 50, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	path := filepath.Join(dir, "sim", "run-000000.seg")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	st, err := sd.Stream()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sawErr := false
	for {
		_, ok, err := st.Next()
		if err != nil {
			if !errors.Is(err, storage.ErrTornFrame) {
				t.Fatalf("want ErrTornFrame, got %v", err)
			}
			sawErr = true
			break
		}
		if !ok {
			break
		}
	}
	if !sawErr {
		t.Fatal("torn spill segment streamed without error")
	}
}
