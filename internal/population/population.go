// Package population is the synthetic-world substrate of the
// reproduction: it stands in for the paper's NDA-gated raw dataset
// (7.2M fingerprints from a real European website) by simulating users,
// devices and browser instances over the same deployment window, with
// the same generative causes of fingerprint dynamics — the real
// browser/OS release calendar with per-release side effects, software
// installs, travel, user actions and cookie-clearing behaviours —
// calibrated to the category mix of the paper's Table 2 and the
// marginal distributions of Figures 3–7.
//
// Everything downstream (collection, ground truth, diffing,
// classification, linking, statistics) consumes only the emitted visit
// records, so the substitution preserves every code path the paper's
// analyses exercise. The simulator additionally retains what a real
// deployment cannot: the true instance identity of every record and the
// true cause labels of every change, which is what lets the test suite
// verify the classifier and linker against ground truth.
package population

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"fpdyn/internal/canvas"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/fontdb"
	"fpdyn/internal/geoip"
	"fpdyn/internal/hashutil"
	"fpdyn/internal/useragent"
)

// Dataset is a generated raw dataset plus the simulator's ground truth.
type Dataset struct {
	Cfg     Config
	Records []*fingerprint.Record // global time order

	// TrueInstance[i] is the true browser-instance serial of Records[i]
	// (linking ground truth for the FP-Stalker evaluation).
	TrueInstance []int
	// VisitIndex[i] is the per-instance visit ordinal of Records[i].
	VisitIndex []int
	// Truth[i] lists the causes applied since the instance's previous
	// visit (empty for first visits and unchanged fingerprints).
	Truth [][]EventType

	// CanvasImages is the server-side dedup value store: full content
	// for every canvas/GPU image hash, enabling offline pixel diffs.
	CanvasImages map[string]*canvas.Image
	// GPUImageInfo maps each GPU image hash to the true GPU that
	// rendered it (ground truth for the Insight 1.3 inference).
	GPUImageInfo map[string]canvas.GPUInfo

	Geo          *geoip.DB
	NumInstances int

	// gpuFirst, when non-nil, records the (time, serial) of the render
	// that claimed each GPU image hash — the spill path's cross-batch
	// first-wins tiebreak (stream.go).
	gpuFirst map[string]gpuFirstKey
}

// gpuFirstKey orders GPUImageInfo claims the way the serial visit
// timeline does: by time, then instance serial.
type gpuFirstKey struct {
	t      time.Time
	serial int
}

func (k gpuFirstKey) before(o gpuFirstKey) bool {
	if !k.t.Equal(o.t) {
		return k.t.Before(o.t)
	}
	return k.serial < o.serial
}

// Simulate generates a dataset under the given configuration. The
// output is fully deterministic in cfg.Seed.
//
// cfg.Workers selects the execution path. Workers == 0 is the legacy
// serial path: one RNG stream threads through every user in order,
// which is the reproduction baseline all calibrated outputs were
// validated against. Workers != 0 is the sharded path (sharded.go):
// each user gets a sub-RNG derived from the seed and the user hash, so
// user shards simulate independently on a worker pool and merge into
// the same global time order — the result is identical for every
// worker count at a given seed (Workers: 1 and Workers: NumCPU produce
// the same Dataset), though its RNG draws differ from the Workers == 0
// stream.
func Simulate(cfg Config) *Dataset {
	if cfg.Workers != 0 {
		return simulateSharded(cfg)
	}
	return simulateSerial(cfg)
}

// simulateSerial is the legacy single-threaded generator: one shared
// RNG for the creation pass, then the global visit timeline.
func simulateSerial(cfg Config) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{
		Cfg:          cfg,
		CanvasImages: make(map[string]*canvas.Image),
		GPUImageInfo: make(map[string]canvas.GPUInfo),
		Geo:          geoip.New(cfg.Cities),
	}

	var instances []*instance
	devSerial := 0
	for u := 0; u < cfg.Users; u++ {
		ins, devs := buildUser(rng, cfg, ds.Geo, u, len(instances), devSerial)
		instances = append(instances, ins...)
		devSerial += len(devs)
	}
	ds.NumInstances = len(instances)
	simulateVisits(cfg, instances, ds)
	return ds
}

// buildUser creates one user's devices and browser instances and
// schedules their device-level changes. Instance serials are assigned
// from instBase up, device serials from devBase up; the caller keeps
// the running totals (serial path) or renumbers afterwards (sharded
// path). All randomness is drawn from rng, so the serial path's shared
// stream and the sharded path's per-user sub-streams run the exact
// same draw sequence per user.
func buildUser(rng *rand.Rand, cfg Config, geo *geoip.DB, u, instBase, devBase int) ([]*instance, []*device) {
	userID := userHash(cfg.Seed, u)
	var instances []*instance
	var devices []*device
	nDevices := 1
	if rng.Float64() < cfg.MultiDeviceShare {
		nDevices = 2
	}
	var firstDev *device
	var firstFamily string
	for d := 0; d < nDevices; d++ {
		var dv *device
		if d == 1 && firstDev != nil && rng.Float64() < 0.03 {
			// The paper's §2.3.3 false-positive scenario: two machines
			// with exactly the same configuration (a computer lab).
			// Identical stable features merge them into one browser ID,
			// and their cookies interleave.
			dv = cloneDevice(firstDev, devBase+len(devices))
		} else {
			dv = newDevice(rng, cfg, geo, devBase+len(devices))
		}
		devices = append(devices, dv)
		nBrowsers := 1
		if rng.Float64() < cfg.SecondBrowserShare {
			nBrowsers = 2
		}
		used := map[string]bool{}
		var devInstances []*instance
		for b := 0; b < nBrowsers; b++ {
			family := pickBrowser(rng, dv.platform)
			if dv.isClone && b == 0 && firstFamily != "" {
				family = firstFamily // the lab clone runs the same browser
			}
			for used[family] && len(used) < len(dv.platform.browser) {
				family = pickBrowser(rng, dv.platform)
			}
			used[family] = true
			in := newInstance(rng, cfg, instBase+len(instances), userID, dv, family)
			instances = append(instances, in)
			devInstances = append(devInstances, in)
			if family == useragent.Samsung {
				dv.hasSamsung = true
			}
		}
		scheduleDevice(rng, cfg, dv, devInstances)
		if d == 0 {
			firstDev = dv
			if len(devInstances) > 0 {
				firstFamily = devInstances[0].family
			}
		}
	}
	return instances, devices
}

// simulateVisits runs the visit loop over the given instances in
// global time order, appending records and ground truth to out. The
// instances' serials must be contiguous starting at
// instances[0].serial (true for the full population and for a per-user
// shard alike). Randomness comes from per-instance RNG streams keyed
// by the instance serial, so visit behaviour is independent of how the
// population was partitioned into simulateVisits calls.
func simulateVisits(cfg Config, instances []*instance, out *Dataset) {
	if len(instances) == 0 {
		return
	}
	base := instances[0].serial

	// Global visit timeline.
	type visitRef struct {
		in *instance
		k  int
		t  time.Time
	}
	var timeline []visitRef
	for _, in := range instances {
		for k, t := range in.visits {
			timeline = append(timeline, visitRef{in, k, t})
		}
	}
	sort.Slice(timeline, func(i, j int) bool {
		if !timeline[i].t.Equal(timeline[j].t) {
			return timeline[i].t.Before(timeline[j].t)
		}
		return timeline[i].in.serial < timeline[j].in.serial
	})

	// Per-instance RNG streams keep visit behaviour independent of the
	// global interleaving.
	instRNG := make([]*rand.Rand, len(instances))
	for i := range instances {
		instRNG[i] = rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(base+i)))
	}
	prevVisit := make([]time.Time, len(instances))
	// pending carries the truth labels of visits whose records were
	// lost to the simulated outage, so the next recorded visit's delta
	// stays explained.
	pending := make([][]EventType, len(instances))
	// recordedOnce tracks whether an instance has a record in the
	// output yet: the first *recorded* visit carries no labels (there
	// is no earlier record to diff against).
	recordedOnce := make([]bool, len(instances))

	for _, vr := range timeline {
		in, now := vr.in, vr.t
		li := in.serial - base
		r := instRNG[li]
		in.dev.applyUntil(now)

		var labels []EventType
		first := vr.k == 0
		from := prevVisit[li]
		if first {
			from = now
		}
		labels = append(labels, in.advance(from, now)...)
		if !first {
			for _, ch := range in.dev.changesBetween(from, now) {
				if ch.except == in.serial {
					continue
				}
				labels = append(labels, ch.kind)
			}
		}
		vs, actionLabels := in.visitActions(r, out)
		labels = append(labels, actionLabels...)
		cookie := in.updateCookie(r, now, vs.private)

		rec := in.render(now, vs, out)
		rec.Cookie = cookie
		if in.userID2 != "" && r.Float64() < 0.4 {
			rec.UserID = in.userID2
		}
		if cfg.SimulateDeployment {
			day := int(now.Sub(cfg.Start) / (24 * time.Hour))
			if day >= OutageStartDay && day < OutageEndDay && r.Float64() < 0.5 {
				// The collection server was partially down: this visit's
				// record is lost. Per-instance state still advanced, and
				// the causes carry over to the next recorded visit.
				if !first {
					pending[li] = append(pending[li], labels...)
				}
				prevVisit[li] = now
				in.visited++
				in.lastVisit = now
				continue
			}
			if day < HotPatchHeaderListDay {
				rec.FP.HeaderList = nil // not collected yet
			}
			if day < HotPatchAcceptDay {
				rec.FP.Accept = "*/*" // the pre-patch collection bug
			}
		}
		if carried := pending[li]; len(carried) > 0 && !first {
			labels = append(carried, labels...)
			pending[li] = nil
		}

		if !recordedOnce[li] {
			labels = nil
			recordedOnce[li] = true
		}
		out.Records = append(out.Records, rec)
		out.TrueInstance = append(out.TrueInstance, in.serial)
		out.VisitIndex = append(out.VisitIndex, vr.k)
		out.Truth = append(out.Truth, dedupLabels(labels))

		prevVisit[li] = now
		in.visited++
		in.lastVisit = now
	}
}

func dedupLabels(labels []EventType) []EventType {
	if len(labels) < 2 {
		return labels
	}
	seen := make(map[EventType]bool, len(labels))
	out := labels[:0]
	for _, l := range labels {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

func userHash(seed int64, u int) string {
	return "u" + itoa(int(seed%997)) + "-" + itoa(u)
}

// expDuration draws an exponential duration with the given mean.
func expDuration(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// newDevice creates a device with sampled hardware and environment.
func newDevice(rng *rand.Rand, cfg Config, geo *geoip.DB, serial int) *device {
	p := pickPlatform(rng)
	dv := &device{
		serial:   serial,
		platform: p,
		// City population is heavily skewed: most of a European site's
		// users come from a handful of large cities. The cube bias puts
		// roughly half the users in the seed (big-city) prefix.
		homeCity: int(float64(cfg.Cities) * math.Pow(rng.Float64(), 3.0)),
	}
	dv.curCity = dv.homeCity
	// Language follows the home country, with a minority of expats.
	if rng.Float64() < 0.85 {
		country := geo.CityAt(dv.homeCity).Country
		dv.langIdx = int(hashutil.Hash64(country) % uint64(len(languagePool)))
	} else {
		dv.langIdx = rng.Intn(len(languagePool))
	}

	switch p.os {
	case useragent.Windows:
		if rng.Float64() < 0.75 {
			dv.osVer = useragent.V(10)
		} else if rng.Float64() < 0.7 {
			dv.osVer = useragent.V(7)
		} else {
			dv.osVer = useragent.V(8, 1)
		}
		dv.gpu = gpuPool[rng.Intn(len(gpuPool))]
		dv.cores = []int{2, 4, 4, 4, 8, 8, 16}[rng.Intn(7)]
		dv.cpuClass = "x86"
		dv.screen = desktopResolutions[rng.Intn(len(desktopResolutions))]
		dv.colorDepth = 24
		dv.basePR = []float64{1, 1, 1, 1.25, 1.5}[rng.Intn(5)]
		dv.directX = 11
		if rng.Float64() < 0.15 {
			dv.directX = 9
		}
		dv.baseFonts = sampleFonts(rng, p.os)
		dv.office = rng.Float64() < 0.35
		dv.adobe = rng.Float64() < 0.15
		dv.wps = rng.Float64() < 0.02
		if dv.osVer.Major == 7 {
			dv.win7Old = rng.Float64() < 0.4 // never applied the 2014 emoji update
			if !dv.win7Old {
				dv.emojiMajor = 1
			}
		} else {
			dv.emojiMajor = 2
		}
	case useragent.MacOSX:
		dv.osVer = useragent.V(10, 13, 1)
		if rng.Float64() < 0.3 {
			dv.osVer = useragent.V(10, 12, 6)
		}
		dv.gpu = canvas.GPUInfo{Vendor: "Intel Inc.", Renderer: "Intel Iris Pro OpenGL Engine"}
		if rng.Float64() < 0.3 {
			dv.gpu = canvas.GPUInfo{Vendor: "AMD", Renderer: "AMD Radeon Pro 560"}
		}
		dv.cores = []int{4, 4, 8}[rng.Intn(3)]
		dv.cpuClass = "x86"
		dv.screen = []string{"1440x900", "2560x1600", "1680x1050", "2880x1800"}[rng.Intn(4)]
		dv.colorDepth = 24
		dv.basePR = []float64{1, 2, 2}[rng.Intn(3)]
		dv.baseFonts = sampleFonts(rng, p.os)
		dv.adobe = rng.Float64() < 0.2
		dv.office = rng.Float64() < 0.25
		dv.emojiMajor = 3
	case useragent.Linux:
		dv.osVer = useragent.V(0)
		dv.gpu = gpuPool[rng.Intn(len(gpuPool))]
		dv.cores = []int{2, 4, 8, 16}[rng.Intn(4)]
		dv.cpuClass = "x86"
		dv.screen = desktopResolutions[rng.Intn(len(desktopResolutions))]
		dv.colorDepth = 24
		dv.basePR = 1
		dv.baseFonts = sampleFonts(rng, p.os)
		dv.libre = rng.Float64() < 0.5
		dv.emojiMajor = 4
	case useragent.IOS:
		dv.osVer = []useragent.Version{
			useragent.V(11, 1, 2), useragent.V(11, 0, 3), useragent.V(10, 3, 3),
		}[rng.Intn(3)]
		prof := pickProfile(rng, iosProfiles)
		dv.model, dv.screen, dv.basePR, dv.cores, dv.gpu =
			prof.model, prof.screen, prof.dpr, prof.cores, prof.gpu
		dv.cpuClass = "ARM"
		dv.colorDepth = 32
		dv.baseFonts = sampleFonts(rng, p.os)
		dv.emojiMajor = 5
	case useragent.Android:
		dv.osVer = []useragent.Version{
			useragent.V(7, 0), useragent.V(7, 1, 1), useragent.V(6, 0, 1), useragent.V(8, 0, 0),
		}[rng.Intn(4)]
		prof := pickProfile(rng, androidProfiles)
		dv.model, dv.screen, dv.basePR, dv.cores, dv.gpu =
			prof.model, prof.screen, prof.dpr, prof.cores, prof.gpu
		dv.cpuClass = "ARM"
		dv.colorDepth = 32
		dv.baseFonts = sampleFonts(rng, p.os)
		dv.emojiMajor = 6
	}
	dv.audioChans = 2
	dv.audioRate = 44100
	if !p.mobile {
		// Audio hardware varies on desktops only; phones of one model
		// share the same audio stack.
		if rng.Float64() < 0.25 {
			dv.audioRate = 48000
		}
		if rng.Float64() < 0.05 {
			dv.audioChans = 6
		}
	}
	return dv
}

// sampleFonts returns the OS base fonts plus a per-device subset of the
// optional pool (Windows only) — the principal entropy source behind
// the font list's fingerprintability.
func sampleFonts(rng *rand.Rand, os string) []string {
	switch os {
	case useragent.Windows:
		fonts := append([]string(nil), fontdb.BaseWindows...)
		for _, f := range fontdb.OptionalWindows {
			if rng.Float64() < 0.5 {
				fonts = append(fonts, f)
			}
		}
		sort.Strings(fonts)
		return fonts
	case useragent.MacOSX:
		return append([]string(nil), fontdb.BaseMac...)
	case useragent.Linux:
		return append([]string(nil), fontdb.BaseLinux...)
	case useragent.IOS:
		return append([]string(nil), fontdb.BaseIOS...)
	case useragent.Android:
		return append([]string(nil), fontdb.BaseAndroid...)
	}
	return nil
}

// newInstance creates a browser instance on a device.
func newInstance(rng *rand.Rand, cfg Config, serial int, userID string, dv *device, family string) *instance {
	in := &instance{
		serial:  serial,
		userID:  userID,
		dev:     dv,
		family:  family,
		version: initialVersion(rng, family),
		zoom:    1.0,
	}
	in.neverUpdate = rng.Float64() < cfg.NeverUpdateShare
	lag := expDuration(rng, time.Duration(cfg.MeanUpdateLagDays*float64(24*time.Hour)))
	if family == useragent.Safari {
		lag = time.Duration(float64(lag) * cfg.SafariLagFactor)
	}
	in.updateLag = lag

	in.traveler = rng.Float64() < 0.15
	in.privateProne = rng.Float64() < 0.10
	in.zoomProne = rng.Float64() < 0.06
	in.flashToggler = rng.Float64() < 0.03
	in.langFaker = rng.Float64() < 0.025
	in.resFaker = rng.Float64() < 0.012
	in.desktopRequester = dv.platform.mobile && rng.Float64() < 0.04
	in.uaFaker = rng.Float64() < 0.01
	in.pluginInstaller = !dv.platform.mobile && rng.Float64() < 0.02
	in.lsToggler = rng.Float64() < 0.015
	in.cookieToggler = rng.Float64() < 0.008
	in.vpnUser = rng.Float64() < 0.01
	in.manualClearer = rng.Float64() < 0.18
	if rng.Float64() < 0.01 {
		in.userID2 = userID + "-shared"
	}
	in.itp = (family == useragent.Safari || family == useragent.MobileSafari) && rng.Float64() < 0.6
	in.dxQuirky = dv.platform.os == useragent.Windows && rng.Float64() < 0.10
	in.flashOn = !dv.platform.mobile && rng.Float64() < 0.25

	// Visit schedule: first visit biased toward the (busier) holiday
	// months at the start of the window, then a geometric return process.
	window := cfg.End.Sub(cfg.Start)
	first := cfg.Start.Add(time.Duration(math.Pow(rng.Float64(), 1.5) * float64(window)))
	in.visits = append(in.visits, first)
	t := first
	for len(in.visits) < cfg.MaxVisits && rng.Float64() < cfg.ReturnProb {
		if in.vpnUser && rng.Float64() < 0.5 {
			// VPN users hop on and off the proxy within hours — the
			// short-gap revisits behind the paper's impossible-travel
			// detection (Insight 1.4).
			t = t.Add(1*time.Hour + expDuration(rng, 3*time.Hour))
		} else {
			t = t.Add(6*time.Hour + expDuration(rng, 9*24*time.Hour))
		}
		if t.After(cfg.End) {
			break
		}
		in.visits = append(in.visits, t)
	}
	return in
}

// scheduleDevice precomputes every device-level change for the window:
// OS update adoptions, software installs/updates, driver and
// environment churn. Samsung device-emoji effects are scheduled here so
// co-installed browsers observe them at the right wall-clock time.
func scheduleDevice(rng *rand.Rand, cfg Config, dv *device, devInstances []*instance) {
	add := func(at time.Time, kind EventType, except int, apply func(*device)) {
		if at.Before(cfg.Start) || at.After(cfg.End) {
			// Changes before the window fold into initial state.
			if at.Before(cfg.Start) {
				apply(dv)
			}
			return
		}
		dv.schedule = append(dv.schedule, devChange{at: at, kind: kind, apply: apply, except: except})
	}

	// OS updates.
	osNever := map[string]float64{
		useragent.IOS: 0.35, useragent.Android: 0.75,
		useragent.MacOSX: 0.50, useragent.Windows: 1.0, useragent.Linux: 1.0,
	}[dv.platform.os]
	if rng.Float64() >= osNever {
		meanLag := map[string]time.Duration{
			useragent.IOS: 18 * 24 * time.Hour, useragent.Android: 60 * 24 * time.Hour,
			useragent.MacOSX: 35 * 24 * time.Hour,
		}[dv.platform.os]
		lag := expDuration(rng, meanLag)
		for _, rel := range releasesFor(OSReleases, dv.platform.os) {
			rel := rel
			if rel.V.Compare(dv.osVer) <= 0 {
				continue
			}
			add(rel.Date.Add(lag), EvOSUpdate, -1, func(d *device) {
				if rel.V.Compare(d.osVer) <= 0 {
					return
				}
				d.osVer = rel.V
				if rel.TextDetail {
					d.textEngine++
				}
				if rel.TextWidth {
					d.textWidth++
				}
				if rel.EmojiType {
					d.emojiMajor++
				}
				if rel.EmojiRender {
					d.emojiMinor++
				}
			})
		}
	}

	// A few Windows 7/8.1 holdouts take the free Windows 10 upgrade —
	// the only Windows OS change visible in a user agent (NT 6.x →
	// 10.0), and the paper's small Windows row under OS updates.
	if dv.platform.os == useragent.Windows && dv.osVer.Major < 10 && rng.Float64() < 0.03 {
		add(randomTime(rng, cfg), EvOSUpdate, -1, func(d *device) {
			d.osVer = useragent.V(10)
			d.textEngine++ // new font rasterizer
			d.emojiMajor++ // Windows 10 emoji set
		})
	}

	// Software installs/updates (Insight 1.2 signatures).
	if dv.platform.os == useragent.Windows || dv.platform.os == useragent.MacOSX {
		if dv.office && rng.Float64() < 0.6 {
			at := d(2018, 1, 9).Add(expDuration(rng, 30*24*time.Hour))
			add(at, EvOfficeUpdate, -1, func(d *device) { d.officeUpd = true })
		}
		if !dv.office && rng.Float64() < 0.03 {
			at := randomTime(rng, cfg)
			add(at, EvOfficeInstall, -1, func(d *device) { d.office = true; d.officeUpd = true })
		}
		if !dv.adobe && rng.Float64() < 0.05 {
			add(randomTime(rng, cfg), EvAdobeInstall, -1, func(d *device) { d.adobe = true })
		}
		if !dv.wps && rng.Float64() < 0.01 {
			add(randomTime(rng, cfg), EvWPSInstall, -1, func(d *device) {
				d.wps = true
				d.emojiMinor++ // WPS slightly recolors the emoji rendering
			})
		}
	}
	if dv.platform.os == useragent.Linux && !dv.libre && rng.Float64() < 0.10 {
		add(randomTime(rng, cfg), EvLibreInstall, -1, func(d *device) { d.libre = true })
	}

	// The Windows 7 April-2014 emoji update, applied very late by a few
	// stragglers (Insight 1.1 case 2).
	if dv.win7Old && rng.Float64() < 0.002 {
		add(randomTime(rng, cfg), EvEmojiUpdate, -1, func(d *device) { d.emojiMajor++; d.win7Old = false })
	}

	// Samsung Internet updates change the device emoji pack, observable
	// from co-installed browsers (Insight 1.1 case 1). The Samsung
	// instance itself reports the same moment as a browser update, so it
	// is excluded from the env label via `except`.
	for _, in := range devInstances {
		if in.family != useragent.Samsung || in.neverUpdate {
			continue
		}
		for _, rel := range releasesFor(BrowserReleases, useragent.Samsung) {
			rel := rel
			if !rel.DeviceEmoji || rel.V.Compare(in.version) <= 0 {
				continue
			}
			add(rel.Date.Add(in.updateLag), EvEmojiUpdate, in.serial, func(d *device) {
				if rel.EmojiType {
					d.emojiMajor++
				}
				if rel.EmojiRender {
					d.emojiMinor++
				}
			})
		}
	}

	// Audio driver churn.
	if rng.Float64() < 0.16 {
		add(randomTime(rng, cfg), EvAudioChange, -1, func(d *device) {
			if d.audioRate == 44100 {
				d.audioRate = 48000
			} else {
				d.audioRate = 44100
			}
		})
	}
	// GPU driver update on Windows: DirectX level changes and, because
	// Chrome manages the audio card through DirectX, the audio sample
	// rate moves with it (Insight 3 example 3).
	if dv.platform.os == useragent.Windows && rng.Float64() < 0.09 {
		add(randomTime(rng, cfg), EvGPUDriver, -1, func(d *device) {
			d.driverGen++
			if d.directX == 9 {
				d.directX = 11
				if d.audioRate == 44100 {
					d.audioRate = 48000
				}
			}
		})
	}
	if rng.Float64() < 0.03 {
		lang := []string{"ja-JP", "zh-CN", "ar-SA", "ko-KR"}[rng.Intn(4)]
		add(randomTime(rng, cfg), EvSystemLanguage, -1, func(d *device) {
			d.extraLangs = append(d.extraLangs, lang)
		})
	}
	if rng.Float64() < 0.05 {
		add(randomTime(rng, cfg), EvHeaderLanguage, -1, func(d *device) {
			d.headerLangExtra = "en;q=0.6"
		})
	}
	if rng.Float64() < 0.005 {
		add(randomTime(rng, cfg), EvColorDepth, -1, func(d *device) {
			if d.colorDepth == 24 {
				d.colorDepth = 30
			} else {
				d.colorDepth = 24
			}
		})
	}

	sort.Slice(dv.schedule, func(i, j int) bool { return dv.schedule[i].at.Before(dv.schedule[j].at) })
}

func randomTime(rng *rand.Rand, cfg Config) time.Time {
	return cfg.Start.Add(time.Duration(rng.Float64() * float64(cfg.End.Sub(cfg.Start))))
}
