package population

import "time"

// Config controls the synthetic world. Defaults are calibrated so the
// generated dataset reproduces the marginal shapes of the paper's
// Figures 3–7 and the cause mix of Table 2 at any scale.
type Config struct {
	Seed  int64
	Users int

	// Workers selects the simulation execution path. 0 (the zero value)
	// is the legacy serial path — the reproduction baseline whose RNG
	// stream every calibrated output was validated against. Any other
	// value runs the sharded path: per-user sub-RNGs simulated on a
	// worker pool, deterministic in Seed and identical for every worker
	// count (1 uses a single worker, negative resolves to
	// runtime.NumCPU()).
	Workers int

	// Deployment window; defaults to the paper's Stage-3 window,
	// December 2017 through July 2018.
	Start, End time.Time

	// Cities is the size of the synthetic geolocation database.
	Cities int

	// MultiDeviceShare is the fraction of users with a second device
	// (paper: 14% of users visit from more than one device).
	MultiDeviceShare float64
	// SecondBrowserShare is the fraction of devices with a second
	// browser installed.
	SecondBrowserShare float64

	// ReturnProb is the per-visit probability that the instance comes
	// back again; it controls the visit-count distribution (paper:
	// roughly half of instances visit more than once).
	ReturnProb float64
	// MaxVisits caps the visit count per instance.
	MaxVisits int

	// NeverUpdateShare is the fraction of instances that never adopt
	// browser/OS updates.
	NeverUpdateShare float64
	// MeanUpdateLagDays is the mean adoption lag after a release.
	MeanUpdateLagDays float64
	// SafariLagFactor multiplies the lag for desktop Safari (manual App
	// Store updates are slower — Figure 12's second observation).
	SafariLagFactor float64

	// SimulateDeployment reproduces the §2.2.2 deployment artifacts:
	// the HTTP header list was only collected from day 7 (first hot
	// patch), the Accept header was collected incorrectly until day 29
	// (second hot patch), and the collection server was partially down
	// for eight days in the first month (half the records of that
	// window are lost). Off by default — the paper itself excludes the
	// affected statistics; enable it to study collection-artifact
	// robustness.
	SimulateDeployment bool
}

// Deployment-artifact constants of §2.2.2.
const (
	// HotPatchHeaderListDay is the deployment day the header-list
	// collection was added.
	HotPatchHeaderListDay = 7
	// HotPatchAcceptDay is the deployment day the Accept-header
	// collection bug was fixed.
	HotPatchAcceptDay = 29
	// OutageStartDay / OutageEndDay bound the partial server outage.
	OutageStartDay = 14
	OutageEndDay   = 22
)

// DefaultConfig returns the calibrated default world at the given user
// scale.
func DefaultConfig(users int) Config {
	return Config{
		Seed:               1,
		Users:              users,
		Start:              time.Date(2017, 12, 1, 0, 0, 0, 0, time.UTC),
		End:                time.Date(2018, 7, 31, 0, 0, 0, 0, time.UTC),
		Cities:             400,
		MultiDeviceShare:   0.14,
		SecondBrowserShare: 0.06,
		ReturnProb:         0.62,
		MaxVisits:          60,
		NeverUpdateShare:   0.35,
		MeanUpdateLagDays:  21,
		SafariLagFactor:    2.5,
	}
}
