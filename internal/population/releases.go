package population

import (
	"time"

	"fpdyn/internal/fontdb"
	"fpdyn/internal/useragent"
)

// Release is one browser or OS release in the real-world calendar of
// the deployment window (Dec 2017 – Jul 2018, plus the releases just
// before it that instances are still adopting). Each release carries
// the fingerprint side effects Table 3 documents: canvas text/emoji
// changes, font list changes, plugin changes.
type Release struct {
	Family string // browser family (useragent constants) or OS family
	V      useragent.Version
	Date   time.Time

	// Side effects on the adopting instance/device.
	TextDetail   bool     // canvas text detail changes (glyph rasterizer)
	TextWidth    bool     // canvas text width changes (font metrics)
	EmojiType    bool     // new emoji designs
	EmojiRender  bool     // subtle emoji rendering change
	FontsAdded   []string // fonts newly visible after the update
	FontsRemoved []string
	PluginDrop   string // plugin removed by the update ("" = none)
	DeviceEmoji  bool   // updates the *device's* emoji pack (visible to co-installed browsers)
}

func d(y int, m time.Month, day int) time.Time {
	return time.Date(y, m, day, 0, 0, 0, 0, time.UTC)
}

// BrowserReleases is the browser release calendar. Chrome 63–67 and
// Firefox 58–61 are the Figure 12 markers; side effects follow Table 3.
var BrowserReleases = []Release{
	// Chrome desktop (and mobile tracks the same versions).
	{Family: useragent.Chrome, V: useragent.V(63, 0, 3239, 84), Date: d(2017, 12, 6)},
	{Family: useragent.Chrome, V: useragent.V(64, 0, 3282, 140), Date: d(2018, 1, 24), TextDetail: true},
	{Family: useragent.Chrome, V: useragent.V(65, 0, 3325, 146), Date: d(2018, 3, 6)},
	{Family: useragent.Chrome, V: useragent.V(66, 0, 3359, 117), Date: d(2018, 4, 17), TextDetail: true},
	{Family: useragent.Chrome, V: useragent.V(67, 0, 3396, 62), Date: d(2018, 5, 29)},

	{Family: useragent.ChromeMobile, V: useragent.V(63, 0, 3239, 111), Date: d(2017, 12, 6)},
	{Family: useragent.ChromeMobile, V: useragent.V(64, 0, 3282, 137), Date: d(2018, 1, 24), TextDetail: true},
	{Family: useragent.ChromeMobile, V: useragent.V(65, 0, 3325, 109), Date: d(2018, 3, 6)},
	{Family: useragent.ChromeMobile, V: useragent.V(66, 0, 3359, 126), Date: d(2018, 4, 17)},
	{Family: useragent.ChromeMobile, V: useragent.V(67, 0, 3396, 68), Date: d(2018, 5, 29)},

	// Firefox desktop. 57 (Quantum, Nov 2017) changed font enumeration
	// (Appendix A.4); 58–61 are the Figure 12 markers. The 57→58/59/60
	// DirectX fallback dance is Insight 3 example 2, handled in events.
	{Family: useragent.Firefox, V: useragent.V(57), Date: d(2017, 11, 14), FontsAdded: fontdb.Firefox57, TextWidth: true},
	{Family: useragent.Firefox, V: useragent.V(58), Date: d(2018, 1, 23)},
	{Family: useragent.Firefox, V: useragent.V(59), Date: d(2018, 3, 13), TextDetail: true},
	{Family: useragent.Firefox, V: useragent.V(60), Date: d(2018, 5, 9)},
	{Family: useragent.Firefox, V: useragent.V(61), Date: d(2018, 6, 26), EmojiType: true},

	{Family: useragent.FirefoxMobile, V: useragent.V(57), Date: d(2017, 11, 28), TextWidth: true},
	{Family: useragent.FirefoxMobile, V: useragent.V(58), Date: d(2018, 1, 23)},
	{Family: useragent.FirefoxMobile, V: useragent.V(59), Date: d(2018, 3, 13)},
	{Family: useragent.FirefoxMobile, V: useragent.V(60), Date: d(2018, 5, 9)},

	// Desktop Safari ships with macOS updates; slower adoption (Figure 12).
	{Family: useragent.Safari, V: useragent.V(11, 0, 2), Date: d(2017, 12, 6), EmojiRender: true, FontsRemoved: []string{"Big Caslon"}},
	{Family: useragent.Safari, V: useragent.V(11, 0, 3), Date: d(2018, 1, 23)},
	{Family: useragent.Safari, V: useragent.V(11, 1), Date: d(2018, 3, 29), EmojiRender: true},

	// Samsung Internet: 6.2 introduces the new smiling-face emoji at the
	// *device* level (Figure 8 / Insight 1.1); 7.0 changes text width too.
	{Family: useragent.Samsung, V: useragent.V(6, 2), Date: d(2017, 12, 18), EmojiType: true, DeviceEmoji: true},
	{Family: useragent.Samsung, V: useragent.V(7, 0), Date: d(2018, 3, 7), TextWidth: true, EmojiRender: true, DeviceEmoji: true},

	{Family: useragent.Edge, V: useragent.V(16, 16299), Date: d(2017, 10, 17)},
	{Family: useragent.Edge, V: useragent.V(17, 17134), Date: d(2018, 4, 30), TextDetail: true},

	{Family: useragent.Opera, V: useragent.V(50, 0, 2762, 45), Date: d(2018, 1, 4)},
	{Family: useragent.Opera, V: useragent.V(51, 0, 2830, 26), Date: d(2018, 2, 7)},
	{Family: useragent.Opera, V: useragent.V(52, 0, 2871, 37), Date: d(2018, 3, 22)},
	{Family: useragent.Opera, V: useragent.V(53, 0, 2907, 68), Date: d(2018, 5, 10)},
}

// OSReleases is the OS release calendar. iOS dominates observed OS
// update dynamics (96% in Table 2) because every subversion appears in
// the user agent; Android and macOS update rarely; Windows version
// strings hide build-level updates entirely.
var OSReleases = []Release{
	{Family: useragent.IOS, V: useragent.V(11, 2), Date: d(2017, 12, 2), EmojiRender: true},
	{Family: useragent.IOS, V: useragent.V(11, 2, 1), Date: d(2017, 12, 13)},
	{Family: useragent.IOS, V: useragent.V(11, 2, 2), Date: d(2018, 1, 8)},
	{Family: useragent.IOS, V: useragent.V(11, 2, 5), Date: d(2018, 1, 23)},
	{Family: useragent.IOS, V: useragent.V(11, 2, 6), Date: d(2018, 2, 19)},
	{Family: useragent.IOS, V: useragent.V(11, 3), Date: d(2018, 3, 29), EmojiType: true, DeviceEmoji: true},
	{Family: useragent.IOS, V: useragent.V(11, 3, 1), Date: d(2018, 4, 24)},
	{Family: useragent.IOS, V: useragent.V(11, 4), Date: d(2018, 5, 29), EmojiRender: true},

	{Family: useragent.Android, V: useragent.V(8, 0, 0), Date: d(2017, 8, 21), TextWidth: true, EmojiType: true, DeviceEmoji: true},
	{Family: useragent.Android, V: useragent.V(8, 1, 0), Date: d(2017, 12, 5)},

	{Family: useragent.MacOSX, V: useragent.V(10, 13, 2), Date: d(2017, 12, 6)},
	{Family: useragent.MacOSX, V: useragent.V(10, 13, 3), Date: d(2018, 1, 23)},
	{Family: useragent.MacOSX, V: useragent.V(10, 13, 4), Date: d(2018, 3, 29), EmojiRender: true, DeviceEmoji: true},
	{Family: useragent.MacOSX, V: useragent.V(10, 13, 5), Date: d(2018, 6, 1)},
}

// releasesFor returns the time-ordered releases for a family.
func releasesFor(calendar []Release, family string) []Release {
	var out []Release
	for _, r := range calendar {
		if r.Family == family {
			out = append(out, r)
		}
	}
	return out
}

// latestAdoptable returns the newest release of the family whose date
// plus the instance's adoption lag has passed by now and whose version
// exceeds cur; ok is false if none.
func latestAdoptable(calendar []Release, family string, cur useragent.Version, now time.Time, lag time.Duration) (Release, bool) {
	var best Release
	ok := false
	for _, r := range calendar {
		if r.Family != family {
			continue
		}
		if now.Before(r.Date.Add(lag)) {
			continue
		}
		if r.V.Compare(cur) <= 0 {
			continue
		}
		if !ok || r.V.Compare(best.V) > 0 {
			best, ok = r, true
		}
	}
	return best, ok
}
