package population

import (
	"testing"
	"time"

	"fpdyn/internal/browserid"
	"fpdyn/internal/diff"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/useragent"
)

// smallWorld memoizes a default 800-user dataset across tests.
var smallWorld *Dataset

func world(t testing.TB) *Dataset {
	if smallWorld == nil {
		smallWorld = Simulate(DefaultConfig(800))
	}
	return smallWorld
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(DefaultConfig(50))
	b := Simulate(DefaultConfig(50))
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i].FP.Hash(true) != b.Records[i].FP.Hash(true) {
			t.Fatalf("record %d differs between identical-seed runs", i)
		}
		if !a.Records[i].Time.Equal(b.Records[i].Time) {
			t.Fatalf("record %d time differs", i)
		}
	}
}

func TestSimulateSeedSensitivity(t *testing.T) {
	cfg := DefaultConfig(50)
	a := Simulate(cfg)
	cfg.Seed = 2
	b := Simulate(cfg)
	if len(a.Records) == len(b.Records) {
		same := true
		for i := range a.Records {
			if a.Records[i].FP.Hash(true) != b.Records[i].FP.Hash(true) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical datasets")
		}
	}
}

func TestRecordsTimeOrdered(t *testing.T) {
	ds := world(t)
	for i := 1; i < len(ds.Records); i++ {
		if ds.Records[i].Time.Before(ds.Records[i-1].Time) {
			t.Fatalf("records out of order at %d", i)
		}
	}
}

func TestRecordsWithinWindow(t *testing.T) {
	ds := world(t)
	for i, r := range ds.Records {
		if r.Time.Before(ds.Cfg.Start) || r.Time.After(ds.Cfg.End.Add(24*time.Hour)) {
			t.Fatalf("record %d at %v outside window", i, r.Time)
		}
	}
}

func TestParallelArraysConsistent(t *testing.T) {
	ds := world(t)
	if len(ds.TrueInstance) != len(ds.Records) || len(ds.Truth) != len(ds.Records) || len(ds.VisitIndex) != len(ds.Records) {
		t.Fatal("parallel arrays have inconsistent lengths")
	}
	// First visits have no truth labels.
	for i := range ds.Records {
		if ds.VisitIndex[i] == 0 && len(ds.Truth[i]) != 0 {
			t.Fatalf("first visit %d carries truth labels %v", i, ds.Truth[i])
		}
	}
}

func TestUAsAllParseable(t *testing.T) {
	ds := world(t)
	for i, r := range ds.Records {
		if _, err := useragent.Parse(r.FP.UserAgent); err != nil {
			t.Fatalf("record %d UA unparseable: %v", i, err)
		}
	}
}

func TestVisitDistribution(t *testing.T) {
	ds := world(t)
	visits := map[int]int{}
	for i := range ds.Records {
		if ds.VisitIndex[i]+1 > visits[ds.TrueInstance[i]] {
			visits[ds.TrueInstance[i]] = ds.VisitIndex[i] + 1
		}
	}
	multi := 0
	for _, v := range visits {
		if v > 1 {
			multi++
		}
	}
	share := float64(multi) / float64(len(visits))
	// Paper: ~50% of instances visit more than once.
	if share < 0.3 || share > 0.75 {
		t.Errorf("multi-visit share = %.2f, want roughly 0.5", share)
	}
}

func TestCookieClearingShareCalibration(t *testing.T) {
	ds := world(t)
	gt := browserid.Build(ds.Records)
	share := gt.CookieClearingShare()
	// Paper: ~32% of instances have more than one cookie.
	if share < 0.12 || share > 0.55 {
		t.Errorf("cookie clearing share = %.2f, want roughly 0.32", share)
	}
}

func TestMultiBrowserUsers(t *testing.T) {
	ds := world(t)
	gt := browserid.Build(ds.Records)
	share := gt.MultiBrowserUserShare()
	// Paper: ~14% of users have multiple devices (plus second browsers).
	if share < 0.05 || share > 0.35 {
		t.Errorf("multi-browser user share = %.2f, want roughly 0.15", share)
	}
}

func TestDynamicsExist(t *testing.T) {
	ds := world(t)
	changed := 0
	labelled := 0
	for i := range ds.Records {
		if len(ds.Truth[i]) > 0 {
			labelled++
		}
	}
	// Group consecutive records per instance and count real deltas.
	last := map[int]*fingerprint.Fingerprint{}
	for i, r := range ds.Records {
		inst := ds.TrueInstance[i]
		if prev, ok := last[inst]; ok {
			if !diffEmpty(prev, r.FP) {
				changed++
			}
		}
		last[inst] = r.FP
	}
	if labelled == 0 {
		t.Fatal("no truth labels generated at all")
	}
	if changed == 0 {
		t.Fatal("no fingerprint ever changed")
	}
}

func diffEmpty(a, b *fingerprint.Fingerprint) bool {
	return diff.Diff(a, b).Empty()
}

// Truth labels and actual deltas must agree: whenever a core
// (non-IP) feature changed, there should be a truth label, and the
// converse should hold for most records (transitions like travel with
// equal timezone can yield IP-only changes).
func TestTruthLabelsMatchDeltas(t *testing.T) {
	ds := world(t)
	last := map[int]int{} // instance -> record index
	mismatchedNoLabel := 0
	total := 0
	for i := range ds.Records {
		inst := ds.TrueInstance[i]
		if j, ok := last[inst]; ok {
			d := diff.Diff(ds.Records[j].FP, ds.Records[i].FP)
			coreChanged := false
			for _, fd := range d.Fields {
				if !fingerprint.Describe(fd.Feature).IsIP {
					coreChanged = true
					break
				}
			}
			total++
			if coreChanged && len(ds.Truth[i]) == 0 {
				mismatchedNoLabel++
			}
		}
		last[inst] = i
	}
	if total == 0 {
		t.Fatal("no consecutive visit pairs")
	}
	if rate := float64(mismatchedNoLabel) / float64(total); rate > 0.02 {
		t.Errorf("%.1f%% of changed pairs lack truth labels", rate*100)
	}
}

func TestBrowserUpdatesHappen(t *testing.T) {
	ds := world(t)
	counts := map[EventType]int{}
	for _, labels := range ds.Truth {
		for _, l := range labels {
			counts[l]++
		}
	}
	for _, ev := range []EventType{EvBrowserUpdate, EvOSUpdate, EvTimezoneChange, EvPrivateMode} {
		if counts[ev] == 0 {
			t.Errorf("no %s events in an 800-user world", ev)
		}
	}
	t.Logf("event counts: %v", counts)
}

func TestSamsungEmojiLeak(t *testing.T) {
	// Somewhere in a large world there must be a Chrome Mobile instance
	// whose canvas changed due to a co-installed Samsung update: an
	// env-emoji truth label on a Chrome record.
	ds := Simulate(func() Config { c := DefaultConfig(3000); c.Seed = 7; return c }())
	found := false
	for i, labels := range ds.Truth {
		for _, l := range labels {
			if l == EvEmojiUpdate && ds.Records[i].Browser == useragent.ChromeMobile {
				found = true
			}
		}
	}
	if !found {
		t.Skip("no Samsung-emoji leak in this world; acceptable at small scale")
	}
	// When present, the canvas must actually have changed.
	last := map[int]int{}
	verified := false
	for i := range ds.Records {
		inst := ds.TrueInstance[i]
		if j, ok := last[inst]; ok {
			for _, l := range ds.Truth[i] {
				if l == EvEmojiUpdate && ds.Records[i].Browser == useragent.ChromeMobile {
					if ds.Records[j].FP.CanvasHash != ds.Records[i].FP.CanvasHash {
						verified = true
					}
				}
			}
		}
		last[inst] = i
	}
	if !verified {
		t.Error("emoji-update label present but canvas hash never changed")
	}
}

func TestCanvasImagesRegistered(t *testing.T) {
	ds := world(t)
	for i, r := range ds.Records {
		if _, ok := ds.CanvasImages[r.FP.CanvasHash]; !ok {
			t.Fatalf("record %d canvas hash not in image store", i)
		}
		if _, ok := ds.CanvasImages[r.FP.GPUImageHash]; !ok {
			t.Fatalf("record %d GPU image hash not in image store", i)
		}
		if _, ok := ds.GPUImageInfo[r.FP.GPUImageHash]; !ok {
			t.Fatalf("record %d GPU image info missing", i)
		}
	}
}

func TestStableFeaturesAreStable(t *testing.T) {
	// Within one instance, hardware features never change (they define
	// the browser ID) except via the documented GPU-driver quirks that
	// alter only GPUType, never vendor/renderer/cores.
	ds := world(t)
	last := map[int]*fingerprint.Fingerprint{}
	for i, r := range ds.Records {
		inst := ds.TrueInstance[i]
		if prev, ok := last[inst]; ok {
			if prev.GPUVendor != r.FP.GPUVendor || prev.GPURenderer != r.FP.GPURenderer {
				t.Fatalf("instance %d changed GPU vendor/renderer", inst)
			}
			if prev.CPUCores != r.FP.CPUCores || prev.CPUClass != r.FP.CPUClass {
				t.Fatalf("instance %d changed CPU", inst)
			}
		}
		last[inst] = r.FP
	}
}

func TestFingerprintEntropy(t *testing.T) {
	// Fingerprints must be diverse enough to be identifying: among
	// first-visit fingerprints, a large majority should be unique.
	ds := world(t)
	seen := map[uint64]int{}
	n := 0
	for i, r := range ds.Records {
		if ds.VisitIndex[i] == 0 {
			seen[r.FP.Hash(false)]++
			n++
		}
	}
	unique := 0
	for _, c := range seen {
		if c == 1 {
			unique++
		}
	}
	if share := float64(unique) / float64(n); share < 0.55 {
		t.Errorf("unique first-visit fingerprint share = %.2f, want > 0.55", share)
	}
}

func TestEventCategoryMixRoughlyCalibrated(t *testing.T) {
	ds := world(t)
	var browser, os, action, env int
	for _, labels := range ds.Truth {
		for _, l := range labels {
			switch {
			case l == EvBrowserUpdate:
				browser++
			case l == EvOSUpdate:
				os++
			case l.IsUserAction():
				action++
			case l.IsEnvironment():
				env++
			}
		}
	}
	total := browser + os + action + env
	if total == 0 {
		t.Fatal("no events")
	}
	t.Logf("mix: browser=%.1f%% os=%.1f%% action=%.1f%% env=%.1f%%",
		100*float64(browser)/float64(total), 100*float64(os)/float64(total),
		100*float64(action)/float64(total), 100*float64(env)/float64(total))
	// Table 2 magnitudes: user actions are the largest single category;
	// browser updates exceed OS updates.
	if action <= browser {
		t.Errorf("user actions (%d) should outnumber browser updates (%d)", action, browser)
	}
	if browser <= os/2 {
		t.Errorf("browser updates (%d) should be at least comparable to OS updates (%d)", browser, os)
	}
}

func BenchmarkSimulate1K(b *testing.B) {
	cfg := DefaultConfig(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		Simulate(cfg)
	}
}
