package population

import (
	"reflect"
	"testing"
)

// TestShardedWorkerCountInvariance is the determinism regression test
// for the sharded path: the Dataset must be identical at Workers: 1
// and Workers: 8 for several seeds. Records, TrueInstance, VisitIndex
// and Truth are compared structurally.
func TestShardedWorkerCountInvariance(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		cfg := DefaultConfig(120)
		cfg.Seed = seed
		cfg.SimulateDeployment = seed == 7 // cover the outage/hot-patch path too

		cfg.Workers = 1
		serial := Simulate(cfg)
		cfg.Workers = 8
		par := Simulate(cfg)

		if len(serial.Records) != len(par.Records) {
			t.Fatalf("seed %d: %d records at Workers:1, %d at Workers:8",
				seed, len(serial.Records), len(par.Records))
		}
		for i := range serial.Records {
			if !reflect.DeepEqual(serial.Records[i], par.Records[i]) {
				t.Fatalf("seed %d: record %d differs:\n  Workers:1 %+v\n  Workers:8 %+v",
					seed, i, serial.Records[i], par.Records[i])
			}
		}
		if !reflect.DeepEqual(serial.TrueInstance, par.TrueInstance) {
			t.Fatalf("seed %d: TrueInstance differs", seed)
		}
		if !reflect.DeepEqual(serial.VisitIndex, par.VisitIndex) {
			t.Fatalf("seed %d: VisitIndex differs", seed)
		}
		if !reflect.DeepEqual(serial.Truth, par.Truth) {
			t.Fatalf("seed %d: Truth differs", seed)
		}
		if serial.NumInstances != par.NumInstances {
			t.Fatalf("seed %d: NumInstances %d vs %d", seed, serial.NumInstances, par.NumInstances)
		}
		if !reflect.DeepEqual(serial.GPUImageInfo, par.GPUImageInfo) {
			t.Fatalf("seed %d: GPUImageInfo differs", seed)
		}
		if len(serial.CanvasImages) != len(par.CanvasImages) {
			t.Fatalf("seed %d: CanvasImages size %d vs %d",
				seed, len(serial.CanvasImages), len(par.CanvasImages))
		}
	}
}

// TestShardedKeepsGlobalTimeOrder checks the merged timeline is sorted
// the way the serial visit loop emits: by time, ties broken by
// instance serial.
func TestShardedKeepsGlobalTimeOrder(t *testing.T) {
	cfg := DefaultConfig(150)
	cfg.Workers = 4
	ds := Simulate(cfg)
	if len(ds.Records) == 0 {
		t.Fatal("no records")
	}
	for i := 1; i < len(ds.Records); i++ {
		a, b := ds.Records[i-1], ds.Records[i]
		if a.Time.After(b.Time) {
			t.Fatalf("record %d out of time order: %v after %v", i, a.Time, b.Time)
		}
		if a.Time.Equal(b.Time) && ds.TrueInstance[i-1] >= ds.TrueInstance[i] {
			t.Fatalf("record %d: serial tie-break violated (%d then %d at %v)",
				i, ds.TrueInstance[i-1], ds.TrueInstance[i], a.Time)
		}
	}
}

// TestShardedMatchesSerialShape sanity-checks the sharded world against
// the legacy serial path at the same seed. The RNG streams differ by
// design, so outputs are not byte-identical — but the population shape
// (instance count within tolerance, same record volume order of
// magnitude, calibrated record fields present) must agree.
func TestShardedMatchesSerialShape(t *testing.T) {
	cfg := DefaultConfig(300)
	legacy := Simulate(cfg) // Workers: 0, legacy path
	cfg.Workers = 4
	sharded := Simulate(cfg)

	ratio := float64(sharded.NumInstances) / float64(legacy.NumInstances)
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("instance count diverged: legacy %d, sharded %d",
			legacy.NumInstances, sharded.NumInstances)
	}
	rratio := float64(len(sharded.Records)) / float64(len(legacy.Records))
	if rratio < 0.7 || rratio > 1.3 {
		t.Fatalf("record count diverged: legacy %d, sharded %d",
			len(legacy.Records), len(sharded.Records))
	}
	for i, r := range sharded.Records {
		if r.UserID == "" || r.FP == nil || r.FP.UserAgent == "" {
			t.Fatalf("sharded record %d incomplete: %+v", i, r)
		}
		if i == 50 {
			break
		}
	}
}
