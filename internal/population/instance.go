package population

import (
	"fmt"
	"math"
	"sort"
	"time"

	"fpdyn/internal/canvas"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/fontdb"
	"fpdyn/internal/geoip"
	"fpdyn/internal/hashutil"
	"fpdyn/internal/useragent"
)

// devChange is one scheduled device-level state change: OS updates,
// software installs/updates, driver changes — everything that affects
// every browser instance on the device at a fixed wall-clock time.
type devChange struct {
	at    time.Time
	kind  EventType
	apply func(*device)
	// except is the serial of the instance that itself triggered this
	// change (e.g. the Samsung instance whose browser update shipped the
	// new device emoji); that instance reports the moment as a browser
	// update, not an environment update. -1 when not applicable.
	except int
}

// device is one physical machine. Instances on the same device share
// OS version, fonts, emoji pack, audio and GPU driver state — the
// sharing is what produces the paper's cross-browser leaks (a Samsung
// Browser update visible in Chrome's canvas, Insight 1.1).
type device struct {
	serial   int
	platform platformChoice
	osVer    useragent.Version
	model    string // mobile device model; "" on desktop

	gpu        canvas.GPUInfo
	driverGen  int // GPU driver generation (bumps change GPU images)
	directX    int // 9 or 11 on Windows; 0 elsewhere
	cores      int
	cpuClass   string
	screen     string
	colorDepth int
	basePR     float64 // device pixel ratio
	audioRate  int
	audioChans int

	baseFonts []string // OS base + per-device optional subset
	office    bool     // Microsoft Office installed (full font set)
	officeUpd bool     // the Jan-2018 Office update applied (adds MT Extra)
	adobe     bool
	libre     bool
	wps       bool

	emojiMajor int // device emoji pack design generation
	emojiMinor int // device emoji rendering generation
	textEngine int // OS text rasterizer generation
	textWidth  int // OS font metrics generation

	homeCity        int
	curCity         int // physical location (travel moves it)
	langIdx         int
	headerLangExtra string // appended to the Accept-Language value by locale tweaks
	extraLangs      []string

	hasSamsung  bool
	win7Old     bool // Windows 7 without the 2014 emoji update
	osNeverUpd  bool
	isClone     bool        // identical twin of another device (lab scenario)
	schedule    []devChange // future changes, time-ordered
	applied     []devChange // past changes, time-ordered
	scheduleIdx int
}

// cloneDevice returns an exact hardware/environment twin of src with
// its own serial and an empty change schedule — the §2.3.3
// computer-lab scenario where identical machines collapse into one
// browser ID.
func cloneDevice(src *device, serial int) *device {
	dv := *src
	dv.serial = serial
	dv.isClone = true
	dv.baseFonts = append([]string(nil), src.baseFonts...)
	dv.extraLangs = append([]string(nil), src.extraLangs...)
	dv.schedule = nil
	dv.applied = nil
	dv.scheduleIdx = 0
	dv.hasSamsung = false
	return &dv
}

// applyUntil applies every scheduled change at or before t. The global
// simulation loop processes visits in time order, so calls are
// monotonic per device.
func (dv *device) applyUntil(t time.Time) {
	for dv.scheduleIdx < len(dv.schedule) {
		ch := dv.schedule[dv.scheduleIdx]
		if ch.at.After(t) {
			return
		}
		ch.apply(dv)
		dv.applied = append(dv.applied, ch)
		dv.scheduleIdx++
	}
}

// changesBetween returns the device-level events applied in (from, to].
func (dv *device) changesBetween(from, to time.Time) []devChange {
	var out []devChange
	for _, ch := range dv.applied {
		if ch.at.After(from) && !ch.at.After(to) {
			out = append(out, ch)
		}
	}
	return out
}

// fonts assembles the device's current font list from its components.
func (dv *device) fonts() []string {
	out := append([]string(nil), dv.baseFonts...)
	if dv.office {
		out = fingerprint.AddFonts(out, fontdb.OfficeDetect)
		if !dv.officeUpd {
			out = fingerprint.RemoveFonts(out, []string{fontdb.MTExtra})
		}
	} else if dv.officeUpd {
		// The 2018 Office update on a device whose Office predates our
		// font signature: only MT Extra appears (Insight 1.2 case 1).
		out = fingerprint.AddFonts(out, []string{fontdb.MTExtra})
	}
	if dv.adobe {
		out = fingerprint.AddFonts(out, fontdb.Adobe)
	}
	if dv.libre {
		out = fingerprint.AddFonts(out, fontdb.LibreOffice)
	}
	if dv.wps {
		out = fingerprint.AddFonts(out, fontdb.WPS)
	}
	return out
}

// instance is one browser instance: a browser installed on a device,
// used by one user. It carries the per-browser state plus the user's
// behavioural propensities.
type instance struct {
	serial int // global true-instance ID (linking ground truth)
	userID string
	// userID2, when set, is a second account that sometimes logs in
	// from this same physical browser (a shared family computer). The
	// shared cookie across two user identities is the §2.3.3
	// false-negative signal: one instance appears as two browser IDs.
	userID2 string
	dev     *device

	family  string
	version useragent.Version

	// Update behaviour.
	neverUpdate bool
	updateLag   time.Duration

	// Behaviour propensities (assigned once; propensity-gated actions
	// recur, which reproduces the paper's observation that the share of
	// action dynamics far exceeds the share of acting instances).
	traveler, privateProne, zoomProne, flashToggler bool
	langFaker, resFaker, desktopRequester, uaFaker  bool
	pluginInstaller, lsToggler, cookieToggler       bool
	vpnUser, itp, manualClearer                     bool

	// Persistent toggle state.
	zoom         float64 // 1.0 = no zoom
	flashOn      bool
	fakeLang     bool
	fakeRes      bool
	fakeUA       bool
	lsOff        bool
	cookieOff    bool
	extraPlugins []string

	// Per-browser canvas generations (browser updates change rendering
	// independently of the device).
	textEngineGen  int
	textWidthGen   int
	emojiRenderGen int

	// Firefox 57–60 DirectX quirk (Insight 3 example 2): 0 = follow the
	// device, 9 = forced fallback.
	dxOverride int
	dxQuirky   bool // device+driver combination exhibiting the quirk

	cookie  string
	cookieN int

	// Previous visit's transient state, so the reversion (leaving
	// private mode, back to the mobile page) is labelled as a user
	// action too — it changes the fingerprint just as much.
	prevPrivate    bool
	prevDesktopReq bool

	visits    []time.Time
	lastVisit time.Time
	visited   int
}

// visitState carries the per-visit transient actions.
type visitState struct {
	private    bool
	desktopReq bool
	vpnCity    int // -1 when inactive
}

// familyIdx gives each browser family a small stable integer for canvas
// parameter mixing.
func familyIdx(family string) int {
	return int(hashutil.Hash64(family) % 17)
}

func osIdx(os string) int {
	return int(hashutil.Hash64(os) % 13)
}

// canvasParams derives the rendering parameters from device + instance
// state. Equal environments produce equal canvases; any generation bump
// anywhere changes the hash.
func (in *instance) canvasParams() canvas.Params {
	dv := in.dev
	return canvas.Params{
		TextEngine: osIdx(dv.platform.os)*10000 + dv.textEngine*100 + in.textEngineGen*7 + familyIdx(in.family),
		TextWidth:  dv.textWidth*100 + in.textWidthGen*5 + familyIdx(in.family),
		EmojiMajor: dv.emojiMajor,
		EmojiMinor: dv.emojiMinor*10 + in.emojiRenderGen,
	}
}

// gpuType renders the GPU API-level feature string.
func (in *instance) gpuType() string {
	dv := in.dev
	if dv.platform.os == useragent.Windows {
		dx := dv.directX
		if in.dxOverride != 0 {
			dx = in.dxOverride
		}
		if dx == 9 {
			return "ANGLE (Direct3D9Ex)"
		}
		return "ANGLE (Direct3D11)"
	}
	if dv.platform.mobile {
		return "OpenGL ES 3.0"
	}
	return "OpenGL 4.1"
}

// tzOffsetFor derives the timezone offset (minutes east of UTC) from a
// city's longitude — the simulator's clock model.
func tzOffsetFor(c geoip.City) int {
	return int(math.Round(c.Lon/15)) * 60
}

// ua returns the structured UA the instance currently presents.
func (in *instance) ua() useragent.UA {
	v := in.version
	if in.family == useragent.MobileSafari {
		// Mobile Safari ships with iOS: its version tracks the OS, which
		// is why the paper counts its updates as OS updates.
		v = useragent.V(in.dev.osVer.Major, 0)
	}
	return useragent.UA{
		Browser:        in.family,
		BrowserVersion: v,
		OS:             in.dev.platform.os,
		OSVersion:      in.dev.osVer,
		Device:         in.dev.model,
		Mobile:         in.dev.platform.mobile,
	}
}

// visibleFonts returns the fonts this browser can detect: the device
// fonts, minus the set Firefox only enumerates from version 57 on.
func (in *instance) visibleFonts() []string {
	fonts := in.dev.fonts()
	if in.family == useragent.Firefox && in.version.Compare(useragent.V(57)) < 0 {
		fonts = fingerprint.RemoveFonts(fonts, fontdb.Firefox57)
	}
	return fonts
}

// plugins returns the current plugin list.
func (in *instance) plugins() []string {
	out := append([]string(nil), pluginsFor(in.family, in.dev.platform.mobile)...)
	if in.flashOn && !in.dev.platform.mobile {
		out = append(out, "Shockwave Flash")
	}
	out = append(out, in.extraPlugins...)
	sort.Strings(out)
	return out
}

// scaledScreen applies the zoom factor to the base resolution,
// preserving the aspect ratio (the paper: zoom changes the reported
// resolution but not the ratio).
func scaledScreen(base string, zoom float64) string {
	var w, h int
	fmt.Sscanf(base, "%dx%d", &w, &h)
	if zoom == 1.0 || w == 0 {
		return base
	}
	return fmt.Sprintf("%dx%d", int(math.Round(float64(w)/zoom)), int(math.Round(float64(h)/zoom)))
}

func formatPixelRatio(pr float64) string {
	s := fmt.Sprintf("%.4f", pr)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// render produces the visit record for the instance at time now.
// Rendered canvas and GPU images are registered into the dataset's
// image stores (the server's dedup value store keeps full content,
// which is what lets the offline analysis pixel-diff canvases).
func (in *instance) render(now time.Time, vs visitState, ds *Dataset) *fingerprint.Record {
	dv := in.dev
	ua := in.ua()
	presented := ua
	if vs.desktopReq {
		presented = ua.RequestDesktop()
	}
	if in.fakeUA {
		// A spoofing extension presents a generic fixed UA.
		presented = useragent.UA{
			Browser: useragent.Firefox, BrowserVersion: useragent.V(52),
			OS: useragent.Windows, OSVersion: useragent.V(10),
		}
	}

	physical := ds.Geo.CityAt(dv.curCity)
	ipCityIdx := dv.curCity
	if vs.vpnCity >= 0 {
		ipCityIdx = vs.vpnCity
	}
	ipCity := ds.Geo.CityAt(ipCityIdx)

	lang := languagePool[dv.langIdx][0]
	if in.fakeLang {
		lang = "en"
	} else if dv.headerLangExtra != "" {
		lang = lang + "," + dv.headerLangExtra
	}
	langs := append([]string{languagePool[dv.langIdx][1]}, dv.extraLangs...)
	sort.Strings(langs)

	screen := scaledScreen(dv.screen, in.zoom)
	if in.fakeRes {
		screen = "800x600"
	}

	cp := in.canvasParams()
	cimg := canvas.Render(cp)
	chash := cimg.Hash()
	if _, ok := ds.CanvasImages[chash]; !ok {
		ds.CanvasImages[chash] = cimg
	}

	gi := dv.gpu
	gi.Driver = dv.driverGen*100 + dv.directX + in.dxOverride
	gimg := canvas.RenderGPU(gi)
	ghash := gimg.Hash()
	if _, ok := ds.CanvasImages[ghash]; !ok {
		ds.CanvasImages[ghash] = gimg
	}
	if _, ok := ds.GPUImageInfo[ghash]; !ok {
		ds.GPUImageInfo[ghash] = gi
		if ds.gpuFirst != nil {
			// Integrated GPUs can rasterize identical images, so the hash
			// can collide across distinct GPUInfo values; record which
			// render claimed it so the spill path (stream.go) can merge
			// per-shard maps with the serial path's global-timeline
			// first-wins semantics.
			ds.gpuFirst[ghash] = gpuFirstKey{t: now, serial: in.serial}
		}
	}

	audioRate := dv.audioRate
	fp := &fingerprint.Fingerprint{
		UserAgent:  presented.String(),
		Accept:     acceptFor(in.family),
		Encoding:   encodingFor(in.family, in.version),
		Language:   lang,
		HeaderList: headerListFor(in.family, dv.platform.mobile),

		Plugins:        in.plugins(),
		CookieEnabled:  !in.cookieOff,
		WebGL:          true,
		LocalStorage:   !in.lsOff && !vs.private,
		AddBehavior:    in.family == useragent.IE,
		OpenDatabase:   in.family != useragent.Firefox && in.family != useragent.FirefoxMobile && in.family != useragent.IE,
		TimezoneOffset: tzOffsetFor(physical),

		Languages:  langs,
		Fonts:      in.visibleFonts(),
		CanvasHash: chash,

		GPUVendor:        dv.gpu.Vendor,
		GPURenderer:      dv.gpu.Renderer,
		GPUType:          in.gpuType(),
		CPUCores:         dv.cores,
		CPUClass:         dv.cpuClass,
		AudioInfo:        fmt.Sprintf("channels:%d;rate:%d", dv.audioChans, audioRate),
		ScreenResolution: screen,
		ColorDepth:       dv.colorDepth,
		PixelRatio:       formatPixelRatio(dv.basePR * in.zoom),

		IPAddr:    ds.Geo.IPFor(ipCityIdx, in.serial*13+in.visited),
		IPCity:    ipCity.Name,
		IPRegion:  ipCity.Region,
		IPCountry: ipCity.Country,

		ConsLanguage:   !in.fakeLang,
		ConsResolution: !in.fakeRes,
		ConsOS:         !vs.desktopReq,
		ConsBrowser:    !in.fakeUA,

		GPUImageHash: ghash,
	}

	parsed, err := useragent.CachedParse(fp.UserAgent)
	if err != nil {
		parsed = presented
	}
	return &fingerprint.Record{
		Time:    now,
		UserID:  in.userID,
		Cookie:  in.cookie,
		FP:      fp,
		Browser: parsed.Browser,
		OS:      parsed.OS,
		Device:  parsed.Device,
		Mobile:  parsed.Mobile,
	}
}
