package population

import (
	"math/rand"
	"time"

	"fpdyn/internal/useragent"
)

// EventType labels a ground-truth cause the simulator applied between
// two visits of an instance. The dynamics classifier is evaluated
// against these labels. Prefixes group them into the paper's three
// top-level categories.
type EventType string

const (
	EvBrowserUpdate EventType = "browser-update"
	EvOSUpdate      EventType = "os-update"

	EvTimezoneChange EventType = "ua-timezone"
	EvPrivateMode    EventType = "ua-private"
	EvZoom           EventType = "ua-zoom"
	EvFlashToggle    EventType = "ua-flash"
	EvFakeLanguages  EventType = "ua-fake-lang"
	EvFakeResolution EventType = "ua-fake-res"
	EvMonitorSwitch  EventType = "ua-monitor"
	EvDesktopRequest EventType = "ua-desktop-request"
	EvFakeUA         EventType = "ua-fake-agent"
	EvInstallPlugin  EventType = "ua-plugin"
	EvToggleStorage  EventType = "ua-localstorage"
	EvToggleCookie   EventType = "ua-cookie"

	EvOfficeUpdate   EventType = "env-office-update"
	EvOfficeInstall  EventType = "env-office-install"
	EvAdobeInstall   EventType = "env-adobe"
	EvLibreInstall   EventType = "env-libre"
	EvWPSInstall     EventType = "env-wps"
	EvEmojiUpdate    EventType = "env-emoji"
	EvAudioChange    EventType = "env-audio"
	EvGPUDriver      EventType = "env-gpu-driver"
	EvSystemLanguage EventType = "env-syslang"
	EvHeaderLanguage EventType = "env-header-lang"
	EvColorDepth     EventType = "env-colordepth"
)

// IsUserAction reports whether the event is in the user-action category.
func (e EventType) IsUserAction() bool { return len(e) > 3 && e[:3] == "ua-" }

// IsEnvironment reports whether the event is in the environment-update
// category.
func (e EventType) IsEnvironment() bool { return len(e) > 4 && e[:4] == "env-" }

// advance applies all instance-level background changes scheduled in
// (from, to]: browser release adoptions and their canvas/plugin side
// effects, plus the Firefox DirectX quirk. It returns the ground-truth
// labels.
func (in *instance) advance(from, to time.Time) []EventType {
	var labels []EventType
	if !in.neverUpdate {
		lag := in.updateLag
		for {
			rel, ok := latestAdoptable(BrowserReleases, in.family, in.version, to, lag)
			if !ok {
				break
			}
			// Only count it as an observed update if adoption happened
			// after the previous visit; earlier adoptions are part of the
			// first-seen state.
			adoptedAt := rel.Date.Add(lag)
			in.version = rel.V
			if rel.TextDetail {
				in.textEngineGen++
			}
			if rel.TextWidth {
				in.textWidthGen++
			}
			if rel.EmojiRender {
				in.emojiRenderGen++
			}
			if rel.EmojiType && !rel.DeviceEmoji {
				in.emojiRenderGen += 3
			}
			// Device-level emoji effects (Samsung, Insight 1.1) are
			// handled by the device schedule so co-installed browsers see
			// them; skip here to avoid double-application.
			if adoptedAt.After(from) {
				labels = append(labels, EvBrowserUpdate)
			}
			// The Firefox 57–60 DirectX fallback (Insight 3 example 2).
			if in.dxQuirky && in.family == useragent.Firefox {
				switch in.version.Major {
				case 58, 59:
					in.dxOverride = 9
				case 60, 61:
					in.dxOverride = 0
				}
			}
		}
	}
	return labels
}

// visitActions rolls the per-visit user actions for an instance. It
// mutates persistent toggles, returns the transient visit state and the
// ground-truth labels. Propensity gating means the same instances act
// repeatedly — the paper's observed gap between 13.4% of instances and
// 31% of dynamics.
func (in *instance) visitActions(rng *rand.Rand, ds *Dataset) (visitState, []EventType) {
	vs := visitState{vpnCity: -1}
	var labels []EventType
	dv := in.dev

	if in.traveler && in.visited > 0 && rng.Float64() < 0.30 {
		// Travel to another city (or home): timezone and IP both move.
		var dest int
		if dv.curCity != dv.homeCity && rng.Float64() < 0.6 {
			dest = dv.homeCity
		} else {
			dest = rng.Intn(ds.Geo.Len())
		}
		if dest != dv.curCity {
			oldTZ := tzOffsetFor(ds.Geo.CityAt(dv.curCity))
			dv.curCity = dest
			if tzOffsetFor(ds.Geo.CityAt(dest)) != oldTZ {
				labels = append(labels, EvTimezoneChange)
			}
		}
	}
	if in.vpnUser && rng.Float64() < 0.35 {
		// Public VPN exits sit far from the user (the paper observes no
		// 150–2,000 km/h band at all for this reason).
		vs.vpnCity = ds.Geo.FarFrom(dv.curCity, 5000, rng.Intn(ds.Geo.Len()))
	}
	if in.privateProne && rng.Float64() < 0.35 {
		vs.private = true
	}
	if vs.private != in.prevPrivate {
		labels = append(labels, EvPrivateMode)
	}
	in.prevPrivate = vs.private
	if in.zoomProne && rng.Float64() < 0.30 {
		levels := []float64{1.0, 0.8, 1.1, 1.25, 1.5}
		nz := levels[rng.Intn(len(levels))]
		if nz != in.zoom {
			in.zoom = nz
			labels = append(labels, EvZoom)
		}
	}
	if in.flashToggler && !dv.platform.mobile && rng.Float64() < 0.25 {
		in.flashOn = !in.flashOn
		labels = append(labels, EvFlashToggle)
	}
	if in.langFaker && rng.Float64() < 0.25 {
		in.fakeLang = !in.fakeLang
		labels = append(labels, EvFakeLanguages)
	}
	if in.resFaker && rng.Float64() < 0.25 {
		in.fakeRes = !in.fakeRes
		labels = append(labels, EvFakeResolution)
	}
	if in.desktopRequester && dv.platform.mobile && rng.Float64() < 0.30 {
		vs.desktopReq = true
	}
	if vs.desktopReq != in.prevDesktopReq {
		labels = append(labels, EvDesktopRequest)
	}
	in.prevDesktopReq = vs.desktopReq
	if in.uaFaker && rng.Float64() < 0.25 {
		in.fakeUA = !in.fakeUA
		labels = append(labels, EvFakeUA)
	}
	if in.pluginInstaller && !dv.platform.mobile && rng.Float64() < 0.15 {
		if len(in.extraPlugins) < len(optionalPlugins) {
			in.extraPlugins = append(in.extraPlugins, optionalPlugins[len(in.extraPlugins)])
			labels = append(labels, EvInstallPlugin)
		}
	}
	if in.lsToggler && rng.Float64() < 0.20 {
		in.lsOff = !in.lsOff
		labels = append(labels, EvToggleStorage)
		// Chrome couples cookie and localStorage behind one checkbox
		// (Insight 3 example 1); Firefox keeps them separate.
		if in.family == useragent.Chrome || in.family == useragent.ChromeMobile {
			in.cookieOff = in.lsOff
			labels = append(labels, EvToggleCookie)
		}
	}
	if in.cookieToggler && rng.Float64() < 0.20 {
		in.cookieOff = !in.cookieOff
		labels = append(labels, EvToggleCookie)
		if in.family == useragent.Chrome || in.family == useragent.ChromeMobile {
			in.lsOff = in.cookieOff
			labels = append(labels, EvToggleStorage)
		}
	}
	// Monitor switch: rare, desktop only, not propensity gated.
	if !dv.platform.mobile && rng.Float64() < 0.002 {
		cur := dv.screen
		for i := 0; i < 4 && dv.screen == cur; i++ {
			dv.screen = desktopResolutions[rng.Intn(len(desktopResolutions))]
		}
		labels = append(labels, EvMonitorSwitch)
	}
	return vs, labels
}

// updateCookie advances the instance's cookie state for a visit at time
// now and returns the cookie value to present. Covers: disabled
// cookies, private-browsing throwaways, Safari ITP expiry (the paper's
// main cookie-clearing cause), and occasional manual clears.
func (in *instance) updateCookie(rng *rand.Rand, now time.Time, private bool) string {
	if in.cookieOff {
		return ""
	}
	if private {
		in.cookieN++
		return cookieName(in.serial, in.cookieN, "pv")
	}
	if in.cookie == "" {
		in.cookieN++
		in.cookie = cookieName(in.serial, in.cookieN, "ck")
		return in.cookie
	}
	switch {
	case in.itp && now.Sub(in.lastVisit) > 7*24*time.Hour:
		// Intelligent tracking prevention purges our cookie after a week
		// of inactivity — the paper's dominant cookie-clearing cause.
		in.cookieN++
		in.cookie = cookieName(in.serial, in.cookieN, "ck")
	case in.manualClearer && rng.Float64() < 0.20:
		in.cookieN++
		in.cookie = cookieName(in.serial, in.cookieN, "ck")
	case rng.Float64() < 0.09:
		// Background churn: cleaner tools, antivirus, expiring cookies.
		in.cookieN++
		in.cookie = cookieName(in.serial, in.cookieN, "ck")
	}
	return in.cookie
}

func cookieName(serial, n int, prefix string) string {
	return prefix + "-" + itoa(serial) + "-" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
