package population

import (
	"testing"
)

// Sensitivity analysis: the simulator's knobs must move the measured
// quantities in the direction the underlying mechanism implies. These
// are the reproduction's guard rails against calibration regressions.

func countEvents(ds *Dataset, pred func(EventType) bool) int {
	n := 0
	for _, labels := range ds.Truth {
		for _, l := range labels {
			if pred(l) {
				n++
			}
		}
	}
	return n
}

func TestScenarioPresetsExist(t *testing.T) {
	for _, name := range Scenarios() {
		cfg, ok := NamedConfig(name, 100)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if cfg.Users != 100 {
			t.Fatalf("preset %q ignored the user scale", name)
		}
	}
	if _, ok := NamedConfig("nonsense", 10); ok {
		t.Fatal("unknown scenario accepted")
	}
}

func TestFastUpdatersAdoptMore(t *testing.T) {
	slow, _ := NamedConfig(ScenarioEnterprise, 900)
	fast, _ := NamedConfig(ScenarioFastUpdaters, 900)
	slow.Seed, fast.Seed = 77, 77
	dsSlow := Simulate(slow)
	dsFast := Simulate(fast)
	isUpdate := func(e EventType) bool { return e == EvBrowserUpdate }
	slowRate := float64(countEvents(dsSlow, isUpdate)) / float64(len(dsSlow.Records))
	fastRate := float64(countEvents(dsFast, isUpdate)) / float64(len(dsFast.Records))
	t.Logf("browser-update rate: enterprise %.4f, fast-updaters %.4f", slowRate, fastRate)
	if fastRate <= slowRate {
		t.Errorf("fast updaters (%.4f) should out-update the enterprise (%.4f)", fastRate, slowRate)
	}
}

func TestLoyalWorldHasMoreVisitsPerInstance(t *testing.T) {
	base, _ := NamedConfig(ScenarioPaper, 700)
	loyal, _ := NamedConfig(ScenarioLoyal, 700)
	base.Seed, loyal.Seed = 78, 78
	dsBase := Simulate(base)
	dsLoyal := Simulate(loyal)
	perInstance := func(ds *Dataset) float64 {
		return float64(len(ds.Records)) / float64(ds.NumInstances)
	}
	b, l := perInstance(dsBase), perInstance(dsLoyal)
	t.Logf("visits/instance: paper %.2f, loyal %.2f", b, l)
	if l <= b {
		t.Errorf("loyal world (%.2f) should out-visit the default (%.2f)", l, b)
	}
}

func TestMobileHeavyHasMoreMultiDeviceUsers(t *testing.T) {
	base, _ := NamedConfig(ScenarioPaper, 800)
	mob, _ := NamedConfig(ScenarioMobileHeavy, 800)
	base.Seed, mob.Seed = 79, 79
	multi := func(ds *Dataset) float64 {
		users := map[string]map[int]bool{}
		for i, r := range ds.Records {
			if users[r.UserID] == nil {
				users[r.UserID] = map[int]bool{}
			}
			users[r.UserID][ds.TrueInstance[i]] = true
		}
		n := 0
		for _, set := range users {
			if len(set) > 1 {
				n++
			}
		}
		return float64(n) / float64(len(users))
	}
	b, m := multi(Simulate(base)), multi(Simulate(mob))
	t.Logf("multi-instance users: paper %.2f, mobile-heavy %.2f", b, m)
	if m <= b {
		t.Errorf("mobile-heavy (%.2f) should exceed default (%.2f)", m, b)
	}
}

func TestUpdateLagShiftsAdoptionTiming(t *testing.T) {
	// Faster adoption ⇒ updates land closer to their release dates.
	fast, _ := NamedConfig(ScenarioFastUpdaters, 800)
	fast.Seed = 80
	slow := DefaultConfig(800)
	slow.Seed = 80
	slow.MeanUpdateLagDays = 60

	meanGap := func(ds *Dataset) float64 {
		// Approximate: time from window start to each browser-update
		// event's record.
		total, n := 0.0, 0
		for i, labels := range ds.Truth {
			for _, l := range labels {
				if l == EvBrowserUpdate {
					total += ds.Records[i].Time.Sub(ds.Cfg.Start).Hours()
					n++
				}
			}
		}
		if n == 0 {
			return 0
		}
		return total / float64(n)
	}
	f, s := meanGap(Simulate(fast)), meanGap(Simulate(slow))
	t.Logf("mean update-observation time: fast %.0fh, slow %.0fh", f, s)
	if f == 0 || s == 0 {
		t.Skip("no updates observed")
	}
	if f >= s {
		t.Errorf("fast updaters (%.0fh) should observe updates earlier than slow (%.0fh)", f, s)
	}
}
