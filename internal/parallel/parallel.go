// Package parallel holds the shared worker-pool primitives behind the
// analytic pipeline: simulate → ground truth → diff → classify all fan
// work out through the helpers here. The design constraint is
// determinism, not raw throughput: every helper collects results in
// input order, so a stage run on one worker and on NumCPU workers
// returns byte-identical output. Scheduling only decides *when* an
// index is computed, never *where* its result lands.
//
// The convention for worker knobs in this package is: a count >= 1 is
// used as given (1 = serial, in-order execution on the calling
// goroutine), anything else resolves to runtime.NumCPU(). Callers that
// reserve 0 for "legacy serial path" (population.Config, cmd/fpreport,
// cmd/fpgen) map that sentinel before reaching this package.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a workers knob to an effective worker count: n >= 1 is
// used as given, anything else becomes runtime.NumCPU().
func Resolve(workers int) int {
	if workers >= 1 {
		return workers
	}
	return runtime.NumCPU()
}

// ForEach runs fn(i) for every i in [0, n) on up to workers
// goroutines and blocks until all calls return. workers == 1 (or n <=
// 1) runs serially, in index order, on the calling goroutine — the
// deterministic reference path. Parallel runs hand out contiguous
// index chunks through an atomic cursor, so skewed per-item costs
// (e.g. heavy users in the population simulator) rebalance instead of
// stalling one worker. fn must be safe to call concurrently; writes to
// shared state must be partitioned by i.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Aim for several chunks per worker so stragglers rebalance, while
	// keeping the cursor contention negligible.
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var cursor int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				hi := int(atomic.AddInt64(&cursor, int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Map computes fn(i) for every i in [0, n) on up to workers goroutines
// and returns the results in index order, regardless of the worker
// count or scheduling. This is the ordered-collection primitive every
// pipeline stage builds on.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// FlatMap computes fn(i) for every i in [0, n) concurrently and
// concatenates the resulting slices in index order — the shape of the
// per-instance diff-chain fan-out in dynamics.Generate.
func FlatMap[T any](workers, n int, fn func(i int) []T) []T {
	parts := Map(workers, n, fn)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
