package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Fatalf("Resolve(3) = %d", got)
	}
	if got := Resolve(1); got != 1 {
		t.Fatalf("Resolve(1) = %d", got)
	}
	ncpu := runtime.NumCPU()
	if got := Resolve(0); got != ncpu {
		t.Fatalf("Resolve(0) = %d, want NumCPU %d", got, ncpu)
	}
	if got := Resolve(-4); got != ncpu {
		t.Fatalf("Resolve(-4) = %d, want NumCPU %d", got, ncpu)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		for _, n := range []int{0, 1, 2, 100, 1001} {
			hits := make([]int32, n)
			ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestMapOrderedRegardlessOfWorkers(t *testing.T) {
	fn := func(i int) int { return i*i + 1 }
	want := Map(1, 500, fn)
	for _, workers := range []int{2, 3, 8, 17} {
		got := Map(workers, 500, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestFlatMapConcatenatesInOrder(t *testing.T) {
	fn := func(i int) []int {
		out := make([]int, i%4)
		for j := range out {
			out[j] = i*10 + j
		}
		return out
	}
	want := FlatMap(1, 300, fn)
	for _, workers := range []int{2, 8} {
		got := FlatMap(workers, 300, fn)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: length %d, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}
