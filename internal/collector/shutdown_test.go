package collector

import (
	"context"
	"net"
	"testing"
	"time"

	"fpdyn/internal/storage"
)

// startDurableServer is startServer over a WAL-backed store so drain
// tests can assert recovery, plus control of the drain grace.
func startDurableServer(t *testing.T, dir string, grace time.Duration) (*Server, *storage.Store, string) {
	t.Helper()
	st, wal, _, err := storage.Recover(storage.WALOptions{Dir: dir, Policy: storage.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wal.Close() })
	srv := NewServer(st)
	srv.Logf = t.Logf
	srv.DrainGrace = grace
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, st, lis.Addr().String()
}

func TestShutdownAcksInFlightSubmission(t *testing.T) {
	dir := t.TempDir()
	srv, st, addr := startDurableServer(t, dir, time.Second)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// Begin the drain, then race a submission in on the live
	// connection: it is in flight within the grace window and must be
	// ACKed, durable, and present after recovery.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	idx, dup, err := c.SubmitSeq(sampleRecord(), "cid-drain", 1)
	if err != nil {
		t.Fatalf("in-flight submit during drain: %v", err)
	}
	if idx != 0 || dup {
		t.Fatalf("idx=%d dup=%v", idx, dup)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st.Len() != 1 {
		t.Fatalf("store len = %d", st.Len())
	}

	// The ACKed record survives a restart.
	st.WAL().Close()
	st2, w2, stats, err := storage.Recover(storage.WALOptions{Dir: dir, Policy: storage.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if st2.Len() != 1 || stats.Records != 1 {
		t.Fatalf("recovered len=%d stats=%+v", st2.Len(), stats)
	}
}

func TestShutdownRefusesNewConnections(t *testing.T) {
	srv, _, addr := startDurableServer(t, t.TempDir(), 50*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		t.Fatal("connection accepted after drain started")
	}
}

func TestShutdownClosesIdleConnections(t *testing.T) {
	srv, _, addr := startDurableServer(t, t.TempDir(), 50*time.Millisecond)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// The idle connection must not pin the drain until ctx expiry: the
	// grace deadline wakes its handler.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("drain of an idle connection took %v", d)
	}
	// The drained connection is closed: the next request fails.
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded on a drained connection")
	}
}

// TestShutdownCtxTighterThanGrace pins the deadline-cap fix: with a
// 10s grace but a 150ms ctx budget, idle handlers are woken inside the
// budget and the drain completes gracefully — the old code slept them
// out to the full grace and the only exit was a forced close with
// DeadlineExceeded.
func TestShutdownCtxTighterThanGrace(t *testing.T) {
	srv, _, addr := startDurableServer(t, t.TempDir(), 10*time.Second) // grace longer than ctx
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown err = %v, want graceful drain inside the ctx budget", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("shutdown took %v; the read deadline was not capped at the ctx budget", d)
	}
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded on a drained connection")
	}
}

// TestShutdownCancelForcesClose covers the forced path: a ctx with no
// deadline that gets cancelled mid-drain must close connections and
// return the cancellation promptly instead of waiting out the grace.
func TestShutdownCancelForcesClose(t *testing.T) {
	srv, _, addr := startDurableServer(t, t.TempDir(), 10*time.Second)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("shutdown err = %v, want Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("forced close took %v", d)
	}
}

func TestShutdownIdempotentAndCloseCompatible(t *testing.T) {
	srv, _, _ := startDurableServer(t, t.TempDir(), 50*time.Millisecond)
	ctx := context.Background()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
