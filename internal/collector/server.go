package collector

import (
	"encoding/json"
	"errors"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"fpdyn/internal/storage"
)

// Server is the data-storage server: it accepts collection connections,
// answers dedup checks against its value store, and appends
// reconstructed records to the backing store.
type Server struct {
	store *storage.Store

	mu     sync.Mutex
	lis    net.Listener
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	// Stats counters (atomic).
	recordsAccepted atomic.Int64
	valuesReceived  atomic.Int64
	valuesDeduped   atomic.Int64
	bytesReceived   atomic.Int64

	// Logf receives per-connection error logs; defaults to log.Printf.
	// Set before Serve.
	Logf func(format string, args ...any)
}

// NewServer creates a server over the given store.
func NewServer(store *storage.Store) *Server {
	return &Server{
		store: store,
		conns: make(map[net.Conn]struct{}),
		Logf:  log.Printf,
	}
}

// Stats is a snapshot of server counters.
type Stats struct {
	RecordsAccepted int64
	ValuesReceived  int64 // blobs actually transferred
	ValuesDeduped   int64 // blobs skipped thanks to the hash check
	BytesReceived   int64
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{
		RecordsAccepted: s.recordsAccepted.Load(),
		ValuesReceived:  s.valuesReceived.Load(),
		ValuesDeduped:   s.valuesDeduped.Load(),
		BytesReceived:   s.bytesReceived.Load(),
	}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:0") and serves until
// Close. It returns the bound address on a channel-free API: call Addr
// after it returns from the internal listen step via Listen+Serve
// instead when the port is needed; ListenAndServe is for cmd binaries.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Serve accepts connections on lis until Close is called. It blocks.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		// Close raced ahead of Serve: shut down cleanly.
		s.mu.Unlock()
		lis.Close()
		return nil
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Logf("collector: connection %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// Close stops accepting, closes live connections and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.wg.Wait()
	return nil
}

// countingReader counts bytes drawn from the connection.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}

// handle runs the request loop for one connection.
func (s *Server) handle(conn net.Conn) error {
	dec := json.NewDecoder(countingReader{conn, &s.bytesReceived})
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return err
		}
		resp := s.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return err
		}
	}
}

// dispatch processes one request.
func (s *Server) dispatch(req *Request) *Response {
	switch req.Type {
	case TypePing:
		return &Response{Type: TypePong}
	case TypeCheck:
		var missing []string
		for _, h := range req.Hashes {
			if s.store.HasValue(h) {
				s.valuesDeduped.Add(1)
			} else {
				missing = append(missing, h)
			}
		}
		return &Response{Type: TypeNeed, Hashes: missing}
	case TypeSubmit:
		if req.Record == nil || req.Record.FP == nil {
			return &Response{Type: TypeError, Error: "submit without record"}
		}
		for h, content := range req.Values {
			s.store.PutValue(h, content)
			s.valuesReceived.Add(1)
		}
		rec, err := RestoreRecord(req.Record, req.Refs, s.store.Value)
		if err != nil {
			return &Response{Type: TypeError, Error: err.Error()}
		}
		idx := s.store.Append(rec)
		s.recordsAccepted.Add(1)
		return &Response{Type: TypeOK, Index: idx}
	default:
		return &Response{Type: TypeError, Error: "unknown request type " + req.Type}
	}
}
