package collector

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/obs"
	"fpdyn/internal/storage"
)

// Default connection-hygiene settings; override the Server fields
// before Serve.
const (
	DefaultReadTimeout  = 2 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
	DefaultMaxFrame     = 8 << 20 // one request line, blobs included
	DefaultDrainGrace   = 500 * time.Millisecond
)

// Backend is the storage surface the server ingests into. Both
// *storage.Store and *storage.ShardedStore satisfy it; the server
// neither knows nor cares how the backend partitions data.
type Backend interface {
	HasValue(hash string) bool
	Value(hash string) ([]byte, bool)
	PutValueDurable(hash string, content []byte) error
	AppendDurable(r *fingerprint.Record, clientID string, seq uint64) (idx int, dup bool, err error)
	// AppendBatchDurable group-commits a batch of records: one WAL
	// write+fsync per touched shard instead of one per record. An error
	// means the batch must not be ACKed (the client retransmits; seq
	// dedup absorbs any sub-batch that did land).
	AppendBatchDurable(items []storage.BatchAppend, clientID string) ([]storage.BatchResult, error)
}

// Server is the data-storage server: it accepts collection connections,
// answers dedup checks against its value store, and appends
// reconstructed records to the backing store. When the store has a WAL
// attached, a submit is ACKed only after the record is durable.
type Server struct {
	store Backend

	// ReadTimeout bounds the wait for the next request on an idle
	// connection; WriteTimeout bounds one response write. Slow or
	// stalled clients are disconnected rather than pinning a handler
	// goroutine forever. Defaults above; negative disables.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// MaxFrame caps one request line in bytes (the inbound-blob
	// guard): a client exceeding it is disconnected before the payload
	// is buffered in full.
	MaxFrame int
	// DrainGrace is how long existing connections may finish in-flight
	// requests after Shutdown begins.
	DrainGrace time.Duration
	// DisableBinary makes the server decline binary framing in hello
	// exchanges, pinning every connection to newline-JSON. The bench
	// harness uses it to measure the framing modes against the same
	// server code; operators can use it to rule the binary path out
	// when debugging.
	DisableBinary bool

	mu       sync.Mutex
	lis      net.Listener
	closed   bool
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	draining atomic.Bool

	// metrics backs both Stats() and the /metrics scrape, so the two
	// views can never disagree.
	metrics serverMetrics

	// Logf receives per-connection error logs; defaults to log.Printf.
	// Set before Serve.
	Logf func(format string, args ...any)
}

// serverMetrics is the collector server's obs wiring. Counters are
// resolved once at construction; the request path only performs atomic
// updates.
type serverMetrics struct {
	reg *obs.Registry

	requestsPing   *obs.Counter
	requestsCheck  *obs.Counter
	requestsSubmit *obs.Counter
	requestsHello  *obs.Counter
	requestsBatch  *obs.Counter
	requestsOther  *obs.Counter
	reqLatency     *obs.Histogram

	recordsAccepted *obs.Counter
	recordsDuped    *obs.Counter
	valuesReceived  *obs.Counter
	valuesDeduped   *obs.Counter
	bytesReceived   *obs.Counter
	framesRejected  *obs.Counter

	activeConns  *obs.Gauge
	draining     *obs.Gauge
	drainSeconds *obs.Gauge
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	return serverMetrics{
		reg:            reg,
		requestsPing:   reg.Counter("collector_requests_total", "Requests handled, by protocol verb.", "verb", TypePing),
		requestsCheck:  reg.Counter("collector_requests_total", "Requests handled, by protocol verb.", "verb", TypeCheck),
		requestsSubmit: reg.Counter("collector_requests_total", "Requests handled, by protocol verb.", "verb", TypeSubmit),
		requestsHello:  reg.Counter("collector_requests_total", "Requests handled, by protocol verb.", "verb", TypeHello),
		requestsBatch:  reg.Counter("collector_requests_total", "Requests handled, by protocol verb.", "verb", TypeBatch),
		requestsOther:  reg.Counter("collector_requests_total", "Requests handled, by protocol verb.", "verb", "other"),
		reqLatency:     reg.Histogram("collector_request_seconds", "Request dispatch latency (decode excluded).", nil),

		recordsAccepted: reg.Counter("collector_records_accepted_total", "Records appended to the store."),
		recordsDuped:    reg.Counter("collector_records_duped_total", "Submits answered from the idempotency table."),
		valuesReceived:  reg.Counter("collector_values_received_total", "Content-addressed blobs transferred."),
		valuesDeduped:   reg.Counter("collector_values_deduped_total", "Blobs skipped thanks to the hash check."),
		bytesReceived:   reg.Counter("collector_bytes_received_total", "Inbound frame bytes drawn from client connections."),
		framesRejected:  reg.Counter("collector_frames_rejected_total", "Requests dropped for exceeding the frame limit."),

		activeConns:  reg.Gauge("collector_active_connections", "Currently open client connections."),
		draining:     reg.Gauge("collector_draining", "1 while a graceful Shutdown drain is in progress or finished."),
		drainSeconds: reg.Gauge("collector_drain_seconds", "Wall time the last Shutdown drain took."),
	}
}

// NewServer creates a server over the given backend (a
// *storage.Store or *storage.ShardedStore).
func NewServer(store Backend) *Server {
	return &Server{
		store:   store,
		conns:   make(map[net.Conn]struct{}),
		metrics: newServerMetrics(obs.NewRegistry()),
		Logf:    log.Printf,
	}
}

// Metrics returns the server's metric registry for the admin endpoint
// (/metrics, /varz) to serve.
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }

// Draining reports whether a graceful Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) readTimeout() time.Duration {
	if s.ReadTimeout == 0 {
		return DefaultReadTimeout
	}
	return s.ReadTimeout
}

func (s *Server) writeTimeout() time.Duration {
	if s.WriteTimeout == 0 {
		return DefaultWriteTimeout
	}
	return s.WriteTimeout
}

func (s *Server) maxFrame() int {
	if s.MaxFrame <= 0 {
		return DefaultMaxFrame
	}
	return s.MaxFrame
}

func (s *Server) drainGrace() time.Duration {
	if s.DrainGrace <= 0 {
		return DefaultDrainGrace
	}
	return s.DrainGrace
}

// Stats is a snapshot of server counters.
type Stats struct {
	RecordsAccepted int64
	RecordsDuped    int64 // submits answered from the idempotency table
	ValuesReceived  int64 // blobs actually transferred
	ValuesDeduped   int64 // blobs skipped thanks to the hash check
	BytesReceived   int64
}

// Stats returns a snapshot of the counters. The same counters back the
// /metrics exposition, so a scrape and a Stats call always agree.
func (s *Server) Stats() Stats {
	return Stats{
		RecordsAccepted: s.metrics.recordsAccepted.Value(),
		RecordsDuped:    s.metrics.recordsDuped.Value(),
		ValuesReceived:  s.metrics.valuesReceived.Value(),
		ValuesDeduped:   s.metrics.valuesDeduped.Value(),
		BytesReceived:   s.metrics.bytesReceived.Value(),
	}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:0") and serves until
// Close. It returns the bound address on a channel-free API: call Addr
// after it returns from the internal listen step via Listen+Serve
// instead when the port is needed; ListenAndServe is for cmd binaries.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Serve accepts connections on lis until Close is called. It blocks.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		// Close raced ahead of Serve: shut down cleanly.
		s.mu.Unlock()
		lis.Close()
		return nil
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			// Shutdown/Close raced the accept: refuse the connection.
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.metrics.activeConns.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				s.metrics.activeConns.Add(-1)
			}()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Logf("collector: connection %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// Close stops accepting, closes live connections and waits for
// handlers to drain. It is the abrupt stop — in-flight requests are
// torn down without a response, as a crash would — and doubles as the
// SIGKILL-equivalent in the chaos tests. Use Shutdown for a graceful
// drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.wg.Wait()
	return nil
}

// Shutdown drains the server: it stops accepting new connections
// immediately, lets in-flight submissions on existing connections
// finish (bounded by DrainGrace, and never past ctx's own deadline),
// then closes. A connection opened after Shutdown begins is refused.
// If ctx expires first, remaining connections are closed abruptly and
// ctx.Err is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining.Store(true)
	s.metrics.draining.Set(1)
	drainStart := time.Now()
	lis := s.lis
	deadline := drainStart.Add(s.drainGrace())
	if d, ok := ctx.Deadline(); ok {
		// The caller's budget is tighter than the drain grace: wake idle
		// handlers a beat before the ctx deadline so they exit cleanly
		// inside it instead of sleeping past it and getting force-closed.
		if h := d.Add(-20 * time.Millisecond); h.Before(deadline) {
			deadline = h
			if deadline.Before(drainStart) {
				deadline = drainStart
			}
		}
	}
	for c := range s.conns {
		// Cap every connection's next read at the drain deadline so idle
		// handlers wake up and exit; requests already in flight still
		// complete and are ACKed.
		c.SetReadDeadline(deadline)
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	defer func() {
		s.metrics.drainSeconds.SetDuration(time.Since(drainStart))
	}()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		select {
		case <-done:
			// The drain finished on the same tick the budget expired —
			// that is a completed shutdown, not a forced one.
			return nil
		default:
		}
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
		return ctx.Err()
	}
}

// countingReader counts bytes drawn from the connection into the
// inbound-bytes counter.
type countingReader struct {
	r io.Reader
	n *obs.Counter
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}

// ErrFrameTooLong mirrors bufio.ErrTooLong for the reader-based line
// framing below. Exported so other servers sharing the hello-negotiated
// framing (internal/linkd) report the same condition.
var ErrFrameTooLong = errors.New("request frame too large")

// ReadLine accumulates one newline-terminated request from br, bounded
// by maxLine. Unlike bufio.Scanner it reads through a plain
// *bufio.Reader, so bytes the reader has buffered past the line — the
// first binary frame a pipelining client sent right behind its hello —
// survive a mid-connection framing switch instead of being discarded
// with the scanner. Exported for servers that share the collector's
// line-then-binary framing convention.
func ReadLine(br *bufio.Reader, maxLine int) ([]byte, error) {
	var line []byte
	for {
		frag, err := br.ReadSlice('\n')
		line = append(line, frag...)
		if len(line) > maxLine+1 { // +1: the delimiter is not payload
			return nil, ErrFrameTooLong
		}
		switch {
		case err == nil:
			line = line[:len(line)-1] // strip '\n'
			if len(line) > 0 && line[len(line)-1] == '\r' {
				line = line[:len(line)-1]
			}
			return line, nil
		case errors.Is(err, bufio.ErrBufferFull):
			continue // long line: keep accumulating
		case errors.Is(err, io.EOF) && len(line) > 0:
			return line, nil // final line without trailing newline
		default:
			return nil, err
		}
	}
}

// handle runs the request loop for one connection. A connection starts
// in newline-JSON framing; a hello exchange may switch it to binary
// frames (CRC-32C, length-prefixed — the WAL's frame format), in which
// case the switch takes effect for the request after the hello on both
// sides.
func (s *Server) handle(conn net.Conn) error {
	br := bufio.NewReader(countingReader{conn, s.metrics.bytesReceived})
	enc := json.NewEncoder(conn)
	binary := false
	var wbuf []byte // reused binary response frame
	for {
		if !s.draining.Load() {
			if rt := s.readTimeout(); rt > 0 {
				conn.SetReadDeadline(time.Now().Add(rt))
			}
		}
		var payload []byte
		var err error
		if binary {
			payload, err = storage.ReadFrame(br, s.maxFrame())
			if errors.Is(err, storage.ErrFrameSize) {
				err = ErrFrameTooLong
			}
		} else {
			payload, err = ReadLine(br, s.maxFrame())
		}
		if err != nil {
			switch {
			case errors.Is(err, io.EOF):
				return io.EOF
			case errors.Is(err, ErrFrameTooLong):
				// Best-effort rejection before hanging up.
				s.metrics.framesRejected.Inc()
				s.writeResponse(conn, enc, binary, &wbuf, &Response{Type: TypeError, Error: "request exceeds frame limit"})
				return ErrFrameTooLong
			case s.draining.Load() && errors.Is(err, os.ErrDeadlineExceeded):
				return nil // drained: the connection went idle past the grace
			default:
				return err
			}
		}
		if len(payload) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(payload, &req); err != nil {
			s.writeResponse(conn, enc, binary, &wbuf, &Response{Type: TypeError, Error: "malformed request"})
			return err
		}
		resp := s.dispatch(&req)
		if err := s.writeResponse(conn, enc, binary, &wbuf, resp); err != nil {
			return err
		}
		if resp.Type == TypeHello && resp.Framing == FramingBinary {
			// The hello reply itself went out in the old framing; both
			// sides switch starting with the next message.
			binary = true
		}
		// During a drain the loop keeps serving — a submission spans two
		// round trips (check, then submit), so cutting after one response
		// would break it mid-flight. The absolute read deadline Shutdown
		// set on the connection bounds how long this can continue.
	}
}

func (s *Server) writeResponse(conn net.Conn, enc *json.Encoder, binary bool, wbuf *[]byte, resp *Response) error {
	if wt := s.writeTimeout(); wt > 0 {
		conn.SetWriteDeadline(time.Now().Add(wt))
	}
	if !binary {
		return enc.Encode(resp)
	}
	payload, err := json.Marshal(resp)
	if err != nil {
		return err
	}
	*wbuf = storage.AppendFrame((*wbuf)[:0], payload)
	_, err = conn.Write(*wbuf)
	return err
}

// dispatch processes one request, counting it by verb and timing it
// into the request-latency histogram. The instrumentation is two
// atomic adds plus one clock read pair — nothing on this path
// allocates.
func (s *Server) dispatch(req *Request) *Response {
	switch req.Type {
	case TypePing:
		s.metrics.requestsPing.Inc()
	case TypeCheck:
		s.metrics.requestsCheck.Inc()
	case TypeSubmit:
		s.metrics.requestsSubmit.Inc()
	case TypeHello:
		s.metrics.requestsHello.Inc()
	case TypeBatch:
		s.metrics.requestsBatch.Inc()
	default:
		s.metrics.requestsOther.Inc()
	}
	start := time.Now()
	resp := s.dispatchInner(req)
	s.metrics.reqLatency.ObserveDuration(time.Since(start))
	return resp
}

func (s *Server) dispatchInner(req *Request) *Response {
	switch req.Type {
	case TypePing:
		return &Response{Type: TypePong}
	case TypeHello:
		f := FramingJSON
		if req.Framing == FramingBinary && !s.DisableBinary {
			f = FramingBinary
		}
		return &Response{Type: TypeHello, Framing: f}
	case TypeBatch:
		// Two phases. First walk the items in order, landing blobs and
		// restoring records; a bad item stops the walk — items after it
		// are not attempted, so the client's per-seq retransmission
		// invariant (in order, head-blocking) holds within batches too.
		// Then group-commit every restored record in one
		// AppendBatchDurable call: one WAL write+fsync per touched
		// shard, which is where batching beats per-record submits at
		// fsync=always.
		var itemErr string
		items := make([]storage.BatchAppend, 0, len(req.Batch))
		for i := range req.Batch {
			it := &req.Batch[i]
			if it.Record == nil || it.Record.FP == nil {
				itemErr = "submit without record"
				break
			}
			bad := false
			for h, content := range it.Values {
				if err := s.store.PutValueDurable(h, content); err != nil {
					itemErr = "value not durable: " + err.Error()
					bad = true
					break
				}
				s.metrics.valuesReceived.Inc()
			}
			if bad {
				break
			}
			rec, err := RestoreRecord(it.Record, it.Refs, s.store.Value)
			if err != nil {
				itemErr = err.Error()
				break
			}
			items = append(items, storage.BatchAppend{Record: rec, Seq: it.Seq})
		}
		results, err := s.store.AppendBatchDurable(items, req.ClientID)
		if err != nil {
			// Nothing in the batch may be ACKed: one error ack at
			// position 0 tells the client the server got nowhere.
			return &Response{Type: TypeOK, Acks: []Ack{{Error: "record not durable: " + err.Error()}}}
		}
		acks := make([]Ack, 0, len(results)+1)
		for _, r := range results {
			if r.Dup {
				s.metrics.recordsDuped.Inc()
			} else {
				s.metrics.recordsAccepted.Inc()
			}
			acks = append(acks, Ack{Index: r.Idx, Dup: r.Dup})
		}
		if itemErr != "" {
			acks = append(acks, Ack{Error: itemErr})
		}
		return &Response{Type: TypeOK, Acks: acks}
	case TypeCheck:
		var missing []string
		for _, h := range req.Hashes {
			if s.store.HasValue(h) {
				s.metrics.valuesDeduped.Inc()
			} else {
				missing = append(missing, h)
			}
		}
		return &Response{Type: TypeNeed, Hashes: missing}
	case TypeSubmit:
		if req.Record == nil || req.Record.FP == nil {
			return &Response{Type: TypeError, Error: "submit without record"}
		}
		for h, content := range req.Values {
			if err := s.store.PutValueDurable(h, content); err != nil {
				return &Response{Type: TypeError, Error: "value not durable: " + err.Error()}
			}
			s.metrics.valuesReceived.Inc()
		}
		rec, err := RestoreRecord(req.Record, req.Refs, s.store.Value)
		if err != nil {
			return &Response{Type: TypeError, Error: err.Error()}
		}
		idx, dup, err := s.store.AppendDurable(rec, req.ClientID, req.Seq)
		if err != nil {
			// The record did not reach stable storage: refuse the ACK so
			// the client keeps it buffered and retries.
			return &Response{Type: TypeError, Error: "record not durable: " + err.Error()}
		}
		if dup {
			s.metrics.recordsDuped.Inc()
		} else {
			s.metrics.recordsAccepted.Inc()
		}
		return &Response{Type: TypeOK, Index: idx, Dup: dup}
	default:
		return &Response{Type: TypeError, Error: "unknown request type " + req.Type}
	}
}
