package collector

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/obs"
)

// ResilientClient wraps the transfer module with reconnection and
// bounded buffering: the paper's deployment lost its server for eight
// days and survived because clients kept retrying. Submissions that
// fail are buffered (up to BufferLimit) and flushed on the next
// successful submission, preserving order.
//
// Every buffered record carries a client-assigned sequence ID
// (ClientID, Seq). After an ambiguous mid-flight failure — the record
// was sent but the ACK never arrived — the retransmission reuses the
// same sequence ID, so the server appends it at most once and
// reconnecting never double-counts a visit.
type ResilientClient struct {
	// Addr is the server address to (re)dial.
	Addr string
	// MaxRetries bounds the dial attempts per flush (default 3).
	MaxRetries int
	// Backoff is the base delay between redials, doubled per attempt
	// (default 50ms; tests use ~1ms).
	Backoff time.Duration
	// MaxBackoff caps the doubled delay (default 5s). Each sleep is
	// full-jittered: uniform in (0, min(backoff, MaxBackoff)], so a
	// fleet of clients recovering from the same outage does not redial
	// in lockstep.
	MaxBackoff time.Duration
	// BufferLimit caps the number of records held while the server is
	// unreachable (default 1024); beyond it, the oldest are dropped —
	// which is what the paper's deployment effectively did.
	BufferLimit int
	// ClientID identifies this client in sequence IDs; NewResilientClient
	// assigns a random one.
	ClientID string
	// BatchSize caps how many pending records one flush round trip
	// carries (default 32). During an outage the queue grows; on
	// reconnect the backlog drains BatchSize records per batch request
	// instead of two round trips per record. 1 restores the per-record
	// submit path.
	BatchSize int
	// DisableBinary skips the binary-framing negotiation on redial,
	// pinning the connection to newline-JSON (the bench harness's
	// control arm).
	DisableBinary bool

	// sendMu serializes flushers. Dial backoff sleeps hold only sendMu,
	// never mu, so Submit buffering, Pending and Stats stay prompt
	// during an outage.
	sendMu sync.Mutex

	// mu guards the queue, the connection handle and the counters.
	mu      sync.Mutex
	client  *Client
	nextSeq uint64
	pending []pendingRecord
	stats   ResilientStats
	// closeCh aborts an in-flight dial backoff sleep promptly when the
	// client is closed. Close closes it; the next Submit/Flush lazily
	// recreates it, preserving the "buffered records can still flush
	// after Close" contract.
	closeCh chan struct{}
}

// ErrClientClosed aborts a dial backoff when Close is called mid-sleep.
var ErrClientClosed = errors.New("collector: client closed during dial backoff")

// pendingRecord is one buffered submission with its sequence ID.
type pendingRecord struct {
	rec *fingerprint.Record
	seq uint64
}

// ResilientStats reports delivery outcomes. Dropped counts records
// evicted by BufferLimit — actual data loss — distinctly from
// transient delivery errors, which leave records pending.
type ResilientStats struct {
	Sent        int64 // records ACKed by the server
	Dropped     int64 // records evicted from the buffer, never delivered
	Retransmits int64 // deliveries the server identified as duplicates
	Redials     int64 // successful reconnections
}

// NewResilientClient builds a resilient client for addr. No connection
// is made until the first Submit.
func NewResilientClient(addr string) *ResilientClient {
	return &ResilientClient{
		Addr:        addr,
		MaxRetries:  3,
		Backoff:     50 * time.Millisecond,
		BufferLimit: 1024,
		ClientID:    newClientID(),
	}
}

// newClientID returns a random 16-hex-digit client identifier.
func newClientID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively fatal elsewhere; fall back
		// to a fixed-prefix zero ID rather than crash the client.
		return "cid-0000000000000000"
	}
	return "cid-" + hex.EncodeToString(b[:])
}

// Submit enqueues a record and attempts to flush everything pending.
// It returns nil when the record was delivered (possibly along with
// older buffered ones) and an error when it remains buffered.
func (r *ResilientClient) Submit(rec *fingerprint.Record) error {
	r.mu.Lock()
	r.nextSeq++
	r.pending = append(r.pending, pendingRecord{rec, r.nextSeq})
	if over := len(r.pending) - r.bufferLimit(); over > 0 {
		r.pending = r.pending[over:]
		r.stats.Dropped += int64(over)
	}
	r.mu.Unlock()
	return r.flush()
}

// Flush retries delivery of any buffered records.
func (r *ResilientClient) Flush() error {
	return r.flush()
}

// flush delivers pending records in order until the queue is empty or
// delivery fails, coalescing up to BatchSize records per round trip.
// The buffered-count context is attached once, at the point of return
// — not re-wrapped per record.
func (r *ResilientClient) flush() error {
	r.sendMu.Lock()
	defer r.sendMu.Unlock()
	size := r.batchSize()
	for {
		r.mu.Lock()
		if len(r.pending) == 0 {
			r.mu.Unlock()
			return nil
		}
		n := len(r.pending)
		if n > size {
			n = size
		}
		batch := make([]BatchRecord, n)
		for i := 0; i < n; i++ {
			batch[i] = BatchRecord{Rec: r.pending[i].rec, Seq: r.pending[i].seq}
		}
		c := r.client
		r.mu.Unlock()

		if c == nil {
			nc, err := r.dial()
			if err != nil {
				return r.bufferedErr(err)
			}
			r.mu.Lock()
			r.client = nc
			r.stats.Redials++
			r.mu.Unlock()
			c = nc
		}

		acks, err := r.deliver(c, batch)
		if err != nil {
			// The connection died mid-flight; the fate of the batch is
			// ambiguous, but the sequence IDs make the retransmission
			// exact, so keep everything pending and let the next flush
			// redial.
			c.Close()
			r.mu.Lock()
			if r.client == c {
				r.client = nil
			}
			r.mu.Unlock()
			return r.bufferedErr(err)
		}
		var itemErr string
		r.mu.Lock()
		for i, a := range acks {
			if a.Error != "" {
				// The server stopped at this record; it and everything
				// after stay pending, head-blocking like the per-record
				// path.
				itemErr = a.Error
				break
			}
			// A concurrent Submit may have evicted it under BufferLimit;
			// only pop if it is still the queue front.
			if len(r.pending) > 0 && r.pending[0].seq == batch[i].Seq {
				r.pending = r.pending[1:]
			}
			r.stats.Sent++
			if a.Dup {
				r.stats.Retransmits++
			}
		}
		r.mu.Unlock()
		if itemErr != "" {
			return r.bufferedErr(fmt.Errorf("server rejected record: %s", itemErr))
		}
	}
}

// deliver sends one batch over c, using the per-record path when the
// batch is a single record and batching is off.
func (r *ResilientClient) deliver(c *Client, batch []BatchRecord) ([]Ack, error) {
	if r.batchSize() == 1 {
		_, dup, err := c.SubmitSeq(batch[0].Rec, r.ClientID, batch[0].Seq)
		if err != nil {
			return nil, err
		}
		return []Ack{{Dup: dup}}, nil
	}
	return c.SubmitBatch(batch, r.ClientID)
}

func (r *ResilientClient) batchSize() int {
	if r.BatchSize == 1 {
		return 1
	}
	if r.BatchSize <= 0 {
		return 32
	}
	return r.BatchSize
}

// bufferedErr wraps a delivery error with the current backlog size.
func (r *ResilientClient) bufferedErr(err error) error {
	r.mu.Lock()
	n := len(r.pending)
	r.mu.Unlock()
	return fmt.Errorf("collector: %d records buffered: %w", n, err)
}

// dial (re)connects with capped, jittered exponential backoff. It is
// called with sendMu held but never r.mu: the backoff sleeps do not
// block Submit buffering, Pending or Stats. A concurrent Close aborts
// the sleep promptly instead of letting it run out.
func (r *ResilientClient) dial() (*Client, error) {
	retries := r.MaxRetries
	if retries <= 0 {
		retries = 3
	}
	closing := r.closedCh()
	var lastErr error
	for attempt := 0; attempt < retries; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(r.backoffDelay(attempt))
			select {
			case <-t.C:
			case <-closing:
				t.Stop()
				if lastErr != nil {
					return nil, fmt.Errorf("%w (last dial error: %v)", ErrClientClosed, lastErr)
				}
				return nil, ErrClientClosed
			}
		}
		c, err := Dial(r.Addr)
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.Ping(); err != nil {
			c.Close()
			lastErr = err
			continue
		}
		if !r.DisableBinary {
			// Best-effort upgrade to binary framing; a legacy server
			// declines and the connection keeps working over JSON.
			if _, err := c.Negotiate(); err != nil {
				c.Close()
				lastErr = err
				continue
			}
		}
		return c, nil
	}
	if lastErr == nil {
		lastErr = errors.New("unreachable")
	}
	return nil, lastErr
}

// backoffDelay computes the sleep before dial attempt n (n ≥ 1): the
// base backoff doubled per attempt, capped at MaxBackoff, with full
// jitter — uniform in (0, cap]. Full jitter (the AWS architecture-blog
// recommendation) trades a slightly longer expected recovery for
// de-synchronizing a fleet of clients that all lost the same server.
func (r *ResilientClient) backoffDelay(n int) time.Duration {
	base := r.Backoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxB := r.MaxBackoff
	if maxB <= 0 {
		maxB = 5 * time.Second
	}
	d := base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= maxB {
			d = maxB
			break
		}
	}
	if d > maxB {
		d = maxB
	}
	// Full jitter; never zero so consecutive attempts cannot hot-spin.
	return 1 + time.Duration(mrand.Int63n(int64(d)))
}

// closedCh returns the channel Close will close, creating a fresh one
// if a previous Close consumed it.
func (r *ResilientClient) closedCh() chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closeCh == nil {
		r.closeCh = make(chan struct{})
	}
	return r.closeCh
}

func (r *ResilientClient) bufferLimit() int {
	if r.BufferLimit <= 0 {
		return 1024
	}
	return r.BufferLimit
}

// Pending returns the number of buffered records. It does not block
// behind an in-progress redial.
func (r *ResilientClient) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// Stats returns a snapshot of delivery outcomes.
func (r *ResilientClient) Stats() ResilientStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Close releases the underlying connection and aborts any dial backoff
// sleep in flight; buffered records are kept and can still be flushed
// after a later Submit/Flush redials.
func (r *ResilientClient) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closeCh != nil {
		close(r.closeCh)
		r.closeCh = nil
	}
	if r.client != nil {
		err := r.client.Close()
		r.client = nil
		return err
	}
	return nil
}

// Instrument registers the client's delivery outcomes as live gauges
// on reg, sampled at scrape time: records sent/dropped, retransmits,
// redials, and the current backlog depth. Metric names carry the
// client ID as a label so several clients can share one registry.
func (r *ResilientClient) Instrument(reg *obs.Registry) {
	labels := []string{"client", r.ClientID}
	stat := func(pick func(ResilientStats) int64) func() float64 {
		return func() float64 { return float64(pick(r.Stats())) }
	}
	reg.GaugeFunc("client_records_sent", "Records ACKed by the server.",
		stat(func(s ResilientStats) int64 { return s.Sent }), labels...)
	reg.GaugeFunc("client_records_dropped", "Records evicted from the buffer, never delivered.",
		stat(func(s ResilientStats) int64 { return s.Dropped }), labels...)
	reg.GaugeFunc("client_retransmits", "Deliveries the server identified as duplicates.",
		stat(func(s ResilientStats) int64 { return s.Retransmits }), labels...)
	reg.GaugeFunc("client_redials", "Successful reconnections.",
		stat(func(s ResilientStats) int64 { return s.Redials }), labels...)
	reg.GaugeFunc("client_pending_records", "Records currently buffered awaiting delivery.",
		func() float64 { return float64(r.Pending()) }, labels...)
}
