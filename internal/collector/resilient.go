package collector

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fpdyn/internal/fingerprint"
)

// ResilientClient wraps the transfer module with reconnection and
// bounded buffering: the paper's deployment lost its server for eight
// days and survived because clients kept retrying. Submissions that
// fail are buffered (up to BufferLimit) and flushed on the next
// successful submission, preserving order.
type ResilientClient struct {
	// Addr is the server address to (re)dial.
	Addr string
	// MaxRetries bounds the dial attempts per flush (default 3).
	MaxRetries int
	// Backoff is the base delay between redials, doubled per attempt
	// (default 50ms; tests use ~1ms).
	Backoff time.Duration
	// BufferLimit caps the number of records held while the server is
	// unreachable (default 1024); beyond it, the oldest are dropped —
	// which is what the paper's deployment effectively did.
	BufferLimit int

	mu      sync.Mutex
	client  *Client
	pending []*fingerprint.Record
	dropped int64
	sent    int64
}

// NewResilientClient builds a resilient client for addr. No connection
// is made until the first Submit.
func NewResilientClient(addr string) *ResilientClient {
	return &ResilientClient{
		Addr:        addr,
		MaxRetries:  3,
		Backoff:     50 * time.Millisecond,
		BufferLimit: 1024,
	}
}

// Submit enqueues a record and attempts to flush everything pending.
// It returns nil when the record was delivered (possibly along with
// older buffered ones) and an error when it remains buffered.
func (r *ResilientClient) Submit(rec *fingerprint.Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pending = append(r.pending, rec)
	if over := len(r.pending) - r.bufferLimit(); over > 0 {
		r.pending = r.pending[over:]
		r.dropped += int64(over)
	}
	return r.flushLocked()
}

// Flush retries delivery of any buffered records.
func (r *ResilientClient) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flushLocked()
}

func (r *ResilientClient) flushLocked() error {
	for len(r.pending) > 0 {
		c, err := r.ensureClientLocked()
		if err != nil {
			return fmt.Errorf("collector: %d records buffered: %w", len(r.pending), err)
		}
		if _, err := c.Submit(r.pending[0]); err != nil {
			// The connection died mid-flight; drop it and let the next
			// attempt redial.
			c.Close()
			r.client = nil
			return fmt.Errorf("collector: %d records buffered: %w", len(r.pending), err)
		}
		r.pending = r.pending[1:]
		r.sent++
	}
	return nil
}

func (r *ResilientClient) ensureClientLocked() (*Client, error) {
	if r.client != nil {
		return r.client, nil
	}
	retries := r.MaxRetries
	if retries <= 0 {
		retries = 3
	}
	backoff := r.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt < retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		c, err := Dial(r.Addr)
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.Ping(); err != nil {
			c.Close()
			lastErr = err
			continue
		}
		r.client = c
		return c, nil
	}
	if lastErr == nil {
		lastErr = errors.New("unreachable")
	}
	return nil, lastErr
}

func (r *ResilientClient) bufferLimit() int {
	if r.BufferLimit <= 0 {
		return 1024
	}
	return r.BufferLimit
}

// Pending returns the number of buffered records.
func (r *ResilientClient) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// Stats returns delivered and dropped counts.
func (r *ResilientClient) Stats() (sent, dropped int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sent, r.dropped
}

// Close releases the underlying connection; buffered records are kept
// and can still be flushed after a later Submit/Flush redials.
func (r *ResilientClient) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client != nil {
		err := r.client.Close()
		r.client = nil
		return err
	}
	return nil
}
