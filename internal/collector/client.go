package collector

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/storage"
)

// Browser is the surface the collection client's task manager probes.
// Each method corresponds to one parallel collection task; in a real
// deployment these are JavaScript modules running in the page, here
// they are served by an adapter over simulated visit state.
type Browser interface {
	HTTPHeaders() (HTTPHeaders, error)
	BrowserFeatures() (BrowserFeatures, error)
	OSFeatures() (OSFeatures, error)
	HardwareFeatures() (HardwareFeatures, error)
	IPFeatures() (IPFeatures, error)
	ConsistencyFeatures() (ConsistencyFeatures, error)
	GPUImage() (string, error)
}

// Feature-group payloads, one per collection task.
type (
	// HTTPHeaders is the header-derived feature group.
	HTTPHeaders struct {
		UserAgent, Accept, Encoding, Language string
		HeaderList                            []string
	}
	// BrowserFeatures is the JavaScript-probed browser feature group.
	BrowserFeatures struct {
		Plugins                                                       []string
		CookieEnabled, WebGL, LocalStorage, AddBehavior, OpenDatabase bool
		TimezoneOffset                                                int
	}
	// OSFeatures is the side-channel OS feature group.
	OSFeatures struct {
		Languages, Fonts []string
		CanvasHash       string
	}
	// HardwareFeatures is the hardware feature group.
	HardwareFeatures struct {
		GPUVendor, GPURenderer, GPUType string
		CPUCores                        int
		CPUClass, AudioInfo             string
		ScreenResolution                string
		ColorDepth                      int
		PixelRatio                      string
	}
	// IPFeatures is derived server-side from the connection address in a
	// real deployment; the simulator supplies it with the visit.
	IPFeatures struct {
		Addr, City, Region, Country string
	}
	// ConsistencyFeatures records whether independent collection methods
	// agreed.
	ConsistencyFeatures struct {
		Language, Resolution, OS, Browser bool
	}
)

// Collect runs the task manager: all seven collection tasks in
// parallel, assembled into one fingerprint. It fails fast on the first
// task error and respects ctx cancellation. The paper's tool finishes
// within one second; CollectTimeout mirrors that budget.
func Collect(ctx context.Context, b Browser) (*fingerprint.Fingerprint, error) {
	fp := &fingerprint.Fingerprint{}
	var mu sync.Mutex // guards fp against partially ordered writes
	g := newGroup(ctx)

	g.Go("http-headers", func() error {
		v, err := b.HTTPHeaders()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		fp.UserAgent, fp.Accept, fp.Encoding, fp.Language = v.UserAgent, v.Accept, v.Encoding, v.Language
		fp.HeaderList = v.HeaderList
		return nil
	})
	g.Go("browser-features", func() error {
		v, err := b.BrowserFeatures()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		fp.Plugins = v.Plugins
		fp.CookieEnabled, fp.WebGL, fp.LocalStorage = v.CookieEnabled, v.WebGL, v.LocalStorage
		fp.AddBehavior, fp.OpenDatabase = v.AddBehavior, v.OpenDatabase
		fp.TimezoneOffset = v.TimezoneOffset
		return nil
	})
	g.Go("os-features", func() error {
		v, err := b.OSFeatures()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		fp.Languages, fp.Fonts, fp.CanvasHash = v.Languages, v.Fonts, v.CanvasHash
		return nil
	})
	g.Go("hardware", func() error {
		v, err := b.HardwareFeatures()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		fp.GPUVendor, fp.GPURenderer, fp.GPUType = v.GPUVendor, v.GPURenderer, v.GPUType
		fp.CPUCores, fp.CPUClass, fp.AudioInfo = v.CPUCores, v.CPUClass, v.AudioInfo
		fp.ScreenResolution, fp.ColorDepth, fp.PixelRatio = v.ScreenResolution, v.ColorDepth, v.PixelRatio
		return nil
	})
	g.Go("ip", func() error {
		v, err := b.IPFeatures()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		fp.IPAddr, fp.IPCity, fp.IPRegion, fp.IPCountry = v.Addr, v.City, v.Region, v.Country
		return nil
	})
	g.Go("consistency", func() error {
		v, err := b.ConsistencyFeatures()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		fp.ConsLanguage, fp.ConsResolution, fp.ConsOS, fp.ConsBrowser = v.Language, v.Resolution, v.OS, v.Browser
		return nil
	})
	g.Go("gpu-image", func() error {
		v, err := b.GPUImage()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		fp.GPUImageHash = v
		return nil
	})

	if err := g.Wait(); err != nil {
		return nil, err
	}
	return fp, nil
}

// group is a minimal errgroup (stdlib-only): first error wins, context
// cancellation is honoured.
type group struct {
	ctx  context.Context
	wg   sync.WaitGroup
	once sync.Once
	err  error
}

func newGroup(ctx context.Context) *group { return &group{ctx: ctx} }

func (g *group) Go(name string, fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		done := make(chan error, 1)
		go func() { done <- fn() }()
		select {
		case err := <-done:
			if err != nil {
				g.once.Do(func() { g.err = fmt.Errorf("task %s: %w", name, err) })
			}
		case <-g.ctx.Done():
			g.once.Do(func() { g.err = fmt.Errorf("task %s: %w", name, g.ctx.Err()) })
		}
	}()
}

func (g *group) Wait() error {
	g.wg.Wait()
	return g.err
}

// Client is the transfer module: it submits collected records over one
// TCP connection using the hash-dedup protocol. A client starts in
// newline-JSON framing; Negotiate can switch the connection to binary
// frames.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder

	// binary framing state, set by Negotiate: br reads frames starting
	// with whatever the JSON decoder had buffered, wbuf is the reused
	// outbound frame.
	binary bool
	br     *bufio.Reader
	wbuf   []byte

	bytesSent atomic.Int64
	submitted atomic.Int64
}

// Dial connects to a collection server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("collector: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (handy for tests over
// net.Pipe).
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn}
	c.enc = json.NewEncoder(countingWriter{conn, &c.bytesSent})
	c.dec = json.NewDecoder(conn)
	return c
}

type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

// roundTrip sends one request and reads one response in whichever
// framing the connection is in.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	resp, err := c.exchange(req)
	if err != nil {
		return nil, err
	}
	if resp.Type == TypeError {
		return nil, fmt.Errorf("collector: server error: %s", resp.Error)
	}
	return resp, nil
}

// exchange performs one request/response cycle without interpreting
// TypeError — Negotiate needs the raw reply to fall back gracefully.
func (c *Client) exchange(req *Request) (*Response, error) {
	var resp Response
	if c.binary {
		payload, err := json.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("collector: send: %w", err)
		}
		c.wbuf = storage.AppendFrame(c.wbuf[:0], payload)
		if _, err := c.conn.Write(c.wbuf); err != nil {
			return nil, fmt.Errorf("collector: send: %w", err)
		}
		c.bytesSent.Add(int64(len(c.wbuf)))
		reply, err := storage.ReadFrame(c.br, 0)
		if err != nil {
			return nil, fmt.Errorf("collector: recv: %w", err)
		}
		if err := json.Unmarshal(reply, &resp); err != nil {
			return nil, fmt.Errorf("collector: recv: %w", err)
		}
		return &resp, nil
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("collector: send: %w", err)
	}
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("collector: recv: %w", err)
	}
	return &resp, nil
}

// Negotiate asks the server to switch the connection to binary
// framing and returns the framing now in effect. A legacy server
// answers hello with an error; the client stays on newline-JSON and
// keeps working, so Negotiate is safe to call against any server.
// Call it once, before submissions, from the goroutine that owns the
// client.
func (c *Client) Negotiate() (string, error) {
	if c.binary {
		return FramingBinary, nil
	}
	resp, err := c.exchange(&Request{Type: TypeHello, Framing: FramingBinary})
	if err != nil {
		return "", err
	}
	switch {
	case resp.Type == TypeHello && resp.Framing == FramingBinary:
		// The switch takes effect after the hello reply. The JSON
		// decoder may have read ahead past that reply; hand its
		// buffered remainder to the frame reader so no bytes are lost.
		br := bufio.NewReader(io.MultiReader(c.dec.Buffered(), c.conn))
		// The reply line's '\n' terminator is not part of the JSON
		// value, so the decoder leaves it unread; consume it here or
		// it would shift every binary frame header by one byte.
		switch b, err := br.ReadByte(); {
		case err != nil:
			return "", fmt.Errorf("collector: hello terminator: %w", err)
		case b != '\n':
			return "", fmt.Errorf("collector: unexpected byte %q after hello reply", b)
		}
		c.binary = true
		c.br = br
		return FramingBinary, nil
	case resp.Type == TypeHello || resp.Type == TypeError:
		// Declined, or a legacy server that does not know hello at
		// all: stay on JSON.
		return FramingJSON, nil
	default:
		return "", fmt.Errorf("collector: unexpected hello reply %q", resp.Type)
	}
}

// Framing returns the framing mode the connection is currently in.
func (c *Client) Framing() string {
	if c.binary {
		return FramingBinary
	}
	return FramingJSON
}

// Ping verifies the connection.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(&Request{Type: TypePing})
	if err != nil {
		return err
	}
	if resp.Type != TypePong {
		return fmt.Errorf("collector: unexpected ping reply %q", resp.Type)
	}
	return nil
}

// Submit transfers one record: first a hash check for the bulky list
// values, then the record with only the missing blobs attached. It
// returns the server-side record index.
func (c *Client) Submit(rec *fingerprint.Record) (int, error) {
	idx, _, err := c.SubmitSeq(rec, "", 0)
	return idx, err
}

// SubmitSeq is Submit with a client-assigned sequence ID: resubmitting
// the same (clientID, seq) after an ambiguous failure is safe — the
// server appends at most once and dup reports whether this delivery
// was the duplicate. Seq must be monotonic per clientID.
func (c *Client) SubmitSeq(rec *fingerprint.Record, clientID string, seq uint64) (idx int, dup bool, err error) {
	wire, refs, blobs := StripRecord(rec)
	hashes := make([]string, 0, len(blobs))
	for h := range blobs {
		hashes = append(hashes, h)
	}
	resp, err := c.roundTrip(&Request{Type: TypeCheck, Hashes: hashes})
	if err != nil {
		return 0, false, err
	}
	need := make(map[string][]byte, len(resp.Hashes))
	for _, h := range resp.Hashes {
		if blob, ok := blobs[h]; ok {
			need[h] = blob
		}
	}
	resp, err = c.roundTrip(&Request{Type: TypeSubmit, Record: wire, Refs: refs, Values: need, ClientID: clientID, Seq: seq})
	if err != nil {
		return 0, false, err
	}
	if resp.Type != TypeOK {
		return 0, false, fmt.Errorf("collector: unexpected submit reply %q", resp.Type)
	}
	c.submitted.Add(1)
	return resp.Index, resp.Dup, nil
}

// BatchRecord pairs a record with its client-assigned sequence number
// for SubmitBatch.
type BatchRecord struct {
	Rec *fingerprint.Record
	Seq uint64
}

// SubmitBatch transfers many records in two round trips: one hash
// check covering every dedupable value in the batch, then one batch
// request carrying all records plus only the missing blobs. The
// returned acks parallel the batch prefix the server processed: a
// short list (or one whose last entry has a non-empty Error) means the
// remaining records were never attempted and should stay buffered.
// Records must be in seq order. Works in either framing mode — the
// win from binary framing is that the whole batch is one frame instead
// of one syscall-sized line per round trip.
func (c *Client) SubmitBatch(batch []BatchRecord, clientID string) ([]Ack, error) {
	if len(batch) == 0 {
		return nil, nil
	}
	items := make([]BatchItem, len(batch))
	blobs := make(map[string][]byte)
	hashes := make([]string, 0, len(batch)*len(DedupFields))
	for i, b := range batch {
		wire, refs, bl := StripRecord(b.Rec)
		items[i] = BatchItem{Record: wire, Refs: refs, Seq: b.Seq}
		for h, v := range bl {
			if _, ok := blobs[h]; !ok {
				blobs[h] = v
				hashes = append(hashes, h)
			}
		}
	}
	resp, err := c.roundTrip(&Request{Type: TypeCheck, Hashes: hashes})
	if err != nil {
		return nil, err
	}
	need := make(map[string]bool, len(resp.Hashes))
	for _, h := range resp.Hashes {
		need[h] = true
	}
	// Attach each missing blob to the first item referencing it; the
	// server applies values before the item's append, and items are
	// processed in order, so later references resolve from the store.
	attached := make(map[string]bool, len(need))
	for i := range items {
		for _, h := range items[i].Refs {
			if need[h] && !attached[h] {
				if items[i].Values == nil {
					items[i].Values = make(map[string][]byte)
				}
				items[i].Values[h] = blobs[h]
				attached[h] = true
			}
		}
	}
	resp, err = c.roundTrip(&Request{Type: TypeBatch, Batch: items, ClientID: clientID})
	if err != nil {
		return nil, err
	}
	if resp.Type != TypeOK {
		return nil, fmt.Errorf("collector: unexpected batch reply %q", resp.Type)
	}
	for _, a := range resp.Acks {
		if a.Error == "" {
			c.submitted.Add(1)
		}
	}
	return resp.Acks, nil
}

// SubmitRaw transfers one record without dedup (the ablation baseline:
// every value travels every time).
func (c *Client) SubmitRaw(rec *fingerprint.Record) (int, error) {
	wire, refs, blobs := StripRecord(rec)
	resp, err := c.roundTrip(&Request{Type: TypeSubmit, Record: wire, Refs: refs, Values: blobs})
	if err != nil {
		return 0, err
	}
	if resp.Type != TypeOK {
		return 0, fmt.Errorf("collector: unexpected submit reply %q", resp.Type)
	}
	c.submitted.Add(1)
	return resp.Index, nil
}

// BytesSent returns the total bytes written to the connection.
func (c *Client) BytesSent() int64 { return c.bytesSent.Load() }

// Submitted returns the number of accepted submissions.
func (c *Client) Submitted() int64 { return c.submitted.Load() }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
