package collector

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fpdyn/internal/fingerprint"
)

// Browser is the surface the collection client's task manager probes.
// Each method corresponds to one parallel collection task; in a real
// deployment these are JavaScript modules running in the page, here
// they are served by an adapter over simulated visit state.
type Browser interface {
	HTTPHeaders() (HTTPHeaders, error)
	BrowserFeatures() (BrowserFeatures, error)
	OSFeatures() (OSFeatures, error)
	HardwareFeatures() (HardwareFeatures, error)
	IPFeatures() (IPFeatures, error)
	ConsistencyFeatures() (ConsistencyFeatures, error)
	GPUImage() (string, error)
}

// Feature-group payloads, one per collection task.
type (
	// HTTPHeaders is the header-derived feature group.
	HTTPHeaders struct {
		UserAgent, Accept, Encoding, Language string
		HeaderList                            []string
	}
	// BrowserFeatures is the JavaScript-probed browser feature group.
	BrowserFeatures struct {
		Plugins                                                       []string
		CookieEnabled, WebGL, LocalStorage, AddBehavior, OpenDatabase bool
		TimezoneOffset                                                int
	}
	// OSFeatures is the side-channel OS feature group.
	OSFeatures struct {
		Languages, Fonts []string
		CanvasHash       string
	}
	// HardwareFeatures is the hardware feature group.
	HardwareFeatures struct {
		GPUVendor, GPURenderer, GPUType string
		CPUCores                        int
		CPUClass, AudioInfo             string
		ScreenResolution                string
		ColorDepth                      int
		PixelRatio                      string
	}
	// IPFeatures is derived server-side from the connection address in a
	// real deployment; the simulator supplies it with the visit.
	IPFeatures struct {
		Addr, City, Region, Country string
	}
	// ConsistencyFeatures records whether independent collection methods
	// agreed.
	ConsistencyFeatures struct {
		Language, Resolution, OS, Browser bool
	}
)

// Collect runs the task manager: all seven collection tasks in
// parallel, assembled into one fingerprint. It fails fast on the first
// task error and respects ctx cancellation. The paper's tool finishes
// within one second; CollectTimeout mirrors that budget.
func Collect(ctx context.Context, b Browser) (*fingerprint.Fingerprint, error) {
	fp := &fingerprint.Fingerprint{}
	var mu sync.Mutex // guards fp against partially ordered writes
	g := newGroup(ctx)

	g.Go("http-headers", func() error {
		v, err := b.HTTPHeaders()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		fp.UserAgent, fp.Accept, fp.Encoding, fp.Language = v.UserAgent, v.Accept, v.Encoding, v.Language
		fp.HeaderList = v.HeaderList
		return nil
	})
	g.Go("browser-features", func() error {
		v, err := b.BrowserFeatures()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		fp.Plugins = v.Plugins
		fp.CookieEnabled, fp.WebGL, fp.LocalStorage = v.CookieEnabled, v.WebGL, v.LocalStorage
		fp.AddBehavior, fp.OpenDatabase = v.AddBehavior, v.OpenDatabase
		fp.TimezoneOffset = v.TimezoneOffset
		return nil
	})
	g.Go("os-features", func() error {
		v, err := b.OSFeatures()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		fp.Languages, fp.Fonts, fp.CanvasHash = v.Languages, v.Fonts, v.CanvasHash
		return nil
	})
	g.Go("hardware", func() error {
		v, err := b.HardwareFeatures()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		fp.GPUVendor, fp.GPURenderer, fp.GPUType = v.GPUVendor, v.GPURenderer, v.GPUType
		fp.CPUCores, fp.CPUClass, fp.AudioInfo = v.CPUCores, v.CPUClass, v.AudioInfo
		fp.ScreenResolution, fp.ColorDepth, fp.PixelRatio = v.ScreenResolution, v.ColorDepth, v.PixelRatio
		return nil
	})
	g.Go("ip", func() error {
		v, err := b.IPFeatures()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		fp.IPAddr, fp.IPCity, fp.IPRegion, fp.IPCountry = v.Addr, v.City, v.Region, v.Country
		return nil
	})
	g.Go("consistency", func() error {
		v, err := b.ConsistencyFeatures()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		fp.ConsLanguage, fp.ConsResolution, fp.ConsOS, fp.ConsBrowser = v.Language, v.Resolution, v.OS, v.Browser
		return nil
	})
	g.Go("gpu-image", func() error {
		v, err := b.GPUImage()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		fp.GPUImageHash = v
		return nil
	})

	if err := g.Wait(); err != nil {
		return nil, err
	}
	return fp, nil
}

// group is a minimal errgroup (stdlib-only): first error wins, context
// cancellation is honoured.
type group struct {
	ctx  context.Context
	wg   sync.WaitGroup
	once sync.Once
	err  error
}

func newGroup(ctx context.Context) *group { return &group{ctx: ctx} }

func (g *group) Go(name string, fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		done := make(chan error, 1)
		go func() { done <- fn() }()
		select {
		case err := <-done:
			if err != nil {
				g.once.Do(func() { g.err = fmt.Errorf("task %s: %w", name, err) })
			}
		case <-g.ctx.Done():
			g.once.Do(func() { g.err = fmt.Errorf("task %s: %w", name, g.ctx.Err()) })
		}
	}()
}

func (g *group) Wait() error {
	g.wg.Wait()
	return g.err
}

// Client is the transfer module: it submits collected records over one
// TCP connection using the hash-dedup protocol.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder

	bytesSent atomic.Int64
	submitted atomic.Int64
}

// Dial connects to a collection server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("collector: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (handy for tests over
// net.Pipe).
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn}
	c.enc = json.NewEncoder(countingWriter{conn, &c.bytesSent})
	c.dec = json.NewDecoder(conn)
	return c
}

type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

// roundTrip sends one request and reads one response.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("collector: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("collector: recv: %w", err)
	}
	if resp.Type == TypeError {
		return nil, fmt.Errorf("collector: server error: %s", resp.Error)
	}
	return &resp, nil
}

// Ping verifies the connection.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(&Request{Type: TypePing})
	if err != nil {
		return err
	}
	if resp.Type != TypePong {
		return fmt.Errorf("collector: unexpected ping reply %q", resp.Type)
	}
	return nil
}

// Submit transfers one record: first a hash check for the bulky list
// values, then the record with only the missing blobs attached. It
// returns the server-side record index.
func (c *Client) Submit(rec *fingerprint.Record) (int, error) {
	idx, _, err := c.SubmitSeq(rec, "", 0)
	return idx, err
}

// SubmitSeq is Submit with a client-assigned sequence ID: resubmitting
// the same (clientID, seq) after an ambiguous failure is safe — the
// server appends at most once and dup reports whether this delivery
// was the duplicate. Seq must be monotonic per clientID.
func (c *Client) SubmitSeq(rec *fingerprint.Record, clientID string, seq uint64) (idx int, dup bool, err error) {
	wire, refs, blobs := StripRecord(rec)
	hashes := make([]string, 0, len(blobs))
	for h := range blobs {
		hashes = append(hashes, h)
	}
	resp, err := c.roundTrip(&Request{Type: TypeCheck, Hashes: hashes})
	if err != nil {
		return 0, false, err
	}
	need := make(map[string][]byte, len(resp.Hashes))
	for _, h := range resp.Hashes {
		if blob, ok := blobs[h]; ok {
			need[h] = blob
		}
	}
	resp, err = c.roundTrip(&Request{Type: TypeSubmit, Record: wire, Refs: refs, Values: need, ClientID: clientID, Seq: seq})
	if err != nil {
		return 0, false, err
	}
	if resp.Type != TypeOK {
		return 0, false, fmt.Errorf("collector: unexpected submit reply %q", resp.Type)
	}
	c.submitted.Add(1)
	return resp.Index, resp.Dup, nil
}

// SubmitRaw transfers one record without dedup (the ablation baseline:
// every value travels every time).
func (c *Client) SubmitRaw(rec *fingerprint.Record) (int, error) {
	wire, refs, blobs := StripRecord(rec)
	resp, err := c.roundTrip(&Request{Type: TypeSubmit, Record: wire, Refs: refs, Values: blobs})
	if err != nil {
		return 0, err
	}
	if resp.Type != TypeOK {
		return 0, fmt.Errorf("collector: unexpected submit reply %q", resp.Type)
	}
	c.submitted.Add(1)
	return resp.Index, nil
}

// BytesSent returns the total bytes written to the connection.
func (c *Client) BytesSent() int64 { return c.bytesSent.Load() }

// Submitted returns the number of accepted submissions.
func (c *Client) Submitted() int64 { return c.submitted.Load() }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
