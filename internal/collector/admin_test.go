package collector

// End-to-end observability tests: a live fpserver-shaped stack (WAL →
// store → collector server → obs admin handler) scraped over HTTP.
// This is the acceptance path for the admin endpoint: /metrics must
// agree with Server.Stats(), recovery metrics must surface, and a
// poisoned WAL must flip /healthz to 503.

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"fpdyn/internal/faultinject"
	"fpdyn/internal/obs"
	"fpdyn/internal/storage"
)

// startWALServer assembles the production stack over a temp WAL dir,
// exactly as cmd/fpserver wires it, and returns the pieces plus the
// admin httptest server.
func startWALServer(t *testing.T, opts storage.WALOptions) (*Server, *storage.WAL, string, *httptest.Server) {
	t.Helper()
	store, wal, _, err := storage.Recover(opts)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	srv := NewServer(store)
	srv.Logf = t.Logf
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		wal.Close()
	})

	health := func() obs.HealthStatus {
		st := obs.HealthStatus{Healthy: true}
		if srv.Draining() {
			st.Draining = true
		}
		if werr := wal.Err(); werr != nil {
			st.Healthy = false
			st.WALError = werr.Error()
		}
		return st
	}
	admin := httptest.NewServer(obs.NewAdminHandler(health, srv.Metrics(), wal.Metrics(), obs.NewRuntimeRegistry()))
	t.Cleanup(admin.Close)
	return srv, wal, lis.Addr().String(), admin
}

func scrape(t *testing.T, admin *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := admin.Client().Get(admin.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminScrapeMatchesServerStats submits traffic, scrapes /metrics
// and /varz, and cross-checks every exported counter against the
// server's Stats() snapshot and the WAL's append activity.
func TestAdminScrapeMatchesServerStats(t *testing.T) {
	dir := t.TempDir()
	srv, _, addr, admin := startWALServer(t, storage.WALOptions{Dir: dir, Policy: storage.SyncAlways})

	r := fastResilient(addr)
	defer r.Close()
	for i := 0; i < 4; i++ {
		rec := sampleRecord()
		rec.UserID = string(rune('a' + i))
		if err := r.Submit(rec); err != nil {
			t.Fatal(err)
		}
	}

	code, body := scrape(t, admin, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	stats := srv.Stats()
	for _, want := range []string{
		"collector_records_accepted_total 4",
		// The resilient client negotiates binary framing and delivers
		// each flush as a batch request.
		`collector_requests_total{verb="batch"} 4`,
		`collector_requests_total{verb="hello"} 1`,
		"collector_request_seconds_count",
		"wal_appends_total",
		"wal_fsync_seconds_count",
		"go_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if stats.RecordsAccepted != 4 {
		t.Errorf("Stats().RecordsAccepted = %d, want 4", stats.RecordsAccepted)
	}

	code, body = scrape(t, admin, "/varz")
	if code != http.StatusOK {
		t.Fatalf("/varz status = %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/varz not JSON: %v", err)
	}
	if got := snap.Counters["collector_records_accepted_total"]; got != stats.RecordsAccepted {
		t.Errorf("varz records_accepted = %d, Stats() = %d", got, stats.RecordsAccepted)
	}
	if got := snap.Counters["collector_bytes_received_total"]; got != stats.BytesReceived {
		t.Errorf("varz bytes_received = %d, Stats() = %d", got, stats.BytesReceived)
	}
	// Request latencies were observed for every round trip (4 submits
	// plus their checks and the dial ping).
	lat := snap.Histograms["collector_request_seconds"]
	if lat.Count < 8 {
		t.Errorf("request latency count = %d, want ≥ 8", lat.Count)
	}
	// Each durable submit fsynced at least once (policy always): the
	// WAL histograms carry real observations.
	if fs := snap.Histograms["wal_fsync_seconds"]; fs.Count < 4 {
		t.Errorf("wal fsync count = %d, want ≥ 4", fs.Count)
	}

	code, body = scrape(t, admin, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d (%s), want 200", code, body)
	}
}

// TestAdminRecoveryMetrics restarts the stack over an existing WAL dir
// and checks the replay counters surface on the new instance's scrape.
func TestAdminRecoveryMetrics(t *testing.T) {
	dir := t.TempDir()
	{
		srv, _, addr, _ := startWALServer(t, storage.WALOptions{Dir: dir, Policy: storage.SyncAlways})
		r := fastResilient(addr)
		for i := 0; i < 3; i++ {
			rec := sampleRecord()
			rec.UserID = string(rune('a' + i))
			if err := r.Submit(rec); err != nil {
				t.Fatal(err)
			}
		}
		r.Close()
		srv.Close() // SIGKILL-equivalent: tear down without a drain
	}

	_, _, _, admin := startWALServer(t, storage.WALOptions{Dir: dir, Policy: storage.SyncAlways})
	_, body := scrape(t, admin, "/metrics")
	if !strings.Contains(body, "wal_recovered_records 3") {
		t.Errorf("scrape after restart missing wal_recovered_records 3:\n%s",
			grepLines(body, "wal_recovered"))
	}
	if !strings.Contains(body, "wal_recovered_segments 1") {
		t.Errorf("scrape missing wal_recovered_segments 1:\n%s", grepLines(body, "wal_recovered"))
	}
}

// TestAdminHealthzPoisonedWAL injects an fsync fault so the WAL
// poisons itself mid-traffic, then checks the unhealthy surface: 503
// from /healthz with the sticky error in the body, wal_sticky_error=1
// on /metrics, and the submit refused.
func TestAdminHealthzPoisonedWAL(t *testing.T) {
	dir := t.TempDir()
	opts := storage.WALOptions{
		Dir:    dir,
		Policy: storage.SyncAlways,
		OpenFile: func(path string) (storage.SegmentFile, error) {
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			// Values and the record of the first submit survive; a later
			// fsync trips and poisons the log.
			return &faultinject.File{F: f, FailSyncAt: 6}, nil
		},
	}
	_, wal, addr, admin := startWALServer(t, opts)

	if code, _ := scrape(t, admin, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthy before fault: status = %d", code)
	}

	r := fastResilient(addr)
	defer r.Close()
	var sawError bool
	for i := 0; i < 8; i++ {
		rec := sampleRecord()
		rec.UserID = string(rune('a' + i))
		if err := r.Submit(rec); err != nil {
			sawError = true
			break
		}
	}
	if !sawError || wal.Err() == nil {
		t.Fatalf("fsync fault did not poison the WAL (err=%v)", wal.Err())
	}

	code, body := scrape(t, admin, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after poison = %d, want 503 (%s)", code, body)
	}
	var st obs.HealthStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Healthy || st.WALError == "" {
		t.Fatalf("health status = %+v, want unhealthy with WAL error", st)
	}

	_, metrics := scrape(t, admin, "/metrics")
	if !strings.Contains(metrics, "wal_sticky_error 1") {
		t.Errorf("metrics missing wal_sticky_error 1:\n%s", grepLines(metrics, "wal_sticky"))
	}
}

// grepLines filters body to lines containing needle, for terse failure
// output.
func grepLines(body, needle string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, needle) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
