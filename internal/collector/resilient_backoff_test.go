package collector

import (
	"errors"
	"net"
	"testing"
	"time"

	"fpdyn/internal/obs"
	"fpdyn/internal/storage"
)

// TestBackoffDelayCapAndJitter pins the dial backoff contract: every
// delay is full-jittered into (0, cap], the exponential doubling never
// exceeds MaxBackoff, and the default cap is ~5s.
func TestBackoffDelayCapAndJitter(t *testing.T) {
	r := NewResilientClient("127.0.0.1:1")
	r.Backoff = 10 * time.Millisecond
	r.MaxBackoff = 40 * time.Millisecond

	for attempt := 1; attempt <= 12; attempt++ {
		// Uncapped doubling would reach 10ms<<11 ≈ 20s; the cap bounds
		// every draw. Sample repeatedly: jitter is random.
		for i := 0; i < 50; i++ {
			d := r.backoffDelay(attempt)
			if d <= 0 {
				t.Fatalf("attempt %d: non-positive delay %v", attempt, d)
			}
			if d > r.MaxBackoff {
				t.Fatalf("attempt %d: delay %v exceeds MaxBackoff %v", attempt, d, r.MaxBackoff)
			}
		}
	}

	// Early attempts are bounded by the doubled base, not the cap.
	for i := 0; i < 50; i++ {
		if d := r.backoffDelay(1); d > 10*time.Millisecond {
			t.Fatalf("attempt 1 delay %v exceeds base backoff", d)
		}
		if d := r.backoffDelay(2); d > 20*time.Millisecond {
			t.Fatalf("attempt 2 delay %v exceeds doubled backoff", d)
		}
	}

	// Jitter must actually vary (full jitter, not a fixed sleep).
	seen := map[time.Duration]bool{}
	for i := 0; i < 100; i++ {
		seen[r.backoffDelay(3)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("no jitter observed: every delay identical")
	}

	// Defaults: zero-valued knobs resolve to 50ms base / 5s cap.
	d := NewResilientClient("127.0.0.1:1")
	for i := 0; i < 20; i++ {
		if got := d.backoffDelay(30); got > 5*time.Second {
			t.Fatalf("default cap: delay %v exceeds 5s", got)
		}
		if got := d.backoffDelay(1); got > 50*time.Millisecond {
			t.Fatalf("default base: delay %v exceeds 50ms", got)
		}
	}
}

// TestDialSleepAbortsOnClose pins the fix for the uninterruptible
// backoff sleep: Close while a flush is waiting out its backoff must
// wake the sleeper promptly instead of letting it hold sendMu for the
// rest of the window.
func TestDialSleepAbortsOnClose(t *testing.T) {
	// A reserved-then-closed port refuses instantly, so the submit's
	// time is spent in backoff sleeps, not in connect timeouts.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	r := NewResilientClient(addr)
	r.MaxRetries = 4
	r.Backoff = 2 * time.Second
	r.MaxBackoff = 2 * time.Second

	errCh := make(chan error, 1)
	start := time.Now()
	go func() {
		errCh <- r.Submit(sampleRecord())
	}()
	time.Sleep(50 * time.Millisecond) // let the flush fail its first dial and enter backoff
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("submit succeeded against a dead server")
		}
		if !errors.Is(err, ErrClientClosed) {
			t.Fatalf("submit error = %v, want ErrClientClosed in the chain", err)
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("submit took %v; the backoff sleep did not abort on Close", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("submit still sleeping 5s after Close")
	}

	// The record stays buffered and deliverable: Close is a connection
	// release, not a data drop.
	if r.Pending() != 1 {
		t.Fatalf("pending = %d after aborted dial, want 1", r.Pending())
	}
}

// TestDialAfterCloseStillWorks: Close must not permanently poison the
// client — a later Flush redials (the documented contract for draining
// a backlog after a restart).
func TestDialAfterCloseStillWorks(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	r := fastResilient(addr)
	if err := r.Submit(sampleRecord()); err == nil {
		t.Fatal("submit succeeded against a dead server")
	}
	r.Close()

	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	store := storage.NewStore()
	srv := NewServer(store)
	srv.Logf = t.Logf
	go srv.Serve(lis2)
	defer srv.Close()

	if err := r.Flush(); err != nil {
		t.Fatalf("flush after close: %v", err)
	}
	if store.Len() != 1 || r.Pending() != 0 {
		t.Fatalf("stored=%d pending=%d", store.Len(), r.Pending())
	}
}

// TestResilientInstrumentGauges wires a client into a registry and
// checks the delivery stats surface as live gauges.
func TestResilientInstrumentGauges(t *testing.T) {
	_, store, addr := startServer(t)
	r := fastResilient(addr)
	defer r.Close()

	reg := obs.NewRegistry()
	r.Instrument(reg)
	for i := 0; i < 3; i++ {
		if err := r.Submit(sampleRecord()); err != nil {
			t.Fatal(err)
		}
	}
	if store.Len() != 3 {
		t.Fatalf("stored = %d", store.Len())
	}
	snap := reg.Snapshot()
	key := func(name string) string { return name + `{client="` + r.ClientID + `"}` }
	if got := snap.Gauges[key("client_records_sent")]; got != 3 {
		t.Errorf("client_records_sent = %v, want 3 (gauges: %+v)", got, snap.Gauges)
	}
	if got := snap.Gauges[key("client_pending_records")]; got != 0 {
		t.Errorf("client_pending_records = %v, want 0", got)
	}
	if got := snap.Gauges[key("client_redials")]; got != 1 {
		t.Errorf("client_redials = %v, want 1 (the initial dial)", got)
	}
}
