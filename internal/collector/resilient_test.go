package collector

import (
	"net"
	"testing"
	"time"

	"fpdyn/internal/storage"
)

// fastResilient builds a client with test-friendly timings.
func fastResilient(addr string) *ResilientClient {
	r := NewResilientClient(addr)
	r.MaxRetries = 2
	r.Backoff = time.Millisecond
	return r
}

func TestResilientHappyPath(t *testing.T) {
	_, store, addr := startServer(t)
	r := fastResilient(addr)
	defer r.Close()
	for i := 0; i < 5; i++ {
		if err := r.Submit(sampleRecord()); err != nil {
			t.Fatal(err)
		}
	}
	if store.Len() != 5 || r.Pending() != 0 {
		t.Fatalf("stored=%d pending=%d", store.Len(), r.Pending())
	}
	st := r.Stats()
	if st.Sent != 5 || st.Dropped != 0 || st.Retransmits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResilientBuffersDuringOutage(t *testing.T) {
	// Reserve a port, then shut the listener so the address refuses
	// connections: the paper's partial-outage scenario.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	r := fastResilient(addr)
	defer r.Close()
	for i := 0; i < 3; i++ {
		if err := r.Submit(sampleRecord()); err == nil {
			t.Fatal("submit succeeded against a dead server")
		}
	}
	if r.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", r.Pending())
	}

	// The server comes back on the same address: the backlog flushes.
	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	store := storage.NewStore()
	srv := NewServer(store)
	srv.Logf = t.Logf
	go srv.Serve(lis2)
	defer srv.Close()

	if err := r.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	if store.Len() != 3 || r.Pending() != 0 {
		t.Fatalf("stored=%d pending=%d after recovery", store.Len(), r.Pending())
	}
}

func TestResilientBufferLimitDropsOldest(t *testing.T) {
	lis, _ := net.Listen("tcp", "127.0.0.1:0")
	addr := lis.Addr().String()
	lis.Close()

	r := fastResilient(addr)
	r.BufferLimit = 2
	defer r.Close()
	for i := 0; i < 5; i++ {
		rec := sampleRecord()
		rec.UserID = string(rune('a' + i))
		r.Submit(rec)
	}
	if r.Pending() != 2 {
		t.Fatalf("pending = %d, want 2 (limit)", r.Pending())
	}
	if st := r.Stats(); st.Dropped != 3 {
		t.Fatalf("dropped = %d, want 3", st.Dropped)
	}
}

// TestResilientPendingPromptDuringBackoff pins the fix for the redial
// loop sleeping its exponential backoff while holding the queue lock:
// Pending and Stats must answer promptly while a flush is stuck in
// backoff against a dead server.
func TestResilientPendingPromptDuringBackoff(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	r := NewResilientClient(addr)
	r.MaxRetries = 4
	r.Backoff = 150 * time.Millisecond // total backoff ≈ 150+300+600ms
	defer r.Close()

	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		r.Submit(sampleRecord()) // fails after the full backoff window
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the flush enter its backoff

	begin := time.Now()
	n := r.Pending()
	st := r.Stats()
	if d := time.Since(begin); d > 50*time.Millisecond {
		t.Fatalf("Pending/Stats blocked %v behind the dial backoff", d)
	}
	if n != 1 || st.Dropped != 0 {
		t.Fatalf("pending=%d stats=%+v", n, st)
	}

	// A concurrent Submit must also buffer without waiting out the
	// whole backoff (it blocks only on sendMu once the first flush
	// finishes, so measure just the buffering via Pending growth).
	<-done
	if r.Pending() != 1 {
		t.Fatalf("pending = %d after failed flush", r.Pending())
	}
}

func TestResilientRecoversFromMidStreamDisconnect(t *testing.T) {
	_, store, addr := startServer(t)
	r := fastResilient(addr)
	defer r.Close()
	if err := r.Submit(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	// Kill the live connection behind the client's back.
	r.mu.Lock()
	r.client.conn.Close()
	r.mu.Unlock()
	// The next submit fails over: buffered, then delivered on retry
	// (the redial succeeds because the server is still up).
	err := r.Submit(sampleRecord())
	if err != nil {
		// First flush attempt may fail while the broken conn drains;
		// an explicit flush must then succeed.
		if err := r.Flush(); err != nil {
			t.Fatalf("flush after reconnect: %v", err)
		}
	}
	if store.Len() != 2 || r.Pending() != 0 {
		t.Fatalf("stored=%d pending=%d", store.Len(), r.Pending())
	}
}
