package collector

// Tests for the hello/batch protocol extension: framing negotiation,
// binary round trips, per-record acks with abort-on-first-failure, and
// the resilient client's backlog coalescing.

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"fpdyn/internal/storage"
)

func batchOf(t *testing.T, n int, cid string, firstSeq uint64) []BatchRecord {
	t.Helper()
	out := make([]BatchRecord, n)
	for i := 0; i < n; i++ {
		rec := sampleRecord()
		rec.UserID = fmt.Sprintf("bu-%s-%d", cid, firstSeq+uint64(i))
		out[i] = BatchRecord{Rec: rec, Seq: firstSeq + uint64(i)}
	}
	return out
}

func TestNegotiateSwitchesToBinary(t *testing.T) {
	srv, store, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Framing(); got != FramingJSON {
		t.Fatalf("initial framing = %q", got)
	}
	f, err := c.Negotiate()
	if err != nil {
		t.Fatal(err)
	}
	if f != FramingBinary || c.Framing() != FramingBinary {
		t.Fatalf("negotiated framing = %q", f)
	}
	// Every verb works over binary frames on the same connection.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping over binary: %v", err)
	}
	if _, err := c.Submit(sampleRecord()); err != nil {
		t.Fatalf("submit over binary: %v", err)
	}
	acks, err := c.SubmitBatch(batchOf(t, 5, "bin", 1), "bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(acks) != 5 {
		t.Fatalf("acks = %d, want 5", len(acks))
	}
	for i, a := range acks {
		if a.Error != "" || a.Dup {
			t.Fatalf("ack %d: %+v", i, a)
		}
	}
	if store.Len() != 6 {
		t.Fatalf("store len = %d, want 6", store.Len())
	}
	if s := srv.Stats(); s.RecordsAccepted != 6 {
		t.Fatalf("accepted = %d", s.RecordsAccepted)
	}
	// Negotiating again is a no-op.
	if f, err := c.Negotiate(); err != nil || f != FramingBinary {
		t.Fatalf("re-negotiate: %q, %v", f, err)
	}
}

func TestNegotiateDeclinedStaysJSON(t *testing.T) {
	srv, store, addr := startServer(t)
	srv.DisableBinary = true
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.Negotiate()
	if err != nil {
		t.Fatal(err)
	}
	if f != FramingJSON || c.Framing() != FramingJSON {
		t.Fatalf("framing = %q, want json", f)
	}
	// The connection keeps working over JSON — including batches, which
	// are a request type, not a framing feature.
	if _, err := c.Submit(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	if acks, err := c.SubmitBatch(batchOf(t, 3, "js", 1), "js"); err != nil || len(acks) != 3 {
		t.Fatalf("json batch: %d acks, %v", len(acks), err)
	}
	if store.Len() != 4 {
		t.Fatalf("store len = %d", store.Len())
	}
}

// TestBatchAbortsAtFirstFailure: the server processes a batch in
// order, acks the prefix, reports the failing item, and never attempts
// the rest — the invariant that keeps per-shard idempotency tables
// monotonic.
func TestBatchAbortsAtFirstFailure(t *testing.T) {
	_, store, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	batch := batchOf(t, 5, "ab", 1)
	batch[2].Rec = nil // poison the middle item
	items := make([]BatchItem, len(batch))
	for i, b := range batch {
		if b.Rec == nil {
			items[i] = BatchItem{Seq: b.Seq} // submit without record
			continue
		}
		wire, refs, blobs := StripRecord(b.Rec)
		items[i] = BatchItem{Record: wire, Refs: refs, Values: blobs, Seq: b.Seq}
	}
	resp, err := c.roundTrip(&Request{Type: TypeBatch, Batch: items, ClientID: "ab"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Acks) != 3 {
		t.Fatalf("acks = %d, want 2 successes + 1 failure", len(resp.Acks))
	}
	if resp.Acks[0].Error != "" || resp.Acks[1].Error != "" {
		t.Fatalf("prefix not acked: %+v", resp.Acks)
	}
	if resp.Acks[2].Error == "" {
		t.Fatal("failing item not reported")
	}
	// Items after the failure were never attempted.
	if store.Len() != 2 {
		t.Fatalf("store len = %d, want 2", store.Len())
	}
	if seq, _ := store.LastSeq("ab"); seq != 2 {
		t.Fatalf("lastSeq = %d, want 2", seq)
	}
}

// TestBatchRetransmitDedupes: resubmitting a whole batch after an
// ambiguous failure yields dup acks, not double appends.
func TestBatchRetransmitDedupes(t *testing.T) {
	_, store, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Negotiate(); err != nil {
		t.Fatal(err)
	}
	batch := batchOf(t, 4, "rt", 1)
	if _, err := c.SubmitBatch(batch, "rt"); err != nil {
		t.Fatal(err)
	}
	acks, err := c.SubmitBatch(batch, "rt")
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range acks {
		if !a.Dup {
			t.Fatalf("ack %d not marked dup: %+v", i, a)
		}
	}
	if store.Len() != 4 {
		t.Fatalf("store len = %d after retransmit", store.Len())
	}
}

// TestResilientClientCoalescesBacklog: records buffered during an
// outage drain in batches, not one round trip each.
func TestResilientClientCoalescesBacklog(t *testing.T) {
	srv, store, addr := startServer(t)
	r := NewResilientClient(addr)
	r.MaxRetries = 2
	r.Backoff = time.Millisecond
	r.BatchSize = 8
	defer r.Close()

	for i := 0; i < 24; i++ {
		rec := sampleRecord()
		rec.UserID = fmt.Sprintf("co-%d", i)
		if err := r.Submit(rec); err != nil {
			t.Fatal(err)
		}
	}
	if store.Len() != 24 {
		t.Fatalf("store len = %d", store.Len())
	}
	if p := r.Pending(); p != 0 {
		t.Fatalf("pending = %d after flush", p)
	}
	if s := srv.Stats(); s.RecordsAccepted != 24 {
		t.Fatalf("accepted = %d", s.RecordsAccepted)
	}
}

// TestResilientClientBatchDrainAfterOutage: the queue built up while
// the server is down drains in ceil(n/BatchSize) batch requests once
// it returns.
func TestResilientClientBatchDrainAfterOutage(t *testing.T) {
	// Reserve an address, keep the server down while buffering.
	srv0, _, addr := startServer(t)
	srv0.Close()

	r := NewResilientClient(addr)
	r.MaxRetries = 1
	r.Backoff = time.Millisecond
	r.BatchSize = 8
	defer r.Close()
	const n = 20
	for i := 0; i < n; i++ {
		rec := sampleRecord()
		rec.UserID = fmt.Sprintf("dr-%d", i)
		r.Submit(rec) // server down: buffered
	}
	if p := r.Pending(); p != n {
		t.Fatalf("pending = %d, want %d", p, n)
	}

	// Server returns on the same address.
	st2 := storage.NewStore()
	srv2 := NewServer(st2)
	srv2.Logf = t.Logf
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	go srv2.Serve(lis)
	defer srv2.Close()

	if err := r.Flush(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st2.Len() != n {
		t.Fatalf("delivered %d records, want %d", st2.Len(), n)
	}
	// ceil(20/8) = 3 batch round trips, not 20 per-record submits.
	var b strings.Builder
	if err := srv2.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	scrape := b.String()
	if !strings.Contains(scrape, `collector_requests_total{verb="batch"} 3`) {
		t.Errorf("scrape missing 3 batch requests:\n%s", scrape)
	}
	if !strings.Contains(scrape, `collector_requests_total{verb="submit"} 0`) {
		t.Errorf("per-record submits used despite batching:\n%s", scrape)
	}
	stats := r.Stats()
	if stats.Sent != n || stats.Dropped != 0 {
		t.Fatalf("stats %+v", stats)
	}
}

// TestBinaryOversizedFrameRejected: the frame-size guard holds in
// binary mode too. The server is built by hand: MaxFrame must be set
// before Serve.
func TestBinaryOversizedFrameRejected(t *testing.T) {
	srv := NewServer(storage.NewStore())
	srv.Logf = t.Logf
	srv.MaxFrame = 4 << 10
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Negotiate(); err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord()
	huge := make([]string, 2000)
	for i := range huge {
		huge[i] = fmt.Sprintf("Font Family %04d With A Long Name", i)
	}
	rec.FP.Fonts = huge
	if _, err := c.SubmitRaw(rec); err == nil {
		t.Fatal("oversized binary frame accepted")
	}
}
