// Package collector implements the measurement platform of Figure 1:
// a data-collection client whose task manager gathers feature groups in
// parallel, a transfer module that content-addresses bulky feature
// values so the client sends only a hash when the server already holds
// the value (§2.2.1), and a TCP data-storage server that reconstructs
// and appends full visit records to a storage.Store.
package collector

import (
	"encoding/json"
	"fmt"
	"sort"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/hashutil"
)

// Message types of the wire protocol. The protocol is newline-delimited
// JSON over a single TCP connection; every request gets exactly one
// response.
const (
	TypeCheck  = "check"  // client → server: which of these value hashes do you have?
	TypeSubmit = "submit" // client → server: a record plus any values you were missing
	TypePing   = "ping"   // client → server: liveness probe
	TypeHello  = "hello"  // client → server: framing negotiation
	TypeBatch  = "batch"  // client → server: many submits in one frame

	TypeNeed  = "need"  // server → client: the hashes it does not have
	TypeOK    = "ok"    // server → client: record accepted
	TypePong  = "pong"  // server → client: liveness reply
	TypeError = "error" // server → client: request rejected
)

// Framing modes a hello exchange can negotiate. The connection starts
// in newline-JSON; when client and server agree on binary, both sides
// switch — after the hello response — to CRC-32C length-prefixed
// frames (storage.AppendFrame/ReadFrame) carrying the same JSON
// payloads. A legacy server answers hello with TypeError and the
// client simply stays on JSON, so new clients interoperate with old
// servers and vice versa.
const (
	FramingJSON   = "json"
	FramingBinary = "binary"
)

// BatchItem is one submit inside a TypeBatch request. The batch shares
// one ClientID (on the Request); each item carries its own sequence
// number and any value blobs the server was missing.
type BatchItem struct {
	Record *fingerprint.Record `json:"record"`
	Refs   map[string]string   `json:"refs,omitempty"`
	Values map[string][]byte   `json:"values,omitempty"`
	Seq    uint64              `json:"seq,omitempty"`
}

// Ack is one record's outcome inside a TypeBatch response. A non-empty
// Error marks where the server stopped: the ack list is always a
// prefix of the batch (plus at most one failed item), and nothing past
// it was ACKed. Un-acked items may or may not have reached stable
// storage (a group commit can fail after some shards committed); the
// client retransmits them and the per-client sequence table turns any
// that did land into dups — preserving the in-order idempotency
// invariant either way.
type Ack struct {
	Index int    `json:"index"`
	Dup   bool   `json:"dup,omitempty"`
	Error string `json:"error,omitempty"`
}

// Request is a client→server message.
type Request struct {
	Type   string              `json:"type"`
	Hashes []string            `json:"hashes,omitempty"`
	Record *fingerprint.Record `json:"record,omitempty"`
	// Refs maps dedup field names to the hash of their content; the
	// record is sent with those fields stripped.
	Refs map[string]string `json:"refs,omitempty"`
	// Values carries the content for hashes the server reported missing.
	Values map[string][]byte `json:"values,omitempty"`
	// ClientID/Seq form the client-assigned sequence ID of a submit.
	// Seq is monotonic per ClientID; a reconnecting client resubmits an
	// un-ACKed record under its original Seq and the server appends it
	// at most once. Empty ClientID opts out (legacy submits).
	ClientID string `json:"cid,omitempty"`
	Seq      uint64 `json:"seq,omitempty"`
	// Framing is the framing mode a hello requests.
	Framing string `json:"framing,omitempty"`
	// Batch carries the submits of a TypeBatch request, in sequence
	// order.
	Batch []BatchItem `json:"batch,omitempty"`
}

// Response is a server→client message.
type Response struct {
	Type   string   `json:"type"`
	Hashes []string `json:"hashes,omitempty"`
	Index  int      `json:"index,omitempty"`
	Error  string   `json:"error,omitempty"`
	// Dup marks an OK reply for a submit whose (ClientID, Seq) the
	// server had already applied: the record was not appended again.
	Dup bool `json:"dup,omitempty"`
	// Framing is the framing mode a hello reply confirms.
	Framing string `json:"framing,omitempty"`
	// Acks are the per-record outcomes of a TypeBatch request.
	Acks []Ack `json:"acks,omitempty"`
}

// Dedup field names: the list-valued features bulky enough to be worth
// content addressing. The font list alone dominates record size.
const (
	FieldFonts   = "fonts"
	FieldPlugins = "plugins"
	FieldHeaders = "hdrs"
	FieldLangs   = "langs"
)

// DedupFields enumerates the dedupable fields in a stable order.
var DedupFields = []string{FieldFonts, FieldPlugins, FieldHeaders, FieldLangs}

// fieldValue extracts a dedup field's list from a fingerprint.
func fieldValue(fp *fingerprint.Fingerprint, field string) []string {
	switch field {
	case FieldFonts:
		return fp.Fonts
	case FieldPlugins:
		return fp.Plugins
	case FieldHeaders:
		return fp.HeaderList
	case FieldLangs:
		return fp.Languages
	}
	return nil
}

// setFieldValue writes a dedup field's list back into a fingerprint.
func setFieldValue(fp *fingerprint.Fingerprint, field string, v []string) {
	switch field {
	case FieldFonts:
		fp.Fonts = v
	case FieldPlugins:
		fp.Plugins = v
	case FieldHeaders:
		fp.HeaderList = v
	case FieldLangs:
		fp.Languages = v
	}
}

// encodeList canonically serializes a list value for content
// addressing.
func encodeList(v []string) []byte {
	b, _ := json.Marshal(v) // string slices cannot fail to marshal
	return b
}

// decodeList parses a stored list value.
func decodeList(b []byte) ([]string, error) {
	var v []string
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, fmt.Errorf("collector: bad list value: %w", err)
	}
	return v, nil
}

// hashList returns the content address of a list value.
func hashList(v []string) string {
	return hashutil.SHA1HexBytes(encodeList(v))
}

// StripRecord splits a record into its wire form: a copy with dedup
// fields removed, the field→hash reference map, and the hash→content
// blobs. The caller sends only the blobs the server reports missing.
func StripRecord(r *fingerprint.Record) (wire *fingerprint.Record, refs map[string]string, blobs map[string][]byte) {
	cp := *r
	fp := r.FP.Clone()
	cp.FP = fp
	refs = make(map[string]string, len(DedupFields))
	blobs = make(map[string][]byte, len(DedupFields))
	for _, field := range DedupFields {
		v := fieldValue(fp, field)
		h := hashList(v)
		refs[field] = h
		blobs[h] = encodeList(v)
		setFieldValue(fp, field, nil)
	}
	return &cp, refs, blobs
}

// RestoreRecord reinstates dedup fields on a wire record using the
// resolver (the server's value store).
func RestoreRecord(wire *fingerprint.Record, refs map[string]string, lookup func(hash string) ([]byte, bool)) (*fingerprint.Record, error) {
	fields := make([]string, 0, len(refs))
	for f := range refs {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	for _, field := range fields {
		h := refs[field]
		content, ok := lookup(h)
		if !ok {
			return nil, fmt.Errorf("collector: missing value %s for field %s", h, field)
		}
		v, err := decodeList(content)
		if err != nil {
			return nil, err
		}
		setFieldValue(wire.FP, field, v)
	}
	return wire, nil
}
