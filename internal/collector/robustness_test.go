package collector

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"fpdyn/internal/storage"
)

// Robustness: the server must survive malformed clients without
// crashing or wedging other connections.

func rawConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestServerSurvivesGarbageBytes(t *testing.T) {
	_, store, addr := startServer(t)
	conn := rawConn(t, addr)
	conn.Write([]byte("\x00\xff{not json at all\n\n\x13"))
	conn.Close()

	// A well-behaved client still works afterwards.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Submit(sampleRecord()); err != nil {
		t.Fatalf("server wedged after garbage: %v", err)
	}
	if store.Len() != 1 {
		t.Fatalf("stored %d", store.Len())
	}
}

func TestServerSurvivesAbruptDisconnects(t *testing.T) {
	_, _, addr := startServer(t)
	for i := 0; i < 20; i++ {
		conn := rawConn(t, addr)
		// Half-written request, then slam the connection.
		fmt.Fprintf(conn, `{"type":"sub`)
		conn.Close()
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("server unhealthy after disconnect storm: %v", err)
	}
}

func TestServerRejectsSubmitWithDanglingRefs(t *testing.T) {
	// Refs naming hashes that are neither known nor supplied must fail
	// cleanly, not store a half-restored record.
	_, store, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wire, refs, _ := StripRecord(sampleRecord())
	refs[FieldFonts] = "0000000000000000000000000000000000000000"
	_, err = c.roundTrip(&Request{Type: TypeSubmit, Record: wire, Refs: refs})
	if err == nil || !strings.Contains(err.Error(), "missing value") {
		t.Fatalf("err = %v", err)
	}
	if store.Len() != 0 {
		t.Fatal("half-restored record stored")
	}
}

func TestServerHandlesOversizeCheck(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hashes := make([]string, 5000)
	for i := range hashes {
		hashes[i] = fmt.Sprintf("%040d", i)
	}
	resp, err := c.roundTrip(&Request{Type: TypeCheck, Hashes: hashes})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Hashes) != len(hashes) {
		t.Fatalf("need %d of %d", len(resp.Hashes), len(hashes))
	}
}

func TestDispatchTableDriven(t *testing.T) {
	// The dispatcher in isolation, without sockets.
	srv := NewServer(storage.NewStore())
	cases := []struct {
		req  Request
		want string
	}{
		{Request{Type: TypePing}, TypePong},
		{Request{Type: TypeCheck, Hashes: []string{"x"}}, TypeNeed},
		{Request{Type: TypeSubmit}, TypeError},
		{Request{Type: "nonsense"}, TypeError},
		{Request{}, TypeError},
	}
	for _, c := range cases {
		if got := srv.dispatch(&c.req); got.Type != c.want {
			t.Errorf("dispatch(%q) = %q, want %q", c.req.Type, got.Type, c.want)
		}
	}
}

func TestRequestJSONStability(t *testing.T) {
	// The wire format is a compatibility surface: field names must not
	// drift silently.
	req := Request{Type: TypeSubmit, Hashes: []string{"h"}, Refs: map[string]string{"fonts": "h"}}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"type"`, `"hashes"`, `"refs"`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("wire field %s missing in %s", want, b)
		}
	}
}
