package collector

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/population"
	"fpdyn/internal/storage"
)

func sampleRecord() *fingerprint.Record {
	return &fingerprint.Record{
		Time:   time.Date(2018, 2, 1, 12, 0, 0, 0, time.UTC),
		UserID: "u-1",
		Cookie: "ck-1",
		FP: &fingerprint.Fingerprint{
			UserAgent:        "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/63.0.3239.132 Safari/537.36",
			Accept:           "text/html",
			Encoding:         "gzip, deflate, br",
			Language:         "en-US,en;q=0.9",
			HeaderList:       []string{"Host", "User-Agent", "Accept"},
			Plugins:          []string{"Chrome PDF Plugin", "Native Client"},
			CookieEnabled:    true,
			WebGL:            true,
			LocalStorage:     true,
			TimezoneOffset:   60,
			Languages:        []string{"en-US"},
			Fonts:            []string{"Arial", "Calibri", "Verdana", "Tahoma", "Georgia"},
			CanvasHash:       "aabbccdd",
			GPUVendor:        "NVIDIA Corporation",
			GPURenderer:      "GeForce GTX 970",
			GPUType:          "ANGLE (Direct3D11)",
			CPUCores:         4,
			CPUClass:         "x86",
			AudioInfo:        "channels:2;rate:44100",
			ScreenResolution: "1920x1080",
			ColorDepth:       24,
			PixelRatio:       "1",
			IPAddr:           "100.1.1.1",
			IPCity:           "Berlin",
			IPRegion:         "Berlin",
			IPCountry:        "Germany",
			ConsLanguage:     true, ConsResolution: true, ConsOS: true, ConsBrowser: true,
			GPUImageHash: "gg",
		},
		Browser: "Chrome", OS: "Windows",
	}
}

func TestCollectAssemblesAllGroups(t *testing.T) {
	rec := sampleRecord()
	fp, err := Collect(context.Background(), RecordBrowser{rec})
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Equal(rec.FP) {
		t.Fatal("collected fingerprint differs from source")
	}
}

type faultyBrowser struct {
	RecordBrowser
	failTask string
}

func (b faultyBrowser) OSFeatures() (OSFeatures, error) {
	if b.failTask == "os" {
		return OSFeatures{}, errors.New("font side channel blocked")
	}
	return b.RecordBrowser.OSFeatures()
}

func (b faultyBrowser) GPUImage() (string, error) {
	if b.failTask == "gpu" {
		return "", errors.New("webgl unavailable")
	}
	return b.RecordBrowser.GPUImage()
}

func TestCollectTaskFailure(t *testing.T) {
	_, err := Collect(context.Background(), faultyBrowser{RecordBrowser{sampleRecord()}, "os"})
	if err == nil {
		t.Fatal("expected task error")
	}
	_, err = Collect(context.Background(), faultyBrowser{RecordBrowser{sampleRecord()}, "gpu"})
	if err == nil {
		t.Fatal("expected gpu task error")
	}
}

func TestCollectContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Collect(ctx, RecordBrowser{sampleRecord()}); err == nil {
		t.Fatal("expected context error")
	}
}

func TestStripRestoreRoundTrip(t *testing.T) {
	rec := sampleRecord()
	wire, refs, blobs := StripRecord(rec)
	if wire.FP.Fonts != nil || wire.FP.Plugins != nil {
		t.Fatal("dedup fields not stripped")
	}
	if rec.FP.Fonts == nil {
		t.Fatal("StripRecord mutated the original")
	}
	if len(refs) != len(DedupFields) {
		t.Fatalf("refs = %v", refs)
	}
	restored, err := RestoreRecord(wire, refs, func(h string) ([]byte, bool) {
		b, ok := blobs[h]
		return b, ok
	})
	if err != nil {
		t.Fatal(err)
	}
	if !restored.FP.Equal(rec.FP) {
		t.Fatal("restored record differs")
	}
}

func TestRestoreMissingValue(t *testing.T) {
	wire, refs, _ := StripRecord(sampleRecord())
	_, err := RestoreRecord(wire, refs, func(string) ([]byte, bool) { return nil, false })
	if err == nil {
		t.Fatal("expected missing-value error")
	}
}

// startServer spins up a TCP server on an ephemeral port; it is torn
// down at test end.
func startServer(t *testing.T) (*Server, *storage.Store, string) {
	t.Helper()
	store := storage.NewStore()
	srv := NewServer(store)
	srv.Logf = t.Logf
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, store, lis.Addr().String()
}

func TestEndToEndSubmit(t *testing.T) {
	srv, store, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord()
	idx, err := c.Submit(rec)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 || store.Len() != 1 {
		t.Fatalf("idx=%d len=%d", idx, store.Len())
	}
	got := store.Record(0)
	if !got.FP.Equal(rec.FP) {
		t.Fatal("stored record differs from submitted")
	}
	if got.UserID != rec.UserID || got.Cookie != rec.Cookie {
		t.Fatal("metadata lost")
	}
	if s := srv.Stats(); s.RecordsAccepted != 1 || s.ValuesReceived == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDedupSavesTransfer(t *testing.T) {
	srv, _, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rec := sampleRecord()
	if _, err := c.Submit(rec); err != nil {
		t.Fatal(err)
	}
	afterFirst := c.BytesSent()
	// Second submission of the same feature values: every blob dedups.
	rec2 := sampleRecord()
	rec2.Cookie = "ck-2"
	if _, err := c.Submit(rec2); err != nil {
		t.Fatal(err)
	}
	secondCost := c.BytesSent() - afterFirst
	if secondCost >= afterFirst {
		t.Errorf("dedup saved nothing: first=%dB second=%dB", afterFirst, secondCost)
	}
	if s := srv.Stats(); s.ValuesDeduped == 0 {
		t.Fatalf("no values deduped: %+v", s)
	}
}

func TestSubmitRawNoDedup(t *testing.T) {
	srv, _, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.SubmitRaw(sampleRecord()); err != nil {
			t.Fatal(err)
		}
	}
	if s := srv.Stats(); s.ValuesDeduped != 0 {
		t.Fatalf("raw path should never dedup: %+v", s)
	}
}

func TestServerRejectsBadSubmit(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.roundTrip(&Request{Type: TypeSubmit}); err == nil {
		t.Fatal("expected error for empty submit")
	}
	if _, err := c.roundTrip(&Request{Type: "bogus"}); err == nil {
		t.Fatal("expected error for unknown type")
	}
	// The connection must still work afterwards.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection broken after error: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, store, addr := startServer(t)
	const clients = 8
	const perClient = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < perClient; j++ {
				rec := sampleRecord()
				rec.UserID = "u" + string(rune('a'+i))
				if _, err := c.Submit(rec); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if store.Len() != clients*perClient {
		t.Fatalf("stored %d records, want %d", store.Len(), clients*perClient)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _, _ := startServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPlatformIngestSimulatedWorld drives the full pipeline: simulate a
// small world, push every record through collect+submit, and verify the
// server-side dataset equals the generated one.
func TestPlatformIngestSimulatedWorld(t *testing.T) {
	ds := population.Simulate(population.DefaultConfig(40))
	_, store, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, rec := range ds.Records {
		fp, err := Collect(context.Background(), RecordBrowser{rec})
		if err != nil {
			t.Fatal(err)
		}
		full := *rec
		full.FP = fp
		if _, err := c.Submit(&full); err != nil {
			t.Fatal(err)
		}
	}
	if store.Len() != len(ds.Records) {
		t.Fatalf("stored %d of %d records", store.Len(), len(ds.Records))
	}
	for i, rec := range ds.Records {
		if !store.Record(i).FP.Equal(rec.FP) {
			t.Fatalf("record %d corrupted in transit", i)
		}
	}
}

func BenchmarkSubmitDedup(b *testing.B) {
	store := storage.NewStore()
	srv := NewServer(store)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()
	c, err := Dial(lis.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	rec := sampleRecord()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Submit(rec); err != nil {
			b.Fatal(err)
		}
	}
}
