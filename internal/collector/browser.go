package collector

import "fpdyn/internal/fingerprint"

// RecordBrowser adapts a simulated visit record to the Browser
// interface, so the full client pipeline (parallel task collection →
// dedup transfer → server reconstruction) can be driven from generated
// datasets.
type RecordBrowser struct {
	Rec *fingerprint.Record
}

var _ Browser = RecordBrowser{}

// HTTPHeaders implements Browser.
func (b RecordBrowser) HTTPHeaders() (HTTPHeaders, error) {
	fp := b.Rec.FP
	return HTTPHeaders{
		UserAgent: fp.UserAgent, Accept: fp.Accept, Encoding: fp.Encoding,
		Language: fp.Language, HeaderList: fp.HeaderList,
	}, nil
}

// BrowserFeatures implements Browser.
func (b RecordBrowser) BrowserFeatures() (BrowserFeatures, error) {
	fp := b.Rec.FP
	return BrowserFeatures{
		Plugins: fp.Plugins, CookieEnabled: fp.CookieEnabled, WebGL: fp.WebGL,
		LocalStorage: fp.LocalStorage, AddBehavior: fp.AddBehavior,
		OpenDatabase: fp.OpenDatabase, TimezoneOffset: fp.TimezoneOffset,
	}, nil
}

// OSFeatures implements Browser.
func (b RecordBrowser) OSFeatures() (OSFeatures, error) {
	fp := b.Rec.FP
	return OSFeatures{Languages: fp.Languages, Fonts: fp.Fonts, CanvasHash: fp.CanvasHash}, nil
}

// HardwareFeatures implements Browser.
func (b RecordBrowser) HardwareFeatures() (HardwareFeatures, error) {
	fp := b.Rec.FP
	return HardwareFeatures{
		GPUVendor: fp.GPUVendor, GPURenderer: fp.GPURenderer, GPUType: fp.GPUType,
		CPUCores: fp.CPUCores, CPUClass: fp.CPUClass, AudioInfo: fp.AudioInfo,
		ScreenResolution: fp.ScreenResolution, ColorDepth: fp.ColorDepth,
		PixelRatio: fp.PixelRatio,
	}, nil
}

// IPFeatures implements Browser.
func (b RecordBrowser) IPFeatures() (IPFeatures, error) {
	fp := b.Rec.FP
	return IPFeatures{Addr: fp.IPAddr, City: fp.IPCity, Region: fp.IPRegion, Country: fp.IPCountry}, nil
}

// ConsistencyFeatures implements Browser.
func (b RecordBrowser) ConsistencyFeatures() (ConsistencyFeatures, error) {
	fp := b.Rec.FP
	return ConsistencyFeatures{
		Language: fp.ConsLanguage, Resolution: fp.ConsResolution,
		OS: fp.ConsOS, Browser: fp.ConsBrowser,
	}, nil
}

// GPUImage implements Browser.
func (b RecordBrowser) GPUImage() (string, error) { return b.Rec.FP.GPUImageHash, nil }
