package collector

// Sharded chaos matrix: the kill/recover story of chaos_test.go run
// against the sharded backend at Shards=1 and Shards=4. Because the
// resilient client drains its full backlog at the end, the accepted
// set is exactly the submitted set in every configuration, and the
// canonical serialization (shard-count invariant by construction) must
// produce identical digests across the matrix.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"fpdyn/internal/storage"
)

func shardedChaosDigest(t *testing.T, ss *storage.ShardedStore) string {
	t.Helper()
	var b bytes.Buffer
	if _, err := ss.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b.Bytes())
	return hex.EncodeToString(sum[:])
}

// runShardedChaos submits a fixed deterministic record stream through
// repeated server kills against a WAL root with the given shard count,
// drains fully on a final healthy server, checks exactly-once
// delivery, and returns the canonical digest of the recovered state.
func runShardedChaos(t *testing.T, shards int) string {
	t.Helper()
	opts := storage.ShardedWALOptions{
		WALOptions: storage.WALOptions{Dir: t.TempDir(), Policy: storage.SyncAlways},
		Shards:     shards,
	}

	// Reserve an address the restarting servers can share.
	lis0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis0.Addr().String()
	lis0.Close()

	r := NewResilientClient(addr)
	r.MaxRetries = 1
	r.Backoff = time.Millisecond
	r.BatchSize = 8
	defer r.Close()

	const total = 48
	const rounds = 3
	submitted := 0
	for round := 0; round < rounds; round++ {
		ss, _, err := storage.RecoverSharded(opts)
		if err != nil {
			t.Fatalf("round %d recover: %v", round, err)
		}
		lis, err := net.Listen("tcp", addr)
		if err != nil {
			ss.CloseWALs()
			t.Skipf("could not rebind %s: %v", addr, err)
		}
		srv := NewServer(ss)
		srv.Logf = func(string, ...any) {}
		go srv.Serve(lis)

		for i := 0; i < total/rounds; i++ {
			rec := sampleRecord()
			rec.UserID = fmt.Sprintf("sm-%d", submitted)
			rec.Cookie = fmt.Sprintf("sck-%d", submitted%5)
			submitted++
			r.Submit(rec) // errors just leave it buffered
			if i == total/rounds/2 {
				srv.Close() // kill mid-round; later submits buffer
			}
		}
		srv.Close()
		if err := ss.CloseWALs(); err != nil {
			t.Fatalf("round %d close: %v", round, err)
		}
	}

	// Final healthy server: drain everything still pending.
	ss, _, err := storage.RecoverSharded(opts)
	if err != nil {
		t.Fatalf("final recover: %v", err)
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		ss.CloseWALs()
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv := NewServer(ss)
	srv.Logf = t.Logf
	go srv.Serve(lis)
	if err := r.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	srv.Close()

	// Exactly-once delivery at this shard count.
	if ss.Len() != submitted {
		t.Fatalf("shards=%d: %d records stored, %d submitted", shards, ss.Len(), submitted)
	}
	for i := 0; i < submitted; i++ {
		uid := fmt.Sprintf("sm-%d", i)
		if n := len(ss.ByUser(uid)); n != 1 {
			t.Fatalf("shards=%d: record %s delivered %d times", shards, uid, n)
		}
	}
	stats := r.Stats()
	if stats.Dropped != 0 {
		t.Fatalf("shards=%d: buffer dropped %d records", shards, stats.Dropped)
	}

	digest := shardedChaosDigest(t, ss)
	if err := ss.CloseWALs(); err != nil {
		t.Fatal(err)
	}

	// Recovery worker invariance on the post-chaos log: replaying the
	// shards serially or wide yields the same state.
	for _, workers := range []int{1, 8} {
		wopts := opts
		wopts.RecoveryWorkers = workers
		got, _, err := storage.RecoverSharded(wopts)
		if err != nil {
			t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
		}
		if d := shardedChaosDigest(t, got); d != digest {
			t.Fatalf("shards=%d workers=%d: digest %s != live %s", shards, workers, d, digest)
		}
		if err := got.CloseWALs(); err != nil {
			t.Fatal(err)
		}
	}
	return digest
}

// TestChaosShardedMatrix runs the kill/recover scenario at Shards=1
// and Shards=4 and asserts the final canonical digests are identical:
// partitioning changes where records live, never what was accepted.
func TestChaosShardedMatrix(t *testing.T) {
	digests := make(map[int]string)
	var mu sync.Mutex
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			d := runShardedChaos(t, shards)
			mu.Lock()
			digests[shards] = d
			mu.Unlock()
		})
	}
	if len(digests) != 2 {
		t.Skip("a matrix cell skipped (address rebind raced); digest comparison not possible")
	}
	if digests[1] != digests[4] {
		t.Fatalf("digest at shards=1 (%s) != shards=4 (%s)", digests[1], digests[4])
	}
}
