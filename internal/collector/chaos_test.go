package collector

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"fpdyn/internal/faultinject"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/storage"
)

// Chaos tests: kill the server mid-stream (Close tears connections
// down without responses, the in-process SIGKILL equivalent — with
// fsync=Always every ACKed record hit stable storage first), restart
// via Recover, and assert the crash-safety contract: zero ACKed-record
// loss, no double appends, and recovered indexes byte-identical to an
// uninterrupted run over the same records.

// chaosRecord builds a record whose UserID encodes its identity so
// post-recovery presence and duplicate checks are exact.
func chaosRecord(cid string, seq uint64) *fingerprint.Record {
	rec := sampleRecord()
	rec.UserID = fmt.Sprintf("u-%s-%d", cid, seq)
	rec.Cookie = fmt.Sprintf("ck-%s", cid)
	return rec
}

// storeDigest serializes records plus the byUser/byCookie index shape
// for byte-identical comparison across recoveries.
func storeDigest(t *testing.T, s *storage.Store) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	recs := s.Records()
	if err := enc.Encode(recs); err != nil {
		t.Fatal(err)
	}
	users := make(map[string]bool)
	cookies := make(map[string]bool)
	for _, r := range recs {
		users[r.UserID] = true
		if r.Cookie != "" {
			cookies[r.Cookie] = true
		}
	}
	encodeIndex := func(m map[string]bool, lookup func(string) []*fingerprint.Record) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			hits := lookup(k)
			uids := make([]string, len(hits))
			for i, r := range hits {
				uids[i] = r.UserID
			}
			if err := enc.Encode([]any{k, uids}); err != nil {
				t.Fatal(err)
			}
		}
	}
	encodeIndex(users, s.ByUser)
	encodeIndex(cookies, s.ByCookie)
	return buf.String()
}

func recoverStore(t *testing.T, dir string) (*storage.Store, *storage.WAL, storage.RecoveryStats) {
	t.Helper()
	st, w, stats, err := storage.Recover(storage.WALOptions{Dir: dir, Policy: storage.SyncAlways})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return st, w, stats
}

// TestChaosKillRecoverNoAcceptedLoss is the acceptance scenario:
// several rounds of concurrent clients streaming submissions into a
// WAL-backed server that is killed abruptly mid-stream, recovered, and
// restarted. Every ACKed record must be present after every recovery,
// exactly once, and re-recovering the same log must be byte-identical.
func TestChaosKillRecoverNoAcceptedLoss(t *testing.T) {
	dir := t.TempDir()
	const rounds = 3
	const workers = 4

	acked := make(map[string]bool) // UserID → ACK observed by a client
	var ackedMu sync.Mutex
	seqs := make([]uint64, workers) // per-client monotonic sequence

	for round := 0; round < rounds; round++ {
		st, wal, _ := recoverStore(t, dir)

		// Invariant on entry: everything ACKed in earlier rounds is here.
		ackedMu.Lock()
		for uid := range acked {
			if len(st.ByUser(uid)) != 1 {
				t.Fatalf("round %d: ACKed record %s has %d copies after recovery", round, uid, len(st.ByUser(uid)))
			}
		}
		ackedMu.Unlock()

		srv := NewServer(st)
		srv.Logf = func(string, ...any) {} // connection teardown noise is expected
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveDone := make(chan struct{})
		go func() { srv.Serve(lis); close(serveDone) }()
		addr := lis.Addr().String()

		var wg sync.WaitGroup
		for wkr := 0; wkr < workers; wkr++ {
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				cid := fmt.Sprintf("c%d", wkr)
				c, err := Dial(addr)
				if err != nil {
					return // server already gone
				}
				defer c.Close()
				for i := 0; i < 50; i++ {
					seq := seqs[wkr] + 1
					rec := chaosRecord(cid, seq)
					if _, _, err := c.SubmitSeq(rec, cid, seq); err != nil {
						return // killed mid-stream: this record was never ACKed
					}
					seqs[wkr] = seq
					ackedMu.Lock()
					acked[rec.UserID] = true
					ackedMu.Unlock()
				}
			}(wkr)
		}
		// Kill mid-stream: abrupt teardown, no drain, no responses for
		// in-flight requests.
		time.Sleep(time.Duration(5+round*7) * time.Millisecond)
		srv.Close()
		wg.Wait()
		<-serveDone
		wal.Close()
	}

	if len(acked) == 0 {
		t.Fatal("chaos produced no ACKed records; timings too tight")
	}

	// Final recovery: zero ACKed loss, no duplicates.
	st, wal, _ := recoverStore(t, dir)
	defer wal.Close()
	for uid := range acked {
		if n := len(st.ByUser(uid)); n != 1 {
			t.Fatalf("ACKed record %s present %d times after final recovery", uid, n)
		}
	}

	// Byte-identical recovery: replaying the same WAL twice yields the
	// same records and indexes, and they match an uninterrupted
	// in-memory run over the same record stream.
	st2, wal2, _ := recoverStore(t, dir)
	defer wal2.Close()
	if storeDigest(t, st) != storeDigest(t, st2) {
		t.Fatal("two recoveries of the same WAL differ")
	}
	uninterrupted := storage.NewStore()
	for _, rec := range st.Records() {
		uninterrupted.Append(rec)
	}
	if storeDigest(t, st) != storeDigest(t, uninterrupted) {
		t.Fatal("recovered indexes differ from an uninterrupted run")
	}
}

// TestChaosResilientClientAcrossRestarts drives the client half of the
// §2.2 outage story against real crashes: a ResilientClient keeps
// submitting while the server is repeatedly killed and recovered on
// the same address. Sequence IDs make its retransmissions exact, so
// after the final flush every record is delivered exactly once.
func TestChaosResilientClientAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	r := NewResilientClient(addr)
	r.MaxRetries = 2
	r.Backoff = time.Millisecond
	defer r.Close()

	const total = 40
	const rounds = 4
	submitted := 0
	for round := 0; round < rounds; round++ {
		st, wal, _ := recoverStore(t, dir)
		lis, err := net.Listen("tcp", addr)
		if err != nil {
			t.Skipf("could not rebind %s: %v", addr, err)
		}
		srv := NewServer(st)
		srv.Logf = func(string, ...any) {}
		go srv.Serve(lis)

		for i := 0; i < total/rounds; i++ {
			rec := sampleRecord()
			rec.UserID = fmt.Sprintf("ru-%d", submitted)
			submitted++
			r.Submit(rec) // errors just leave it buffered
			if i == total/rounds/2 {
				srv.Close() // kill mid-round; later submits buffer
			}
		}
		srv.Close()
		wal.Close()
	}

	// Final, healthy server: drain the backlog.
	st, wal, _ := recoverStore(t, dir)
	defer wal.Close()
	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv := NewServer(st)
	srv.Logf = t.Logf
	go srv.Serve(lis2)
	defer srv.Close()
	if err := r.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}

	// Exactly-once delivery: every submitted record present once, and
	// the totals reconcile (sent - retransmits + dropped == submitted).
	for i := 0; i < submitted; i++ {
		uid := fmt.Sprintf("ru-%d", i)
		if n := len(st.ByUser(uid)); n != 1 {
			t.Fatalf("record %s delivered %d times", uid, n)
		}
	}
	stats := r.Stats()
	if stats.Dropped != 0 {
		t.Fatalf("buffer evicted %d records with limit %d", stats.Dropped, r.BufferLimit)
	}
	if got := stats.Sent - stats.Retransmits; got != int64(submitted) {
		t.Fatalf("sent-retransmits = %d, want %d (stats %+v)", got, submitted, stats)
	}
}

// TestSeqIdempotentAcrossRecovery pins the deterministic core of the
// chaos property: a resubmitted (clientID, seq) is deduped both on a
// live server and after a crash + recovery rebuilt the table from WAL.
func TestSeqIdempotentAcrossRecovery(t *testing.T) {
	dir := t.TempDir()
	st, wal, _ := recoverStore(t, dir)
	srv := NewServer(st)
	srv.Logf = t.Logf
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	rec := chaosRecord("idem", 1)
	idx, dup, err := c.SubmitSeq(rec, "idem", 1)
	if err != nil || dup || idx != 0 {
		t.Fatalf("first: idx=%d dup=%v err=%v", idx, dup, err)
	}
	// Live retransmission: same sequence ID, no double append.
	idx2, dup2, err := c.SubmitSeq(rec, "idem", 1)
	if err != nil || !dup2 || idx2 != 0 {
		t.Fatalf("retransmit: idx=%d dup=%v err=%v", idx2, dup2, err)
	}
	if st.Len() != 1 {
		t.Fatalf("len = %d", st.Len())
	}
	if s := srv.Stats(); s.RecordsAccepted != 1 || s.RecordsDuped != 1 {
		t.Fatalf("stats = %+v", s)
	}
	c.Close()
	srv.Close()
	wal.Close()

	// Crash + restart: the idempotency table is rebuilt from the WAL.
	st2, wal2, _ := recoverStore(t, dir)
	defer wal2.Close()
	srv2 := NewServer(st2)
	srv2.Logf = t.Logf
	lis2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(lis2)
	defer srv2.Close()
	c2, err := Dial(lis2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, dup, err := c2.SubmitSeq(rec, "idem", 1); err != nil || !dup {
		t.Fatalf("post-recovery retransmit: dup=%v err=%v", dup, err)
	}
	if st2.Len() != 1 {
		t.Fatalf("post-recovery len = %d", st2.Len())
	}
}

// TestChaosTornConnectionMidFrame uses fault injection to tear the
// client connection partway through a submit frame: the server must
// not store a half record, and the retransmission over a fresh
// connection must land exactly once.
func TestChaosTornConnectionMidFrame(t *testing.T) {
	dir := t.TempDir()
	st, wal, _ := recoverStore(t, dir)
	defer wal.Close()
	srv := NewServer(st)
	srv.Logf = func(string, ...any) {}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()

	// Allow the ping and the check round trip through, then tear the
	// conn 100 bytes into the submit frame.
	raw, err := net.DialTimeout("tcp", lis.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	fc := &faultinject.Conn{
		Conn:        raw,
		WriteScript: &faultinject.Script{FailAfter: 600},
		CloseOnTrip: true,
	}
	c := NewClient(fc)
	rec := chaosRecord("torn", 1)
	_, _, err = c.SubmitSeq(rec, "torn", 1)
	if err == nil {
		t.Fatal("submit succeeded over a torn connection")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Logf("torn submit failed with: %v", err) // transport error also acceptable
	}
	c.Close()

	// Give the server a beat to process the torn frame, then verify no
	// partial record landed.
	time.Sleep(20 * time.Millisecond)
	if st.Len() != 0 {
		t.Fatalf("half record stored: len=%d", st.Len())
	}

	// Retransmit over a healthy connection with the same sequence ID.
	c2, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, dup, err := c2.SubmitSeq(rec, "torn", 1); err != nil || dup {
		t.Fatalf("retransmit: dup=%v err=%v", dup, err)
	}
	if st.Len() != 1 {
		t.Fatalf("len = %d", st.Len())
	}
}

// TestServerDisconnectsStalledWriter covers the slow-client guard: a
// client that stops reading responses cannot pin a handler past its
// write deadline.
func TestServerStalledClientDisconnected(t *testing.T) {
	st := storage.NewStore()
	srv := NewServer(st)
	srv.Logf = func(string, ...any) {}
	srv.ReadTimeout = 100 * time.Millisecond
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()

	// Connect and go silent: the read deadline must reap the handler.
	conn, err := net.DialTimeout("tcp", lis.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected server to close the idle connection")
	}
}

// TestServerRejectsOversizedFrame covers the inbound-blob guard: a
// request line beyond MaxFrame is refused and the connection closed
// before the payload is buffered in full.
func TestServerRejectsOversizedFrame(t *testing.T) {
	st := storage.NewStore()
	srv := NewServer(st)
	srv.Logf = func(string, ...any) {}
	srv.MaxFrame = 4 << 10
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()

	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rec := sampleRecord()
	huge := make([]string, 2000)
	for i := range huge {
		huge[i] = fmt.Sprintf("Font Family %04d With A Long Name", i)
	}
	rec.FP.Fonts = huge
	if _, err := c.SubmitRaw(rec); err == nil {
		t.Fatal("oversized submit accepted")
	}
	// The server itself is still healthy for well-behaved clients.
	c2, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Submit(sampleRecord()); err != nil {
		t.Fatalf("server wedged after oversized frame: %v", err)
	}
}
