package stemming

import (
	"testing"

	"fpdyn/internal/browserid"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/population"
	"fpdyn/internal/stats"
	"fpdyn/internal/useragent"
)

func TestStemStringVersions(t *testing.T) {
	a := StemString("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/63.0.3239.132 Safari/537.36")
	b := StemString("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.140 Safari/537.36")
	if a != b {
		t.Fatalf("stemmed UAs differ:\n%s\n%s", a, b)
	}
	// Different browsers must still stem apart.
	c := StemString("Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:58.0) Gecko/20100101 Firefox/58.0")
	if a == c {
		t.Fatal("Chrome and Firefox stem to the same value")
	}
}

func TestStemSurvivesBrowserUpdate(t *testing.T) {
	mk := func(v useragent.Version) *fingerprint.Fingerprint {
		ua := useragent.UA{Browser: useragent.Chrome, BrowserVersion: v, OS: useragent.Windows, OSVersion: useragent.V(10)}
		return &fingerprint.Fingerprint{UserAgent: ua.String(), ScreenResolution: "1920x1080", PixelRatio: "1"}
	}
	a, b := mk(useragent.V(63, 0, 3239, 132)), mk(useragent.V(64, 0, 3282, 140))
	if Stem(a).Hash(false) != Stem(b).Hash(false) {
		t.Fatal("stemming did not survive a browser update")
	}
}

func TestStemSurvivesZoomAndTravel(t *testing.T) {
	a := &fingerprint.Fingerprint{ScreenResolution: "1920x1080", PixelRatio: "1", TimezoneOffset: 60, IPCity: "Berlin"}
	b := &fingerprint.Fingerprint{ScreenResolution: "1536x864", PixelRatio: "1.25", TimezoneOffset: -300, IPCity: "New York"}
	if Stem(a).Hash(true) != Stem(b).Hash(true) {
		t.Fatal("stemming did not survive zoom + travel")
	}
}

func TestStemCannotSurviveDesktopRequest(t *testing.T) {
	// The paper's critique: a desktop-site request rewrites the UA
	// wholesale; no substring stemming can reconcile it.
	mob := useragent.UA{Browser: useragent.ChromeMobile, BrowserVersion: useragent.V(77, 0, 3865, 92),
		OS: useragent.Android, OSVersion: useragent.V(9), Device: "SM-N960U", Mobile: true}
	a := &fingerprint.Fingerprint{UserAgent: mob.String()}
	b := &fingerprint.Fingerprint{UserAgent: mob.RequestDesktop().String()}
	if Stem(a).UserAgent == Stem(b).UserAgent {
		t.Fatal("stemming should NOT reconcile a desktop request (paper's critique)")
	}
}

func TestStemDoesNotMutate(t *testing.T) {
	fp := &fingerprint.Fingerprint{UserAgent: "Chrome/63.0", IPCity: "Berlin", PixelRatio: "2"}
	Stem(fp)
	if fp.UserAgent != "Chrome/63.0" || fp.IPCity != "Berlin" || fp.PixelRatio != "2" {
		t.Fatal("Stem mutated its input")
	}
}

func TestAspectClass(t *testing.T) {
	cases := map[string]string{
		"1920x1080": "16:9",
		"1536x864":  "16:9", // zoomed 1920x1080
		"1440x900":  "16:10",
		"1280x1024": "other", // 5:4
		"800x600":   "4:3",
		"360x740":   "mobile-tall",
		"garbage":   "other",
		"x100":      "other",
	}
	for res, want := range cases {
		if got := aspectClass(res); got != want {
			t.Errorf("aspectClass(%q) = %q, want %q", res, got, want)
		}
	}
}

func TestStripQValues(t *testing.T) {
	if got := stripQValues("de-DE,de;q=0.9,en;q=0.8"); got != "de-DE,de,en" {
		t.Fatalf("stripQValues = %q", got)
	}
}

// The paper's two claims about stemming, verified on a simulated world.
func TestStemmingClaimsOnWorld(t *testing.T) {
	cfg := population.DefaultConfig(1200)
	cfg.Seed = 5
	ds := population.Simulate(cfg)
	gt := browserid.Build(ds.Records)

	// Claim 1: stemming improves stability — many raw changes vanish.
	rawChanged, stemChanged, pairs := StabilityGain(gt.Instances)
	if pairs == 0 || rawChanged == 0 {
		t.Fatal("no dynamics to stem")
	}
	t.Logf("stability: %d/%d pairs changed raw, %d/%d stemmed", rawChanged, pairs, stemChanged, pairs)
	if stemChanged >= rawChanged {
		t.Errorf("stemming removed no instability: %d vs %d", stemChanged, rawChanged)
	}

	// ... but identity swaps survive stemming (still "changed").
	foundSwap := false
	for _, recs := range gt.Instances {
		for i := 1; i < len(recs); i++ {
			if recs[i-1].Mobile != recs[i].Mobile { // desktop request in the stream
				if Stem(recs[i-1].FP).Hash(false) != Stem(recs[i].FP).Hash(false) {
					foundSwap = true
				}
			}
		}
	}
	if !foundSwap {
		t.Log("no desktop-request pair sampled; swap claim exercised in unit test instead")
	}

	// Claim 2: stemming grows anonymous sets — identifiability drops.
	inst := func(i int) string { return gt.IDs[i] }
	rawCurve := stats.AnonymitySets(ds.Records, inst, false, 5)
	stemmed := make([]*fingerprint.Record, len(ds.Records))
	for i, r := range ds.Records {
		cp := *r
		cp.FP = Stem(r.FP)
		stemmed[i] = &cp
	}
	stemCurve := stats.AnonymitySets(stemmed, inst, false, 5)
	t.Logf("identifiable at k=1: raw %.1f%%, stemmed %.1f%%",
		rawCurve.PctIdentifiable[0], stemCurve.PctIdentifiable[0])
	if stemCurve.PctIdentifiable[0] >= rawCurve.PctIdentifiable[0] {
		t.Errorf("stemming did not reduce identifiability: %.1f%% vs %.1f%%",
			stemCurve.PctIdentifiable[0], rawCurve.PctIdentifiable[0])
	}
	_ = dynamics.Changed // keep import shape stable if claims extend
}
