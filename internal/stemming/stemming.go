// Package stemming implements the feature-stemming baseline of
// Pugliese et al. (PETS 2020), which the paper's related-work section
// critiques: stem volatile substrings out of features (version numbers
// in the user agent, the subversion tail of the OS, zoom-scaled
// display values) so that fingerprints stay stable across updates.
//
// The paper makes two quantitative claims about this approach:
//
//  1. stemming increases stability, but cannot capture identity swaps
//     like a desktop-site request — those still need dynamics-aware
//     linking; and
//  2. stemming grows the anonymous set of each fingerprint, reducing
//     fingerprintability in general.
//
// This package exists to verify both claims against the same synthetic
// worlds the rest of the reproduction uses (see the tests and
// cmd/fpreport -what stemming).
package stemming

import (
	"regexp"
	"strings"

	"fpdyn/internal/fingerprint"
)

var (
	// reVersionToken matches dotted version numbers inside strings.
	reVersionToken = regexp.MustCompile(`\d+(\.\d+)+`)
	// reLoneNumber matches standalone integers (build ids, rv: tokens).
	reLoneNumber = regexp.MustCompile(`\d+`)
)

// StemString removes version-like substrings from a string feature,
// replacing them with a placeholder so that "Chrome/63.0.3239.132" and
// "Chrome/64.0.3282.140" stem to the same value.
func StemString(s string) string {
	s = reVersionToken.ReplaceAllString(s, "#")
	s = reLoneNumber.ReplaceAllString(s, "#")
	return s
}

// Stem produces the stemmed view of a fingerprint: a copy whose
// volatile components are normalized. The original is not modified.
func Stem(fp *fingerprint.Fingerprint) *fingerprint.Fingerprint {
	st := fp.Clone()
	st.UserAgent = StemString(fp.UserAgent)
	// Header details: encodings/accept rarely carry versions but may
	// carry q-values; strip those too.
	st.Accept = StemString(fp.Accept)
	st.Language = stripQValues(fp.Language)
	// Zoom-scaled display values: keep only the aspect ratio class and
	// drop the pixel ratio (both move under zoom).
	st.ScreenResolution = aspectClass(fp.ScreenResolution)
	st.PixelRatio = ""
	// Timezone moves with travel; stem it out entirely.
	st.TimezoneOffset = 0
	// IP features are inherently volatile.
	st.IPAddr, st.IPCity, st.IPRegion, st.IPCountry = "", "", "", ""
	return st
}

// stripQValues removes ";q=..." weights from an Accept-Language value.
func stripQValues(s string) string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if i := strings.IndexByte(p, ';'); i >= 0 {
			p = p[:i]
		}
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return strings.Join(out, ",")
}

// aspectClass maps a WxH resolution to a coarse aspect-ratio class
// ("16:9", "16:10", "4:3", "mobile-tall", or "other").
func aspectClass(res string) string {
	i := strings.IndexByte(res, 'x')
	if i <= 0 {
		return "other"
	}
	w, okW := atoi(res[:i])
	h, okH := atoi(res[i+1:])
	if !okW || !okH || h == 0 || w == 0 {
		return "other"
	}
	r := float64(w) / float64(h)
	switch {
	case approx(r, 16.0/9.0):
		return "16:9"
	case approx(r, 16.0/10.0):
		return "16:10"
	case approx(r, 4.0/3.0):
		return "4:3"
	case r < 1:
		return "mobile-tall"
	}
	return "other"
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 0.03
}

func atoi(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		n = n*10 + int(s[i]-'0')
	}
	return n, true
}

// StabilityGain compares raw and stemmed dynamics over grouped
// instance records: the share of consecutive-visit pairs whose raw
// fingerprint changed but whose stemmed fingerprint did not. This is
// the improvement feature stemming buys.
func StabilityGain(instances map[string][]*fingerprint.Record) (rawChanged, stemChanged, pairs int) {
	for _, recs := range instances {
		for i := 1; i < len(recs); i++ {
			pairs++
			a, b := recs[i-1].FP, recs[i].FP
			if a.Hash(false) != b.Hash(false) {
				rawChanged++
				if Stem(a).Hash(false) != Stem(b).Hash(false) {
					stemChanged++
				}
			}
		}
	}
	return rawChanged, stemChanged, pairs
}
