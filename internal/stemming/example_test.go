package stemming_test

import (
	"fmt"

	"fpdyn/internal/stemming"
)

// ExampleStemString shows version stripping: two Chrome releases stem
// to the same value.
func ExampleStemString() {
	a := stemming.StemString("Chrome/63.0.3239.132 Safari/537.36")
	b := stemming.StemString("Chrome/64.0.3282.140 Safari/537.36")
	fmt.Println(a)
	fmt.Println(a == b)
	// Output:
	// Chrome/# Safari/#
	// true
}
