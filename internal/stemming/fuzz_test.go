package stemming

import (
	"strings"
	"testing"
)

// FuzzStemString: stemming must be idempotent and version-free.
func FuzzStemString(f *testing.F) {
	f.Add("Chrome/63.0.3239.132 Safari/537.36")
	f.Add("")
	f.Add("1.2.3 4 5.6")
	f.Fuzz(func(t *testing.T, s string) {
		st := StemString(s)
		if StemString(st) != st {
			t.Fatalf("stemming not idempotent on %q: %q vs %q", s, st, StemString(st))
		}
		for _, c := range st {
			if c >= '0' && c <= '9' {
				t.Fatalf("digits survived stemming %q: %q", s, st)
			}
		}
	})
}

// FuzzStripQValues: output never contains a semicolon and is idempotent.
func FuzzStripQValues(f *testing.F) {
	f.Add("de-DE,de;q=0.9,en;q=0.8")
	f.Add("")
	f.Add(";;;")
	f.Fuzz(func(t *testing.T, s string) {
		out := stripQValues(s)
		if strings.ContainsRune(out, ';') {
			t.Fatalf("q-value survived: %q", out)
		}
		if stripQValues(out) != out {
			t.Fatalf("not idempotent: %q", s)
		}
	})
}
