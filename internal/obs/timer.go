package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// StageTiming is the wall time and throughput of one named pipeline
// stage — the schema of the machine-readable stage-timing JSON emitted
// alongside BENCH_pipeline.json.
type StageTiming struct {
	Stage      string  `json:"stage"`
	Records    int     `json:"records"`
	Seconds    float64 `json:"seconds"`
	RecsPerSec float64 `json:"records_per_sec"`
}

// Timings collects named stage timings in completion order. A nil
// *Timings is a valid no-op collector, so pipeline code can thread one
// through unconditionally and pay nothing when timing is off.
type Timings struct {
	mu     sync.Mutex
	stages []StageTiming
	snap   *Snapshot
}

// Observe appends one finished stage.
func (t *Timings) Observe(stage string, records int, elapsed time.Duration) {
	if t == nil {
		return
	}
	sec := elapsed.Seconds()
	rps := 0.0
	if sec > 0 {
		rps = float64(records) / sec
	}
	t.mu.Lock()
	t.stages = append(t.stages, StageTiming{Stage: stage, Records: records, Seconds: sec, RecsPerSec: rps})
	t.mu.Unlock()
}

// Start begins timing a stage; the returned func stops the clock and
// records the stage with the given record count:
//
//	stop := timings.Start("ground_truth")
//	gt := browserid.BuildParallel(records, workers)
//	stop(len(records))
func (t *Timings) Start(stage string) func(records int) {
	if t == nil {
		return func(int) {}
	}
	begin := time.Now()
	return func(records int) {
		t.Observe(stage, records, time.Since(begin))
	}
}

// Stages returns a copy of the recorded stages in completion order.
func (t *Timings) Stages() []StageTiming {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageTiming, len(t.stages))
	copy(out, t.stages)
	return out
}

// TotalSeconds sums the recorded stage durations.
func (t *Timings) TotalSeconds() float64 {
	var total float64
	for _, s := range t.Stages() {
		total += s.Seconds
	}
	return total
}

// SetSnapshot attaches a metrics snapshot to the stage-timing document
// — the streaming pipeline stores its final registry scrape (spill
// runs/bytes, merge heap peaks) here so the `-stage-timing` JSON
// carries the counters alongside the wall times.
func (t *Timings) SetSnapshot(s Snapshot) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.snap = &s
	t.mu.Unlock()
}

// stageTimingDoc is the on-disk JSON envelope.
type stageTimingDoc struct {
	TotalSeconds float64       `json:"total_seconds"`
	Stages       []StageTiming `json:"stages"`
	Metrics      *Snapshot     `json:"metrics,omitempty"`
}

// WriteJSON renders the stage-timing document.
func (t *Timings) WriteJSON(w io.Writer) error {
	doc := stageTimingDoc{TotalSeconds: t.TotalSeconds(), Stages: t.Stages()}
	if t != nil {
		t.mu.Lock()
		doc.Metrics = t.snap
		t.mu.Unlock()
	}
	if doc.Stages == nil {
		doc.Stages = []StageTiming{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteFile writes the stage-timing document to path.
func (t *Timings) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
