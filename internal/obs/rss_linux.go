//go:build linux

package obs

import "syscall"

// PeakRSSBytes returns the process's peak resident set size in bytes
// (ru_maxrss; the kernel reports kilobytes on Linux), or 0 if the
// rusage call fails. The streaming benchmarks record this as the
// bounded-memory headline number.
func PeakRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Maxrss * 1024
}
