//go:build !linux

package obs

// PeakRSSBytes returns 0 on platforms without a portable peak-RSS
// source; benchmark emitters treat 0 as "not measured".
func PeakRSSBytes() int64 { return 0 }
