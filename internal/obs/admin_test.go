package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// adminFixture builds an admin handler over two registries and a
// switchable health state.
func adminFixture() (http.Handler, *Registry, *HealthStatus) {
	server := NewRegistry()
	server.Counter("collector_requests_total", "reqs", "verb", "submit").Add(5)
	wal := NewRegistry()
	wal.Histogram("wal_fsync_seconds", "fsync", nil).Observe(0.001)
	health := &HealthStatus{Healthy: true}
	h := NewAdminHandler(func() HealthStatus { return *health }, server, wal)
	return h, server, health
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminMetricsAndVarz(t *testing.T) {
	h, _, _ := adminFixture()
	srv := httptest.NewServer(h)
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		`collector_requests_total{verb="submit"} 5`,
		"# TYPE wal_fsync_seconds histogram",
		`wal_fsync_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/varz")
	if code != http.StatusOK {
		t.Fatalf("/varz status = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/varz is not JSON: %v\n%s", err, body)
	}
	if snap.Counters[`collector_requests_total{verb="submit"}`] != 5 {
		t.Errorf("/varz counters = %+v", snap.Counters)
	}
	if snap.Histograms["wal_fsync_seconds"].Count != 1 {
		t.Errorf("/varz histograms = %+v", snap.Histograms)
	}
}

func TestAdminHealthz(t *testing.T) {
	h, _, health := adminFixture()
	srv := httptest.NewServer(h)
	defer srv.Close()

	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"healthy":true`) {
		t.Fatalf("healthy probe: code=%d body=%s", code, body)
	}

	health.Draining = true
	code, body = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"draining":true`) {
		t.Fatalf("draining probe: code=%d body=%s", code, body)
	}

	health.Draining = false
	health.Healthy = false
	health.WALError = "fsync failed"
	code, body = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "fsync failed") {
		t.Fatalf("unhealthy probe: code=%d body=%s", code, body)
	}
}

func TestAdminHealthzNilFunc(t *testing.T) {
	srv := httptest.NewServer(NewAdminHandler(nil))
	defer srv.Close()
	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"healthy":true`) {
		t.Fatalf("nil health func: code=%d body=%s", code, body)
	}
}

func TestAdminPprof(t *testing.T) {
	h, _, _ := adminFixture()
	srv := httptest.NewServer(h)
	defer srv.Close()
	code, body := get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: code=%d body=%.120s", code, body)
	}
	code, _ = get(t, srv, "/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK {
		t.Fatalf("goroutine profile status = %d", code)
	}
}
