package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	g.SetDuration(1500 * time.Millisecond)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "verb", "submit")
	b := r.Counter("x_total", "", "verb", "submit")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := r.Counter("x_total", "", "verb", "check")
	if a == other {
		t.Fatal("different labels must be distinct series")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "", "verb", "submit")
}

// TestConcurrentUpdates hammers one counter, one gauge and one
// histogram from many goroutines; run under -race this is the
// hot-path safety proof, and the final tallies check no update was
// lost (atomics, not benign races).
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []float64{0.001, 0.01, 0.1, 1})

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) * 0.005)
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
	// Sum of 2000 iterations of (0,0.005,0.01,0.015) per worker.
	wantSum := float64(workers) * float64(perWorker/4) * (0 + 0.005 + 0.01 + 0.015)
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{0.01, 0.1, 1})
	// 90 fast (≤10ms), 9 medium, 1 slow: p50 in the first bucket, p95
	// in the second, p99 in the second (cum 99 ≥ 99).
	for i := 0; i < 90; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.05)
	}
	h.Observe(0.5)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 <= 0 || s.P50 > 0.01 {
		t.Errorf("p50 = %v, want in (0, 0.01]", s.P50)
	}
	if s.P95 <= 0.01 || s.P95 > 0.1 {
		t.Errorf("p95 = %v, want in (0.01, 0.1]", s.P95)
	}
	if s.P99 <= 0.01 || s.P99 > 0.1 {
		t.Errorf("p99 = %v, want in (0.01, 0.1]", s.P99)
	}

	// Everything in the +Inf bucket clamps to the largest finite bound.
	h2 := r.Histogram("lat2_seconds", "", []float64{0.01})
	h2.Observe(5)
	if got := h2.Snapshot().P50; got != 0.01 {
		t.Errorf("overflow p50 = %v, want 0.01", got)
	}
}

// TestPrometheusGolden pins the text exposition format end to end:
// HELP/TYPE headers, label rendering, histogram bucket/sum/count
// expansion, and scrape-time gauge funcs.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("collector_requests_total", "Requests handled.", "verb", "submit")
	c.Add(3)
	r.Counter("collector_requests_total", "Requests handled.", "verb", "ping").Add(7)
	g := r.Gauge("collector_active_connections", "Open connections.")
	g.Set(2)
	r.GaugeFunc("client_pending_records", "Backlog depth.", func() float64 { return 4 }, "client", "cid-1")
	h := r.Histogram("wal_fsync_seconds", "Fsync latency.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP collector_requests_total Requests handled.
# TYPE collector_requests_total counter
collector_requests_total{verb="submit"} 3
collector_requests_total{verb="ping"} 7
# HELP collector_active_connections Open connections.
# TYPE collector_active_connections gauge
collector_active_connections 2
# HELP client_pending_records Backlog depth.
# TYPE client_pending_records gauge
client_pending_records{client="cid-1"} 4
# HELP wal_fsync_seconds Fsync latency.
# TYPE wal_fsync_seconds histogram
wal_fsync_seconds_bucket{le="0.001"} 1
wal_fsync_seconds_bucket{le="0.01"} 2
wal_fsync_seconds_bucket{le="+Inf"} 3
wal_fsync_seconds_sum 0.5055
wal_fsync_seconds_count 3
`
	if got != want {
		t.Errorf("prometheus text mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestSnapshotAndMerge(t *testing.T) {
	server := NewRegistry()
	server.Counter("collector_records_accepted_total", "").Add(11)
	wal := NewRegistry()
	wal.Gauge("wal_sticky_error", "").Set(1)
	wal.Histogram("wal_append_seconds", "", nil).Observe(0.002)

	merged := MergeSnapshots(server.Snapshot(), wal.Snapshot())
	if merged.Counters["collector_records_accepted_total"] != 11 {
		t.Errorf("merged counter missing: %+v", merged.Counters)
	}
	if merged.Gauges["wal_sticky_error"] != 1 {
		t.Errorf("merged gauge missing: %+v", merged.Gauges)
	}
	hs, ok := merged.Histograms["wal_append_seconds"]
	if !ok || hs.Count != 1 {
		t.Errorf("merged histogram missing: %+v", merged.Histograms)
	}
}

func TestSamplerRunsOnScrape(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("sampled", "")
	n := 0
	r.AddSampler(func() { n++; g.SetInt(int64(n)) })
	var b strings.Builder
	r.WritePrometheus(&b)
	r.Snapshot()
	if n != 2 {
		t.Fatalf("sampler ran %d times, want 2", n)
	}
	if got := r.Snapshot().Gauges["sampled"]; got != 3 {
		t.Fatalf("sampled gauge = %v, want 3", got)
	}
}

func TestRuntimeRegistry(t *testing.T) {
	s := NewRuntimeRegistry().Snapshot()
	if s.Gauges["go_goroutines"] < 1 {
		t.Errorf("go_goroutines = %v, want ≥ 1", s.Gauges["go_goroutines"])
	}
	if s.Gauges["go_heap_alloc_bytes"] <= 0 {
		t.Errorf("go_heap_alloc_bytes = %v, want > 0", s.Gauges["go_heap_alloc_bytes"])
	}
}

func TestTimings(t *testing.T) {
	tm := &Timings{}
	tm.Observe("simulate", 1000, 2*time.Second)
	stop := tm.Start("classify")
	stop(500)
	stages := tm.Stages()
	if len(stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(stages))
	}
	if stages[0].Stage != "simulate" || stages[0].RecsPerSec != 500 {
		t.Errorf("stage[0] = %+v", stages[0])
	}
	if stages[1].Stage != "classify" || stages[1].Seconds < 0 {
		t.Errorf("stage[1] = %+v", stages[1])
	}

	var b strings.Builder
	if err := tm.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"stage": "simulate"`, `"records_per_sec": 500`, `"total_seconds"`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("timing JSON missing %s:\n%s", want, b.String())
		}
	}

	// A nil collector is a silent no-op — pipeline code threads it
	// through unconditionally.
	var nilT *Timings
	nilT.Observe("x", 1, time.Second)
	nilT.Start("y")(2)
	if nilT.Stages() != nil || nilT.TotalSeconds() != 0 {
		t.Error("nil Timings must be a no-op")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != int64(b.N) {
		b.Fatal("lost updates")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}
