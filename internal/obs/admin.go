package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
)

// HealthStatus is the /healthz payload. Healthy=false or
// Draining=true renders as 503 so load balancers and probes stop
// routing traffic; the body says which condition tripped.
type HealthStatus struct {
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining,omitempty"`
	WALError string `json:"wal_error,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// HealthFunc computes the current health on each probe.
type HealthFunc func() HealthStatus

// NewAdminHandler builds the admin surface over one or more metric
// registries:
//
//	/metrics       Prometheus text exposition (all registries, in order)
//	/varz          merged JSON snapshot
//	/healthz       health probe (200 healthy, 503 unhealthy or draining)
//	/debug/pprof/  net/http/pprof (profile, heap, goroutine, trace, ...)
//
// health may be nil (always healthy). The handler holds no locks
// across registries, so a scrape during a drain or a WAL fault cannot
// deadlock the server.
func NewAdminHandler(health HealthFunc, regs ...*Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if err := r.WritePrometheus(w); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/varz", func(w http.ResponseWriter, req *http.Request) {
		snaps := make([]Snapshot, len(regs))
		for i, r := range regs {
			snaps[i] = r.Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		MergeSnapshots(snaps...).WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		st := HealthStatus{Healthy: true}
		if health != nil {
			st = health()
		}
		w.Header().Set("Content-Type", "application/json")
		if !st.Healthy || st.Draining {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(st)
	})
	// pprof is wired explicitly instead of via the net/http/pprof
	// DefaultServeMux side effect, so only this admin listener exposes
	// it.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// NewRuntimeRegistry returns a registry of Go runtime gauges
// (goroutines, heap, GC pauses) refreshed once per scrape by a
// sampler — one runtime.ReadMemStats per scrape, not per gauge.
func NewRuntimeRegistry() *Registry {
	r := NewRegistry()
	goroutines := r.Gauge("go_goroutines", "Number of live goroutines.")
	heapAlloc := r.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	heapObjects := r.Gauge("go_heap_objects", "Number of allocated heap objects.")
	gcTotal := r.Gauge("go_gc_cycles_total", "Completed GC cycles.")
	gcPauseTotal := r.Gauge("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.")
	gcPauseLast := r.Gauge("go_gc_pause_last_seconds", "Duration of the most recent GC pause.")
	r.AddSampler(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.SetInt(int64(runtime.NumGoroutine()))
		heapAlloc.SetInt(int64(ms.HeapAlloc))
		heapObjects.SetInt(int64(ms.HeapObjects))
		gcTotal.SetInt(int64(ms.NumGC))
		gcPauseTotal.Set(float64(ms.PauseTotalNs) / 1e9)
		if ms.NumGC > 0 {
			gcPauseLast.Set(float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9)
		}
	})
	return r
}
