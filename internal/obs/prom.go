package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// WritePrometheus renders every metric in the text exposition format
// (version 0.0.4): one # HELP/# TYPE pair per metric name, then one
// line per series. Histograms expand into the standard _bucket
// (cumulative, le-labelled), _sum and _count series. Samplers run
// first, so scrape-time gauges (runtime stats, client queue depths)
// are fresh.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ms := r.snapshotMetrics()
	emitted := map[string]bool{}
	for _, m := range ms {
		if !emitted[m.name] {
			emitted[m.name] = true
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, promType(m.kind)); err != nil {
				return err
			}
		}
		if err := writeSeries(w, m); err != nil {
			return err
		}
	}
	return nil
}

func promType(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	}
	return "gauge"
}

// writeSeries emits the sample lines of one metric.
func writeSeries(w io.Writer, m *metric) error {
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", m.key, m.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", m.key, formatFloat(m.gauge.Value()))
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s %s\n", m.key, formatFloat(m.gfn()))
		return err
	case kindHistogram:
		s := m.hist.Snapshot()
		for _, b := range s.Buckets {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = formatFloat(b.UpperBound)
			}
			key := metricKey(m.name+"_bucket", append(append([]string(nil), m.labels...), "le", le))
			if _, err := fmt.Fprintf(w, "%s %d\n", key, b.Cumulative); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", metricKey(m.name+"_sum", m.labels), formatFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", metricKey(m.name+"_count", m.labels), s.Count)
		return err
	}
	return nil
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest round-trip representation, no exponent for small ints.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot is the /varz JSON view: every series keyed by its canonical
// name (labels included), counters and gauges as numbers, histograms
// as {count, sum, p50, p95, p99} objects.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric. Samplers run first.
func (r *Registry) Snapshot() Snapshot {
	ms := r.snapshotMetrics()
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, m := range ms {
		switch m.kind {
		case kindCounter:
			s.Counters[m.key] = m.counter.Value()
		case kindGauge:
			s.Gauges[m.key] = m.gauge.Value()
		case kindGaugeFunc:
			s.Gauges[m.key] = m.gfn()
		case kindHistogram:
			s.Histograms[m.key] = m.hist.Snapshot()
		}
	}
	return s
}

// MergeSnapshots combines per-subsystem snapshots (server, WAL,
// runtime) into one /varz document. Later snapshots win on key
// collisions; subsystems use distinct metric prefixes so collisions do
// not occur in practice.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, s := range snaps {
		for k, v := range s.Counters {
			out.Counters[k] = v
		}
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
		for k, v := range s.Histograms {
			out.Histograms[k] = v
		}
	}
	return out
}

// WriteJSON renders the snapshot with sorted keys (encoding/json sorts
// map keys) and a trailing newline.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// SortedCounterKeys returns the counter series names in order — test
// and report helpers iterate deterministically with it.
func (s Snapshot) SortedCounterKeys() []string {
	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
