// Package obs is the observability spine of the measurement platform:
// an allocation-free-on-the-hot-path metrics registry (atomic counters,
// gauges, and fixed-bucket latency histograms), named pipeline stage
// timers, and an admin HTTP handler exposing it all as Prometheus text
// exposition, a JSON snapshot (/varz), a health probe (/healthz), and
// net/http/pprof.
//
// The paper's deployment ran unattended for eight months and survived
// an eight-day outage its operators only discovered after the fact
// (§2.2) — the blind spot this package removes. Every long-running
// layer (collector server, WAL, resilient client, analytic pipeline)
// registers its counters here so "is it healthy, and where is the time
// going?" is one scrape, not a debugger session.
//
// Design constraints:
//
//   - Registration (Counter/Gauge/Histogram) takes a lock and may
//     allocate; it happens once, at wiring time. The update paths
//     (Inc/Add/Set/Observe) are single atomic operations with zero
//     allocations, so they can sit on the collector's per-request and
//     per-append hot paths.
//   - Snapshots (WritePrometheus, Snapshot) are consistent per metric,
//     not across metrics — the usual Prometheus contract.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n should be non-negative; counters never decrease).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// SetDuration stores a duration in seconds.
func (g *Gauge) SetDuration(d time.Duration) { g.Set(d.Seconds()) }

// Add adds delta to the gauge (CAS loop; still allocation free).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency buckets in seconds: 10µs → 10s,
// roughly logarithmic. They cover both WAL fsync latency (sub-ms on a
// laptop, tens of ms on contended disks) and collector request
// latency.
var DefBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Observe is allocation free; quantiles are estimated at snapshot time
// by linear interpolation within the owning bucket.
type Histogram struct {
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, accumulated via CAS
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (~19) and the scan touches
	// one cache line of bounds; beats binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Buckets holds the cumulative count at each upper bound, in the
	// Prometheus le convention (the +Inf bucket equals Count).
	Buckets []BucketCount `json:"-"`
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	UpperBound float64 // +Inf for the overflow bucket
	Cumulative uint64
}

// Snapshot captures counts and estimates p50/p95/p99.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Sum:     math.Float64frombits(h.sum.Load()),
		Buckets: make([]BucketCount, len(h.counts)),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets[i] = BucketCount{UpperBound: ub, Cumulative: cum}
	}
	s.Count = cum
	s.P50 = h.quantile(s.Buckets, 0.50)
	s.P95 = h.quantile(s.Buckets, 0.95)
	s.P99 = h.quantile(s.Buckets, 0.99)
	return s
}

// quantile estimates the q-th quantile from cumulative buckets by
// linear interpolation inside the owning bucket. Values in the +Inf
// bucket clamp to the largest finite bound.
func (h *Histogram) quantile(buckets []BucketCount, q float64) float64 {
	total := buckets[len(buckets)-1].Cumulative
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	for i, b := range buckets {
		if float64(b.Cumulative) >= rank {
			if math.IsInf(b.UpperBound, 1) {
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lower, prevCum := 0.0, uint64(0)
			if i > 0 {
				lower = buckets[i-1].UpperBound
				prevCum = buckets[i-1].Cumulative
			}
			inBucket := b.Cumulative - prevCum
			if inBucket == 0 {
				return b.UpperBound
			}
			frac := (rank - float64(prevCum)) / float64(inBucket)
			if frac < 0 {
				frac = 0
			}
			return lower + (b.UpperBound-lower)*frac
		}
	}
	return buckets[len(buckets)-1].UpperBound
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered metric with its constant labels.
type metric struct {
	kind   metricKind
	name   string
	help   string
	labels []string // alternating key, value
	key    string   // name + rendered labels

	counter *Counter
	gauge   *Gauge
	gfn     func() float64
	hist    *Histogram
}

// Registry holds named metrics. Metric names follow the Prometheus
// convention (snake_case, *_total for counters, *_seconds for
// latencies); constant labels are fixed at registration.
//
// Registering the same name+labels twice returns the existing metric
// (and panics if the kind differs) — wiring code can be idempotent.
type Registry struct {
	mu       sync.Mutex
	metrics  []*metric
	byKey    map[string]*metric
	samplers []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// metricKey renders name plus labels into the canonical series key,
// e.g. `collector_requests_total{verb="submit"}`.
func metricKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], escapeLabel(labels[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// register adds or retrieves a metric under name+labels.
func (r *Registry) register(kind metricKind, name, help string, labels []string, bounds []float64) *metric {
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different kind", key))
		}
		return m
	}
	m := &metric{kind: kind, name: name, help: help, labels: append([]string(nil), labels...), key: key}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		m.hist = newHistogram(bounds)
	}
	r.metrics = append(r.metrics, m)
	r.byKey[key] = m
	return m
}

// Counter registers (or retrieves) a counter. labels are alternating
// key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.register(kindCounter, name, help, labels, nil).counter
}

// Gauge registers (or retrieves) a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.register(kindGauge, name, help, labels, nil).gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// live views over external state (queue depths, client stats).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	m := r.register(kindGaugeFunc, name, help, labels, nil)
	m.gfn = fn
}

// Histogram registers (or retrieves) a fixed-bucket histogram. A nil
// or empty bounds slice selects DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return r.register(kindHistogram, name, help, labels, bounds).hist
}

// AddSampler registers fn to run at the start of every scrape
// (WritePrometheus or Snapshot) — e.g. refreshing runtime gauges from
// runtime.ReadMemStats once per scrape instead of once per gauge.
func (r *Registry) AddSampler(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samplers = append(r.samplers, fn)
}

// snapshotMetrics runs the samplers and returns a stable copy of the
// metric list.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	samplers := make([]func(), len(r.samplers))
	copy(samplers, r.samplers)
	r.mu.Unlock()
	for _, fn := range samplers {
		fn()
	}
	return ms
}
