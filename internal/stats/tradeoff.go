package stats

import (
	"math"
	"sort"

	"fpdyn/internal/dynamics"
	"fpdyn/internal/fingerprint"
)

// The paper's conclusion poses the uniqueness/linkability trade-off as
// future work: uniqueness (feature entropy) determines *to what
// extent* a tool can track a browser instance, linkability (feature
// stability) determines *for how long*. This file quantifies both per
// feature so a fingerprinting tool can choose its feature set along
// the frontier.

// FeatureEntropy computes the Shannon entropy in bits of each feature
// over one fingerprint per browser instance (using each instance's
// first record avoids over-weighting loyal visitors).
func FeatureEntropy(firstRecords []*fingerprint.Record) map[fingerprint.ID]float64 {
	out := make(map[fingerprint.ID]float64, fingerprint.NumFeatures)
	n := float64(len(firstRecords))
	if n == 0 {
		return out
	}
	for _, desc := range fingerprint.Schema {
		counts := map[string]int{}
		for _, r := range firstRecords {
			counts[r.FP.Value(desc.ID).Key()]++
		}
		h := 0.0
		for _, c := range counts {
			p := float64(c) / n
			h -= p * math.Log2(p)
		}
		out[desc.ID] = h
	}
	return out
}

// TradeoffRow scores one feature on both axes.
type TradeoffRow struct {
	Feature fingerprint.ID
	Name    string
	// EntropyBits is the uniqueness axis.
	EntropyBits float64
	// InstabilityPct is the share (0–100) of changed dynamics in which
	// this feature moved — the inverse linkability axis.
	InstabilityPct float64
	// Utility is the frontier score: entropy discounted by instability.
	// A feature you cannot re-recognize next week contributes little to
	// long-term tracking however unique it is today.
	Utility float64
}

// UniquenessLinkability builds the trade-off table from per-instance
// first records and the changed dynamics. Rows are sorted by
// descending utility.
func UniquenessLinkability(firstRecords []*fingerprint.Record, changed []*dynamics.Dynamics) []TradeoffRow {
	entropy := FeatureEntropy(firstRecords)
	changeCount := make(map[fingerprint.ID]int, fingerprint.NumFeatures)
	total := 0
	for _, d := range changed {
		if !d.CoreChanged() {
			continue
		}
		total++
		for _, id := range d.Delta.FeatureIDs() {
			changeCount[id]++
		}
	}
	rows := make([]TradeoffRow, 0, fingerprint.NumFeatures)
	for _, desc := range fingerprint.Schema {
		instab := 0.0
		if total > 0 {
			instab = 100 * float64(changeCount[desc.ID]) / float64(total)
		}
		row := TradeoffRow{
			Feature:        desc.ID,
			Name:           desc.Name,
			EntropyBits:    entropy[desc.ID],
			InstabilityPct: instab,
		}
		// Discount: a feature changing in share s of dynamics keeps
		// (1-s)^k of its value over k expected changes; use k=4 as the
		// study-window scale.
		keep := math.Pow(1-instab/100, 4)
		row.Utility = row.EntropyBits * keep
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Utility != rows[j].Utility {
			return rows[i].Utility > rows[j].Utility
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// FirstRecords extracts each instance's first record from grouped
// instances, in deterministic (ID-sorted) order.
func FirstRecords(instances map[string][]*fingerprint.Record) []*fingerprint.Record {
	ids := make([]string, 0, len(instances))
	for id := range instances {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*fingerprint.Record, 0, len(ids))
	for _, id := range ids {
		if recs := instances[id]; len(recs) > 0 {
			out = append(out, recs[0])
		}
	}
	return out
}
