package stats

import (
	"strings"

	"fpdyn/internal/diff"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/hashutil"
)

// FeatureRow is one Table 1 row: distinct and unique value counts for a
// feature (or feature group), for static values and for dynamics.
// "Distinct" counts all values ever observed; "Unique" counts values
// observed exactly once.
type FeatureRow struct {
	Name    string
	Group   string // empty for group and overall rows
	IsGroup bool

	Distinct, Unique       int
	DynDistinct, DynUnique int
}

// FeatureTable computes the full Table 1: one row per schema feature,
// one aggregated row per feature group (the distinct combination of the
// group's features), and the two overall rows (excluding and including
// IP features).
func FeatureTable(records []*fingerprint.Record, dyns []*dynamics.Dynamics) []FeatureRow {
	// Static per-feature counting.
	perFeature := make([]map[string]int, fingerprint.NumFeatures)
	for i := range perFeature {
		perFeature[i] = make(map[string]int)
	}
	groups := map[string]map[uint64]int{}
	overallCore := map[uint64]int{}
	overallAll := map[uint64]int{}

	for _, r := range records {
		groupKeys := map[string]uint64{}
		for _, d := range fingerprint.Schema {
			key := r.FP.Value(d.ID).Key()
			perFeature[d.ID][key]++
			groupKeys[d.Group] = hashutil.Combine(groupKeys[d.Group], hashutil.Hash64(key))
		}
		for g, h := range groupKeys {
			if groups[g] == nil {
				groups[g] = make(map[uint64]int)
			}
			groups[g][h]++
		}
		overallCore[r.FP.Hash(false)]++
		overallAll[r.FP.Hash(true)]++
	}

	// Dynamics per-feature counting: the delta key per changed feature.
	dynFeature := make([]map[string]int, fingerprint.NumFeatures)
	for i := range dynFeature {
		dynFeature[i] = make(map[string]int)
	}
	dynGroups := map[string]map[string]int{}
	dynOverallCore := map[string]int{}
	dynOverallAll := map[string]int{}
	for _, d := range dyns {
		if d.Delta.Empty() {
			continue
		}
		groupParts := map[string][]string{}
		var coreParts, allParts []string
		for i := range d.Delta.Fields {
			fd := &d.Delta.Fields[i]
			desc := fingerprint.Describe(fd.Feature)
			key := fd.Key()
			dynFeature[fd.Feature][key]++
			groupParts[desc.Group] = append(groupParts[desc.Group], key)
			allParts = append(allParts, key)
			if !desc.IsIP {
				coreParts = append(coreParts, key)
			}
		}
		for g, parts := range groupParts {
			if dynGroups[g] == nil {
				dynGroups[g] = make(map[string]int)
			}
			dynGroups[g][strings.Join(parts, ";")]++
		}
		if len(coreParts) > 0 {
			dynOverallCore[strings.Join(coreParts, ";")]++
		}
		if len(allParts) > 0 {
			dynOverallAll[strings.Join(allParts, ";")]++
		}
	}

	distinctUnique := func(m map[string]int) (int, int) {
		u := 0
		for _, c := range m {
			if c == 1 {
				u++
			}
		}
		return len(m), u
	}
	distinctUnique64 := func(m map[uint64]int) (int, int) {
		u := 0
		for _, c := range m {
			if c == 1 {
				u++
			}
		}
		return len(m), u
	}

	var rows []FeatureRow
	lastGroup := ""
	for _, d := range fingerprint.Schema {
		if d.Group != lastGroup {
			lastGroup = d.Group
			gr := FeatureRow{Name: d.Group, IsGroup: true}
			gr.Distinct, gr.Unique = distinctUnique64(groups[d.Group])
			gr.DynDistinct, gr.DynUnique = distinctUnique(dynGroups[d.Group])
			rows = append(rows, gr)
		}
		r := FeatureRow{Name: d.Name, Group: d.Group}
		r.Distinct, r.Unique = distinctUnique(perFeature[d.ID])
		r.DynDistinct, r.DynUnique = distinctUnique(dynFeature[d.ID])
		rows = append(rows, r)
	}

	core := FeatureRow{Name: "Overall (excluding IP)", IsGroup: true}
	core.Distinct, core.Unique = distinctUnique64(overallCore)
	core.DynDistinct, core.DynUnique = distinctUnique(dynOverallCore)
	rows = append(rows, core)

	all := FeatureRow{Name: "Overall", IsGroup: true}
	all.Distinct, all.Unique = distinctUnique64(overallAll)
	all.DynDistinct, all.DynUnique = distinctUnique(dynOverallAll)
	rows = append(rows, all)
	return rows
}

// DeltaCompression quantifies the §2.3 design argument for storing
// dynamics as deltas rather than fingerprint pairs: the number of
// distinct (from, to) fingerprint-hash pairs versus the number of
// distinct delta keys. A ratio above 1 means the diff representation
// collapsed identical updates across instances.
func DeltaCompression(dyns []*dynamics.Dynamics) (pairs, deltas int, ratio float64) {
	pairSet := map[[2]uint64]bool{}
	deltaSet := map[string]bool{}
	for _, d := range dyns {
		if d.Delta.Empty() {
			continue
		}
		pairSet[[2]uint64{d.From.FP.Hash(true), d.To.FP.Hash(true)}] = true
		deltaSet[coreDeltaKey(d.Delta)] = true
	}
	pairs, deltas = len(pairSet), len(deltaSet)
	if deltas > 0 {
		ratio = float64(pairs) / float64(deltas)
	}
	return pairs, deltas, ratio
}

// coreDeltaKey is the delta key over non-IP fields only (IP churn would
// otherwise dominate the pair/delta comparison).
func coreDeltaKey(d *diff.Delta) string {
	var parts []string
	for i := range d.Fields {
		if fingerprint.Describe(d.Fields[i].Feature).IsIP {
			continue
		}
		parts = append(parts, d.Fields[i].Key())
	}
	return strings.Join(parts, ";")
}
