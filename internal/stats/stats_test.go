package stats

import (
	"testing"
	"time"

	"fpdyn/internal/browserid"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/population"
	"fpdyn/internal/useragent"
)

var statsWorld *population.Dataset
var statsGT *browserid.GroundTruth

func world(t testing.TB) (*population.Dataset, *browserid.GroundTruth) {
	if statsWorld == nil {
		statsWorld = population.Simulate(population.DefaultConfig(700))
		statsGT = browserid.Build(statsWorld.Records)
	}
	return statsWorld, statsGT
}

func TestAnonymityCurveMonotonic(t *testing.T) {
	ds, gt := world(t)
	curve := AnonymitySets(ds.Records, func(i int) string { return gt.IDs[i] }, true, 10)
	if len(curve.PctIdentifiable) != 10 {
		t.Fatalf("curve length %d", len(curve.PctIdentifiable))
	}
	for k := 1; k < 10; k++ {
		if curve.PctIdentifiable[k] < curve.PctIdentifiable[k-1] {
			t.Fatalf("curve not monotone at k=%d: %v", k, curve.PctIdentifiable)
		}
	}
	if curve.PctIdentifiable[9] < 50 {
		t.Errorf("identifiable share at k=10 is %.1f%%, expected majority (paper: >90%%)",
			curve.PctIdentifiable[9])
	}
	t.Logf("Figure 2 curve: %v", curve.PctIdentifiable)
}

func TestAnonymityIPIncreasesIdentifiability(t *testing.T) {
	ds, gt := world(t)
	inst := func(i int) string { return gt.IDs[i] }
	withIP := AnonymitySets(ds.Records, inst, true, 5)
	without := AnonymitySets(ds.Records, inst, false, 5)
	if withIP.PctIdentifiable[0] < without.PctIdentifiable[0] {
		t.Errorf("IP features reduced identifiability: %v vs %v",
			withIP.PctIdentifiable[0], without.PctIdentifiable[0])
	}
}

func TestAnonymityEmpty(t *testing.T) {
	curve := AnonymitySets(nil, func(int) string { return "" }, true, 3)
	for _, v := range curve.PctIdentifiable {
		if v != 0 {
			t.Fatal("empty input must give a zero curve")
		}
	}
}

func TestMobileFirefoxMostIdentifiable(t *testing.T) {
	// Figure 2's observation: on mobile, Firefox users are more
	// identifiable than default-browser users, because installing a
	// non-default browser is itself identifying.
	ds, gt := world(t)
	inst := func(idx []int) func(int) string {
		return func(i int) string { return gt.IDs[idx[i]] }
	}
	ffIdx := Filter(ds.Records, func(r *fingerprint.Record) bool {
		return r.Browser == useragent.FirefoxMobile
	})
	safIdx := Filter(ds.Records, func(r *fingerprint.Record) bool {
		return r.Browser == useragent.MobileSafari
	})
	if len(ffIdx) < 30 || len(safIdx) < 30 {
		t.Skip("not enough mobile records at this scale")
	}
	ff := AnonymitySets(Select(ds.Records, ffIdx), inst(ffIdx), true, 5)
	saf := AnonymitySets(Select(ds.Records, safIdx), inst(safIdx), true, 5)
	t.Logf("Firefox Mobile k=5: %.1f%%; Mobile Safari k=5: %.1f%%",
		ff.PctIdentifiable[4], saf.PctIdentifiable[4])
	if ff.PctIdentifiable[4] < saf.PctIdentifiable[4] {
		t.Errorf("Firefox Mobile should be more identifiable than Mobile Safari")
	}
}

func TestFeatureTableShape(t *testing.T) {
	ds, gt := world(t)
	dyns := dynamics.Generate(gt)
	rows := FeatureTable(ds.Records, dyns)

	byName := map[string]FeatureRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Structural checks.
	if len(rows) != int(fingerprint.NumFeatures)+7+2 { // features + 7 groups + 2 overall
		t.Fatalf("rows = %d", len(rows))
	}
	// The font list must be the most fingerprintable OS feature
	// (Table 1's headline finding).
	fonts := byName["Font List"]
	if fonts.Distinct == 0 {
		t.Fatal("no font list values")
	}
	ua := byName["User-agent"]
	if ua.Distinct == 0 || ua.DynDistinct == 0 {
		t.Fatalf("user agent row empty: %+v", ua)
	}
	// Fonts: static-rich but dynamics-stable (dynamics << static).
	if fonts.DynDistinct >= fonts.Distinct {
		t.Errorf("font dynamics (%d) should be far fewer than static values (%d)",
			fonts.DynDistinct, fonts.Distinct)
	}
	// Binary features have at most 2 distinct values and no uniques at scale.
	cookie := byName["Cookie Support"]
	if cookie.Distinct > 2 {
		t.Errorf("cookie support distinct = %d", cookie.Distinct)
	}
	// Timezone: more dynamics than statics is the paper's signature of
	// user-driven bidirectional churn; at least comparable here.
	tz := byName["Timezone"]
	t.Logf("timezone: static %d / dyn %d", tz.Distinct, tz.DynDistinct)
	// Overall rows exist and core ≤ all.
	core, all := byName["Overall (excluding IP)"], byName["Overall"]
	if core.Distinct == 0 || all.Distinct < core.Distinct {
		t.Errorf("overall rows wrong: core=%+v all=%+v", core, all)
	}
}

func TestDeltaCompression(t *testing.T) {
	_, gt := world(t)
	dyns := dynamics.Changed(dynamics.Generate(gt))
	pairs, deltas, ratio := DeltaCompression(dyns)
	if pairs == 0 || deltas == 0 {
		t.Fatal("no dynamics to compare")
	}
	t.Logf("pairs=%d deltas=%d compression=%.2fx", pairs, deltas, ratio)
	if ratio < 1 {
		t.Errorf("delta keys should never outnumber pairs: %.2f", ratio)
	}
}

func TestUserBrowserCookieHistograms(t *testing.T) {
	_, gt := world(t)
	perUser, perBrowser := UserBrowserCookie(gt)
	if perUser.Share(1) < 0.6 {
		t.Errorf("single-browser users = %.2f, paper ~0.86", perUser.Share(1))
	}
	multi := 1 - perBrowser.Share(0) - perBrowser.Share(1)
	t.Logf("users with 1 browser: %.2f; instances with >1 cookie: %.2f", perUser.Share(1), multi)
	if multi < 0.1 {
		t.Errorf("cookie clearing share %.2f too low (paper ~0.32)", multi)
	}
}

func TestVisitSeries(t *testing.T) {
	ds, gt := world(t)
	series := VisitSeries(ds.Records, gt.IDs, 7*24*time.Hour)
	if len(series) < 10 {
		t.Fatalf("only %d weekly buckets over 8 months", len(series))
	}
	totFirst, totRet := 0, 0
	for _, b := range series {
		totFirst += b.FirstTime
		totRet += b.Returning
	}
	if totFirst+totRet != len(ds.Records) {
		t.Fatalf("bucket totals %d != records %d", totFirst+totRet, len(ds.Records))
	}
	if totFirst != gt.NumInstances() {
		t.Fatalf("first-time visits %d != instances %d", totFirst, gt.NumInstances())
	}
	// Returning visitors form a substantial share (paper: ~half later on).
	if totRet == 0 {
		t.Fatal("no returning visits")
	}
}

func TestTypeBreakdown(t *testing.T) {
	_, gt := world(t)
	byBrowser, byOS := TypeBreakdown(gt)
	if byOS[useragent.Windows] == 0 {
		t.Fatal("no Windows instances")
	}
	// Figure 6: Windows is the most common OS.
	for os, n := range byOS {
		if os != useragent.Windows && n > byOS[useragent.Windows] {
			t.Errorf("%s (%d) outnumbers Windows (%d)", os, n, byOS[useragent.Windows])
		}
	}
	if len(byBrowser) < 5 {
		t.Errorf("only %d browser families: %v", len(byBrowser), byBrowser)
	}
	t.Logf("browsers: %v", byBrowser)
	t.Logf("OS: %v", byOS)
}

func TestStabilityBreakdown(t *testing.T) {
	_, gt := world(t)
	cells := StabilityBreakdown(gt, 15)
	total := 0
	for _, n := range cells {
		total += n
	}
	if total != gt.NumInstances() {
		t.Fatalf("cells total %d != instances %d", total, gt.NumInstances())
	}
	// Dynamics count can never exceed visits-1.
	for cell, n := range cells {
		if cell.Dynamics >= cell.Visits && cell.Visits < 15 && n > 0 {
			t.Fatalf("impossible cell %+v (count %d)", cell, n)
		}
	}
	share3 := StableShareAtVisits(cells, 3)
	share8 := StableShareAtVisits(cells, 8)
	t.Logf("stable share at 3 visits: %.2f; at 8 visits: %.2f (paper: ~0.5 → ~0.33)", share3, share8)
	if share3 != 0 && share8 > share3 {
		t.Errorf("stability should not increase with visit count: %v → %v", share3, share8)
	}
}

func TestHistogramShareEmpty(t *testing.T) {
	var h Histogram = map[int]int{}
	if h.Share(1) != 0 {
		t.Fatal("empty histogram share must be 0")
	}
}

func BenchmarkFeatureTable(b *testing.B) {
	ds, gt := world(b)
	dyns := dynamics.Generate(gt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FeatureTable(ds.Records, dyns)
	}
}

func BenchmarkAnonymitySets(b *testing.B) {
	ds, gt := world(b)
	inst := func(i int) string { return gt.IDs[i] }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AnonymitySets(ds.Records, inst, true, 10)
	}
}

// TestHistogramTotalShare pins the cached-sum contract: ShareOf with a
// hoisted Total agrees with Share, and the zero-mass edge returns 0.
func TestHistogramTotalShare(t *testing.T) {
	h := Histogram{1: 6, 2: 3, 5: 1}
	if got := h.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	total := h.Total()
	for k := 0; k <= 5; k++ {
		if got, want := h.ShareOf(k, total), h.Share(k); got != want {
			t.Errorf("bucket %d: ShareOf = %v, Share = %v", k, got, want)
		}
	}
	if got := h.Share(1); got != 0.6 {
		t.Errorf("Share(1) = %v, want 0.6", got)
	}
	var empty Histogram
	if empty.Total() != 0 || empty.Share(3) != 0 || empty.ShareOf(3, 0) != 0 {
		t.Error("empty histogram must report zero total and shares")
	}
}
