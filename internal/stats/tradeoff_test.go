package stats

import (
	"math"
	"testing"

	"fpdyn/internal/dynamics"
	"fpdyn/internal/fingerprint"
)

func TestFeatureEntropyBasics(t *testing.T) {
	mk := func(fonts []string, cores int) *fingerprint.Record {
		return &fingerprint.Record{FP: &fingerprint.Fingerprint{Fonts: fonts, CPUCores: cores}}
	}
	recs := []*fingerprint.Record{
		mk([]string{"A"}, 4), mk([]string{"B"}, 4), mk([]string{"C"}, 4), mk([]string{"D"}, 4),
	}
	h := FeatureEntropy(recs)
	// Four distinct font lists over four records: 2 bits.
	if got := h[fingerprint.FeatFontList]; math.Abs(got-2) > 1e-9 {
		t.Errorf("font entropy = %v, want 2", got)
	}
	// Constant cores: 0 bits.
	if got := h[fingerprint.FeatCPUCores]; got != 0 {
		t.Errorf("cores entropy = %v, want 0", got)
	}
}

func TestFeatureEntropyEmpty(t *testing.T) {
	if h := FeatureEntropy(nil); len(h) != 0 {
		t.Fatalf("entropy of empty input = %v", h)
	}
}

func TestUniquenessLinkabilityOnWorld(t *testing.T) {
	ds, gt := world(t)
	changed := dynamics.Changed(dynamics.Generate(gt))
	rows := UniquenessLinkability(FirstRecords(gt.Instances), changed)
	if len(rows) != int(fingerprint.NumFeatures) {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]TradeoffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	fonts := byName["Font List"]
	tz := byName["Timezone"]
	// The paper's intuition: the font list is high-entropy AND stable —
	// a top-utility feature; timezone is low-entropy and user-volatile.
	if fonts.Utility <= tz.Utility {
		t.Errorf("font utility (%.2f) should exceed timezone utility (%.2f)",
			fonts.Utility, tz.Utility)
	}
	if fonts.EntropyBits < 3 {
		t.Errorf("font entropy %.2f suspiciously low", fonts.EntropyBits)
	}
	if tz.InstabilityPct <= fonts.InstabilityPct {
		t.Errorf("timezone instability (%.1f%%) should exceed fonts (%.1f%%)",
			tz.InstabilityPct, fonts.InstabilityPct)
	}
	// Sorted by utility.
	for i := 1; i < len(rows); i++ {
		if rows[i].Utility > rows[i-1].Utility {
			t.Fatal("rows not sorted by utility")
		}
	}
	t.Logf("top 5 by utility:")
	for _, r := range rows[:5] {
		t.Logf("  %-22s %5.2f bits, %5.1f%% unstable, utility %.2f",
			r.Name, r.EntropyBits, r.InstabilityPct, r.Utility)
	}
	_ = ds
}

func TestFirstRecordsDeterministic(t *testing.T) {
	_, gt := world(t)
	a := FirstRecords(gt.Instances)
	b := FirstRecords(gt.Instances)
	if len(a) != gt.NumInstances() {
		t.Fatalf("first records = %d, instances = %d", len(a), gt.NumInstances())
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FirstRecords not deterministic")
		}
	}
}
