package stats

import (
	"time"

	"fpdyn/internal/browserid"
	"fpdyn/internal/diff"
	"fpdyn/internal/fingerprint"
)

// Histogram maps a small-integer bucket to a count.
type Histogram map[int]int

// Total returns the histogram's mass. Callers reading several shares
// (report loops iterate every bucket) compute it once and use ShareOf,
// instead of letting Share re-sum the map per bucket — O(n) total
// rather than O(n²).
func (h Histogram) Total() int {
	total := 0
	for _, c := range h {
		total += c
	}
	return total
}

// ShareOf returns the fraction (0–1) of mass at bucket k against a
// precomputed Total — the cached-sum path for per-bucket loops.
func (h Histogram) ShareOf(k, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(h[k]) / float64(total)
}

// Share returns the fraction (0–1) of mass at bucket k. It re-sums the
// histogram; inside loops prefer Total + ShareOf.
func (h Histogram) Share(k int) float64 {
	return h.ShareOf(k, h.Total())
}

// UserBrowserCookie computes the two Figure 3 histograms: the number
// of browser IDs per user ID, and the number of cookies per browser ID.
func UserBrowserCookie(gt *browserid.GroundTruth) (browserIDsPerUser, cookiesPerBrowser Histogram) {
	browserIDsPerUser = Histogram{}
	for _, set := range gt.UserInstances {
		browserIDsPerUser[len(set)]++
	}
	cookiesPerBrowser = Histogram{}
	for _, n := range gt.CookieCounts() {
		cookiesPerBrowser[n]++
	}
	return browserIDsPerUser, cookiesPerBrowser
}

// VisitBucket is one time bucket of Figure 4.
type VisitBucket struct {
	Start     time.Time
	FirstTime int
	Returning int
}

// VisitSeries buckets visits into fixed windows, splitting first-time
// from returning browser instances (Figure 4). records is the raw
// time-ordered input and ids the per-record browser IDs (gt.IDs).
func VisitSeries(records []*fingerprint.Record, ids []string, bucket time.Duration) []VisitBucket {
	var out []VisitBucket
	seen := map[string]bool{}
	var cur *VisitBucket
	for i, r := range records {
		if cur == nil || r.Time.Sub(cur.Start) >= bucket {
			out = append(out, VisitBucket{Start: r.Time.Truncate(bucket)})
			cur = &out[len(out)-1]
		}
		if seen[ids[i]] {
			cur.Returning++
		} else {
			seen[ids[i]] = true
			cur.FirstTime++
		}
	}
	return out
}

// TypeBreakdown counts browser instances by browser family and OS
// family (Figures 5 and 6), using each instance's first record.
func TypeBreakdown(gt *browserid.GroundTruth) (byBrowser, byOS map[string]int) {
	byBrowser = map[string]int{}
	byOS = map[string]int{}
	for _, recs := range gt.Instances {
		if len(recs) == 0 {
			continue
		}
		byBrowser[recs[0].Browser]++
		byOS[recs[0].OS]++
	}
	return byBrowser, byOS
}

// StabilityCell keys the Figure 7 matrix: instances with a given visit
// count and dynamics (changed-fingerprint) count.
type StabilityCell struct {
	Visits   int
	Dynamics int
}

// StabilityBreakdown computes Figure 7: for every browser instance,
// its visit count and how many consecutive-visit pairs changed the
// core fingerprint. maxVisits caps both axes (larger counts clamp into
// the tail bucket, matching the figure).
func StabilityBreakdown(gt *browserid.GroundTruth, maxVisits int) map[StabilityCell]int {
	out := map[StabilityCell]int{}
	for _, recs := range gt.Instances {
		visits := len(recs)
		if visits > maxVisits {
			visits = maxVisits
		}
		changes := 0
		for i := 1; i < len(recs); i++ {
			d := diff.Diff(recs[i-1].FP, recs[i].FP)
			for _, fd := range d.Fields {
				if !fingerprint.Describe(fd.Feature).IsIP {
					changes++
					break
				}
			}
		}
		if changes > maxVisits {
			changes = maxVisits
		}
		out[StabilityCell{visits, changes}]++
	}
	return out
}

// StableShareAtVisits returns the fraction of instances with exactly v
// visits whose fingerprint never changed — the paper: about half at
// 3–4 visits, decreasing to about one third.
func StableShareAtVisits(cells map[StabilityCell]int, v int) float64 {
	total, stable := 0, 0
	for cell, n := range cells {
		if cell.Visits == v {
			total += n
			if cell.Dynamics == 0 {
				stable += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(stable) / float64(total)
}
