// Package stats computes the descriptive analyses of the paper's §3:
// anonymous-set identifiability (Figure 2), per-feature distinct/unique
// value counts for static values and dynamics (Table 1), and the
// population breakdowns of Figures 3–7.
package stats

import (
	"fpdyn/internal/fingerprint"
)

// AnonymityCurve is the Figure 2 series: for each anonymous-set size
// threshold k (1-indexed), the percentage of fingerprints whose
// anonymous set has at most k members.
type AnonymityCurve struct {
	MaxK int
	// PctIdentifiable[k-1] is the share (0–100) of fingerprint
	// observations that fall in an anonymous set of size ≤ k.
	PctIdentifiable []float64
}

// AnonymitySets computes the identifiability curve over a record set.
// The anonymous set of a fingerprint value is the set of *browser
// instances* sharing it; instanceOf gives each record its instance
// identity (browser ID). includeIP adds the IP city/region/country
// features, matching Figure 2's caption.
func AnonymitySets(records []*fingerprint.Record, instanceOf func(i int) string, includeIP bool, maxK int) AnonymityCurve {
	// fingerprint value → set of instances.
	instSets := make(map[uint64]map[string]bool)
	for i, r := range records {
		h := r.FP.Hash(includeIP)
		set := instSets[h]
		if set == nil {
			set = make(map[string]bool)
			instSets[h] = set
		}
		set[instanceOf(i)] = true
	}
	curve := AnonymityCurve{MaxK: maxK, PctIdentifiable: make([]float64, maxK)}
	if len(records) == 0 {
		return curve
	}
	// Count records by their fingerprint's anonymous-set size.
	counts := make([]int, maxK+1)
	for _, r := range records {
		size := len(instSets[r.FP.Hash(includeIP)])
		if size > maxK {
			continue
		}
		counts[size]++
	}
	cum := 0
	for k := 1; k <= maxK; k++ {
		cum += counts[k]
		curve.PctIdentifiable[k-1] = 100 * float64(cum) / float64(len(records))
	}
	return curve
}

// Filter returns the subset of indexes whose record satisfies keep,
// along with the filtered records — a helper for Figure 2's
// per-platform and per-browser breakdowns.
func Filter(records []*fingerprint.Record, keep func(*fingerprint.Record) bool) []int {
	var idx []int
	for i, r := range records {
		if keep(r) {
			idx = append(idx, i)
		}
	}
	return idx
}

// Select materializes records at the given indexes.
func Select(records []*fingerprint.Record, idx []int) []*fingerprint.Record {
	out := make([]*fingerprint.Record, len(idx))
	for i, j := range idx {
		out[i] = records[j]
	}
	return out
}
