package browserid

import (
	"fmt"
	"testing"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/useragent"
)

// rec builds a minimal record for ground-truth tests.
func rec(t time.Time, user, cookie, browser, os, device string, cores int) *fingerprint.Record {
	return &fingerprint.Record{
		Time:   t,
		UserID: user,
		Cookie: cookie,
		FP: &fingerprint.Fingerprint{
			CPUClass:    "x86",
			CPUCores:    cores,
			GPUVendor:   "Intel Inc.",
			GPURenderer: "Intel(R) HD Graphics 520",
		},
		Browser: browser,
		OS:      os,
		Device:  device,
	}
}

var t0 = time.Date(2017, 12, 1, 0, 0, 0, 0, time.UTC)

func at(h int) time.Time { return t0.Add(time.Duration(h) * time.Hour) }

func TestInitialIDStable(t *testing.T) {
	a := rec(at(0), "u1", "c1", "Chrome", "Windows", "", 4)
	b := rec(at(1), "u1", "c1", "Chrome", "Windows", "", 4)
	if InitialID(a) != InitialID(b) {
		t.Fatal("same stable features must give the same initial ID")
	}
}

func TestInitialIDDiscriminates(t *testing.T) {
	base := rec(at(0), "u1", "c1", "Chrome", "Windows", "", 4)
	variants := []*fingerprint.Record{
		rec(at(0), "u2", "c1", "Chrome", "Windows", "", 4),  // different user
		rec(at(0), "u1", "c1", "Firefox", "Windows", "", 4), // different browser
		rec(at(0), "u1", "c1", "Chrome", "Mac OS X", "", 4), // different OS
		rec(at(0), "u1", "c1", "Chrome", "Windows", "", 8),  // different cores
	}
	for i, v := range variants {
		if InitialID(base) == InitialID(v) {
			t.Errorf("variant %d should have a different initial ID", i)
		}
	}
}

func TestInitialIDIgnoresUserControlledFeatures(t *testing.T) {
	a := rec(at(0), "u1", "c1", "Chrome", "Windows", "", 4)
	b := rec(at(1), "u1", "c1", "Chrome", "Windows", "", 4)
	b.FP.CookieEnabled = true
	b.FP.LocalStorage = true
	b.FP.TimezoneOffset = 540
	if InitialID(a) != InitialID(b) {
		t.Fatal("user-controlled features must not affect the browser ID")
	}
}

func TestBuildGroupsVisits(t *testing.T) {
	recs := []*fingerprint.Record{
		rec(at(0), "u1", "c1", "Chrome", "Windows", "", 4),
		rec(at(1), "u1", "c1", "Chrome", "Windows", "", 4),
		rec(at(2), "u2", "c2", "Firefox", "Mac OS X", "", 8),
	}
	gt := Build(recs)
	if gt.NumInstances() != 2 {
		t.Fatalf("instances = %d, want 2", gt.NumInstances())
	}
	if gt.IDs[0] != gt.IDs[1] || gt.IDs[0] == gt.IDs[2] {
		t.Fatalf("IDs = %v", gt.IDs)
	}
}

func TestDesktopRequestLinking(t *testing.T) {
	// A mobile Chrome user requests the desktop page: the UA-derived
	// stable features change (browser family, OS, device), so the
	// initial IDs differ — the shared (user, cookie) pair must link them.
	mobile := rec(at(0), "u1", "ck", useragent.ChromeMobile, useragent.Android, "SM-G920F", 8)
	desktop := rec(at(1), "u1", "ck", useragent.Chrome, useragent.Linux, "", 8)
	back := rec(at(2), "u1", "ck", useragent.ChromeMobile, useragent.Android, "SM-G920F", 8)
	if InitialID(mobile) == InitialID(desktop) {
		t.Fatal("precondition: initial IDs should differ")
	}
	gt := Build([]*fingerprint.Record{mobile, desktop, back})
	if gt.NumInstances() != 1 {
		t.Fatalf("instances = %d, want 1 after linking", gt.NumInstances())
	}
	if gt.IDs[0] != gt.IDs[1] || gt.IDs[1] != gt.IDs[2] {
		t.Fatalf("IDs = %v, want all equal", gt.IDs)
	}
}

func TestNoLinkingAcrossUsers(t *testing.T) {
	// The same cookie value under different users must NOT link (cookies
	// are per-browser; a collision across users is an anomaly the FN
	// estimator counts, not a linking signal).
	a := rec(at(0), "u1", "ck", "Chrome", "Windows", "", 4)
	b := rec(at(1), "u2", "ck", "Chrome", "Mac OS X", "", 4)
	gt := Build([]*fingerprint.Record{a, b})
	if gt.NumInstances() != 2 {
		t.Fatalf("instances = %d, want 2", gt.NumInstances())
	}
}

func TestCookieClearingShare(t *testing.T) {
	recs := []*fingerprint.Record{
		// Instance 1: keeps one cookie.
		rec(at(0), "u1", "c1", "Chrome", "Windows", "", 4),
		rec(at(1), "u1", "c1", "Chrome", "Windows", "", 4),
		// Instance 2: clears cookies once (two cookie identities).
		rec(at(0), "u2", "c2", "Firefox", "Windows", "", 4),
		rec(at(1), "u2", "c3", "Firefox", "Windows", "", 4),
	}
	gt := Build(recs)
	if got := gt.CookieClearingShare(); got != 0.5 {
		t.Fatalf("clearing share = %v, want 0.5", got)
	}
}

func TestMultiBrowserUserShare(t *testing.T) {
	recs := []*fingerprint.Record{
		rec(at(0), "u1", "c1", "Chrome", "Windows", "", 4),
		rec(at(1), "u1", "c2", "Firefox", "Windows", "", 4), // same user, 2nd browser
		rec(at(0), "u2", "c3", "Chrome", "Windows", "", 4),
	}
	gt := Build(recs)
	if got := gt.MultiBrowserUserShare(); got != 0.5 {
		t.Fatalf("multi-browser share = %v, want 0.5", got)
	}
}

func TestEstimateFalsePositiveInterleaved(t *testing.T) {
	// One browser ID carrying two alternating recurring cookies: the
	// computer-lab scenario. Must be flagged as a false positive.
	recs := []*fingerprint.Record{
		rec(at(0), "u1", "cA", "Chrome", "Windows", "", 4),
		rec(at(1), "u1", "cB", "Chrome", "Windows", "", 4),
		rec(at(2), "u1", "cA", "Chrome", "Windows", "", 4),
		rec(at(3), "u1", "cB", "Chrome", "Windows", "", 4),
		// A clean second instance to dilute the rate.
		rec(at(0), "u2", "c2", "Firefox", "Windows", "", 4),
	}
	gt := Build(recs)
	r := gt.Estimate()
	if len(r.InterleavedInstances) != 1 {
		t.Fatalf("interleaved = %v, want exactly 1", r.InterleavedInstances)
	}
	if r.FalsePositiveRate != 0.5 {
		t.Fatalf("FP rate = %v, want 0.5", r.FalsePositiveRate)
	}
}

func TestEstimateCookieDeletionNotFlagged(t *testing.T) {
	// Plain cookie deletion: c1 c1 c2 c2 — never flagged.
	recs := []*fingerprint.Record{
		rec(at(0), "u1", "c1", "Chrome", "Windows", "", 4),
		rec(at(1), "u1", "c1", "Chrome", "Windows", "", 4),
		rec(at(2), "u1", "c2", "Chrome", "Windows", "", 4),
		rec(at(3), "u1", "c2", "Chrome", "Windows", "", 4),
	}
	r := Build(recs).Estimate()
	if r.FalsePositiveRate != 0 {
		t.Fatalf("deletion pattern flagged as FP: %+v", r)
	}
}

func TestEstimatePrivateBrowsingNotFlagged(t *testing.T) {
	// Private browsing: persistent c1 with throwaway one-shot cookies
	// between occurrences. The throwaways never recur, so no flag.
	recs := []*fingerprint.Record{
		rec(at(0), "u1", "c1", "Chrome", "Windows", "", 4),
		rec(at(1), "u1", "priv-1", "Chrome", "Windows", "", 4),
		rec(at(2), "u1", "c1", "Chrome", "Windows", "", 4),
		rec(at(3), "u1", "priv-2", "Chrome", "Windows", "", 4),
		rec(at(4), "u1", "c1", "Chrome", "Windows", "", 4),
	}
	r := Build(recs).Estimate()
	if r.FalsePositiveRate != 0 {
		t.Fatalf("private browsing pattern flagged as FP: %+v", r)
	}
}

func TestEstimateFalseNegativeSharedCookie(t *testing.T) {
	// The iTunes-backup scenario: the same cookie appears under two
	// different final instances (different users here, so no linking).
	recs := []*fingerprint.Record{
		rec(at(0), "u1", "shared", "Chrome", "Windows", "", 4),
		rec(at(1), "u2", "shared", "Chrome", "Mac OS X", "", 4),
		rec(at(0), "u3", "c3", "Firefox", "Windows", "", 4),
		rec(at(1), "u3", "c4", "Firefox", "Windows", "", 4), // clears cookies
	}
	gt := Build(recs)
	r := gt.Estimate()
	if r.AbnormalSharedCookieRate <= 0 {
		t.Fatal("shared cookie across instances not counted as abnormal")
	}
	if r.FalseNegativeRate <= 0 {
		t.Fatal("FN rate should be positive when abnormal cases exist and cookies are cleared")
	}
}

func TestEstimateEmpty(t *testing.T) {
	r := Build(nil).Estimate()
	if r.FalsePositiveRate != 0 || r.FalseNegativeRate != 0 {
		t.Fatalf("empty estimate = %+v", r)
	}
}

func TestHasInterleavedCookiesUnit(t *testing.T) {
	cases := []struct {
		seq  []string
		want bool
	}{
		{nil, false},
		{[]string{"a"}, false},
		{[]string{"a", "a", "b", "b"}, false},          // deletion
		{[]string{"a", "b", "a"}, false},               // b appears once: private browsing
		{[]string{"a", "b", "a", "b"}, true},           // interleaved
		{[]string{"a", "b", "b", "a"}, true},           // nested recurring
		{[]string{"x", "x", "x"}, false},               // single cookie
		{[]string{"a", "b", "c", "a", "c", "b"}, true}, // three-way
	}
	for _, c := range cases {
		if got := hasInterleavedCookies(c.seq); got != c.want {
			t.Errorf("hasInterleavedCookies(%v) = %v, want %v", c.seq, got, c.want)
		}
	}
}

func TestBuildManyInstancesScale(t *testing.T) {
	var recs []*fingerprint.Record
	for u := 0; u < 500; u++ {
		user := fmt.Sprintf("user-%d", u)
		cookie := fmt.Sprintf("ck-%d", u)
		for v := 0; v < 3; v++ {
			recs = append(recs, rec(at(u*10+v), user, cookie, "Chrome", "Windows", "", 4))
		}
	}
	gt := Build(recs)
	if gt.NumInstances() != 500 {
		t.Fatalf("instances = %d, want 500", gt.NumInstances())
	}
	if gt.MultiBrowserUserShare() != 0 {
		t.Fatal("no user has multiple browsers here")
	}
}

func BenchmarkBuild(b *testing.B) {
	var recs []*fingerprint.Record
	for u := 0; u < 1000; u++ {
		user := fmt.Sprintf("user-%d", u)
		for v := 0; v < 5; v++ {
			recs = append(recs, rec(at(u*10+v), user, fmt.Sprintf("ck-%d", u), "Chrome", "Windows", "", 4))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(recs)
	}
}
