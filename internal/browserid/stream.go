package browserid

import "fpdyn/internal/fingerprint"

// StreamBuilder constructs browser IDs over a record stream in two
// passes, holding state proportional to the number of distinct
// instances and (user, cookie) pairs — never the records themselves.
// It is the out-of-core counterpart of Build:
//
//	pass 1: for each record in time order, b.Observe(r)
//	        b.Seal()
//	pass 2: re-stream, b.CanonicalID(r) per record
//
// Pass 1 runs the same cookie-linking union pass BuildParallel runs (the
// first initial ID seen with a (user, cookie) pair owns it; a second ID
// under the same pair gets unioned), so for the same record order the
// canonical IDs are identical to BuildParallel's gt.IDs.
type StreamBuilder struct {
	uf unionFind
	// cookieOwner maps (user, cookie) to the first initial ID seen with
	// that cookie; a second initial ID under the same pair is an
	// exceptional case and gets linked.
	cookieOwner map[userCookie]string
	sealed      bool
}

type userCookie struct{ user, cookie string }

// NewStreamBuilder returns an empty builder ready for pass 1.
func NewStreamBuilder() *StreamBuilder {
	return &StreamBuilder{
		uf:          make(unionFind),
		cookieOwner: make(map[userCookie]string),
	}
}

// Observe feeds one pass-1 record. Records must arrive in time order —
// the owner of a (user, cookie) pair is the first initial ID seen with
// it, which is what makes the linking deterministic.
func (b *StreamBuilder) Observe(r *fingerprint.Record) {
	if b.sealed {
		panic("browserid: Observe after Seal")
	}
	b.observe(r, InitialID(r))
}

// ObserveWithID is Observe with the initial ID precomputed — callers
// (BuildParallel, the streaming report) hash IDs on a worker pool and
// keep only this bookkeeping serial. id must equal InitialID(r).
func (b *StreamBuilder) ObserveWithID(r *fingerprint.Record, id string) {
	if b.sealed {
		panic("browserid: Observe after Seal")
	}
	b.observe(r, id)
}

// observe is the shared pass-1 bookkeeping.
func (b *StreamBuilder) observe(r *fingerprint.Record, id string) {
	b.uf.union(id, id) // ensure present
	if r.Cookie == "" {
		return
	}
	key := userCookie{r.UserID, r.Cookie}
	if owner, ok := b.cookieOwner[key]; ok {
		if owner != id {
			b.uf.union(owner, id)
		}
	} else {
		b.cookieOwner[key] = id
	}
}

// Seal ends pass 1 and releases the cookie-ownership table; only the
// union-find survives into pass 2.
func (b *StreamBuilder) Seal() {
	b.sealed = true
	b.cookieOwner = nil
}

// CanonicalID returns the canonical (post-linking) browser ID of a
// record. Valid after Seal; equals the gt.IDs entry BuildParallel
// assigns the same record.
func (b *StreamBuilder) CanonicalID(r *fingerprint.Record) string {
	return b.CanonicalOf(InitialID(r))
}

// CanonicalOf resolves a precomputed initial ID to its canonical root.
func (b *StreamBuilder) CanonicalOf(initialID string) string {
	if !b.sealed {
		panic("browserid: CanonicalID before Seal")
	}
	return b.uf.find(initialID)
}

// EstimateAccumulator computes the §2.3.3 browser-ID error estimate and
// the user/cookie population shares from per-instance summaries, so a
// stream grouped by canonical browser ID can produce the same Rates,
// MultiBrowserUserShare and CookieClearingShare as the in-memory
// GroundTruth without holding any records. Feed one AddInstance call
// per canonical browser ID, in sorted ID order (the grouped merge
// yields that order; Rates.InterleavedInstances preserves it).
type EstimateAccumulator struct {
	instances   int
	clearing    int // instances with >1 distinct cookie
	interleaved []string

	// cookieFirst maps each cookie to the first instance seen with it;
	// a second instance marks both as abnormal (the cookie crossed
	// final browser IDs — §2.3.3's false-negative signal).
	cookieFirst map[string]string
	abnormal    map[string]bool

	// userInstances counts canonical instances per user (each instance
	// maps to exactly one user: the user ID is part of the stable key
	// and cookie links never cross users).
	userInstances map[string]int
}

// NewEstimateAccumulator returns an empty accumulator.
func NewEstimateAccumulator() *EstimateAccumulator {
	return &EstimateAccumulator{
		cookieFirst:   make(map[string]string),
		abnormal:      make(map[string]bool),
		userInstances: make(map[string]int),
	}
}

// AddInstance feeds one instance's summary: its user, and its
// time-ordered sequence of non-empty cookies.
func (e *EstimateAccumulator) AddInstance(id, user string, cookieSeq []string) {
	e.instances++
	e.userInstances[user]++
	if hasInterleavedCookies(cookieSeq) {
		e.interleaved = append(e.interleaved, id)
	}
	distinct := make(map[string]bool, len(cookieSeq))
	for _, c := range cookieSeq {
		distinct[c] = true
	}
	if len(distinct) > 1 {
		e.clearing++
	}
	for c := range distinct {
		if first, ok := e.cookieFirst[c]; ok {
			if first != id {
				e.abnormal[first] = true
				e.abnormal[id] = true
			}
		} else {
			e.cookieFirst[c] = id
		}
	}
}

// NumInstances returns the number of instances fed so far.
func (e *EstimateAccumulator) NumInstances() int { return e.instances }

// NumUsers returns the number of distinct users seen.
func (e *EstimateAccumulator) NumUsers() int { return len(e.userInstances) }

// MultiBrowserUserShare matches GroundTruth.MultiBrowserUserShare.
func (e *EstimateAccumulator) MultiBrowserUserShare() float64 {
	if len(e.userInstances) == 0 {
		return 0
	}
	multi := 0
	for _, n := range e.userInstances {
		if n > 1 {
			multi++
		}
	}
	return float64(multi) / float64(len(e.userInstances))
}

// CookieClearingShare matches GroundTruth.CookieClearingShare.
func (e *EstimateAccumulator) CookieClearingShare() float64 {
	if e.instances == 0 {
		return 0
	}
	return float64(e.clearing) / float64(e.instances)
}

// Rates returns the §2.3.3 estimate, identical to GroundTruth.Estimate
// over the same instances.
func (e *EstimateAccumulator) Rates() Rates {
	var r Rates
	if e.instances == 0 {
		return r
	}
	total := float64(e.instances)
	r.InterleavedInstances = e.interleaved
	r.FalsePositiveRate = float64(len(e.interleaved)) / total
	r.AbnormalSharedCookieRate = float64(len(e.abnormal)) / total
	r.CookieClearingShare = e.CookieClearingShare()
	r.FalseNegativeRate = r.AbnormalSharedCookieRate * r.CookieClearingShare / maxf(1-r.CookieClearingShare, 1e-9)
	if r.FalseNegativeRate > 1 {
		r.FalseNegativeRate = 1
	}
	return r
}
