package browserid

import (
	"reflect"
	"testing"

	"fpdyn/internal/population"
)

// TestBuildParallelMatchesSerial is the golden equivalence test: the
// ground truth built on one worker and on many must be identical on a
// realistic simulated dataset (cookie links, desktop requests, shared
// accounts included).
func TestBuildParallelMatchesSerial(t *testing.T) {
	ds := population.Simulate(population.DefaultConfig(200))
	serial := Build(ds.Records)
	for _, workers := range []int{2, 7, -1} {
		par := BuildParallel(ds.Records, workers)
		if !reflect.DeepEqual(serial.IDs, par.IDs) {
			t.Fatalf("workers=%d: canonical ID assignment differs", workers)
		}
		if !reflect.DeepEqual(serial.Instances, par.Instances) {
			t.Fatalf("workers=%d: instance grouping differs", workers)
		}
		if !reflect.DeepEqual(serial.UserInstances, par.UserInstances) {
			t.Fatalf("workers=%d: user→instances map differs", workers)
		}
	}
}
