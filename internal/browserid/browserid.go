// Package browserid implements the paper's ground-truth identifier
// (§2.3.1): the browser ID, a combination of the anonymized user ID and
// stable, hardware-flavoured browser features. Browser IDs beat the two
// obvious alternatives the paper discards —
//
//   - cookies: 32% of browser instances clear cookies at least once
//     (intelligent tracking prevention, private browsing), fragmenting
//     one instance into many cookie identities;
//   - user IDs alone: 14%+ of users visit from more than one device or
//     browser, merging several instances into one identity.
//
// Construction has two steps. First, an initial browser ID is derived
// from the user ID plus stable features (CPU class and cores, device
// and OS family, browser family, GPU vendor/renderer). Second,
// exceptional cases observed via cookies are linked: when the same
// (user, cookie) pair appears under two initial IDs — e.g. a mobile
// browser requesting the desktop version of a page, which rewrites the
// user agent wholesale — the two IDs are unioned.
//
// The package also implements the §2.3.3 estimation of how often
// browser IDs are wrong, using cookie appearance patterns: a cookie
// shared across two final browser IDs signals a false negative (they
// should have been linked); two interleaved cookies inside one browser
// ID signal a false positive (it should have been split).
package browserid

import (
	"fmt"
	"sort"
	"strconv"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/hashutil"
	"fpdyn/internal/parallel"
)

// StableKey is the tuple of stable features that seeds the initial
// browser ID. Software toggles the user controls (cookie/localStorage
// support) are deliberately excluded — §2.3.1 notes their changes are
// user-driven and unpredictable.
type StableKey struct {
	UserID      string
	CPUClass    string
	CPUCores    int
	OS          string // OS family from the parsed user agent
	Device      string // device model; empty on desktop
	Browser     string // browser family
	GPUVendor   string
	GPURenderer string
}

// KeyOf extracts the stable key from a visit record.
func KeyOf(r *fingerprint.Record) StableKey {
	return StableKey{
		UserID:      r.UserID,
		CPUClass:    r.FP.CPUClass,
		CPUCores:    r.FP.CPUCores,
		OS:          r.OS,
		Device:      r.Device,
		Browser:     r.Browser,
		GPUVendor:   r.FP.GPUVendor,
		GPURenderer: r.FP.GPURenderer,
	}
}

// InitialID derives the initial browser ID string for a record.
func InitialID(r *fingerprint.Record) string {
	k := KeyOf(r)
	return fmt.Sprintf("bid-%016x", hashutil.HashStrings(
		k.UserID, k.CPUClass, strconv.Itoa(k.CPUCores),
		k.OS, k.Device, k.Browser, k.GPUVendor, k.GPURenderer,
	))
}

// GroundTruth is the result of building browser IDs over a full raw
// dataset. Records are grouped per canonical (post-linking) browser ID
// in time order.
type GroundTruth struct {
	// IDs holds the canonical browser ID of each input record, in input
	// order.
	IDs []string
	// Instances groups records by canonical browser ID, each group in
	// time order.
	Instances map[string][]*fingerprint.Record
	// UserInstances maps each user ID to the set of canonical browser
	// IDs it was seen with.
	UserInstances map[string]map[string]bool

	uf unionFind // union-find over initial IDs
}

// Build constructs browser IDs for a raw dataset. Records must be in
// time order (the collection server stores them that way); Build does
// not reorder.
func Build(records []*fingerprint.Record) *GroundTruth {
	return BuildParallel(records, 1)
}

// BuildParallel is Build with the per-record stable-key hashing fanned
// out over a worker pool. The cookie-linking union pass is inherently
// order-dependent (the first initial ID seen with a (user, cookie)
// pair becomes the owner), so it stays serial over the precomputed
// IDs; its cost is a map probe per record, dwarfed by the hashing. The
// result is identical for every worker count.
func BuildParallel(records []*fingerprint.Record, workers int) *GroundTruth {
	b := NewStreamBuilder()
	initial := parallel.Map(workers, len(records), func(i int) string {
		return InitialID(records[i])
	})
	for i, r := range records {
		b.observe(r, initial[i])
	}
	b.Seal()

	gt := &GroundTruth{
		Instances:     make(map[string][]*fingerprint.Record),
		UserInstances: make(map[string]map[string]bool),
		uf:            b.uf,
	}
	gt.IDs = make([]string, len(records))
	for i, r := range records {
		id := gt.uf.find(initial[i])
		gt.IDs[i] = id
		gt.Instances[id] = append(gt.Instances[id], r)
		set := gt.UserInstances[r.UserID]
		if set == nil {
			set = make(map[string]bool)
			gt.UserInstances[r.UserID] = set
		}
		set[id] = true
	}
	return gt
}

// unionFind is a path-compressing union-find over browser-ID strings.
// The canonical root of every component is its lexicographically
// smallest member, which makes the final assignment independent of
// union order (only WHICH unions happen depends on record order).
type unionFind map[string]string

func (u unionFind) find(x string) string {
	p, ok := u[x]
	if !ok || p == x {
		return x
	}
	root := u.find(p)
	u[x] = root
	return root
}

func (u unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if _, ok := u[ra]; !ok {
		u[ra] = ra
	}
	if _, ok := u[rb]; !ok {
		u[rb] = rb
	}
	if ra == rb {
		return
	}
	// Deterministic canonical root: the lexicographically smaller ID.
	if rb < ra {
		ra, rb = rb, ra
	}
	u[rb] = ra
}

// NumInstances returns the number of distinct canonical browser IDs.
func (gt *GroundTruth) NumInstances() int { return len(gt.Instances) }

// InstanceIDs returns all canonical browser IDs, sorted (stable output
// for reports and tests).
func (gt *GroundTruth) InstanceIDs() []string {
	ids := make([]string, 0, len(gt.Instances))
	for id := range gt.Instances {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// MultiBrowserUserShare returns the fraction of users seen with more
// than one browser instance (the paper: 14% of users use multiple
// devices; over 15% use more than one browser).
func (gt *GroundTruth) MultiBrowserUserShare() float64 {
	if len(gt.UserInstances) == 0 {
		return 0
	}
	multi := 0
	for _, set := range gt.UserInstances {
		if len(set) > 1 {
			multi++
		}
	}
	return float64(multi) / float64(len(gt.UserInstances))
}

// CookieCounts returns, per canonical browser ID, the number of
// distinct non-empty cookies observed (Figure 3's bottom bar input).
func (gt *GroundTruth) CookieCounts() map[string]int {
	out := make(map[string]int, len(gt.Instances))
	for id, recs := range gt.Instances {
		seen := make(map[string]bool)
		for _, r := range recs {
			if r.Cookie != "" {
				seen[r.Cookie] = true
			}
		}
		out[id] = len(seen)
	}
	return out
}

// CookieClearingShare returns the fraction of browser instances with
// more than one cookie — the instances that cleared cookies at least
// once (paper: ~32%).
func (gt *GroundTruth) CookieClearingShare() float64 {
	if len(gt.Instances) == 0 {
		return 0
	}
	n := 0
	for _, c := range gt.CookieCounts() {
		if c > 1 {
			n++
		}
	}
	return float64(n) / float64(len(gt.Instances))
}
