package browserid

// The §2.3.3 estimation of browser-ID quality. Both estimates lean on
// cookie appearance patterns:
//
//   - False negative (two browser IDs should be one): the same cookie
//     shows up under two *final* browser IDs of the same user. Those
//     cases are linked when observable; the residual risk comes from
//     the ~32% of instances that clear cookies, where the signal is
//     unavailable. We extrapolate the observed abnormal rate onto the
//     cookie-clearing share, as the paper does.
//
//   - False positive (one browser ID should be two): two cookies
//     interleave in the instance's visit timeline (c1 … c2 … c1 with
//     both cookies recurring). Cookie deletion never resurrects an old
//     cookie and private browsing cookies appear exactly once, so a
//     genuine interleaving means two physical browsers were merged —
//     e.g. two identically configured lab machines used by one account.

// Rates is the §2.3.3 estimate.
type Rates struct {
	// AbnormalSharedCookieRate is the observed rate of instances whose
	// cookie also appeared under a different instance of the same user
	// before linking (paper: ~0.5%).
	AbnormalSharedCookieRate float64
	// CookieClearingShare is the fraction of instances with >1 cookie
	// (paper: ~32%).
	CookieClearingShare float64
	// FalseNegativeRate extrapolates the abnormal rate onto the
	// unobservable cookie-clearing population (paper: ~0.3%).
	FalseNegativeRate float64
	// FalsePositiveRate is the share of instances with interleaved
	// recurring cookies (paper: ~0.1%).
	FalsePositiveRate float64
	// InterleavedInstances lists the offending browser IDs for manual
	// inspection, sorted.
	InterleavedInstances []string
}

// Estimate computes the false positive/negative rates for the built
// ground truth.
func (gt *GroundTruth) Estimate() Rates {
	var r Rates
	total := len(gt.Instances)
	if total == 0 {
		return r
	}

	// False positives: interleaved recurring cookies within an instance.
	for _, id := range gt.InstanceIDs() {
		if hasInterleavedCookies(cookieSequence(gt, id)) {
			r.InterleavedInstances = append(r.InterleavedInstances, id)
		}
	}
	r.FalsePositiveRate = float64(len(r.InterleavedInstances)) / float64(total)

	// False negatives: count instances whose cookie is shared with a
	// *different* final instance (these survived linking because the
	// user IDs differ, e.g. faked identities, or an iTunes backup moved
	// a cookie between devices).
	cookieInstances := make(map[string]map[string]bool)
	for id, recs := range gt.Instances {
		for _, rec := range recs {
			if rec.Cookie == "" {
				continue
			}
			set := cookieInstances[rec.Cookie]
			if set == nil {
				set = make(map[string]bool)
				cookieInstances[rec.Cookie] = set
			}
			set[id] = true
		}
	}
	abnormal := make(map[string]bool)
	for _, set := range cookieInstances {
		if len(set) > 1 {
			for id := range set {
				abnormal[id] = true
			}
		}
	}
	r.AbnormalSharedCookieRate = float64(len(abnormal)) / float64(total)
	r.CookieClearingShare = gt.CookieClearingShare()
	r.FalseNegativeRate = r.AbnormalSharedCookieRate * r.CookieClearingShare / maxf(1-r.CookieClearingShare, 1e-9)
	if r.FalseNegativeRate > 1 {
		r.FalseNegativeRate = 1
	}
	return r
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// cookieSequence returns the time-ordered sequence of non-empty cookies
// for one instance.
func cookieSequence(gt *GroundTruth, id string) []string {
	recs := gt.Instances[id]
	seq := make([]string, 0, len(recs))
	for _, rec := range recs {
		if rec.Cookie != "" {
			seq = append(seq, rec.Cookie)
		}
	}
	return seq
}

// hasInterleavedCookies reports whether the sequence contains two
// distinct cookies that both recur and whose occurrence spans overlap —
// the "c1 … c2 … c1 again" pattern of §2.3.3. Deletion (each cookie one
// contiguous run) and private browsing (throwaway cookies appearing
// once) do not trigger it.
func hasInterleavedCookies(seq []string) bool {
	type span struct{ first, last, count int }
	spans := make(map[string]*span)
	for i, c := range seq {
		s := spans[c]
		if s == nil {
			spans[c] = &span{first: i, last: i, count: 1}
			continue
		}
		s.last = i
		s.count++
	}
	// Collect recurring cookies only.
	var rec []*span
	for _, s := range spans {
		if s.count >= 2 {
			rec = append(rec, s)
		}
	}
	for i := 0; i < len(rec); i++ {
		for j := i + 1; j < len(rec); j++ {
			a, b := rec[i], rec[j]
			if a.first > b.first {
				a, b = b, a
			}
			// b starts inside a's span: they interleave.
			if b.first < a.last {
				return true
			}
		}
	}
	return false
}
