package browserid_test

import (
	"fmt"
	"time"

	"fpdyn/internal/browserid"
	"fpdyn/internal/fingerprint"
)

// ExampleBuild constructs browser IDs from raw records, demonstrating
// the cookie-based linking of a mobile browser that requested the
// desktop version of a page (§2.3.1's exceptional case).
func ExampleBuild() {
	t0 := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	rec := func(h int, browser, os, device string) *fingerprint.Record {
		return &fingerprint.Record{
			Time:   t0.Add(time.Duration(h) * time.Hour),
			UserID: "alice", Cookie: "ck-1",
			Browser: browser, OS: os, Device: device,
			FP: &fingerprint.Fingerprint{CPUClass: "ARM", CPUCores: 8,
				GPUVendor: "ARM", GPURenderer: "Mali-G71"},
		}
	}
	records := []*fingerprint.Record{
		rec(0, "Chrome Mobile", "Android", "SM-G950F"),
		rec(1, "Chrome", "Linux", ""), // the desktop request
		rec(2, "Chrome Mobile", "Android", "SM-G950F"),
	}
	gt := browserid.Build(records)
	fmt.Println("instances:", gt.NumInstances())
	fmt.Println("all same ID:", gt.IDs[0] == gt.IDs[1] && gt.IDs[1] == gt.IDs[2])
	// Output:
	// instances: 1
	// all same ID: true
}
