package fingerprint

import (
	"fmt"

	"fpdyn/internal/hashutil"
)

// Kind is the diff semantics of a feature, following §2.3.2 of the
// paper: string features diff by ordered subfields, set features by set
// subtraction, and complex features (canvas, GPU images) by hash pair.
type Kind int

const (
	// KindString features diff as ordered subfields.
	KindString Kind = iota
	// KindSet features diff as added/deleted element sets.
	KindSet
	// KindHash features diff as an (old hash, new hash) pair.
	KindHash
)

func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindSet:
		return "set"
	case KindHash:
		return "hash"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ID identifies a feature in the schema. The enumeration order matches
// Table 1's row order so reports print in the paper's layout.
type ID int

// Feature identifiers, one per Table 1 row (leaf features only; the
// group rows of the table are aggregations the stats package computes).
const (
	FeatUserAgent ID = iota
	FeatAccept
	FeatEncoding
	FeatLanguage
	FeatTimezone
	FeatHeaderList
	FeatPlugins
	FeatCookie
	FeatWebGL
	FeatLocalStorage
	FeatAddBehavior
	FeatOpenDatabase
	FeatLanguageList
	FeatFontList
	FeatCanvas
	FeatGPUVendor
	FeatGPURenderer
	FeatGPUType
	FeatCPUCores
	FeatAudio
	FeatScreenResolution
	FeatColorDepth
	FeatCPUClass
	FeatPixelRatio
	FeatIPCity
	FeatIPRegion
	FeatIPCountry
	FeatConsLanguage
	FeatConsResolution
	FeatConsOS
	FeatConsBrowser
	FeatGPUImage

	// NumFeatures is the count of schema features; keep it last.
	NumFeatures
)

// Groups, matching Table 1's top-level rows.
const (
	GroupHTTP        = "HTTP Headers"
	GroupBrowser     = "Browser Features"
	GroupOS          = "OS Features"
	GroupHardware    = "Hardware Features"
	GroupIP          = "IP Features"
	GroupConsistency = "Consistency Features"
	GroupGPUImage    = "GPU Images"
)

// Desc describes one schema feature.
type Desc struct {
	ID    ID
	Name  string // display name, as printed in Table 1
	Group string
	Kind  Kind
	IsIP  bool // true for IP-derived features (excluded from core hash)
}

// Schema lists every feature in Table 1 order.
var Schema = []Desc{
	{FeatUserAgent, "User-agent", GroupHTTP, KindString, false},
	{FeatAccept, "Accept", GroupHTTP, KindString, false},
	{FeatEncoding, "Encoding", GroupHTTP, KindString, false},
	{FeatLanguage, "Language", GroupHTTP, KindString, false},
	{FeatTimezone, "Timezone", GroupHTTP, KindString, false},
	{FeatHeaderList, "HTTP Header List", GroupHTTP, KindSet, false},
	{FeatPlugins, "Plugins", GroupBrowser, KindSet, false},
	{FeatCookie, "Cookie Support", GroupBrowser, KindString, false},
	{FeatWebGL, "WebGL Support", GroupBrowser, KindString, false},
	{FeatLocalStorage, "localStorage Support", GroupBrowser, KindString, false},
	{FeatAddBehavior, "addBehavior Support", GroupBrowser, KindString, false},
	{FeatOpenDatabase, "openDatabase Support", GroupBrowser, KindString, false},
	{FeatLanguageList, "Language List", GroupOS, KindSet, false},
	{FeatFontList, "Font List", GroupOS, KindSet, false},
	{FeatCanvas, "Canvas Images", GroupOS, KindHash, false},
	{FeatGPUVendor, "GPU Vendor", GroupHardware, KindString, false},
	{FeatGPURenderer, "GPU Renderer", GroupHardware, KindString, false},
	{FeatGPUType, "GPU type", GroupHardware, KindString, false},
	{FeatCPUCores, "CPU Cores", GroupHardware, KindString, false},
	{FeatAudio, "Audio Card Info", GroupHardware, KindString, false},
	{FeatScreenResolution, "Screen Resolution", GroupHardware, KindString, false},
	{FeatColorDepth, "Color Depth", GroupHardware, KindString, false},
	{FeatCPUClass, "CPU Class", GroupHardware, KindString, false},
	{FeatPixelRatio, "Pixel Ratio", GroupHardware, KindString, false},
	{FeatIPCity, "IP City", GroupIP, KindString, true},
	{FeatIPRegion, "IP Region", GroupIP, KindString, true},
	{FeatIPCountry, "IP Country", GroupIP, KindString, true},
	{FeatConsLanguage, "Language", GroupConsistency, KindString, false},
	{FeatConsResolution, "Resolution", GroupConsistency, KindString, false},
	{FeatConsOS, "OS", GroupConsistency, KindString, false},
	{FeatConsBrowser, "Browser", GroupConsistency, KindString, false},
	{FeatGPUImage, "GPU Images", GroupGPUImage, KindHash, false},
}

// Describe returns the schema entry for id.
func Describe(id ID) Desc { return Schema[int(id)] }

// Value is a feature value in generic form: Str for string and hash
// kinds, Set for set kinds.
type Value struct {
	Kind Kind
	Str  string
	Set  []string
}

// Value extracts feature id from the fingerprint in generic form.
func (fp *Fingerprint) Value(id ID) Value {
	switch id {
	case FeatUserAgent:
		return Value{KindString, fp.UserAgent, nil}
	case FeatAccept:
		return Value{KindString, fp.Accept, nil}
	case FeatEncoding:
		return Value{KindString, fp.Encoding, nil}
	case FeatLanguage:
		return Value{KindString, fp.Language, nil}
	case FeatTimezone:
		return Value{KindString, fmt.Sprintf("%d", fp.TimezoneOffset), nil}
	case FeatHeaderList:
		return Value{KindSet, "", fp.HeaderList}
	case FeatPlugins:
		return Value{KindSet, "", fp.Plugins}
	case FeatCookie:
		return Value{KindString, boolStr(fp.CookieEnabled), nil}
	case FeatWebGL:
		return Value{KindString, boolStr(fp.WebGL), nil}
	case FeatLocalStorage:
		return Value{KindString, boolStr(fp.LocalStorage), nil}
	case FeatAddBehavior:
		return Value{KindString, boolStr(fp.AddBehavior), nil}
	case FeatOpenDatabase:
		return Value{KindString, boolStr(fp.OpenDatabase), nil}
	case FeatLanguageList:
		return Value{KindSet, "", fp.Languages}
	case FeatFontList:
		return Value{KindSet, "", fp.Fonts}
	case FeatCanvas:
		return Value{KindHash, fp.CanvasHash, nil}
	case FeatGPUVendor:
		return Value{KindString, fp.GPUVendor, nil}
	case FeatGPURenderer:
		return Value{KindString, fp.GPURenderer, nil}
	case FeatGPUType:
		return Value{KindString, fp.GPUType, nil}
	case FeatCPUCores:
		return Value{KindString, fmt.Sprintf("%d", fp.CPUCores), nil}
	case FeatAudio:
		return Value{KindString, fp.AudioInfo, nil}
	case FeatScreenResolution:
		return Value{KindString, fp.ScreenResolution, nil}
	case FeatColorDepth:
		return Value{KindString, fmt.Sprintf("%d", fp.ColorDepth), nil}
	case FeatCPUClass:
		return Value{KindString, fp.CPUClass, nil}
	case FeatPixelRatio:
		return Value{KindString, fp.PixelRatio, nil}
	case FeatIPCity:
		return Value{KindString, fp.IPCity, nil}
	case FeatIPRegion:
		return Value{KindString, fp.IPRegion, nil}
	case FeatIPCountry:
		return Value{KindString, fp.IPCountry, nil}
	case FeatConsLanguage:
		return Value{KindString, boolStr(fp.ConsLanguage), nil}
	case FeatConsResolution:
		return Value{KindString, boolStr(fp.ConsResolution), nil}
	case FeatConsOS:
		return Value{KindString, boolStr(fp.ConsOS), nil}
	case FeatConsBrowser:
		return Value{KindString, boolStr(fp.ConsBrowser), nil}
	case FeatGPUImage:
		return Value{KindHash, fp.GPUImageHash, nil}
	}
	panic(fmt.Sprintf("fingerprint: unknown feature id %d", id))
}

// Key returns a canonical string key for the feature value, suitable for
// counting distinct values (Table 1's "Distinct #" and "Unique #"
// columns). Set features are hashed order-independently.
func (v Value) Key() string {
	if v.Kind == KindSet {
		return fmt.Sprintf("set:%016x", hashutil.HashSet(v.Set))
	}
	return v.Str
}
