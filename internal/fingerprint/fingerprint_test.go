package fingerprint

import (
	"testing"
	"testing/quick"
	"time"
)

func sample() *Fingerprint {
	return &Fingerprint{
		UserAgent:        "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/63.0.3239.132 Safari/537.36",
		Accept:           "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8",
		Encoding:         "gzip, deflate, br",
		Language:         "en-US,en;q=0.9",
		HeaderList:       []string{"Host", "User-Agent", "Accept", "Accept-Encoding", "Accept-Language", "Cookie"},
		Plugins:          []string{"Chrome PDF Plugin", "Chrome PDF Viewer", "Native Client"},
		CookieEnabled:    true,
		WebGL:            true,
		LocalStorage:     true,
		TimezoneOffset:   60,
		Languages:        []string{"en-US", "de-DE"},
		Fonts:            []string{"Arial", "Calibri", "Verdana"},
		CanvasHash:       "14578bcaee87ff6fe7fee38ddfa2306a7e3b0a0a",
		GPUVendor:        "NVIDIA Corporation",
		GPURenderer:      "GeForce GTX 970",
		GPUType:          "Direct3D11",
		CPUCores:         4,
		CPUClass:         "x86",
		AudioInfo:        "channels:2;rate:44100",
		ScreenResolution: "1920x1080",
		ColorDepth:       24,
		PixelRatio:       "1",
		IPAddr:           "100.3.1.1",
		IPCity:           "Berlin",
		IPRegion:         "Berlin",
		IPCountry:        "Germany",
		ConsLanguage:     true,
		ConsResolution:   true,
		ConsOS:           true,
		ConsBrowser:      true,
		GPUImageHash:     "bd554a7d5da9293cf3fed52d2052b2b948a14b77",
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := sample()
	b := a.Clone()
	b.Fonts[0] = "Comic Sans MS"
	b.Plugins = append(b.Plugins, "Flash")
	if a.Fonts[0] != "Arial" {
		t.Fatal("Clone aliased Fonts")
	}
	if len(a.Plugins) != 3 {
		t.Fatal("Clone aliased Plugins")
	}
}

func TestHashStable(t *testing.T) {
	a, b := sample(), sample()
	if a.Hash(false) != b.Hash(false) {
		t.Fatal("identical fingerprints hash differently")
	}
	if a.Hash(true) != b.Hash(true) {
		t.Fatal("identical fingerprints hash differently with IP")
	}
}

func TestHashSensitivity(t *testing.T) {
	base := sample().Hash(false)
	mutations := []func(*Fingerprint){
		func(f *Fingerprint) { f.UserAgent += "x" },
		func(f *Fingerprint) { f.Fonts = append(f.Fonts, "MT Extra") },
		func(f *Fingerprint) { f.CookieEnabled = false },
		func(f *Fingerprint) { f.TimezoneOffset = 120 },
		func(f *Fingerprint) { f.CanvasHash = "0000000000000000000000000000000000000000" },
		func(f *Fingerprint) { f.CPUCores = 2 },
		func(f *Fingerprint) { f.PixelRatio = "2" },
	}
	for i, m := range mutations {
		f := sample()
		m(f)
		if f.Hash(false) == base {
			t.Errorf("mutation %d did not change the hash", i)
		}
	}
}

func TestHashIPExclusion(t *testing.T) {
	a, b := sample(), sample()
	b.IPCity, b.IPRegion, b.IPCountry = "Paris", "Île-de-France", "France"
	if a.Hash(false) != b.Hash(false) {
		t.Fatal("IP change affected the IP-excluded hash")
	}
	if a.Hash(true) == b.Hash(true) {
		t.Fatal("IP change must affect the IP-included hash")
	}
}

func TestHashSetOrderIndependence(t *testing.T) {
	a, b := sample(), sample()
	b.Fonts = []string{"Verdana", "Arial", "Calibri"} // same set, new order
	if a.Hash(false) != b.Hash(false) {
		t.Fatal("font order must not affect the hash")
	}
}

func TestEqual(t *testing.T) {
	a, b := sample(), sample()
	if !a.Equal(b) {
		t.Fatal("identical fingerprints not Equal")
	}
	b.Fonts = append(b.Fonts, "MT Extra")
	if a.Equal(b) {
		t.Fatal("different font lists reported Equal")
	}
}

func TestSchemaCompleteness(t *testing.T) {
	if len(Schema) != int(NumFeatures) {
		t.Fatalf("schema has %d entries, want %d", len(Schema), NumFeatures)
	}
	for i, d := range Schema {
		if int(d.ID) != i {
			t.Errorf("schema entry %d has ID %d; order must match enumeration", i, d.ID)
		}
		if d.Name == "" || d.Group == "" {
			t.Errorf("schema entry %d missing name/group", i)
		}
	}
}

func TestValueAllFeatures(t *testing.T) {
	fp := sample()
	for _, d := range Schema {
		v := fp.Value(d.ID)
		if v.Kind != d.Kind {
			t.Errorf("%s: value kind %v != schema kind %v", d.Name, v.Kind, d.Kind)
		}
		switch v.Kind {
		case KindSet:
			if v.Set == nil && d.ID != FeatHeaderList {
				t.Errorf("%s: nil set", d.Name)
			}
		case KindString, KindHash:
			_ = v.Str // may legitimately be empty
		}
		if v.Key() == "" && d.Kind == KindSet {
			t.Errorf("%s: empty key for set feature", d.Name)
		}
	}
}

func TestValueKeyDistinguishes(t *testing.T) {
	a, b := sample(), sample()
	b.Fonts = append(b.Fonts, "MT Extra")
	if a.Value(FeatFontList).Key() == b.Value(FeatFontList).Key() {
		t.Fatal("different font sets produced the same key")
	}
}

func TestAddRemoveFonts(t *testing.T) {
	fonts := []string{"Arial", "Calibri"}
	added := AddFonts(fonts, []string{"MT Extra", "Arial"})
	if len(added) != 3 || added[0] != "Arial" || added[1] != "Calibri" || added[2] != "MT Extra" {
		t.Fatalf("AddFonts = %v", added)
	}
	removed := RemoveFonts(added, []string{"Calibri"})
	if len(removed) != 2 || removed[0] != "Arial" || removed[1] != "MT Extra" {
		t.Fatalf("RemoveFonts = %v", removed)
	}
	if len(fonts) != 2 {
		t.Fatal("AddFonts mutated input")
	}
}

func TestHasFont(t *testing.T) {
	fp := sample()
	if !fp.HasFont("Arial") || fp.HasFont("MT Extra") {
		t.Fatal("HasFont wrong")
	}
}

func TestRecordJSONRoundTrip(t *testing.T) {
	r := &Record{
		Time:    time.Date(2018, 1, 15, 10, 30, 0, 0, time.UTC),
		UserID:  "ab12cd34",
		Cookie:  "ck-0001",
		FP:      sample(),
		Browser: "Chrome",
		OS:      "Windows",
	}
	b, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time.Equal(r.Time) || got.UserID != r.UserID || got.Cookie != r.Cookie {
		t.Fatalf("metadata round trip: %+v", got)
	}
	if !got.FP.Equal(r.FP) {
		t.Fatal("fingerprint did not round trip")
	}
}

func TestUnmarshalRecordError(t *testing.T) {
	if _, err := UnmarshalRecord([]byte("{not json")); err == nil {
		t.Fatal("expected error")
	}
}

// Property: Clone always produces an Equal fingerprint with an equal
// hash, regardless of which sample mutation created the original.
func TestClonePreservesHashProperty(t *testing.T) {
	f := func(cores uint8, tz int16, fontSeed uint8) bool {
		fp := sample()
		fp.CPUCores = int(cores)
		fp.TimezoneOffset = int(tz)
		if fontSeed%2 == 0 {
			fp.Fonts = append(fp.Fonts, "Extra Font")
		}
		c := fp.Clone()
		return c.Hash(true) == fp.Hash(true) && c.Equal(fp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHash(b *testing.B) {
	fp := sample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fp.Hash(false)
	}
}

func BenchmarkRecordMarshal(b *testing.B) {
	r := &Record{Time: time.Now(), UserID: "u", Cookie: "c", FP: sample()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}
