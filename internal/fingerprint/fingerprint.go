// Package fingerprint defines the browser-fingerprint feature model of
// the study: every feature of the paper's Table 1, a schema for generic
// feature iteration (the diff engine, the statistics pipeline and the
// FP-Stalker linker all walk features generically), stable hashing for
// anonymous-set grouping, and JSON serialization for the collection
// protocol.
package fingerprint

import (
	"fmt"
	"sort"
	"strings"

	"fpdyn/internal/hashutil"
)

// Fingerprint is one collected browser fingerprint: the full set of
// features our collection tool extracts during a visit. Field groups
// mirror Table 1 of the paper.
type Fingerprint struct {
	// HTTP header features.
	UserAgent  string   `json:"ua"`
	Accept     string   `json:"accept"`
	Encoding   string   `json:"enc"`
	Language   string   `json:"lang"`
	HeaderList []string `json:"hdrs"` // ordered list of header names sent

	// Browser features.
	Plugins        []string `json:"plugins"`
	CookieEnabled  bool     `json:"cookie"`
	WebGL          bool     `json:"webgl"`
	LocalStorage   bool     `json:"ls"`
	AddBehavior    bool     `json:"addbehavior"` // IE-only feature
	OpenDatabase   bool     `json:"opendb"`
	TimezoneOffset int      `json:"tz"` // minutes east of UTC

	// OS features.
	Languages  []string `json:"langs"` // installed system languages
	Fonts      []string `json:"fonts"` // fonts detected via side channel
	CanvasHash string   `json:"canvas"`

	// Hardware features.
	GPUVendor        string `json:"gpuVendor"`
	GPURenderer      string `json:"gpuRenderer"`
	GPUType          string `json:"gpuType"` // renderer class incl. API level, e.g. "Direct3D11"
	CPUCores         int    `json:"cores"`
	CPUClass         string `json:"cpuClass"`
	AudioInfo        string `json:"audio"` // e.g. "channels:2;rate:44100"
	ScreenResolution string `json:"screen"`
	ColorDepth       int    `json:"depth"`
	PixelRatio       string `json:"dpr"`

	// IP-derived features (not part of the core fingerprint for
	// identification — §3.1 — but collected for completeness).
	IPAddr    string `json:"ip"`
	IPCity    string `json:"ipCity"`
	IPRegion  string `json:"ipRegion"`
	IPCountry string `json:"ipCountry"`

	// Consistency features: whether two collection methods agreed.
	ConsLanguage   bool `json:"consLang"`
	ConsResolution bool `json:"consRes"`
	ConsOS         bool `json:"consOS"`
	ConsBrowser    bool `json:"consBrowser"`

	// WebGL-rendered GPU image hash.
	GPUImageHash string `json:"gpuImage"`
}

// Clone returns a deep copy; slice fields are duplicated so mutating the
// copy never aliases the original (the simulator evolves fingerprints in
// place between visits).
func (fp *Fingerprint) Clone() *Fingerprint {
	c := *fp
	c.HeaderList = append([]string(nil), fp.HeaderList...)
	c.Plugins = append([]string(nil), fp.Plugins...)
	c.Languages = append([]string(nil), fp.Languages...)
	c.Fonts = append([]string(nil), fp.Fonts...)
	return &c
}

// boolStr renders a boolean feature the way the collection script
// reports it.
func boolStr(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Hash returns the stable fingerprint hash used for anonymous-set
// grouping. IP features are excluded by default, matching the paper's
// "Overall (excluding IP)" row; pass includeIP to reproduce the full
// "Overall" row.
func (fp *Fingerprint) Hash(includeIP bool) uint64 {
	h := hashutil.HashStrings(
		fp.UserAgent, fp.Accept, fp.Encoding, fp.Language,
		strings.Join(fp.HeaderList, "\x00"),
		boolStr(fp.CookieEnabled), boolStr(fp.WebGL), boolStr(fp.LocalStorage),
		boolStr(fp.AddBehavior), boolStr(fp.OpenDatabase),
		fmt.Sprintf("%d", fp.TimezoneOffset),
		fp.CanvasHash,
		fp.GPUVendor, fp.GPURenderer, fp.GPUType,
		fmt.Sprintf("%d", fp.CPUCores), fp.CPUClass, fp.AudioInfo,
		fp.ScreenResolution, fmt.Sprintf("%d", fp.ColorDepth), fp.PixelRatio,
		boolStr(fp.ConsLanguage), boolStr(fp.ConsResolution),
		boolStr(fp.ConsOS), boolStr(fp.ConsBrowser),
		fp.GPUImageHash,
	)
	h = hashutil.Combine(h, hashutil.HashSet(fp.Plugins))
	h = hashutil.Combine(h, hashutil.HashSet(fp.Languages))
	h = hashutil.Combine(h, hashutil.HashSet(fp.Fonts))
	if includeIP {
		h = hashutil.Combine(h, hashutil.HashStrings(fp.IPCity, fp.IPRegion, fp.IPCountry))
	}
	return h
}

// Equal reports whether two fingerprints have identical feature values
// (ignoring the raw IP address but including IP city/region/country,
// i.e. the feature set of Table 1).
func (fp *Fingerprint) Equal(o *Fingerprint) bool {
	return fp.Hash(true) == o.Hash(true) &&
		fp.UserAgent == o.UserAgent && // hash collision guard on the top feature
		equalSlices(fp.Fonts, o.Fonts)
}

func equalSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// HasFont reports whether the fingerprint's font list contains name.
func (fp *Fingerprint) HasFont(name string) bool {
	for _, f := range fp.Fonts {
		if f == name {
			return true
		}
	}
	return false
}

// AddFonts returns fp's font list with the given fonts added (absent
// ones only), sorted. It does not mutate fp.
func AddFonts(fonts []string, add []string) []string {
	set := make(map[string]bool, len(fonts)+len(add))
	for _, f := range fonts {
		set[f] = true
	}
	for _, f := range add {
		set[f] = true
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// RemoveFonts returns fonts minus remove, sorted.
func RemoveFonts(fonts []string, remove []string) []string {
	rm := make(map[string]bool, len(remove))
	for _, f := range remove {
		rm[f] = true
	}
	out := make([]string, 0, len(fonts))
	for _, f := range fonts {
		if !rm[f] {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}
