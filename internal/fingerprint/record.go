package fingerprint

import (
	"encoding/json"
	"time"
)

// Record is one visit as stored by the collection server: the
// fingerprint plus the out-of-band identifiers the study uses for
// ground-truth construction (§2.2): the anonymized user ID (a hash of
// the username), the cookie instance the browser presented, and the
// collection timestamp.
type Record struct {
	Time    time.Time    `json:"t"`
	UserID  string       `json:"uid"`    // anonymized username hash
	Cookie  string       `json:"cookie"` // cookie instance ID; "" if cookies cleared/disabled
	FP      *Fingerprint `json:"fp"`
	Browser string       `json:"browser"` // parsed browser family (derived from UA at collection)
	OS      string       `json:"os"`      // parsed OS family
	Device  string       `json:"device"`  // parsed device model
	Mobile  bool         `json:"mobile"`
}

// Marshal encodes the record as JSON (the wire and storage format).
func (r *Record) Marshal() ([]byte, error) { return json.Marshal(r) }

// UnmarshalRecord decodes a record from its JSON form.
func UnmarshalRecord(b []byte) (*Record, error) {
	var r Record
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, err
	}
	return &r, nil
}
