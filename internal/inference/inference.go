// Package inference implements the paper's Insight 1 analyses: what
// privacy- and security-relevant facts leak from fingerprints and
// especially from their dynamics —
//
//   - emoji changes in one browser's canvas reveal updates of other
//     software on the device (a co-installed Samsung Browser, a Windows
//     security rollup) — Insight 1.1;
//   - font list contents and changes reveal installations and updates
//     of Microsoft Office, Adobe software, LibreOffice and WPS —
//     Insight 1.2;
//   - GPU image rendering maps back to masked GPU renderer/vendor
//     identities — Insight 1.3;
//   - impossible travel velocities between consecutive IPs reveal VPN
//     or proxy use — Insight 1.4.
package inference

import (
	"fpdyn/internal/canvas"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/fontdb"
)

// EmojiLeakReport counts dynamics whose canvas change is confined to
// the emoji band without an accompanying browser/OS update — the
// signature of another program updating the device's emoji assets.
type EmojiLeakReport struct {
	// LeakingDynamics counts emoji-only canvas changes not explained by
	// a browser or OS update, keyed by the observing browser family.
	LeakingDynamics map[string]int
	// LeakingInstances counts distinct affected browser IDs per family.
	LeakingInstances map[string]int
	// Total is the total number of such leaks.
	Total int
}

// EmojiLeaks scans classified dynamics for cross-software emoji leaks.
// The classifier must have image access for subtype resolution.
func EmojiLeaks(dyns []*dynamics.Dynamics, cl *dynamics.Classifier) EmojiLeakReport {
	rep := EmojiLeakReport{
		LeakingDynamics:  map[string]int{},
		LeakingInstances: map[string]int{},
	}
	seen := map[string]map[string]bool{}
	for _, d := range dyns {
		if !d.Delta.Has(fingerprint.FeatCanvas) {
			continue
		}
		c := cl.Classify(d)
		if !c.Has(dynamics.CauseCanvasEmoji) {
			continue
		}
		fam := d.To.Browser
		rep.LeakingDynamics[fam]++
		rep.Total++
		if seen[fam] == nil {
			seen[fam] = map[string]bool{}
		}
		seen[fam][d.BrowserID] = true
	}
	for fam, set := range seen {
		rep.LeakingInstances[fam] = len(set)
	}
	return rep
}

// SoftwareReport is the Insight 1.2 font-inference result.
type SoftwareReport struct {
	// OfficeUpdateInstances had the "MT Extra" font added by a dynamics
	// (the January-2018 Office update signature).
	OfficeUpdateInstances int
	// OfficeInstallDynamics observed the bulk Office font set appear.
	OfficeInstallDynamics int
	// OfficeInstalledInstances carry the Office font signature
	// statically (the paper: 50,869 instances).
	OfficeInstalledInstances int
	// AdobeInstances / LibreInstances / WPSInstances observed the
	// corresponding install signature in dynamics.
	AdobeInstances int
	LibreInstances int
	WPSInstances   int
}

// overlapCount counts how many of sig appear in add.
func overlapCount(add []string, sig []string) int {
	set := make(map[string]bool, len(sig))
	for _, f := range sig {
		set[f] = true
	}
	n := 0
	for _, f := range add {
		if set[f] {
			n++
		}
	}
	return n
}

// SoftwareFromFonts runs the font-signature inferences over dynamics
// and, for static detection, over each instance's latest fingerprint.
func SoftwareFromFonts(dyns []*dynamics.Dynamics, latest map[string]*fingerprint.Fingerprint) SoftwareReport {
	var rep SoftwareReport
	officeUpd := map[string]bool{}
	adobe := map[string]bool{}
	libre := map[string]bool{}
	wps := map[string]bool{}
	for _, d := range dyns {
		fd := d.Delta.Field(fingerprint.FeatFontList)
		if fd == nil {
			continue
		}
		switch {
		case len(fd.Added) == 1 && fd.Added[0] == fontdb.MTExtra:
			officeUpd[d.BrowserID] = true
		case overlapCount(fd.Added, fontdb.OfficeDetect) >= len(fontdb.OfficeDetect)/2:
			rep.OfficeInstallDynamics++
		case overlapCount(fd.Added, fontdb.Adobe) >= len(fontdb.Adobe)/2:
			adobe[d.BrowserID] = true
		case overlapCount(fd.Added, fontdb.LibreOffice) >= len(fontdb.LibreOffice)/2:
			libre[d.BrowserID] = true
		case overlapCount(fd.Added, fontdb.WPS) >= len(fontdb.WPS)/2:
			wps[d.BrowserID] = true
		}
	}
	rep.OfficeUpdateInstances = len(officeUpd)
	rep.AdobeInstances = len(adobe)
	rep.LibreInstances = len(libre)
	rep.WPSInstances = len(wps)

	for _, fp := range latest {
		if overlapCount(fp.Fonts, fontdb.OfficeDetect) >= 9*len(fontdb.OfficeDetect)/10 {
			rep.OfficeInstalledInstances++
		}
	}
	return rep
}

// GPUReport is the Insight 1.3 result: how precisely GPU images map
// back to renderers.
type GPUReport struct {
	DistinctImages int
	// UniqueShare is the fraction of distinct GPU images that map to
	// exactly one renderer (paper: 32% for Firefox images).
	UniqueShare float64
	// WithinThreeShare maps to at most three renderers (paper: 38%).
	WithinThreeShare float64
	// VendorAccuracy is, per GPU vendor, the fraction of that vendor's
	// images mapping to a single renderer — high for dedicated GPUs
	// (NVIDIA/Mali/PowerVR), low for integrated (Intel/AMD).
	VendorAccuracy map[string]float64
}

// GPUInference builds the image→renderer candidate mapping from
// observed records and scores its precision. truth maps each GPU image
// hash to the GPU that rendered it (the simulator ground truth standing
// in for the paper's correlation across browsers that expose the
// renderer).
func GPUInference(records []*fingerprint.Record, truth map[string]canvas.GPUInfo) GPUReport {
	imageRenderers := map[string]map[string]bool{}
	for _, r := range records {
		h := r.FP.GPUImageHash
		if h == "" {
			continue
		}
		set := imageRenderers[h]
		if set == nil {
			set = map[string]bool{}
			imageRenderers[h] = set
		}
		set[r.FP.GPURenderer] = true
	}
	rep := GPUReport{VendorAccuracy: map[string]float64{}}
	rep.DistinctImages = len(imageRenderers)
	if rep.DistinctImages == 0 {
		return rep
	}
	unique, within3 := 0, 0
	vendorTotal := map[string]int{}
	vendorUnique := map[string]int{}
	for h, set := range imageRenderers {
		if len(set) == 1 {
			unique++
		}
		if len(set) <= 3 {
			within3++
		}
		if gi, ok := truth[h]; ok {
			vendorTotal[gi.Vendor]++
			if len(set) == 1 {
				vendorUnique[gi.Vendor]++
			}
		}
	}
	rep.UniqueShare = float64(unique) / float64(rep.DistinctImages)
	rep.WithinThreeShare = float64(within3) / float64(rep.DistinctImages)
	for v, n := range vendorTotal {
		rep.VendorAccuracy[v] = float64(vendorUnique[v]) / float64(n)
	}
	return rep
}
