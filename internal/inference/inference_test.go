package inference

import (
	"testing"
	"time"

	"fpdyn/internal/browserid"
	"fpdyn/internal/diff"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/fontdb"
	"fpdyn/internal/geoip"
	"fpdyn/internal/population"
)

var infWorld *population.Dataset
var infGT *browserid.GroundTruth

func world(t testing.TB) (*population.Dataset, *browserid.GroundTruth) {
	if infWorld == nil {
		cfg := population.DefaultConfig(1500)
		cfg.Seed = 17
		infWorld = population.Simulate(cfg)
		infGT = browserid.Build(infWorld.Records)
	}
	return infWorld, infGT
}

func TestEmojiLeaksOnWorld(t *testing.T) {
	ds, gt := world(t)
	cl := &dynamics.Classifier{Images: dynamics.MapImages(ds.CanvasImages)}
	dyns := dynamics.Changed(dynamics.Generate(gt))
	rep := EmojiLeaks(dyns, cl)
	t.Logf("emoji leaks: total=%d per-family=%v", rep.Total, rep.LeakingDynamics)
	if rep.Total == 0 {
		t.Skip("no emoji leaks at this scale/seed")
	}
	for fam, n := range rep.LeakingInstances {
		if n > rep.LeakingDynamics[fam] {
			t.Errorf("%s: more instances (%d) than dynamics (%d)", fam, n, rep.LeakingDynamics[fam])
		}
	}
}

func TestSoftwareFromFontsCrafted(t *testing.T) {
	mk := func(id string, added []string) *dynamics.Dynamics {
		from := &fingerprint.Record{FP: &fingerprint.Fingerprint{Fonts: []string{"Arial"}}}
		to := &fingerprint.Record{FP: &fingerprint.Fingerprint{Fonts: fingerprint.AddFonts([]string{"Arial"}, added)}}
		return &dynamics.Dynamics{BrowserID: id, From: from, To: to, Delta: diff.Diff(from.FP, to.FP)}
	}
	dyns := []*dynamics.Dynamics{
		mk("b1", []string{fontdb.MTExtra}),
		mk("b2", fontdb.OfficeDetect),
		mk("b3", fontdb.LibreOffice),
		mk("b4", fontdb.Adobe),
		mk("b5", fontdb.WPS),
		mk("b6", []string{"Random Font"}),
	}
	latest := map[string]*fingerprint.Fingerprint{
		"s1": {Fonts: fingerprint.AddFonts([]string{"Arial"}, fontdb.OfficeDetect)},
		"s2": {Fonts: []string{"Arial"}},
	}
	rep := SoftwareFromFonts(dyns, latest)
	if rep.OfficeUpdateInstances != 1 {
		t.Errorf("office updates = %d, want 1", rep.OfficeUpdateInstances)
	}
	if rep.OfficeInstallDynamics != 1 {
		t.Errorf("office installs = %d, want 1", rep.OfficeInstallDynamics)
	}
	if rep.LibreInstances != 1 || rep.AdobeInstances != 1 || rep.WPSInstances != 1 {
		t.Errorf("libre/adobe/wps = %d/%d/%d, want 1 each", rep.LibreInstances, rep.AdobeInstances, rep.WPSInstances)
	}
	if rep.OfficeInstalledInstances != 1 {
		t.Errorf("static office installs = %d, want 1", rep.OfficeInstalledInstances)
	}
}

func TestSoftwareFromFontsOnWorld(t *testing.T) {
	ds, gt := world(t)
	dyns := dynamics.Changed(dynamics.Generate(gt))
	latest := map[string]*fingerprint.Fingerprint{}
	for id, recs := range gt.Instances {
		latest[id] = recs[len(recs)-1].FP
	}
	rep := SoftwareFromFonts(dyns, latest)
	t.Logf("software report: %+v", rep)
	if rep.OfficeInstalledInstances == 0 {
		t.Error("no Office installations detected statically; 35% of Windows devices have Office")
	}
	_ = ds
}

func TestGPUInference(t *testing.T) {
	ds, _ := world(t)
	rep := GPUInference(ds.Records, ds.GPUImageInfo)
	if rep.DistinctImages == 0 {
		t.Fatal("no GPU images")
	}
	t.Logf("GPU inference: distinct=%d unique=%.2f ≤3=%.2f vendors=%v",
		rep.DistinctImages, rep.UniqueShare, rep.WithinThreeShare, rep.VendorAccuracy)
	if rep.WithinThreeShare < rep.UniqueShare {
		t.Fatal("within-three share cannot be below unique share")
	}
	// Insight 1.3's asymmetry: dedicated GPUs (NVIDIA) infer better
	// than integrated ones (Intel).
	nv, hasNV := rep.VendorAccuracy["NVIDIA Corporation"]
	intel, hasIntel := rep.VendorAccuracy["Intel Inc."]
	if hasNV && hasIntel && nv < intel {
		t.Errorf("NVIDIA accuracy (%.2f) should exceed Intel (%.2f)", nv, intel)
	}
}

func TestGPUInferenceEmpty(t *testing.T) {
	rep := GPUInference(nil, nil)
	if rep.DistinctImages != 0 || rep.UniqueShare != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
}

func TestVelocityCrafted(t *testing.T) {
	geo := geoip.New(0)
	t0 := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	mk := func(city string, at time.Time) *fingerprint.Record {
		return &fingerprint.Record{Time: at, FP: &fingerprint.Fingerprint{IPCity: city}}
	}
	instances := map[string][]*fingerprint.Record{
		// The paper's case study: Kaluga → Lagos a day later (plane-
		// plausible), then back two hours later (impossible → VPN).
		"vpn-user": {
			mk("Kaluga", t0),
			mk("Lagos", t0.Add(24*time.Hour)),
			mk("Kaluga", t0.Add(26*time.Hour)),
		},
		// An ordinary commuter.
		"commuter": {
			mk("Berlin", t0),
			mk("Munich", t0.Add(6*time.Hour)),
		},
	}
	rep := Velocity(instances, geo)
	if rep.Pairs != 3 {
		t.Fatalf("pairs = %d, want 3", rep.Pairs)
	}
	if len(rep.VPNInstances) != 1 || rep.VPNInstances[0] != "vpn-user" {
		t.Fatalf("VPN instances = %v", rep.VPNInstances)
	}
	// Kaluga→Lagos over 24h is plane-speed (~270 km/h → Mid); the
	// two-hour return is impossible; Berlin→Munich over 6h is slow.
	if rep.Impossible != 1 || rep.Slow != 1 || rep.Mid != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Cases[0].SpeedKmh <= geoip.VPNThresholdKmh {
		t.Fatalf("case speed = %v", rep.Cases[0].SpeedKmh)
	}
}

func TestVelocityOnWorld(t *testing.T) {
	ds, gt := world(t)
	rep := Velocity(gt.Instances, ds.Geo)
	t.Logf("velocity: pairs=%d slow=%d mid=%d impossible=%d vpn-instances=%d",
		rep.Pairs, rep.Slow, rep.Mid, rep.Impossible, len(rep.VPNInstances))
	if rep.Pairs == 0 {
		t.Fatal("no movement pairs")
	}
	// The paper: most movement is slow; impossible hops exist (VPN
	// users are simulated at 0.5%).
	if rep.Slow == 0 {
		t.Error("no slow movements")
	}
	if len(rep.VPNInstances) == 0 {
		t.Skip("no VPN users sampled at this scale")
	}
}

func TestVelocitySkipsUnknownCities(t *testing.T) {
	geo := geoip.New(0)
	t0 := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	instances := map[string][]*fingerprint.Record{
		"x": {
			{Time: t0, FP: &fingerprint.Fingerprint{IPCity: "Nowhere"}},
			{Time: t0.Add(time.Hour), FP: &fingerprint.Fingerprint{IPCity: "Berlin"}},
		},
	}
	if rep := Velocity(instances, geo); rep.Pairs != 0 {
		t.Fatalf("unknown city counted: %+v", rep)
	}
}

func BenchmarkVelocity(b *testing.B) {
	ds, gt := world(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Velocity(gt.Instances, ds.Geo)
	}
}
