package inference

import (
	"testing"

	"fpdyn/internal/browserid"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/population"
)

func TestUnpatchedWindows7OnWorld(t *testing.T) {
	// A large world with many Windows 7 stragglers; the win7 emoji
	// update fires at 0.2% of old-emoji devices, so finding even one
	// observed transition needs scale.
	var ds *population.Dataset
	var gt *browserid.GroundTruth
	var rep PatchReport
	for _, seed := range []int64{101, 102, 103} {
		cfg := population.DefaultConfig(4000)
		cfg.Seed = seed
		ds = population.Simulate(cfg)
		gt = browserid.Build(ds.Records)
		cl := &dynamics.Classifier{Images: dynamics.MapImages(ds.CanvasImages)}
		dyns := dynamics.Changed(dynamics.Generate(gt))
		rep = UnpatchedWindows7(dyns, cl, gt.Instances)
		if rep.UpdateObserved > 0 {
			break
		}
	}
	if rep.UpdateObserved == 0 {
		t.Skip("no Windows 7 emoji update observed across seeds (rare event)")
	}
	t.Logf("updates observed: %d; old hashes: %d; unpatched instances: %d",
		rep.UpdateObserved, len(rep.OldHashes), rep.UnpatchedInstances)
	// The paper's asymmetry: far more unpatched instances than observed
	// updates (9 updates vs 6,968 unpatched).
	if rep.UnpatchedInstances <= rep.UpdateObserved {
		t.Errorf("unpatched (%d) should far exceed observed updates (%d)",
			rep.UnpatchedInstances, rep.UpdateObserved)
	}
}

func TestUnpatchedWindows7Empty(t *testing.T) {
	rep := UnpatchedWindows7(nil, &dynamics.Classifier{}, nil)
	if rep.UpdateObserved != 0 || rep.UnpatchedInstances != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
}
