package inference

import (
	"sort"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/geoip"
)

// VelocityReport is the Insight 1.4 analysis: movement speeds implied
// by consecutive visits' IP geolocations.
type VelocityReport struct {
	// Pairs is the number of consecutive-visit pairs examined.
	Pairs int
	// Slow counts pairs under 150 km/h (ordinary movement).
	Slow int
	// Mid counts pairs between 150 and the VPN threshold — the paper
	// observes this band is empty because proxies sit far away.
	Mid int
	// Impossible counts pairs above the 2,000 km/h threshold.
	Impossible int
	// VPNInstances lists browser IDs with at least one impossible hop,
	// sorted (the paper: 2,916 instances).
	VPNInstances []string
	// Cases holds one example hop per VPN instance for manual review.
	Cases []VelocityCase
}

// VelocityCase is one impossible-travel example (the paper's
// Kaluga→Lagos case study format).
type VelocityCase struct {
	BrowserID string
	FromCity  string
	ToCity    string
	Gap       time.Duration
	SpeedKmh  float64
}

// Velocity computes implied movement speeds for every instance's
// consecutive visit pairs. Cities are resolved through the geolocation
// database by name.
func Velocity(instances map[string][]*fingerprint.Record, geo *geoip.DB) VelocityReport {
	var rep VelocityReport
	vpn := map[string]VelocityCase{}
	for id, recs := range instances {
		for i := 1; i < len(recs); i++ {
			a, okA := geo.ByName(recs[i-1].FP.IPCity)
			b, okB := geo.ByName(recs[i].FP.IPCity)
			if !okA || !okB || a.Name == b.Name {
				continue
			}
			gap := recs[i].Time.Sub(recs[i-1].Time)
			v := geoip.Velocity(a, b, gap)
			rep.Pairs++
			switch {
			case v < 150:
				rep.Slow++
			case v <= geoip.VPNThresholdKmh:
				rep.Mid++
			default:
				rep.Impossible++
				if _, seen := vpn[id]; !seen {
					vpn[id] = VelocityCase{
						BrowserID: id, FromCity: a.Name, ToCity: b.Name,
						Gap: gap, SpeedKmh: v,
					}
				}
			}
		}
	}
	rep.VPNInstances = make([]string, 0, len(vpn))
	for id := range vpn {
		rep.VPNInstances = append(rep.VPNInstances, id)
	}
	sort.Strings(rep.VPNInstances)
	for _, id := range rep.VPNInstances {
		rep.Cases = append(rep.Cases, vpn[id])
	}
	return rep
}
