package inference

import (
	"fpdyn/internal/dynamics"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/useragent"
)

// Insight 1.1, case 2: a 2014 Windows 7 update installed new emojis;
// observing the corresponding canvas change reveals the patch was
// applied — and, more importantly, instances still rendering the *old*
// emoji have not applied a years-old security rollup. The paper works
// from the two known canvas hash values (Appendix A.2); this analysis
// reconstructs the hash reference set from observed update dynamics and
// then counts unpatched instances.

// PatchReport is the unpatched-instance analysis result.
type PatchReport struct {
	// UpdateObserved counts dynamics in which the patch's canvas
	// transition was observed (the paper: 9).
	UpdateObserved int
	// OldHashes is the reconstructed reference set of pre-patch canvas
	// hashes.
	OldHashes map[string]bool
	// UnpatchedInstances counts instances whose latest fingerprint
	// still renders a pre-patch canvas (the paper: 6,968).
	UnpatchedInstances int
}

// UnpatchedWindows7 reconstructs the pre-patch canvas reference set
// from observed Windows 7 emoji-update dynamics and counts instances
// still presenting it. latest maps browser ID to the instance's most
// recent fingerprint; records supply the UA parse for platform
// filtering.
func UnpatchedWindows7(dyns []*dynamics.Dynamics, cl *dynamics.Classifier,
	instances map[string][]*fingerprint.Record) PatchReport {

	rep := PatchReport{OldHashes: map[string]bool{}}
	for _, d := range dyns {
		fd := d.Delta.Field(fingerprint.FeatCanvas)
		if fd == nil {
			continue
		}
		if !isWindows7(d.To) {
			continue
		}
		c := cl.Classify(d)
		if !c.Has(dynamics.CauseCanvasEmoji) {
			continue
		}
		rep.UpdateObserved++
		rep.OldHashes[fd.OldHash] = true
	}
	if len(rep.OldHashes) == 0 {
		return rep
	}
	for _, recs := range instances {
		if len(recs) == 0 {
			continue
		}
		last := recs[len(recs)-1]
		if isWindows7(last) && rep.OldHashes[last.FP.CanvasHash] {
			rep.UnpatchedInstances++
		}
	}
	return rep
}

func isWindows7(r *fingerprint.Record) bool {
	if r.OS != useragent.Windows {
		return false
	}
	ua, err := useragent.CachedParse(r.FP.UserAgent)
	return err == nil && ua.OS == useragent.Windows && ua.OSVersion.Major == 7
}
