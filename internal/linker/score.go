package linker

import (
	"strings"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/useragent"
)

// score decides whether candidate e can be the same instance as the
// query and how strongly. It is a lean, allocation-light reimplementation
// of the dynamics classifier's reasoning (Advice 5), specialized for
// linking: every comparison works on direct fields and the pre-parsed
// user agents, so a non-matching candidate costs well under a
// microsecond — which is what makes the bucketed scan fast enough for
// the paper's 100ms real-time budget.
func (h *Hybrid) score(rec *fingerprint.Record, qUA useragent.UA, qOK bool, e *entry) (float64, bool) {
	a, b := e.rec.FP, rec.FP

	// Hard identity constraints: hardware counts and device models
	// never change within an instance. This is what fixes FP-Stalker's
	// Figure 11(c)/(d) false positives.
	if a.CPUCores != b.CPUCores || a.CPUClass != b.CPUClass {
		return 0, false
	}
	if a.GPUVendor != b.GPUVendor || a.GPURenderer != b.GPURenderer {
		return 0, false
	}
	if qOK && e.uaOK && qUA.Device != "" && e.ua.Device != "" && qUA.Device != e.ua.Device {
		return 0, false
	}

	changed := 0
	penalty := 0.0
	unexplained := 0

	// --- user agent semantics -----------------------------------------
	var update, swap bool
	if a.UserAgent != b.UserAgent {
		changed++
		switch {
		case qOK && e.uaOK && qUA.Browser == e.ua.Browser && qUA.OS == e.ua.OS:
			// Same identity: only forward version movement is credible.
			bv := qUA.BrowserVersion.Compare(e.ua.BrowserVersion)
			ov := qUA.OSVersion.Compare(e.ua.OSVersion)
			if bv < 0 || ov < 0 {
				return 0, false
			}
			update = true
			penalty += 0.1
		case qOK && e.uaOK && isDesktopPair(e.ua, qUA):
			// A desktop-site request: predictable identity swap
			// (fixes the Figure 11(a) false negative), credible when the
			// consistency features corroborate.
			if a.ConsOS && b.ConsOS {
				return 0, false
			}
			swap = true
			penalty += 0.5
		case !a.ConsBrowser || !b.ConsBrowser:
			// Spoofed agent string, flagged by the consistency check.
			swap = true
			penalty += 1.0
		default:
			return 0, false
		}
	}

	// --- trivially explained user actions ------------------------------
	if a.TimezoneOffset != b.TimezoneOffset {
		changed++
		penalty += 0.25 // travel
	}
	ckChanged := a.CookieEnabled != b.CookieEnabled
	lsChanged := a.LocalStorage != b.LocalStorage
	if ckChanged {
		changed++
		penalty += 0.25
	}
	if lsChanged {
		changed++
		penalty += 0.25
	}
	// Advice 7: Chrome couples the two toggles behind one checkbox; a
	// lone flip without a private-browsing signature is suspicious.
	if qOK && normalizedFamily(qUA) == "chrome-class" && ckChanged != lsChanged {
		if !(lsChanged && e.rec.Cookie != rec.Cookie) { // private browsing
			penalty += 1.5
		}
	}

	if a.ScreenResolution != b.ScreenResolution || a.PixelRatio != b.PixelRatio {
		changed++
		switch {
		case swap: // form-factor swap rewrites the whole display block
			penalty += 0.1
		case !a.ConsResolution || !b.ConsResolution: // spoofed
			penalty += 0.5
		default: // zoom or monitor switch
			penalty += 0.4
		}
	}

	// --- environment-flavoured features ---------------------------------
	if a.CanvasHash != b.CanvasHash {
		changed++
		if update || swap {
			penalty += 0.1 // updates repaint canvases
		} else {
			penalty += 0.5 // environment (emoji/font) update
		}
	}
	gpuTypeChanged := a.GPUType != b.GPUType
	audioChanged := a.AudioInfo != b.AudioInfo
	if a.GPUImageHash != b.GPUImageHash {
		changed++
		if update || swap || gpuTypeChanged {
			penalty += 0.2
		} else {
			unexplained++
		}
	}
	if gpuTypeChanged {
		changed++
		penalty += 0.3 // driver / API-level change
		// Advice 7: a DirectX move usually drags the audio rate along.
		if !audioChanged {
			penalty += 0.5
		}
	}
	if audioChanged {
		changed++
		penalty += 0.4
	}
	if a.ColorDepth != b.ColorDepth {
		changed++
		penalty += 0.5
	}

	// --- lists ----------------------------------------------------------
	if !sameStringSetQuick(a.Plugins, b.Plugins) {
		changed++
		switch {
		case update || swap:
			penalty += 0.2
		case pluginsFlashOnly(a.Plugins, b.Plugins):
			penalty += 0.25
		case len(b.Plugins) >= len(a.Plugins):
			penalty += 0.4 // install
		default:
			unexplained++
		}
	}
	if !sameStringSetQuick(a.Fonts, b.Fonts) {
		changed++
		if update || swap || len(b.Fonts) >= len(a.Fonts) {
			penalty += 0.3 // update-visible fonts or a software install
		} else {
			penalty += 0.8 // removals are rarer but happen (uninstalls)
		}
	}
	if !sameStringSetQuick(a.Languages, b.Languages) {
		changed++
		penalty += 0.4 // system language update
	}
	if a.Language != b.Language {
		changed++
		if !a.ConsLanguage || !b.ConsLanguage || samePrimaryLang(a.Language, b.Language) {
			penalty += 0.3
		} else {
			unexplained++
		}
	}
	if !sameStringSetQuick(a.HeaderList, b.HeaderList) || a.Accept != b.Accept || a.Encoding != b.Encoding {
		changed++
		if update || swap {
			penalty += 0.2
		} else {
			unexplained++
		}
	}
	// Consistency flips themselves.
	for _, flip := range []bool{
		a.ConsLanguage != b.ConsLanguage, a.ConsResolution != b.ConsResolution,
		a.ConsOS != b.ConsOS, a.ConsBrowser != b.ConsBrowser,
	} {
		if flip {
			changed++
			penalty += 0.1
		}
	}
	if a.WebGL != b.WebGL || a.AddBehavior != b.AddBehavior || a.OpenDatabase != b.OpenDatabase {
		changed++
		unexplained++
	}

	if unexplained > 1 || changed > h.MaxDiffs+4 {
		return 0, false
	}

	nonIP := 0
	for _, desc := range fingerprint.Schema {
		if !desc.IsIP {
			nonIP++
		}
	}
	score := float64(nonIP) - float64(changed) - penalty - 2*float64(unexplained)

	// Advice 8: release-calendar timing — an update toward a version
	// released shortly before the query time is expected.
	if update && qOK && h.releaseSupported(qUA, rec.Time) {
		score += 2.0
	}
	// Recency nudge for tie-breaking.
	if !e.rec.Time.IsZero() && rec.Time.After(e.rec.Time) {
		age := rec.Time.Sub(e.rec.Time).Hours()
		score += 1.0 / (1.0 + age/24.0)
	}
	return score, true
}

// isDesktopPair recognizes a mobile↔desktop identity swap that
// preserves the engine version (the desktop-request alias).
func isDesktopPair(a, b useragent.UA) bool {
	if a.Mobile == b.Mobile {
		return false
	}
	mob, desk := a, b
	if b.Mobile {
		mob, desk = b, a
	}
	return mob.RequestDesktop().Browser == desk.Browser &&
		mob.BrowserVersion.Compare(desk.BrowserVersion) == 0
}

// pluginsFlashOnly reports whether the plugin lists differ exactly by
// Shockwave Flash.
func pluginsFlashOnly(a, b []string) bool {
	longer, shorter := a, b
	if len(b) > len(a) {
		longer, shorter = b, a
	}
	if len(longer) != len(shorter)+1 {
		return false
	}
	j := 0
	extra := ""
	for _, s := range longer {
		if j < len(shorter) && shorter[j] == s {
			j++
			continue
		}
		if extra != "" {
			return false
		}
		extra = s
	}
	return extra == "Shockwave Flash" && j == len(shorter)
}

func samePrimaryLang(a, b string) bool {
	return primaryLang(a) == primaryLang(b) && primaryLang(a) != ""
}

func primaryLang(s string) string {
	if i := strings.IndexAny(s, ",;"); i >= 0 {
		s = s[:i]
	}
	if i := strings.IndexByte(s, '-'); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

// releaseSupported reports whether the query's browser version matches
// a calendar release that was out (and still in its adoption window)
// at the query time.
func (h *Hybrid) releaseSupported(ua useragent.UA, at time.Time) bool {
	for _, rel := range h.Releases {
		if rel.Family != ua.Browser {
			continue
		}
		if rel.V.Major != ua.BrowserVersion.Major {
			continue
		}
		if at.Before(rel.Date) {
			continue
		}
		if at.Sub(rel.Date) < 150*24*time.Hour {
			return true
		}
	}
	return false
}

// sameStringSetQuick approximates set equality for the sorted slices
// the pipeline produces: length plus three probe positions. Exact for
// sorted inputs in practice; a rare false negative only costs one
// penalty point.
func sameStringSetQuick(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	return a[0] == b[0] && a[len(a)-1] == b[len(b)-1] && a[len(a)/2] == b[len(b)/2]
}
