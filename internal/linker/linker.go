// Package linker implements the dynamics-aware fingerprint linker the
// paper's advice section sketches but leaves as future work:
//
//   - Advice 5: consider the *semantics* of dynamics — a desktop-site
//     request or a storage toggle is a predictable user action, not a
//     different browser (fixing the Figure 11(a)/(b) false negatives);
//   - Advice 6: cache — an exact-match index and a stable-feature
//     candidate index replace FP-Stalker's linear scan, meeting the
//     100ms real-time-bidding budget at scale;
//   - Advice 7: use feature correlations — a candidate whose delta
//     violates a known coupling (localStorage flipped without its
//     Chrome cookie twin; a GPU API level change without its audio
//     companion) is penalized;
//   - Advice 8: use real-world release timing — around a browser
//     release, version-advance deltas toward the released version are
//     expected and boosted.
//
// The linker satisfies the same fpstalker.Linker interface, so the
// Figure 9/10 harness compares all three implementations directly.
package linker

import (
	"sort"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/fpstalker"
	"fpdyn/internal/hashutil"
	"fpdyn/internal/population"
	"fpdyn/internal/useragent"
)

// Hybrid is the dynamics-aware linker. Construct with New.
type Hybrid struct {
	// MaxDiffs is the overall differing-feature budget after semantic
	// normalization (default 6 — slightly looser than FP-Stalker's,
	// because normalization already explains away action-driven diffs).
	MaxDiffs int
	// Releases enables Advice-8 timing boosts; defaults to the bundled
	// real-world calendar.
	Releases []population.Release

	entries []*entry
	byID    map[string]int
	byExact map[uint64][]int
	// byStable buckets entries by the narrow stable key (hardware +
	// normalized browser family + device model): the Advice-6 candidate
	// index — a typical query only scans its own small bucket.
	byStable map[uint64][]int
	// byClass buckets by the device-agnostic class key; used only by
	// queries whose identity is in flux (a desktop-request or spoofed
	// UA flagged by the consistency features), which must search across
	// form factors.
	byClass map[uint64][]int
	// byAlias holds only entries currently presenting an inconsistent
	// identity (ConsOS or ConsBrowser false), keyed by class: a normal
	// mobile query checks it to find its own desktop-requested past.
	byAlias map[uint64][]int
}

type entry struct {
	id     string
	rec    *fingerprint.Record
	ua     useragent.UA
	uaOK   bool
	stable uint64
	class  uint64
}

// New returns an empty hybrid linker with the bundled release calendar.
func New() *Hybrid {
	return &Hybrid{
		MaxDiffs: 6,
		Releases: population.BrowserReleases,
		byID:     make(map[string]int),
		byExact:  make(map[uint64][]int),
		byStable: make(map[uint64][]int),
		byClass:  make(map[uint64][]int),
		byAlias:  make(map[uint64][]int),
	}
}

var _ fpstalker.Linker = (*Hybrid)(nil)

// normalizedUA undoes predictable user actions on the presented UA:
// a desktop-site request maps back to the canonical mobile identity
// class. The stable key uses the browser family after normalization,
// so mobile Chrome and its desktop-requested alias share a bucket.
func normalizedFamily(ua useragent.UA) string {
	// Desktop requests present Chrome-on-Linux or Safari-on-macOS.
	// Bucket those with their mobile twins: the bucket key merges the
	// families that can alias under a desktop request.
	switch {
	case ua.Browser == useragent.Chrome && ua.OS == useragent.Linux:
		return "chrome-class"
	case ua.Browser == useragent.ChromeMobile || ua.Browser == useragent.Samsung:
		return "chrome-class"
	case ua.Browser == useragent.Safari || ua.Browser == useragent.MobileSafari:
		return "safari-class"
	case ua.Browser == useragent.Firefox || ua.Browser == useragent.FirefoxMobile:
		return "firefox-class"
	}
	return ua.Browser
}

// classKey buckets a record by the features that survive every
// dynamics category including identity swaps: GPU vendor/renderer, CPU
// class and the normalized browser family.
func classKey(rec *fingerprint.Record, ua useragent.UA, uaOK bool) uint64 {
	family := "unknown"
	if uaOK {
		family = normalizedFamily(ua)
	}
	return hashutil.HashStrings(
		rec.FP.GPUVendor, rec.FP.GPURenderer, rec.FP.CPUClass, family,
	)
}

// stableKey is the narrow bucket: class plus the device model, which
// never changes within an instance.
func stableKey(rec *fingerprint.Record, ua useragent.UA, uaOK bool) uint64 {
	device := ""
	if uaOK {
		device = ua.Device
	}
	return hashutil.Combine(classKey(rec, ua, uaOK), hashutil.Hash64(device))
}

// inconsistent reports whether the record presents a swapped identity
// (desktop request or spoofed agent), flagged by consistency features.
func inconsistent(rec *fingerprint.Record) bool {
	return !rec.FP.ConsOS || !rec.FP.ConsBrowser
}

// Len implements fpstalker.Linker.
func (h *Hybrid) Len() int { return len(h.entries) }

// Add implements fpstalker.Linker.
func (h *Hybrid) Add(id string, rec *fingerprint.Record) {
	e := &entry{id: id, rec: rec}
	if ua, err := useragent.CachedParse(rec.FP.UserAgent); err == nil {
		e.ua, e.uaOK = ua, true
	}
	e.class = classKey(rec, e.ua, e.uaOK)
	e.stable = hashutil.Combine(e.class, hashutil.Hash64(e.ua.Device))
	if i, ok := h.byID[id]; ok {
		old := h.entries[i]
		h.removeFrom(h.byExact, old.rec.FP.Hash(false), i)
		h.removeFrom(h.byStable, old.stable, i)
		h.removeFrom(h.byClass, old.class, i)
		if inconsistent(old.rec) {
			h.removeFrom(h.byAlias, old.class, i)
		}
		h.entries[i] = e
		h.indexEntry(e, i)
		return
	}
	h.entries = append(h.entries, e)
	i := len(h.entries) - 1
	h.byID[id] = i
	h.indexEntry(e, i)
}

func (h *Hybrid) indexEntry(e *entry, i int) {
	h.byExact[e.rec.FP.Hash(false)] = append(h.byExact[e.rec.FP.Hash(false)], i)
	h.byStable[e.stable] = append(h.byStable[e.stable], i)
	h.byClass[e.class] = append(h.byClass[e.class], i)
	if inconsistent(e.rec) {
		h.byAlias[e.class] = append(h.byAlias[e.class], i)
	}
}

func (h *Hybrid) removeFrom(m map[uint64][]int, key uint64, i int) {
	s := m[key]
	for k, v := range s {
		if v == i {
			s[k] = s[len(s)-1]
			m[key] = s[:len(s)-1]
			break
		}
	}
	if len(m[key]) == 0 {
		delete(m, key)
	}
}

// TopK implements fpstalker.Linker.
func (h *Hybrid) TopK(rec *fingerprint.Record, k int) []fpstalker.Candidate {
	if k <= 0 {
		return nil
	}
	// Advice 6 fast path: exact re-presentation.
	if idxs := h.byExact[rec.FP.Hash(false)]; len(idxs) > 0 {
		var cands []fpstalker.Candidate
		for _, i := range idxs {
			if h.entries[i].rec.FP.Equal(rec.FP) {
				cands = append(cands, fpstalker.Candidate{ID: h.entries[i].id, Score: 1e9})
			}
		}
		if len(cands) > 0 {
			sortCands(cands)
			if len(cands) > k {
				cands = cands[:k]
			}
			return cands
		}
	}

	qUA, qErr := useragent.CachedParse(rec.FP.UserAgent)
	qOK := qErr == nil
	// Candidate generation: the narrow device bucket for consistent
	// queries, widened to the whole class only when the query itself
	// presents a swapped identity; consistent queries additionally
	// check the (tiny) alias set in their class, to find their own
	// desktop-requested or spoofed past self.
	class := classKey(rec, qUA, qOK)
	var bucket []int
	if inconsistent(rec) {
		bucket = h.byClass[class]
	} else {
		bucket = h.byStable[stableKey(rec, qUA, qOK)]
		if alias := h.byAlias[class]; len(alias) > 0 {
			bucket = append(append([]int(nil), bucket...), alias...)
		}
	}
	var cands []fpstalker.Candidate
	seen := make(map[int]bool, len(bucket))
	for _, i := range bucket {
		if seen[i] {
			continue
		}
		seen[i] = true
		e := h.entries[i]
		score, ok := h.score(rec, qUA, qOK, e)
		if ok {
			cands = append(cands, fpstalker.Candidate{ID: e.id, Score: score})
		}
	}
	sortCands(cands)
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

func sortCands(cands []fpstalker.Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].ID < cands[j].ID
	})
}
