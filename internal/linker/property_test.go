package linker

import (
	"testing"

	"fpdyn/internal/fpstalker"
	"fpdyn/internal/population"
	"fpdyn/internal/useragent"
)

// Property: the hybrid never links across GPU vendors or renderers —
// the stable-feature bucket makes cross-hardware candidates impossible
// by construction.
func TestHybridNeverCrossesHardware(t *testing.T) {
	cfg := population.DefaultConfig(600)
	cfg.Seed = 55
	ds := population.Simulate(cfg)
	h := New()
	// Index every record under its instance; remember hardware per ID.
	hw := map[string][2]string{}
	for i, rec := range ds.Records {
		id := fpstalker.InstanceID(ds.TrueInstance[i])
		h.Add(id, rec)
		hw[id] = [2]string{rec.FP.GPUVendor, rec.FP.GPURenderer}
	}
	// Every candidate returned for every record must share its hardware.
	for i, rec := range ds.Records {
		if i%7 != 0 {
			continue // sample for speed
		}
		for _, c := range h.TopK(rec, 10) {
			got := hw[c.ID]
			if got[0] != rec.FP.GPUVendor || got[1] != rec.FP.GPURenderer {
				t.Fatalf("record %d (%s/%s) matched candidate %s with %s/%s",
					i, rec.FP.GPUVendor, rec.FP.GPURenderer, c.ID, got[0], got[1])
			}
		}
	}
}

// Property: TopK is deterministic — repeated queries return identical
// candidate lists.
func TestHybridTopKDeterministic(t *testing.T) {
	cfg := population.DefaultConfig(300)
	cfg.Seed = 56
	ds := population.Simulate(cfg)
	h := New()
	for i, rec := range ds.Records {
		h.Add(fpstalker.InstanceID(ds.TrueInstance[i]), rec)
	}
	for i := 0; i < len(ds.Records); i += 13 {
		a := h.TopK(ds.Records[i], 10)
		b := h.TopK(ds.Records[i], 10)
		if len(a) != len(b) {
			t.Fatalf("record %d: lengths differ", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("record %d: candidate %d differs: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
}

// Property: the candidate ordering respects scores (descending).
func TestHybridCandidatesSorted(t *testing.T) {
	cfg := population.DefaultConfig(300)
	cfg.Seed = 57
	ds := population.Simulate(cfg)
	h := New()
	for i, rec := range ds.Records {
		h.Add(fpstalker.InstanceID(ds.TrueInstance[i]), rec)
	}
	for i := 0; i < len(ds.Records); i += 11 {
		cands := h.TopK(ds.Records[i], 10)
		for j := 1; j < len(cands); j++ {
			if cands[j].Score > cands[j-1].Score {
				t.Fatalf("record %d: candidates unsorted: %v", i, cands)
			}
		}
	}
}

// The release boost must never apply to versions released after the
// query time.
func TestReleaseSupportedTimeWindow(t *testing.T) {
	h := New()
	ua := useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(66, 0, 3359, 117)}
	release := mustFind(t, useragent.Chrome, 66)
	if h.releaseSupported(ua, release.Date.Add(-24*60*60*1e9)) {
		t.Fatal("boost applied before the release date")
	}
	if !h.releaseSupported(ua, release.Date.Add(24*60*60*1e9)) {
		t.Fatal("boost missing right after the release")
	}
	if h.releaseSupported(ua, release.Date.Add(200*24*60*60*1e9)) {
		t.Fatal("boost applied long after the adoption window")
	}
}

func mustFind(t *testing.T, family string, major int) population.Release {
	t.Helper()
	for _, rel := range population.BrowserReleases {
		if rel.Family == family && rel.V.Major == major {
			return rel
		}
	}
	t.Fatalf("release %s %d not in calendar", family, major)
	return population.Release{}
}
