package linker

import (
	"testing"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/fpstalker"
	"fpdyn/internal/population"
	"fpdyn/internal/useragent"
)

var tBase = time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)

func chromeRec(v useragent.Version, t time.Time) *fingerprint.Record {
	ua := useragent.UA{Browser: useragent.Chrome, BrowserVersion: v, OS: useragent.Windows, OSVersion: useragent.V(10)}
	return &fingerprint.Record{
		Time: t,
		FP: &fingerprint.Fingerprint{
			UserAgent: ua.String(), Accept: "text/html", Encoding: "gzip, deflate, br",
			Language: "en-US,en;q=0.9", HeaderList: []string{"Host"},
			Plugins:       []string{"Chrome PDF Plugin"},
			CookieEnabled: true, WebGL: true, LocalStorage: true, TimezoneOffset: 60,
			Languages: []string{"en-US"}, Fonts: []string{"Arial", "Calibri"},
			CanvasHash: "c1", GPUVendor: "NVIDIA Corporation", GPURenderer: "GeForce GTX 970",
			GPUType: "ANGLE (Direct3D11)", CPUCores: 4, CPUClass: "x86",
			AudioInfo: "channels:2;rate:44100", ScreenResolution: "1920x1080",
			ColorDepth: 24, PixelRatio: "1",
			ConsLanguage: true, ConsResolution: true, ConsOS: true, ConsBrowser: true,
			GPUImageHash: "g1",
		},
		Browser: useragent.Chrome, OS: useragent.Windows,
	}
}

func mobileRec(t time.Time) *fingerprint.Record {
	ua := useragent.UA{Browser: useragent.ChromeMobile, BrowserVersion: useragent.V(64, 0, 3282, 137),
		OS: useragent.Android, OSVersion: useragent.V(8, 0, 0), Device: "SM-G950F", Mobile: true}
	r := chromeRec(useragent.V(64), t)
	r.FP.UserAgent = ua.String()
	r.FP.CPUCores = 8
	r.FP.CPUClass = "ARM"
	r.FP.GPUVendor, r.FP.GPURenderer = "ARM", "Mali-G71"
	r.FP.GPUType = "OpenGL ES 3.0"
	r.FP.ScreenResolution, r.FP.PixelRatio = "360x740", "4"
	r.FP.Plugins = nil
	r.Browser, r.OS, r.Mobile = useragent.ChromeMobile, useragent.Android, true
	return r
}

func TestHybridExactMatch(t *testing.T) {
	h := New()
	h.Add("a", chromeRec(useragent.V(63, 0, 3239, 132), tBase))
	got := h.TopK(chromeRec(useragent.V(63, 0, 3239, 132), tBase.Add(time.Hour)), 3)
	if len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("TopK = %v", got)
	}
}

func TestHybridFixesDesktopRequestFN(t *testing.T) {
	// FP-Stalker's Figure 11(a) false negative: the hybrid linker must
	// link a desktop-requested page back to the mobile instance.
	h := New()
	mob := mobileRec(tBase)
	h.Add("a", mob)
	q := mobileRec(tBase.Add(time.Hour))
	ua, _ := useragent.Parse(mob.FP.UserAgent)
	q.FP.UserAgent = ua.RequestDesktop().String()
	q.FP.ConsOS = false
	got := h.TopK(q, 10)
	if len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("hybrid failed to fix the desktop-request FN: %v", got)
	}
	// FP-Stalker fails here by design.
	rl := fpstalker.NewRuleLinker()
	rl.Add("a", mob)
	if rule := rl.TopK(q, 10); len(rule) != 0 {
		t.Fatalf("precondition: FP-Stalker should miss this case, got %v", rule)
	}
}

func TestHybridFixesStorageToggleFN(t *testing.T) {
	// Figure 11(b): cookies+localStorage disabled must still link.
	h := New()
	h.Add("a", chromeRec(useragent.V(63, 0, 3239, 132), tBase))
	q := chromeRec(useragent.V(63, 0, 3239, 132), tBase.Add(time.Hour))
	q.FP.CookieEnabled, q.FP.LocalStorage = false, false
	got := h.TopK(q, 10)
	if len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("hybrid failed to fix the storage-toggle FN: %v", got)
	}
}

func TestHybridFixesCPUCoresFP(t *testing.T) {
	// Figure 11(c): different CPU cores must NOT link.
	h := New()
	h.Add("a", chromeRec(useragent.V(63, 0, 3239, 132), tBase))
	q := chromeRec(useragent.V(63, 0, 3239, 132), tBase.Add(time.Hour))
	q.FP.CPUCores = 2
	if got := h.TopK(q, 10); len(got) != 0 {
		t.Fatalf("hybrid reproduced the CPU-cores FP: %v", got)
	}
}

func TestHybridFixesDeviceModelFP(t *testing.T) {
	// Figure 11(d): different device models must NOT link.
	h := New()
	a := mobileRec(tBase)
	h.Add("a", a)
	q := mobileRec(tBase.Add(time.Hour))
	ua, _ := useragent.Parse(q.FP.UserAgent)
	ua.Device = "SM-J330F"
	q.FP.UserAgent = ua.String()
	if got := h.TopK(q, 10); len(got) != 0 {
		t.Fatalf("hybrid reproduced the device-model FP: %v", got)
	}
}

func TestHybridRejectsDowngrade(t *testing.T) {
	h := New()
	h.Add("a", chromeRec(useragent.V(64, 0, 3282, 140), tBase))
	if got := h.TopK(chromeRec(useragent.V(63, 0, 3239, 132), tBase.Add(time.Hour)), 10); len(got) != 0 {
		t.Fatalf("downgrade linked: %v", got)
	}
}

func TestHybridReleaseTimingBoost(t *testing.T) {
	// Two identical candidates, one updated toward a real release at
	// query time: the updated transition must rank first thanks to the
	// Advice-8 boost. Construct: candidate "old" at v63, query at v64
	// just after the Chrome 64 release → the v63 entry gets the boost
	// over a v64 entry with extra unexplained noise.
	h := New()
	old := chromeRec(useragent.V(63, 0, 3239, 84), tBase)
	h.Add("updating", old)
	noisy := chromeRec(useragent.V(64, 0, 3282, 140), tBase)
	noisy.FP.AudioInfo = "channels:2;rate:48000" // unexplained-ish drift
	noisy.FP.Languages = []string{"en-US", "xx-XX"}
	h.Add("noisy", noisy)

	q := chromeRec(useragent.V(64, 0, 3282, 140), time.Date(2018, 2, 5, 0, 0, 0, 0, time.UTC))
	q.FP.CanvasHash = "c-new" // updates change canvas
	got := h.TopK(q, 2)
	if len(got) == 0 || got[0].ID != "updating" {
		t.Fatalf("release-aware ranking = %v, want 'updating' first", got)
	}
}

func TestHybridBucketsExcludeOtherHardware(t *testing.T) {
	h := New()
	a := chromeRec(useragent.V(63), tBase)
	h.Add("a", a)
	other := chromeRec(useragent.V(63), tBase)
	other.FP.GPURenderer = "GeForce GTX 1060"
	other.FP.GPUImageHash = "g2"
	h.Add("b", other)
	q := chromeRec(useragent.V(63), tBase.Add(time.Hour))
	q.FP.TimezoneOffset = 0 // break the exact match
	got := h.TopK(q, 10)
	for _, c := range got {
		if c.ID == "b" {
			t.Fatalf("candidate from a different GPU bucket: %v", got)
		}
	}
}

func TestHybridAddReplaces(t *testing.T) {
	h := New()
	h.Add("a", chromeRec(useragent.V(63, 0, 3239, 132), tBase))
	h.Add("a", chromeRec(useragent.V(64, 0, 3282, 140), tBase.Add(time.Hour)))
	if h.Len() != 1 {
		t.Fatalf("Len = %d", h.Len())
	}
}

// TestHybridBeatsFPStalker is the headline extension test: on the same
// replay, the hybrid linker must achieve a higher F1 than rule-based
// FP-Stalker and answer queries faster (bucketed candidate scan vs
// linear scan). The baseline is pinned to FP-Stalker as published —
// linear candidate scan, serial scoring — since fpstalker's own
// matching engine now blocks and parallelizes too, closing most of the
// latency gap this test documents.
func TestHybridBeatsFPStalker(t *testing.T) {
	cfg := population.DefaultConfig(1200)
	cfg.Seed = 33
	ds := population.Simulate(cfg)

	rl := fpstalker.NewRuleLinker()
	rl.NoBlocking = true
	rl.Workers = 1
	rule := fpstalker.Evaluate(rl, ds.Records, ds.TrueInstance, 10)
	hyb := fpstalker.Evaluate(New(), ds.Records, ds.TrueInstance, 10)

	t.Logf("rule-based: F1=%.3f P=%.3f R=%.3f mean=%v",
		rule.F1(), rule.Precision(), rule.Recall(), rule.MeanMatchTime)
	t.Logf("hybrid:     F1=%.3f P=%.3f R=%.3f mean=%v",
		hyb.F1(), hyb.Precision(), hyb.Recall(), hyb.MeanMatchTime)

	if hyb.F1() <= rule.F1() {
		t.Errorf("hybrid F1 %.3f did not beat rule-based %.3f", hyb.F1(), rule.F1())
	}
	if hyb.MeanMatchTime >= rule.MeanMatchTime {
		t.Errorf("hybrid mean match %v not faster than rule-based %v",
			hyb.MeanMatchTime, rule.MeanMatchTime)
	}
}

func BenchmarkHybridMatch(b *testing.B) {
	cfg := population.DefaultConfig(2000)
	ds := population.Simulate(cfg)
	h := New()
	for i, rec := range ds.Records {
		h.Add(fpstalker.InstanceID(ds.TrueInstance[i]), rec)
	}
	q := chromeRec(useragent.V(65, 0, 3325, 146), tBase)
	q.FP.CanvasHash = "unseen"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.TopK(q, 10)
	}
}
