package geoip

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewSeedOnly(t *testing.T) {
	db := New(0)
	if db.Len() != len(seedCities) {
		t.Fatalf("Len = %d, want %d", db.Len(), len(seedCities))
	}
}

func TestNewProceduralExpansion(t *testing.T) {
	db := New(500)
	if db.Len() != 500 {
		t.Fatalf("Len = %d, want 500", db.Len())
	}
	// Satellites inherit their anchor's country.
	sat := db.CityAt(len(seedCities))
	if sat.Country != seedCities[0].Country {
		t.Errorf("satellite country = %q, want %q", sat.Country, seedCities[0].Country)
	}
	for i := 0; i < db.Len(); i++ {
		c := db.CityAt(i)
		if c.Lat < -90 || c.Lat > 90 || c.Lon < -180 || c.Lon > 180 {
			t.Fatalf("city %d has out-of-range coordinates: %+v", i, c)
		}
	}
}

func TestByName(t *testing.T) {
	db := New(0)
	c, ok := db.ByName("Kaluga")
	if !ok || c.Country != "Russia" {
		t.Fatalf("Kaluga lookup = %+v, %v", c, ok)
	}
	if _, ok := db.ByName("Atlantis"); ok {
		t.Fatal("nonexistent city resolved")
	}
}

func TestIPForLookupRoundTrip(t *testing.T) {
	db := New(300)
	for _, idx := range []int{0, 1, 43, 44, 199, 200, 299} {
		for _, host := range []int{0, 1, 249, 250, 62499} {
			ip := db.IPFor(idx, host)
			c, ok := db.Lookup(ip)
			if !ok {
				t.Fatalf("Lookup(%s) failed for city %d", ip, idx)
			}
			if c != db.CityAt(idx) {
				t.Fatalf("Lookup(%s) = %+v, want %+v", ip, c, db.CityAt(idx))
			}
		}
	}
}

func TestLookupRejectsGarbage(t *testing.T) {
	db := New(50)
	for _, ip := range []string{"", "1.2.3", "8.8.8.8", "a.b.c.d", "99.1.1.1"} {
		if _, ok := db.Lookup(ip); ok {
			t.Errorf("Lookup(%q) should fail", ip)
		}
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	db := New(0)
	berlin, _ := db.ByName("Berlin")
	paris, _ := db.ByName("Paris")
	d := Haversine(berlin, paris)
	// Real-world Berlin–Paris is ~878 km.
	if d < 800 || d > 950 {
		t.Errorf("Berlin-Paris = %.0f km, want ~878", d)
	}
	if Haversine(berlin, berlin) != 0 {
		t.Error("distance to self must be 0")
	}
}

func TestVelocityVPNCaseStudy(t *testing.T) {
	// The paper's case study: Kaluga → Lagos in one day (plausible by
	// plane? Kaluga-Lagos is ~5,900 km, 1 day → ~246 km/h: below
	// threshold), then Lagos → Kaluga two hours later: ~2,950 km/h,
	// clearly VPN.
	db := New(0)
	kaluga, _ := db.ByName("Kaluga")
	lagos, _ := db.ByName("Lagos")
	v1 := Velocity(kaluga, lagos, 24*time.Hour)
	if v1 > VPNThresholdKmh {
		t.Errorf("day-long trip flagged as VPN: %.0f km/h", v1)
	}
	v2 := Velocity(lagos, kaluga, 2*time.Hour)
	if v2 <= VPNThresholdKmh {
		t.Errorf("two-hour return not flagged: %.0f km/h", v2)
	}
}

func TestVelocityDegenerate(t *testing.T) {
	db := New(0)
	a, _ := db.ByName("Berlin")
	b, _ := db.ByName("Paris")
	if v := Velocity(a, a, 0); v != 0 {
		t.Errorf("same-place zero-dt velocity = %v, want 0", v)
	}
	if v := Velocity(a, b, 0); !math.IsInf(v, 1) {
		t.Errorf("distinct-place zero-dt velocity = %v, want +Inf", v)
	}
}

// Property: haversine is symmetric, non-negative and bounded by half the
// Earth's circumference.
func TestHaversineProperty(t *testing.T) {
	db := New(1000)
	f := func(i, j uint16) bool {
		a, b := db.CityAt(int(i)), db.CityAt(int(j))
		d1, d2 := Haversine(a, b), Haversine(b, a)
		return d1 >= 0 && math.Abs(d1-d2) < 1e-6 && d1 <= math.Pi*earthRadiusKm+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every synthesized IP inverts to its city.
func TestIPRoundTripProperty(t *testing.T) {
	db := New(777)
	f := func(idx uint16, host uint16) bool {
		c, ok := db.Lookup(db.IPFor(int(idx), int(host)))
		return ok && c == db.CityAt(int(idx))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	db := New(2000)
	ip := db.IPFor(1234, 99)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Lookup(ip)
	}
}
