// Package geoip is the IP-geolocation substrate of the reproduction.
//
// The paper abstracts IP addresses into city/region/country features
// (Table 1) and, for Insight 1.4, resolves consecutive IPs to
// coordinates to compute a movement velocity: above 2,000 km/h implies a
// VPN or proxy. The real study used a public geolocation database; we
// substitute a synthetic one — a curated set of real-world city
// coordinates (the deployment website is European, so Europe is densest)
// extended procedurally to arbitrarily many cities. Every lookup is
// deterministic, and the IP address format is a valid dotted quad whose
// prefix encodes the city, so the whole pipeline handles realistic-
// looking addresses.
package geoip

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// City is one geolocation database entry.
type City struct {
	Name    string
	Region  string
	Country string
	Lat     float64
	Lon     float64
}

// DB is an immutable geolocation database. The zero value is unusable;
// construct with New.
type DB struct {
	cities []City
	byName map[string]int
}

// seedCities are real-world anchors, including the two cities of the
// paper's VPN case study (Kaluga → Lagos → Kaluga).
var seedCities = []City{
	{"Amsterdam", "North Holland", "Netherlands", 52.37, 4.90},
	{"Berlin", "Berlin", "Germany", 52.52, 13.40},
	{"Munich", "Bavaria", "Germany", 48.14, 11.58},
	{"Paris", "Île-de-France", "France", 48.86, 2.35},
	{"Lyon", "Auvergne-Rhône-Alpes", "France", 45.76, 4.84},
	{"London", "England", "United Kingdom", 51.51, -0.13},
	{"Manchester", "England", "United Kingdom", 53.48, -2.24},
	{"Madrid", "Community of Madrid", "Spain", 40.42, -3.70},
	{"Barcelona", "Catalonia", "Spain", 41.39, 2.17},
	{"Rome", "Lazio", "Italy", 41.90, 12.50},
	{"Milan", "Lombardy", "Italy", 45.46, 9.19},
	{"Vienna", "Vienna", "Austria", 48.21, 16.37},
	{"Zurich", "Zurich", "Switzerland", 47.38, 8.54},
	{"Brussels", "Brussels", "Belgium", 50.85, 4.35},
	{"Copenhagen", "Capital Region", "Denmark", 55.68, 12.57},
	{"Stockholm", "Stockholm", "Sweden", 59.33, 18.07},
	{"Oslo", "Oslo", "Norway", 59.91, 10.75},
	{"Helsinki", "Uusimaa", "Finland", 60.17, 24.94},
	{"Warsaw", "Masovia", "Poland", 52.23, 21.01},
	{"Prague", "Prague", "Czechia", 50.08, 14.44},
	{"Budapest", "Budapest", "Hungary", 47.50, 19.04},
	{"Lisbon", "Lisbon", "Portugal", 38.72, -9.14},
	{"Dublin", "Leinster", "Ireland", 53.35, -6.26},
	{"Athens", "Attica", "Greece", 37.98, 23.73},
	{"Bucharest", "Bucharest", "Romania", 44.43, 26.10},
	{"Sofia", "Sofia", "Bulgaria", 42.70, 23.32},
	{"Zagreb", "Zagreb", "Croatia", 45.81, 15.98},
	{"Kaluga", "Kaluga Oblast", "Russia", 54.51, 36.26},
	{"Moscow", "Moscow", "Russia", 55.76, 37.62},
	{"Istanbul", "Istanbul", "Turkey", 41.01, 28.98},
	{"Kyiv", "Kyiv", "Ukraine", 50.45, 30.52},
	{"Lagos", "Lagos State", "Nigeria", 6.52, 3.38},
	{"Cairo", "Cairo", "Egypt", 30.04, 31.24},
	{"New York", "New York", "United States", 40.71, -74.01},
	{"San Francisco", "California", "United States", 37.77, -122.42},
	{"Toronto", "Ontario", "Canada", 43.65, -79.38},
	{"São Paulo", "São Paulo", "Brazil", -23.55, -46.63},
	{"Tokyo", "Tokyo", "Japan", 35.68, 139.69},
	{"Seoul", "Seoul", "South Korea", 37.57, 126.98},
	{"Singapore", "Singapore", "Singapore", 1.35, 103.82},
	{"Sydney", "New South Wales", "Australia", -33.87, 151.21},
	{"Mumbai", "Maharashtra", "India", 19.08, 72.88},
	{"Beijing", "Beijing", "China", 39.90, 116.41},
	{"Johannesburg", "Gauteng", "South Africa", -26.20, 28.05},
}

// New builds a database with the seed cities plus (n - len(seed))
// procedurally generated satellite cities placed around the seeds.
// Passing n <= len(seed) returns just the seed set.
func New(n int) *DB {
	db := &DB{byName: make(map[string]int)}
	db.cities = append(db.cities, seedCities...)
	for i := len(seedCities); i < n; i++ {
		anchor := seedCities[i%len(seedCities)]
		k := i / len(seedCities)
		// Scatter satellites deterministically within ~±2° of the anchor.
		dLat := float64((i*2654435761)%400-200) / 100.0
		dLon := float64((i*40503)%400-200) / 100.0
		db.cities = append(db.cities, City{
			Name:    fmt.Sprintf("%s Satellite %d", anchor.Name, k),
			Region:  anchor.Region,
			Country: anchor.Country,
			Lat:     clampLat(anchor.Lat + dLat),
			Lon:     wrapLon(anchor.Lon + dLon),
		})
	}
	for i, c := range db.cities {
		db.byName[c.Name] = i
	}
	return db
}

func clampLat(v float64) float64 {
	if v > 85 {
		return 85
	}
	if v < -85 {
		return -85
	}
	return v
}

func wrapLon(v float64) float64 {
	for v > 180 {
		v -= 360
	}
	for v < -180 {
		v += 360
	}
	return v
}

// Len returns the number of cities.
func (db *DB) Len() int { return len(db.cities) }

// CityAt returns the i-th city (i modulo the database size, so any
// non-negative index is valid — convenient for the simulator).
func (db *DB) CityAt(i int) City { return db.cities[i%len(db.cities)] }

// ByName looks up a city by exact name.
func (db *DB) ByName(name string) (City, bool) {
	i, ok := db.byName[name]
	if !ok {
		return City{}, false
	}
	return db.cities[i], true
}

// IPFor synthesizes a stable dotted-quad address for (city index, host).
// The first two octets encode the city so Lookup can invert it; the rest
// encode the host. Addresses stay within 100.64.0.0/10-adjacent space to
// avoid colliding with documented real ranges in reports.
func (db *DB) IPFor(cityIdx, host int) string {
	cityIdx %= len(db.cities)
	return fmt.Sprintf("%d.%d.%d.%d", 100+cityIdx/200, cityIdx%200+1, (host/250)%250+1, host%250+1)
}

// Lookup resolves an address produced by IPFor back to its city.
func (db *DB) Lookup(ip string) (City, bool) {
	parts := strings.Split(ip, ".")
	if len(parts) != 4 {
		return City{}, false
	}
	a, err1 := strconv.Atoi(parts[0])
	b, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || a < 100 || b < 1 {
		return City{}, false
	}
	idx := (a-100)*200 + b - 1
	if idx < 0 || idx >= len(db.cities) {
		return City{}, false
	}
	return db.cities[idx], true
}

const earthRadiusKm = 6371.0

// Haversine returns the great-circle distance between two cities in km.
func Haversine(a, b City) float64 {
	lat1, lon1 := a.Lat*math.Pi/180, a.Lon*math.Pi/180
	lat2, lon2 := b.Lat*math.Pi/180, b.Lon*math.Pi/180
	dLat, dLon := lat2-lat1, lon2-lon1
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(h))
}

// Velocity returns the implied movement speed in km/h between two cities
// visited dt apart. A non-positive dt yields +Inf for distinct cities
// and 0 for the same place.
func Velocity(a, b City, dt time.Duration) float64 {
	d := Haversine(a, b)
	if dt <= 0 {
		if d == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return d / dt.Hours()
}

// VPNThresholdKmh is the paper's Insight 1.4 cutoff: movement above
// 2,000 km/h is impossible even by plane, so the instance is using a
// VPN or proxy.
const VPNThresholdKmh = 2000.0

// FarFrom returns the index of a city at least minKm away from the
// city at idx, scanning deterministically from the given start offset
// (typically a random number). If no city qualifies, idx is returned.
func (db *DB) FarFrom(idx int, minKm float64, start int) int {
	from := db.CityAt(idx)
	n := len(db.cities)
	if start < 0 {
		start = -start
	}
	for k := 0; k < n; k++ {
		cand := (start + k) % n
		if Haversine(from, db.cities[cand]) >= minKm {
			return cand
		}
	}
	return idx % n
}
