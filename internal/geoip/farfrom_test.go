package geoip

import "testing"

func TestFarFrom(t *testing.T) {
	db := New(500)
	berlin := 1 // Berlin's seed index
	for start := 0; start < 500; start += 37 {
		idx := db.FarFrom(berlin, 5000, start)
		d := Haversine(db.CityAt(berlin), db.CityAt(idx))
		if d < 5000 {
			t.Fatalf("FarFrom(start=%d) = %d at %.0f km, want ≥ 5000", start, idx, d)
		}
	}
}

func TestFarFromNegativeStart(t *testing.T) {
	db := New(100)
	idx := db.FarFrom(0, 5000, -17)
	if d := Haversine(db.CityAt(0), db.CityAt(idx)); d < 5000 {
		t.Fatalf("negative start mishandled: %.0f km", d)
	}
}

func TestFarFromImpossibleDistance(t *testing.T) {
	// No city can be 50,000 km away: FarFrom falls back to the origin.
	db := New(100)
	if idx := db.FarFrom(7, 50000, 3); idx != 7 {
		t.Fatalf("fallback = %d, want the origin index", idx)
	}
}

func TestClampAndWrap(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{90, 85}, {-90, -85}, {50, 50},
	}
	for _, c := range cases {
		if got := clampLat(c.in); got != c.want {
			t.Errorf("clampLat(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	wrapCases := []struct{ in, want float64 }{
		{190, -170}, {-190, 170}, {0, 0}, {540, 180},
	}
	for _, c := range wrapCases {
		if got := wrapLon(c.in); got != c.want {
			t.Errorf("wrapLon(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
