package hashutil

import (
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	if Hash64("hello") != Hash64("hello") {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64("hello") == Hash64("hellp") {
		t.Fatal("Hash64 collided on near-identical strings")
	}
}

func TestHash64Empty(t *testing.T) {
	if Hash64("") != uint64(fnvOffset64) {
		t.Fatalf("empty hash = %d, want offset basis", Hash64(""))
	}
}

func TestHash64BytesMatchesString(t *testing.T) {
	s := "user agent string"
	if Hash64(s) != Hash64Bytes([]byte(s)) {
		t.Fatal("string and byte variants disagree")
	}
}

func TestCombineOrderSensitive(t *testing.T) {
	a, b := Hash64("a"), Hash64("b")
	if Combine(a, b) == Combine(b, a) {
		t.Fatal("Combine should be order sensitive")
	}
}

func TestHashStringsLengthPrefixed(t *testing.T) {
	if HashStrings("ab", "c") == HashStrings("a", "bc") {
		t.Fatal(`("ab","c") and ("a","bc") must not collide`)
	}
}

func TestHashStringsOrderSensitive(t *testing.T) {
	if HashStrings("x", "y") == HashStrings("y", "x") {
		t.Fatal("HashStrings must be order sensitive")
	}
}

func TestHashSetOrderIndependent(t *testing.T) {
	a := HashSet([]string{"Arial", "Calibri", "MT Extra"})
	b := HashSet([]string{"MT Extra", "Arial", "Calibri"})
	if a != b {
		t.Fatal("HashSet must be order independent")
	}
	c := HashSet([]string{"Arial", "Calibri"})
	if a == c {
		t.Fatal("different sets must hash differently")
	}
}

func TestHashSetDoesNotMutate(t *testing.T) {
	in := []string{"z", "a", "m"}
	HashSet(in)
	if in[0] != "z" || in[1] != "a" || in[2] != "m" {
		t.Fatal("HashSet mutated its input")
	}
}

func TestHashSetEmpty(t *testing.T) {
	if HashSet(nil) != HashSet([]string{}) {
		t.Fatal("nil and empty set should hash identically")
	}
}

func TestSHA1HexFormat(t *testing.T) {
	h := SHA1Hex("canvas pixels")
	if len(h) != 40 {
		t.Fatalf("SHA1Hex length = %d, want 40", len(h))
	}
	for _, c := range h {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			t.Fatalf("non-hex character %q in %s", c, h)
		}
	}
}

func TestSHA1HexKnownValue(t *testing.T) {
	// SHA-1 of the empty string is a well-known constant.
	if got := SHA1Hex(""); got != "da39a3ee5e6b4b0d3255bfef95601890afd80709" {
		t.Fatalf("SHA1Hex(\"\") = %s", got)
	}
}

func TestShort(t *testing.T) {
	if got := Short("user@example.org"); len(got) != 8 {
		t.Fatalf("Short length = %d, want 8", len(got))
	}
}

// Property: permuting a set never changes its hash.
func TestHashSetPermutationProperty(t *testing.T) {
	f := func(ss []string, seed uint8) bool {
		perm := make([]string, len(ss))
		copy(perm, ss)
		// Deterministic pseudo-shuffle driven by seed.
		for i := range perm {
			j := (i*int(seed+1) + int(seed)) % len(perm)
			perm[i], perm[j] = perm[j], perm[i]
		}
		return HashSet(ss) == HashSet(perm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Hash64 equals Hash64Bytes for arbitrary data.
func TestHash64EquivalenceProperty(t *testing.T) {
	f := func(b []byte) bool {
		return Hash64(string(b)) == Hash64Bytes(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: HashStrings is injective with respect to element boundaries
// for simple two-element splits of a string.
func TestHashStringsBoundaryProperty(t *testing.T) {
	f := func(s string) bool {
		if len(s) < 2 {
			return true
		}
		mid := len(s) / 2
		// Splitting at different points must give different hashes unless
		// the halves are literally identical strings in both splits.
		a := HashStrings(s[:mid], s[mid:])
		b := HashStrings(s[:mid-1], s[mid-1:])
		if s[:mid] == s[:mid-1] { // impossible: different lengths
			return true
		}
		return a != b || s[:mid] == s[:mid-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHash64(b *testing.B) {
	s := "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/63.0.3239.132 Safari/537.36"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Hash64(s)
	}
}

func BenchmarkHashSet40Fonts(b *testing.B) {
	fonts := make([]string, 40)
	for i := range fonts {
		fonts[i] = "Font Family " + string(rune('A'+i%26)) + string(rune('0'+i%10))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HashSet(fonts)
	}
}
