// Package hashutil provides the stable hashing primitives used throughout
// the fingerprint-dynamics pipeline.
//
// The measurement platform hashes three kinds of objects:
//
//   - individual feature values (for the hash-dedup transfer protocol of
//     the collection client, §2.2.1 of the paper),
//   - whole fingerprints (for anonymous-set grouping, §3.1), and
//   - canonical deltas (so that the same update applied to two different
//     browser instances collides to the same dynamics value, §2.3.2).
//
// All hashes are deterministic across runs and platforms: tests, the
// simulator and the storage server all rely on replaying a dataset and
// getting bit-identical identifiers.
package hashutil

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
)

// FNV-1a constants (64-bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash64 returns the 64-bit FNV-1a hash of s. It is the workhorse hash for
// feature values: fast, allocation-free and stable.
func Hash64(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// Hash64Bytes is Hash64 over a byte slice.
func Hash64Bytes(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// Combine folds two 64-bit hashes into one. It is order sensitive:
// Combine(a, b) != Combine(b, a) in general, which is what fingerprint
// hashing needs (features are hashed in a fixed schema order).
func Combine(a, b uint64) uint64 {
	// Boost-style hash_combine adapted to 64 bits.
	a ^= b + 0x9e3779b97f4a7c15 + (a << 12) + (a >> 4)
	return a * fnvPrime64
}

// HashStrings hashes a sequence of strings in order, with a length prefix
// per element so that ("ab","c") and ("a","bc") do not collide.
func HashStrings(ss ...string) uint64 {
	h := uint64(fnvOffset64)
	var lenBuf [8]byte
	for _, s := range ss {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(s)))
		for _, c := range lenBuf {
			h ^= uint64(c)
			h *= fnvPrime64
		}
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= fnvPrime64
		}
	}
	return h
}

// HashUint64s hashes a uint64 slice in order, mixing in the length so
// prefixes do not collide with their extensions. It keys the content-
// addressed intern pools of the FP-Stalker entry store: equal slices
// always hash equal, and distinct slices collide with probability
// ~2^-64 (colliding candidates are verified by full comparison, so a
// collision costs a compare, not correctness).
func HashUint64s(vs []uint64) uint64 {
	h := uint64(fnvOffset64) ^ uint64(len(vs))*fnvPrime64
	for _, v := range vs {
		h = Combine(h, mix64(v))
	}
	return h
}

// HashSet hashes a set of strings order-independently: the same set in any
// order hashes identically. Used for font lists and plugin lists, whose
// collection order is not semantically meaningful.
//
// Each element's FNV hash is passed through a bijective finalizer and the
// results are summed, which commutes — no copy or sort of the input, so
// hashing a several-hundred-entry font list is allocation-free. (The old
// copy+sort implementation was the top allocation site of the FP-Stalker
// matching engine's query path.)
func HashSet(ss []string) uint64 {
	h := uint64(fnvOffset64)
	for _, s := range ss {
		h += mix64(Hash64(s))
	}
	return h
}

// mix64 is the splitmix64 finalizer: a bijective avalanche mix so that
// summing element hashes in HashSet does not let structured inputs
// cancel each other out.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SHA1Hex returns the hex SHA-1 of s. The paper reports canvas hashes as
// 40-hex-character SHA-1 values (Appendix A.2); we keep the same format so
// reproduced reports look like the paper's.
func SHA1Hex(s string) string {
	sum := sha1.Sum([]byte(s))
	return hex.EncodeToString(sum[:])
}

// SHA1HexBytes is SHA1Hex over raw bytes.
func SHA1HexBytes(b []byte) string {
	sum := sha1.Sum(b)
	return hex.EncodeToString(sum[:])
}

// Short returns an 8-hex-character prefix of the SHA-1 of s, useful as a
// compact display identifier (anonymized user IDs in reports).
func Short(s string) string {
	return SHA1Hex(s)[:8]
}
