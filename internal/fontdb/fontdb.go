// Package fontdb holds the font signature lists of the paper's
// Appendix A: the fonts that specific software installations add to a
// system. The population simulator uses them to mutate font lists when
// simulated software is installed or updated, and the inference
// analyses (Insight 1.2) use them in the opposite direction, to detect
// those installations from fingerprint dynamics.
package fontdb

// OfficeDetect is the 96-font list the paper uses to detect a Microsoft
// Office Pro Plus 2013 installation (Appendix A.1, second list). It is
// the subset of Office-installed fonts the fingerprinting tool queries.
var OfficeDetect = []string{
	"Bodoni MT Condensed", "Stencil", "Perpetua Titling MT", "Haettenschweiler",
	"Matura MT Script Capitals", "Elephant", "Gill Sans MT Ext Condensed Bold",
	"Palace Script MT", "Modern No. 20", "Perpetua", "Wide Latin", "Kunstler Script",
	"Rockwell Extra Bold", "Bell MT", "Harrington", "Vivaldi", "Gill Sans Ultra Bold",
	"Bookshelf Symbol 7", "Rage Italic", "Agency FB", "Eras Bold ITC",
	"Old English Text MT", "Broadway", "Copperplate Gothic Light", "Snap ITC",
	"Forte", "Gigi", "Rockwell Condensed", "Colonna MT", "Bauhaus 93", "Poor Richard",
	"Gill Sans MT", "Centaur", "MS Reference Specialty", "Imprint MT Shadow",
	"Copperplate Gothic Bold", "Playbill", "Harlow Solid Italic", "Footlight MT Light",
	"Viner Hand ITC", "Bradley Hand ITC", "Calisto MT", "Eras Light ITC", "Parchment",
	"Bodoni MT Black", "Engravers MT", "Mistral", "Goudy Stout", "Pristina",
	"Brush Script MT", "High Tower Text", "Niagara Solid", "Ravie",
	"Gill Sans MT Condensed", "Informal Roman", "Algerian", "Maiandra GD",
	"Tw Cen MT Condensed", "Edwardian Script ITC", "Britannic Bold", "OCR A Extended",
	"Bodoni MT Poster Compressed", "Tempus Sans ITC", "Eras Demi ITC", "Jokerman",
	"Niagara Engraved", "Magneto", "French Script MT", "Tw Cen MT",
	"Berlin Sans FB Demi", "Tw Cen MT Condensed Extra Bold", "Castellar",
	"Script MT Bold", "Freestyle Script", "Blackadder ITC",
	"Gloucester MT Extra Condensed", "Bernard MT Condensed", "Curlz MT",
	"Felix Titling", "Baskerville Old Face", "Vladimir Script", "Rockwell", "Onyx",
	"Kristen ITC", "Bodoni MT", "Cooper Black", "Eras Medium ITC", "Californian FB",
	"Goudy Old Style", "Gill Sans Ultra Bold Condensed", "Papyrus", "Chiller",
	"Showcard Gothic", "Juice ITC", "Berlin Sans FB", "MT Extra",
}

// MTExtra is the single font whose *addition* in early 2018 reveals a
// Microsoft Office update to Version 1705/1708/1711 (released
// 2018-01-09); Insight 1.2's first example.
const MTExtra = "MT Extra"

// LibreOffice is the font list added by a LibreOffice 6 installation
// (Appendix A.3).
var LibreOffice = []string{
	"Miriam Mono CLM", "Noto Sans Lisu", "Scheherazade", "Linux Libertine Display G",
	"EmojiOne Color", "Noto Naskh Arabic", "Linux Biolinum G", "Source Code Pro Black",
	"Noto Sans Light", "Frank Ruehl CLM", "Caladea", "Noto Serif", "OpenSymbol",
	"Rubik", "Noto Sans Georgian", "Noto Sans Lao", "Liberation Sans",
	"Source Code Pro Light", "Noto Serif Lao", "DejaVu Serif Condensed", "KacstBook",
	"DejaVu Sans Light", "Reem Kufi Regular", "Source Code Pro Semibold",
	"Noto Naskh Arabic UI", "Source Sans Pro Black", "Gentium Basic",
	"DejaVu Math TeX Gyre", "Source Code Pro ExtraLight", "Noto Kufi Arabic",
	"Noto Sans Hebrew", "Amiri", "Source Sans Pro Semibold", "Miriam CLM",
	"Source Code Pro", "Source Sans Pro", "Noto Sans Cond", "Liberation Serif",
	"KacstOffice", "Source Code Pro Medium", "DejaVu Sans", "Liberation Mono",
	"Noto Serif Armenian", "Alef", "Gentium Book Basic", "David Libre",
	"Noto Sans Armenian", "Noto Serif Cond", "Linux Libertine G",
	"Liberation Sans Narrow", "DejaVu Sans Condensed", "Source Sans Pro ExtraLight",
	"DejaVu Sans Mono", "Noto Sans Arabic UI", "Noto Serif Georgian", "Noto Mono",
	"David CLM", "Carlito", "Amiri Quran", "DejaVu Serif", "Noto Serif Hebrew",
	"Noto Serif Light", "Source Sans Pro Light", "Noto Sans", "Noto Sans Arabic",
}

// Adobe is the font set an Adobe software installation/update adds. The
// paper does not enumerate it; this is the well-known Adobe-bundled set,
// enough to act as a distinctive signature.
var Adobe = []string{
	"Adobe Arabic", "Adobe Caslon Pro", "Adobe Devanagari", "Adobe Fan Heiti Std",
	"Adobe Garamond Pro", "Adobe Gothic Std", "Adobe Hebrew", "Adobe Heiti Std",
	"Adobe Kaiti Std", "Adobe Ming Std", "Adobe Myungjo Std", "Adobe Naskh",
	"Adobe Song Std", "Kozuka Gothic Pro", "Kozuka Mincho Pro", "Letter Gothic Std",
	"Minion Pro", "Myriad Arabic", "Myriad Hebrew", "Myriad Pro",
}

// WPS is the font set a WPS Office installation adds (Kingsoft's
// bundled fonts; a representative signature).
var WPS = []string{
	"WPS Special 1", "WPS Special 2", "WPS Special 3", "FZShuTi", "FZYaoTi",
	"STCaiyun", "STFangsong", "STHupo", "STKaiti", "STLiti", "STSong", "STXihei",
	"STXingkai", "STXinwei", "STZhongsong",
}

// Firefox57 is the list of fonts newly *detectable* after a Firefox 57
// update (Appendix A.4) — the browser's font enumeration changed, so
// these system fonts start appearing in fingerprints.
var Firefox57 = []string{
	"Arial Black", "Arial Narrow", "Arial Rounded MT Bold", "Segoe UI Light",
	"Segoe UI Semibold", "Berlin Sans FB Demi", "Bernard MT Condensed",
	"Bodoni MT Black", "Bodoni MT Condensed", "Bodoni MT Poster Compressed",
	"Britannic Bold", "Cooper Black", "Copperplate Gothic Bold",
	"Copperplate Gothic Light", "Footlight MT Light", "Gill Sans MT Condensed",
	"Gill Sans MT Ext Condensed Bold", "Gill Sans Ultra Bold",
	"Gill Sans Ultra Bold Condensed", "Harlow Solid Italic", "OCR A Extended",
	"Rage Italic", "Rockwell Condensed", "Rockwell Extra Bold", "Script MT Bold",
	"Tw Cen MT Condensed", "Tw Cen MT Condensed Extra Bold",
}

// Base font sets per OS family: the pre-installed fonts every instance
// of that platform reports before any software is installed.
var (
	BaseWindows = []string{
		"Arial", "Arial Black", "Calibri", "Cambria", "Candara", "Comic Sans MS",
		"Consolas", "Constantia", "Corbel", "Courier New", "Ebrima",
		"Franklin Gothic Medium", "Gabriola", "Georgia", "Impact", "Lucida Console",
		"Lucida Sans Unicode", "Malgun Gothic", "Microsoft Sans Serif", "MingLiU",
		"Palatino Linotype", "Segoe Print", "Segoe Script", "Segoe UI", "SimSun",
		"Sylfaen", "Symbol", "Tahoma", "Times New Roman", "Trebuchet MS", "Verdana",
		"Webdings", "Wingdings",
	}
	BaseMac = []string{
		"American Typewriter", "Andale Mono", "Arial", "Arial Black", "Avenir",
		"Avenir Next", "Baskerville", "Big Caslon", "Chalkboard", "Cochin",
		"Copperplate", "Courier", "Courier New", "Didot", "Futura", "Geneva",
		"Georgia", "Gill Sans", "Helvetica", "Helvetica Neue", "Hoefler Text",
		"Impact", "Lucida Grande", "Menlo", "Monaco", "Optima", "Palatino",
		"San Francisco", "Skia", "Times", "Times New Roman", "Trebuchet MS",
		"Verdana", "Zapfino",
	}
	BaseLinux = []string{
		"Bitstream Vera Sans", "C059", "Cantarell", "DejaVu Sans", "DejaVu Sans Mono",
		"DejaVu Serif", "FreeMono", "FreeSans", "FreeSerif", "Liberation Mono",
		"Liberation Sans", "Liberation Serif", "Nimbus Mono PS", "Nimbus Roman",
		"Nimbus Sans", "Noto Sans", "Noto Serif", "Ubuntu", "Ubuntu Condensed",
		"Ubuntu Mono", "URW Bookman",
	}
	BaseIOS = []string{
		"American Typewriter", "Arial", "Avenir", "Avenir Next", "Baskerville",
		"Chalkboard SE", "Courier New", "Georgia", "Gill Sans", "Helvetica",
		"Helvetica Neue", "Hoefler Text", "Menlo", "Optima", "Palatino",
		"San Francisco", "Times New Roman", "Trebuchet MS", "Verdana",
	}
	BaseAndroid = []string{
		"Carrois Gothic SC", "Coming Soon", "Cutive Mono", "Dancing Script",
		"Droid Sans", "Droid Sans Mono", "Droid Serif", "Noto Sans", "Noto Serif",
		"Roboto", "Roboto Condensed",
	}
)

// OptionalWindows are fonts a Windows machine may or may not have
// (installed by third-party software over the years); the simulator
// samples a per-instance subset, which is the main entropy source that
// makes the font list the most fingerprintable feature in Table 1.
var OptionalWindows = []string{
	"AR BERKLEY", "AR JULIAN", "Bahnschrift", "Book Antiqua", "Bookman Old Style",
	"Century", "Century Gothic", "Century Schoolbook", "Garamond", "Gadugi",
	"Haettenschweiler", "HoloLens MDL2 Assets", "Javanese Text", "Leelawadee",
	"Lucida Bright", "Lucida Calligraphy", "Lucida Fax", "Lucida Handwriting",
	"Lucida Sans", "Lucida Sans Typewriter", "Microsoft YaHei", "Monotype Corsiva",
	"MS Gothic", "MS Outlook", "MS Reference Sans Serif", "MV Boli", "Nirmala UI",
	"NSimSun", "Segoe MDL2 Assets", "Segoe UI Emoji", "Segoe UI Historic",
	"Segoe UI Symbol", "SimHei", "Yu Gothic",
}
