package diff

import (
	"reflect"
	"testing"
	"testing/quick"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/useragent"
)

func baseFP() *fingerprint.Fingerprint {
	ua := useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(56, 0, 2924, 87), OS: useragent.Windows, OSVersion: useragent.V(10)}
	return &fingerprint.Fingerprint{
		UserAgent:        ua.String(),
		Accept:           "text/html,application/xhtml+xml",
		Encoding:         "gzip, deflate, br",
		Language:         "en-US,en;q=0.9",
		HeaderList:       []string{"Host", "User-Agent", "Accept"},
		Plugins:          []string{"Chrome PDF Plugin", "Native Client"},
		CookieEnabled:    true,
		WebGL:            true,
		LocalStorage:     true,
		TimezoneOffset:   60,
		Languages:        []string{"en-US"},
		Fonts:            []string{"Arial", "Calibri", "Verdana"},
		CanvasHash:       "aaaa",
		GPUVendor:        "NVIDIA Corporation",
		GPURenderer:      "GeForce GTX 970",
		GPUType:          "Direct3D11",
		CPUCores:         4,
		CPUClass:         "x86",
		AudioInfo:        "channels:2;rate:44100",
		ScreenResolution: "1920x1080",
		ColorDepth:       24,
		PixelRatio:       "1",
		IPCity:           "Berlin",
		IPRegion:         "Berlin",
		IPCountry:        "Germany",
		ConsLanguage:     true, ConsResolution: true, ConsOS: true, ConsBrowser: true,
		GPUImageHash: "gggg",
	}
}

func TestDiffIdentical(t *testing.T) {
	a := baseFP()
	d := Diff(a, a.Clone())
	if !d.Empty() {
		t.Fatalf("identical fingerprints produced delta: %v", d.Key())
	}
}

func TestDiffVersionBumpIsSingleReplace(t *testing.T) {
	a := baseFP()
	b := a.Clone()
	ua := useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(57, 0, 2987, 98), OS: useragent.Windows, OSVersion: useragent.V(10)}
	b.UserAgent = ua.String()
	d := Diff(a, b)
	if len(d.Fields) != 1 || d.Fields[0].Feature != fingerprint.FeatUserAgent {
		t.Fatalf("delta fields = %v", d.FeatureIDs())
	}
	// The version tokens 56→57, 2924→2987, 87→98 are three replaces.
	for _, e := range d.Fields[0].Edits {
		if e.Op != OpReplace {
			t.Errorf("edit %+v: want all replaces for a version bump", e)
		}
	}
	if len(d.Fields[0].Edits) != 3 {
		t.Errorf("edits = %+v, want 3 replaces", d.Fields[0].Edits)
	}
}

func TestDeltaCollisionAcrossInstances(t *testing.T) {
	// The paper's motivating property: two instances with different
	// fingerprints (one has an extra font) receiving the same Chrome
	// 56→57 update must produce the same delta key.
	mkPair := func(extraFont bool) string {
		a := baseFP()
		if extraFont {
			a.Fonts = fingerprint.AddFonts(a.Fonts, []string{"MT Extra"})
		}
		b := a.Clone()
		ua := useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(57, 0, 2987, 98), OS: useragent.Windows, OSVersion: useragent.V(10)}
		b.UserAgent = ua.String()
		return Diff(a, b).Key()
	}
	if mkPair(false) != mkPair(true) {
		t.Fatal("same update on different instances produced different delta keys")
	}
}

func TestDiffSetAddedDeleted(t *testing.T) {
	a := baseFP()
	b := a.Clone()
	b.Fonts = fingerprint.AddFonts(fingerprint.RemoveFonts(b.Fonts, []string{"Verdana"}), []string{"MT Extra"})
	d := Diff(a, b)
	fd := d.Field(fingerprint.FeatFontList)
	if fd == nil {
		t.Fatal("font list change not detected")
	}
	if !reflect.DeepEqual(fd.Added, []string{"MT Extra"}) || !reflect.DeepEqual(fd.Deleted, []string{"Verdana"}) {
		t.Fatalf("added=%v deleted=%v", fd.Added, fd.Deleted)
	}
}

func TestDiffHashPair(t *testing.T) {
	a := baseFP()
	b := a.Clone()
	b.CanvasHash = "bbbb"
	d := Diff(a, b)
	fd := d.Field(fingerprint.FeatCanvas)
	if fd == nil || fd.OldHash != "aaaa" || fd.NewHash != "bbbb" {
		t.Fatalf("canvas delta = %+v", fd)
	}
}

func TestDiffWhitespaceChange(t *testing.T) {
	// The Maxthon example: "gzip,deflate" → "gzip, deflate" must be a
	// detectable delta (a whitespace insert).
	a := baseFP()
	a.Encoding = "gzip,deflate"
	b := a.Clone()
	b.Encoding = "gzip, deflate"
	d := Diff(a, b)
	fd := d.Field(fingerprint.FeatEncoding)
	if fd == nil {
		t.Fatal("whitespace change not detected")
	}
	if len(fd.Edits) != 1 || fd.Edits[0].Op != OpInsert || fd.Edits[0].New != " " {
		t.Fatalf("edits = %+v, want single whitespace insert", fd.Edits)
	}
}

func TestDiffReorderDetected(t *testing.T) {
	// "gzip, deflate, br" → "br, gzip, deflate": sequence changes must
	// produce a delta even though the element set is identical.
	a := baseFP()
	b := a.Clone()
	b.Encoding = "br, gzip, deflate"
	d := Diff(a, b)
	if d.Field(fingerprint.FeatEncoding) == nil {
		t.Fatal("reorder not detected — subfields must be ordered")
	}
}

func TestDiffMultipleFeatures(t *testing.T) {
	a := baseFP()
	b := a.Clone()
	b.TimezoneOffset = -300
	b.IPCity, b.IPCountry = "New York", "United States"
	b.CookieEnabled = false
	d := Diff(a, b)
	for _, id := range []fingerprint.ID{fingerprint.FeatTimezone, fingerprint.FeatIPCity, fingerprint.FeatIPCountry, fingerprint.FeatCookie} {
		if !d.Has(id) {
			t.Errorf("feature %v change not detected", fingerprint.Describe(id).Name)
		}
	}
	if d.Has(fingerprint.FeatUserAgent) {
		t.Error("unchanged feature reported")
	}
}

func TestDeltaKeyEmpty(t *testing.T) {
	a := baseFP()
	if key := Diff(a, a.Clone()).Key(); key != "" {
		t.Fatalf("empty delta key = %q", key)
	}
}

func TestDeltaHashDistinguishes(t *testing.T) {
	a := baseFP()
	b1, b2 := a.Clone(), a.Clone()
	b1.CookieEnabled = false
	b2.TimezoneOffset = 0
	if Diff(a, b1).Hash() == Diff(a, b2).Hash() {
		t.Fatal("different deltas hashed equal")
	}
}

func TestDiffSetsBasics(t *testing.T) {
	added, deleted := DiffSets([]string{"a", "b"}, []string{"b", "c", "d"})
	if !reflect.DeepEqual(added, []string{"c", "d"}) || !reflect.DeepEqual(deleted, []string{"a"}) {
		t.Fatalf("added=%v deleted=%v", added, deleted)
	}
	added, deleted = DiffSets(nil, nil)
	if added != nil || deleted != nil {
		t.Fatal("nil sets should produce nil diffs")
	}
}

func TestDiffSubfieldsEmptyToFull(t *testing.T) {
	edits := DiffSubfields(nil, []string{"x", "y"})
	if len(edits) != 2 || edits[0].Op != OpInsert || edits[1].Op != OpInsert {
		t.Fatalf("edits = %+v", edits)
	}
	edits = DiffSubfields([]string{"x", "y"}, nil)
	if len(edits) != 2 || edits[0].Op != OpDelete || edits[1].Op != OpDelete {
		t.Fatalf("edits = %+v", edits)
	}
}

func TestApplySubfieldsRoundTrip(t *testing.T) {
	cases := [][2]string{
		{"gzip,deflate", "gzip, deflate"},
		{"gzip, deflate, br", "br, gzip, deflate"},
		{"Chrome/56.0.2924.87", "Chrome/57.0.2987.98"},
		{"", "abc def"},
		{"abc def", ""},
		{"a b c d e", "a x c y e z"},
		{"1 2 1", "2 1 1"},
	}
	for _, c := range cases {
		a := useragent.Subfields(c[0])
		b := useragent.Subfields(c[1])
		got := ApplySubfields(a, DiffSubfields(a, b))
		if !reflect.DeepEqual(got, b) && !(len(got) == 0 && len(b) == 0) {
			t.Errorf("apply(diff(%q,%q)) = %v, want %v", c[0], c[1], got, b)
		}
	}
}

// Property: the edit script is always exactly replayable for arbitrary
// printable-token sequences.
func TestApplyDiffProperty(t *testing.T) {
	f := func(xa, xb []uint8) bool {
		mk := func(xs []uint8) []string {
			out := make([]string, len(xs))
			for i, x := range xs {
				out[i] = string(rune('a' + x%6)) // small alphabet → many repeats
			}
			return out
		}
		a, b := mk(xa), mk(xb)
		got := ApplySubfields(a, DiffSubfields(a, b))
		return reflect.DeepEqual(got, b) || (len(got) == 0 && len(b) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: diff of equal sequences is empty; diff key is symmetric-free
// (a→b vs b→a differ unless equal).
func TestDiffSubfieldsIdentityProperty(t *testing.T) {
	f := func(xs []uint8) bool {
		toks := make([]string, len(xs))
		for i, x := range xs {
			toks[i] = string(rune('a' + x%6))
		}
		return len(DiffSubfields(toks, toks)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDiffFingerprint(b *testing.B) {
	x := baseFP()
	y := x.Clone()
	ua := useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(57, 0, 2987, 98), OS: useragent.Windows, OSVersion: useragent.V(10)}
	y.UserAgent = ua.String()
	y.Fonts = fingerprint.AddFonts(y.Fonts, []string{"MT Extra"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Diff(x, y)
	}
}

func BenchmarkDiffSubfieldsUA(b *testing.B) {
	ua1 := useragent.Subfields(baseFP().UserAgent)
	ua2 := useragent.Subfields(useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(57, 0, 2987, 98), OS: useragent.Windows, OSVersion: useragent.V(10)}.String())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DiffSubfields(ua1, ua2)
	}
}
