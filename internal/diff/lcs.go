package diff

// DiffSubfields aligns two ordered subfield sequences with a longest-
// common-subsequence pass and emits the minimal edit script as
// replace/insert/delete operations. Directly adjacent delete+insert
// pairs (no matching token between them) are fused into replacements,
// so a version bump "56"→"57" reads as one OpReplace rather than a
// delete and an insert — the canonical form the paper's delta collision
// property relies on.
//
// Each edit carries its position in the *original* sequence, which
// makes the script exactly replayable (ApplySubfields); positions are
// excluded from FieldDelta.Key so identical updates still collide
// across instances whose strings have different shapes.
func DiffSubfields(a, b []string) []SubfieldEdit {
	n, m := len(a), len(b)
	if n == 0 && m == 0 {
		return nil
	}
	// LCS dynamic program. Header/UA token sequences are short (tens of
	// tokens), so the O(n·m) table is cheap.
	dp := make([][]int32, n+1)
	for i := range dp {
		dp[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}

	var edits []SubfieldEdit
	// lastWasDelete tracks whether the previous emission was a delete
	// with no match in between, enabling delete+insert fusion into a
	// replace (and vice versa for insert+delete).
	i, j := 0, 0
	for i < n || j < m {
		switch {
		case i < n && j < m && a[i] == b[j]:
			i++
			j++
		case j >= m || (i < n && dp[i+1][j] >= dp[i][j+1]):
			// Delete a[i]; if the symmetric insert comes next, fuse.
			if k := len(edits) - 1; k >= 0 && edits[k].Op == OpInsert && edits[k].Pos == i {
				edits[k] = SubfieldEdit{Op: OpReplace, Pos: i, Old: a[i], New: edits[k].New, Prev: prevTok(a, i)}
			} else {
				edits = append(edits, SubfieldEdit{Op: OpDelete, Pos: i, Old: a[i], Prev: prevTok(a, i)})
			}
			i++
		default:
			// Insert b[j] before a[i]; fuse with an immediately preceding
			// delete of a[i-1] into a replace at that position.
			if k := len(edits) - 1; k >= 0 && edits[k].Op == OpDelete && edits[k].Pos == i-1 {
				edits[k] = SubfieldEdit{Op: OpReplace, Pos: i - 1, Old: edits[k].Old, New: b[j], Prev: prevTok(a, i-1)}
			} else {
				edits = append(edits, SubfieldEdit{Op: OpInsert, Pos: i, New: b[j], Prev: prevTok(a, i)})
			}
			j++
		}
	}
	return edits
}

// prevTok returns the token before position i, or "" at the start.
func prevTok(a []string, i int) string {
	if i <= 0 || i > len(a) {
		return ""
	}
	return a[i-1]
}

// ApplySubfields replays an edit script produced by DiffSubfields
// against the original sequence and returns the edited sequence:
// ApplySubfields(a, DiffSubfields(a, b)) == b. The linker's
// dynamics-aware prediction uses this (Insight 4: knowing the Firefox
// 57→58 delta lets a fingerprinting tool precompute the updated
// fingerprint of every stale instance).
func ApplySubfields(a []string, edits []SubfieldEdit) []string {
	out := make([]string, 0, len(a))
	e := 0
	for i := 0; i <= len(a); i++ {
		// Inserts anchored before position i apply first, in script order.
		for e < len(edits) && edits[e].Pos == i && edits[e].Op == OpInsert {
			out = append(out, edits[e].New)
			e++
		}
		if i == len(a) {
			break
		}
		if e < len(edits) && edits[e].Pos == i {
			switch edits[e].Op {
			case OpDelete:
				e++
				continue
			case OpReplace:
				out = append(out, edits[e].New)
				e++
				continue
			}
		}
		out = append(out, a[i])
	}
	return out
}
