package diff

import (
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/useragent"
)

// TransferDelta applies a delta observed on one browser instance to a
// different instance's fingerprint — the paper's Insight 4 proposal:
// once a fingerprinting tool has seen the Firefox 57→58 delta on any
// instance, it can predict the post-update fingerprint of every other
// stale Firefox 57 instance in its database and match updated visitors
// exactly instead of fuzzily.
//
// String features replay their subfield edit script; set features add
// and remove the delta's elements; hash features (canvas, GPU images)
// adopt the delta's new hash when the target's current hash matches the
// old one (environments that already diverged keep their own value —
// their canvases will not repaint identically).
//
// The returned fingerprint is a new value; the input is not modified.
// ok is false when the delta clearly does not apply (e.g. a string
// edit's context is absent from the target).
func TransferDelta(d *Delta, fp *fingerprint.Fingerprint) (*fingerprint.Fingerprint, bool) {
	out := fp.Clone()
	for i := range d.Fields {
		fd := &d.Fields[i]
		switch fd.Kind {
		case fingerprint.KindString:
			cur := out.Value(fd.Feature).Str
			fields := useragent.Subfields(cur)
			// Verify the edit context: every Old token the script
			// consumes must be present in order.
			if !scriptApplies(fields, fd.Edits) {
				return nil, false
			}
			next := useragent.JoinSubfields(applyLoose(fields, fd.Edits))
			setString(out, fd.Feature, next)
		case fingerprint.KindSet:
			cur := out.Value(fd.Feature).Set
			cur = fingerprint.RemoveFonts(cur, fd.Deleted) // generic set ops
			cur = fingerprint.AddFonts(cur, fd.Added)
			setSet(out, fd.Feature, cur)
		case fingerprint.KindHash:
			if out.Value(fd.Feature).Str == fd.OldHash {
				setString(out, fd.Feature, fd.NewHash)
			}
		}
	}
	return out, true
}

// anchor finds the position (at or after from) where a consuming edit
// applies: the first occurrence of Old whose preceding token matches
// the edit's recorded source context, falling back to the first plain
// occurrence when the context never matches (differently shaped
// strings). Returns -1 when Old does not occur at all.
func anchor(fields []string, from int, e SubfieldEdit) int {
	fallback := -1
	for p := from; p < len(fields); p++ {
		if fields[p] != e.Old {
			continue
		}
		if prevTok(fields, p) == e.Prev {
			return p
		}
		if fallback < 0 {
			fallback = p
		}
	}
	return fallback
}

// scriptApplies verifies that the tokens a script consumes appear in
// the target sequence in order (context-aware).
func scriptApplies(fields []string, edits []SubfieldEdit) bool {
	pos := 0
	for _, e := range edits {
		if e.Op == OpInsert {
			continue
		}
		p := anchor(fields, pos, e)
		if p < 0 {
			return false
		}
		pos = p + 1
	}
	return true
}

// applyLoose replays an edit script positionally-tolerantly: consuming
// ops anchor to their context-matching occurrence of Old instead of an
// absolute index, so a script recorded on one instance applies to
// another whose string has a different shape — and lands on the right
// token ("Chrome/64", not "Win64").
func applyLoose(fields []string, edits []SubfieldEdit) []string {
	out := make([]string, 0, len(fields))
	pos := 0
	for _, e := range edits {
		switch e.Op {
		case OpInsert:
			// Inserts anchor at the current scan position: in version-bump
			// scripts they sit adjacent to the consuming ops around them.
			out = append(out, e.New)
		case OpDelete, OpReplace:
			p := anchor(fields, pos, e)
			if p < 0 {
				continue // verified by scriptApplies; defensive
			}
			out = append(out, fields[pos:p]...)
			if e.Op == OpReplace {
				out = append(out, e.New)
			}
			pos = p + 1
		}
	}
	out = append(out, fields[pos:]...)
	return out
}

// setString writes a string/hash feature back into a fingerprint.
func setString(fp *fingerprint.Fingerprint, id fingerprint.ID, v string) {
	switch id {
	case fingerprint.FeatUserAgent:
		fp.UserAgent = v
	case fingerprint.FeatAccept:
		fp.Accept = v
	case fingerprint.FeatEncoding:
		fp.Encoding = v
	case fingerprint.FeatLanguage:
		fp.Language = v
	case fingerprint.FeatCanvas:
		fp.CanvasHash = v
	case fingerprint.FeatGPUVendor:
		fp.GPUVendor = v
	case fingerprint.FeatGPURenderer:
		fp.GPURenderer = v
	case fingerprint.FeatGPUType:
		fp.GPUType = v
	case fingerprint.FeatAudio:
		fp.AudioInfo = v
	case fingerprint.FeatScreenResolution:
		fp.ScreenResolution = v
	case fingerprint.FeatCPUClass:
		fp.CPUClass = v
	case fingerprint.FeatPixelRatio:
		fp.PixelRatio = v
	case fingerprint.FeatIPCity:
		fp.IPCity = v
	case fingerprint.FeatIPRegion:
		fp.IPRegion = v
	case fingerprint.FeatIPCountry:
		fp.IPCountry = v
	case fingerprint.FeatGPUImage:
		fp.GPUImageHash = v
	}
	// Numeric and boolean features (timezone, cores, depth, toggles)
	// are not transferable via string scripts; deltas on them carry no
	// cross-instance information and are skipped by design.
}

// setSet writes a set feature back into a fingerprint.
func setSet(fp *fingerprint.Fingerprint, id fingerprint.ID, v []string) {
	switch id {
	case fingerprint.FeatHeaderList:
		fp.HeaderList = v
	case fingerprint.FeatPlugins:
		fp.Plugins = v
	case fingerprint.FeatLanguageList:
		fp.Languages = v
	case fingerprint.FeatFontList:
		fp.Fonts = v
	}
}
