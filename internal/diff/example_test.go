package diff_test

import (
	"fmt"

	"fpdyn/internal/diff"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/useragent"
)

// ExampleDiff shows the paper's core §2.3.2 property: a browser update
// produces the same delta on two differently configured instances.
func ExampleDiff() {
	mk := func(version useragent.Version, extraFont bool) *fingerprint.Fingerprint {
		ua := useragent.UA{Browser: useragent.Chrome, BrowserVersion: version,
			OS: useragent.Windows, OSVersion: useragent.V(10)}
		fp := &fingerprint.Fingerprint{
			UserAgent: ua.String(),
			Fonts:     []string{"Arial", "Calibri"},
		}
		if extraFont {
			fp.Fonts = fingerprint.AddFonts(fp.Fonts, []string{"MT Extra"})
		}
		return fp
	}
	v56, v57 := useragent.V(56, 0, 2924, 87), useragent.V(57, 0, 2987, 98)

	// Instance A: plain. Instance B: has an extra font. Both update.
	deltaA := diff.Diff(mk(v56, false), mk(v57, false))
	deltaB := diff.Diff(mk(v56, true), mk(v57, true))
	fmt.Println("identical deltas:", deltaA.Key() == deltaB.Key())

	fd := deltaA.Field(fingerprint.FeatUserAgent)
	for _, e := range fd.Edits {
		fmt.Printf("%c %s -> %s\n", e.Op, e.Old, e.New)
	}
	// Output:
	// identical deltas: true
	// R 56 -> 57
	// R 2924 -> 2987
	// R 87 -> 98
}

// ExampleDiffSets demonstrates the two-subtraction set diff used for
// font and plugin lists.
func ExampleDiffSets() {
	added, deleted := diff.DiffSets(
		[]string{"Arial", "Calibri", "Verdana"},
		[]string{"Arial", "MT Extra", "Verdana"},
	)
	fmt.Println("added:", added)
	fmt.Println("deleted:", deleted)
	// Output:
	// added: [MT Extra]
	// deleted: [Calibri]
}

// ExampleApplySubfields replays an edit script — the primitive behind
// dynamics-aware fingerprint prediction (Insight 4).
func ExampleApplySubfields() {
	old := useragent.Subfields("gzip,deflate")
	new_ := useragent.Subfields("gzip, deflate, br")
	edits := diff.DiffSubfields(old, new_)
	replayed := diff.ApplySubfields(old, edits)
	fmt.Println(useragent.JoinSubfields(replayed))
	// Output:
	// gzip, deflate, br
}
