package diff

import (
	"testing"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/useragent"
)

// Property: transferring a delta back onto its own source reproduces
// the destination exactly, for every update on the release calendar's
// version lattice.
func TestTransferDeltaSelfConsistency(t *testing.T) {
	versions := []useragent.Version{
		useragent.V(63, 0, 3239, 84),
		useragent.V(64, 0, 3282, 140),
		useragent.V(65, 0, 3325, 146),
		useragent.V(66, 0, 3359, 117),
		useragent.V(67, 0, 3396, 62),
	}
	for i := 0; i+1 < len(versions); i++ {
		from := baseFP()
		from.UserAgent = useragent.UA{Browser: useragent.Chrome, BrowserVersion: versions[i],
			OS: useragent.Windows, OSVersion: useragent.V(10)}.String()
		to := from.Clone()
		to.UserAgent = useragent.UA{Browser: useragent.Chrome, BrowserVersion: versions[i+1],
			OS: useragent.Windows, OSVersion: useragent.V(10)}.String()
		to.Fonts = fingerprint.AddFonts(to.Fonts, []string{"Bahnschrift"})
		to.CanvasHash = "repainted"

		delta := Diff(from, to)
		got, ok := TransferDelta(delta, from)
		if !ok {
			t.Fatalf("v%d→v%d: transfer failed", versions[i].Major, versions[i+1].Major)
		}
		if !got.Equal(to) {
			t.Fatalf("v%d→v%d: self-transfer diverged:\n got UA %s\nwant UA %s",
				versions[i].Major, versions[i+1].Major, got.UserAgent, to.UserAgent)
		}
	}
}

// Property: a transferred delta is idempotent on hash features — once
// the new hash is adopted, re-applying changes nothing further.
func TestTransferDeltaHashIdempotent(t *testing.T) {
	a := baseFP()
	b := a.Clone()
	b.CanvasHash = "new-canvas"
	delta := Diff(a, b)
	once, _ := TransferDelta(delta, a)
	twice, _ := TransferDelta(delta, once)
	if once.CanvasHash != "new-canvas" || twice.CanvasHash != "new-canvas" {
		t.Fatalf("hash transfer not idempotent: %q then %q", once.CanvasHash, twice.CanvasHash)
	}
}

// Property: set-delta transfer is idempotent — adding the same fonts
// twice leaves the list unchanged.
func TestTransferDeltaSetIdempotent(t *testing.T) {
	a := baseFP()
	b := a.Clone()
	b.Fonts = fingerprint.AddFonts(b.Fonts, []string{"MT Extra"})
	delta := Diff(a, b)
	once, _ := TransferDelta(delta, a)
	twice, _ := TransferDelta(delta, once)
	if len(once.Fonts) != len(twice.Fonts) {
		t.Fatalf("set transfer not idempotent: %v vs %v", once.Fonts, twice.Fonts)
	}
}
