package diff

import (
	"testing"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/useragent"
)

// TestTransferDeltaAcrossInstances is the Insight 4 headline: observe a
// Chrome 56→57 update on instance A, transfer the delta to instance B
// (which has a different font list), and obtain exactly B's real
// post-update fingerprint.
func TestTransferDeltaAcrossInstances(t *testing.T) {
	mkUA := func(v useragent.Version) string {
		return useragent.UA{Browser: useragent.Chrome, BrowserVersion: v,
			OS: useragent.Windows, OSVersion: useragent.V(10)}.String()
	}
	v56, v57 := useragent.V(56, 0, 2924, 87), useragent.V(57, 0, 2987, 98)

	aBefore := baseFP()
	aBefore.UserAgent = mkUA(v56)
	aAfter := aBefore.Clone()
	aAfter.UserAgent = mkUA(v57)
	delta := Diff(aBefore, aAfter)

	// Instance B: same versions, different fonts and timezone.
	bBefore := baseFP()
	bBefore.UserAgent = mkUA(v56)
	bBefore.Fonts = fingerprint.AddFonts(bBefore.Fonts, []string{"MT Extra", "Wingdings"})
	bBefore.TimezoneOffset = -300

	predicted, ok := TransferDelta(delta, bBefore)
	if !ok {
		t.Fatal("delta did not transfer")
	}
	bReal := bBefore.Clone()
	bReal.UserAgent = mkUA(v57)
	if predicted.UserAgent != bReal.UserAgent {
		t.Fatalf("predicted UA %q != real %q", predicted.UserAgent, bReal.UserAgent)
	}
	if !predicted.Equal(bReal) {
		t.Fatal("predicted fingerprint differs from the real post-update one")
	}
}

func TestTransferDeltaFontInstall(t *testing.T) {
	// The MT Extra Office-update delta applies to any instance.
	a := baseFP()
	b := a.Clone()
	b.Fonts = fingerprint.AddFonts(b.Fonts, []string{"MT Extra"})
	delta := Diff(a, b)

	target := baseFP()
	target.Fonts = []string{"Comic Sans MS"}
	predicted, ok := TransferDelta(delta, target)
	if !ok {
		t.Fatal("transfer failed")
	}
	if !predicted.HasFont("MT Extra") || !predicted.HasFont("Comic Sans MS") {
		t.Fatalf("fonts = %v", predicted.Fonts)
	}
}

func TestTransferDeltaHashOnlyWhenMatching(t *testing.T) {
	a := baseFP()
	b := a.Clone()
	b.CanvasHash = "bbbb"
	delta := Diff(a, b)

	// Target with the same old canvas: adopts the new hash.
	same := baseFP()
	predicted, _ := TransferDelta(delta, same)
	if predicted.CanvasHash != "bbbb" {
		t.Fatalf("canvas = %q, want bbbb", predicted.CanvasHash)
	}
	// Target with a diverged canvas: keeps its own.
	diverged := baseFP()
	diverged.CanvasHash = "cccc"
	predicted, _ = TransferDelta(delta, diverged)
	if predicted.CanvasHash != "cccc" {
		t.Fatalf("diverged canvas overwritten: %q", predicted.CanvasHash)
	}
}

func TestTransferDeltaRejectsWrongContext(t *testing.T) {
	// A Chrome 56→57 delta cannot apply to a Firefox fingerprint.
	a := baseFP()
	a.UserAgent = useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(56, 0, 2924, 87),
		OS: useragent.Windows, OSVersion: useragent.V(10)}.String()
	b := a.Clone()
	b.UserAgent = useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(57, 0, 2987, 98),
		OS: useragent.Windows, OSVersion: useragent.V(10)}.String()
	delta := Diff(a, b)

	ff := baseFP()
	ff.UserAgent = useragent.UA{Browser: useragent.Firefox, BrowserVersion: useragent.V(58),
		OS: useragent.Windows, OSVersion: useragent.V(10)}.String()
	if _, ok := TransferDelta(delta, ff); ok {
		t.Fatal("Chrome delta applied to a Firefox fingerprint")
	}
}

func TestTransferDeltaDoesNotMutateInput(t *testing.T) {
	a := baseFP()
	b := a.Clone()
	b.Fonts = fingerprint.AddFonts(b.Fonts, []string{"MT Extra"})
	delta := Diff(a, b)
	target := baseFP()
	before := target.Hash(true)
	TransferDelta(delta, target)
	if target.Hash(true) != before {
		t.Fatal("TransferDelta mutated its input")
	}
}

func BenchmarkTransferDelta(b *testing.B) {
	x := baseFP()
	y := x.Clone()
	y.UserAgent = useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(57, 0, 2987, 98),
		OS: useragent.Windows, OSVersion: useragent.V(10)}.String()
	x.UserAgent = useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(56, 0, 2924, 87),
		OS: useragent.Windows, OSVersion: useragent.V(10)}.String()
	delta := Diff(x, y)
	target := baseFP()
	target.UserAgent = x.UserAgent
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := TransferDelta(delta, target); !ok {
			b.Fatal("transfer failed")
		}
	}
}
