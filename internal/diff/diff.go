// Package diff implements the paper's diff operation (§2.3.2): the
// delta between two consecutive fingerprints of the same browser
// instance. Depending on the feature kind there are three operations:
//
//   - string features are parsed into ordered subfields (browser name,
//     version, punctuation, even whitespace) and diffed subfield by
//     subfield, so that a Chrome 56→57 update yields the same delta on
//     every instance regardless of the rest of the string;
//   - set features (fonts, plugins, languages) are diffed by two
//     subtractions, yielding added and deleted element sets;
//   - complex features (canvas, GPU images) are diffed as a pair of
//     hashes — the paper argues pixel deltas carry little linkable
//     information and are heavyweight to compute.
//
// Every delta has a canonical Key so that identical updates applied to
// different browser instances collide to the same dynamics value; that
// collision is what makes the dynamics dataset compact (Table 1's
// dynamics columns) and what powers the correlation mining of Insight 3.
package diff

import (
	"fmt"
	"sort"
	"strings"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/hashutil"
	"fpdyn/internal/useragent"
)

// Op is a subfield edit operation.
type Op byte

const (
	// OpReplace substitutes one subfield value for another.
	OpReplace Op = 'R'
	// OpInsert adds a subfield that was not present before.
	OpInsert Op = 'I'
	// OpDelete removes a subfield.
	OpDelete Op = 'D'
)

// SubfieldEdit is one ordered-subfield edit within a string feature.
// Pos is the position in the original subfield sequence (the token
// consumed for deletes/replaces, the insertion point for inserts); it
// makes the script exactly replayable but is excluded from delta keys.
// Prev is the token preceding Pos in the source — the anchoring
// context TransferDelta uses to apply the script to a differently
// shaped string (so a "64"→"65" version bump lands on "Chrome/64",
// not on the "Win64" platform token).
type SubfieldEdit struct {
	Op   Op     `json:"op"`
	Pos  int    `json:"pos"`
	Old  string `json:"old,omitempty"`  // empty for inserts
	New  string `json:"new,omitempty"`  // empty for deletes
	Prev string `json:"prev,omitempty"` // source token before Pos; "" at start
}

// FieldDelta is the change to a single feature.
type FieldDelta struct {
	Feature fingerprint.ID   `json:"feat"`
	Kind    fingerprint.Kind `json:"kind"`

	// String-kind payload.
	Edits []SubfieldEdit `json:"edits,omitempty"`

	// Set-kind payload (sorted).
	Added   []string `json:"added,omitempty"`
	Deleted []string `json:"deleted,omitempty"`

	// Hash-kind payload.
	OldHash string `json:"oldHash,omitempty"`
	NewHash string `json:"newHash,omitempty"`
}

// Key returns the canonical identity of this field change. Two
// instances receiving the same update produce the same key even when
// their absolute feature values differ (for sets and subfield edits);
// positions are deliberately excluded so a version-token replacement
// matches across differently-shaped strings.
func (fd *FieldDelta) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", fd.Feature)
	switch fd.Kind {
	case fingerprint.KindString:
		for _, e := range fd.Edits {
			fmt.Fprintf(&b, "%c(%s=>%s)", e.Op, e.Old, e.New)
		}
	case fingerprint.KindSet:
		b.WriteString("+")
		b.WriteString(strings.Join(fd.Added, ","))
		b.WriteString("-")
		b.WriteString(strings.Join(fd.Deleted, ","))
	case fingerprint.KindHash:
		fmt.Fprintf(&b, "%s=>%s", fd.OldHash, fd.NewHash)
	}
	return b.String()
}

// Delta is a full dynamics record: every feature that changed between
// two consecutive fingerprints of one browser instance. The zero value
// is an empty delta.
type Delta struct {
	Fields []FieldDelta `json:"fields"`
}

// Empty reports whether no feature changed.
func (d *Delta) Empty() bool { return len(d.Fields) == 0 }

// Has reports whether feature id changed in this delta.
func (d *Delta) Has(id fingerprint.ID) bool {
	for i := range d.Fields {
		if d.Fields[i].Feature == id {
			return true
		}
	}
	return false
}

// Field returns the delta for feature id, or nil if it did not change.
func (d *Delta) Field(id fingerprint.ID) *FieldDelta {
	for i := range d.Fields {
		if d.Fields[i].Feature == id {
			return &d.Fields[i]
		}
	}
	return nil
}

// Key returns the canonical identity of the whole delta: the
// concatenation of per-field keys in schema order.
func (d *Delta) Key() string {
	parts := make([]string, len(d.Fields))
	for i := range d.Fields {
		parts[i] = d.Fields[i].Key()
	}
	return strings.Join(parts, ";")
}

// Hash returns a compact 64-bit identity derived from Key.
func (d *Delta) Hash() uint64 { return hashutil.Hash64(d.Key()) }

// FeatureIDs returns the IDs of all changed features in schema order.
func (d *Delta) FeatureIDs() []fingerprint.ID {
	out := make([]fingerprint.ID, len(d.Fields))
	for i := range d.Fields {
		out[i] = d.Fields[i].Feature
	}
	return out
}

// Diff computes the delta between two fingerprints, walking every
// schema feature. IP features are included (the paper's Table 1 reports
// IP dynamics) — callers that want the core-only view can filter with
// the schema's IsIP flag.
func Diff(a, b *fingerprint.Fingerprint) *Delta {
	d := &Delta{}
	for _, desc := range fingerprint.Schema {
		va, vb := a.Value(desc.ID), b.Value(desc.ID)
		switch desc.Kind {
		case fingerprint.KindString:
			if va.Str == vb.Str {
				continue
			}
			edits := DiffSubfields(useragent.Subfields(va.Str), useragent.Subfields(vb.Str))
			d.Fields = append(d.Fields, FieldDelta{
				Feature: desc.ID, Kind: desc.Kind, Edits: edits,
			})
		case fingerprint.KindSet:
			added, deleted := DiffSets(va.Set, vb.Set)
			if len(added) == 0 && len(deleted) == 0 {
				continue
			}
			d.Fields = append(d.Fields, FieldDelta{
				Feature: desc.ID, Kind: desc.Kind, Added: added, Deleted: deleted,
			})
		case fingerprint.KindHash:
			if va.Str == vb.Str {
				continue
			}
			d.Fields = append(d.Fields, FieldDelta{
				Feature: desc.ID, Kind: desc.Kind, OldHash: va.Str, NewHash: vb.Str,
			})
		}
	}
	return d
}

// DiffSets computes the two subtractions of §2.3.2: elements of b not
// in a (added) and elements of a not in b (deleted). Results are sorted.
func DiffSets(a, b []string) (added, deleted []string) {
	inA := make(map[string]bool, len(a))
	for _, s := range a {
		inA[s] = true
	}
	inB := make(map[string]bool, len(b))
	for _, s := range b {
		inB[s] = true
	}
	for s := range inB {
		if !inA[s] {
			added = append(added, s)
		}
	}
	for s := range inA {
		if !inB[s] {
			deleted = append(deleted, s)
		}
	}
	sort.Strings(added)
	sort.Strings(deleted)
	return added, deleted
}
