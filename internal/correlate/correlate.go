// Package correlate implements the paper's correlation analyses:
//
//   - Insight 3: implicit correlations between feature *dynamics* —
//     features that are unrelated statically but change together
//     (cookie↔localStorage under Chrome's single checkbox, DirectX API
//     level ↔ audio sample rate under Chrome's DirectX audio path);
//   - Table 3: features correlated with specific browser/OS updates
//     (canvas text/emoji subtypes, font list changes, plugin drops);
//   - Insight 4 / Figure 12: the timing correlation between release
//     events and update dynamics, i.e. adoption curves.
package correlate

import (
	"fmt"
	"sort"
	"time"

	"fpdyn/internal/canvas"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/useragent"
)

// canvasDiffSubtypes renders the Table 3 canvas subtype labels for an
// image pair.
func canvasDiffSubtypes(a, b *canvas.Image) []string {
	var out []string
	for _, s := range canvas.Diff(a, b).Subtypes() {
		out = append(out, string(s))
	}
	return out
}

// Correlation is one mined pair of co-changing features.
type Correlation struct {
	A, B     fingerprint.ID
	Together int // dynamics where both changed
	CountA   int // dynamics where A changed (at all)
	CountB   int
	Lift     float64 // P(A∧B) / (P(A)·P(B)) over changed dynamics
}

// Label renders the pair using schema names.
func (c Correlation) Label() string {
	return fingerprint.Describe(c.A).Name + " ↔ " + fingerprint.Describe(c.B).Name
}

// Implicit mines pairwise dynamics correlations following the paper's
// §4 methodology: rank feature pairs that appear together in dynamics
// and keep those whose joint appearance is disproportionate to their
// separate appearances. Pairs must co-occur at least minTogether times.
// IP features are excluded (they co-move with travel trivially).
// Results are sorted by descending lift, then joint count.
func Implicit(dyns []*dynamics.Dynamics, minTogether int) []Correlation {
	count := make([]int, fingerprint.NumFeatures)
	joint := map[[2]fingerprint.ID]int{}
	n := 0
	for _, d := range dyns {
		if !d.CoreChanged() {
			continue
		}
		n++
		ids := d.Delta.FeatureIDs()
		var core []fingerprint.ID
		for _, id := range ids {
			if fingerprint.Describe(id).IsIP {
				continue
			}
			core = append(core, id)
			count[id]++
		}
		for i := 0; i < len(core); i++ {
			for j := i + 1; j < len(core); j++ {
				joint[[2]fingerprint.ID{core[i], core[j]}]++
			}
		}
	}
	if n == 0 {
		return nil
	}
	var out []Correlation
	for pair, together := range joint {
		if together < minTogether {
			continue
		}
		a, b := pair[0], pair[1]
		lift := float64(together) * float64(n) / (float64(count[a]) * float64(count[b]))
		out = append(out, Correlation{
			A: a, B: b, Together: together,
			CountA: count[a], CountB: count[b], Lift: lift,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lift != out[j].Lift {
			return out[i].Lift > out[j].Lift
		}
		if out[i].Together != out[j].Together {
			return out[i].Together > out[j].Together
		}
		return out[i].A < out[j].A || (out[i].A == out[j].A && out[i].B < out[j].B)
	})
	return out
}

// UpdateCorrelation is one Table 3 row: a specific update and a
// correlated feature change.
type UpdateCorrelation struct {
	Update   string // e.g. "Chrome 63→64" or "iOS 11.2→11.3"
	Platform string // OS family the update was observed on
	Feature  string // e.g. "C: text detail", "F: +27 fonts", "P: -1 plugin"
	Count    int
}

// UpdateCorrelations aggregates, per observed browser/OS update, the
// co-changing canvas/font/plugin features — Table 3. The classifier
// provides canvas subtype resolution via its image store.
func UpdateCorrelations(dyns []*dynamics.Dynamics, cl *dynamics.Classifier) []UpdateCorrelation {
	counts := map[UpdateCorrelation]int{}
	for _, d := range dyns {
		if !d.Delta.Has(fingerprint.FeatUserAgent) {
			continue
		}
		from, err1 := useragent.CachedParse(d.From.FP.UserAgent)
		to, err2 := useragent.CachedParse(d.To.FP.UserAgent)
		if err1 != nil || err2 != nil || from.Browser != to.Browser || from.OS != to.OS {
			continue
		}
		var update string
		switch {
		case to.BrowserVersion.Compare(from.BrowserVersion) > 0:
			if to.BrowserVersion.Major == from.BrowserVersion.Major {
				update = fmt.Sprintf("%s %s→%s", to.Browser, from.BrowserVersion, to.BrowserVersion)
			} else {
				update = fmt.Sprintf("%s %d→%d", to.Browser, from.BrowserVersion.Major, to.BrowserVersion.Major)
			}
		case to.OSVersion.Compare(from.OSVersion) > 0:
			update = fmt.Sprintf("%s %s→%s", to.OS, from.OSVersion, to.OSVersion)
		default:
			continue
		}
		for _, feat := range correlatedFeatures(d, cl) {
			counts[UpdateCorrelation{Update: update, Platform: to.OS, Feature: feat}]++
		}
	}
	out := make([]UpdateCorrelation, 0, len(counts))
	for k, n := range counts {
		k.Count = n
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Update != out[j].Update {
			return out[i].Update < out[j].Update
		}
		return out[i].Feature < out[j].Feature
	})
	return out
}

// correlatedFeatures renders the Table 3 feature descriptors for one
// update's delta.
func correlatedFeatures(d *dynamics.Dynamics, cl *dynamics.Classifier) []string {
	var out []string
	if fd := d.Delta.Field(fingerprint.FeatCanvas); fd != nil {
		out = append(out, "C: "+canvasSubtypeLabel(fd.OldHash, fd.NewHash, cl))
	}
	if fd := d.Delta.Field(fingerprint.FeatFontList); fd != nil {
		switch {
		case len(fd.Added) > 0 && len(fd.Deleted) > 0:
			out = append(out, "F: remove/add fonts")
		case len(fd.Added) > 0:
			out = append(out, fmt.Sprintf("F: add %d fonts", len(fd.Added)))
		default:
			out = append(out, fmt.Sprintf("F: remove %d fonts", len(fd.Deleted)))
		}
	}
	if fd := d.Delta.Field(fingerprint.FeatPlugins); fd != nil {
		if len(fd.Deleted) > 0 && len(fd.Added) == 0 {
			out = append(out, fmt.Sprintf("P: remove %d plugin(s)", len(fd.Deleted)))
		} else {
			out = append(out, "P: plugin change")
		}
	}
	if d.Delta.Has(fingerprint.FeatGPUType) {
		out = append(out, "G: GPU API level change")
	}
	return out
}

func canvasSubtypeLabel(oldHash, newHash string, cl *dynamics.Classifier) string {
	if cl == nil || cl.Images == nil {
		return "canvas change"
	}
	a, okA := cl.Images.Image(oldHash)
	b, okB := cl.Images.Image(newHash)
	if !okA || !okB {
		return "canvas change"
	}
	subs := canvasDiffSubtypes(a, b)
	if len(subs) == 0 {
		return "canvas change"
	}
	s := subs[0]
	for _, more := range subs[1:] {
		s += " and " + more
	}
	return s
}

// AdoptionPoint is one Figure 12 sample: the share of all instances
// whose dynamics in this bucket updated the browser to the target
// version.
type AdoptionPoint struct {
	Start time.Time
	Pct   float64
	Count int
}

// AdoptionSeries computes a Figure 12 curve: bucketed counts of
// update-to-target dynamics for one browser family, as a percentage of
// totalInstances. start/end bound the window.
func AdoptionSeries(dyns []*dynamics.Dynamics, family string, targetMajor int,
	start, end time.Time, bucket time.Duration, totalInstances int) []AdoptionPoint {
	var series []AdoptionPoint
	for t := start; t.Before(end); t = t.Add(bucket) {
		series = append(series, AdoptionPoint{Start: t})
	}
	for _, d := range dyns {
		if !d.Delta.Has(fingerprint.FeatUserAgent) {
			continue
		}
		from, err1 := useragent.CachedParse(d.From.FP.UserAgent)
		to, err2 := useragent.CachedParse(d.To.FP.UserAgent)
		if err1 != nil || err2 != nil {
			continue
		}
		if to.Browser != family || from.Browser != family {
			continue
		}
		if to.BrowserVersion.Major != targetMajor || from.BrowserVersion.Major >= targetMajor {
			continue
		}
		i := int(d.To.Time.Sub(start) / bucket)
		if i >= 0 && i < len(series) {
			series[i].Count++
		}
	}
	if totalInstances > 0 {
		for i := range series {
			series[i].Pct = 100 * float64(series[i].Count) / float64(totalInstances)
		}
	}
	return series
}

// PeakAfter returns the index of the series' maximum at or after the
// given time — used to verify that adoption peaks follow releases.
func PeakAfter(series []AdoptionPoint, t time.Time) (int, bool) {
	best, bestIdx := -1, -1
	for i, p := range series {
		if p.Start.Before(t) {
			continue
		}
		if p.Count > best {
			best, bestIdx = p.Count, i
		}
	}
	return bestIdx, bestIdx >= 0
}
