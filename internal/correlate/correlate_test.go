package correlate

import (
	"testing"
	"time"

	"fpdyn/internal/browserid"
	"fpdyn/internal/diff"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/population"
	"fpdyn/internal/useragent"
)

var corWorld *population.Dataset
var corGT *browserid.GroundTruth

func world(t testing.TB) (*population.Dataset, *browserid.GroundTruth) {
	if corWorld == nil {
		cfg := population.DefaultConfig(2000)
		cfg.Seed = 23
		corWorld = population.Simulate(cfg)
		corGT = browserid.Build(corWorld.Records)
	}
	return corWorld, corGT
}

// craftDyn builds a dynamics record with the given feature mutations.
func craftDyn(id string, mutate func(*fingerprint.Fingerprint)) *dynamics.Dynamics {
	from := &fingerprint.Record{FP: &fingerprint.Fingerprint{
		CookieEnabled: true, LocalStorage: true, AudioInfo: "rate:44100",
		GPUType: "ANGLE (Direct3D9Ex)", TimezoneOffset: 60,
	}}
	to := &fingerprint.Record{FP: from.FP.Clone()}
	mutate(to.FP)
	return &dynamics.Dynamics{BrowserID: id, From: from, To: to, Delta: diff.Diff(from.FP, to.FP)}
}

func TestImplicitFindsCookieStorageCoupling(t *testing.T) {
	var dyns []*dynamics.Dynamics
	// 10 dynamics where cookie+localStorage flip together.
	for i := 0; i < 10; i++ {
		dyns = append(dyns, craftDyn("a", func(fp *fingerprint.Fingerprint) {
			fp.CookieEnabled = false
			fp.LocalStorage = false
		}))
	}
	// Background noise: timezone changes.
	for i := 0; i < 30; i++ {
		dyns = append(dyns, craftDyn("b", func(fp *fingerprint.Fingerprint) {
			fp.TimezoneOffset = 120
		}))
	}
	cors := Implicit(dyns, 3)
	if len(cors) == 0 {
		t.Fatal("no correlations found")
	}
	top := cors[0]
	pair := map[fingerprint.ID]bool{top.A: true, top.B: true}
	if !pair[fingerprint.FeatCookie] || !pair[fingerprint.FeatLocalStorage] {
		t.Fatalf("top correlation = %s, want cookie↔localStorage", top.Label())
	}
	if top.Lift <= 1 {
		t.Fatalf("lift = %v, want > 1", top.Lift)
	}
}

func TestImplicitMinTogether(t *testing.T) {
	dyns := []*dynamics.Dynamics{
		craftDyn("a", func(fp *fingerprint.Fingerprint) {
			fp.CookieEnabled = false
			fp.LocalStorage = false
		}),
	}
	if cors := Implicit(dyns, 2); len(cors) != 0 {
		t.Fatalf("minTogether ignored: %v", cors)
	}
}

func TestImplicitOnWorldFindsKnownCouplings(t *testing.T) {
	_, gt := world(t)
	dyns := dynamics.Changed(dynamics.Generate(gt))
	cors := Implicit(dyns, 2)
	if len(cors) == 0 {
		t.Fatal("no correlations mined")
	}
	for _, c := range cors[:minInt(15, len(cors))] {
		t.Logf("%-50s together=%d lift=%.1f", c.Label(), c.Together, c.Lift)
	}
	// When the Chrome checkbox coupling occurs at this scale, it must
	// carry positive lift; its absence is a sampling artifact.
	for _, c := range cors {
		if c.Label() == "Cookie Support ↔ localStorage Support" {
			if c.Lift <= 1 {
				t.Errorf("cookie↔localStorage lift = %.2f, want > 1", c.Lift)
			}
			return
		}
	}
	t.Skip("cookie↔localStorage coupling not sampled in this world")
}

func TestGPUAudioCouplingOnWorld(t *testing.T) {
	// Insight 3 example 3: the DirectX driver update changes GPU type
	// and audio sample rate together.
	_, gt := world(t)
	dyns := dynamics.Changed(dynamics.Generate(gt))
	cors := Implicit(dyns, 2)
	for _, c := range cors {
		pair := map[fingerprint.ID]bool{c.A: true, c.B: true}
		if pair[fingerprint.FeatGPUType] && pair[fingerprint.FeatAudio] {
			if c.Lift <= 1 {
				t.Errorf("GPU↔audio lift = %v, want > 1", c.Lift)
			}
			return
		}
	}
	t.Skip("no GPU-driver update landed between visits in this world")
}

func TestUpdateCorrelationsCrafted(t *testing.T) {
	from := &fingerprint.Record{FP: &fingerprint.Fingerprint{
		UserAgent:  useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(63, 0, 3239, 84), OS: useragent.Windows, OSVersion: useragent.V(10)}.String(),
		CanvasHash: "old", Fonts: []string{"Arial"},
	}}
	to := &fingerprint.Record{FP: &fingerprint.Fingerprint{
		UserAgent:  useragent.UA{Browser: useragent.Chrome, BrowserVersion: useragent.V(64, 0, 3282, 140), OS: useragent.Windows, OSVersion: useragent.V(10)}.String(),
		CanvasHash: "new", Fonts: []string{"Arial", "Bahnschrift"},
	}}
	d := &dynamics.Dynamics{BrowserID: "x", From: from, To: to, Delta: diff.Diff(from.FP, to.FP)}
	rows := UpdateCorrelations([]*dynamics.Dynamics{d}, &dynamics.Classifier{})
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if r.Update != "Chrome 63→64" || r.Platform != useragent.Windows {
			t.Fatalf("row = %+v", r)
		}
	}
}

func TestUpdateCorrelationsOnWorld(t *testing.T) {
	ds, gt := world(t)
	dyns := dynamics.Changed(dynamics.Generate(gt))
	cl := &dynamics.Classifier{Images: dynamics.MapImages(ds.CanvasImages)}
	rows := UpdateCorrelations(dyns, cl)
	if len(rows) == 0 {
		t.Fatal("no update correlations")
	}
	for _, r := range rows[:minInt(12, len(rows))] {
		t.Logf("%-24s %-10s %-32s ×%d", r.Update, r.Platform, r.Feature, r.Count)
	}
	// Canvas changes must be among the correlated features (Table 3:
	// canvas is the most common correlation).
	hasCanvas := false
	for _, r := range rows {
		if len(r.Feature) > 0 && r.Feature[0] == 'C' {
			hasCanvas = true
			break
		}
	}
	if !hasCanvas {
		t.Error("no canvas correlations found")
	}
}

func TestAdoptionSeriesFollowsRelease(t *testing.T) {
	ds, gt := world(t)
	dyns := dynamics.Changed(dynamics.Generate(gt))
	start, end := ds.Cfg.Start, ds.Cfg.End
	week := 7 * 24 * time.Hour

	// Chrome 64 released 2018-01-24: adoption must be zero before the
	// release and show a peak after it.
	series := AdoptionSeries(dyns, useragent.Chrome, 64, start, end, week, gt.NumInstances())
	release := time.Date(2018, 1, 24, 0, 0, 0, 0, time.UTC)
	totalBefore, totalAfter := 0, 0
	for _, p := range series {
		if p.Start.Add(week).Before(release) {
			totalBefore += p.Count
		} else {
			totalAfter += p.Count
		}
	}
	t.Logf("Chrome 64 adoption: before=%d after=%d", totalBefore, totalAfter)
	if totalBefore != 0 {
		t.Errorf("%d adoptions before the release date", totalBefore)
	}
	if totalAfter == 0 {
		t.Error("no adoptions after the release")
	}
	if _, ok := PeakAfter(series, release); !ok {
		t.Error("no adoption peak found")
	}
}

func TestAdoptionSeriesEmptyFamily(t *testing.T) {
	_, gt := world(t)
	dyns := dynamics.Changed(dynamics.Generate(gt))
	series := AdoptionSeries(dyns, "Netscape", 4,
		corWorld.Cfg.Start, corWorld.Cfg.End, 7*24*time.Hour, gt.NumInstances())
	for _, p := range series {
		if p.Count != 0 {
			t.Fatal("phantom adoptions for unknown family")
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkImplicit(b *testing.B) {
	_, gt := world(b)
	dyns := dynamics.Changed(dynamics.Generate(gt))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Implicit(dyns, 3)
	}
}
