package linkd

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzDecodeRequest: every frame off the wire funnels through
// DecodeRequest, so arbitrary bytes must never panic and must yield
// exactly one of (typed error) or (request satisfying every protocol
// invariant the dispatcher relies on). Mirrors storage's
// FuzzDecodeSegment: seed with valid messages, let the fuzzer corrupt
// them.
func FuzzDecodeRequest(f *testing.F) {
	seed := func(req *Request) {
		payload, err := json.Marshal(req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	rec := testRecord(1, tBase)
	seed(&Request{Type: TypeHello, Framing: "binary"})
	seed(&Request{Type: TypePing})
	seed(&Request{Type: TypeAdd, ID: "i1", Record: rec})
	seed(&Request{Type: TypeQuery, Record: rec, K: 5, DeadlineMS: 250})
	seed(&Request{Type: TypeQuery, Record: rec}) // k defaulting path
	f.Add([]byte(`{"type":"query","k":1000000,"record":{"fp":{}}}`))
	f.Add([]byte(`{"type":"query","deadline_ms":-1,"record":{"fp":{}}}`))
	f.Add([]byte(`{"type":"query","deadline_ms":999999999,"record":{"fp":{}}}`))
	f.Add([]byte(`{"type":"add","id":"","record":{"fp":{}}}`))
	f.Add([]byte(`{"type":"add","id":"x"}`))
	f.Add([]byte(`{"type":""}`))
	f.Add([]byte(`{"type":"reboot"}`))
	f.Add([]byte(`{"type":`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data) // must not panic
		if err != nil {
			if req != nil {
				t.Fatalf("error %v with non-nil request %+v", err, req)
			}
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("error not wrapped in ErrBadRequest: %v", err)
			}
			return
		}
		if req == nil {
			t.Fatal("nil request with nil error")
		}
		switch req.Type {
		case TypeHello, TypePing:
		case TypeAdd:
			if req.ID == "" || req.Record == nil || req.Record.FP == nil {
				t.Fatalf("underspecified add passed validation: %+v", req)
			}
		case TypeQuery:
			if req.Record == nil || req.Record.FP == nil {
				t.Fatalf("query without record passed validation: %+v", req)
			}
			if req.K < 1 || req.K > MaxK {
				t.Fatalf("query k %d outside [1, %d]", req.K, MaxK)
			}
			if req.DeadlineMS < 0 || req.DeadlineMS > MaxDeadlineMS {
				t.Fatalf("query deadline %d outside [0, %d]", req.DeadlineMS, MaxDeadlineMS)
			}
		default:
			t.Fatalf("unknown type %q passed validation", req.Type)
		}
	})
}
