package linkd

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"fpdyn/internal/fpstalker"
	"fpdyn/internal/storage"
)

// chaosAdd is one observation the chaos adder registered and got ACKed.
type chaosAdd struct {
	id  string
	rec int // testRecord serial
	t   time.Duration
}

// runChaos exercises the crash-safety contract: a service with a
// SyncAlways journal takes adds (single adder, so the ACKed set is a
// prefix) under concurrent query load, dies mid-stream via Abandon —
// the in-process kill -9 — and gets its tail segment torn. A reopened
// service must rebuild exactly the state the ACKs promised:
// digest-equal to a never-crashed reference fed the same adds, on both
// indexes, with identical rankings — before and after window eviction.
func runChaos(t *testing.T, compactMidway bool) {
	dir := t.TempDir()
	forest, err := testForest()
	if err != nil {
		t.Fatalf("train forest: %v", err)
	}
	clock := newFakeClock(tBase)
	wal := storage.WALOptions{Dir: dir, Policy: storage.SyncAlways}
	mkOpts := func(withWAL bool) Options {
		o := Options{
			Rule:  fpstalker.NewRuleLinker(),
			Learn: fpstalker.NewLearnLinker(forest),
			Clock: clock.Now, Window: 48 * time.Hour,
			MaxInFlight: 2, QueueDepth: 8,
		}
		if withWAL {
			o.WAL = wal
		}
		return o
	}

	svc, _, err := Open(mkOpts(true))
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// Single adder: an add is recorded as ACKed only after Add returns
	// nil, and Abandon flips closed at call boundaries, so the durable
	// set equals the ACKed set exactly.
	var (
		ackedMu sync.Mutex
		acked   []chaosAdd
	)
	adderDone := make(chan struct{})
	go func() {
		defer close(adderDone)
		for i := 0; ; i++ {
			a := chaosAdd{id: fmt.Sprintf("c%d", i), rec: i, t: time.Duration(i) * time.Minute}
			err := svc.Add(a.id, testRecord(a.rec, tBase.Add(a.t)))
			if errors.Is(err, ErrClosed) {
				return
			}
			if err != nil {
				t.Errorf("add %d: %v", i, err)
				return
			}
			ackedMu.Lock()
			acked = append(acked, a)
			n := len(acked)
			ackedMu.Unlock()
			if compactMidway && n == 40 {
				if _, err := svc.Compact(); err != nil {
					t.Errorf("mid-run compact: %v", err)
					return
				}
			}
		}
	}()

	// Concurrent queriers keep the read path hot across the crash line.
	var qwg sync.WaitGroup
	for q := 0; q < 2; q++ {
		qwg.Add(1)
		go func(q int) {
			defer qwg.Done()
			for i := 0; ; i++ {
				_, _, err := svc.Query(context.Background(), evolvedQuery(i%50, tBase.Add(time.Hour)), 3)
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("querier %d: %v", q, err)
					return
				}
			}
		}(q)
	}

	// Let the stream run, then pull the plug mid-add.
	waitFor(t, func() bool {
		ackedMu.Lock()
		defer ackedMu.Unlock()
		return len(acked) >= 80
	})
	svc.Abandon()
	<-adderDone
	qwg.Wait()

	// Tear the journal tail: append half a frame to the newest segment,
	// as a crash mid-write would.
	tearTail(t, dir)

	// Recovery: the replayed service must equal a never-crashed
	// reference fed exactly the ACKed adds under the same clock.
	re, stats, err := Open(mkOpts(true))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if !stats.Truncated || stats.TruncatedBytes == 0 {
		t.Fatalf("torn tail not truncated: %+v", stats)
	}

	ref, _, err := Open(mkOpts(false))
	if err != nil {
		t.Fatalf("open reference: %v", err)
	}
	defer ref.Close()
	for _, a := range acked {
		if err := ref.Add(a.id, testRecord(a.rec, tBase.Add(a.t))); err != nil {
			t.Fatalf("reference add: %v", err)
		}
	}

	compare := func(stage string) {
		t.Helper()
		if re.Len() != ref.Len() {
			t.Fatalf("%s: Len %d vs reference %d", stage, re.Len(), ref.Len())
		}
		gotRule, gotLearn := re.IndexDigests()
		wantRule, wantLearn := ref.IndexDigests()
		if gotRule != wantRule {
			t.Fatalf("%s: rule digest diverged:\n%s\n%s", stage, gotRule, wantRule)
		}
		if gotLearn != wantLearn {
			t.Fatalf("%s: learning digest diverged:\n%s\n%s", stage, gotLearn, wantLearn)
		}
		for _, serial := range []int{1, 17, 42, 63} {
			q := evolvedQuery(serial, tBase.Add(2*time.Hour))
			got, _, err1 := re.Query(context.Background(), q, 5)
			want, _, err2 := ref.Query(context.Background(), q, 5)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: query errs %v / %v", stage, err1, err2)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: query %d: %d vs %d candidates", stage, serial, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
					t.Fatalf("%s: query %d rank %d: %+v vs %+v", stage, serial, i, got[i], want[i])
				}
			}
		}
	}
	compare("post-recovery")

	// The collect window must evict identically on both sides: advance
	// the shared clock so the oldest adds age out.
	clock.Advance(48*time.Hour + 30*time.Minute)
	gotEv, wantEv := re.EvictExpired(), ref.EvictExpired()
	if gotEv != wantEv {
		t.Fatalf("evictions diverged: %d vs %d", gotEv, wantEv)
	}
	if gotEv == 0 {
		t.Fatal("eviction stage evicted nothing; window too wide for the stream")
	}
	compare("post-eviction")
}

func TestChaosKillRecover(t *testing.T) {
	runChaos(t, false)
}

func TestChaosKillRecoverAfterCompact(t *testing.T) {
	runChaos(t, true)
}

// tearTail appends a partial frame (a plausible header, half a payload)
// to the newest journal segment.
func tearTail(t *testing.T, dir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments to tear (%v)", err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open tail segment: %v", err)
	}
	torn := []byte{200, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 'p', 'a', 'r', 't'}
	if _, err := f.Write(torn); err != nil {
		t.Fatalf("tear tail: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close torn segment: %v", err)
	}
}
