package linkd

import (
	"container/heap"
	"time"
)

// windowEvictor tracks the record time of every live instance and
// yields the ones whose latest observation has slid out of the collect
// window. Times come from the records themselves (the paper's
// collect-period semantics: an instance is retained while it has an
// observation inside the window), and "now" is always injected, so
// eviction is a pure function of (adds, now) — the property the chaos
// test leans on to compare a recovered service against a never-crashed
// reference.
//
// Re-adds are handled lazily: each add pushes a heap item and records
// the instance's latest time in last; popped items whose time no
// longer matches last are stale and skipped. The heap is therefore
// bounded by adds, not instances, and shrinks as stale items surface.
type windowEvictor struct {
	h      windowHeap
	last   map[string]time.Time // instance → time of its latest add
	pinned map[string]struct{}  // instances exempt from eviction
}

type windowItem struct {
	t  time.Time
	id string
}

func newWindowEvictor() *windowEvictor {
	return &windowEvictor{
		last:   make(map[string]time.Time),
		pinned: make(map[string]struct{}),
	}
}

// observe records an add. Zero-time records never expire (they carry
// no collect timestamp to age out by), and the pin is sticky: once an
// instance has been observed without a timestamp it stays exempt even
// if later adds do carry one. (Before the pinned set existed, a timed
// re-add would silently unpin — the instance went back into last and
// aged out like any other, contradicting the documented "pins it
// forever" contract.)
func (w *windowEvictor) observe(id string, t time.Time) {
	if t.IsZero() {
		w.pinned[id] = struct{}{}
		delete(w.last, id) // drop any pending timed entry
		return
	}
	if _, ok := w.pinned[id]; ok {
		return // sticky pin: timed re-adds cannot re-arm eviction
	}
	w.last[id] = t
	heap.Push(&w.h, windowItem{t, id})
}

// expired pops every instance whose latest observation is strictly
// before cutoff, removes it from the tracker, and returns the ids in
// eviction (time, id) order — deterministic for a given add history.
func (w *windowEvictor) expired(cutoff time.Time) []string {
	var ids []string
	for len(w.h) > 0 {
		top := w.h[0]
		if !top.t.Before(cutoff) {
			break
		}
		heap.Pop(&w.h)
		if last, ok := w.last[top.id]; !ok || !last.Equal(top.t) {
			continue // stale: the instance was re-added more recently
		}
		delete(w.last, top.id)
		ids = append(ids, top.id)
	}
	return ids
}

// size returns the number of tracked (non-pinned) instances.
func (w *windowEvictor) size() int { return len(w.last) }

// windowHeap is a min-heap on (time, id); the id tiebreak makes
// eviction order — and therefore the journal-replay chaos comparison —
// fully deterministic.
type windowHeap []windowItem

func (h windowHeap) Len() int { return len(h) }
func (h windowHeap) Less(i, j int) bool {
	if !h[i].t.Equal(h[j].t) {
		return h[i].t.Before(h[j].t)
	}
	return h[i].id < h[j].id
}
func (h windowHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *windowHeap) Push(x any) { *h = append(*h, x.(windowItem)) }

func (h *windowHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
