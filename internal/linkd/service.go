package linkd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fpdyn/internal/faultinject"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/fpstalker"
	"fpdyn/internal/obs"
	"fpdyn/internal/storage"
)

// wallClock is this package's single wall-clock source. Everything
// that reads time for a *decision* (eviction cutoffs, latency
// observations, drain deadlines) goes through Options.Clock or this
// variable, never time.Now directly — scripts/lint_determinism.sh
// enforces it — so tests inject a fake clock and get bit-reproducible
// eviction and chaos runs.
var wallClock = time.Now

// ErrOverloaded is returned by Query when admission control sheds the
// request: the in-flight limit and the queue are both full. Clients
// should back off and retry; the server maps it to TypeOverloaded.
var ErrOverloaded = errors.New("linkd: overloaded")

// ErrClosed is returned once the service has shut down.
var ErrClosed = errors.New("linkd: service closed")

// Options configures Open. The zero value of every field except the
// linkers has a usable default.
type Options struct {
	// Rule is the rule-based linker (required — it is both the
	// degraded-mode server and the cheap recovery index).
	Rule *fpstalker.RuleLinker
	// Learn is the learning-based linker; nil runs the service
	// rule-only (no degradation machinery engages).
	Learn *fpstalker.LearnLinker

	// WAL configures the add journal. An empty WAL.Dir runs the
	// service in memory only: adds are not durable and Compact is
	// unavailable.
	WAL storage.WALOptions

	// Window is the sliding collect period: an instance whose latest
	// observation (by record time) is older than Window at eviction
	// time is removed from the table and all indexes. 0 disables
	// eviction.
	Window time.Duration

	// MaxInFlight bounds concurrently scoring queries (default
	// GOMAXPROCS). QueueDepth bounds queries waiting for a slot
	// (default 4×MaxInFlight); arrivals beyond MaxInFlight+QueueDepth
	// are shed immediately with ErrOverloaded.
	MaxInFlight int
	QueueDepth  int

	// Clock supplies "now" for eviction cutoffs and latency
	// measurement; defaults to the wall clock. Tests inject a fake.
	Clock func() time.Time

	// Fault, when set, stalls every admitted query before scoring —
	// the overload tests' slow-scorer injection point.
	Fault *faultinject.Script

	// Registry receives the service's metrics; nil allocates a private
	// one (reachable via Metrics).
	Registry *obs.Registry

	// Degradation thresholds; see degrader. Defaults: enter rule mode
	// after 3 consecutive samples with shed rate > 10% or p99 > 500ms,
	// recover after 5 consecutive samples with shed rate ≤ 1% and
	// p99 ≤ 100ms.
	ShedHigh     float64
	P99High      float64
	ShedLow      float64
	P99Low       float64
	DegradeAfter int
	RecoverAfter int

	// SampleEvery starts a background goroutine that calls
	// SampleOverload and EvictExpired on this period. 0 leaves both to
	// the caller (tests drive them manually).
	SampleEvery time.Duration
}

func (o *Options) maxInFlight() int {
	if o.MaxInFlight > 0 {
		return o.MaxInFlight
	}
	return runtime.GOMAXPROCS(0)
}

func (o *Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 4 * o.maxInFlight()
}

func (o *Options) clock() func() time.Time {
	if o.Clock != nil {
		return o.Clock
	}
	return wallClock
}

func (o *Options) degrader() degrader {
	d := degrader{
		ShedHigh: o.ShedHigh, P99High: o.P99High,
		ShedLow: o.ShedLow, P99Low: o.P99Low,
		DegradeAfter: o.DegradeAfter, RecoverAfter: o.RecoverAfter,
	}
	if d.ShedHigh <= 0 {
		d.ShedHigh = 0.10
	}
	if d.P99High <= 0 {
		d.P99High = 0.5
	}
	if d.ShedLow <= 0 {
		d.ShedLow = 0.01
	}
	if d.P99Low <= 0 {
		d.P99Low = 0.1
	}
	if d.DegradeAfter <= 0 {
		d.DegradeAfter = 3
	}
	if d.RecoverAfter <= 0 {
		d.RecoverAfter = 5
	}
	return d
}

// journalEntry is the payload of one journaled add. Evictions are NOT
// journaled: eviction is a pure function of (live records, now), so
// replaying the adds and re-running the evictor reproduces the exact
// post-eviction state — and Compact writes only live entries, which is
// where evicted history leaves the disk.
type journalEntry struct {
	ID  string              `json:"id"`
	Rec *fingerprint.Record `json:"rec"`
}

// serviceMetrics is the service's obs wiring; the query path performs
// only atomic updates.
type serviceMetrics struct {
	reg *obs.Registry

	queriesOK      *obs.Counter
	queriesShed    *obs.Counter
	queriesExpired *obs.Counter
	querySeconds   *obs.Histogram
	adds           *obs.Counter
	evictions      *obs.Counter

	inflight    *obs.Gauge
	queued      *obs.Gauge
	modeRule    *obs.Gauge
	transitions *obs.Counter
}

func newServiceMetrics(reg *obs.Registry) serviceMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return serviceMetrics{
		reg:            reg,
		queriesOK:      reg.Counter("linkd_queries_total", "Queries by outcome.", "outcome", "ok"),
		queriesShed:    reg.Counter("linkd_queries_total", "Queries by outcome.", "outcome", "shed"),
		queriesExpired: reg.Counter("linkd_queries_total", "Queries by outcome.", "outcome", "expired"),
		querySeconds:   reg.Histogram("linkd_query_seconds", "Latency of served queries (admission wait included).", nil),
		adds:           reg.Counter("linkd_adds_total", "Fingerprint observations registered."),
		evictions:      reg.Counter("linkd_evictions_total", "Instances evicted by the collect window."),

		inflight:    reg.Gauge("linkd_inflight_queries", "Queries currently scoring."),
		queued:      reg.Gauge("linkd_pending_queries", "Queries admitted or waiting for a scoring slot."),
		modeRule:    reg.Gauge("linkd_mode_rule", "1 while queries are served by the rule-based linker (degraded or rule-only)."),
		transitions: reg.Counter("linkd_mode_transitions_total", "Linker-mode flips by the overload controller."),
	}
}

// Service is the linking service core: linkers + journal + evictor +
// admission control + overload controller. The network server
// (Server) and the binary (cmd/fplinkd) are thin shells over it.
type Service struct {
	opts  Options
	rule  *fpstalker.RuleLinker
	learn *fpstalker.LearnLinker
	now   func() time.Time
	m     serviceMetrics

	// mu orders journal appends with table mutations so journal order
	// equals apply order — the invariant replay determinism rests on.
	// Queries do not take it (the linkers have their own locks).
	mu    sync.Mutex
	wal   *storage.WAL
	live  map[string]*fingerprint.Record
	evict *windowEvictor

	compactMu sync.Mutex

	sem     chan struct{} // in-flight scoring slots
	pending atomic.Int64  // admitted (queued + in-flight) queries

	degradeMu sync.Mutex
	deg       degrader
	degraded  atomic.Bool
	// Previous cumulative counter/bucket values for interval sampling.
	prevArrivals int64
	prevShed     int64
	prevBuckets  []uint64

	closed     atomic.Bool
	stopSample chan struct{}
	sampleDone chan struct{}
}

// Open builds a Service and, when WAL.Dir is set, replays the journal:
// the newest snapshot plus every uncovered segment is applied to the
// linkers (torn tails truncated), and subsequent adds append after the
// replayed history. The returned stats describe what recovery found.
func Open(opts Options) (*Service, storage.JournalReplayStats, error) {
	var stats storage.JournalReplayStats
	if opts.Rule == nil {
		return nil, stats, errors.New("linkd: Options.Rule is required")
	}
	s := &Service{
		opts:  opts,
		rule:  opts.Rule,
		learn: opts.Learn,
		now:   opts.clock(),
		m:     newServiceMetrics(opts.Registry),
		live:  make(map[string]*fingerprint.Record),
		evict: newWindowEvictor(),
		sem:   make(chan struct{}, opts.maxInFlight()),
		deg:   opts.degrader(),
	}
	s.m.reg.GaugeFunc("linkd_entries", "Live instances in the linking table.", func() float64 {
		return float64(s.rule.Len())
	})
	if s.learn == nil {
		s.m.modeRule.Set(1) // rule-only: the mode gauge tells the truth
	}
	if opts.WAL.Dir != "" {
		apply := func(payload []byte) error {
			var e journalEntry
			if err := json.Unmarshal(payload, &e); err != nil {
				return fmt.Errorf("linkd: journal entry: %w", err)
			}
			if e.ID == "" || e.Rec == nil || e.Rec.FP == nil {
				return errors.New("linkd: journal entry without id or record")
			}
			s.applyLocked(e.ID, e.Rec)
			return nil
		}
		w, st, err := storage.ReplayJournal(opts.WAL, apply, apply)
		if err != nil {
			return nil, st, err
		}
		s.wal = w
		stats = st
	}
	if opts.SampleEvery > 0 {
		s.stopSample = make(chan struct{})
		s.sampleDone = make(chan struct{})
		go s.sampleLoop(opts.SampleEvery)
	}
	return s, stats, nil
}

// Metrics returns the service's metric registry.
func (s *Service) Metrics() *obs.Registry { return s.m.reg }

// Len returns the number of live instances.
func (s *Service) Len() int { return s.rule.Len() }

// Degraded reports whether queries are currently served rule-based
// because of overload.
func (s *Service) Degraded() bool { return s.degraded.Load() }

// applyLocked installs one observation into the table, the evictor and
// both linkers, without journaling. Callers hold s.mu (or own the
// service exclusively during recovery).
//
// The canonical record is retained only when a journal is configured:
// live exists solely to feed Compact's snapshot cut (which requires a
// journal), and the linkers' interned store no longer holds records —
// so a memory-only service keeps nothing but the interned tables.
// Gated on the option, not s.wal: recovery replays entries through
// here before Open assigns s.wal.
func (s *Service) applyLocked(id string, rec *fingerprint.Record) {
	if s.opts.WAL.Dir != "" {
		s.live[id] = rec
	}
	s.evict.observe(id, rec.Time)
	s.rule.Add(id, rec)
	if s.learn != nil {
		s.learn.Add(id, rec)
	}
}

// Add registers rec as the latest fingerprint of instance id. With a
// journal attached the call returns only after the entry is durable
// per the WAL's fsync policy — the ACK-after-durable contract the
// chaos test holds the service to.
func (s *Service) Add(id string, rec *fingerprint.Record) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if id == "" || rec == nil || rec.FP == nil {
		return errors.New("linkd: add without id or record")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		payload, err := json.Marshal(&journalEntry{ID: id, Rec: rec})
		if err != nil {
			return fmt.Errorf("linkd: journal encode: %w", err)
		}
		if err := s.wal.AppendPayload(payload); err != nil {
			return err
		}
	}
	s.applyLocked(id, rec)
	s.m.adds.Inc()
	return nil
}

// Query ranks up to k linking candidates for rec, reporting which
// linker mode served it. Admission control runs first: beyond
// MaxInFlight+QueueDepth concurrently admitted queries the call sheds
// immediately with ErrOverloaded (never queuing behind a full house),
// and a ctx that expires while queued or mid-scan aborts with ctx's
// error — the scoring workers observe the same ctx and stop within a
// bounded number of candidates.
func (s *Service) Query(ctx context.Context, rec *fingerprint.Record, k int) ([]fpstalker.Candidate, string, error) {
	if s.closed.Load() {
		return nil, "", ErrClosed
	}
	if n := s.pending.Add(1); n > int64(s.opts.maxInFlight()+s.opts.queueDepth()) {
		s.pending.Add(-1)
		s.m.queriesShed.Inc()
		return nil, "", ErrOverloaded
	}
	s.m.queued.Add(1)
	defer func() {
		s.pending.Add(-1)
		s.m.queued.Add(-1)
	}()
	start := s.now()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case s.sem <- struct{}{}:
	case <-done:
		s.m.queriesExpired.Inc()
		return nil, "", ctx.Err()
	}
	defer func() { <-s.sem }()
	s.m.inflight.Add(1)
	defer s.m.inflight.Add(-1)

	s.opts.Fault.Stalled() // overload tests: the injected slow scorer

	mode := ModeRule
	var linker fpstalker.DynamicLinker = s.rule
	if s.learn != nil && !s.degraded.Load() {
		mode, linker = ModeLearning, s.learn
	}
	cands, err := linker.TopKCtx(ctx, rec, k)
	s.m.querySeconds.ObserveDuration(s.now().Sub(start))
	if err != nil {
		s.m.queriesExpired.Inc()
		return nil, mode, err
	}
	s.m.queriesOK.Inc()
	return cands, mode, nil
}

// EvictExpired removes every instance whose latest observation has
// slid out of the collect window, from the table and every index, and
// returns how many went. A no-op when Window is 0. Deterministic for
// a given add history and clock.
func (s *Service) EvictExpired() int {
	if s.opts.Window <= 0 {
		return 0
	}
	cutoff := s.now().Add(-s.opts.Window)
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := s.evict.expired(cutoff)
	for _, id := range ids {
		delete(s.live, id)
		s.rule.Remove(id)
		if s.learn != nil {
			s.learn.Remove(id)
		}
	}
	s.m.evictions.Add(int64(len(ids)))
	return len(ids)
}

// SampleOverload feeds one interval sample (shed rate and query p99
// since the previous call) to the overload controller and applies any
// mode flip. Returns the mode in force after the sample.
func (s *Service) SampleOverload() (degraded bool) {
	s.degradeMu.Lock()
	defer s.degradeMu.Unlock()

	shed := s.m.queriesShed.Value()
	arrivals := shed + s.m.queriesOK.Value() + s.m.queriesExpired.Value()
	dShed := shed - s.prevShed
	dArrivals := arrivals - s.prevArrivals
	s.prevShed, s.prevArrivals = shed, arrivals
	shedRate := 0.0
	if dArrivals > 0 {
		shedRate = float64(dShed) / float64(dArrivals)
	}
	p99 := s.intervalP99Locked()

	if s.learn == nil {
		return true // rule-only: nothing to degrade to
	}
	degraded, changed := s.deg.sample(shedRate, p99)
	if changed {
		s.degraded.Store(degraded)
		s.m.transitions.Inc()
		if degraded {
			s.m.modeRule.Set(1)
		} else {
			s.m.modeRule.Set(0)
		}
	}
	return degraded
}

// intervalP99Locked estimates the 99th percentile of query latency
// over the interval since the previous sample, from cumulative bucket
// deltas of the query histogram. Callers hold degradeMu.
func (s *Service) intervalP99Locked() float64 {
	snap := s.m.querySeconds.Snapshot()
	cur := make([]uint64, len(snap.Buckets))
	for i, b := range snap.Buckets {
		cur[i] = b.Cumulative
	}
	prev := s.prevBuckets
	s.prevBuckets = cur
	// Buckets are cumulative, so cumulative-count deltas are the
	// interval's own cumulative histogram.
	delta := func(i int) uint64 {
		d := cur[i]
		if prev != nil && i < len(prev) {
			d -= prev[i]
		}
		return d
	}
	total := delta(len(cur) - 1)
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(float64(total) * 0.99))
	if rank < 1 {
		rank = 1
	}
	maxFinite := 0.0
	for i, b := range snap.Buckets {
		if !math.IsInf(b.UpperBound, 1) {
			maxFinite = b.UpperBound
		}
		if delta(i) >= rank {
			if math.IsInf(b.UpperBound, 1) {
				return maxFinite // +Inf bucket clamps to the largest finite bound
			}
			return b.UpperBound
		}
	}
	return maxFinite
}

// IndexDigests returns the canonical digests of the rule and learning
// indexes ("" when the learning linker is absent) — the chaos test's
// recovered-state comparison.
func (s *Service) IndexDigests() (rule, learn string) {
	rule = s.rule.IndexDigest()
	if s.learn != nil {
		learn = s.learn.IndexDigest()
	}
	return rule, learn
}

// Compact checkpoints the live (non-evicted) table into a snapshot and
// deletes the journal segments it covers: evicted instances leave the
// disk here, and the next recovery replays live state, not history.
// Adds are blocked only while the cut is captured.
func (s *Service) Compact() (int64, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	s.mu.Lock()
	if s.wal == nil {
		s.mu.Unlock()
		return 0, errors.New("linkd: compact needs a journal")
	}
	active, err := s.wal.Rotate()
	if err != nil {
		s.mu.Unlock()
		return 0, fmt.Errorf("linkd: compact rotate: %w", err)
	}
	// The cut: every live entry, sorted by id so equal state yields
	// byte-identical snapshots.
	cut := make([]journalEntry, 0, len(s.live))
	for id, rec := range s.live {
		cut = append(cut, journalEntry{ID: id, Rec: rec})
	}
	dir := s.wal.Dir()
	s.mu.Unlock()
	sort.Slice(cut, func(i, j int) bool { return cut[i].ID < cut[j].ID })

	covered := active - 1
	n, err := storage.WriteSnapshotFrames(dir, covered, func(write func(payload []byte) error) error {
		for i := range cut {
			payload, err := json.Marshal(&cut[i])
			if err != nil {
				return fmt.Errorf("linkd: snapshot encode: %w", err)
			}
			if err := write(payload); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return n, storage.RemoveCoveredSegments(dir, covered)
}

// sampleLoop drives SampleOverload and EvictExpired on a fixed period.
func (s *Service) sampleLoop(every time.Duration) {
	defer close(s.sampleDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stopSample:
			return
		case <-t.C:
			s.SampleOverload()
			s.EvictExpired()
		}
	}
}

// Close stops the background sampler and closes the journal. In-flight
// queries finish; new calls fail with ErrClosed.
func (s *Service) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.stopSample != nil {
		close(s.stopSample)
		<-s.sampleDone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}

// Abandon tears the service down without closing the journal cleanly —
// the chaos tests' in-process kill -9: whatever the WAL already wrote
// (and fsynced, per policy) is on disk, everything else is lost, and
// no goroutine keeps running.
func (s *Service) Abandon() {
	s.closed.Store(true)
	if s.stopSample != nil {
		close(s.stopSample)
		<-s.sampleDone
	}
}
