// Package linkd is the always-on linking service: it wraps the
// FP-Stalker matching engine (internal/fpstalker) behind a small
// framed request protocol and adds the robustness machinery a
// production matcher needs — admission control with load shedding,
// per-request deadline propagation into the scoring workers, hysteretic
// degradation from the learning-based to the ~25×-cheaper rule-based
// linker under sustained overload, a crash-safe journal of incremental
// adds through the internal/storage WAL, and a sliding time-window
// evictor implementing the paper's collect-period semantics (Figure 9:
// linking quality and cost are both functions of how much history the
// matcher retains).
//
// The wire protocol reuses the collector's convention: connections
// start in newline-delimited JSON and a hello exchange may switch both
// sides to CRC-32C length-prefixed binary frames (storage.AppendFrame/
// ReadFrame) carrying the same JSON payloads.
package linkd

import (
	"encoding/json"
	"errors"
	"fmt"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/fpstalker"
)

// Request types (client → server).
const (
	TypeHello = "hello" // framing negotiation
	TypePing  = "ping"  // liveness probe
	TypeAdd   = "add"   // register a fingerprint observation
	TypeQuery = "query" // rank linking candidates for a fingerprint
)

// Response types (server → client).
const (
	TypePong       = "pong"
	TypeOK         = "ok"         // add accepted (durable per journal policy)
	TypeResult     = "result"     // query answered
	TypeOverloaded = "overloaded" // shed at admission: retry with backoff
	TypeError      = "error"
)

// Linker modes a Result reports (and the mode gauge exposes).
const (
	ModeLearning = "learning"
	ModeRule     = "rule"
)

// Protocol limits. Requests outside them are rejected at decode time,
// before any work is admitted.
const (
	// MaxK caps the candidates one query may request.
	MaxK = 1000
	// DefaultK is used when a query leaves K zero.
	DefaultK = 10
	// MaxDeadlineMS caps the client-supplied deadline; a query that
	// asks for more gets an error, not a silent clamp.
	MaxDeadlineMS = 60_000
	// DefaultMaxFrame bounds one request frame in bytes.
	DefaultMaxFrame = 1 << 20
)

// Request is a client→server message.
type Request struct {
	Type string `json:"type"`
	// Framing is the framing mode a hello requests.
	Framing string `json:"framing,omitempty"`
	// ID is the instance whose fingerprint an add registers.
	ID string `json:"id,omitempty"`
	// Record carries the fingerprint of an add or query.
	Record *fingerprint.Record `json:"record,omitempty"`
	// K is how many candidates a query wants (DefaultK when 0).
	K int `json:"k,omitempty"`
	// DeadlineMS is the query's compute budget in milliseconds from
	// arrival; 0 means no deadline beyond the server's own limits. The
	// deadline propagates into the scoring workers, so an expired query
	// stops consuming CPU mid-scan.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Response is a server→client message.
type Response struct {
	Type  string `json:"type"`
	Error string `json:"error,omitempty"`
	// Framing confirms a hello.
	Framing string `json:"framing,omitempty"`
	// Candidates are a query's ranked results, best first.
	Candidates []fpstalker.Candidate `json:"candidates,omitempty"`
	// Mode names the linker variant that served a query — how a client
	// observes degradation.
	Mode string `json:"mode,omitempty"`
}

// ErrBadRequest wraps every validation failure DecodeRequest reports.
var ErrBadRequest = errors.New("linkd: bad request")

// DecodeRequest parses and validates one request payload. Every frame
// off the wire funnels through here, so the fuzz target for the
// decoder covers the full parse-then-validate surface: malformed JSON,
// unknown types, missing records, oversized k, absurd deadlines.
func DecodeRequest(payload []byte) (*Request, error) {
	var req Request
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("%w: malformed JSON: %v", ErrBadRequest, err)
	}
	switch req.Type {
	case TypeHello, TypePing:
		return &req, nil
	case TypeAdd:
		if req.ID == "" {
			return nil, fmt.Errorf("%w: add without id", ErrBadRequest)
		}
		if req.Record == nil || req.Record.FP == nil {
			return nil, fmt.Errorf("%w: add without record", ErrBadRequest)
		}
		return &req, nil
	case TypeQuery:
		if req.Record == nil || req.Record.FP == nil {
			return nil, fmt.Errorf("%w: query without record", ErrBadRequest)
		}
		if req.K < 0 || req.K > MaxK {
			return nil, fmt.Errorf("%w: k %d outside [0, %d]", ErrBadRequest, req.K, MaxK)
		}
		if req.K == 0 {
			req.K = DefaultK
		}
		if req.DeadlineMS < 0 || req.DeadlineMS > MaxDeadlineMS {
			return nil, fmt.Errorf("%w: deadline %dms outside [0, %d]", ErrBadRequest, req.DeadlineMS, MaxDeadlineMS)
		}
		return &req, nil
	case "":
		return nil, fmt.Errorf("%w: missing type", ErrBadRequest)
	default:
		return nil, fmt.Errorf("%w: unknown type %q", ErrBadRequest, req.Type)
	}
}
