package linkd

// degrader is the hysteretic overload controller: it watches interval
// samples of the shed rate and query p99 and decides which linker
// variant serves queries. Sustained overload (DegradeAfter consecutive
// samples over the high watermarks) switches to the rule-based linker;
// sustained calm (RecoverAfter consecutive samples under the low
// watermarks) switches back. The gap between watermarks plus the
// consecutive-sample requirement is what prevents mode flapping when
// load hovers near a threshold — a single spike changes nothing, and a
// sample in the dead band resets both streaks, holding the current
// mode.
//
// The controller is pure state over explicit inputs (no clocks, no
// metric reads), so tests drive it sample by sample.
type degrader struct {
	// Enter degraded mode when shedRate > ShedHigh OR p99 > P99High
	// for DegradeAfter consecutive samples.
	ShedHigh float64
	P99High  float64 // seconds
	// Leave degraded mode when shedRate <= ShedLow AND p99 <= P99Low
	// for RecoverAfter consecutive samples.
	ShedLow      float64
	P99Low       float64 // seconds
	DegradeAfter int
	RecoverAfter int

	degraded  bool
	badStreak int
	okStreak  int
}

// sample feeds one interval observation and reports the mode after it
// plus whether this sample flipped it.
func (d *degrader) sample(shedRate, p99 float64) (degraded, changed bool) {
	bad := shedRate > d.ShedHigh || p99 > d.P99High
	good := shedRate <= d.ShedLow && p99 <= d.P99Low
	switch {
	case bad:
		d.badStreak++
		d.okStreak = 0
	case good:
		d.okStreak++
		d.badStreak = 0
	default: // dead band: hold the current mode, restart both streaks
		d.badStreak = 0
		d.okStreak = 0
	}
	if !d.degraded && d.badStreak >= d.DegradeAfter {
		d.degraded = true
		return true, true
	}
	if d.degraded && d.okStreak >= d.RecoverAfter {
		d.degraded = false
		return false, true
	}
	return d.degraded, false
}
