package linkd

import (
	"fmt"
	"testing"
	"time"

	"fpdyn/internal/fpstalker"
	"fpdyn/internal/storage"
)

// TestWindowEvictorStickyPin pins the evictor's pin contract at the
// unit level: a zero-time observation exempts the instance forever,
// and a later timed re-add must NOT re-arm eviction. (Regression: the
// pre-pinned-set evictor implemented the pin as delete(last, id), so
// any timed re-add silently unpinned — the exact sequence a journal
// replay or a client retry produces.)
func TestWindowEvictorStickyPin(t *testing.T) {
	w := newWindowEvictor()
	w.observe("a", tBase)
	w.observe("pin", tBase)
	w.observe("pin", time.Time{}) // pin after a timed add
	w.observe("pin", tBase.Add(time.Hour))
	w.observe("pin", tBase.Add(2*time.Hour)) // timed re-adds: still pinned
	w.observe("b", tBase.Add(3*time.Hour))

	ids := w.expired(tBase.Add(1000 * time.Hour))
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("expired = %v, want [a b] (pin must never expire)", ids)
	}
	if w.size() != 0 {
		t.Fatalf("size = %d after full expiry, want 0 tracked", w.size())
	}
	// The pin holds across further rounds too.
	w.observe("pin", tBase.Add(4*time.Hour))
	if ids := w.expired(tBase.Add(2000 * time.Hour)); len(ids) != 0 {
		t.Fatalf("pinned instance expired on a later round: %v", ids)
	}
}

// TestEvictionPinSurvivesTimedReAdd drives the same sequence through
// the service with a fake clock: pin an instance, re-observe it with a
// timestamp old enough to be outside the window, advance, evict — the
// pin must survive, and two identically-fed services (one where the
// timed re-add never happened) must land on identical index digests,
// since a pinned instance's eviction state may not depend on
// post-pin observations.
func TestEvictionPinSurvivesTimedReAdd(t *testing.T) {
	build := func(timedReAdd bool) *Service {
		clock := newFakeClock(tBase)
		svc := openTest(t, func(o *Options) {
			o.Window = 24 * time.Hour
			o.Clock = clock.Now
		})
		if err := svc.Add("pin", testRecord(3, time.Time{})); err != nil {
			t.Fatalf("pin add: %v", err)
		}
		if timedReAdd {
			// The record content matches the non-re-add service so only
			// the evictor state could possibly diverge.
			if err := svc.Add("pin", testRecord(3, time.Time{})); err != nil {
				t.Fatalf("zero re-add: %v", err)
			}
			if err := svc.Add("pin", testRecord(3, tBase)); err != nil {
				t.Fatalf("timed re-add: %v", err)
			}
			if err := svc.Add("pin", testRecord(3, time.Time{})); err != nil {
				t.Fatalf("restore record: %v", err)
			}
		}
		clock.Advance(1000 * time.Hour)
		svc.EvictExpired()
		return svc
	}

	svc := build(true)
	if svc.Len() != 1 {
		t.Fatalf("Len = %d after eviction, want 1 (the pin)", svc.Len())
	}
	ref := build(false)
	r1, l1 := svc.IndexDigests()
	r2, l2 := ref.IndexDigests()
	if r1 != r2 || l1 != l2 {
		t.Fatalf("timed re-add changed the pinned end state:\n%s / %s\n%s / %s", r1, l1, r2, l2)
	}
}

// TestEvictionPinSurvivesRecovery extends the chaos property to pins:
// replaying a journal that interleaves pins and timed re-adds must
// rebuild the same eviction behaviour as the never-crashed service.
func TestEvictionPinSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	forest, err := testForest()
	if err != nil {
		t.Fatalf("train forest: %v", err)
	}
	wal := storage.WALOptions{Dir: dir, Policy: storage.SyncAlways}
	open := func(clock *fakeClock) *Service {
		svc, _, err := Open(Options{
			Rule: fpstalker.NewRuleLinker(), Learn: fpstalker.NewLearnLinker(forest),
			WAL: wal, Window: 24 * time.Hour, Clock: clock.Now, MaxInFlight: 2,
		})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return svc
	}

	clock := newFakeClock(tBase)
	svc := open(clock)
	for i := 0; i < 6; i++ {
		if err := svc.Add(fmt.Sprintf("i%d", i), testRecord(i, tBase.Add(time.Duration(i)*time.Hour))); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	if err := svc.Add("i1", testRecord(1, time.Time{})); err != nil { // pin i1
		t.Fatalf("pin: %v", err)
	}
	if err := svc.Add("i1", testRecord(1, tBase.Add(2*time.Hour))); err != nil { // then a timed re-add
		t.Fatalf("re-add: %v", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	reClock := newFakeClock(tBase)
	re := open(reClock)
	defer re.Close()
	reClock.Advance(1000 * time.Hour)
	re.EvictExpired()
	if re.Len() != 1 {
		t.Fatalf("recovered Len = %d after full expiry, want 1 (pinned i1)", re.Len())
	}

	// Reference: the same history applied to a fresh in-memory service.
	refClock := newFakeClock(tBase)
	ref := openTest(t, func(o *Options) {
		o.Window = 24 * time.Hour
		o.Clock = refClock.Now
	})
	for i := 0; i < 6; i++ {
		if err := ref.Add(fmt.Sprintf("i%d", i), testRecord(i, tBase.Add(time.Duration(i)*time.Hour))); err != nil {
			t.Fatalf("ref add: %v", err)
		}
	}
	if err := ref.Add("i1", testRecord(1, time.Time{})); err != nil {
		t.Fatalf("ref pin: %v", err)
	}
	if err := ref.Add("i1", testRecord(1, tBase.Add(2*time.Hour))); err != nil {
		t.Fatalf("ref re-add: %v", err)
	}
	refClock.Advance(1000 * time.Hour)
	ref.EvictExpired()
	r1, l1 := re.IndexDigests()
	r2, l2 := ref.IndexDigests()
	if r1 != r2 || l1 != l2 {
		t.Fatalf("recovered eviction state diverges from never-crashed reference:\n%s / %s\n%s / %s", r1, l1, r2, l2)
	}
}
