package linkd

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"fpdyn/internal/collector"
	"fpdyn/internal/storage"
)

// Default connection-hygiene settings; override the Server fields
// before Serve.
const (
	DefaultReadTimeout  = 2 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
	DefaultDrainGrace   = 2 * time.Second
)

// Server speaks the linkd wire protocol over TCP, dispatching into a
// Service. Framing follows the collector's convention: newline JSON
// until a hello negotiates binary CRC frames. Robustness decisions
// (shedding, deadlines, degradation) live in the Service; the server
// only translates them onto the wire — crucially, an Overloaded
// response goes out immediately, from the accept-side goroutine, so a
// full queue never stalls the connection.
type Server struct {
	svc *Service

	// ReadTimeout bounds the wait for the next request on an idle
	// connection; WriteTimeout bounds one response write. Negative
	// disables.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// MaxFrame caps one request frame in bytes (DefaultMaxFrame).
	MaxFrame int
	// DrainGrace is how long in-flight requests may finish after
	// Shutdown begins.
	DrainGrace time.Duration

	// Logf receives per-connection error logs; defaults to log.Printf.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	lis      net.Listener
	closed   bool
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	draining atomic.Bool
}

// NewServer wraps a Service.
func NewServer(svc *Service) *Server {
	return &Server{
		svc:   svc,
		conns: make(map[net.Conn]struct{}),
		Logf:  log.Printf,
	}
}

func (s *Server) readTimeout() time.Duration {
	if s.ReadTimeout == 0 {
		return DefaultReadTimeout
	}
	return s.ReadTimeout
}

func (s *Server) writeTimeout() time.Duration {
	if s.WriteTimeout == 0 {
		return DefaultWriteTimeout
	}
	return s.WriteTimeout
}

func (s *Server) maxFrame() int {
	if s.MaxFrame <= 0 {
		return DefaultMaxFrame
	}
	return s.MaxFrame
}

func (s *Server) drainGrace() time.Duration {
	if s.DrainGrace <= 0 {
		return DefaultDrainGrace
	}
	return s.DrainGrace
}

// Serve accepts connections on lis until Close/Shutdown. It blocks.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return nil
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Logf("linkd: connection %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// handle runs the request loop for one connection.
func (s *Server) handle(conn net.Conn) error {
	br := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)
	binary := false
	var wbuf []byte
	for {
		if !s.draining.Load() {
			if rt := s.readTimeout(); rt > 0 {
				conn.SetReadDeadline(wallClock().Add(rt))
			}
		}
		var payload []byte
		var err error
		if binary {
			payload, err = storage.ReadFrame(br, s.maxFrame())
			if errors.Is(err, storage.ErrFrameSize) {
				err = collector.ErrFrameTooLong
			}
		} else {
			payload, err = collector.ReadLine(br, s.maxFrame())
		}
		if err != nil {
			switch {
			case errors.Is(err, io.EOF):
				return io.EOF
			case errors.Is(err, collector.ErrFrameTooLong):
				s.writeResponse(conn, enc, binary, &wbuf, &Response{Type: TypeError, Error: "request exceeds frame limit"})
				return collector.ErrFrameTooLong
			case s.draining.Load() && errors.Is(err, os.ErrDeadlineExceeded):
				return nil // drained: the connection went idle past the grace
			default:
				return err
			}
		}
		if len(payload) == 0 {
			continue
		}
		req, err := DecodeRequest(payload)
		if err != nil {
			if werr := s.writeResponse(conn, enc, binary, &wbuf, &Response{Type: TypeError, Error: err.Error()}); werr != nil {
				return werr
			}
			continue // a malformed request costs the client a round trip, not the connection
		}
		resp := s.dispatch(req)
		if err := s.writeResponse(conn, enc, binary, &wbuf, resp); err != nil {
			return err
		}
		if resp.Type == TypeHello && resp.Framing == collector.FramingBinary {
			binary = true // both sides switch after the hello reply
		}
	}
}

func (s *Server) writeResponse(conn net.Conn, enc *json.Encoder, binary bool, wbuf *[]byte, resp *Response) error {
	if wt := s.writeTimeout(); wt > 0 {
		conn.SetWriteDeadline(wallClock().Add(wt))
	}
	if !binary {
		return enc.Encode(resp)
	}
	payload, err := json.Marshal(resp)
	if err != nil {
		return err
	}
	*wbuf = storage.AppendFrame((*wbuf)[:0], payload)
	_, err = conn.Write(*wbuf)
	return err
}

// dispatch executes one validated request against the service.
func (s *Server) dispatch(req *Request) *Response {
	switch req.Type {
	case TypePing:
		return &Response{Type: TypePong}
	case TypeHello:
		f := collector.FramingJSON
		if req.Framing == collector.FramingBinary {
			f = collector.FramingBinary
		}
		return &Response{Type: TypeHello, Framing: f}
	case TypeAdd:
		if err := s.svc.Add(req.ID, req.Record); err != nil {
			return &Response{Type: TypeError, Error: "add not durable: " + err.Error()}
		}
		return &Response{Type: TypeOK}
	case TypeQuery:
		ctx := context.Background()
		if req.DeadlineMS > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
			defer cancel()
		}
		cands, mode, err := s.svc.Query(ctx, req.Record, req.K)
		switch {
		case errors.Is(err, ErrOverloaded):
			return &Response{Type: TypeOverloaded, Error: err.Error()}
		case err != nil:
			return &Response{Type: TypeError, Error: err.Error(), Mode: mode}
		}
		return &Response{Type: TypeResult, Candidates: cands, Mode: mode}
	default: // DecodeRequest admits no other types
		return &Response{Type: TypeError, Error: "unknown request type " + req.Type}
	}
}

// Close stops accepting, closes live connections and waits for
// handlers to drain — the abrupt stop. Use Shutdown for a graceful
// drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.wg.Wait()
	return nil
}

// Shutdown drains the server: it stops accepting immediately, lets
// in-flight requests on existing connections finish (bounded by
// DrainGrace and ctx), then closes. The service itself stays open —
// the caller snapshots and closes it after the drain, so every ACKed
// add is on disk before the process exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining.Store(true)
	drainStart := wallClock()
	lis := s.lis
	deadline := drainStart.Add(s.drainGrace())
	if d, ok := ctx.Deadline(); ok {
		if h := d.Add(-20 * time.Millisecond); h.Before(deadline) {
			deadline = h
			if deadline.Before(drainStart) {
				deadline = drainStart
			}
		}
	}
	for c := range s.conns {
		c.SetReadDeadline(deadline)
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		select {
		case <-done:
			return nil
		default:
		}
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
		return ctx.Err()
	}
}
