package linkd

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"fpdyn/internal/collector"
	"fpdyn/internal/faultinject"
	"fpdyn/internal/storage"
)

// startServer brings up a Service behind a Server on a loopback port.
func startServer(t *testing.T, mutate func(*Options)) (*Service, *Server, string) {
	t.Helper()
	svc := openTest(t, mutate)
	srv := NewServer(svc)
	srv.Logf = t.Logf
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return svc, srv, lis.Addr().String()
}

// testClient speaks the linkd wire protocol, switching framing after a
// binary hello like a real client.
type testClient struct {
	conn   net.Conn
	br     *bufio.Reader
	binary bool
}

func dialServer(t *testing.T, addr string) *testClient {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { conn.Close() })
	return &testClient{conn: conn, br: bufio.NewReader(conn)}
}

func (c *testClient) send(t *testing.T, payload []byte) {
	t.Helper()
	var wire []byte
	if c.binary {
		wire = storage.AppendFrame(nil, payload)
	} else {
		wire = append(payload, '\n')
	}
	if _, err := c.conn.Write(wire); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func (c *testClient) recv(t *testing.T) *Response {
	t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var payload []byte
	var err error
	if c.binary {
		payload, err = storage.ReadFrame(c.br, DefaultMaxFrame)
	} else {
		payload, err = collector.ReadLine(c.br, DefaultMaxFrame)
	}
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	var resp Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		t.Fatalf("decode response %q: %v", payload, err)
	}
	return &resp
}

func (c *testClient) roundTrip(t *testing.T, req *Request) *Response {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("encode request: %v", err)
	}
	c.send(t, payload)
	resp := c.recv(t)
	if req.Type == TypeHello && resp.Type == TypeHello && resp.Framing == collector.FramingBinary {
		c.binary = true
	}
	return resp
}

func TestServerJSONRoundTrip(t *testing.T) {
	_, _, addr := startServer(t, nil)
	c := dialServer(t, addr)

	if resp := c.roundTrip(t, &Request{Type: TypePing}); resp.Type != TypePong {
		t.Fatalf("ping → %+v", resp)
	}
	for i := 0; i < 10; i++ {
		resp := c.roundTrip(t, &Request{
			Type: TypeAdd, ID: fmt.Sprintf("i%d", i),
			Record: testRecord(i, tBase.Add(time.Duration(i)*time.Minute)),
		})
		if resp.Type != TypeOK {
			t.Fatalf("add %d → %+v", i, resp)
		}
	}
	resp := c.roundTrip(t, &Request{Type: TypeQuery, Record: evolvedQuery(4, tBase.Add(time.Hour)), K: 3})
	if resp.Type != TypeResult || resp.Mode != ModeLearning {
		t.Fatalf("query → %+v", resp)
	}
	if len(resp.Candidates) == 0 || resp.Candidates[0].ID != "i4" {
		t.Fatalf("query candidates = %+v, want i4 first", resp.Candidates)
	}
}

func TestServerBinaryNegotiation(t *testing.T) {
	_, _, addr := startServer(t, nil)
	c := dialServer(t, addr)

	resp := c.roundTrip(t, &Request{Type: TypeHello, Framing: collector.FramingBinary})
	if resp.Type != TypeHello || resp.Framing != collector.FramingBinary {
		t.Fatalf("hello → %+v", resp)
	}
	if !c.binary {
		t.Fatal("client did not switch to binary framing")
	}
	// Everything after the hello reply rides CRC frames, both ways.
	if resp := c.roundTrip(t, &Request{Type: TypeAdd, ID: "b1", Record: testRecord(1, tBase)}); resp.Type != TypeOK {
		t.Fatalf("binary add → %+v", resp)
	}
	resp = c.roundTrip(t, &Request{Type: TypeQuery, Record: testRecord(1, tBase.Add(time.Hour)), K: 2})
	if resp.Type != TypeResult || len(resp.Candidates) == 0 || resp.Candidates[0].ID != "b1" {
		t.Fatalf("binary query → %+v", resp)
	}
}

// TestServerMalformedRequest: a bad frame costs the client an error
// response, not the connection.
func TestServerMalformedRequest(t *testing.T) {
	_, _, addr := startServer(t, nil)
	c := dialServer(t, addr)

	c.send(t, []byte(`{"type":"query"`)) // truncated JSON
	if resp := c.recv(t); resp.Type != TypeError {
		t.Fatalf("malformed JSON → %+v", resp)
	}
	c.send(t, []byte(`{"type":"query","k":5000,"record":{"fp":{}}}`))
	if resp := c.recv(t); resp.Type != TypeError {
		t.Fatalf("oversized k → %+v", resp)
	}
	if resp := c.roundTrip(t, &Request{Type: TypePing}); resp.Type != TypePong {
		t.Fatalf("connection dead after malformed requests: %+v", resp)
	}
}

// TestServerDeadline: deadline_ms becomes a context deadline that
// cancels the stalled query.
func TestServerDeadline(t *testing.T) {
	_, _, addr := startServer(t, func(o *Options) {
		o.Fault = &faultinject.Script{Stall: 200 * time.Millisecond}
	})
	c := dialServer(t, addr)
	if resp := c.roundTrip(t, &Request{Type: TypeAdd, ID: "d1", Record: testRecord(1, tBase)}); resp.Type != TypeOK {
		t.Fatalf("add → %+v", resp)
	}
	resp := c.roundTrip(t, &Request{Type: TypeQuery, Record: testRecord(1, tBase), K: 2, DeadlineMS: 20})
	if resp.Type != TypeError {
		t.Fatalf("expired query → %+v, want error", resp)
	}
	// Without a deadline the same query succeeds.
	resp = c.roundTrip(t, &Request{Type: TypeQuery, Record: testRecord(1, tBase), K: 2})
	if resp.Type != TypeResult {
		t.Fatalf("undeadlined query → %+v", resp)
	}
}

// TestServerOverloaded: with the house full, an extra connection gets
// TypeOverloaded promptly — it does not queue behind the stall.
func TestServerOverloaded(t *testing.T) {
	const stall = 500 * time.Millisecond
	svc, _, addr := startServer(t, func(o *Options) {
		o.MaxInFlight = 1
		o.QueueDepth = 1
		o.Fault = &faultinject.Script{Stall: stall}
	})
	loader := dialServer(t, addr)
	for i := 0; i < 5; i++ {
		if resp := loader.roundTrip(t, &Request{Type: TypeAdd, ID: fmt.Sprintf("i%d", i), Record: testRecord(i, tBase)}); resp.Type != TypeOK {
			t.Fatalf("add → %+v", resp)
		}
	}

	query := &Request{Type: TypeQuery, Record: evolvedQuery(2, tBase.Add(time.Hour)), K: 2}
	results := make(chan *Response, 2)
	for i := 0; i < 2; i++ {
		cl := dialServer(t, addr)
		want := int64(i + 1)
		go func() { results <- cl.roundTrip(t, query) }()
		waitFor(t, func() bool { return svc.pending.Load() == want })
	}

	shedder := dialServer(t, addr)
	start := time.Now()
	resp := shedder.roundTrip(t, query)
	if resp.Type != TypeOverloaded {
		t.Fatalf("third query → %+v, want overloaded", resp)
	}
	if waited := time.Since(start); waited > stall/2 {
		t.Fatalf("overloaded response took %v; must not wait out the %v stall", waited, stall)
	}
	for i := 0; i < 2; i++ {
		if r := <-results; r.Type != TypeResult {
			t.Fatalf("admitted query %d → %+v", i, r)
		}
	}
}

// TestServerShutdownDrain: Shutdown refuses new connections but lets
// the in-flight query finish and deliver its result.
func TestServerShutdownDrain(t *testing.T) {
	svc, srv, addr := startServer(t, func(o *Options) {
		o.Fault = &faultinject.Script{Stall: 300 * time.Millisecond}
	})
	srv.DrainGrace = 2 * time.Second
	c := dialServer(t, addr)
	if resp := c.roundTrip(t, &Request{Type: TypeAdd, ID: "s1", Record: testRecord(1, tBase)}); resp.Type != TypeOK {
		t.Fatalf("add → %+v", resp)
	}

	inflight := make(chan *Response, 1)
	go func() {
		inflight <- c.roundTrip(t, &Request{Type: TypeQuery, Record: testRecord(1, tBase), K: 1})
	}()
	waitFor(t, func() bool { return svc.m.inflight.Value() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if resp := <-inflight; resp.Type != TypeResult {
		t.Fatalf("in-flight query during drain → %+v", resp)
	}
	// The listener is down: new connections are refused.
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		t.Fatal("dial succeeded after shutdown")
	}
	// The service survives the server: the operator snapshots, then closes.
	if svc.Len() != 1 {
		t.Fatalf("service lost state across drain: Len = %d", svc.Len())
	}
}
