package linkd

import (
	"fmt"
	"sync"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/fpstalker"
	"fpdyn/internal/mlearn"
)

// tBase anchors every test record's collect time.
var tBase = time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)

// uaPool gives the blocking index a realistic spread of buckets.
var uaPool = []string{
	"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/63.0.3239.132 Safari/537.36",
	"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.140 Safari/537.36",
	"Mozilla/5.0 (Windows NT 6.1; Win64; x64; rv:58.0) Gecko/20100101 Firefox/58.0",
	"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_13_3) AppleWebKit/604.5.6 (KHTML, like Gecko) Version/11.0.3 Safari/604.5.6",
	"Mozilla/5.0 (X11; Linux x86_64; rv:57.0) Gecko/20100101 Firefox/57.0",
}

// testRecord builds a deterministic fingerprint record for instance i
// observed at t. Records of one instance share stable features;
// canvas varies per instance so fingerprints are distinct.
func testRecord(i int, t time.Time) *fingerprint.Record {
	return &fingerprint.Record{
		Time:   t,
		UserID: fmt.Sprintf("u%d", i),
		FP: &fingerprint.Fingerprint{
			UserAgent: uaPool[i%len(uaPool)],
			Accept:    "text/html", Encoding: "gzip, deflate, br", Language: "en-US,en;q=0.9",
			HeaderList:    []string{"Host", "User-Agent"},
			Plugins:       []string{"Chrome PDF Plugin"},
			CookieEnabled: true, WebGL: true, LocalStorage: true,
			TimezoneOffset:   60,
			Languages:        []string{"en-US"},
			Fonts:            []string{"Arial", "Calibri", fmt.Sprintf("Font-%d", i%7)},
			CanvasHash:       fmt.Sprintf("canvas-%d", i),
			GPUVendor:        "NVIDIA Corporation",
			GPURenderer:      "GeForce GTX 970",
			GPUType:          "ANGLE (Direct3D11)",
			CPUCores:         4,
			CPUClass:         "x86",
			AudioInfo:        "channels:2;rate:44100",
			ScreenResolution: "1920x1080",
			ColorDepth:       24, PixelRatio: "1",
			ConsLanguage: true, ConsResolution: true, ConsOS: true, ConsBrowser: true,
			GPUImageHash: fmt.Sprintf("gpu-%d", i%11),
		},
	}
}

// evolvedQuery derives a plausible non-exact query from instance i's
// record — same stable features, drifted timezone (the dynamic the
// test forest is trained on, see testForest).
func evolvedQuery(i int, t time.Time) *fingerprint.Record {
	rec := testRecord(i, t)
	rec.FP.TimezoneOffset = 240
	return rec
}

// fakeClock is the injectable deterministic clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock(t time.Time) *fakeClock { return &fakeClock{t: t} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testForest trains a tiny pair model over the synthetic record
// stream — enough structure for the learning linker to rank with.
var (
	forestOnce sync.Once
	forestVal  *mlearn.Forest
	forestErr  error
)

func testForest() (*mlearn.Forest, error) {
	forestOnce.Do(func() {
		var records []*fingerprint.Record
		var instances []int
		for i := 0; i < 120; i++ {
			for v := 0; v < 3; v++ { // repeat visits → positive pairs
				rec := testRecord(i, tBase.Add(time.Duration(i*3+v)*time.Hour))
				rec.FP.TimezoneOffset = 60 * (v + 1) // within-instance drift
				records = append(records, rec)
				instances = append(instances, i)
			}
		}
		forestVal, forestErr = fpstalker.TrainPairModel(records, instances,
			mlearn.ForestConfig{Seed: 5, NumTrees: 5, MaxDepth: 5})
	})
	return forestVal, forestErr
}
