package linkd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fpdyn/internal/faultinject"
	"fpdyn/internal/fpstalker"
	"fpdyn/internal/storage"
)

// openTest builds an in-memory service with both linkers and the given
// option tweaks applied on top of sane test defaults.
func openTest(t *testing.T, mutate func(*Options)) *Service {
	t.Helper()
	forest, err := testForest()
	if err != nil {
		t.Fatalf("train forest: %v", err)
	}
	opts := Options{
		Rule:        fpstalker.NewRuleLinker(),
		Learn:       fpstalker.NewLearnLinker(forest),
		MaxInFlight: 4,
		QueueDepth:  4,
	}
	if mutate != nil {
		mutate(&opts)
	}
	svc, _, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func addN(t *testing.T, svc *Service, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rec := testRecord(i, tBase.Add(time.Duration(i)*time.Minute))
		if err := svc.Add(fmt.Sprintf("i%d", i), rec); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
}

func TestAddQueryBasic(t *testing.T) {
	svc := openTest(t, nil)
	addN(t, svc, 20)
	if svc.Len() != 20 {
		t.Fatalf("Len = %d, want 20", svc.Len())
	}

	cands, mode, err := svc.Query(context.Background(), evolvedQuery(7, tBase.Add(time.Hour)), 5)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if mode != ModeLearning {
		t.Fatalf("mode = %q, want %q", mode, ModeLearning)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates for an evolved fingerprint")
	}
	// Exact re-observation must surface its own instance first.
	cands, _, err = svc.Query(context.Background(), testRecord(7, tBase.Add(time.Hour)), 3)
	if err != nil {
		t.Fatalf("exact query: %v", err)
	}
	if len(cands) == 0 || cands[0].ID != "i7" {
		t.Fatalf("exact query top candidate = %+v, want i7", cands)
	}
}

func TestAddValidation(t *testing.T) {
	svc := openTest(t, nil)
	if err := svc.Add("", testRecord(0, tBase)); err == nil {
		t.Fatal("add with empty id accepted")
	}
	if err := svc.Add("x", nil); err == nil {
		t.Fatal("add with nil record accepted")
	}
	svc.Close()
	if err := svc.Add("x", testRecord(0, tBase)); !errors.Is(err, ErrClosed) {
		t.Fatalf("add after close: %v, want ErrClosed", err)
	}
	if _, _, err := svc.Query(context.Background(), testRecord(0, tBase), 3); !errors.Is(err, ErrClosed) {
		t.Fatalf("query after close: %v, want ErrClosed", err)
	}
}

// TestAdmissionShed is the overload test: with one scoring slot and a
// one-deep queue stalled by the fault injector, a third concurrent
// query must be shed immediately — not after the stall — while the
// admitted queries still complete.
func TestAdmissionShed(t *testing.T) {
	const stall = 300 * time.Millisecond
	svc := openTest(t, func(o *Options) {
		o.MaxInFlight = 1
		o.QueueDepth = 1
		o.Fault = &faultinject.Script{Stall: stall}
	})
	addN(t, svc, 10)

	type result struct {
		err error
	}
	results := make(chan result, 2)
	runQuery := func() {
		_, _, err := svc.Query(context.Background(), evolvedQuery(3, tBase.Add(time.Hour)), 3)
		results <- result{err}
	}

	go runQuery() // will hold the scoring slot for ~stall
	waitFor(t, func() bool { return svc.m.inflight.Value() == 1 })
	go runQuery() // queued behind it
	waitFor(t, func() bool { return svc.pending.Load() == 2 })

	start := time.Now()
	_, _, err := svc.Query(context.Background(), evolvedQuery(4, tBase.Add(time.Hour)), 3)
	shedAfter := time.Since(start)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third query: %v, want ErrOverloaded", err)
	}
	if shedAfter > stall/2 {
		t.Fatalf("shed took %v; must not wait out the %v stall", shedAfter, stall)
	}

	for i := 0; i < 2; i++ {
		if r := <-results; r.err != nil {
			t.Fatalf("admitted query %d failed: %v", i, r.err)
		}
	}
	if got := svc.m.queriesShed.Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	if got := svc.m.queriesOK.Value(); got != 2 {
		t.Fatalf("ok counter = %d, want 2", got)
	}
	if n := svc.pending.Load(); n != 0 {
		t.Fatalf("pending = %d after drain, want 0", n)
	}
}

// TestQueuedDeadline: a query whose context expires while waiting for a
// scoring slot aborts with the context's error, promptly.
func TestQueuedDeadline(t *testing.T) {
	const stall = 400 * time.Millisecond
	svc := openTest(t, func(o *Options) {
		o.MaxInFlight = 1
		o.QueueDepth = 2
		o.Fault = &faultinject.Script{Stall: stall}
	})
	addN(t, svc, 10)

	done := make(chan error, 1)
	go func() {
		_, _, err := svc.Query(context.Background(), evolvedQuery(1, tBase.Add(time.Hour)), 3)
		done <- err
	}()
	waitFor(t, func() bool { return svc.m.inflight.Value() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := svc.Query(ctx, evolvedQuery(2, tBase.Add(time.Hour)), 3)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued query: %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > stall {
		t.Fatalf("deadline honored after %v; slot holder stalls %v", waited, stall)
	}
	if got := svc.m.queriesExpired.Value(); got != 1 {
		t.Fatalf("expired counter = %d, want 1", got)
	}
	if err := <-done; err != nil {
		t.Fatalf("slot holder failed: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEvictionWindow drives the sliding collect window with a fake
// clock: old instances leave every index, re-observation pins an
// instance, a zero observation time pins it forever, and two services
// fed the same history land on identical digests.
func TestEvictionWindow(t *testing.T) {
	build := func() (*Service, *fakeClock) {
		clock := newFakeClock(tBase)
		svc := openTest(t, func(o *Options) {
			o.Window = 24 * time.Hour
			o.Clock = clock.Now
		})
		for i := 0; i < 10; i++ {
			rec := testRecord(i, tBase.Add(time.Duration(i)*time.Hour))
			if err := svc.Add(fmt.Sprintf("i%d", i), rec); err != nil {
				t.Fatalf("add: %v", err)
			}
		}
		// Re-observation of i2 at +20h: its window restarts there.
		if err := svc.Add("i2", testRecord(2, tBase.Add(20*time.Hour))); err != nil {
			t.Fatalf("re-add: %v", err)
		}
		// Zero-time record: pinned, never subject to the window.
		pin := testRecord(99, time.Time{})
		if err := svc.Add("pin", pin); err != nil {
			t.Fatalf("pin add: %v", err)
		}
		return svc, clock
	}

	svc, clock := build()
	clock.Advance(30 * time.Hour) // cutoff = tBase+6h
	evicted := svc.EvictExpired()
	// i0..i5 observed before +6h — except i2, re-observed at +20h.
	if evicted != 5 {
		t.Fatalf("evicted %d, want 5", evicted)
	}
	if svc.Len() != 6 { // i2, i6..i9, pin
		t.Fatalf("Len = %d after eviction, want 6", svc.Len())
	}
	if got := svc.m.evictions.Value(); got != 5 {
		t.Fatalf("evictions counter = %d, want 5", got)
	}
	// Evicted instances are gone from the indexes, survivors remain.
	cands, _, err := svc.Query(context.Background(), testRecord(7, tBase.Add(31*time.Hour)), 3)
	if err != nil || len(cands) == 0 || cands[0].ID != "i7" {
		t.Fatalf("survivor query = %v, %v; want i7 first", cands, err)
	}
	for _, c := range cands {
		if c.ID == "i0" || c.ID == "i5" {
			t.Fatalf("evicted instance %s still ranked", c.ID)
		}
	}

	// Determinism: an identically-fed service evicts to the same state.
	ref, refClock := build()
	refClock.Advance(30 * time.Hour)
	ref.EvictExpired()
	r1, l1 := svc.IndexDigests()
	r2, l2 := ref.IndexDigests()
	if r1 != r2 || l1 != l2 {
		t.Fatalf("digest divergence after identical eviction:\n%s / %s\n%s / %s", r1, l1, r2, l2)
	}

	// Much later everything but the pin is out.
	clock.Advance(1000 * time.Hour)
	svc.EvictExpired()
	if svc.Len() != 1 {
		t.Fatalf("Len = %d after full expiry, want 1 (the pin)", svc.Len())
	}
}

func TestDegraderHysteresis(t *testing.T) {
	mk := func() degrader {
		return degrader{
			ShedHigh: 0.10, P99High: 0.5,
			ShedLow: 0.01, P99Low: 0.1,
			DegradeAfter: 2, RecoverAfter: 2,
		}
	}
	type step struct {
		shed, p99    float64
		wantDegraded bool
		wantChanged  bool
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"needs consecutive bad", []step{
			{0.5, 0, false, false},
			{0, 0, false, false}, // good resets the streak
			{0.5, 0, false, false},
			{0.5, 0, true, true},
		}},
		{"p99 alone degrades", []step{
			{0, 1.0, false, false},
			{0, 1.0, true, true},
		}},
		{"dead band holds mode and resets streaks", []step{
			{0.5, 0, false, false},
			{0.05, 0.3, false, false}, // neither bad nor good
			{0.5, 0, false, false},
			{0.5, 0, true, true},
			{0, 0, true, false},
			{0.05, 0.3, true, false}, // dead band: stay degraded
			{0, 0, true, false},
			{0, 0, false, true},
		}},
		{"recovery needs consecutive good", []step{
			{0.5, 0, false, false},
			{0.5, 0, true, true},
			{0, 0, true, false},
			{0.5, 0, true, false}, // bad resets the ok streak
			{0, 0, true, false},
			{0, 0, false, true},
		}},
		{"recovery needs both gauges low", []step{
			{0.5, 0, false, false},
			{0.5, 0, true, true},
			{0, 0.3, true, false}, // shed fine, p99 in dead band
			{0, 0.3, true, false},
			{0, 0.3, true, false},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := mk()
			for i, s := range tc.steps {
				degraded, changed := d.sample(s.shed, s.p99)
				if degraded != s.wantDegraded || changed != s.wantChanged {
					t.Fatalf("step %d (%+v): degraded=%v changed=%v, want %v %v",
						i, s, degraded, changed, s.wantDegraded, s.wantChanged)
				}
			}
		})
	}
}

// TestSampleOverloadModeSwitch drives the service-level controller with
// synthetic counter/histogram traffic: sustained shed flips the mode
// gauge to rule, queries report the degraded mode, calm intervals flip
// it back.
func TestSampleOverloadModeSwitch(t *testing.T) {
	svc := openTest(t, func(o *Options) {
		o.DegradeAfter = 2
		o.RecoverAfter = 2
	})
	addN(t, svc, 10)

	loadedInterval := func() {
		svc.m.queriesShed.Add(50)
		svc.m.queriesOK.Add(50)
	}

	if svc.SampleOverload() {
		t.Fatal("degraded with no traffic")
	}
	loadedInterval()
	if svc.SampleOverload() { // bad streak 1
		t.Fatal("degraded after one bad interval")
	}
	loadedInterval()
	if !svc.SampleOverload() { // bad streak 2 → flip
		t.Fatal("not degraded after two bad intervals")
	}
	if !svc.Degraded() {
		t.Fatal("Degraded() = false in degraded mode")
	}
	if got := svc.m.modeRule.Value(); got != 1 {
		t.Fatalf("linkd_mode_rule = %v, want 1", got)
	}
	if got := svc.m.transitions.Value(); got != 1 {
		t.Fatalf("transitions = %d, want 1", got)
	}
	_, mode, err := svc.Query(context.Background(), evolvedQuery(3, tBase.Add(time.Hour)), 3)
	if err != nil || mode != ModeRule {
		t.Fatalf("degraded query mode = %q (%v), want %q", mode, err, ModeRule)
	}

	// Two idle intervals: shed rate 0, p99 0 → recover.
	svc.SampleOverload()
	if !svc.Degraded() {
		t.Fatal("recovered after one good interval")
	}
	svc.SampleOverload()
	if svc.Degraded() {
		t.Fatal("not recovered after two good intervals")
	}
	if got := svc.m.modeRule.Value(); got != 0 {
		t.Fatalf("linkd_mode_rule = %v after recovery, want 0", got)
	}
	if got := svc.m.transitions.Value(); got != 2 {
		t.Fatalf("transitions = %d, want 2", got)
	}
	_, mode, err = svc.Query(context.Background(), evolvedQuery(3, tBase.Add(time.Hour)), 3)
	if err != nil || mode != ModeLearning {
		t.Fatalf("recovered query mode = %q (%v), want %q", mode, err, ModeLearning)
	}
}

// TestSampleOverloadP99 degrades on latency alone: slow observations
// with zero shed must trip the p99 watermark.
func TestSampleOverloadP99(t *testing.T) {
	svc := openTest(t, func(o *Options) {
		o.DegradeAfter = 2
		o.RecoverAfter = 2
	})
	slowInterval := func() {
		for i := 0; i < 100; i++ {
			svc.m.querySeconds.Observe(1.0) // well over the 0.5s watermark
		}
		svc.m.queriesOK.Add(100)
	}
	slowInterval()
	svc.SampleOverload()
	slowInterval()
	if !svc.SampleOverload() {
		t.Fatal("p99 over watermark for two intervals did not degrade")
	}
}

// TestRuleOnlySample: without a learning linker there is nothing to
// degrade to — the sampler reports rule mode and never transitions.
func TestRuleOnlySample(t *testing.T) {
	svc, _, err := Open(Options{Rule: fpstalker.NewRuleLinker(), MaxInFlight: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer svc.Close()
	if got := svc.m.modeRule.Value(); got != 1 {
		t.Fatalf("rule-only linkd_mode_rule = %v, want 1", got)
	}
	svc.m.queriesShed.Add(100)
	if !svc.SampleOverload() {
		t.Fatal("rule-only SampleOverload must report degraded (rule) mode")
	}
	if got := svc.m.transitions.Value(); got != 0 {
		t.Fatalf("rule-only transitions = %d, want 0", got)
	}
	if err := svc.Add("a", testRecord(0, tBase)); err != nil {
		t.Fatalf("add: %v", err)
	}
	_, mode, err := svc.Query(context.Background(), testRecord(0, tBase), 1)
	if err != nil || mode != ModeRule {
		t.Fatalf("rule-only query mode = %q (%v)", mode, err)
	}
}

// TestJournalRecovery: reopen after a clean close replays every add and
// rebuilds both indexes digest-equal.
func TestJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	forest, err := testForest()
	if err != nil {
		t.Fatalf("train forest: %v", err)
	}
	wal := storage.WALOptions{Dir: dir, Policy: storage.SyncAlways}

	svc, _, err := Open(Options{
		Rule: fpstalker.NewRuleLinker(), Learn: fpstalker.NewLearnLinker(forest),
		WAL: wal, MaxInFlight: 2,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	addN(t, svc, 40)
	wantRule, wantLearn := svc.IndexDigests()
	wantCands, _, err := svc.Query(context.Background(), evolvedQuery(11, tBase.Add(time.Hour)), 5)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re, stats, err := Open(Options{
		Rule: fpstalker.NewRuleLinker(), Learn: fpstalker.NewLearnLinker(forest),
		WAL: wal, MaxInFlight: 2,
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if stats.Frames != 40 {
		t.Fatalf("replayed %d frames, want 40", stats.Frames)
	}
	if re.Len() != 40 {
		t.Fatalf("Len = %d after recovery, want 40", re.Len())
	}
	gotRule, gotLearn := re.IndexDigests()
	if gotRule != wantRule || gotLearn != wantLearn {
		t.Fatalf("recovered digests differ:\nrule  %s vs %s\nlearn %s vs %s", gotRule, wantRule, gotLearn, wantLearn)
	}
	gotCands, _, err := re.Query(context.Background(), evolvedQuery(11, tBase.Add(time.Hour)), 5)
	if err != nil {
		t.Fatalf("recovered query: %v", err)
	}
	if len(gotCands) != len(wantCands) {
		t.Fatalf("recovered candidates %d, want %d", len(gotCands), len(wantCands))
	}
	for i := range gotCands {
		if gotCands[i].ID != wantCands[i].ID {
			t.Fatalf("candidate %d = %s, want %s", i, gotCands[i].ID, wantCands[i].ID)
		}
	}
	// Adds keep appending after the replayed history.
	if err := re.Add("later", testRecord(41, tBase.Add(time.Hour))); err != nil {
		t.Fatalf("post-recovery add: %v", err)
	}
}

// TestCompactDropsEvicted: after window eviction, Compact writes only
// live entries — the evicted history leaves the disk, and the next
// recovery replays the snapshot alone.
func TestCompactDropsEvicted(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock(tBase.Add(40 * time.Hour))
	wal := storage.WALOptions{Dir: dir, Policy: storage.SyncAlways}
	open := func() *Service {
		svc, _, err := Open(Options{
			Rule: fpstalker.NewRuleLinker(), WAL: wal,
			Window: 24 * time.Hour, Clock: clock.Now, MaxInFlight: 2,
		})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return svc
	}

	svc := open()
	for i := 0; i < 10; i++ { // stale: observed around tBase
		if err := svc.Add(fmt.Sprintf("old%d", i), testRecord(i, tBase.Add(time.Duration(i)*time.Minute))); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	for i := 10; i < 15; i++ { // fresh: observed at +30h, inside the window
		if err := svc.Add(fmt.Sprintf("new%d", i), testRecord(i, tBase.Add(30*time.Hour))); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	if n := svc.EvictExpired(); n != 10 {
		t.Fatalf("evicted %d, want 10", n)
	}
	if _, err := svc.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	wantRule, _ := svc.IndexDigests()
	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re, stats, err := Open(Options{
		Rule: fpstalker.NewRuleLinker(), WAL: wal,
		Window: 24 * time.Hour, Clock: clock.Now, MaxInFlight: 2,
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if stats.SnapshotFrames != 5 {
		t.Fatalf("snapshot frames = %d, want 5 (live entries only)", stats.SnapshotFrames)
	}
	if stats.Frames != 0 {
		t.Fatalf("segment frames = %d, want 0 after compaction", stats.Frames)
	}
	if re.Len() != 5 {
		t.Fatalf("Len = %d after recovery, want 5", re.Len())
	}
	gotRule, _ := re.IndexDigests()
	if gotRule != wantRule {
		t.Fatalf("recovered digest differs:\n%s\n%s", gotRule, wantRule)
	}
}

func TestCompactWithoutJournal(t *testing.T) {
	svc := openTest(t, nil)
	if _, err := svc.Compact(); err == nil {
		t.Fatal("compact without a journal must fail")
	}
}

// TestConcurrentAddsQueriesEvict shakes the service under -race:
// writers, queriers and the evictor run together.
func TestConcurrentAddsQueriesEvict(t *testing.T) {
	clock := newFakeClock(tBase)
	svc := openTest(t, func(o *Options) {
		o.Window = time.Hour
		o.Clock = clock.Now
		o.MaxInFlight = 2
		o.QueueDepth = 64
	})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				id := w*60 + i
				svc.Add(fmt.Sprintf("i%d", id), testRecord(id, tBase.Add(time.Duration(i)*time.Minute)))
			}
		}(w)
	}
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				_, _, err := svc.Query(context.Background(), evolvedQuery(i, tBase.Add(time.Hour)), 3)
				if err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(q)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			clock.Advance(5 * time.Minute)
			svc.EvictExpired()
			svc.SampleOverload()
		}
	}()
	wg.Wait()
	if r, _ := svc.IndexDigests(); r == "" {
		t.Fatal("empty rule digest after churn")
	}
}
