// Package textplot renders the reproduction's figures as terminal
// charts: horizontal bar charts for breakdowns (Figures 3, 5, 6),
// line-ish series for time plots (Figures 4, 9, 10, 12), and aligned
// tables for Tables 1–3. Keeping rendering here keeps the analysis
// packages pure.
package textplot

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Bar renders a labelled horizontal bar chart. Values are scaled to
// width characters against the maximum.
func Bar(w io.Writer, title string, labels []string, values []float64, width int) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(width))
		}
		fmt.Fprintf(w, "  %-*s │%s %.1f\n", maxL, labels[i], strings.Repeat("█", n), v)
	}
}

// BarMap renders a map as a bar chart sorted by descending value.
func BarMap(w io.Writer, title string, m map[string]int, width int) {
	labels := make([]string, 0, len(m))
	for k := range m {
		labels = append(labels, k)
	}
	sort.Slice(labels, func(i, j int) bool {
		if m[labels[i]] != m[labels[j]] {
			return m[labels[i]] > m[labels[j]]
		}
		return labels[i] < labels[j]
	})
	values := make([]float64, len(labels))
	for i, l := range labels {
		values[i] = float64(m[l])
	}
	Bar(w, title, labels, values, width)
}

// Series renders an x/y series as a compact sparkline-style plot with
// the min/max annotated.
func Series(w io.Writer, title string, xs []string, ys []float64, height int) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	if len(ys) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	maxV := ys[0]
	for _, v := range ys {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	for row := height; row >= 1; row-- {
		lo := maxV * float64(row-1) / float64(height)
		var b strings.Builder
		for _, v := range ys {
			if v > lo {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		label := ""
		if row == height {
			label = fmt.Sprintf(" %.2f", maxV)
		}
		if row == 1 {
			label = " 0"
		}
		fmt.Fprintf(w, "  │%s%s\n", b.String(), label)
	}
	fmt.Fprintf(w, "  └%s\n", strings.Repeat("─", len(ys)))
	if len(xs) > 0 {
		fmt.Fprintf(w, "   %s … %s\n", xs[0], xs[len(xs)-1])
	}
}

// Table renders rows with aligned columns. The first row is treated as
// a header and underlined.
func Table(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	render := func(row []string) {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	render(rows[0])
	total := 0
	for _, width := range widths {
		total += width + 2
	}
	fmt.Fprintln(w, strings.Repeat("─", total-2))
	for _, row := range rows[1:] {
		render(row)
	}
}
