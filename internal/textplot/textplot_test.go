package textplot

import (
	"bytes"
	"strings"
	"testing"
)

func TestBar(t *testing.T) {
	var buf bytes.Buffer
	Bar(&buf, "title", []string{"a", "bb"}, []float64{10, 5}, 20)
	out := buf.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "bb") {
		t.Fatalf("output: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[1], "█") != 20 {
		t.Errorf("max bar should fill width: %q", lines[1])
	}
	if strings.Count(lines[2], "█") != 10 {
		t.Errorf("half bar should be half width: %q", lines[2])
	}
}

func TestBarZeroValues(t *testing.T) {
	var buf bytes.Buffer
	Bar(&buf, "", []string{"x"}, []float64{0}, 10)
	if strings.Contains(buf.String(), "█") {
		t.Fatal("zero value drew a bar")
	}
}

func TestBarMapSorted(t *testing.T) {
	var buf bytes.Buffer
	BarMap(&buf, "", map[string]int{"low": 1, "high": 9}, 10)
	out := buf.String()
	if strings.Index(out, "high") > strings.Index(out, "low") {
		t.Fatal("BarMap not sorted descending")
	}
}

func TestSeries(t *testing.T) {
	var buf bytes.Buffer
	Series(&buf, "s", []string{"jan", "feb", "mar"}, []float64{1, 3, 2}, 3)
	out := buf.String()
	if !strings.Contains(out, "jan") || !strings.Contains(out, "mar") {
		t.Fatalf("axis labels missing: %q", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatal("no data marks")
	}
}

func TestSeriesEmpty(t *testing.T) {
	var buf bytes.Buffer
	Series(&buf, "s", nil, nil, 3)
	if !strings.Contains(buf.String(), "(no data)") {
		t.Fatal("empty series not handled")
	}
}

func TestTable(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, [][]string{
		{"Feature", "Distinct"},
		{"Font List", "115128"},
		{"UA", "41060"},
	})
	out := buf.String()
	if !strings.Contains(out, "Feature") || !strings.Contains(out, "115128") {
		t.Fatalf("output: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + rule + 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
}

func TestTableEmpty(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, nil)
	if buf.Len() != 0 {
		t.Fatal("empty table produced output")
	}
}
