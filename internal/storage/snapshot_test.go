package storage

// Tests for the serialization contracts (io.WriterTo/io.ReaderFrom
// byte counts, byte-identical snapshots) and the snapshot+truncate
// compaction cycle: bounded replay, crash-stage recovery, idempotency
// table survival.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpdyn/internal/faultinject"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/obs"
)

// populate fills a store with a deterministic mix of records and
// values.
func populate(t *testing.T, st *Store, records, values int) {
	t.Helper()
	for i := 0; i < values; i++ {
		if err := st.PutValueDurable(fmt.Sprintf("hash-%03d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatalf("put value %d: %v", i, err)
		}
	}
	for i := 0; i < records; i++ {
		if _, _, err := st.AppendDurable(mkRecord(i), "cid", uint64(i+1)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestWriteToReadFromByteCounts(t *testing.T) {
	st := NewStore()
	populate(t, st, 20, 5)

	path := filepath.Join(t.TempDir(), "snap.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	written, err := st.WriteTo(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if written != fi.Size() {
		t.Fatalf("WriteTo returned %d bytes, file is %d", written, fi.Size())
	}
	if written == 0 {
		t.Fatal("WriteTo returned 0 bytes for a non-empty store")
	}

	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	loaded := NewStore()
	read, err := loaded.ReadFrom(g)
	if err != nil {
		t.Fatal(err)
	}
	if read != written {
		t.Fatalf("ReadFrom consumed %d bytes, WriteTo wrote %d", read, written)
	}
	if loaded.Len() != st.Len() || loaded.NumValues() != st.NumValues() {
		t.Fatalf("round trip lost data: %d/%d records, %d/%d values",
			loaded.Len(), st.Len(), loaded.NumValues(), st.NumValues())
	}
}

func TestWriteToDeterministic(t *testing.T) {
	st := NewStore()
	populate(t, st, 30, 12)
	var a, b bytes.Buffer
	if _, err := st.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two WriteTo snapshots of the same store differ")
	}

	// A store holding the same data built in a different PutValue order
	// must serialize identically too: values are emitted sorted by hash,
	// not in map/insertion order.
	other := NewStore()
	for i := 11; i >= 0; i-- {
		other.PutValue(fmt.Sprintf("hash-%03d", i), []byte(fmt.Sprintf("value-%d", i)))
	}
	for i := 0; i < 30; i++ {
		other.Append(mkRecord(i))
	}
	var c bytes.Buffer
	if _, err := other.WriteTo(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("equal state with different value insertion order serialized differently")
	}
}

// TestRecoverAfterTornTailTruncation is the regression for the
// un-fsynced truncation: recovery truncates the torn tail, then a
// second recovery (the "crashed right after recovery" case) must see a
// clean log — same state, nothing further to truncate — and the
// segment file on disk must already be at the truncated length.
func TestRecoverAfterTornTailTruncation(t *testing.T) {
	opts := walOpts(t)
	st, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, st, 10, 3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop the last segment mid-frame.
	segs, err := listSegments(opts.Dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	last := filepath.Join(opts.Dir, segs[len(segs)-1].name)
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	st1, w1, stats1, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !stats1.Truncated || stats1.TruncatedBytes == 0 {
		t.Fatalf("first recovery did not truncate: %+v", stats1)
	}
	validLen, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if validLen.Size() != fi.Size()-3-stats1.TruncatedBytes {
		t.Fatalf("segment size %d after truncation, want %d",
			validLen.Size(), fi.Size()-3-stats1.TruncatedBytes)
	}
	d1 := indexDigest(t, st1)
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-immediately-after-recovery: recover the same directory
	// again. The truncation must have stuck — no mid-log corruption, no
	// second truncation, identical state.
	st2, w2, stats2, err := Recover(opts)
	if err != nil {
		t.Fatalf("second recovery after truncation: %v", err)
	}
	defer w2.Close()
	if stats2.Truncated {
		t.Fatalf("second recovery truncated again: %+v", stats2)
	}
	if d2 := indexDigest(t, st2); d2 != d1 {
		t.Fatal("state diverged between first and second recovery")
	}
}

// TestFsyncMetricsObserveFailures asserts the fsync histogram counts
// failing syncs too, and that failures increment their own counter —
// scraped exactly as the admin endpoint would.
func TestFsyncMetricsObserveFailures(t *testing.T) {
	reg := obs.NewRegistry()
	opts := WALOptions{
		Dir:      t.TempDir(),
		Policy:   SyncAlways,
		Registry: reg,
		OpenFile: func(path string) (SegmentFile, error) {
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			return &faultinject.File{F: f, FailSyncAt: 2}, nil
		},
	}
	st, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, _, err := st.AppendDurable(mkRecord(0), "c", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.AppendDurable(mkRecord(1), "c", 2); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fsync failure", err)
	}

	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	scrape := b.String()
	if !strings.Contains(scrape, "wal_fsync_failures_total 1") {
		t.Errorf("scrape missing wal_fsync_failures_total 1:\n%s", scrape)
	}
	// Both the successful and the failed sync must be observed: before
	// the fix the histogram missed exactly the syncs an operator most
	// needs to see.
	if !strings.Contains(scrape, "wal_fsync_seconds_count 2") {
		t.Errorf("scrape missing wal_fsync_seconds_count 2:\n%s", scrape)
	}
}

// compactOpts is walOpts with a tiny segment size so a handful of
// appends spans many segments.
func compactOpts(t *testing.T) WALOptions {
	t.Helper()
	o := walOpts(t)
	o.SegmentSize = 256
	return o
}

// TestCompactBoundsRecovery is the tentpole property: after Compact,
// recovery replays only post-compaction appends — the replayed segment
// count is independent of how much history preceded the snapshot.
func TestCompactBoundsRecovery(t *testing.T) {
	opts := compactOpts(t)
	st, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, st, 60, 10) // tiny segments: dozens of files
	segsBefore, _ := listSegments(opts.Dir)
	if len(segsBefore) < 5 {
		t.Fatalf("want many segments before compaction, got %d", len(segsBefore))
	}

	cstats, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cstats.Records != 60 || cstats.Values != 10 {
		t.Fatalf("compaction stats %+v, want 60 records / 10 values", cstats)
	}
	if cstats.SegmentsRemoved == 0 || cstats.SnapshotBytes == 0 {
		t.Fatalf("compaction did not truncate history: %+v", cstats)
	}

	// A few post-compaction appends land in fresh segments.
	for i := 60; i < 65; i++ {
		if _, _, err := st.AppendDurable(mkRecord(i), "cid", uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	digest := indexDigest(t, st)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	st2, w2, rstats, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rstats.SnapshotSeg == 0 || rstats.SnapshotRecords != 60 || rstats.SnapshotValues != 10 {
		t.Fatalf("snapshot not loaded: %+v", rstats)
	}
	if rstats.Records != 5 {
		t.Fatalf("replayed %d records from segments, want only the 5 post-compaction ones", rstats.Records)
	}
	if rstats.Segments >= len(segsBefore) {
		t.Fatalf("replayed %d segments — restart cost not bounded (history had %d)", rstats.Segments, len(segsBefore))
	}
	if got := indexDigest(t, st2); got != digest {
		t.Fatal("recovered state differs from pre-restart state")
	}
	if st2.Len() != 65 || st2.NumValues() != 10 {
		t.Fatalf("recovered %d records / %d values", st2.Len(), st2.NumValues())
	}
}

// TestCompactPreservesIdempotency: the idempotency table must survive
// the snapshot, or a client resubmitting after a post-compaction
// restart would double-append.
func TestCompactPreservesIdempotency(t *testing.T) {
	opts := walOpts(t)
	st, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	idx9 := 0
	for i := 0; i < 10; i++ {
		idx, _, err := st.AppendDurable(mkRecord(i), "client-a", uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		idx9 = idx
	}
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	st2, w2, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	idx, dup, err := st2.AppendDurable(mkRecord(9), "client-a", 10)
	if err != nil {
		t.Fatal(err)
	}
	if !dup {
		t.Fatal("resubmit of the last applied seq not deduped after compaction+recovery")
	}
	if idx != idx9 {
		t.Fatalf("dup ACK returned index %d, want original %d", idx, idx9)
	}
	if st2.Len() != 10 {
		t.Fatalf("double append: len=%d", st2.Len())
	}
}

// TestCompactRepeatedIsIdempotent: compacting an unchanged store again
// produces a byte-identical snapshot (under a new name) and recovery
// converges to the same state.
func TestCompactRepeatedIsIdempotent(t *testing.T) {
	opts := compactOpts(t)
	st, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	populate(t, st, 25, 6)
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	snaps1, _ := listSnapshots(opts.Dir)
	if len(snaps1) != 1 {
		t.Fatalf("want 1 snapshot, got %d", len(snaps1))
	}
	data1, err := os.ReadFile(filepath.Join(opts.Dir, snaps1[0].name))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	snaps2, _ := listSnapshots(opts.Dir)
	if len(snaps2) != 1 {
		t.Fatalf("second compaction left %d snapshots, want the newest only", len(snaps2))
	}
	data2, err := os.ReadFile(filepath.Join(opts.Dir, snaps2[0].name))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data1, data2) {
		t.Fatal("same state compacted twice produced different snapshot bytes")
	}
}

// TestRecoverIgnoresAbandonedSnapTmp: a crash mid-compaction leaves a
// snap-tmp the rename never promoted; recovery must ignore it and
// replay the (still intact) segments.
func TestRecoverIgnoresAbandonedSnapTmp(t *testing.T) {
	opts := walOpts(t)
	st, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, st, 15, 4)
	digest := indexDigest(t, st)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The crash artifact: a half-written temporary snapshot.
	if err := os.WriteFile(filepath.Join(opts.Dir, snapTmpName), []byte("torn half-snapsho"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, w2, stats, err := Recover(opts)
	if err != nil {
		t.Fatalf("recovery with abandoned snap-tmp: %v", err)
	}
	defer w2.Close()
	if stats.SnapshotSeg != 0 {
		t.Fatalf("snap-tmp treated as a snapshot: %+v", stats)
	}
	if got := indexDigest(t, st2); got != digest {
		t.Fatal("state differs after recovery with abandoned snap-tmp")
	}
}

// TestRecoverCrashBetweenRenameAndDelete: the snapshot was promoted
// but the covered segments were not deleted before the crash. Recovery
// must prefer the snapshot, skip the covered segments (no double
// replay), and clean them up.
func TestRecoverCrashBetweenRenameAndDelete(t *testing.T) {
	opts := compactOpts(t)
	st, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, st, 40, 8)

	// Stage the crash: write the snapshot by hand (exactly what Compact
	// does) but "crash" before deleting covered segments.
	active, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	cut := compactState{
		records: append([]*fingerprint.Record(nil), st.records...),
		hashes:  st.sortedValueHashesLocked(),
		values:  st.values,
		seqs:    map[string]seqEntry{},
		covered: active - 1,
	}
	for cid, seq := range st.lastSeq {
		cut.seqs[cid] = seqEntry{Seq: seq, Idx: st.lastIdx[cid]}
	}
	st.mu.Unlock()
	if _, err := writeSnapshot(opts.Dir, cut); err != nil {
		t.Fatal(err)
	}
	digest := indexDigest(t, st)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segsBefore, _ := listSegments(opts.Dir)

	st2, w2, stats, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if stats.SnapshotSeg != cut.covered {
		t.Fatalf("snapshot seg %d, want %d", stats.SnapshotSeg, cut.covered)
	}
	if got := indexDigest(t, st2); got != digest {
		t.Fatal("covered segments double-replayed or snapshot ignored")
	}
	segsAfter, _ := listSegments(opts.Dir)
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("covered segments not cleaned up: %d before, %d after", len(segsBefore), len(segsAfter))
	}
}

// TestCorruptSnapshotFailsRecovery: a named snapshot is written
// atomically, so corruption inside it is real damage — recovery must
// fail loudly, not silently drop live state.
func TestCorruptSnapshotFailsRecovery(t *testing.T) {
	opts := walOpts(t)
	st, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, st, 10, 2)
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := listSnapshots(opts.Dir)
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, got %d", len(snaps))
	}
	path := filepath.Join(opts.Dir, snaps[0].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Recover(opts); err == nil {
		t.Fatal("recovery over a corrupt snapshot succeeded")
	}
}

// TestCompactMetrics: compaction is visible to the operator.
func TestCompactMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	opts := walOpts(t)
	opts.Registry = reg
	st, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	populate(t, st, 5, 1)
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wal_compactions_total 1") {
		t.Errorf("scrape missing wal_compactions_total 1:\n%s", b.String())
	}
}
