// Snapshot+truncate compaction. A WAL alone makes restart cost
// proportional to append history: the paper's platform ran for eight
// months (§2.2), and replaying eight months of appends to rebuild a
// store whose live state is a fraction of that is wasted startup time.
// Compact bounds it: the store checkpoints its live state — values,
// records, idempotency table — into a snapshot file that reuses the
// WAL's CRC frame format, the WAL rotates so the snapshot covers a
// frozen prefix of the log, and the covered segments are deleted.
// Recover then loads the newest snapshot and replays only the segments
// after it, so restart cost tracks live state, not history.
//
// Crash safety: the snapshot is written to a temporary name, fsynced,
// and renamed into place (then the directory is fsynced), so a crash
// at any point leaves either the old recovery inputs or the new ones —
// never a half-snapshot under the final name. Covered segments are
// deleted only after the rename is durable; leftovers from a crash
// between rename and delete are skipped (and cleaned up) by the next
// Recover.
package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"fpdyn/internal/fingerprint"
)

// snapName formats the on-disk name of a snapshot covering segments
// 1..n.
func snapName(n int) string { return fmt.Sprintf("snap-%08d.snap", n) }

// snapTmpName is the in-progress snapshot; never read by recovery.
const snapTmpName = "snap-tmp"

// listSnapshots returns the snap-*.snap files of dir in coverage
// order.
func listSnapshots(dir string) ([]segRef, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: wal dir: %w", err)
	}
	var snaps []segRef
	for _, e := range ents {
		name := e.Name()
		var n int
		if _, err := fmt.Sscanf(name, "snap-%08d.snap", &n); err == nil && name == snapName(n) {
			snaps = append(snaps, segRef{n, name})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].n < snaps[j].n })
	return snaps, nil
}

// loadSnapshot replays one snapshot file into st. Snapshots are
// written atomically, so any frame error here is real corruption, not
// a crash signature: recovery fails rather than silently dropping live
// state.
func loadSnapshot(path string, maxFrame int, st *Store, stats *RecoveryStats) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("storage: snapshot read %s: %w", filepath.Base(path), err)
	}
	off, derr := DecodeSegment(data, maxFrame, func(payload []byte) error {
		var e walEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			return fmt.Errorf("storage: snapshot entry: %w", err)
		}
		st.applyEntry(&e, stats)
		return nil
	})
	if derr != nil {
		return fmt.Errorf("storage: snapshot %s corrupt at offset %d: %w", filepath.Base(path), off, derr)
	}
	return nil
}

// CompactionStats summarizes one Compact run.
type CompactionStats struct {
	Records         int   // records checkpointed into the snapshot
	Values          int   // values checkpointed into the snapshot
	SnapshotBytes   int64 // framed size of the written snapshot
	SegmentsRemoved int   // covered segment files deleted
	CoveredSeg      int   // highest segment number the snapshot covers
}

// Add merges other into s.
func (s *CompactionStats) Add(other CompactionStats) {
	s.Records += other.Records
	s.Values += other.Values
	s.SnapshotBytes += other.SnapshotBytes
	s.SegmentsRemoved += other.SegmentsRemoved
	s.CoveredSeg = max(s.CoveredSeg, other.CoveredSeg)
}

// ErrNoWAL is returned by Compact on a store without an attached WAL:
// there is no log to compact.
var ErrNoWAL = errors.New("storage: compact needs an attached WAL")

// compactState is the consistent cut Compact captures under the store
// lock: everything live at the moment the WAL rotated.
type compactState struct {
	records []*fingerprint.Record
	hashes  []string // sorted — snapshots are byte-identical for equal state
	values  map[string][]byte
	seqs    map[string]seqEntry
	covered int // snapshot covers segments 1..covered
}

// Compact checkpoints the store's live state into a snapshot and
// deletes the WAL segments the snapshot covers, bounding the next
// recovery's replay to appends made after this call. Appends are
// blocked only while the cut is captured (a rotation plus slice/map
// copies); the snapshot itself is written outside the store lock.
// Concurrent Compact calls serialize.
func (s *Store) Compact() (CompactionStats, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	var stats CompactionStats
	s.mu.Lock()
	w := s.wal
	if w == nil {
		s.mu.Unlock()
		return stats, ErrNoWAL
	}
	// Rotate first: everything appended so far is in segments < active,
	// and everything appended after the lock releases lands in segments
	// > covered — replayed on top of the snapshot, never duplicated.
	active, err := w.Rotate()
	if err != nil {
		s.mu.Unlock()
		return stats, fmt.Errorf("storage: compact rotate: %w", err)
	}
	cut := compactState{
		records: append([]*fingerprint.Record(nil), s.records...),
		hashes:  s.sortedValueHashesLocked(),
		values:  make(map[string][]byte, len(s.values)),
		seqs:    make(map[string]seqEntry, len(s.lastSeq)),
		covered: active - 1,
	}
	for h, v := range s.values {
		cut.values[h] = v
	}
	for cid, seq := range s.lastSeq {
		cut.seqs[cid] = seqEntry{Seq: seq, Idx: s.lastIdx[cid]}
	}
	s.mu.Unlock()

	stats.CoveredSeg = cut.covered
	stats.Records = len(cut.records)
	stats.Values = len(cut.hashes)

	dir := w.Dir()
	n, err := writeSnapshot(dir, cut)
	if err != nil {
		return stats, err
	}
	stats.SnapshotBytes = n

	// The snapshot is durable under its final name: the covered
	// segments and any older snapshots are now dead weight.
	segs, err := listSegments(dir)
	if err != nil {
		return stats, err
	}
	for _, seg := range segs {
		if seg.n <= cut.covered {
			if err := os.Remove(filepath.Join(dir, seg.name)); err != nil {
				return stats, fmt.Errorf("storage: compact remove %s: %w", seg.name, err)
			}
			stats.SegmentsRemoved++
		}
	}
	snaps, err := listSnapshots(dir)
	if err != nil {
		return stats, err
	}
	for _, sn := range snaps {
		if sn.n < cut.covered {
			os.Remove(filepath.Join(dir, sn.name)) // best effort
		}
	}
	if err := fsyncDir(dir); err != nil {
		return stats, fmt.Errorf("storage: compact dir sync: %w", err)
	}
	w.metrics.compactions.Inc()
	w.metrics.snapshotBytes.SetInt(stats.SnapshotBytes)
	return stats, nil
}

// writeSnapshot writes the cut to snap-tmp, fsyncs it, and renames it
// into place. Entry order is canonical — values sorted by hash, then
// records in insertion order, then the idempotency table (one entry;
// encoding/json sorts map keys) — so equal state yields byte-identical
// snapshots.
func writeSnapshot(dir string, cut compactState) (int64, error) {
	return WriteSnapshotFrames(dir, cut.covered, func(write func(payload []byte) error) error {
		emit := func(e *walEntry) error {
			payload, err := json.Marshal(e)
			if err != nil {
				return fmt.Errorf("storage: snapshot encode: %w", err)
			}
			return write(payload)
		}
		for _, h := range cut.hashes {
			if err := emit(&walEntry{Hash: h, Value: cut.values[h]}); err != nil {
				return err
			}
		}
		for _, r := range cut.records {
			if err := emit(&walEntry{Record: r}); err != nil {
				return err
			}
		}
		if len(cut.seqs) > 0 {
			return emit(&walEntry{Seqs: cut.seqs})
		}
		return nil
	})
}
