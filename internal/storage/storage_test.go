package storage

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fpdyn/internal/fingerprint"
)

func mkRecord(i int) *fingerprint.Record {
	return &fingerprint.Record{
		Time:   time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
		UserID: fmt.Sprintf("user-%d", i%3),
		Cookie: fmt.Sprintf("ck-%d", i%5),
		FP:     &fingerprint.Fingerprint{UserAgent: fmt.Sprintf("UA-%d", i), CPUCores: 4},
	}
}

func TestAppendAndIndexes(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		if got := s.Append(mkRecord(i)); got != i {
			t.Fatalf("Append returned %d, want %d", got, i)
		}
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	u := s.ByUser("user-1")
	if len(u) != 4 { // i = 1, 4, 7 -> wait: i%3==1 for 1,4,7 => 3... recompute below
		// i%3==1 for i=1,4,7 → 3 records; adjust expectation dynamically.
		t.Logf("user-1 records: %d", len(u))
	}
	want := 0
	for i := 0; i < 10; i++ {
		if i%3 == 1 {
			want++
		}
	}
	if len(u) != want {
		t.Fatalf("ByUser = %d records, want %d", len(u), want)
	}
	c := s.ByCookie("ck-2")
	wantC := 0
	for i := 0; i < 10; i++ {
		if i%5 == 2 {
			wantC++
		}
	}
	if len(c) != wantC {
		t.Fatalf("ByCookie = %d records, want %d", len(c), wantC)
	}
}

func TestEmptyCookieNotIndexed(t *testing.T) {
	s := NewStore()
	r := mkRecord(0)
	r.Cookie = ""
	s.Append(r)
	if got := s.ByCookie(""); len(got) != 0 {
		t.Fatal("empty cookie must not be indexed")
	}
}

func TestValueStoreDedup(t *testing.T) {
	s := NewStore()
	if s.HasValue("h1") {
		t.Fatal("empty store has value")
	}
	s.PutValue("h1", []byte("content"))
	if !s.HasValue("h1") || s.NumValues() != 1 {
		t.Fatal("PutValue failed")
	}
	// Idempotent re-put with different content keeps the original
	// (content-addressed: same hash means same content by contract).
	s.PutValue("h1", []byte("other"))
	v, _ := s.Value("h1")
	if string(v) != "content" {
		t.Fatalf("value overwritten: %q", v)
	}
}

func TestPutValueCopies(t *testing.T) {
	s := NewStore()
	buf := []byte("abc")
	s.PutValue("h", buf)
	buf[0] = 'X'
	v, _ := s.Value("h")
	if string(v) != "abc" {
		t.Fatal("PutValue aliased caller buffer")
	}
}

func TestRecordsSnapshotIsolated(t *testing.T) {
	s := NewStore()
	s.Append(mkRecord(0))
	snap := s.Records()
	s.Append(mkRecord(1))
	if len(snap) != 1 {
		t.Fatal("snapshot grew after Append")
	}
}

func TestRoundTripSerialization(t *testing.T) {
	s := NewStore()
	for i := 0; i < 25; i++ {
		s.Append(mkRecord(i))
	}
	s.PutValue("hash-a", []byte{1, 2, 3})
	s.PutValue("hash-b", []byte("fonts"))

	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if _, err := s2.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 25 || s2.NumValues() != 2 {
		t.Fatalf("round trip: %d records, %d values", s2.Len(), s2.NumValues())
	}
	for i := 0; i < 25; i++ {
		if s2.Record(i).FP.UserAgent != s.Record(i).FP.UserAgent {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if v, ok := s2.Value("hash-b"); !ok || string(v) != "fonts" {
		t.Fatal("value lost in round trip")
	}
	// Indexes must be rebuilt on load.
	if len(s2.ByUser("user-1")) != len(s.ByUser("user-1")) {
		t.Fatal("index not rebuilt")
	}
}

func TestReadFromGarbage(t *testing.T) {
	s := NewStore()
	if _, err := s.ReadFrom(bytes.NewBufferString("{broken")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.jsonl")
	s := NewStore()
	for i := 0; i < 5; i++ {
		s.Append(mkRecord(i))
	}
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 5 {
		t.Fatalf("loaded %d records", s2.Len())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Append(mkRecord(w*200 + i))
				s.PutValue(fmt.Sprintf("h-%d-%d", w, i%10), []byte{byte(i)})
				_ = s.Len()
				_ = s.ByUser("user-1")
				_, _ = s.Value("h-0-0")
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 1600 {
		t.Fatalf("Len = %d, want 1600", s.Len())
	}
}

func BenchmarkAppend(b *testing.B) {
	s := NewStore()
	r := mkRecord(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Append(r)
	}
}

func BenchmarkValueLookup(b *testing.B) {
	s := NewStore()
	for i := 0; i < 10000; i++ {
		s.PutValue(fmt.Sprintf("hash-%d", i), []byte("x"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.HasValue("hash-5000")
	}
}
