// CRC-32C length-prefixed framing, shared by the WAL segments, the
// compaction snapshots, and the collector's binary wire mode. One
// format, one decoder, one set of corruption semantics: a frame is
//
//	uint32 payload length | uint32 CRC-32C of payload | payload
//
// (little endian). DecodeSegment in wal.go scans a whole in-memory
// segment; the helpers here frame a single payload into a byte slice
// and read a single frame off a stream, which is what the collector's
// binary protocol and the snapshot writer need.
package storage

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
)

// AppendFrame appends one framed payload to dst and returns the
// extended slice. The header and payload land contiguously, so writing
// the result with a single Write preserves the at-most-one-torn-frame
// crash property.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ReadFrame reads one frame from r and returns its payload. io.EOF on
// a clean frame boundary is returned verbatim; an EOF inside a frame
// is ErrTornFrame; an implausible length header is ErrFrameSize; a CRC
// mismatch is ErrChecksum. maxFrame <= 0 selects the default bound.
// Other transport errors (deadlines, closed connections) pass through
// unwrapped so callers can inspect them.
func ReadFrame(r io.Reader, maxFrame int) ([]byte, error) {
	if maxFrame <= 0 {
		maxFrame = (&WALOptions{}).maxFrame()
	}
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrTornFrame
		}
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	if n > maxFrame {
		return nil, ErrFrameSize
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrTornFrame
		}
		return nil, err
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, ErrChecksum
	}
	return payload, nil
}
