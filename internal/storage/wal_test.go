package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fpdyn/internal/faultinject"
)

// walOpts returns test options over a temp dir; SyncNever keeps the
// happy-path tests fast, the durability tests pass SyncAlways.
func walOpts(t *testing.T) WALOptions {
	t.Helper()
	return WALOptions{Dir: t.TempDir(), Policy: SyncNever}
}

func TestWALAppendRecoverRoundTrip(t *testing.T) {
	opts := walOpts(t)
	st, w, stats, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 0 || stats.Segments != 0 {
		t.Fatalf("fresh dir stats = %+v", stats)
	}
	for i := 0; i < 25; i++ {
		if _, _, err := st.AppendDurable(mkRecord(i), "cid-a", uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.PutValueDurable("h1", []byte("fonts-blob")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	st2, w2, stats, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if stats.Records != 25 || stats.Values != 1 || stats.Truncated {
		t.Fatalf("stats = %+v", stats)
	}
	if st2.Len() != 25 || st2.NumValues() != 1 {
		t.Fatalf("recovered len=%d values=%d", st2.Len(), st2.NumValues())
	}
	// Indexes are rebuilt identically.
	if got, want := indexDigest(t, st2), indexDigest(t, st); got != want {
		t.Fatalf("recovered indexes differ:\n%s\nvs\n%s", got, want)
	}
	// The idempotency table survives recovery.
	if seq, ok := st2.LastSeq("cid-a"); !ok || seq != 25 {
		t.Fatalf("recovered lastSeq = %d, %v", seq, ok)
	}
	if _, dup, err := st2.AppendDurable(mkRecord(99), "cid-a", 25); err != nil || !dup {
		t.Fatalf("resubmitted seq not deduped: dup=%v err=%v", dup, err)
	}
	if st2.Len() != 25 {
		t.Fatalf("duplicate appended: len=%d", st2.Len())
	}
}

// indexDigest serializes a store's records and indexes for
// byte-identical comparison.
func indexDigest(t *testing.T, s *Store) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := enc.Encode(s.records); err != nil {
		t.Fatal(err)
	}
	if err := encodeSortedIndex(enc, s.byUser); err != nil {
		t.Fatal(err)
	}
	if err := encodeSortedIndex(enc, s.byCookie); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func encodeSortedIndex(enc *json.Encoder, idx map[string][]int) error {
	keys := make([]string, 0, len(idx))
	for k := range idx {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		if err := enc.Encode([]any{k, idx[k]}); err != nil {
			return err
		}
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	opts := walOpts(t)
	st, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		st.Append(mkRecord(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail frame by hand: drop the last 5 bytes, as a crash
	// mid-write would.
	segs, err := listSegments(opts.Dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v (%v)", segs, err)
	}
	path := filepath.Join(opts.Dir, segs[0].name)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	st2, w2, stats, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if st2.Len() != 9 {
		t.Fatalf("recovered %d records, want 9 (torn frame dropped)", st2.Len())
	}
	if !stats.Truncated || stats.TruncatedBytes == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// The file was physically truncated: the next recovery is clean.
	st3, w3, stats, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	w3.Close()
	if st3.Len() != 9 || stats.Truncated {
		t.Fatalf("second recovery: len=%d stats=%+v", st3.Len(), stats)
	}
}

func TestRecoverRejectsMidLogCorruption(t *testing.T) {
	opts := walOpts(t)
	opts.SegmentSize = 256 // force several segments
	st, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		st.Append(mkRecord(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(opts.Dir)
	if len(segs) < 3 {
		t.Fatalf("rotation produced %d segments, want >= 3", len(segs))
	}
	// Flip one payload byte in the FIRST segment: that is corruption,
	// not a crash signature, and recovery must refuse to silently drop
	// the rest of the log.
	path := filepath.Join(opts.Dir, segs[0].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderSize+3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Recover(opts); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestWALSegmentRotation(t *testing.T) {
	opts := walOpts(t)
	opts.SegmentSize = 512
	st, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, _, err := st.AppendDurable(mkRecord(i), "c", uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(opts.Dir)
	if len(segs) < 2 {
		t.Fatalf("no rotation: %d segments", len(segs))
	}
	st2, w2, stats, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if st2.Len() != 30 || stats.Segments != len(segs) {
		t.Fatalf("recovered %d records over %d segments", st2.Len(), stats.Segments)
	}
}

func TestWALFsyncFailurePoisonsAppends(t *testing.T) {
	opts := WALOptions{
		Dir:    t.TempDir(),
		Policy: SyncAlways,
		OpenFile: func(path string) (SegmentFile, error) {
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			return &faultinject.File{F: f, FailSyncAt: 2}, nil
		},
	}
	st, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, _, err := st.AppendDurable(mkRecord(0), "c", 1); err != nil {
		t.Fatalf("first durable append: %v", err)
	}
	// The second append's fsync fails: no ACK, no in-memory append.
	if _, _, err := st.AppendDurable(mkRecord(1), "c", 2); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fsync failure", err)
	}
	if st.Len() != 1 {
		t.Fatalf("record applied despite failed fsync: len=%d", st.Len())
	}
	// The failure is sticky: the log tail is in unknown state, so every
	// later append refuses too.
	if _, _, err := st.AppendDurable(mkRecord(2), "c", 3); !errors.Is(err, ErrWALSticky) {
		t.Fatalf("err = %v, want ErrWALSticky", err)
	}
	if seq, _ := st.LastSeq("c"); seq != 1 {
		t.Fatalf("lastSeq advanced to %d past a failed append", seq)
	}
}

func TestWALShortWritesSurfaceAsErrors(t *testing.T) {
	opts := WALOptions{
		Dir:    t.TempDir(),
		Policy: SyncNever,
		OpenFile: func(path string) (SegmentFile, error) {
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			return &faultinject.File{F: f, Script: &faultinject.Script{ShortWrites: true}}, nil
		},
	}
	st, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, _, err := st.AppendDurable(mkRecord(0), "c", 1); err == nil {
		t.Fatal("short write not surfaced")
	}
	if st.Len() != 0 {
		t.Fatal("record applied despite short write")
	}
}

func TestWALSyncIntervalPolicy(t *testing.T) {
	opts := WALOptions{Dir: t.TempDir(), Policy: SyncInterval, Interval: 5 * time.Millisecond}
	st, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	st.Append(mkRecord(0))
	time.Sleep(25 * time.Millisecond) // let the background sync run
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st2, w2, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if st2.Len() != 1 {
		t.Fatalf("len = %d", st2.Len())
	}
}

func TestWALRejectsOversizedFrame(t *testing.T) {
	opts := walOpts(t)
	opts.MaxFrame = 256
	_, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendValue("h", bytes.Repeat([]byte{1}, 512)); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("err = %v, want ErrFrameSize", err)
	}
}

func TestDecodeSegmentErrors(t *testing.T) {
	// Build one valid two-frame segment in memory.
	var seg bytes.Buffer
	frames := [][]byte{[]byte(`{"hash":"a","val":"AQ=="}`), []byte(`{"hash":"b","val":"Ag=="}`)}
	for _, p := range frames {
		var hdr [frameHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crcOf(p))
		seg.Write(hdr[:])
		seg.Write(p)
	}
	data := seg.Bytes()

	count := func(d []byte) (int, int64, error) {
		n := 0
		off, err := DecodeSegment(d, 0, func([]byte) error { n++; return nil })
		return n, off, err
	}

	if n, off, err := count(data); n != 2 || off != int64(len(data)) || err != nil {
		t.Fatalf("valid segment: n=%d off=%d err=%v", n, off, err)
	}
	// Torn tail: drop 3 bytes.
	if n, _, err := count(data[:len(data)-3]); n != 1 || !errors.Is(err, ErrTornFrame) {
		t.Fatalf("torn: n=%d err=%v", n, err)
	}
	// Truncated header.
	if n, off, err := count(data[:4]); n != 0 || off != 0 || !errors.Is(err, ErrTornFrame) {
		t.Fatalf("short header: n=%d off=%d err=%v", n, off, err)
	}
	// Checksum flip in the second frame.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0x42
	if n, _, err := count(bad); n != 1 || !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt: n=%d err=%v", n, err)
	}
	// Implausible length header.
	big := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(big[0:4], 1<<30)
	if n, _, err := count(big); n != 0 || !errors.Is(err, ErrFrameSize) {
		t.Fatalf("oversized: n=%d err=%v", n, err)
	}
}

func crcOf(p []byte) uint32 {
	return crc32.Checksum(p, castagnoli)
}

func TestLegacyAppendIsLoggedBestEffort(t *testing.T) {
	opts := walOpts(t)
	st, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	st.Append(mkRecord(0))
	st.PutValue("h", []byte("v"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st2, w2, stats, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if st2.Len() != 1 || st2.NumValues() != 1 {
		t.Fatalf("len=%d values=%d stats=%+v", st2.Len(), st2.NumValues(), stats)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "Interval": SyncInterval, "NEVER": SyncNever} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("expected error")
	}
	if s := fmt.Sprintf("%v/%v/%v", SyncAlways, SyncInterval, SyncNever); s != "always/interval/never" {
		t.Fatalf("String() = %s", s)
	}
}
