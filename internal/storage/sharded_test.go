package storage

// Sharded-store tests: routing, sticky shard counts, parallel-recovery
// worker invariance, and the shard-count-invariant canonical
// serialization that lets chaos runs at different shard counts compare
// digests.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"fpdyn/internal/faultinject"
	"fpdyn/internal/obs"
)

func shardedOpts(t *testing.T, shards int) ShardedWALOptions {
	t.Helper()
	return ShardedWALOptions{
		WALOptions: WALOptions{Dir: t.TempDir(), Policy: SyncNever},
		Shards:     shards,
	}
}

// fillSharded drives the same deterministic stream of durable appends
// and values into ss.
func fillSharded(t *testing.T, ss *ShardedStore, records, values int) {
	t.Helper()
	for i := 0; i < values; i++ {
		if err := ss.PutValueDurable(fmt.Sprintf("hash-%03d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatalf("put value %d: %v", i, err)
		}
	}
	for i := 0; i < records; i++ {
		if _, _, err := ss.AppendDurable(mkRecord(i), "cid", uint64(i+1)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// canonDigest hashes the canonical serialization.
func canonDigest(t *testing.T, ss *ShardedStore) string {
	t.Helper()
	var b bytes.Buffer
	if _, err := ss.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b.Bytes())
	return hex.EncodeToString(sum[:])
}

func TestShardedRoutingAndTotals(t *testing.T) {
	ss := NewShardedStore(4)
	fillSharded(t, ss, 30, 10)
	if ss.Len() != 30 {
		t.Fatalf("Len = %d, want 30", ss.Len())
	}
	if ss.NumValues() != 10 {
		t.Fatalf("NumValues = %d, want 10", ss.NumValues())
	}
	// Every value resolves through its owning shard.
	for i := 0; i < 10; i++ {
		h := fmt.Sprintf("hash-%03d", i)
		if !ss.HasValue(h) {
			t.Fatalf("HasValue(%s) = false", h)
		}
		if v, ok := ss.Value(h); !ok || string(v) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("Value(%s) = %q, %v", h, v, ok)
		}
	}
	// A user's records are all on one shard, in arrival order.
	recs := ss.ByUser("user-1")
	for j := 1; j < len(recs); j++ {
		if !recs[j-1].Time.Before(recs[j].Time) {
			t.Fatal("per-user arrival order not preserved")
		}
	}
	// The per-client sequence table spans shards.
	if seq, ok := ss.LastSeq("cid"); !ok || seq != 30 {
		t.Fatalf("LastSeq = %d, %v, want 30", seq, ok)
	}
}

func TestShardCountStickyPerDirectory(t *testing.T) {
	opts := shardedOpts(t, 4)
	ss, _, err := RecoverSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	fillSharded(t, ss, 5, 2)
	if err := ss.CloseWALs(); err != nil {
		t.Fatal(err)
	}
	// Same count reopens fine.
	ss2, _, err := RecoverSharded(opts)
	if err != nil {
		t.Fatalf("same-count reopen: %v", err)
	}
	if err := ss2.CloseWALs(); err != nil {
		t.Fatal(err)
	}
	// A different count must be refused — it would misroute every key.
	opts.Shards = 2
	if _, _, err := RecoverSharded(opts); err == nil {
		t.Fatal("reopening a 4-shard root with 2 shards succeeded")
	}
}

// TestRecoverShardedWorkerInvariance: the recovered state is identical
// whether shards replay serially or on many workers.
func TestRecoverShardedWorkerInvariance(t *testing.T) {
	opts := shardedOpts(t, 4)
	ss, _, err := RecoverSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	fillSharded(t, ss, 50, 12)
	want := canonDigest(t, ss)
	if err := ss.CloseWALs(); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		opts.RecoveryWorkers = workers
		got, stats, err := RecoverSharded(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if d := canonDigest(t, got); d != want {
			t.Fatalf("workers=%d: digest %s != serial %s", workers, d, want)
		}
		if stats.Shards != 4 || len(stats.PerShard) != 4 {
			t.Fatalf("workers=%d: stats %+v", workers, stats)
		}
		if got.Len() != 50 {
			t.Fatalf("workers=%d: Len = %d", workers, got.Len())
		}
		if err := got.CloseWALs(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardCountInvariantDigest: the same accepted stream produces the
// same canonical serialization at any shard count — the property that
// lets the chaos matrix compare digests across Shards=1 and Shards=4.
func TestShardCountInvariantDigest(t *testing.T) {
	digests := make(map[int]string)
	for _, shards := range []int{1, 2, 4, 8} {
		ss, _, err := RecoverSharded(shardedOpts(t, shards))
		if err != nil {
			t.Fatal(err)
		}
		fillSharded(t, ss, 60, 15)
		digests[shards] = canonDigest(t, ss)
		if err := ss.CloseWALs(); err != nil {
			t.Fatal(err)
		}
	}
	for shards, d := range digests {
		if d != digests[1] {
			t.Fatalf("shards=%d digest %s differs from shards=1 %s", shards, d, digests[1])
		}
	}
}

// TestShardedCompactBoundsRecovery: compaction works per shard and the
// sharded recovery replays only live state.
func TestShardedCompactBoundsRecovery(t *testing.T) {
	opts := shardedOpts(t, 4)
	opts.SegmentSize = 256
	ss, _, err := RecoverSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	fillSharded(t, ss, 80, 10)
	cstats, err := ss.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cstats.Records != 80 || cstats.Values != 10 {
		t.Fatalf("merged compaction stats %+v", cstats)
	}
	if cstats.SegmentsRemoved == 0 {
		t.Fatal("no segments removed across shards")
	}
	// Post-compaction appends only.
	for i := 80; i < 84; i++ {
		if _, _, err := ss.AppendDurable(mkRecord(i), "cid", uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	want := canonDigest(t, ss)
	if err := ss.CloseWALs(); err != nil {
		t.Fatal(err)
	}

	got, stats, err := RecoverSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer got.CloseWALs()
	if stats.SnapshotRecords != 80 || stats.Records != 4 {
		t.Fatalf("recovery not bounded by live state: %+v", stats.RecoveryStats)
	}
	if d := canonDigest(t, got); d != want {
		t.Fatal("recovered sharded state differs")
	}
}

// TestShardedWALErrorSurfacesShard: a poisoned shard WAL is visible
// through the aggregate health check, and only the faulty shard is
// poisoned — the others keep accepting.
func TestShardedWALErrorSurfacesShard(t *testing.T) {
	opts := shardedOpts(t, 2)
	opts.Policy = SyncAlways
	opts.OpenFile = func(path string) (SegmentFile, error) {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if strings.Contains(path, shardDirName(0)) {
			return &faultinject.File{F: f, FailSyncAt: 1}, nil
		}
		return f, nil
	}
	ss, _, err := RecoverSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.CloseWALs()
	if err := ss.WALError(); err != nil {
		t.Fatalf("healthy store reports %v", err)
	}
	// Find users routed to each shard.
	user := func(shard int) string {
		for i := 0; ; i++ {
			uid := fmt.Sprintf("probe-%d", i)
			if shardIndex(uid, 2) == shard {
				return uid
			}
		}
	}
	rec0 := mkRecord(0)
	rec0.UserID = user(0)
	if _, _, err := ss.AppendDurable(rec0, "c", 1); err == nil {
		t.Fatal("append succeeded despite shard 0's failing fsync")
	}
	if err := ss.WALError(); err == nil {
		t.Fatal("poisoned shard not surfaced through WALError")
	}
	// Shard 1 is unaffected: the blast radius of a sticky WAL is one
	// shard.
	rec1 := mkRecord(1)
	rec1.UserID = user(1)
	if _, _, err := ss.AppendDurable(rec1, "c", 2); err != nil {
		t.Fatalf("healthy shard refused append: %v", err)
	}
}

// TestAppendBatchDurableGroupCommit: a batch lands with one fsync per
// touched shard (not one per record), a retransmitted batch is
// answered from the idempotency tables, and the whole batch survives
// recovery.
func TestAppendBatchDurableGroupCommit(t *testing.T) {
	opts := shardedOpts(t, 4)
	opts.Policy = SyncAlways
	opts.Registry = obs.NewRegistry()
	ss, _, err := RecoverSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.CloseWALs()

	const n = 24
	items := make([]BatchAppend, n)
	for i := range items {
		r := mkRecord(i)
		r.UserID = fmt.Sprintf("gc-u-%d", i)
		items[i] = BatchAppend{Record: r, Seq: uint64(i + 1)}
	}
	results, err := ss.AppendBatchDurable(items, "gc")
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Dup {
			t.Fatalf("item %d marked dup on first commit", i)
		}
	}
	if ss.Len() != n {
		t.Fatalf("Len = %d, want %d", ss.Len(), n)
	}

	// The amortization claim itself: the whole batch cost at most one
	// fsync per touched shard — nowhere near one per record.
	var b bytes.Buffer
	if err := opts.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fsyncs := 0
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "wal_fsync_seconds_count") {
			f := strings.Fields(line)
			v, err := strconv.Atoi(f[len(f)-1])
			if err != nil {
				t.Fatalf("bad scrape line %q", line)
			}
			fsyncs += v
		}
	}
	if fsyncs == 0 || fsyncs > ss.Shards() {
		t.Fatalf("batch cost %d fsyncs, want 1..%d (one per touched shard)", fsyncs, ss.Shards())
	}

	results, err = ss.AppendBatchDurable(items, "gc")
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.Dup {
			t.Fatalf("retransmitted item %d not marked dup", i)
		}
	}
	if ss.Len() != n {
		t.Fatalf("retransmit grew the store to %d", ss.Len())
	}

	want := canonDigest(t, ss)
	if err := ss.CloseWALs(); err != nil {
		t.Fatal(err)
	}
	got, _, err := RecoverSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer got.CloseWALs()
	if seq, ok := got.LastSeq("gc"); !ok || seq != n {
		t.Fatalf("recovered LastSeq = %d, %v, want %d", seq, ok, n)
	}
	if canonDigest(t, got) != want {
		t.Fatal("group-committed batch did not survive recovery")
	}
}

// TestAppendBatchDurableRefusedAtomically: a WAL fault during the
// group commit refuses the whole batch — nothing is applied, nothing
// may be ACKed, and the idempotency table does not advance.
func TestAppendBatchDurableRefusedAtomically(t *testing.T) {
	opts := WALOptions{
		Dir:    t.TempDir(),
		Policy: SyncAlways,
		OpenFile: func(path string) (SegmentFile, error) {
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			return &faultinject.File{F: f, FailSyncAt: 1}, nil
		},
	}
	st, w, _, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	items := make([]BatchAppend, 5)
	for i := range items {
		items[i] = BatchAppend{Record: mkRecord(i), Seq: uint64(i + 1)}
	}
	if _, err := st.AppendBatchDurable(items, "gc"); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fsync failure", err)
	}
	if st.Len() != 0 {
		t.Fatalf("failed batch applied %d records", st.Len())
	}
	if _, ok := st.LastSeq("gc"); ok {
		t.Fatal("failed batch advanced the idempotency table")
	}
}
