package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// replayAll recovers a journal directory into (snapshot frames,
// segment frames) string slices.
func replayAll(t *testing.T, dir string) (snap, seg []string, stats JournalReplayStats) {
	t.Helper()
	w, stats, err := ReplayJournal(WALOptions{Dir: dir},
		func(p []byte) error { snap = append(snap, string(p)); return nil },
		func(p []byte) error { seg = append(seg, string(p)); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return snap, seg, stats
}

// TestJournalRoundTrip: appended payloads come back verbatim, in
// order, across close/reopen cycles.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, stats, err := ReplayJournal(WALOptions{Dir: dir}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Frames != 0 || stats.SnapshotSeg != 0 {
		t.Fatalf("fresh dir replayed state: %+v", stats)
	}
	var want []string
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("payload-%02d", i)
		if err := w.AppendPayload([]byte(p)); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	snap, seg, stats := replayAll(t, dir)
	if len(snap) != 0 {
		t.Fatalf("unexpected snapshot frames: %v", snap)
	}
	if !reflect.DeepEqual(seg, want) {
		t.Fatalf("replayed %v, want %v", seg, want)
	}
	if stats.Frames != len(want) {
		t.Fatalf("stats.Frames = %d, want %d", stats.Frames, len(want))
	}
}

// TestJournalCompact: CompactJournal folds the log into a snapshot;
// replay sees snapshot frames plus only post-compaction appends, and
// the covered segment files are gone.
func TestJournalCompact(t *testing.T) {
	dir := t.TempDir()
	w, _, err := ReplayJournal(WALOptions{Dir: dir}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.AppendPayload([]byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// The caller's consistent cut: pretend live state is 3 payloads.
	live := []string{"live-a", "live-b", "live-c"}
	if _, err := w.CompactJournal(func(write func([]byte) error) error {
		for _, p := range live {
			if err := write([]byte(p)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendPayload([]byte("after-compact")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	snap, seg, stats := replayAll(t, dir)
	if !reflect.DeepEqual(snap, live) {
		t.Fatalf("snapshot frames %v, want %v", snap, live)
	}
	if !reflect.DeepEqual(seg, []string{"after-compact"}) {
		t.Fatalf("segment frames %v, want [after-compact]", seg)
	}
	if stats.SnapshotSeg == 0 || stats.SnapshotFrames != len(live) {
		t.Fatalf("stats %+v: snapshot not loaded", stats)
	}
}

// TestJournalTornTail: a partial frame appended to the live segment is
// truncated on replay, everything before it survives, and a second
// replay is clean.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	w, _, err := ReplayJournal(WALOptions{Dir: dir}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.AppendPayload([]byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: a frame header promising more bytes than exist.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	tail := filepath.Join(dir, segs[len(segs)-1].name)
	f, err := os.OpenFile(tail, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 0, 0, 0, 1, 2, 3, 4, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, seg, stats := replayAll(t, dir)
	if len(seg) != 5 {
		t.Fatalf("replayed %d frames, want 5: %v", len(seg), seg)
	}
	if !stats.Truncated || stats.TruncatedBytes != 10 {
		t.Fatalf("stats %+v: torn tail not truncated", stats)
	}
	_, seg, stats = replayAll(t, dir)
	if len(seg) != 5 || stats.Truncated {
		t.Fatalf("second replay dirty: %d frames, %+v", len(seg), stats)
	}
}
