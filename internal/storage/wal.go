// Write-ahead log for the collection store. The paper's deployment
// survived an eight-day server outage (§2.2) because clients retried;
// the server half of that guarantee is that a record, once ACKed, is
// never lost to a crash. The WAL provides it: every Append/PutValue is
// framed, checksummed, and (per policy) fsynced to a segment file
// before the store acknowledges, and Recover replays the segments into
// a fresh store on restart, truncating a torn tail frame instead of
// failing.
//
// Frame layout (little endian):
//
//	uint32 payload length | uint32 CRC-32C of payload | payload
//
// The payload is one JSON-encoded walEntry: either a full visit record
// (with the client-assigned sequence ID that makes resubmission
// idempotent) or a content-addressed value. Segments rotate at
// SegmentSize and are named wal-NNNNNNNN.seg; recovery replays them in
// name order.
package storage

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/obs"
)

// SyncPolicy selects when the WAL fsyncs its active segment.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an ACK implies the record
	// survives power loss. The durable default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background ticker (Options.Interval):
	// an ACK survives process crash but may lose the last interval to
	// power loss.
	SyncInterval
	// SyncNever leaves syncing to the OS: an ACK survives process
	// crash only. For benchmarks and tests.
	SyncNever
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the -fsync flag spellings.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return SyncAlways, fmt.Errorf("storage: unknown fsync policy %q (want always, interval or never)", s)
}

// SegmentFile is the file surface the WAL writes through. *os.File
// satisfies it; faultinject wraps it to script write and fsync
// failures.
type SegmentFile interface {
	io.Writer
	Sync() error
	Close() error
}

// WALOptions configures OpenWAL/Recover. The zero value of every field
// has a usable default; Dir is required.
type WALOptions struct {
	// Dir is the segment directory; created if absent.
	Dir string
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// Interval is the background fsync period under SyncInterval
	// (default 100ms).
	Interval time.Duration
	// SegmentSize is the rotation threshold in bytes (default 64 MiB).
	SegmentSize int64
	// MaxFrame bounds a single payload (default 16 MiB); larger
	// appends are rejected and larger on-disk length headers are
	// treated as corruption during recovery.
	MaxFrame int
	// OpenFile opens a new segment for appending; defaults to
	// os.Create. Fault-injection hooks replace it.
	OpenFile func(path string) (SegmentFile, error)
	// Registry receives the WAL's metrics (append/fsync latency,
	// bytes written, rotations, recovery counters). Nil allocates a
	// private registry, reachable via WAL.Metrics.
	Registry *obs.Registry
	// MetricLabels are constant key/value label pairs attached to every
	// metric this WAL registers. A sharded store passes ("shard", "NN")
	// so all shards can share one registry without colliding.
	MetricLabels []string
}

func (o *WALOptions) segmentSize() int64 {
	if o.SegmentSize <= 0 {
		return 64 << 20
	}
	return o.SegmentSize
}

func (o *WALOptions) maxFrame() int {
	if o.MaxFrame <= 0 {
		return 16 << 20
	}
	return o.MaxFrame
}

func (o *WALOptions) interval() time.Duration {
	if o.Interval <= 0 {
		return 100 * time.Millisecond
	}
	return o.Interval
}

func (o *WALOptions) openFile(path string) (SegmentFile, error) {
	if o.OpenFile != nil {
		return o.OpenFile(path)
	}
	return os.Create(path)
}

// walEntry is the payload of one frame: exactly one of Record, Hash or
// Seqs is set. CID/Seq carry the client-assigned sequence ID alongside
// record entries so recovery rebuilds the idempotency table. Seqs only
// appears in compaction snapshots: the full per-client idempotency
// table at the snapshot cut (log replay rebuilds it incrementally from
// record entries instead).
type walEntry struct {
	Record *fingerprint.Record `json:"rec,omitempty"`
	CID    string              `json:"cid,omitempty"`
	Seq    uint64              `json:"seq,omitempty"`
	Hash   string              `json:"hash,omitempty"`
	Value  []byte              `json:"val,omitempty"`
	Seqs   map[string]seqEntry `json:"seqs,omitempty"`
}

// seqEntry is one client's row of the idempotency table as persisted
// in a snapshot: the highest applied sequence ID and the record index
// it produced (so a post-recovery duplicate ACKs the original index).
type seqEntry struct {
	Seq uint64 `json:"seq"`
	Idx int    `json:"idx"`
}

// Sentinel decode errors. ErrTornFrame marks an incomplete tail (the
// expected shape after a crash mid-write); ErrChecksum marks a frame
// whose bytes are all present but do not match their CRC.
var (
	ErrTornFrame = errors.New("storage: torn wal frame")
	ErrChecksum  = errors.New("storage: wal frame checksum mismatch")
	ErrFrameSize = errors.New("storage: wal frame exceeds size bound")
	ErrWALClosed = errors.New("storage: wal is closed")
	ErrWALSticky = errors.New("storage: wal disabled after earlier write/fsync failure")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const frameHeaderSize = 8

// WAL is an append-only, checksummed, segmented log. It is safe for
// concurrent use.
type WAL struct {
	opts    WALOptions
	metrics walMetrics

	mu     sync.Mutex
	f      SegmentFile
	seg    int   // current segment number
	size   int64 // bytes written to current segment
	buf    []byte
	closed bool
	// err is sticky: after a write or fsync failure the log's tail
	// state is unknown, so every later append refuses until the
	// operator restarts and recovers. Set via setErrLocked so the
	// sticky-error gauge tracks it.
	err error

	stopSync chan struct{}
	syncDone chan struct{}
}

// walMetrics is the WAL's obs wiring: latency histograms for the two
// stable-storage operations and counters for throughput and lifecycle
// events. Updates are atomic; nothing here allocates on the append
// path.
type walMetrics struct {
	reg *obs.Registry

	appendSeconds *obs.Histogram
	fsyncSeconds  *obs.Histogram
	fsyncFailures *obs.Counter
	bytesWritten  *obs.Counter
	appends       *obs.Counter
	rotations     *obs.Counter
	stickyError   *obs.Gauge

	compactions   *obs.Counter
	snapshotBytes *obs.Gauge

	recoveredRecords  *obs.Gauge
	recoveredValues   *obs.Gauge
	recoveredSegments *obs.Gauge
	truncatedBytes    *obs.Gauge
	snapshotRecords   *obs.Gauge
	snapshotValues    *obs.Gauge
}

func newWALMetrics(reg *obs.Registry, labels []string) walMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return walMetrics{
		reg:           reg,
		appendSeconds: reg.Histogram("wal_append_seconds", "Latency of one framed append (fsync included under the always policy).", nil, labels...),
		fsyncSeconds:  reg.Histogram("wal_fsync_seconds", "Latency of one segment fsync, successful or not.", nil, labels...),
		fsyncFailures: reg.Counter("wal_fsync_failures_total", "Segment fsync calls that returned an error.", labels...),
		bytesWritten:  reg.Counter("wal_bytes_written_total", "Framed bytes written to segment files.", labels...),
		appends:       reg.Counter("wal_appends_total", "Frames appended.", labels...),
		rotations:     reg.Counter("wal_segment_rotations_total", "Segment files rotated out.", labels...),
		stickyError:   reg.Gauge("wal_sticky_error", "1 after a write/fsync failure poisoned the log.", labels...),

		compactions:   reg.Counter("wal_compactions_total", "Snapshot+truncate compactions completed.", labels...),
		snapshotBytes: reg.Gauge("wal_snapshot_bytes", "Size of the last written compaction snapshot.", labels...),

		recoveredRecords:  reg.Gauge("wal_recovered_records", "Record entries replayed from segments by the last Recover.", labels...),
		recoveredValues:   reg.Gauge("wal_recovered_values", "Value entries replayed from segments by the last Recover.", labels...),
		recoveredSegments: reg.Gauge("wal_recovered_segments", "Segment files replayed by the last Recover.", labels...),
		truncatedBytes:    reg.Gauge("wal_recovery_truncated_bytes", "Torn tail bytes truncated by the last Recover.", labels...),
		snapshotRecords:   reg.Gauge("wal_recovered_snapshot_records", "Records loaded from the compaction snapshot by the last Recover.", labels...),
		snapshotValues:    reg.Gauge("wal_recovered_snapshot_values", "Values loaded from the compaction snapshot by the last Recover.", labels...),
	}
}

// Metrics returns the WAL's metric registry for the admin endpoint.
func (w *WAL) Metrics() *obs.Registry { return w.metrics.reg }

// setErrLocked records the sticky error and flips the gauge. Callers
// hold w.mu.
func (w *WAL) setErrLocked(err error) {
	w.err = err
	w.metrics.stickyError.Set(1)
}

// OpenWAL opens a fresh WAL in opts.Dir, appending after any existing
// segments without reading them. Use Recover to replay existing
// segments into a store first.
func OpenWAL(opts WALOptions) (*WAL, error) {
	if opts.Dir == "" {
		return nil, errors.New("storage: WALOptions.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: wal dir: %w", err)
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(segs) > 0 {
		next = segs[len(segs)-1].n + 1
	}
	return openWALAt(opts, next)
}

func openWALAt(opts WALOptions, seg int) (*WAL, error) {
	w := &WAL{opts: opts, seg: seg - 1, metrics: newWALMetrics(opts.Registry, opts.MetricLabels)}
	if err := w.rotateLocked(); err != nil {
		return nil, err
	}
	if opts.Policy == SyncInterval {
		w.stopSync = make(chan struct{})
		w.syncDone = make(chan struct{})
		go w.syncLoop()
	}
	return w, nil
}

// segName formats the on-disk name of segment n.
func segName(n int) string { return fmt.Sprintf("wal-%08d.seg", n) }

type segRef struct {
	n    int
	name string
}

// listSegments returns the wal-*.seg files of dir in segment order.
func listSegments(dir string) ([]segRef, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: wal dir: %w", err)
	}
	var segs []segRef
	for _, e := range ents {
		name := e.Name()
		var n int
		if _, err := fmt.Sscanf(name, "wal-%08d.seg", &n); err == nil && name == segName(n) {
			segs = append(segs, segRef{n, name})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].n < segs[j].n })
	return segs, nil
}

// rotateLocked closes the active segment (after a final sync) and
// opens the next one. Callers hold w.mu (or own the WAL exclusively
// during construction).
func (w *WAL) rotateLocked() error {
	if w.f != nil {
		if err := w.fsyncLocked(); err != nil {
			return fmt.Errorf("storage: wal rotate sync: %w", err)
		}
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("storage: wal rotate close: %w", err)
		}
		w.f = nil
		w.metrics.rotations.Inc()
	}
	w.seg++
	f, err := w.opts.openFile(filepath.Join(w.opts.Dir, segName(w.seg)))
	if err != nil {
		return fmt.Errorf("storage: wal open segment: %w", err)
	}
	w.f = f
	w.size = 0
	return nil
}

// AppendRecord logs one visit record. clientID/seq may be empty/zero
// for legacy (non-idempotent) appends.
func (w *WAL) AppendRecord(r *fingerprint.Record, clientID string, seq uint64) error {
	return w.appendEntry(&walEntry{Record: r, CID: clientID, Seq: seq})
}

// AppendValue logs one content-addressed value.
func (w *WAL) AppendValue(hash string, content []byte) error {
	return w.appendEntry(&walEntry{Hash: hash, Value: content})
}

func (w *WAL) appendEntry(e *walEntry) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("storage: wal encode: %w", err)
	}
	return w.append(payload)
}

// append frames payload and writes it to the active segment, rotating
// and syncing per policy. Header and payload go down in a single Write
// so a crash tears at most one frame. The append-latency observation
// covers the whole durable path: rotation (if due), the write, and the
// fsync under SyncAlways.
func (w *WAL) append(payload []byte) error {
	start := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	if w.err != nil {
		return fmt.Errorf("%w: %w", ErrWALSticky, w.err)
	}
	if len(payload) > w.opts.maxFrame() {
		return fmt.Errorf("%w: %d > %d bytes", ErrFrameSize, len(payload), w.opts.maxFrame())
	}
	frame := frameHeaderSize + len(payload)
	if w.size > 0 && w.size+int64(frame) > w.opts.segmentSize() {
		if err := w.rotateLocked(); err != nil {
			w.setErrLocked(err)
			return err
		}
	}
	w.buf = AppendFrame(w.buf[:0], payload)
	if _, err := w.f.Write(w.buf); err != nil {
		w.setErrLocked(err)
		return fmt.Errorf("storage: wal write: %w", err)
	}
	w.size += int64(frame)
	w.metrics.bytesWritten.Add(int64(frame))
	w.metrics.appends.Inc()
	if w.opts.Policy == SyncAlways {
		if err := w.fsyncLocked(); err != nil {
			w.setErrLocked(err)
			return fmt.Errorf("storage: wal fsync: %w", err)
		}
	}
	w.metrics.appendSeconds.ObserveDuration(time.Since(start))
	return nil
}

// AppendRecordBatch logs a batch of records as one group commit: every
// frame goes down in a single Write and — under the always policy — a
// single fsync covers the whole batch, amortizing the durability cost
// N ways. seqs pairs with recs. On nil the entire batch is on stable
// storage per policy; on error none of it may be ACKed (a multi-frame
// write can tear mid-batch, but recovery truncates at the tear and the
// client retransmits, so partial frames are indistinguishable from a
// crash mid-single-append).
func (w *WAL) AppendRecordBatch(recs []*fingerprint.Record, clientID string, seqs []uint64) error {
	if len(recs) == 0 {
		return nil
	}
	start := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	if w.err != nil {
		return fmt.Errorf("%w: %w", ErrWALSticky, w.err)
	}
	w.buf = w.buf[:0]
	for i, r := range recs {
		payload, err := json.Marshal(&walEntry{Record: r, CID: clientID, Seq: seqs[i]})
		if err != nil {
			return fmt.Errorf("storage: wal encode: %w", err)
		}
		if len(payload) > w.opts.maxFrame() {
			return fmt.Errorf("%w: %d > %d bytes", ErrFrameSize, len(payload), w.opts.maxFrame())
		}
		w.buf = AppendFrame(w.buf, payload)
	}
	total := int64(len(w.buf))
	if w.size > 0 && w.size+total > w.opts.segmentSize() {
		if err := w.rotateLocked(); err != nil {
			w.setErrLocked(err)
			return err
		}
	}
	if _, err := w.f.Write(w.buf); err != nil {
		w.setErrLocked(err)
		return fmt.Errorf("storage: wal write: %w", err)
	}
	w.size += total
	w.metrics.bytesWritten.Add(total)
	w.metrics.appends.Add(int64(len(recs)))
	if w.opts.Policy == SyncAlways {
		if err := w.fsyncLocked(); err != nil {
			w.setErrLocked(err)
			return fmt.Errorf("storage: wal fsync: %w", err)
		}
	}
	w.metrics.appendSeconds.ObserveDuration(time.Since(start))
	return nil
}

// fsyncLocked syncs the active segment, timing it into the fsync
// histogram. The latency is observed on success AND failure — the
// slowest fsyncs are the stalling or failing ones, which is exactly
// when an operator needs wal_fsync_seconds to be telling the truth —
// and failures additionally bump wal_fsync_failures_total. Callers
// hold w.mu and handle the sticky-error bookkeeping themselves
// (rotation wraps the error differently from appends).
func (w *WAL) fsyncLocked() error {
	start := time.Now()
	err := w.f.Sync()
	w.metrics.fsyncSeconds.ObserveDuration(time.Since(start))
	if err != nil {
		w.metrics.fsyncFailures.Inc()
	}
	return err
}

// Rotate forces a segment rotation: the active segment is synced,
// closed, and a fresh one opened. It returns the new active segment
// number; every segment numbered below it is closed and will never be
// written again. Compaction rotates first so its snapshot covers a
// frozen prefix of the log.
func (w *WAL) Rotate() (active int, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrWALClosed
	}
	if w.err != nil {
		return 0, fmt.Errorf("%w: %w", ErrWALSticky, w.err)
	}
	if err := w.rotateLocked(); err != nil {
		w.setErrLocked(err)
		return 0, err
	}
	return w.seg, nil
}

// Sync forces an fsync of the active segment.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.closed {
		return ErrWALClosed
	}
	if w.err != nil {
		return fmt.Errorf("%w: %w", ErrWALSticky, w.err)
	}
	if err := w.fsyncLocked(); err != nil {
		w.setErrLocked(err)
		return fmt.Errorf("storage: wal fsync: %w", err)
	}
	return nil
}

func (w *WAL) syncLoop() {
	defer close(w.syncDone)
	t := time.NewTicker(w.opts.interval())
	defer t.Stop()
	for {
		select {
		case <-w.stopSync:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed && w.err == nil {
				if err := w.fsyncLocked(); err != nil {
					w.setErrLocked(err)
				}
			}
			w.mu.Unlock()
		}
	}
}

// Err returns the sticky write/fsync error, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Dir returns the segment directory.
func (w *WAL) Dir() string { return w.opts.Dir }

// Close performs a final sync and closes the active segment. Safe to
// call twice.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	var err error
	if w.f != nil {
		if w.err == nil {
			err = w.f.Sync()
		}
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	stop := w.stopSync
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-w.syncDone
	}
	return err
}

// DecodeSegment scans the frames of one segment, invoking fn with each
// CRC-valid payload. It returns the byte offset of the first invalid
// frame and the reason (ErrTornFrame for an incomplete tail,
// ErrChecksum for a CRC mismatch, ErrFrameSize for an implausible
// length header, or fn's own error for an undecodable payload). A
// fully valid segment returns (len(data), nil). maxFrame <= 0 selects
// the default bound.
func DecodeSegment(data []byte, maxFrame int, fn func(payload []byte) error) (int64, error) {
	if maxFrame <= 0 {
		maxFrame = (&WALOptions{}).maxFrame()
	}
	off := int64(0)
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < frameHeaderSize {
			return off, ErrTornFrame
		}
		n := int(binary.LittleEndian.Uint32(rest[0:4]))
		if n > maxFrame {
			return off, ErrFrameSize
		}
		if len(rest) < frameHeaderSize+n {
			return off, ErrTornFrame
		}
		payload := rest[frameHeaderSize : frameHeaderSize+n]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			return off, ErrChecksum
		}
		if err := fn(payload); err != nil {
			return off, err
		}
		off += int64(frameHeaderSize + n)
	}
	return off, nil
}

// RecoveryStats summarizes a Recover run; cmd/fpserver logs it as the
// startup banner. With compaction in play, Segments/Records/Values
// count only what was replayed from segment files — the cost that
// grows with activity since the last compaction — while the Snapshot*
// fields count the live state loaded in one pass from the snapshot.
type RecoveryStats struct {
	Segments       int   // segment files replayed (excludes those covered by the snapshot)
	Records        int   // record entries replayed from segments
	Values         int   // value entries replayed from segments
	TruncatedBytes int64 // torn tail bytes dropped from the last segment
	Truncated      bool  // whether a torn tail was truncated

	SnapshotSeg     int // highest segment the loaded snapshot covers (0 = no snapshot)
	SnapshotRecords int // records loaded from the snapshot
	SnapshotValues  int // values loaded from the snapshot
}

// Add merges other into s (the per-shard → fleet aggregation).
func (s *RecoveryStats) Add(other RecoveryStats) {
	s.Segments += other.Segments
	s.Records += other.Records
	s.Values += other.Values
	s.TruncatedBytes += other.TruncatedBytes
	s.Truncated = s.Truncated || other.Truncated
	if other.SnapshotSeg > 0 {
		s.SnapshotSeg = max(s.SnapshotSeg, other.SnapshotSeg)
	}
	s.SnapshotRecords += other.SnapshotRecords
	s.SnapshotValues += other.SnapshotValues
}

// Recover rebuilds a Store from opts.Dir: it loads the newest
// compaction snapshot (if one exists), replays only the WAL segments
// the snapshot does not cover, rebuilds the byUser/byCookie/value
// indexes and the per-client sequence table, then attaches a new WAL
// (next segment number) to the store so subsequent appends are
// durable. A torn frame at the tail of the final segment is truncated
// from the file — and the truncation is fsynced through to the
// directory, so a crash immediately after recovery cannot resurrect
// the torn frame and fail the *next* recovery with what would then
// look like mid-log corruption. Corruption anywhere else (including
// inside a snapshot, which is written atomically and must be intact)
// fails recovery. Segments and older snapshots made obsolete by the
// loaded snapshot are deleted best-effort.
func Recover(opts WALOptions) (*Store, *WAL, RecoveryStats, error) {
	var stats RecoveryStats
	if opts.Dir == "" {
		return nil, nil, stats, errors.New("storage: WALOptions.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, stats, fmt.Errorf("storage: wal dir: %w", err)
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, nil, stats, err
	}
	snaps, err := listSnapshots(opts.Dir)
	if err != nil {
		return nil, nil, stats, err
	}
	st := NewStore()
	snapSeg := 0
	if len(snaps) > 0 {
		sn := snaps[len(snaps)-1]
		var snapStats RecoveryStats
		if err := loadSnapshot(filepath.Join(opts.Dir, sn.name), opts.maxFrame(), st, &snapStats); err != nil {
			return nil, nil, stats, err
		}
		snapSeg = sn.n
		stats.SnapshotSeg = sn.n
		stats.SnapshotRecords = snapStats.Records
		stats.SnapshotValues = snapStats.Values
	}
	live := segs[:0:0]
	for _, seg := range segs {
		if seg.n <= snapSeg {
			continue // covered by the snapshot: already live state
		}
		live = append(live, seg)
	}
	for i, seg := range live {
		path := filepath.Join(opts.Dir, seg.name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, stats, fmt.Errorf("storage: wal read %s: %w", seg.name, err)
		}
		validLen, derr := DecodeSegment(data, opts.maxFrame(), func(payload []byte) error {
			var e walEntry
			if err := json.Unmarshal(payload, &e); err != nil {
				return fmt.Errorf("storage: wal entry: %w", err)
			}
			st.applyEntry(&e, &stats)
			return nil
		})
		stats.Segments++
		if derr != nil {
			if i != len(live)-1 {
				return nil, nil, stats, fmt.Errorf("storage: wal segment %s corrupt at offset %d: %w", seg.name, validLen, derr)
			}
			// Torn tail of the live segment: the crash signature.
			// Truncate the file so the next recovery is clean, keep
			// everything before the tear — and make the truncation
			// itself durable (file then directory), or a crash here
			// brings the torn bytes back.
			if err := os.Truncate(path, validLen); err != nil {
				return nil, nil, stats, fmt.Errorf("storage: wal truncate %s: %w", seg.name, err)
			}
			if err := syncFileAndDir(path); err != nil {
				return nil, nil, stats, fmt.Errorf("storage: wal truncate sync %s: %w", seg.name, err)
			}
			stats.Truncated = true
			stats.TruncatedBytes = int64(len(data)) - validLen
		}
	}
	next := 1
	if len(segs) > 0 {
		next = segs[len(segs)-1].n + 1
	}
	// Segments can all be gone after compaction; new segment numbers
	// must still stay above the snapshot's coverage or the next
	// recovery would skip them.
	if snapSeg+1 > next {
		next = snapSeg + 1
	}
	// Drop files the snapshot made obsolete (segments it covers, older
	// snapshots). Best-effort: a leftover is skipped next time anyway.
	removeObsolete(opts.Dir, segs, snaps, snapSeg)
	w, err := openWALAt(opts, next)
	if err != nil {
		return nil, nil, stats, err
	}
	// Publish what recovery found: a scrape after a restart shows how
	// much was replayed and whether a torn tail was dropped.
	w.metrics.recoveredRecords.SetInt(int64(stats.Records))
	w.metrics.recoveredValues.SetInt(int64(stats.Values))
	w.metrics.recoveredSegments.SetInt(int64(stats.Segments))
	w.metrics.truncatedBytes.SetInt(stats.TruncatedBytes)
	w.metrics.snapshotRecords.SetInt(int64(stats.SnapshotRecords))
	w.metrics.snapshotValues.SetInt(int64(stats.SnapshotValues))
	st.AttachWAL(w)
	return st, w, stats, nil
}

// removeObsolete deletes segments covered by the loaded snapshot and
// all snapshots older than it, then syncs the directory.
func removeObsolete(dir string, segs, snaps []segRef, snapSeg int) {
	removed := false
	for _, seg := range segs {
		if seg.n <= snapSeg {
			if os.Remove(filepath.Join(dir, seg.name)) == nil {
				removed = true
			}
		}
	}
	for _, sn := range snaps {
		if sn.n < snapSeg {
			if os.Remove(filepath.Join(dir, sn.name)) == nil {
				removed = true
			}
		}
	}
	if removed {
		fsyncDir(dir)
	}
}

// syncFileAndDir fsyncs path's contents and then its parent directory,
// making an in-place metadata change (truncation, rename) durable.
func syncFileAndDir(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsyncDir(filepath.Dir(path))
}

// fsyncDir fsyncs a directory so entry creations/removals/renames in
// it are durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// applyEntry replays one WAL or snapshot entry into the store without
// re-logging it (recovery attaches the WAL only after replay).
func (s *Store) applyEntry(e *walEntry, stats *RecoveryStats) {
	switch {
	case e.Record != nil:
		s.mu.Lock()
		idx := s.appendLocked(e.Record)
		if e.CID != "" && e.Seq > s.lastSeq[e.CID] {
			s.lastSeq[e.CID] = e.Seq
			s.lastIdx[e.CID] = idx
		}
		s.mu.Unlock()
		stats.Records++
	case e.Hash != "":
		s.mu.Lock()
		if _, ok := s.values[e.Hash]; !ok {
			s.values[e.Hash] = e.Value
		}
		s.mu.Unlock()
		stats.Values++
	case e.Seqs != nil:
		s.mu.Lock()
		for cid, se := range e.Seqs {
			if se.Seq > s.lastSeq[cid] {
				s.lastSeq[cid] = se.Seq
				s.lastIdx[cid] = se.Idx
			}
		}
		s.mu.Unlock()
	}
}
