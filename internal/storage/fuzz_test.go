package storage

import (
	"bytes"
	"testing"
)

// FuzzReadFrom: arbitrary snapshot bytes must never panic; valid
// prefixes load, the first malformed line errors cleanly.
func FuzzReadFrom(f *testing.F) {
	// Seed with a real snapshot.
	s := NewStore()
	s.Append(mkRecord(1))
	s.PutValue("h", []byte("v"))
	var buf bytes.Buffer
	s.WriteTo(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("{}\n{}\n"))
	f.Add([]byte(`{"rec":{"t":"zzz"}}`))
	f.Add([]byte(`{"hash":"h","val":"bm90IGJhc2U2NA=="}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		st := NewStore()
		_, _ = st.ReadFrom(bytes.NewReader(data)) // must not panic
		// Whatever loaded must be internally consistent.
		if st.Len() > 0 {
			_ = st.Records()
			_ = st.Record(0)
		}
	})
}
