package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadFrom: arbitrary snapshot bytes must never panic; valid
// prefixes load, the first malformed line errors cleanly.
func FuzzReadFrom(f *testing.F) {
	// Seed with a real snapshot.
	s := NewStore()
	s.Append(mkRecord(1))
	s.PutValue("h", []byte("v"))
	var buf bytes.Buffer
	s.WriteTo(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("{}\n{}\n"))
	f.Add([]byte(`{"rec":{"t":"zzz"}}`))
	f.Add([]byte(`{"hash":"h","val":"bm90IGJhc2U2NA=="}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		st := NewStore()
		_, _ = st.ReadFrom(bytes.NewReader(data)) // must not panic
		// Whatever loaded must be internally consistent.
		if st.Len() > 0 {
			_ = st.Records()
			_ = st.Record(0)
		}
	})
}

// writeSegmentFile plants raw bytes as segment n of dir.
func writeSegmentFile(dir string, n int, data []byte) error {
	return os.WriteFile(filepath.Join(dir, segName(n)), data, 0o644)
}

// mkSegment frames the given payloads as one valid WAL segment.
func mkSegment(payloads ...[]byte) []byte {
	var seg bytes.Buffer
	for _, p := range payloads {
		var hdr [frameHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(p, castagnoli))
		seg.Write(hdr[:])
		seg.Write(p)
	}
	return seg.Bytes()
}

// FuzzDecodeSegment: random corruption of a (seeded-valid) WAL segment
// must yield either a clean truncation — a valid frame prefix and a
// typed error — or a checksum/size error, never a panic and never a
// frame that fails its CRC. The seed corpus holds valid segments; the
// fuzzer mutates them into corrupt ones.
func FuzzDecodeSegment(f *testing.F) {
	rec, _ := json.Marshal(walEntry{Record: mkRecord(1), CID: "cid-x", Seq: 7})
	val, _ := json.Marshal(walEntry{Hash: "aabb", Value: []byte("blob")})
	f.Add(mkSegment(rec, val, rec))
	f.Add(mkSegment(val))
	f.Add(mkSegment())
	f.Add([]byte{0, 0, 0})                  // torn header
	f.Add(mkSegment(rec)[:frameHeaderSize]) // torn payload
	f.Fuzz(func(t *testing.T, data []byte) {
		var decoded int64
		off, err := DecodeSegment(data, 0, func(payload []byte) error {
			// A payload reaching this callback passed its CRC; it must
			// also be decodable — a "bogus record" would fail here and
			// surface as a decode error, never as a stored record.
			var e walEntry
			if jerr := json.Unmarshal(payload, &e); jerr != nil {
				return jerr
			}
			decoded += frameHeaderSize + int64(len(payload))
			return nil
		})
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("offset %d out of range [0,%d]", off, len(data))
		}
		if err == nil {
			if off != int64(len(data)) || decoded != off {
				t.Fatalf("clean decode stopped early: off=%d decoded=%d len=%d", off, decoded, len(data))
			}
			return
		}
		// Invalid input: a clean truncation point — the valid prefix
		// ends exactly where decoding stopped — with a typed error (or
		// the payload callback's own decode error).
		if off != decoded {
			t.Fatalf("invalid frame at offset %d but valid prefix is %d (err %v)", off, decoded, err)
		}
	})
}

// FuzzRecoverSegment drives full recovery over a mutated single-segment
// directory: recovery must never panic, and a second recovery over the
// (possibly truncated) directory must be clean and idempotent.
func FuzzRecoverSegment(f *testing.F) {
	rec, _ := json.Marshal(walEntry{Record: mkRecord(2), CID: "cid-y", Seq: 1})
	f.Add(mkSegment(rec, rec))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := writeSegmentFile(dir, 1, data); err != nil {
			t.Fatal(err)
		}
		opts := WALOptions{Dir: dir, Policy: SyncNever}
		st, w, stats, err := Recover(opts)
		if err != nil {
			return // corrupt beyond tail repair: refused, not panicked
		}
		w.Close()
		st2, w2, stats2, err := Recover(opts)
		if err != nil {
			t.Fatalf("second recovery failed after repair: %v", err)
		}
		w2.Close()
		if st2.Len() != st.Len() || stats2.Truncated {
			t.Fatalf("recovery not idempotent: %d→%d records, stats=%+v→%+v",
				st.Len(), st2.Len(), stats, stats2)
		}
	})
}
