// Sharded storage: N independent stores, each with its own WAL
// directory, partitioned by hash(UserID) for records and by content
// hash for values. The paper's platform ingested 7.2M fingerprints
// from ~1.5M users (§2.2); a single store serializes every append
// behind one mutex and one fsync stream. Sharding multiplies both:
// appends to different shards contend on nothing, and fsyncs spread
// across N files.
//
// Routing by UserID keeps all of a user's records — and the relative
// order the collector accepted them in — on one shard, which is what
// makes a canonical serialization (users sorted, each user's records
// in arrival order) invariant under the shard count. Values route by
// their content hash: the hash-dedup check (§2.2.1) for a given hash
// always lands on the shard that owns it.
package storage

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/parallel"
)

// shardsMetaName is the root-dir marker recording the shard count the
// directory was created with. Reopening with a different count would
// silently misroute every key, so Recover refuses instead.
const shardsMetaName = "SHARDS"

// shardDirName formats the per-shard WAL directory name.
func shardDirName(i int) string { return fmt.Sprintf("shard-%02d", i) }

// shardIndex routes a key to one of n shards via FNV-1a (stable across
// processes and platforms, unlike Go's randomized map hash).
func shardIndex(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// ShardedWALOptions configures RecoverSharded. The embedded
// WALOptions apply to every shard; Dir is the root directory under
// which shard-NN subdirectories live. MetricLabels must be empty —
// each shard gets its own ("shard", "NN") labels on the shared
// registry.
type ShardedWALOptions struct {
	WALOptions
	// Shards is the number of partitions (default 1). The count is
	// sticky per directory: reopening an existing root with a
	// different count is an error.
	Shards int
	// RecoveryWorkers bounds the goroutines replaying shards on
	// recovery; <= 0 resolves to NumCPU. Replay order never affects
	// the recovered state: shards are disjoint.
	RecoveryWorkers int
}

func (o *ShardedWALOptions) shards() int {
	if o.Shards <= 0 {
		return 1
	}
	return o.Shards
}

// ShardedRecoveryStats merges per-shard recovery outcomes.
type ShardedRecoveryStats struct {
	RecoveryStats                 // totals across shards (Add semantics)
	Shards        int             // shard count recovered
	PerShard      []RecoveryStats // indexed by shard
}

// ShardedStore partitions records and values across independent
// stores. Methods mirror Store's ingest surface so the collector
// server can use either through the Backend interface.
type ShardedStore struct {
	stores []*Store
}

// NewShardedStore returns an in-memory sharded store (no WALs) with n
// shards — the non-durable counterpart to NewStore, used by tests and
// offline tooling.
func NewShardedStore(n int) *ShardedStore {
	if n <= 0 {
		n = 1
	}
	ss := &ShardedStore{stores: make([]*Store, n)}
	for i := range ss.stores {
		ss.stores[i] = NewStore()
	}
	return ss
}

// checkShardsMeta enforces the sticky shard count: first open writes
// the marker, later opens must match it.
func checkShardsMeta(root string, n int) error {
	path := filepath.Join(root, shardsMetaName)
	data, err := os.ReadFile(path)
	if err == nil {
		got, perr := strconv.Atoi(strings.TrimSpace(string(data)))
		if perr != nil {
			return fmt.Errorf("storage: corrupt %s file: %q", shardsMetaName, data)
		}
		if got != n {
			return fmt.Errorf("storage: wal root %s was created with %d shards, reopened with %d", root, got, n)
		}
		return nil
	}
	if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("storage: read %s: %w", shardsMetaName, err)
	}
	if err := os.WriteFile(path, []byte(strconv.Itoa(n)+"\n"), 0o644); err != nil {
		return fmt.Errorf("storage: write %s: %w", shardsMetaName, err)
	}
	return fsyncDir(root)
}

// RecoverSharded replays every shard's WAL — in parallel — and
// returns the recovered store with all shard WALs attached and
// accepting appends. Shards are disjoint, so the recovered state is
// identical for any worker count; the merged stats are accumulated in
// shard order regardless of replay order.
func RecoverSharded(opts ShardedWALOptions) (*ShardedStore, ShardedRecoveryStats, error) {
	n := opts.shards()
	var stats ShardedRecoveryStats
	stats.Shards = n
	stats.PerShard = make([]RecoveryStats, n)
	if opts.Dir == "" {
		return nil, stats, errors.New("storage: sharded recovery needs a root dir")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, stats, fmt.Errorf("storage: wal root: %w", err)
	}
	if err := checkShardsMeta(opts.Dir, n); err != nil {
		return nil, stats, err
	}

	ss := &ShardedStore{stores: make([]*Store, n)}
	errs := make([]error, n)
	parallel.ForEach(parallel.Resolve(opts.RecoveryWorkers), n, func(i int) {
		shardOpts := opts.WALOptions
		shardOpts.Dir = filepath.Join(opts.Dir, shardDirName(i))
		shardOpts.MetricLabels = append(append([]string(nil), opts.MetricLabels...),
			"shard", fmt.Sprintf("%02d", i))
		st, _, rstats, err := Recover(shardOpts)
		if err != nil {
			errs[i] = fmt.Errorf("storage: shard %d: %w", i, err)
			return
		}
		ss.stores[i] = st
		stats.PerShard[i] = rstats
	})
	for i, err := range errs {
		if err != nil {
			// Close the shards that did open so a partial recovery
			// doesn't leak file handles and sync loops.
			for _, st := range ss.stores {
				if st != nil && st.WAL() != nil {
					st.WAL().Close()
				}
			}
			return nil, stats, errs[i]
		}
	}
	for _, rs := range stats.PerShard {
		stats.RecoveryStats.Add(rs)
	}
	return ss, stats, nil
}

// Shards returns the shard count.
func (ss *ShardedStore) Shards() int { return len(ss.stores) }

// Shard returns the i-th underlying store.
func (ss *ShardedStore) Shard(i int) *Store { return ss.stores[i] }

func (ss *ShardedStore) recordShard(userID string) *Store {
	return ss.stores[shardIndex(userID, len(ss.stores))]
}

func (ss *ShardedStore) valueShard(hash string) *Store {
	return ss.stores[shardIndex(hash, len(ss.stores))]
}

// AppendDurable routes the record to its user's shard. The per-shard
// idempotency table sees a monotonic subsequence of each client's
// sequence numbers — safe because the resilient client submits in seq
// order and stops at the first failure, so a shard never sees seq k
// after a higher seq from the same client was rejected.
func (ss *ShardedStore) AppendDurable(r *fingerprint.Record, clientID string, seq uint64) (int, bool, error) {
	return ss.recordShard(r.UserID).AppendDurable(r, clientID, seq)
}

// AppendBatchDurable splits the batch by owning shard — preserving
// each shard's arrival order — and group-commits one sub-batch per
// shard, so a batch costs one fsync per *touched shard* rather than
// one per record. A shard failure aborts with an error; sub-batches on
// earlier shards may already be durable, which is safe: the client
// retransmits the whole batch and the per-shard idempotency tables
// turn the replayed records into dups.
func (ss *ShardedStore) AppendBatchDurable(items []BatchAppend, clientID string) ([]BatchResult, error) {
	n := len(ss.stores)
	if n == 1 {
		return ss.stores[0].AppendBatchDurable(items, clientID)
	}
	perShard := make([][]BatchAppend, n)
	perIdx := make([][]int, n)
	for i, it := range items {
		sh := shardIndex(it.Record.UserID, n)
		perShard[sh] = append(perShard[sh], it)
		perIdx[sh] = append(perIdx[sh], i)
	}
	results := make([]BatchResult, len(items))
	for sh, sub := range perShard {
		if len(sub) == 0 {
			continue
		}
		res, err := ss.stores[sh].AppendBatchDurable(sub, clientID)
		if err != nil {
			return nil, fmt.Errorf("storage: shard %d: %w", sh, err)
		}
		for j, r := range res {
			results[perIdx[sh][j]] = r
		}
	}
	return results, nil
}

// Append routes a best-effort append to the record's user shard.
func (ss *ShardedStore) Append(r *fingerprint.Record) int {
	return ss.recordShard(r.UserID).Append(r)
}

// HasValue reports whether the owning shard holds hash.
func (ss *ShardedStore) HasValue(hash string) bool {
	return ss.valueShard(hash).HasValue(hash)
}

// Value returns the content stored under hash.
func (ss *ShardedStore) Value(hash string) ([]byte, bool) {
	return ss.valueShard(hash).Value(hash)
}

// PutValueDurable stores content on its owning shard.
func (ss *ShardedStore) PutValueDurable(hash string, content []byte) error {
	return ss.valueShard(hash).PutValueDurable(hash, content)
}

// PutValue stores content on its owning shard, best effort.
func (ss *ShardedStore) PutValue(hash string, content []byte) {
	ss.valueShard(hash).PutValue(hash, content)
}

// LastSeq returns the highest sequence ID applied for a client across
// all shards.
func (ss *ShardedStore) LastSeq(clientID string) (uint64, bool) {
	var best uint64
	found := false
	for _, st := range ss.stores {
		if seq, ok := st.LastSeq(clientID); ok {
			found = true
			if seq > best {
				best = seq
			}
		}
	}
	return best, found
}

// Len returns the total record count across shards.
func (ss *ShardedStore) Len() int {
	n := 0
	for _, st := range ss.stores {
		n += st.Len()
	}
	return n
}

// NumValues returns the total distinct value count across shards.
func (ss *ShardedStore) NumValues() int {
	n := 0
	for _, st := range ss.stores {
		n += st.NumValues()
	}
	return n
}

// ByUser returns one user's records in arrival order (all on one
// shard).
func (ss *ShardedStore) ByUser(userID string) []*fingerprint.Record {
	return ss.recordShard(userID).ByUser(userID)
}

// WriteTo serializes the sharded store in canonical order: values
// sorted by hash across all shards, then users sorted by ID with each
// user's records in arrival order. Because a user's records live on
// exactly one shard, the output is byte-identical for any shard count
// holding the same accepted data — the property the cross-shard chaos
// digests assert. It implements io.WriterTo.
func (ss *ShardedStore) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	enc := json.NewEncoder(bw)

	var hashes []string
	for _, st := range ss.stores {
		st.mu.RLock()
		hashes = append(hashes, st.sortedValueHashesLocked()...)
		st.mu.RUnlock()
	}
	sort.Strings(hashes)
	for _, h := range hashes {
		v, _ := ss.Value(h)
		if err := enc.Encode(snapshotLine{Hash: h, Value: v}); err != nil {
			bw.Flush()
			return cw.n, fmt.Errorf("storage: encode value: %w", err)
		}
	}

	var users []string
	for _, st := range ss.stores {
		st.mu.RLock()
		for u := range st.byUser {
			users = append(users, u)
		}
		st.mu.RUnlock()
	}
	sort.Strings(users)
	for _, u := range users {
		for _, r := range ss.ByUser(u) {
			if err := enc.Encode(snapshotLine{Record: r}); err != nil {
				bw.Flush()
				return cw.n, fmt.Errorf("storage: encode record: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// SaveFile writes the canonical serialization to path.
func (ss *ShardedStore) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := ss.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Compact checkpoints every shard (see Store.Compact) and merges the
// stats. Shards compact independently and in parallel; a shard
// failure aborts with its error but leaves other shards' snapshots in
// place — compaction is idempotent, the next run covers them.
func (ss *ShardedStore) Compact() (CompactionStats, error) {
	n := len(ss.stores)
	stats := make([]CompactionStats, n)
	errs := make([]error, n)
	parallel.ForEach(0, n, func(i int) {
		stats[i], errs[i] = ss.stores[i].Compact()
	})
	var merged CompactionStats
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return merged, fmt.Errorf("storage: shard %d: %w", i, errs[i])
		}
		merged.Add(stats[i])
	}
	return merged, nil
}

// WALError returns the first sticky WAL error across shards, or nil.
func (ss *ShardedStore) WALError() error {
	for i, st := range ss.stores {
		if w := st.WAL(); w != nil {
			if err := w.Err(); err != nil {
				return fmt.Errorf("storage: shard %d: %w", i, err)
			}
		}
	}
	return nil
}

// CloseWALs closes every shard's WAL, returning the first error.
func (ss *ShardedStore) CloseWALs() error {
	var first error
	for _, st := range ss.stores {
		if w := st.WAL(); w != nil {
			if err := w.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
