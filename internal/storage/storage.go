// Package storage is the data-storage backend of the measurement
// platform (Figure 1 of the paper): an append-only visit-record log
// with secondary indexes, plus the content-addressed value store that
// backs the collection protocol's hash-dedup optimization (§2.2.1 — the
// client sends only a hash when the server already holds the value, and
// the server keeps full content, which is what later lets the offline
// analysis pixel-diff canvas images).
//
// The store is safe for concurrent use; the collection server appends
// from many connections while analyses read snapshots.
package storage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"fpdyn/internal/fingerprint"
)

// Store holds the raw dataset. The zero value is not usable; construct
// with NewStore.
type Store struct {
	mu       sync.RWMutex
	records  []*fingerprint.Record
	byUser   map[string][]int
	byCookie map[string][]int
	values   map[string][]byte
	// lastSeq tracks, per collection client, the highest client-assigned
	// sequence ID applied — the idempotency table that lets a
	// reconnecting client resubmit without double-appending.
	lastSeq map[string]uint64
	lastIdx map[string]int // index appended for lastSeq[cid]
	wal     *WAL           // optional write-ahead log

	// compactMu serializes Compact runs without holding s.mu across the
	// snapshot write.
	compactMu sync.Mutex
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		byUser:   make(map[string][]int),
		byCookie: make(map[string][]int),
		values:   make(map[string][]byte),
		lastSeq:  make(map[string]uint64),
		lastIdx:  make(map[string]int),
	}
}

// AttachWAL makes subsequent appends write-ahead to w. Recover calls
// this after replay; callers building a durable store by hand attach
// the WAL before accepting traffic.
func (s *Store) AttachWAL(w *WAL) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal = w
}

// WAL returns the attached write-ahead log, or nil.
func (s *Store) WAL() *WAL {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.wal
}

// appendLocked applies a record to the in-memory log and indexes.
// Callers hold s.mu.
func (s *Store) appendLocked(r *fingerprint.Record) int {
	idx := len(s.records)
	s.records = append(s.records, r)
	s.byUser[r.UserID] = append(s.byUser[r.UserID], idx)
	if r.Cookie != "" {
		s.byCookie[r.Cookie] = append(s.byCookie[r.Cookie], idx)
	}
	return idx
}

// Append adds a record and returns its index. Records are expected in
// collection (time) order; the store preserves insertion order. With a
// WAL attached the append is logged best-effort; servers that must not
// ACK before the record is durable use AppendDurable instead.
func (s *Store) Append(r *fingerprint.Record) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		_ = s.wal.AppendRecord(r, "", 0)
	}
	return s.appendLocked(r)
}

// AppendDurable adds a record with write-ahead durability and
// idempotency. clientID/seq is the client-assigned sequence ID; seq
// must be monotonic per client. A (clientID, seq) already applied is
// not re-appended: dup is true and idx is the original index (or -1
// when the duplicate is older than the latest applied seq). With a WAL
// attached, the entry is on disk — fsynced per policy — before the
// in-memory append, so an error here means the record was NOT accepted
// and the server must not ACK.
func (s *Store) AppendDurable(r *fingerprint.Record, clientID string, seq uint64) (idx int, dup bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if clientID != "" {
		if last, ok := s.lastSeq[clientID]; ok && seq <= last {
			if seq == last {
				return s.lastIdx[clientID], true, nil
			}
			return -1, true, nil
		}
	}
	if s.wal != nil {
		if err := s.wal.AppendRecord(r, clientID, seq); err != nil {
			return 0, false, err
		}
	}
	idx = s.appendLocked(r)
	if clientID != "" {
		s.lastSeq[clientID] = seq
		s.lastIdx[clientID] = idx
	}
	return idx, false, nil
}

// BatchAppend is one record of a group-committed batch append.
type BatchAppend struct {
	Record *fingerprint.Record
	Seq    uint64
}

// BatchResult is the per-record outcome of AppendBatchDurable,
// mirroring AppendDurable's (idx, dup) pair.
type BatchResult struct {
	Idx int
	Dup bool
}

// AppendBatchDurable applies a batch of records from one client with a
// single group commit: the fresh (non-duplicate) records are WAL-logged
// in one write — one fsync under the always policy, however many
// records the batch holds — then applied to the in-memory log in
// order. Seqs must be monotonic within the batch (the wire protocol
// guarantees it). On error nothing was applied and none of the batch
// may be ACKed.
func (s *Store) AppendBatchDurable(items []BatchAppend, clientID string) ([]BatchResult, error) {
	if len(items) == 0 {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	results := make([]BatchResult, len(items))
	fresh := make([]int, 0, len(items))
	last := s.lastSeq[clientID]
	for i, it := range items {
		if clientID != "" && it.Seq <= last {
			// Replay of an already-applied record (a retransmitted
			// batch): ACK the original index when it is the latest
			// applied seq, -1 for older ones — AppendDurable semantics.
			results[i] = BatchResult{Idx: -1, Dup: true}
			if it.Seq == s.lastSeq[clientID] {
				results[i].Idx = s.lastIdx[clientID]
			}
			continue
		}
		fresh = append(fresh, i)
		last = it.Seq
	}
	if s.wal != nil && len(fresh) > 0 {
		recs := make([]*fingerprint.Record, len(fresh))
		seqs := make([]uint64, len(fresh))
		for j, i := range fresh {
			recs[j] = items[i].Record
			seqs[j] = items[i].Seq
		}
		if err := s.wal.AppendRecordBatch(recs, clientID, seqs); err != nil {
			return nil, err
		}
	}
	for _, i := range fresh {
		idx := s.appendLocked(items[i].Record)
		results[i] = BatchResult{Idx: idx}
		if clientID != "" {
			s.lastSeq[clientID] = items[i].Seq
			s.lastIdx[clientID] = idx
		}
	}
	return results, nil
}

// LastSeq returns the highest sequence ID applied for a client, with
// ok reporting whether the client has ever appended.
func (s *Store) LastSeq(clientID string) (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seq, ok := s.lastSeq[clientID]
	return seq, ok
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Record returns the i-th record.
func (s *Store) Record(i int) *fingerprint.Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.records[i]
}

// Records returns a snapshot slice of all records in insertion order.
// The slice is a copy; the records themselves are shared and must be
// treated as immutable.
func (s *Store) Records() []*fingerprint.Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*fingerprint.Record, len(s.records))
	copy(out, s.records)
	return out
}

// ByUser returns the records of one user in insertion order.
func (s *Store) ByUser(userID string) []*fingerprint.Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idxs := s.byUser[userID]
	out := make([]*fingerprint.Record, len(idxs))
	for i, idx := range idxs {
		out[i] = s.records[idx]
	}
	return out
}

// ByCookie returns the records presenting one cookie in insertion order.
func (s *Store) ByCookie(cookie string) []*fingerprint.Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idxs := s.byCookie[cookie]
	out := make([]*fingerprint.Record, len(idxs))
	for i, idx := range idxs {
		out[i] = s.records[idx]
	}
	return out
}

// HasValue reports whether the content-addressed store holds hash.
func (s *Store) HasValue(hash string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.values[hash]
	return ok
}

// PutValue stores content under its hash. Re-putting an existing hash
// is a no-op (content-addressed stores are idempotent). With a WAL
// attached the value is logged best-effort; see PutValueDurable.
func (s *Store) PutValue(hash string, content []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.values[hash]; ok {
		return
	}
	if s.wal != nil {
		_ = s.wal.AppendValue(hash, content)
	}
	s.putValueLocked(hash, content)
}

// PutValueDurable stores content under its hash with write-ahead
// durability: an error means the value was NOT accepted.
func (s *Store) PutValueDurable(hash string, content []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.values[hash]; ok {
		return nil
	}
	if s.wal != nil {
		if err := s.wal.AppendValue(hash, content); err != nil {
			return err
		}
	}
	s.putValueLocked(hash, content)
	return nil
}

func (s *Store) putValueLocked(hash string, content []byte) {
	cp := make([]byte, len(content))
	copy(cp, content)
	s.values[hash] = cp
}

// Value returns the content stored under hash.
func (s *Store) Value(hash string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.values[hash]
	return v, ok
}

// NumValues returns the number of distinct stored values.
func (s *Store) NumValues() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.values)
}

// snapshotLine is the JSONL persistence envelope: exactly one of the
// fields is set per line.
type snapshotLine struct {
	Record *fingerprint.Record `json:"rec,omitempty"`
	Hash   string              `json:"hash,omitempty"`
	Value  []byte              `json:"val,omitempty"`
}

// SnapshotWriter writes a store snapshot incrementally, record by
// record, without materializing a Store — the streaming generator's
// path to the same JSONL format. Values (content-addressed canvas
// blobs) must be written first, in sorted hash order, to match
// WriteTo's byte layout; for record-only snapshots just stream the
// records. Close flushes; bufio's sticky error surfaces any earlier
// write failure there.
type SnapshotWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewSnapshotWriter wraps w in a buffered snapshot encoder.
func NewSnapshotWriter(w io.Writer) *SnapshotWriter {
	bw := bufio.NewWriterSize(w, 1<<18)
	return &SnapshotWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Value writes one content-addressed value line.
func (sw *SnapshotWriter) Value(hash string, val []byte) error {
	return sw.enc.Encode(snapshotLine{Hash: hash, Value: val})
}

// Record writes one record line.
func (sw *SnapshotWriter) Record(r *fingerprint.Record) error {
	return sw.enc.Encode(snapshotLine{Record: r})
}

// Close flushes the buffer (it does not close the underlying writer).
func (sw *SnapshotWriter) Close() error { return sw.bw.Flush() }

// sortedValueHashesLocked returns the value hashes in lexical order so
// every serialization of the same state is byte-identical. Callers
// hold s.mu.
func (s *Store) sortedValueHashesLocked() []string {
	hashes := make([]string, 0, len(s.values))
	for h := range s.values {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	return hashes
}

// countingWriter tracks bytes actually written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo serializes the store as JSON lines: values sorted by hash,
// then records in insertion order. It implements io.WriterTo — the
// returned count is the number of bytes written to w, and equal state
// always serializes to identical bytes.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	enc := json.NewEncoder(bw)
	for _, hash := range s.sortedValueHashesLocked() {
		if err := enc.Encode(snapshotLine{Hash: hash, Value: s.values[hash]}); err != nil {
			bw.Flush()
			return cw.n, fmt.Errorf("storage: encode value: %w", err)
		}
	}
	for _, r := range s.records {
		if err := enc.Encode(snapshotLine{Record: r}); err != nil {
			bw.Flush()
			return cw.n, fmt.Errorf("storage: encode record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// countingReadFrom tracks bytes actually drawn from the source.
type countingReadFrom struct {
	r io.Reader
	n int64
}

func (cr *countingReadFrom) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// ReadFrom loads JSON lines produced by WriteTo into the store,
// appending to current contents. It implements io.ReaderFrom — the
// returned count is the number of bytes read from r (on a clean EOF,
// exactly the byte count the matching WriteTo returned).
func (s *Store) ReadFrom(r io.Reader) (int64, error) {
	cr := &countingReadFrom{r: r}
	dec := json.NewDecoder(bufio.NewReader(cr))
	for {
		var line snapshotLine
		if err := dec.Decode(&line); err == io.EOF {
			return cr.n, nil
		} else if err != nil {
			return cr.n, fmt.Errorf("storage: decode: %w", err)
		}
		switch {
		case line.Record != nil:
			s.Append(line.Record)
		case line.Hash != "":
			s.PutValue(line.Hash, line.Value)
		}
	}
}

// SaveFile writes the store to path.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := s.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a store snapshot from path into a new store.
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s := NewStore()
	if _, err := s.ReadFrom(f); err != nil {
		return nil, err
	}
	return s, nil
}
