// Generic payload journal over the WAL machinery. The collection
// store's crash safety (CRC-framed segments, rotation, fsync policies,
// torn-tail truncation, snapshot+truncate compaction) is not specific
// to visit records — any service with incremental state can journal
// opaque payloads through the same files and recover them with the
// same guarantees. fplinkd journals linker adds/evictions this way.
//
// The contract mirrors Recover/Compact: ReplayJournal loads the newest
// snapshot (if any) and the segments after it, truncating a torn tail
// frame; CompactJournal rotates, checkpoints caller-emitted frames
// into an atomically renamed snapshot, and deletes the covered
// segments. Both reuse the wal-%08d.seg / snap-%08d.snap naming, so a
// journal directory is inspectable with the same tooling as a store's.
package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// AppendPayload journals one opaque payload: framed, checksummed, and
// fsynced per the WAL's policy before returning. The payload is the
// caller's to encode; ReplayJournal hands it back verbatim.
func (w *WAL) AppendPayload(payload []byte) error { return w.append(payload) }

// JournalReplayStats summarizes one ReplayJournal run.
type JournalReplayStats struct {
	Segments       int   // segment files replayed (excludes snapshot-covered)
	Frames         int   // payload frames replayed from segments
	TruncatedBytes int64 // torn tail bytes dropped from the last segment
	Truncated      bool  // whether a torn tail was truncated

	SnapshotSeg    int // highest segment the loaded snapshot covers (0 = none)
	SnapshotFrames int // payload frames loaded from the snapshot
}

// ReplayJournal rebuilds journal state from opts.Dir and opens a fresh
// WAL for subsequent appends. The newest snapshot's frames are handed
// to snapFn, then the frames of every segment the snapshot does not
// cover go to segFn, in log order. A torn frame at the tail of the
// final segment is truncated durably (file, then directory); torn or
// corrupt frames anywhere else — including inside a snapshot, which is
// written atomically — fail recovery. Obsolete files are deleted
// best-effort, and the returned WAL appends strictly after everything
// replayed.
func ReplayJournal(opts WALOptions, snapFn, segFn func(payload []byte) error) (*WAL, JournalReplayStats, error) {
	var stats JournalReplayStats
	if opts.Dir == "" {
		return nil, stats, errors.New("storage: WALOptions.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, stats, fmt.Errorf("storage: wal dir: %w", err)
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, stats, err
	}
	snaps, err := listSnapshots(opts.Dir)
	if err != nil {
		return nil, stats, err
	}
	snapSeg := 0
	if len(snaps) > 0 {
		sn := snaps[len(snaps)-1]
		data, err := os.ReadFile(filepath.Join(opts.Dir, sn.name))
		if err != nil {
			return nil, stats, fmt.Errorf("storage: snapshot read %s: %w", sn.name, err)
		}
		off, derr := DecodeSegment(data, opts.maxFrame(), func(payload []byte) error {
			stats.SnapshotFrames++
			return snapFn(payload)
		})
		if derr != nil {
			return nil, stats, fmt.Errorf("storage: snapshot %s corrupt at offset %d: %w", sn.name, off, derr)
		}
		snapSeg = sn.n
		stats.SnapshotSeg = sn.n
	}
	live := segs[:0:0]
	for _, seg := range segs {
		if seg.n > snapSeg {
			live = append(live, seg)
		}
	}
	for i, seg := range live {
		path := filepath.Join(opts.Dir, seg.name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, stats, fmt.Errorf("storage: wal read %s: %w", seg.name, err)
		}
		validLen, derr := DecodeSegment(data, opts.maxFrame(), func(payload []byte) error {
			stats.Frames++
			return segFn(payload)
		})
		stats.Segments++
		if derr != nil {
			if i != len(live)-1 {
				return nil, stats, fmt.Errorf("storage: wal segment %s corrupt at offset %d: %w", seg.name, validLen, derr)
			}
			// Torn tail of the live segment: the crash signature. Keep
			// everything before the tear and make the truncation durable,
			// or a crash here brings the torn bytes back.
			if err := os.Truncate(path, validLen); err != nil {
				return nil, stats, fmt.Errorf("storage: wal truncate %s: %w", seg.name, err)
			}
			if err := syncFileAndDir(path); err != nil {
				return nil, stats, fmt.Errorf("storage: wal truncate sync %s: %w", seg.name, err)
			}
			stats.Truncated = true
			stats.TruncatedBytes = int64(len(data)) - validLen
		}
	}
	next := 1
	if len(segs) > 0 {
		next = segs[len(segs)-1].n + 1
	}
	if snapSeg+1 > next {
		next = snapSeg + 1
	}
	removeObsolete(opts.Dir, segs, snaps, snapSeg)
	w, err := openWALAt(opts, next)
	if err != nil {
		return nil, stats, err
	}
	w.metrics.recoveredRecords.SetInt(int64(stats.Frames))
	w.metrics.recoveredSegments.SetInt(int64(stats.Segments))
	w.metrics.truncatedBytes.SetInt(stats.TruncatedBytes)
	w.metrics.snapshotRecords.SetInt(int64(stats.SnapshotFrames))
	return w, stats, nil
}

// CompactJournal checkpoints the journal: the WAL rotates (so the
// snapshot covers a frozen prefix of the log), emit writes the live
// state as payload frames through the provided write function, the
// snapshot lands atomically, and the covered segments are deleted.
// The caller must emit a consistent cut — typically captured under its
// own state lock before or during emit — and every payload appended
// after Rotate returns is replayed on top of the snapshot, never
// duplicated. Returns the framed snapshot size.
func (w *WAL) CompactJournal(emit func(write func(payload []byte) error) error) (int64, error) {
	active, err := w.Rotate()
	if err != nil {
		return 0, fmt.Errorf("storage: compact rotate: %w", err)
	}
	covered := active - 1
	n, err := WriteSnapshotFrames(w.Dir(), covered, emit)
	if err != nil {
		return 0, err
	}
	if err := RemoveCoveredSegments(w.Dir(), covered); err != nil {
		return n, err
	}
	w.metrics.compactions.Inc()
	w.metrics.snapshotBytes.SetInt(n)
	return n, nil
}

// WriteSnapshotFrames writes a snapshot covering segments 1..covered:
// emit is called once with a write function that frames and appends
// one payload per call; the file goes to a temporary name, is fsynced,
// and renamed into place (then the directory is fsynced), so a crash
// at any point leaves either the old recovery inputs or the new ones —
// never a half-snapshot under the final name.
func WriteSnapshotFrames(dir string, covered int, emit func(write func(payload []byte) error) error) (int64, error) {
	tmp := filepath.Join(dir, snapTmpName)
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("storage: snapshot create: %w", err)
	}
	var n int64
	var buf []byte
	write := func(payload []byte) error {
		buf = AppendFrame(buf[:0], payload)
		if _, err := f.Write(buf); err != nil {
			return fmt.Errorf("storage: snapshot write: %w", err)
		}
		n += int64(len(buf))
		return nil
	}
	fail := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := emit(write); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("storage: snapshot sync: %w", err))
	}
	if err := f.Close(); err != nil {
		return fail(fmt.Errorf("storage: snapshot close: %w", err))
	}
	final := filepath.Join(dir, snapName(covered))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("storage: snapshot rename: %w", err)
	}
	if err := fsyncDir(dir); err != nil {
		return 0, fmt.Errorf("storage: snapshot dir sync: %w", err)
	}
	return n, nil
}

// RemoveCoveredSegments deletes the segment files a durable snapshot
// covering 1..covered made obsolete, plus any older snapshots, then
// syncs the directory.
func RemoveCoveredSegments(dir string, covered int) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if seg.n <= covered {
			if err := os.Remove(filepath.Join(dir, seg.name)); err != nil {
				return fmt.Errorf("storage: compact remove %s: %w", seg.name, err)
			}
		}
	}
	snaps, err := listSnapshots(dir)
	if err != nil {
		return err
	}
	for _, sn := range snaps {
		if sn.n < covered {
			os.Remove(filepath.Join(dir, sn.name)) // best effort
		}
	}
	return fsyncDir(dir)
}
