package scriptsim

import (
	"fmt"
	"sort"

	"fpdyn/internal/hashutil"
)

// Matrix is a featurized corpus: one row per trace, one column per
// distinct API (sorted by name), X[i][j] = how often trace i called
// API j. The shape is wide and mostly zero — the script-detection
// matrix internal/mlearn's sparse column path exists for.
type Matrix struct {
	APIs    []string    // column names, ascending
	Scripts []string    // row names, in trace order
	X       [][]float64 // API-count rows
	Y       []int       // 1 = fingerprinting
}

// Featurize builds the API-count matrix over the union of APIs seen
// in the corpus. It is total on malformed input — empty or nil
// traces, empty API names, duplicate APIs, and negative or zero
// counts never panic: empty names and non-positive counts are
// dropped, duplicates aggregate, and a trace with no valid calls
// becomes an all-zero row. The output is a pure function of the
// trace list (column order is sorted, row order is input order).
func Featurize(traces []Trace) *Matrix {
	vocab := make(map[string]int)
	for _, tr := range traces {
		for _, c := range tr.Calls {
			if c.API == "" || c.Count <= 0 {
				continue
			}
			vocab[c.API] = 0
		}
	}
	apis := make([]string, 0, len(vocab))
	for api := range vocab {
		apis = append(apis, api)
	}
	sort.Strings(apis)
	for j, api := range apis {
		vocab[api] = j
	}

	m := &Matrix{
		APIs:    apis,
		Scripts: make([]string, len(traces)),
		X:       make([][]float64, len(traces)),
		Y:       make([]int, len(traces)),
	}
	for i, tr := range traces {
		m.Scripts[i] = tr.Script
		row := make([]float64, len(apis))
		for _, c := range tr.Calls {
			if c.API == "" || c.Count <= 0 {
				continue
			}
			row[vocab[c.API]] += float64(c.Count)
		}
		m.X[i] = row
		if tr.Fingerprinting {
			m.Y[i] = 1
		}
	}
	return m
}

// Density is the fraction of nonzero cells — the quantity that
// decides whether the sparse column path pays off.
func (m *Matrix) Density() float64 {
	if len(m.X) == 0 || len(m.APIs) == 0 {
		return 0
	}
	nnz := 0
	for _, row := range m.X {
		for _, v := range row {
			if v != 0 {
				nnz++
			}
		}
	}
	return float64(nnz) / float64(len(m.X)*len(m.APIs))
}

// Digest is a canonical SHA-1 over the matrix — column names, row
// names, counts and labels — used by the golden determinism tests and
// the worker-invariance checks.
func (m *Matrix) Digest() string {
	h := uint64(0)
	for _, api := range m.APIs {
		h = hashutil.Combine(h, hashutil.Hash64(api))
	}
	for i, row := range m.X {
		h = hashutil.Combine(h, hashutil.Hash64(m.Scripts[i]))
		h = hashutil.Combine(h, uint64(m.Y[i]+1))
		for j, v := range row {
			if v != 0 {
				h = hashutil.Combine(h, uint64(j)+1)
				h = hashutil.Combine(h, uint64(v))
			}
		}
	}
	return hashutil.SHA1Hex(fmt.Sprintf("scriptsim:%d:%d:%016x", len(m.X), len(m.APIs), h))
}
