package scriptsim

import (
	"fmt"

	"fpdyn/internal/fontdb"
)

// The JS API surface the simulator draws from. Feature names follow
// the VisibleV8 convention FPClassifier trains on — `Receiver.member`
// — extended with an argument suffix (`Receiver.member:arg`) for the
// probe-style calls whose *argument* is the signal: per-font
// measureText probes, per-pname WebGL getParameter sweeps, per-prop
// style reads. The fingerprinting families mirror the feature
// surfaces the population simulator already models (canvas, fonts,
// WebGL, navigator, screen, plugins, audio, storage toggles,
// timezone), so the two workloads describe one consistent world.

// apiFamily groups the vocabulary for the generator: fingerprinting
// scripts sample whole families; benign scripts sample mostly the
// benign tail plus the handful of crossover APIs real sites touch.
type apiFamily struct {
	name string
	apis []string
}

// arged renders an argumented feature name.
func arged(api, arg string) string { return api + ":" + arg }

// canvasAPIs: the canvas-rendering fingerprint (paper §2.1 "canvas").
var canvasAPIs = []string{
	"HTMLCanvasElement.getContext",
	"HTMLCanvasElement.toDataURL",
	"HTMLCanvasElement.width",
	"HTMLCanvasElement.height",
	"CanvasRenderingContext2D.fillText",
	"CanvasRenderingContext2D.strokeText",
	"CanvasRenderingContext2D.fillRect",
	"CanvasRenderingContext2D.arc",
	"CanvasRenderingContext2D.bezierCurveTo",
	"CanvasRenderingContext2D.isPointInPath",
	"CanvasRenderingContext2D.getImageData",
	"CanvasRenderingContext2D.font",
	"CanvasRenderingContext2D.fillStyle",
	"CanvasRenderingContext2D.globalCompositeOperation",
	"CanvasRenderingContext2D.shadowBlur",
	"CanvasRenderingContext2D.shadowColor",
	"CanvasRenderingContext2D.rotate",
	"HTMLCanvasElement.toBlob",
}

// fontProbes: per-font measureText probe features over the same font
// universe the population draws installed-font sets from. Shared by
// the fingerprinting fonts family and the benign font-picker profile.
func fontProbes() []string {
	var fonts []string
	fonts = append(fonts, fontdb.BaseWindows...)
	fonts = append(fonts, fontdb.BaseMac...)
	fonts = append(fonts, fontdb.BaseLinux...)
	fonts = append(fonts, fontdb.OfficeDetect...)
	fonts = append(fonts, fontdb.LibreOffice...)
	fonts = append(fonts, fontdb.Adobe...)
	fonts = append(fonts, fontdb.WPS...)
	fonts = append(fonts, fontdb.Firefox57...)
	fonts = append(fonts, fontdb.OptionalWindows...)
	seen := make(map[string]bool, len(fonts))
	var out []string
	for _, f := range fonts {
		if seen[f] {
			continue
		}
		seen[f] = true
		out = append(out, arged("CanvasRenderingContext2D.measureText", f))
	}
	return out
}

// fontProbeAPIs: the full fonts family — the probe features plus the
// CSS Font Loading API checks.
func fontProbeAPIs() []string {
	return append([]string{
		"FontFaceSet.check",
		"FontFaceSet.ready",
		"CanvasRenderingContext2D.measureText",
	}, fontProbes()...)
}

// webglAPIs: the GPU fingerprint — a getParameter pname sweep plus
// the debug-renderer extension and a render-and-read probe.
func webglAPIs() []string {
	pnames := []string{
		"VENDOR", "RENDERER", "VERSION", "SHADING_LANGUAGE_VERSION",
		"UNMASKED_VENDOR_WEBGL", "UNMASKED_RENDERER_WEBGL",
		"MAX_TEXTURE_SIZE", "MAX_RENDERBUFFER_SIZE", "MAX_VIEWPORT_DIMS",
		"MAX_VERTEX_ATTRIBS", "MAX_VERTEX_UNIFORM_VECTORS",
		"MAX_FRAGMENT_UNIFORM_VECTORS", "MAX_VARYING_VECTORS",
		"MAX_COMBINED_TEXTURE_IMAGE_UNITS", "MAX_CUBE_MAP_TEXTURE_SIZE",
		"ALIASED_LINE_WIDTH_RANGE", "ALIASED_POINT_SIZE_RANGE",
		"DEPTH_BITS", "STENCIL_BITS", "RED_BITS", "GREEN_BITS", "BLUE_BITS",
		"ALPHA_BITS", "SUBPIXEL_BITS",
	}
	out := []string{
		"WebGLRenderingContext.getSupportedExtensions",
		"WebGLRenderingContext.getContextAttributes",
		"WebGLRenderingContext.readPixels",
		"WebGLRenderingContext.getShaderPrecisionFormat",
		arged("WebGLRenderingContext.getExtension", "WEBGL_debug_renderer_info"),
	}
	for _, p := range pnames {
		out = append(out, arged("WebGLRenderingContext.getParameter", p))
	}
	return out
}

// navigatorAPIs: the HTTP/JS environment enumeration (UA, languages,
// platform, hardware hints, plugin/mimeType tables, storage toggles).
var navigatorAPIs = []string{
	"Navigator.userAgent",
	"Navigator.appVersion",
	"Navigator.appName",
	"Navigator.platform",
	"Navigator.language",
	"Navigator.languages",
	"Navigator.cookieEnabled",
	"Navigator.doNotTrack",
	"Navigator.hardwareConcurrency",
	"Navigator.deviceMemory",
	"Navigator.maxTouchPoints",
	"Navigator.vendor",
	"Navigator.product",
	"Navigator.productSub",
	"Navigator.oscpu",
	"Navigator.buildID",
	"Navigator.webdriver",
	"Navigator.getBattery",
	"Navigator.javaEnabled",
}

// pluginAPIs: plugin/mimeType table walks (Table 1's plugin rows).
var pluginAPIs = []string{
	"Navigator.plugins",
	"Navigator.mimeTypes",
	"PluginArray.length",
	"PluginArray.item",
	"Plugin.name",
	"Plugin.description",
	"Plugin.filename",
	"MimeTypeArray.length",
	"MimeType.type",
	"MimeType.suffixes",
}

// screenAPIs: screen geometry and density.
var screenAPIs = []string{
	"Screen.width",
	"Screen.height",
	"Screen.availWidth",
	"Screen.availHeight",
	"Screen.availTop",
	"Screen.availLeft",
	"Screen.colorDepth",
	"Screen.pixelDepth",
	"Window.devicePixelRatio",
	"Window.screenX",
	"Window.screenY",
	"Window.outerWidth",
	"Window.outerHeight",
}

// audioAPIs: the OfflineAudioContext rendering fingerprint.
var audioAPIs = []string{
	"OfflineAudioContext.createOscillator",
	"OfflineAudioContext.createDynamicsCompressor",
	"OfflineAudioContext.startRendering",
	"OfflineAudioContext.oncomplete",
	"AudioContext.sampleRate",
	"AudioContext.destination",
	"AudioContext.createAnalyser",
	"AnalyserNode.getFloatFrequencyData",
	"AudioBuffer.getChannelData",
	"DynamicsCompressorNode.threshold",
	"DynamicsCompressorNode.knee",
	"DynamicsCompressorNode.ratio",
}

// environmentAPIs: timezone, storage toggles and the legacy IE/WebSQL
// probes (Table 1's addBehavior/openDatabase rows).
var environmentAPIs = []string{
	"Date.getTimezoneOffset",
	"Intl.DateTimeFormat.resolvedOptions",
	"Window.localStorage",
	"Window.sessionStorage",
	"Window.indexedDB",
	"Window.openDatabase",
	"HTMLElement.addBehavior",
	"Storage.setItem",
	"Storage.getItem",
	"RTCPeerConnection.createDataChannel",
	"RTCPeerConnection.createOffer",
	"RTCPeerConnection.onicecandidate",
}

// fingerprintFamilies is what a fingerprinting script samples from —
// one entry per feature surface the population models.
func fingerprintFamilies() []apiFamily {
	return []apiFamily{
		{"canvas", canvasAPIs},
		{"fonts", fontProbeAPIs()},
		{"webgl", webglAPIs()},
		{"navigator", navigatorAPIs},
		{"plugins", pluginAPIs},
		{"screen", screenAPIs},
		{"audio", audioAPIs},
		{"environment", environmentAPIs},
	}
}

// crossoverAPIs are fingerprint-surface reads that legitimately appear
// in benign code — responsive layout reads screen geometry, analytics
// reads the UA and language, feature detection touches storage — so
// their presence alone must not separate the classes.
var crossoverAPIs = []string{
	"Navigator.userAgent",
	"Navigator.language",
	"Navigator.cookieEnabled",
	"Screen.width",
	"Screen.height",
	"Window.devicePixelRatio",
	"Window.localStorage",
	"Storage.setItem",
	"Storage.getItem",
	"Date.getTimezoneOffset",
	"HTMLCanvasElement.getContext",
	"CanvasRenderingContext2D.fillRect",
}

// benignAPIs is the long tail of ordinary page-script activity: DOM
// traversal and mutation, events, timers, network, plus parameterized
// style/attribute/event features that widen the matrix the way real
// VV8 logs do.
func benignAPIs() []string {
	out := []string{
		"Document.getElementById",
		"Document.querySelector",
		"Document.querySelectorAll",
		"Document.createElement",
		"Document.createTextNode",
		"Document.cookie",
		"Document.title",
		"Document.readyState",
		"Document.referrer",
		"Element.appendChild",
		"Element.removeChild",
		"Element.insertBefore",
		"Element.cloneNode",
		"Element.getBoundingClientRect",
		"Element.classList",
		"Element.innerHTML",
		"Element.textContent",
		"Element.scrollIntoView",
		"EventTarget.addEventListener",
		"EventTarget.removeEventListener",
		"Window.setTimeout",
		"Window.setInterval",
		"Window.clearTimeout",
		"Window.requestAnimationFrame",
		"Window.getComputedStyle",
		"Window.matchMedia",
		"Window.scrollTo",
		"Window.innerWidth",
		"Window.innerHeight",
		"Window.location",
		"Window.history",
		"Window.fetch",
		"XMLHttpRequest.open",
		"XMLHttpRequest.send",
		"XMLHttpRequest.setRequestHeader",
		"JSON.parse",
		"JSON.stringify",
		"Promise.then",
		"Array.forEach",
		"Object.keys",
		"MutationObserver.observe",
		"IntersectionObserver.observe",
		"ResizeObserver.observe",
		"Performance.now",
		"Performance.mark",
		"Console.log",
		"Console.warn",
		"History.pushState",
		"URL.createObjectURL",
		"Node.contains",
		"Range.getClientRects",
	}
	styleProps := []string{
		"display", "visibility", "opacity", "color", "background-color",
		"width", "height", "margin", "padding", "border", "position",
		"top", "left", "right", "bottom", "z-index", "transform",
		"transition", "font-size", "font-family", "line-height",
		"text-align", "overflow", "cursor", "flex", "grid-template-columns",
		"gap", "box-shadow", "border-radius", "max-width", "min-height",
		"white-space", "letter-spacing", "pointer-events", "user-select",
		"animation", "content", "float", "clear", "vertical-align",
	}
	for _, p := range styleProps {
		out = append(out, arged("CSSStyleDeclaration.setProperty", p))
		out = append(out, arged("CSSStyleDeclaration.getPropertyValue", p))
	}
	attrs := []string{
		"id", "class", "href", "src", "alt", "title", "style", "type",
		"value", "name", "placeholder", "disabled", "checked", "selected",
		"tabindex", "role", "aria-label", "aria-hidden", "aria-expanded",
		"data-id", "data-src", "data-index", "data-toggle", "data-target",
		"data-action", "data-value", "data-state", "data-track", "rel",
		"target", "width", "height", "loading", "srcset", "sizes",
	}
	for _, a := range attrs {
		out = append(out, arged("Element.setAttribute", a))
		out = append(out, arged("Element.getAttribute", a))
	}
	events := []string{
		"click", "scroll", "resize", "load", "unload", "input", "change",
		"submit", "focus", "blur", "keydown", "keyup", "mousedown",
		"mouseup", "mousemove", "mouseover", "mouseout", "touchstart",
		"touchend", "touchmove", "wheel", "visibilitychange", "popstate",
		"hashchange", "error", "message", "storage", "animationend",
		"transitionend", "pointerdown", "pointerup", "dragstart", "drop",
	}
	for _, e := range events {
		out = append(out, arged("EventTarget.addEventListener", e))
	}
	for i := 0; i < 200; i++ {
		// Site-specific custom events and dataset keys: the long tail
		// that makes real feature matrices wide and mostly zero.
		out = append(out, arged("EventTarget.dispatchEvent", fmt.Sprintf("app-event-%03d", i)))
	}
	return out
}
