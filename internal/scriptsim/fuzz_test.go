package scriptsim

import (
	"encoding/json"
	"testing"
)

// FuzzFeaturize: the featurizer must be total — arbitrary trace lists
// (malformed names, negative counts, duplicate APIs, empty traces)
// never panic, and the output matrix is always rectangular with rows
// matching the input order.
func FuzzFeaturize(f *testing.F) {
	seed := func(traces []Trace) {
		b, err := json.Marshal(traces)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(nil)
	seed([]Trace{{Script: "a.js", Calls: []Call{{API: "A.a", Count: 1}}}})
	seed([]Trace{
		{Script: "", Fingerprinting: true, Calls: []Call{{API: "", Count: -1}, {API: "B.b", Count: 0}}},
		{Script: "dup.js", Calls: []Call{{API: "A.a", Count: 2}, {API: "A.a", Count: 3}}},
		{Script: "empty.js"},
	})
	seed(Simulate(Config{Scripts: 5, Seed: 1}))

	f.Fuzz(func(t *testing.T, data []byte) {
		var traces []Trace
		if err := json.Unmarshal(data, &traces); err != nil {
			t.Skip()
		}
		m := Featurize(traces)
		if len(m.X) != len(traces) || len(m.Scripts) != len(traces) || len(m.Y) != len(traces) {
			t.Fatalf("matrix has %d/%d/%d rows for %d traces", len(m.X), len(m.Scripts), len(m.Y), len(traces))
		}
		for i, row := range m.X {
			if len(row) != len(m.APIs) {
				t.Fatalf("row %d has %d cells for %d columns", i, len(row), len(m.APIs))
			}
			for j, v := range row {
				if v < 0 {
					t.Fatalf("row %d col %d holds negative count %v", i, j, v)
				}
			}
		}
		// Digest and density must also be total.
		_ = m.Digest()
		_ = m.Density()
	})
}
