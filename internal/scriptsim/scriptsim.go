// Package scriptsim simulates per-script JavaScript API-call traces
// for the fingerprinting-script detection task — the companion
// workload to the paper's fingerprint-dynamics classification.
// FPClassifier (VisibleV8 logs) and Durey et al.'s iterative
// technique both detect fingerprinting *scripts* from which JS APIs a
// script touches and how often; this package generates a labelled
// population of such traces so internal/mlearn can train and serve
// that detector on a synthetic-but-structured corpus.
//
// The vocabulary (apis.go) draws its fingerprinting families from the
// same feature surfaces the fingerprint population models — canvas,
// fonts (per-font measureText probes over the fontdb universe),
// WebGL parameter sweeps, navigator enumeration, screen geometry,
// plugin table walks, audio rendering, timezone/storage — plus a long
// benign tail of DOM/style/event features. Featurized (featurize.go),
// a corpus becomes a wide, mostly-zero API-count matrix: the matrix
// shape that exercises mlearn's sparse column path.
//
// Determinism contract: Simulate is a pure function of Config minus
// Workers. Script i derives its private RNG from splitmix64(Seed, i),
// so generation parallelizes with byte-identical output at any worker
// count, and golden digests pin the corpus per seed.
package scriptsim

import (
	"fmt"
	"math/rand"
	"sort"

	"fpdyn/internal/parallel"
)

// Call is one distinct API observed in a script's trace with its
// total call count.
type Call struct {
	API   string `json:"api"`
	Count int    `json:"count"`
}

// Trace is one script's aggregated API usage with its ground-truth
// label.
type Trace struct {
	Script         string `json:"script"`
	Fingerprinting bool   `json:"fingerprinting"`
	Calls          []Call `json:"calls"` // sorted by API name
}

// Config controls corpus generation. The zero value of a field
// selects its default.
type Config struct {
	Scripts int     // number of scripts, default 2000
	FPFrac  float64 // fraction of fingerprinting scripts, default 0.3
	Seed    int64
	// Workers caps the generation pool (1 serial, else NumCPU); the
	// corpus is identical for every setting.
	Workers int
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Scripts == 0 {
		c.Scripts = 2000
	}
	if c.FPFrac == 0 {
		c.FPFrac = 0.3
	}
	return c
}

// splitmix64 spreads (seed, index) into an uncorrelated per-script
// stream seed — the same derivation idiom the forest trainer uses for
// per-tree RNGs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func scriptSeed(seed int64, i int) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)) ^ uint64(i)))
}

// Simulate generates the labelled corpus. Scripts 0..k-1 are
// fingerprinting (k = round(Scripts·FPFrac)) and the rest benign;
// each script's content depends only on (Seed, its index), never on
// scheduling.
func Simulate(cfg Config) []Trace {
	cfg = cfg.Defaults()
	nFP := int(float64(cfg.Scripts)*cfg.FPFrac + 0.5)
	families := fingerprintFamilies()
	benign := benignAPIs()
	return parallel.Map(parallel.Resolve(cfg.Workers), cfg.Scripts, func(i int) Trace {
		rng := rand.New(rand.NewSource(scriptSeed(cfg.Seed, i)))
		tr := Trace{
			Script:         fmt.Sprintf("s%05d.js", i),
			Fingerprinting: i < nFP,
		}
		calls := make(map[string]int)
		if tr.Fingerprinting {
			genFingerprinting(rng, families, benign, calls)
		} else {
			genBenign(rng, benign, calls)
		}
		tr.Calls = sortedCalls(calls)
		return tr
	})
}

// sortedCalls flattens the count map in API-name order — the
// deterministic serialization every digest and featurization step
// relies on.
func sortedCalls(m map[string]int) []Call {
	out := make([]Call, 0, len(m))
	for api, n := range m {
		out = append(out, Call{api, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].API < out[j].API })
	return out
}

// bump adds a geometric-ish call count: most APIs are touched once or
// twice, a few in a loop.
func bump(rng *rand.Rand, calls map[string]int, api string, maxBurst int) {
	n := 1
	for n < maxBurst && rng.Float64() < 0.35 {
		n++
	}
	calls[api] += n
}

// sampleSubset draws k distinct APIs from pool into calls.
func sampleSubset(rng *rand.Rand, pool []string, k, maxBurst int, calls map[string]int) {
	if k >= len(pool) {
		for _, api := range pool {
			bump(rng, calls, api, maxBurst)
		}
		return
	}
	seen := make(map[int]bool, k)
	for len(seen) < k {
		j := rng.Intn(len(pool))
		if seen[j] {
			continue
		}
		seen[j] = true
		bump(rng, calls, pool[j], maxBurst)
	}
}

// genFingerprinting emits a fingerprinting script: a broad sweep over
// several fingerprint families — the near-exhaustive enumeration that
// distinguishes collection from incidental use — wrapped in a benign
// carrier (fingerprinters ship inside ordinary bundles). A quarter of
// the scripts probe only one or two families at partial coverage —
// the hard positives Durey et al.'s iterative rounds exist for, and
// the reason the reported recall sits below 1.
func genFingerprinting(rng *rand.Rand, families []apiFamily, benign []string, calls map[string]int) {
	nFam := 4 + rng.Intn(len(families)-3) // 4..len
	loFrac, hiFrac := 0.6, 1.0            // near-exhaustive family coverage
	if rng.Float64() < 0.25 {
		nFam = 1 + rng.Intn(2) // partial fingerprinter: 1-2 families...
		loFrac, hiFrac = 0.25, 0.6
	}
	order := rng.Perm(len(families))
	for _, fi := range order[:nFam] {
		fam := families[fi]
		frac := loFrac + (hiFrac-loFrac)*rng.Float64()
		k := int(frac * float64(len(fam.apis)))
		if k < 1 {
			k = 1
		}
		sampleSubset(rng, fam.apis, k, 3, calls)
	}
	// The benign carrier the fingerprinter is bundled with.
	sampleSubset(rng, benign, 5+rng.Intn(40), 6, calls)
}

// genBenign emits an ordinary page script: a modest slice of the
// benign tail plus, frequently, a few crossover reads (UA sniffing,
// screen geometry for layout) — so "touched navigator.userAgent"
// alone cannot separate the classes. Two hard-negative profiles keep
// precision below 1: chart libraries hammer the canvas surface
// harder than some fingerprinters do, and compat shims sweep a broad
// slice of navigator/screen/environment without ever rendering.
func genBenign(rng *rand.Rand, benign []string, calls map[string]int) {
	sampleSubset(rng, benign, 10+rng.Intn(70), 8, calls)
	if rng.Float64() < 0.7 {
		sampleSubset(rng, crossoverAPIs, 1+rng.Intn(4), 4, calls)
	}
	switch p := rng.Float64(); {
	case p < 0.10: // chart/graphics library
		k := len(canvasAPIs)/2 + rng.Intn(len(canvasAPIs)/2+1)
		sampleSubset(rng, canvasAPIs, k, 12, calls)
		sampleSubset(rng, screenAPIs, 1+rng.Intn(4), 4, calls)
		// Text measurement for axis labels — a handful of measureText
		// probes, not the exhaustive per-font sweep.
		calls["CanvasRenderingContext2D.measureText"] += 2 + rng.Intn(12)
	case p < 0.15: // feature-detection / compat shim
		sampleSubset(rng, navigatorAPIs, 4+rng.Intn(8), 2, calls)
		sampleSubset(rng, environmentAPIs, 2+rng.Intn(5), 2, calls)
		sampleSubset(rng, screenAPIs, 1+rng.Intn(5), 2, calls)
	case p < 0.18: // audio player
		sampleSubset(rng, audioAPIs, 2+rng.Intn(5), 4, calls)
	case p < 0.22: // font-picker widget: probes a real font list via
		// per-font measureText — exactly what a partial font
		// fingerprinter looks like, minus the other families.
		fonts := fontProbes()
		sampleSubset(rng, fonts, 8+rng.Intn(len(fonts)/3), 2, calls)
		sampleSubset(rng, canvasAPIs[:6], 1+rng.Intn(3), 3, calls)
	}
}
