package scriptsim

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"fpdyn/internal/mlearn"
)

// TestGoldenDigest pins the corpus per seed: any change to the
// generator's RNG consumption, the vocabulary, or the featurizer is a
// corpus change and must update these digests deliberately.
func TestGoldenDigest(t *testing.T) {
	cases := []struct {
		cfg    Config
		digest string
	}{
		{Config{Seed: 1}, "538838afc53f8f47049fe4a7d8fd3b5540aef23e"},
		{Config{Seed: 42}, "a48f2a52b27f355ffcdeffadf821ee254aa5466b"},
		{Config{Scripts: 300, Seed: 7}, "ebb63bb041353913fffbcfde4ace4b17a2027f72"},
	}
	for _, tc := range cases {
		m := Featurize(Simulate(tc.cfg))
		if got := m.Digest(); got != tc.digest {
			t.Errorf("cfg %+v: digest %s, want %s", tc.cfg, got, tc.digest)
		}
	}
}

// TestWorkerInvariance: the corpus is a pure function of Config minus
// Workers — any pool size, including serial, yields identical traces.
func TestWorkerInvariance(t *testing.T) {
	ref := Simulate(Config{Scripts: 400, Seed: 9, Workers: 1})
	for _, workers := range []int{2, 3, 8, 0} {
		got := Simulate(Config{Scripts: 400, Seed: 9, Workers: workers})
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("Workers=%d corpus differs from Workers=1", workers)
		}
	}
}

func TestSimulateShape(t *testing.T) {
	traces := Simulate(Config{Scripts: 1000, FPFrac: 0.3, Seed: 3})
	if len(traces) != 1000 {
		t.Fatalf("got %d traces, want 1000", len(traces))
	}
	nFP := 0
	names := make(map[string]bool)
	for i, tr := range traces {
		if tr.Fingerprinting {
			nFP++
		}
		if names[tr.Script] {
			t.Fatalf("duplicate script name %q", tr.Script)
		}
		names[tr.Script] = true
		if len(tr.Calls) == 0 {
			t.Fatalf("trace %d has no calls", i)
		}
		if !sort.SliceIsSorted(tr.Calls, func(a, b int) bool { return tr.Calls[a].API < tr.Calls[b].API }) {
			t.Fatalf("trace %d calls not sorted by API", i)
		}
		for _, c := range tr.Calls {
			if c.API == "" || c.Count <= 0 {
				t.Fatalf("trace %d emits invalid call %+v", i, c)
			}
		}
	}
	if nFP != 300 {
		t.Fatalf("got %d fingerprinting scripts, want 300", nFP)
	}
}

// TestFingerprintersSweepWider: on average, fingerprinting traces touch
// far more of the fingerprint-surface vocabulary than benign ones — the
// separation the detector learns.
func TestFingerprintersSweepWider(t *testing.T) {
	traces := Simulate(Config{Scripts: 600, Seed: 11})
	isSurface := func(api string) bool {
		return strings.Contains(api, "getParameter:") ||
			strings.Contains(api, "measureText:") ||
			strings.HasPrefix(api, "Navigator.") ||
			strings.HasPrefix(api, "PluginArray.")
	}
	var fpSum, beSum, fpN, beN float64
	for _, tr := range traces {
		n := 0.0
		for _, c := range tr.Calls {
			if isSurface(c.API) {
				n++
			}
		}
		if tr.Fingerprinting {
			fpSum += n
			fpN++
		} else {
			beSum += n
			beN++
		}
	}
	fpMean, beMean := fpSum/fpN, beSum/beN
	if fpMean < 2*beMean {
		t.Fatalf("fingerprinting scripts touch %.1f surface APIs vs benign %.1f — classes not separated", fpMean, beMean)
	}
}

// TestFeaturize pins the matrix layout and the malformed-input policy.
func TestFeaturize(t *testing.T) {
	traces := []Trace{
		{Script: "a.js", Fingerprinting: true, Calls: []Call{
			{API: "B.b", Count: 2}, {API: "A.a", Count: 1},
			{API: "A.a", Count: 3},  // duplicate: aggregates
			{API: "", Count: 5},     // empty name: dropped
			{API: "C.c", Count: 0},  // zero count: dropped
			{API: "D.d", Count: -2}, // negative: dropped
		}},
		{Script: "b.js", Calls: nil}, // empty trace: all-zero row
	}
	m := Featurize(traces)
	if !reflect.DeepEqual(m.APIs, []string{"A.a", "B.b"}) {
		t.Fatalf("APIs = %v", m.APIs)
	}
	if !reflect.DeepEqual(m.X, [][]float64{{4, 2}, {0, 0}}) {
		t.Fatalf("X = %v", m.X)
	}
	if !reflect.DeepEqual(m.Y, []int{1, 0}) {
		t.Fatalf("Y = %v", m.Y)
	}
	if !reflect.DeepEqual(m.Scripts, []string{"a.js", "b.js"}) {
		t.Fatalf("Scripts = %v", m.Scripts)
	}
	empty := Featurize(nil)
	if len(empty.APIs) != 0 || len(empty.X) != 0 || empty.Density() != 0 {
		t.Fatal("nil corpus must featurize to an empty matrix")
	}
}

// TestEndToEndQuality trains the detector on a featurized corpus and
// checks it lands in the regime the hard negatives were tuned for:
// high precision, imperfect recall (partial fingerprinters), both well
// above chance. Uses the sparse column path — the matrix this package
// exists to produce is that path's target shape.
func TestEndToEndQuality(t *testing.T) {
	m := Featurize(Simulate(Config{Scripts: 1200, Seed: 17}))
	if len(m.APIs) < 500 {
		t.Fatalf("vocabulary only %d APIs — corpus not wide", len(m.APIs))
	}
	if d := m.Density(); d > 0.25 {
		t.Fatalf("density %.3f — corpus not sparse", d)
	}
	train, test, err := mlearn.StratifiedSplit(m.Y, 0.3, 17)
	if err != nil {
		t.Fatal(err)
	}
	Xtr := make([][]float64, len(train))
	ytr := make([]int, len(train))
	for i, r := range train {
		Xtr[i], ytr[i] = m.X[r], m.Y[r]
	}
	f, err := mlearn.TrainForest(Xtr, ytr, mlearn.ForestConfig{
		Seed: 17, NumTrees: 15, MaxDepth: mlearn.Unlimited, Columns: mlearn.ColumnsSparse,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := mlearn.EvaluateForest(f, m.X, m.Y, test, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p := c.Precision(); p < 0.9 {
		t.Fatalf("precision %.3f < 0.9 (confusion %+v)", p, c)
	}
	if r := c.Recall(); r < 0.8 {
		t.Fatalf("recall %.3f < 0.8 (confusion %+v)", r, c)
	}
	if f1 := c.F1(); f1 < 0.88 {
		t.Fatalf("F1 %.3f < 0.88 (confusion %+v)", f1, c)
	}
}
