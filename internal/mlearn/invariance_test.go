package mlearn

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestWorkerCountInvariance is the package's determinism contract: the
// forest is a pure function of (X, y, cfg minus Workers). Every worker
// setting must produce byte-identical trees, probabilities and
// importances — tree t's RNG derives from Seed and t, never from
// scheduling, and importance vectors merge in tree order after the
// barrier.
func TestWorkerCountInvariance(t *testing.T) {
	X, y := xorData(500, 17)
	ref, err := TrainForest(X, y, ForestConfig{Seed: 17, NumTrees: 12, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 0} {
		f, err := TrainForest(X, y, ForestConfig{Seed: 17, NumTrees: 12, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, f) {
			t.Fatalf("Workers=%d forest differs from Workers=1 (trees not byte-identical)", workers)
		}
		if !reflect.DeepEqual(ref.Importances(), f.Importances()) {
			t.Fatalf("Workers=%d importances differ", workers)
		}
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 200; i++ {
			x := []float64{rng.Float64(), rng.Float64()}
			if ref.PredictProba(x) != f.PredictProba(x) {
				t.Fatalf("Workers=%d probability differs at %v", workers, x)
			}
		}
	}
}

// TestTreeSeedSpread sanity-checks the splitmix derivation: nearby tree
// indexes and seeds must not collide into identical streams.
func TestTreeSeedSpread(t *testing.T) {
	seen := make(map[int64]bool)
	for seed := int64(0); seed < 4; seed++ {
		for tr := 0; tr < 64; tr++ {
			s := treeSeed(seed, tr)
			if seen[s] {
				t.Fatalf("treeSeed collision at seed=%d tree=%d", seed, tr)
			}
			seen[s] = true
		}
	}
}

// TestSampleFeaturesDrawsDistinct pins the partial Fisher–Yates draw:
// always nFeat distinct in-range features, deterministic per stream.
func TestSampleFeaturesDrawsDistinct(t *testing.T) {
	X, y := xorData(20, 1)
	// Widen to 10 features so subsampling is non-trivial.
	for i := range X {
		row := make([]float64, 10)
		copy(row, X[i])
		for j := 2; j < 10; j++ {
			row[j] = float64(i*j%7) / 7
		}
		X[i] = row
	}
	cs := newColset(X)
	b := getTreeBuilder(cs, y, ForestConfig{}.Defaults(10), 3)
	defer putTreeBuilder(b)
	b.rng = rand.New(rand.NewSource(5))
	for f := range b.featPool { // growFrom's per-tree pool reset
		b.featPool[f] = f
	}
	var first [][]int
	for n := 0; n < 100; n++ {
		feats := b.sampleFeatures()
		if len(feats) != 3 {
			t.Fatalf("drew %d features, want 3", len(feats))
		}
		seen := make(map[int]bool)
		for _, f := range feats {
			if f < 0 || f >= 10 {
				t.Fatalf("feature %d out of range", f)
			}
			if seen[f] {
				t.Fatalf("duplicate feature %d in draw %v", f, feats)
			}
			seen[f] = true
		}
		first = append(first, append([]int(nil), feats...))
	}
	// Same stream → same sequence of draws.
	b2 := getTreeBuilder(cs, y, ForestConfig{}.Defaults(10), 3)
	defer putTreeBuilder(b2)
	b2.rng = rand.New(rand.NewSource(5))
	for f := range b2.featPool {
		b2.featPool[f] = f
	}
	for n := 0; n < 100; n++ {
		if got := b2.sampleFeatures(); !reflect.DeepEqual(got, first[n]) {
			t.Fatalf("draw %d not reproducible: %v vs %v", n, got, first[n])
		}
	}
}

// TestRejectedSplitAccruesNoImportance is the regression test for the
// Gini-importance inflation bug: a best split whose committed partition
// would violate MinLeaf is abandoned — the node stays a leaf — and must
// accrue no importance. The historical builder accrued before the
// MinLeaf check, so such phantom splits inflated their feature.
func TestRejectedSplitAccruesNoImportance(t *testing.T) {
	// One feature; a single outlier at 0, everything else at 1. The only
	// cut (between 0 and 1) strands one sample on the left, under
	// MinLeaf=2, so the split must be rejected.
	X := [][]float64{{0}, {1}, {1}, {1}, {1}, {1}, {1}, {1}}
	y := []int{1, 0, 0, 0, 0, 0, 0, 0}
	cfg := ForestConfig{MinLeaf: 2, FeatureFrac: 1}.Defaults(1)
	cs := newColset(X)
	b := getTreeBuilder(cs, y, cfg, 1)
	defer putTreeBuilder(b)
	counts := make([]int32, len(X))
	for i := range counts {
		counts[i] = 1 // exact sample: no bootstrap randomness
	}
	tr, imp := b.growFrom(counts, 1, rand.New(rand.NewSource(1)))
	if len(tr.feature) != 1 || tr.feature[0] != -1 {
		t.Fatalf("tree grew %d nodes (root feature %d), want a single leaf", len(tr.feature), tr.feature[0])
	}
	if imp[0] != 0 {
		t.Fatalf("rejected split accrued importance %v, want 0", imp[0])
	}

	// Control: the same shape with a committable 4/4 cut must both
	// split and accrue.
	X2 := [][]float64{{0}, {0}, {0}, {0}, {1}, {1}, {1}, {1}}
	y2 := []int{1, 1, 1, 1, 0, 0, 0, 0}
	cs2 := newColset(X2)
	b2 := getTreeBuilder(cs2, y2, cfg, 1)
	defer putTreeBuilder(b2)
	tr2, imp2 := b2.growFrom(counts, 4, rand.New(rand.NewSource(1)))
	if tr2.feature[0] != 0 {
		t.Fatalf("committable split not taken: root feature %d", tr2.feature[0])
	}
	if imp2[0] <= 0 {
		t.Fatalf("committed split accrued importance %v, want > 0", imp2[0])
	}
}

// TestColsetRanks pins the presort: every base order must walk its
// column in non-decreasing value order over all rows.
func TestColsetRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X := make([][]float64, 200)
	for i := range X {
		X[i] = []float64{rng.Float64(), float64(rng.Intn(5)), -rng.Float64()}
	}
	cs := newColset(X)
	for f := 0; f < cs.d; f++ {
		if len(cs.base[f]) != len(X) {
			t.Fatalf("feature %d: %d ranks for %d rows", f, len(cs.base[f]), len(X))
		}
		for k := 1; k < len(cs.base[f]); k++ {
			if cs.cols[f][cs.base[f][k-1]] > cs.cols[f][cs.base[f][k]] {
				t.Fatalf("feature %d not sorted at rank %d", f, k)
			}
		}
	}
}
