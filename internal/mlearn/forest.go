// Package mlearn is a from-scratch random-forest implementation (bagged
// CART trees, Gini impurity, per-split feature subsampling) — the
// learning machinery behind the learning-based FP-Stalker baseline. The
// original used scikit-learn; this reimplementation keeps the same
// algorithm family so the reproduction exhibits both its accuracy
// behaviour and its scalability wall (Figure 10's observation that the
// learning variant cannot keep up at dataset scale).
//
// Only binary classification with probability output is provided; that
// is all FP-Stalker's "same browser instance?" model needs.
package mlearn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ForestConfig controls training. Zero values select sensible defaults
// (see Defaults).
type ForestConfig struct {
	NumTrees    int     // default 30
	MaxDepth    int     // default 12
	MinLeaf     int     // minimum samples per leaf, default 2
	FeatureFrac float64 // fraction of features tried per split, default sqrt(d)/d
	Seed        int64
}

// Defaults fills unset fields.
func (c ForestConfig) Defaults(numFeatures int) ForestConfig {
	if c.NumTrees == 0 {
		c.NumTrees = 30
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 2
	}
	if c.FeatureFrac == 0 {
		c.FeatureFrac = math.Sqrt(float64(numFeatures)) / float64(numFeatures)
	}
	return c
}

// node is one tree node in the flattened representation.
type node struct {
	feature   int32   // split feature; -1 for leaves
	threshold float64 // go left if x[feature] <= threshold
	left      int32
	right     int32
	prob      float64 // leaf probability of class 1
}

type tree struct {
	nodes []node
}

// Forest is a trained random forest.
type Forest struct {
	trees       []tree
	numFeatures int
	importance  []float64 // accumulated Gini gain per feature
}

// TrainForest fits a forest on X (rows = samples) and binary labels y.
func TrainForest(X [][]float64, y []int, cfg ForestConfig) (*Forest, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("mlearn: bad training set: %d rows, %d labels", len(X), len(y))
	}
	d := len(X[0])
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("mlearn: row %d has %d features, want %d", i, len(row), d)
		}
	}
	for i, label := range y {
		if label != 0 && label != 1 {
			return nil, fmt.Errorf("mlearn: label %d at row %d; want 0/1", label, i)
		}
	}
	cfg = cfg.Defaults(d)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	f := &Forest{numFeatures: d, importance: make([]float64, d)}
	nFeat := int(math.Max(1, math.Round(cfg.FeatureFrac*float64(d))))

	for t := 0; t < cfg.NumTrees; t++ {
		// Bootstrap sample.
		idx := make([]int, len(X))
		for i := range idx {
			idx[i] = rng.Intn(len(X))
		}
		tr := tree{}
		b := &treeBuilder{
			X: X, y: y, cfg: cfg, rng: rng, nFeat: nFeat, imp: f.importance,
		}
		b.build(&tr, idx, 0)
		f.trees = append(f.trees, tr)
	}
	return f, nil
}

type treeBuilder struct {
	X     [][]float64
	y     []int
	cfg   ForestConfig
	rng   *rand.Rand
	nFeat int
	imp   []float64
}

// build grows a subtree over the sample indexes and returns its node
// index in tr.nodes.
func (b *treeBuilder) build(tr *tree, idx []int, depth int) int32 {
	pos := 0
	for _, i := range idx {
		pos += b.y[i]
	}
	prob := float64(pos) / float64(len(idx))
	me := int32(len(tr.nodes))
	tr.nodes = append(tr.nodes, node{feature: -1, prob: prob})

	if depth >= b.cfg.MaxDepth || len(idx) < 2*b.cfg.MinLeaf || pos == 0 || pos == len(idx) {
		return me
	}
	feat, thr, gain, ok := b.bestSplit(idx)
	if !ok {
		return me
	}
	b.imp[feat] += gain * float64(len(idx))
	var left, right []int
	for _, i := range idx {
		if b.X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinLeaf || len(right) < b.cfg.MinLeaf {
		return me
	}
	l := b.build(tr, left, depth+1)
	r := b.build(tr, right, depth+1)
	tr.nodes[me] = node{feature: int32(feat), threshold: thr, left: l, right: r, prob: prob}
	return me
}

// bestSplit finds the Gini-optimal (feature, threshold) among a random
// feature subset, returning the impurity gain for importance tracking.
func (b *treeBuilder) bestSplit(idx []int) (feature int, threshold float64, gain float64, ok bool) {
	d := len(b.X[0])
	feats := b.rng.Perm(d)[:b.nFeat]

	bestGain := 0.0
	type fv struct {
		v float64
		y int
	}
	vals := make([]fv, len(idx))
	// Parent impurity.
	pos := 0
	for _, i := range idx {
		pos += b.y[i]
	}
	n := float64(len(idx))
	p := float64(pos) / n
	parentGini := 2 * p * (1 - p)

	for _, f := range feats {
		for k, i := range idx {
			vals[k] = fv{b.X[i][f], b.y[i]}
		}
		sort.Slice(vals, func(a, c int) bool { return vals[a].v < vals[c].v })
		leftPos, leftN := 0, 0
		for k := 0; k < len(vals)-1; k++ {
			leftPos += vals[k].y
			leftN++
			if vals[k].v == vals[k+1].v {
				continue // cannot split between equal values
			}
			rightPos := pos - leftPos
			rightN := len(vals) - leftN
			pl := float64(leftPos) / float64(leftN)
			pr := float64(rightPos) / float64(rightN)
			gini := (float64(leftN)*2*pl*(1-pl) + float64(rightN)*2*pr*(1-pr)) / n
			if g := parentGini - gini; g > bestGain {
				bestGain = g
				feature = f
				threshold = (vals[k].v + vals[k+1].v) / 2
				ok = true
			}
		}
	}
	return feature, threshold, bestGain, ok
}

// Importances returns the per-feature Gini importance, normalized to
// sum to 1 (all zeros when the forest never split).
func (f *Forest) Importances() []float64 {
	out := make([]float64, len(f.importance))
	total := 0.0
	for _, v := range f.importance {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range f.importance {
		out[i] = v / total
	}
	return out
}

// PredictProba returns the forest-averaged probability of class 1.
func (f *Forest) PredictProba(x []float64) float64 {
	if len(x) != f.numFeatures {
		return math.NaN()
	}
	sum := 0.0
	for _, tr := range f.trees {
		sum += tr.predict(x)
	}
	return sum / float64(len(f.trees))
}

// PredictProbaAtLeast evaluates trees until the forest-averaged
// probability of class 1 either is fully determined or provably cannot
// reach threshold. When the probability clears the threshold it is
// returned exactly (every tree evaluated, identical to PredictProba);
// otherwise ok=false after however many trees settled it — each tree
// emits a probability in [0, 1], so once the partial sum plus the
// remaining tree count falls below threshold·len(trees) no suffix of
// evaluations can recover. Candidate-filtering hot paths that discard
// below-threshold pairs use this to skip most of the ensemble on clear
// rejects.
func (f *Forest) PredictProbaAtLeast(x []float64, threshold float64) (p float64, ok bool) {
	if len(x) != f.numFeatures {
		return math.NaN(), false
	}
	n := len(f.trees)
	need := threshold * float64(n)
	sum := 0.0
	for i, tr := range f.trees {
		sum += tr.predict(x)
		if sum+float64(n-1-i) < need {
			return 0, false
		}
	}
	p = sum / float64(n)
	return p, p >= threshold
}

// Predict returns the hard class under a 0.5 threshold.
func (f *Forest) Predict(x []float64) int {
	if f.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

func (t *tree) predict(x []float64) float64 {
	i := int32(0)
	for {
		nd := t.nodes[i]
		if nd.feature < 0 {
			return nd.prob
		}
		if x[nd.feature] <= nd.threshold {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}
