// Package mlearn is a from-scratch random-forest implementation (bagged
// CART trees, Gini impurity, per-split feature subsampling) — the
// learning machinery behind the learning-based FP-Stalker baseline. The
// original used scikit-learn; this reimplementation keeps the same
// algorithm family so the reproduction exhibits both its accuracy
// behaviour and its scalability wall (Figure 10's observation that the
// learning variant cannot keep up at dataset scale).
//
// The trainer is columnar: the training matrix is flattened into
// column-major storage with one presorted index array per feature, and
// every node's best-split search is a rank-ordered O(n) scan per
// candidate feature — no per-node sorts, no per-node allocations (see
// columnar.go). Trees train in parallel on the shared worker pool, each
// from its own splitmix-derived sub-RNG, so the forest is worker-count
// invariant: Workers=1 and Workers=N produce byte-identical trees,
// probabilities and importances. Trained trees live in a flattened
// structure-of-arrays layout walked by both the scalar predictors and
// the batch kernels in batch.go.
//
// Only binary classification with probability output is provided; that
// is all FP-Stalker's "same browser instance?" model needs.
package mlearn

import (
	"fmt"
	"math"
	"math/rand"

	"fpdyn/internal/parallel"
)

// ColumnPath selects the training-time column representation. Both
// paths train byte-identical forests (see sparse.go's equivalence
// contract); they differ only in memory and speed on a given matrix
// shape.
type ColumnPath int

const (
	// ColumnsAuto (the zero value) picks dense unless the matrix is
	// wide and mostly zero (see autoSparse), in which case the sparse
	// builder avoids the dense path's O(rows × features) per-worker
	// rank arrays.
	ColumnsAuto ColumnPath = iota
	// ColumnsDense forces the presorted dense rank path (columnar.go).
	ColumnsDense
	// ColumnsSparse forces the CSC gather-and-sort path (sparse.go).
	ColumnsSparse
)

func (p ColumnPath) String() string {
	switch p {
	case ColumnsAuto:
		return "auto"
	case ColumnsDense:
		return "dense"
	case ColumnsSparse:
		return "sparse"
	}
	return fmt.Sprintf("ColumnPath(%d)", int(p))
}

// Unlimited requests no cap for a config field that defaults on zero
// (MaxDepth, FeatureFrac): any negative value is accepted, this
// constant just names the idiom.
const Unlimited = -1

// ForestConfig controls training. Zero values select sensible
// defaults (see Defaults); MaxDepth and FeatureFrac additionally
// accept a negative sentinel ("unlimited"), because their zero value
// means "default", not "none".
type ForestConfig struct {
	NumTrees int // default 30
	// MaxDepth caps tree depth: 0 selects the default (12), negative
	// (Unlimited) removes the cap — trees grow until purity or MinLeaf.
	MaxDepth int
	MinLeaf  int // minimum samples per leaf, default 2
	// FeatureFrac is the fraction of features tried per split: 0
	// selects the default sqrt(d)/d, negative (Unlimited) tries every
	// feature at every split.
	FeatureFrac float64
	Seed        int64
	// Workers caps the tree-training pool: 1 is serial, anything else
	// resolves to NumCPU. The trained forest is identical for every
	// setting — each tree derives its RNG from Seed and its own index,
	// never from scheduling — so Workers is purely a throughput knob.
	Workers int
	// Columns selects the column representation the trainer uses; the
	// forest itself is identical either way.
	Columns ColumnPath
}

// maxDepthUnlimited is what a negative MaxDepth resolves to: deeper
// than any tree can get (growth is bounded by MinLeaf ≥ 1 long before
// this), so the depth check never fires.
const maxDepthUnlimited = math.MaxInt32

// Defaults fills unset fields and resolves the negative sentinels.
func (c ForestConfig) Defaults(numFeatures int) ForestConfig {
	if c.NumTrees == 0 {
		c.NumTrees = 30
	}
	switch {
	case c.MaxDepth == 0:
		c.MaxDepth = 12
	case c.MaxDepth < 0:
		c.MaxDepth = maxDepthUnlimited
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 2
	}
	switch {
	case c.FeatureFrac == 0:
		c.FeatureFrac = math.Sqrt(float64(numFeatures)) / float64(numFeatures)
	case c.FeatureFrac < 0:
		c.FeatureFrac = 1
	}
	return c
}

// Forest is a trained random forest in a flattened structure-of-arrays
// layout: all trees' nodes live in five parallel arrays, each tree
// occupying one contiguous node range rooted at roots[t]. Leaves carry
// feature == -1; interior nodes route x[feature] <= threshold to left,
// else right (both absolute node indices). Each tree is laid out in
// preorder, so the upper levels every walk traverses sit packed at the
// front of the tree's range and stay cache-hot across consecutive
// predictions.
type Forest struct {
	feature   []int32
	threshold []float64
	left      []int32
	right     []int32
	prob      []float64 // leaf probability of class 1
	roots     []int32   // root node index per tree, in tree order

	numFeatures int
	importance  []float64 // accumulated Gini gain per feature

	// Kernel mirror of the node arrays for the batch predictors
	// (batch.go): one packed record per node (see knode) so a walk step
	// issues a single bounds check and touches one or two cache lines
	// instead of one per array. Derived once at flatten time; prob is
	// shared with the scalar walk.
	knodes []knode
}

// splitmix64 is the SplitMix64 finalizer — the standard way to spread a
// structured seed (here Seed ⊕ treeIndex) into an uncorrelated stream
// seed per tree.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// treeSeed derives tree t's private RNG seed from the forest seed. The
// forest seed is pre-mixed before the tree index is XORed in: a raw
// seed ⊕ t would make (seed=1, t=0) and (seed=0, t=1) share a stream,
// i.e. nearby forest seeds would train overlapping tree sets.
func treeSeed(seed int64, t int) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)) ^ uint64(t)))
}

// TrainForest fits a forest on X (rows = samples) and binary labels y.
// Trees are trained concurrently (cfg.Workers) but the result is a pure
// function of (X, y, cfg minus Workers): tree t draws its bootstrap and
// feature subsets from a sub-RNG seeded by splitmix64(Seed ⊕ t), and
// per-tree importance vectors are merged in tree order after the
// training barrier.
func TrainForest(X [][]float64, y []int, cfg ForestConfig) (*Forest, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("mlearn: bad training set: %d rows, %d labels", len(X), len(y))
	}
	d := len(X[0])
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("mlearn: row %d has %d features, want %d", i, len(row), d)
		}
	}
	for i, label := range y {
		if label != 0 && label != 1 {
			return nil, fmt.Errorf("mlearn: label %d at row %d; want 0/1", label, i)
		}
	}
	cfg = cfg.Defaults(d)
	nFeat := int(math.Max(1, math.Round(cfg.FeatureFrac*float64(d))))

	// Resolve the column path. Both builders grow identical trees from
	// identical RNG streams; the choice is purely a memory/speed
	// trade-off (see sparse.go).
	sparse := false
	switch cfg.Columns {
	case ColumnsSparse:
		sparse = true
	case ColumnsAuto:
		sparse = autoSparse(X)
	}

	type treeOut struct {
		tr  tree
		imp []float64
	}
	var trainTree func(t int, rng *rand.Rand) (tree, []float64)
	if sparse {
		scs := newSparseColset(X)
		trainTree = func(t int, rng *rand.Rand) (tree, []float64) {
			b := getSparseBuilder(scs, y, cfg, nFeat)
			tr, imp := b.train(rng)
			putSparseBuilder(b)
			return tr, imp
		}
	} else {
		cs := newColset(X)
		trainTree = func(t int, rng *rand.Rand) (tree, []float64) {
			b := getTreeBuilder(cs, y, cfg, nFeat)
			tr, imp := b.train(rng)
			putTreeBuilder(b)
			return tr, imp
		}
	}
	outs := parallel.Map(parallel.Resolve(cfg.Workers), cfg.NumTrees, func(t int) treeOut {
		rng := rand.New(rand.NewSource(treeSeed(cfg.Seed, t)))
		tr, imp := trainTree(t, rng)
		return treeOut{tr, imp}
	})

	f := &Forest{numFeatures: d, importance: make([]float64, d)}
	total := 0
	for _, o := range outs {
		total += len(o.tr.feature)
	}
	f.feature = make([]int32, 0, total)
	f.threshold = make([]float64, 0, total)
	f.left = make([]int32, 0, total)
	f.right = make([]int32, 0, total)
	f.prob = make([]float64, 0, total)
	f.roots = make([]int32, 0, len(outs))
	for _, o := range outs {
		// Rebase the tree's local child indices onto the flat arrays.
		base := int32(len(f.feature))
		f.roots = append(f.roots, base)
		f.feature = append(f.feature, o.tr.feature...)
		f.threshold = append(f.threshold, o.tr.threshold...)
		f.prob = append(f.prob, o.tr.prob...)
		for i := range o.tr.left {
			f.left = append(f.left, o.tr.left[i]+base)
			f.right = append(f.right, o.tr.right[i]+base)
		}
		// Importances merge serially in tree order: float addition is
		// not associative, so a scheduling-dependent order would break
		// worker-count invariance.
		for j, v := range o.imp {
			f.importance[j] += v
		}
	}
	f.buildKernel()
	return f, nil
}

// knode is the batch kernel's packed node: split value, both children
// in one word (left in the low half, right in the high half — the pair
// loads as soon as the node index is known, before the comparison
// resolves), and the split feature (negative marks a leaf). One knode
// is 1–2 cache lines and one bounds check per walk step, versus four
// separate node-array loads on the scalar path.
type knode struct {
	val   float64
	child uint64
	feat  int32
}

// buildKernel derives the batch-predictor mirror of the node arrays:
// one packed knode per node, leaves marked by a negative feature (their
// children self-loop as a safety net, so even a walk that ignores the
// sentinel stays in bounds).
func (f *Forest) buildKernel() {
	n := len(f.feature)
	f.knodes = make([]knode, n)
	for i := 0; i < n; i++ {
		if f.feature[i] >= 0 {
			f.knodes[i] = knode{
				val:   f.threshold[i],
				child: uint64(uint32(f.left[i])) | uint64(uint32(f.right[i]))<<32,
				feat:  f.feature[i],
			}
		} else {
			f.knodes[i] = knode{
				child: uint64(uint32(i)) | uint64(uint32(i))<<32,
				feat:  -1,
			}
		}
	}
}

// Importances returns the per-feature Gini importance, normalized to
// sum to 1 (all zeros when the forest never split).
func (f *Forest) Importances() []float64 {
	out := make([]float64, len(f.importance))
	total := 0.0
	for _, v := range f.importance {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range f.importance {
		out[i] = v / total
	}
	return out
}

// predictTree walks one tree (by root node index) for a single vector.
func (f *Forest) predictTree(root int32, x []float64) float64 {
	i := root
	for f.feature[i] >= 0 {
		if x[f.feature[i]] <= f.threshold[i] {
			i = f.left[i]
		} else {
			i = f.right[i]
		}
	}
	return f.prob[i]
}

// PredictProba returns the forest-averaged probability of class 1.
func (f *Forest) PredictProba(x []float64) float64 {
	if len(x) != f.numFeatures {
		return math.NaN()
	}
	sum := 0.0
	for _, root := range f.roots {
		sum += f.predictTree(root, x)
	}
	return sum / float64(len(f.roots))
}

// PredictProbaAtLeast evaluates trees until the forest-averaged
// probability of class 1 either is fully determined or provably cannot
// reach threshold. When the probability clears the threshold it is
// returned exactly (every tree evaluated, identical to PredictProba);
// otherwise ok=false after however many trees settled it — each tree
// emits a probability in [0, 1], so once the partial sum plus the
// remaining tree count falls below threshold·len(trees) no suffix of
// evaluations can recover. Candidate-filtering hot paths that discard
// below-threshold pairs use this to skip most of the ensemble on clear
// rejects.
func (f *Forest) PredictProbaAtLeast(x []float64, threshold float64) (p float64, ok bool) {
	if len(x) != f.numFeatures {
		return math.NaN(), false
	}
	n := len(f.roots)
	need := threshold * float64(n)
	sum := 0.0
	for i, root := range f.roots {
		sum += f.predictTree(root, x)
		if sum+float64(n-1-i) < need {
			return 0, false
		}
	}
	p = sum / float64(n)
	return p, p >= threshold
}

// Predict returns the hard class under a 0.5 threshold.
func (f *Forest) Predict(x []float64) int {
	if f.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.roots) }

// NumFeatures returns the trained dimensionality.
func (f *Forest) NumFeatures() int { return f.numFeatures }

// NumNodes returns the total node count across all trees.
func (f *Forest) NumNodes() int { return len(f.feature) }
