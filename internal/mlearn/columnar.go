package mlearn

import (
	"math/rand"
	"sort"
	"sync"
)

// The columnar training core. The old trainer re-sorted every sampled
// feature at every node — O(features · n log n) per node, with a fresh
// (value, label) slice allocated each time. Here the training matrix is
// flattened once per forest into column-major storage plus one argsort
// per feature, and each tree derives its own presorted bootstrap index
// arrays from those base orders in O(d·n). From then on tree growth is
// rank-ordered: a node owns one contiguous range [lo, hi) of every
// per-feature index array, its best-split search is a single O(n) scan
// per candidate feature, and committing a split stably partitions each
// feature's range in place (which preserves sortedness), so no node
// ever sorts or allocates.

// colset is the per-forest columnar view of the training matrix: the
// feature columns plus a base argsort per feature, both computed once
// and shared read-only by every tree builder.
type colset struct {
	n, d int
	cols [][]float64 // cols[f][i] == X[i][f]
	base [][]int32   // base[f]: row indices sorted ascending by cols[f]
}

func newColset(X [][]float64) *colset {
	n, d := len(X), len(X[0])
	cs := &colset{n: n, d: d,
		cols: make([][]float64, d), base: make([][]int32, d)}
	flat := make([]float64, n*d) // one backing array for all columns
	idx := make([]int32, n*d)
	for f := 0; f < d; f++ {
		col := flat[f*n : (f+1)*n : (f+1)*n]
		for i, row := range X {
			col[i] = row[f]
		}
		cs.cols[f] = col
		ord := idx[f*n : (f+1)*n : (f+1)*n]
		for i := range ord {
			ord[i] = int32(i)
		}
		sort.Slice(ord, func(a, b int) bool { return col[ord[a]] < col[ord[b]] })
		cs.base[f] = ord
	}
	return cs
}

// tree is one trained tree in local structure-of-arrays form; child
// indices are tree-local until TrainForest rebases them into the flat
// forest arrays. Leaves have feature == -1.
type tree struct {
	feature   []int32
	threshold []float64
	left      []int32
	right     []int32
	prob      []float64
}

func (t *tree) addNode() int32 {
	i := int32(len(t.feature))
	t.feature = append(t.feature, -1)
	t.threshold = append(t.threshold, 0)
	t.left = append(t.left, 0)
	t.right = append(t.right, 0)
	t.prob = append(t.prob, 0)
	return i
}

// treeBuilder grows one tree. All scratch (bootstrap counts, the d
// presorted index arrays, the partition buffer, the feature-draw pool)
// is allocated once and recycled through builderPool, so growing a tree
// performs no per-node allocation beyond the node arrays themselves.
type treeBuilder struct {
	cs    *colset
	y     []int
	cfg   ForestConfig
	nFeat int
	rng   *rand.Rand

	counts   []int32   // bootstrap multiplicity per row
	idx      [][]int32 // idx[f]: sampled rows sorted by feature f, with multiplicity
	idxFlat  []int32   // backing array for idx
	scratch  []int32   // stable-partition spill buffer
	featPool []int     // 0..d-1, permuted in place by sampleFeatures
	imp      []float64 // this tree's Gini-gain accumulator
	tr       tree
}

// builderPool recycles treeBuilder scratch across trees and forests.
// Builders are only reusable for matching (n, d) shapes; mismatches
// fall through to a fresh allocation.
var builderPool sync.Pool

func getTreeBuilder(cs *colset, y []int, cfg ForestConfig, nFeat int) *treeBuilder {
	if v := builderPool.Get(); v != nil {
		b := v.(*treeBuilder)
		if b.cs.n == cs.n && b.cs.d == cs.d {
			b.cs, b.y, b.cfg, b.nFeat = cs, y, cfg, nFeat
			return b
		}
	}
	b := &treeBuilder{cs: cs, y: y, cfg: cfg, nFeat: nFeat,
		counts:   make([]int32, cs.n),
		idx:      make([][]int32, cs.d),
		idxFlat:  make([]int32, cs.n*cs.d),
		scratch:  make([]int32, cs.n),
		featPool: make([]int, cs.d),
		imp:      make([]float64, cs.d),
	}
	for f := 0; f < cs.d; f++ {
		b.idx[f] = b.idxFlat[f*cs.n : (f+1)*cs.n : (f+1)*cs.n]
	}
	return b
}

func putTreeBuilder(b *treeBuilder) {
	b.y = nil
	b.tr = tree{}
	builderPool.Put(b)
}

// train bootstraps a sample from rng and grows the tree, returning it
// with a copy of the per-feature importance gains it accrued.
func (b *treeBuilder) train(rng *rand.Rand) (tree, []float64) {
	n := b.cs.n
	for i := range b.counts {
		b.counts[i] = 0
	}
	pos := 0
	for i := 0; i < n; i++ {
		r := rng.Intn(n)
		b.counts[r]++
		pos += b.y[r]
	}
	return b.growFrom(b.counts, pos, rng)
}

// growFrom grows one tree over the given sample multiset (counts[row] =
// multiplicity, pos = positive labels in the multiset), drawing feature
// subsets from rng. Split out of train so tests can exercise the
// builder on an exact sample without bootstrap randomness.
func (b *treeBuilder) growFrom(counts []int32, pos int, rng *rand.Rand) (tree, []float64) {
	b.rng = rng
	m := 0
	for _, c := range counts {
		m += int(c)
	}
	b.buildIndexes(counts)
	for f := range b.featPool {
		b.featPool[f] = f
	}
	for i := range b.imp {
		b.imp[i] = 0
	}
	b.tr = tree{}
	b.grow(0, m, pos, 0)
	imp := make([]float64, len(b.imp))
	copy(imp, b.imp)
	return b.tr, imp
}

// buildIndexes derives the tree's per-feature presorted sample arrays
// from the forest-level argsorts: walking base[f] in rank order and
// emitting each row counts[row] times yields the bootstrap multiset
// sorted by feature f, in O(n) per feature.
func (b *treeBuilder) buildIndexes(counts []int32) {
	for f := 0; f < b.cs.d; f++ {
		out := b.idx[f][:0]
		for _, row := range b.cs.base[f] {
			for c := counts[row]; c > 0; c-- {
				out = append(out, row)
			}
		}
		b.idx[f] = out
	}
}

// grow builds the subtree over sample range [lo, hi) (pos = positive
// labels inside it) and returns its local node index.
func (b *treeBuilder) grow(lo, hi, pos, depth int) int32 {
	n := hi - lo
	me := b.tr.addNode()
	b.tr.prob[me] = float64(pos) / float64(n)

	if depth >= b.cfg.MaxDepth || n < 2*b.cfg.MinLeaf || pos == 0 || pos == n {
		return me
	}
	feat, thr, nLeft, leftPos, gain, ok := b.bestSplit(lo, hi, pos)
	if !ok {
		return me
	}
	if nLeft < b.cfg.MinLeaf || n-nLeft < b.cfg.MinLeaf {
		// Split rejected: the node stays a leaf and must accrue no
		// importance (accruing before this check was the historical
		// inflation bug).
		return me
	}
	b.imp[feat] += gain * float64(n)
	b.partition(feat, thr, lo, hi)
	mid := lo + nLeft
	l := b.grow(lo, mid, leftPos, depth+1)
	r := b.grow(mid, hi, pos-leftPos, depth+1)
	b.tr.feature[me] = int32(feat)
	b.tr.threshold[me] = thr
	b.tr.left[me] = l
	b.tr.right[me] = r
	return me
}

// sampleFeatures draws nFeat distinct features by partial Fisher–Yates
// over the persistent pool — no d-length permutation allocated per node
// (the old rng.Perm(d)[:nFeat]). The pool's residual order carries over
// between nodes, which is fine: each draw is uniform over the remaining
// elements regardless of the starting permutation, and the sequence is
// a pure function of the tree's RNG stream.
func (b *treeBuilder) sampleFeatures() []int {
	return drawFeatures(b.featPool, b.nFeat, b.rng)
}

// drawFeatures is the partial Fisher–Yates draw shared by the dense
// and sparse builders — one implementation so both consume the RNG
// stream identically, a precondition of their byte-identical-forest
// contract.
func drawFeatures(p []int, nFeat int, rng *rand.Rand) []int {
	for j := 0; j < nFeat; j++ {
		k := j + rng.Intn(len(p)-j)
		p[j], p[k] = p[k], p[j]
	}
	return p[:nFeat]
}

// bestSplit finds the Gini-optimal (feature, threshold) among a random
// feature subset by scanning each feature's presorted range once:
// O(n) per candidate feature, no sorting, no allocation. It returns the
// chosen split's left-side size and positive count (known exactly from
// the rank scan) so grow can check MinLeaf and seed the children
// without re-counting.
func (b *treeBuilder) bestSplit(lo, hi, pos int) (feature int, threshold float64, nLeft, leftPosOut int, gain float64, ok bool) {
	feats := b.sampleFeatures()
	n := float64(hi - lo)
	p := float64(pos) / n
	parentGini := 2 * p * (1 - p)
	bestGain := 0.0

	for _, f := range feats {
		col := b.cs.cols[f]
		rank := b.idx[f][lo:hi]
		leftPos, leftN := 0, 0
		for k := 0; k < len(rank)-1; k++ {
			leftPos += b.y[rank[k]]
			leftN++
			v := col[rank[k]]
			if v == col[rank[k+1]] {
				continue // cannot split between equal values
			}
			rightPos := pos - leftPos
			rightN := len(rank) - leftN
			pl := float64(leftPos) / float64(leftN)
			pr := float64(rightPos) / float64(rightN)
			gini := (float64(leftN)*2*pl*(1-pl) + float64(rightN)*2*pr*(1-pr)) / n
			if g := parentGini - gini; g > bestGain {
				bestGain = g
				feature = f
				threshold = (v + col[rank[k+1]]) / 2
				nLeft, leftPosOut = leftN, leftPos
				ok = true
			}
		}
	}
	return feature, threshold, nLeft, leftPosOut, bestGain, ok
}

// partition commits a split: every feature's index range [lo, hi) is
// stably partitioned in place by the split predicate, which keeps each
// range sorted by its own feature — the invariant that lets children
// split again without sorting. One spill buffer serves all features.
func (b *treeBuilder) partition(splitFeat int, thr float64, lo, hi int) {
	sc := b.cs.cols[splitFeat]
	for f := 0; f < b.cs.d; f++ {
		s := b.idx[f][lo:hi]
		w, nr := 0, 0
		for _, row := range s {
			if sc[row] <= thr {
				s[w] = row
				w++
			} else {
				b.scratch[nr] = row
				nr++
			}
		}
		copy(s[w:], b.scratch[:nr])
	}
}
