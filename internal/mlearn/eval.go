package mlearn

import (
	"fmt"
	"math/rand"
)

// Shared binary-classification evaluation: confusion counts with the
// derived metrics, a deterministic stratified train/test split, and a
// forest evaluator. Both ML workloads report through this module —
// the pair-linking task (fpstalker.EvalResult embeds Confusion) and
// the script-detection task (cmd/fpscriptdet, bench-scripts) — so
// "precision" means the same arithmetic everywhere.

// Confusion is a binary confusion matrix: class 1 is "positive".
type Confusion struct {
	TP int // predicted 1, truth 1
	FP int // predicted 1, truth 0
	TN int // predicted 0, truth 0
	FN int // predicted 0, truth 1
}

// Observe counts one (truth, predicted) outcome.
func (c *Confusion) Observe(truth, predicted int) {
	switch {
	case truth == 1 && predicted == 1:
		c.TP++
	case truth == 1:
		c.FN++
	case predicted == 1:
		c.FP++
	default:
		c.TN++
	}
}

// Total is the number of observed outcomes.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Precision is TP / (TP + FP), 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP / (TP + FN), 0 when no positives exist.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy is the fraction of correct predictions, 0 on no data.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// StratifiedSplit partitions row indices 0..len(y)-1 into a train and
// a test set, drawing testFrac of each class (rounded to nearest, but
// never the whole of a class that has at least two members) so the
// class balance survives the split. The split is a pure function of
// (y, testFrac, seed): each class's indices are shuffled by a seeded
// RNG and both returned sets are in ascending row order.
func StratifiedSplit(y []int, testFrac float64, seed int64) (train, test []int, err error) {
	if testFrac < 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("mlearn: test fraction %v outside [0, 1)", testFrac)
	}
	var class0, class1 []int
	for i, label := range y {
		if label == 1 {
			class1 = append(class1, i)
		} else if label == 0 {
			class0 = append(class0, i)
		} else {
			return nil, nil, fmt.Errorf("mlearn: label %d at row %d; want 0/1", label, i)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	inTest := make([]bool, len(y))
	// Class order is fixed (0 then 1) so the RNG stream — and hence the
	// split — never depends on input ordering quirks.
	for _, class := range [][]int{class0, class1} {
		idx := append([]int(nil), class...)
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		k := int(float64(len(idx))*testFrac + 0.5)
		if k == len(idx) && k > 1 {
			k-- // keep at least one member of a non-trivial class in train
		}
		for _, i := range idx[:k] {
			inTest[i] = true
		}
	}
	for i := range y {
		if inTest[i] {
			test = append(test, i)
		} else {
			train = append(train, i)
		}
	}
	return train, test, nil
}

// evalBlock sizes EvaluateForest's batch-kernel calls — the same
// block shape the serving paths use, so evaluation exercises the
// production predictor rather than a one-row-at-a-time loop.
const evalBlock = 256

// EvaluateForest scores the rows of X selected by idx (every row when
// idx is nil) against labels y under the given probability threshold
// and returns the confusion counts. Predictions run through the batch
// kernel in evalBlock-row blocks; the result is identical to calling
// PredictProba per row.
func EvaluateForest(f *Forest, X [][]float64, y []int, idx []int, threshold float64) (Confusion, error) {
	var c Confusion
	if len(X) != len(y) {
		return c, fmt.Errorf("mlearn: %d rows but %d labels", len(X), len(y))
	}
	if idx == nil {
		idx = make([]int, len(X))
		for i := range idx {
			idx[i] = i
		}
	}
	d := f.NumFeatures()
	xs := make([]float64, 0, evalBlock*d)
	probs := make([]float64, evalBlock)
	for lo := 0; lo < len(idx); lo += evalBlock {
		hi := min(lo+evalBlock, len(idx))
		xs = xs[:0]
		for _, row := range idx[lo:hi] {
			if row < 0 || row >= len(X) {
				return c, fmt.Errorf("mlearn: eval index %d outside %d rows", row, len(X))
			}
			if len(X[row]) != d {
				return c, fmt.Errorf("mlearn: row %d has %d features, want %d", row, len(X[row]), d)
			}
			xs = append(xs, X[row]...)
		}
		out := probs[:hi-lo]
		f.PredictProbaBatch(xs, out)
		for i, p := range out {
			pred := 0
			if p >= threshold {
				pred = 1
			}
			c.Observe(y[idx[lo+i]], pred)
		}
	}
	return c, nil
}
