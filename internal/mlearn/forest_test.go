package mlearn

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// linearlySeparable builds a 2-feature dataset split by x0 + x1 > 1.
func linearlySeparable(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a, b := rng.Float64(), rng.Float64()
		X[i] = []float64{a, b}
		if a+b > 1 {
			y[i] = 1
		}
	}
	return X, y
}

// xorData builds the classic XOR pattern a linear model cannot learn
// but trees can.
func xorData(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a, b := rng.Float64(), rng.Float64()
		X[i] = []float64{a, b}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	return X, y
}

func accuracy(f *Forest, X [][]float64, y []int) float64 {
	hit := 0
	for i, x := range X {
		if f.Predict(x) == y[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(X))
}

func TestTrainErrors(t *testing.T) {
	if _, err := TrainForest(nil, nil, ForestConfig{}); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := TrainForest([][]float64{{1}}, []int{2}, ForestConfig{}); err == nil {
		t.Fatal("non-binary label accepted")
	}
	if _, err := TrainForest([][]float64{{1, 2}, {1}}, []int{0, 1}, ForestConfig{}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := TrainForest([][]float64{{1}}, []int{0, 1}, ForestConfig{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestLearnsLinearlySeparable(t *testing.T) {
	X, y := linearlySeparable(600, 1)
	f, err := TrainForest(X, y, ForestConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	Xt, yt := linearlySeparable(300, 2)
	if acc := accuracy(f, Xt, yt); acc < 0.9 {
		t.Fatalf("test accuracy %.2f < 0.9", acc)
	}
}

func TestLearnsXOR(t *testing.T) {
	X, y := xorData(800, 3)
	f, err := TrainForest(X, y, ForestConfig{Seed: 3, NumTrees: 40})
	if err != nil {
		t.Fatal(err)
	}
	Xt, yt := xorData(300, 4)
	if acc := accuracy(f, Xt, yt); acc < 0.85 {
		t.Fatalf("XOR accuracy %.2f < 0.85", acc)
	}
}

func TestDeterministicTraining(t *testing.T) {
	X, y := linearlySeparable(200, 5)
	f1, _ := TrainForest(X, y, ForestConfig{Seed: 7})
	f2, _ := TrainForest(X, y, ForestConfig{Seed: 7})
	for i := 0; i < 50; i++ {
		x := []float64{float64(i) / 50, float64(50-i) / 50}
		if f1.PredictProba(x) != f2.PredictProba(x) {
			t.Fatal("same seed gave different forests")
		}
	}
	f3, _ := TrainForest(X, y, ForestConfig{Seed: 8})
	diff := false
	for i := 0; i < 50 && !diff; i++ {
		x := []float64{float64(i) / 50, 0.3}
		if f1.PredictProba(x) != f3.PredictProba(x) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds gave identical forests (suspicious)")
	}
}

func TestPureClassShortcut(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	f, err := TrainForest(X, y, ForestConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p := f.PredictProba([]float64{2}); p != 1 {
		t.Fatalf("pure-positive forest predicts %v", p)
	}
}

func TestPredictDimensionMismatch(t *testing.T) {
	X, y := linearlySeparable(100, 9)
	f, _ := TrainForest(X, y, ForestConfig{Seed: 1})
	if !math.IsNaN(f.PredictProba([]float64{1})) {
		t.Fatal("dimension mismatch not flagged")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := ForestConfig{}.Defaults(16)
	if c.NumTrees != 30 || c.MaxDepth != 12 || c.MinLeaf != 2 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.FeatureFrac != 0.25 { // sqrt(16)/16
		t.Fatalf("feature frac = %v", c.FeatureFrac)
	}
	// Explicit values survive.
	c2 := ForestConfig{NumTrees: 5, MaxDepth: 3, MinLeaf: 10, FeatureFrac: 1}.Defaults(4)
	if c2.NumTrees != 5 || c2.MaxDepth != 3 || c2.MinLeaf != 10 || c2.FeatureFrac != 1 {
		t.Fatalf("explicit config clobbered: %+v", c2)
	}
	// The negative sentinels resolve to "no cap": zero kept meaning
	// "default", so unlimited depth / all features were unrequestable
	// before the sentinels existed.
	c3 := ForestConfig{MaxDepth: Unlimited, FeatureFrac: Unlimited}.Defaults(16)
	if c3.MaxDepth != maxDepthUnlimited {
		t.Fatalf("MaxDepth sentinel resolved to %d", c3.MaxDepth)
	}
	if c3.FeatureFrac != 1 {
		t.Fatalf("FeatureFrac sentinel resolved to %v", c3.FeatureFrac)
	}
}

// TestZeroConfigBackCompat pins the sentinel change's back-compat
// contract: a zero-value config must keep training the exact forest it
// always did — byte-identical to one trained with every historical
// default written out explicitly.
func TestZeroConfigBackCompat(t *testing.T) {
	X, y := xorData(400, 21)
	zero, err := TrainForest(X, y, ForestConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	d := float64(len(X[0]))
	explicit, err := TrainForest(X, y, ForestConfig{
		Seed: 21, NumTrees: 30, MaxDepth: 12, MinLeaf: 2,
		FeatureFrac: math.Sqrt(d) / d,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zero, explicit) {
		t.Fatal("zero-value config no longer trains the historical default forest")
	}
}

// TestUnlimitedDepth: with the depth cap removed (and MinLeaf 1) the
// forest can grow every tree to purity, which a capped config on the
// same data cannot. XOR at depth 1 is the classic can't-learn shape.
func TestUnlimitedDepth(t *testing.T) {
	X, y := xorData(300, 23)
	deep, err := TrainForest(X, y, ForestConfig{Seed: 23, MaxDepth: Unlimited, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := TrainForest(X, y, ForestConfig{Seed: 23, MaxDepth: 1, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a := accuracy(deep, X, y); a < 0.99 {
		t.Fatalf("unlimited-depth training accuracy %.3f, want ~1 (trees should reach purity)", a)
	}
	if a := accuracy(shallow, X, y); a > 0.9 {
		t.Fatalf("depth-1 forest accuracy %.3f on XOR — suspiciously high", a)
	}
}

// TestAllFeaturesSentinel: FeatureFrac -1 must behave exactly like an
// explicit 1.0 (every feature tried at every split).
func TestAllFeaturesSentinel(t *testing.T) {
	X, y := xorData(300, 25)
	all, err := TrainForest(X, y, ForestConfig{Seed: 25, FeatureFrac: Unlimited})
	if err != nil {
		t.Fatal(err)
	}
	one, err := TrainForest(X, y, ForestConfig{Seed: 25, FeatureFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all, one) {
		t.Fatal("FeatureFrac sentinel and explicit 1.0 trained different forests")
	}
}

func TestNumTrees(t *testing.T) {
	X, y := linearlySeparable(100, 11)
	f, _ := TrainForest(X, y, ForestConfig{Seed: 1, NumTrees: 7})
	if f.NumTrees() != 7 {
		t.Fatalf("NumTrees = %d", f.NumTrees())
	}
}

// Property: probabilities are always within [0, 1].
func TestProbaRangeProperty(t *testing.T) {
	X, y := xorData(300, 13)
	f, _ := TrainForest(X, y, ForestConfig{Seed: 13})
	fn := func(a, b uint8) bool {
		p := f.PredictProba([]float64{float64(a) / 255, float64(b) / 255})
		return p >= 0 && p <= 1
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a forest trained on constant features predicts the base
// rate everywhere.
func TestConstantFeatureProperty(t *testing.T) {
	X := make([][]float64, 100)
	y := make([]int, 100)
	for i := range X {
		X[i] = []float64{1.0}
		if i%4 == 0 {
			y[i] = 1
		}
	}
	f, err := TrainForest(X, y, ForestConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := f.PredictProba([]float64{1.0})
	if p < 0.1 || p > 0.45 {
		t.Fatalf("base-rate prediction %v far from 0.25", p)
	}
}

func BenchmarkTrain1K(b *testing.B) {
	X, y := xorData(1000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TrainForest(X, y, ForestConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	X, y := xorData(1000, 1)
	f, _ := TrainForest(X, y, ForestConfig{Seed: 1})
	x := []float64{0.3, 0.7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictProba(x)
	}
}

func TestImportancesIdentifyInformativeFeature(t *testing.T) {
	// Feature 0 carries all the signal; feature 1 is noise.
	rng := rand.New(rand.NewSource(21))
	X := make([][]float64, 500)
	y := make([]int, 500)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64()}
		if X[i][0] > 0.5 {
			y[i] = 1
		}
	}
	f, err := TrainForest(X, y, ForestConfig{Seed: 21, FeatureFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	imp := f.Importances()
	if len(imp) != 2 {
		t.Fatalf("importances = %v", imp)
	}
	if imp[0] < 0.8 {
		t.Errorf("informative feature importance = %.2f, want > 0.8 (noise: %.2f)", imp[0], imp[1])
	}
	sum := imp[0] + imp[1]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("importances sum to %v", sum)
	}
}

func TestImportancesDegenerate(t *testing.T) {
	// A pure-class forest never splits: all-zero importances.
	f, err := TrainForest([][]float64{{1}, {2}}, []int{1, 1}, ForestConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f.Importances() {
		if v != 0 {
			t.Fatalf("importances = %v, want zeros", f.Importances())
		}
	}
}

func TestPredictProbaAtLeastAgrees(t *testing.T) {
	// The early-exit path must be a pure optimization: above the
	// threshold it returns exactly PredictProba, below it only the
	// accept/reject verdict may be short-circuited.
	X, y := linearlySeparable(400, 7)
	f, err := TrainForest(X, y, ForestConfig{Seed: 7, NumTrees: 15})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for _, threshold := range []float64{0, 0.3, 0.5, 0.9} {
		for i := 0; i < 500; i++ {
			x := []float64{rng.Float64() * 1.5, rng.Float64() * 1.5}
			want := f.PredictProba(x)
			p, ok := f.PredictProbaAtLeast(x, threshold)
			if ok != (want >= threshold) {
				t.Fatalf("threshold %v, x %v: ok=%v but PredictProba=%v", threshold, x, ok, want)
			}
			if ok && p != want {
				t.Fatalf("threshold %v, x %v: p=%v, want exact %v", threshold, x, p, want)
			}
		}
	}
	if _, ok := f.PredictProbaAtLeast([]float64{1}, 0.5); ok {
		t.Fatal("dimension mismatch must not report ok")
	}
}
