package mlearn

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 2, TN: 10}
	if p := c.Precision(); p != 0.8 {
		t.Fatalf("precision = %v", p)
	}
	if r := c.Recall(); r != 0.8 {
		t.Fatalf("recall = %v", r)
	}
	if f := c.F1(); f < 0.8-1e-12 || f > 0.8+1e-12 {
		t.Fatalf("f1 = %v", f)
	}
	if a := c.Accuracy(); a != 18.0/22 {
		t.Fatalf("accuracy = %v", a)
	}
	if tot := c.Total(); tot != 22 {
		t.Fatalf("total = %v", tot)
	}
	var zero Confusion
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 || zero.Accuracy() != 0 {
		t.Fatal("zero confusion must yield zero metrics, not NaN")
	}
}

func TestConfusionObserve(t *testing.T) {
	var c Confusion
	c.Observe(1, 1)
	c.Observe(1, 0)
	c.Observe(0, 1)
	c.Observe(0, 0)
	if c != (Confusion{TP: 1, FN: 1, FP: 1, TN: 1}) {
		t.Fatalf("counts = %+v", c)
	}
}

// TestStratifiedSplit checks the split is disjoint, exhaustive,
// class-balanced to the requested fraction, and a pure function of
// (y, frac, seed).
func TestStratifiedSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	y := make([]int, 1000)
	for i := range y {
		if rng.Float64() < 0.2 {
			y[i] = 1
		}
	}
	train, test, err := StratifiedSplit(y, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(train)+len(test) != len(y) {
		t.Fatalf("split sizes %d + %d != %d", len(train), len(test), len(y))
	}
	seen := make([]bool, len(y))
	for _, i := range append(append([]int(nil), train...), test...) {
		if seen[i] {
			t.Fatalf("row %d appears twice", i)
		}
		seen[i] = true
	}
	pos := func(idx []int) (n int) {
		for _, i := range idx {
			n += y[i]
		}
		return
	}
	totalPos := pos(test) + pos(train)
	gotFrac := float64(pos(test)) / float64(totalPos)
	if gotFrac < 0.2 || gotFrac > 0.3 {
		t.Fatalf("test set holds %.2f of positives, want ~0.25", gotFrac)
	}
	// Deterministic: same inputs, same split.
	train2, test2, err := StratifiedSplit(y, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(train, train2) || !reflect.DeepEqual(test, test2) {
		t.Fatal("split not deterministic for a fixed seed")
	}
	// A different seed reshuffles.
	_, test3, err := StratifiedSplit(y, 0.25, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(test, test3) {
		t.Fatal("different seeds produced identical splits")
	}
}

func TestStratifiedSplitErrors(t *testing.T) {
	if _, _, err := StratifiedSplit([]int{0, 1}, 1.0, 1); err == nil {
		t.Fatal("test fraction 1.0 accepted")
	}
	if _, _, err := StratifiedSplit([]int{0, 2}, 0.5, 1); err == nil {
		t.Fatal("non-binary label accepted")
	}
}

// TestStratifiedSplitKeepsTrainNonEmpty: rounding must never move an
// entire multi-member class into the test set.
func TestStratifiedSplitKeepsTrainNonEmpty(t *testing.T) {
	y := []int{1, 1, 0, 0, 0, 0, 0, 0}
	train, _, err := StratifiedSplit(y, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	hasPos := false
	for _, i := range train {
		if y[i] == 1 {
			hasPos = true
		}
	}
	if !hasPos {
		t.Fatal("train set lost every positive at a high test fraction")
	}
}

// TestEvaluateForest cross-checks the batch-kernel evaluator against a
// scalar reimplementation on a real trained forest.
func TestEvaluateForest(t *testing.T) {
	X, y := xorData(600, 41)
	f, err := TrainForest(X, y, ForestConfig{Seed: 41, NumTrees: 10})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := StratifiedSplit(y, 0.3, 41)
	if err != nil {
		t.Fatal(err)
	}
	_ = train
	got, err := EvaluateForest(f, X, y, test, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var want Confusion
	for _, i := range test {
		pred := 0
		if f.PredictProba(X[i]) >= 0.5 {
			pred = 1
		}
		want.Observe(y[i], pred)
	}
	if got != want {
		t.Fatalf("batch eval %+v != scalar eval %+v", got, want)
	}
	if got.Total() != len(test) {
		t.Fatalf("evaluated %d rows, want %d", got.Total(), len(test))
	}
	// nil idx = every row.
	all, err := EvaluateForest(f, X, y, nil, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if all.Total() != len(X) {
		t.Fatalf("nil idx evaluated %d rows, want %d", all.Total(), len(X))
	}
}

func TestEvaluateForestErrors(t *testing.T) {
	X, y := linearlySeparable(50, 43)
	f, err := TrainForest(X, y, ForestConfig{Seed: 43, NumTrees: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateForest(f, X, y[:10], nil, 0.5); err == nil {
		t.Fatal("row/label mismatch accepted")
	}
	if _, err := EvaluateForest(f, X, y, []int{len(X)}, 0.5); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	bad := append(append([][]float64(nil), X...), []float64{1})
	if _, err := EvaluateForest(f, bad, append(y, 0), []int{len(bad) - 1}, 0.5); err == nil {
		t.Fatal("short row accepted")
	}
}

// TestImportancesProperty: across random shapes and configs (both
// column paths, both sentinels), Importances() either sums to 1 or is
// all zero — never a partial normalization, never negative entries.
func TestImportancesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 40; trial++ {
		n := 20 + rng.Intn(200)
		d := 1 + rng.Intn(40)
		density := 0.05 + rng.Float64()*0.95
		X, y := sparseMatrix(n, d, density, int64(trial))
		cfg := ForestConfig{
			Seed:     int64(trial),
			NumTrees: 1 + rng.Intn(8),
			MaxDepth: rng.Intn(6) - 1, // -1 (unlimited), 0 (default), 1..4
			MinLeaf:  1 + rng.Intn(4),
			Columns:  ColumnPath(rng.Intn(3)),
		}
		if rng.Intn(2) == 0 {
			cfg.FeatureFrac = Unlimited
		}
		f, err := TrainForest(X, y, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		imp := f.Importances()
		if len(imp) != d {
			t.Fatalf("trial %d: %d importances for %d features", trial, len(imp), d)
		}
		sum := 0.0
		allZero := true
		for j, v := range imp {
			if v < 0 {
				t.Fatalf("trial %d: negative importance %v at %d", trial, v, j)
			}
			if v != 0 {
				allZero = false
			}
			sum += v
		}
		if allZero {
			continue // degenerate forest: never split
		}
		if diff := sum - 1; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d (cfg %+v): importances sum to %v, want 1", trial, cfg, sum)
		}
	}
}
