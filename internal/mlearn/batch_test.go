package mlearn

import (
	"math/rand"
	"testing"
)

// randomBlock builds n random d-dimensional vectors, row-major.
func randomBlock(n, d int, rng *rand.Rand) []float64 {
	xs := make([]float64, n*d)
	for i := range xs {
		xs[i] = rng.Float64() * 1.5
	}
	return xs
}

// TestBatchMatchesScalar is the batch kernels' exactness contract:
// PredictProbaBatch must return bit-identical probabilities to the
// scalar PredictProba for every row, and PredictProbaAtLeastBatch must
// return the scalar PredictProbaAtLeast verdict and probability
// exactly, across forests, block sizes and thresholds.
func TestBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	configs := []ForestConfig{
		{Seed: 1, NumTrees: 1},
		{Seed: 2, NumTrees: 15, MaxDepth: 4},
		{Seed: 3, NumTrees: 30},
	}
	for _, cfg := range configs {
		X, y := xorData(400, cfg.Seed)
		f, err := TrainForest(X, y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d := f.NumFeatures()
		for _, n := range []int{1, 3, 255, 256, 257, 1000} {
			xs := randomBlock(n, d, rng)
			out := make([]float64, n)
			f.PredictProbaBatch(xs, out)
			for i := 0; i < n; i++ {
				if want := f.PredictProba(xs[i*d : (i+1)*d]); out[i] != want {
					t.Fatalf("cfg %+v n=%d row %d: batch %v != scalar %v", cfg, n, i, out[i], want)
				}
			}
			probs := make([]float64, n)
			oks := make([]bool, n)
			for _, threshold := range []float64{0, 0.3, 0.5, 0.9, 1} {
				f.PredictProbaAtLeastBatch(xs, threshold, probs, oks)
				for i := 0; i < n; i++ {
					wantP, wantOK := f.PredictProbaAtLeast(xs[i*d:(i+1)*d], threshold)
					if probs[i] != wantP || oks[i] != wantOK {
						t.Fatalf("cfg %+v n=%d thr=%v row %d: batch (%v,%v) != scalar (%v,%v)",
							cfg, n, threshold, i, probs[i], oks[i], wantP, wantOK)
					}
				}
			}
		}
	}
}

// TestBatchDimensionMismatch is the regression test for the kernel
// misuse contract: a block that does not hold exactly len(out) rows is
// a caller bug and must panic. (The kernels historically NaN/false-
// filled the whole output instead, which made a mis-sliced block look
// like a model that rejects every candidate.)
func TestBatchDimensionMismatch(t *testing.T) {
	X, y := linearlySeparable(100, 5)
	f, _ := TrainForest(X, y, ForestConfig{Seed: 5})
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: shape mismatch did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("PredictProbaBatch", func() {
		// 5 floats ≠ 3 rows × 2 features
		f.PredictProbaBatch(make([]float64, 5), make([]float64, 3))
	})
	mustPanic("PredictProbaAtLeastBatch", func() {
		f.PredictProbaAtLeastBatch(make([]float64, 5), 0.5, make([]float64, 3), make([]bool, 3))
	})
	mustPanic("PredictProbaAtLeastBatch probs/oks", func() {
		f.PredictProbaAtLeastBatch(make([]float64, 6), 0.5, make([]float64, 3), make([]bool, 2))
	})
}

// TestBatchEmpty: a zero-row block is a no-op, not a panic.
func TestBatchEmpty(t *testing.T) {
	X, y := linearlySeparable(100, 6)
	f, _ := TrainForest(X, y, ForestConfig{Seed: 6})
	f.PredictProbaBatch(nil, nil)
	f.PredictProbaAtLeastBatch(nil, 0.5, nil, nil)
}

// BenchmarkPredictBatch compares the scalar walk against the batch
// kernel over identical 256-vector blocks. Blocks rotate through a
// pool large enough that the branch predictor cannot memorize tree
// paths across iterations — repeating one block every iteration lets
// it, which flatters the scalar walk in a way no real candidate
// stream does.
func BenchmarkPredictBatch(b *testing.B) {
	X, y := xorData(1000, 1)
	f, _ := TrainForest(X, y, ForestConfig{Seed: 1})
	rng := rand.New(rand.NewSource(2))
	const n = 256
	const blocks = 64
	xs := randomBlock(n*blocks, f.NumFeatures(), rng)
	d := f.NumFeatures()
	out := make([]float64, n)
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			blk := xs[(i%blocks)*n*d : (i%blocks+1)*n*d]
			for j := 0; j < n; j++ {
				out[j] = f.PredictProba(blk[j*d : (j+1)*d])
			}
		}
		b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "predicts/s")
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.PredictProbaBatch(xs[(i%blocks)*n*d:(i%blocks+1)*n*d], out)
		}
		b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "predicts/s")
	})
}

func BenchmarkTrain20K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, d := 20000, 16
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		if row[0]+row[3]+row[13]+0.2*rng.NormFloat64() > 1.5 {
			y[i] = 1
		}
		X[i] = row
	}
	for _, mode := range []struct {
		name    string
		workers int
	}{{"workers-1", 1}, {"workers-ncpu", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := TrainForest(X, y, ForestConfig{Seed: 1, Workers: mode.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
