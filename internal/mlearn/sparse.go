package mlearn

import (
	"math/rand"
	"sort"
	"sync"
)

// The sparse (budgeted) columnar path. The dense builder (columnar.go)
// materializes one presorted rank array per feature per concurrent
// tree builder — O(rows × features) int32 per worker, on top of the
// shared column store and base argsorts. That is the right trade on
// the pair-linking matrix (16 dense features), but it blows up on the
// script-detection workload's wide API-count matrices: thousands of
// mostly-zero columns turn every builder into hundreds of megabytes
// of ranks that are then scanned mostly to walk over zeros.
//
// This builder stores the matrix once as CSC (per-feature row/value
// arrays holding only nonzeros) and keeps per-builder scratch at
// O(rows): a node owns one contiguous range of a single bootstrap row
// array, and each candidate feature's split search gathers that
// node's nonzero values, sorts them, and folds the implicit zero
// block into the scan at its ordered position. Per node per feature
// that costs O(n log n) in the worst case but O(nz log nz) on the
// sparse columns it exists for.
//
// Equivalence contract: the sparse builder grows byte-identical trees
// to the dense builder for every (X, y, cfg). Both consume the same
// RNG stream (same bootstrap draw, drawFeatures), the split search
// evaluates the same boundaries with the same float expressions in
// the same order (gain is a pure function of the sorted
// (value, label) multiset, which both paths agree on), and partition
// preserves the same child multisets. sparse_test.go holds the two
// paths to reflect.DeepEqual across random shapes and configs.

// autoSparseMinFeatures and autoSparseMaxDensity gate ColumnsAuto:
// the sparse path wins when the matrix is wide (per-builder dense
// scratch is rows × features × 4 bytes × workers) and mostly zero
// (the gather-and-sort cost scales with nonzeros).
const (
	autoSparseMinFeatures = 256
	autoSparseMaxDensity  = 0.25
)

// autoSparse decides the ColumnsAuto routing for a validated matrix.
func autoSparse(X [][]float64) bool {
	d := len(X[0])
	if d < autoSparseMinFeatures {
		return false
	}
	nnz := 0
	for _, row := range X {
		for _, v := range row {
			if v != 0 {
				nnz++
			}
		}
	}
	return float64(nnz) <= autoSparseMaxDensity*float64(len(X)*d)
}

// sparseColset is the shared read-only CSC view of the training
// matrix: per feature, the rows with nonzero values (ascending) and
// those values. Memory is O(nonzeros), versus the dense colset's
// O(rows × features) columns plus argsorts.
type sparseColset struct {
	n, d   int
	rowIdx [][]int32   // rowIdx[f]: rows with cols[f] != 0, ascending
	vals   [][]float64 // vals[f][k] == X[rowIdx[f][k]][f]
}

func newSparseColset(X [][]float64) *sparseColset {
	n, d := len(X), len(X[0])
	nnz := make([]int, d)
	total := 0
	for _, row := range X {
		for f, v := range row {
			if v != 0 {
				nnz[f]++
				total++
			}
		}
	}
	sc := &sparseColset{n: n, d: d,
		rowIdx: make([][]int32, d), vals: make([][]float64, d)}
	flatRows := make([]int32, total) // one backing array each
	flatVals := make([]float64, total)
	off := 0
	for f := 0; f < d; f++ {
		sc.rowIdx[f] = flatRows[off : off : off+nnz[f]]
		sc.vals[f] = flatVals[off : off : off+nnz[f]]
		off += nnz[f]
	}
	for i, row := range X {
		for f, v := range row {
			if v != 0 {
				sc.rowIdx[f] = append(sc.rowIdx[f], int32(i))
				sc.vals[f] = append(sc.vals[f], v)
			}
		}
	}
	return sc
}

// at returns X[row][f] by binary search over feature f's nonzeros.
func (s *sparseColset) at(f int, row int32) float64 {
	r := s.rowIdx[f]
	lo, hi := 0, len(r)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r[mid] < row {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r) && r[lo] == row {
		return s.vals[f][lo]
	}
	return 0
}

// valLabel is one gathered nonzero sample of a node for one feature.
type valLabel struct {
	v float64
	y int8
}

// valGroup aggregates one distinct value of a node's samples for one
// feature: its sample count and positive-label count.
type valGroup struct {
	v      float64
	n, pos int32
}

// sparseBuilder grows one tree over the CSC matrix. All scratch is
// O(rows) and recycled through sparsePool; nothing scales with the
// feature count except the shared colset and the feature-draw pool.
type sparseBuilder struct {
	sc    *sparseColset
	y     []int
	cfg   ForestConfig
	nFeat int
	rng   *rand.Rand

	counts   []int32    // bootstrap multiplicity per row
	rows     []int32    // bootstrap multiset, partitioned in place
	scratch  []int32    // stable-partition spill buffer
	pairs    []valLabel // per-(node, feature) nonzero gather
	groups   []valGroup // aggregated distinct-value groups
	featPool []int      // 0..d-1, permuted in place by drawFeatures
	imp      []float64  // this tree's Gini-gain accumulator
	tr       tree
}

// sparsePool recycles sparseBuilder scratch across trees and forests,
// mirroring builderPool for the dense path.
var sparsePool sync.Pool

func getSparseBuilder(sc *sparseColset, y []int, cfg ForestConfig, nFeat int) *sparseBuilder {
	if v := sparsePool.Get(); v != nil {
		b := v.(*sparseBuilder)
		if b.sc.n == sc.n && b.sc.d == sc.d {
			b.sc, b.y, b.cfg, b.nFeat = sc, y, cfg, nFeat
			return b
		}
	}
	return &sparseBuilder{sc: sc, y: y, cfg: cfg, nFeat: nFeat,
		counts:   make([]int32, sc.n),
		rows:     make([]int32, 0, sc.n),
		scratch:  make([]int32, sc.n),
		pairs:    make([]valLabel, 0, sc.n),
		groups:   make([]valGroup, 0, 64),
		featPool: make([]int, sc.d),
		imp:      make([]float64, sc.d),
	}
}

func putSparseBuilder(b *sparseBuilder) {
	b.y = nil
	b.tr = tree{}
	sparsePool.Put(b)
}

// train bootstraps a sample from rng and grows the tree — the same
// draw, in the same RNG order, as treeBuilder.train.
func (b *sparseBuilder) train(rng *rand.Rand) (tree, []float64) {
	n := b.sc.n
	for i := range b.counts {
		b.counts[i] = 0
	}
	pos := 0
	for i := 0; i < n; i++ {
		r := rng.Intn(n)
		b.counts[r]++
		pos += b.y[r]
	}
	return b.growFrom(b.counts, pos, rng)
}

// growFrom grows one tree over the given sample multiset; the sparse
// twin of treeBuilder.growFrom.
func (b *sparseBuilder) growFrom(counts []int32, pos int, rng *rand.Rand) (tree, []float64) {
	b.rng = rng
	rows := b.rows[:0]
	for i, c := range counts {
		for ; c > 0; c-- {
			rows = append(rows, int32(i))
		}
	}
	b.rows = rows
	for f := range b.featPool {
		b.featPool[f] = f
	}
	for i := range b.imp {
		b.imp[i] = 0
	}
	b.tr = tree{}
	b.grow(0, len(rows), pos, 0)
	imp := make([]float64, len(b.imp))
	copy(imp, b.imp)
	return b.tr, imp
}

// grow builds the subtree over sample range [lo, hi) of b.rows; the
// control flow mirrors treeBuilder.grow exactly (same preorder node
// numbering, same stopping rules, same MinLeaf rejection point).
func (b *sparseBuilder) grow(lo, hi, pos, depth int) int32 {
	n := hi - lo
	me := b.tr.addNode()
	b.tr.prob[me] = float64(pos) / float64(n)

	if depth >= b.cfg.MaxDepth || n < 2*b.cfg.MinLeaf || pos == 0 || pos == n {
		return me
	}
	feat, thr, nLeft, leftPos, gain, ok := b.bestSplit(lo, hi, pos)
	if !ok {
		return me
	}
	if nLeft < b.cfg.MinLeaf || n-nLeft < b.cfg.MinLeaf {
		return me
	}
	b.imp[feat] += gain * float64(n)
	b.partition(feat, thr, lo, hi)
	mid := lo + nLeft
	l := b.grow(lo, mid, leftPos, depth+1)
	r := b.grow(mid, hi, pos-leftPos, depth+1)
	b.tr.feature[me] = int32(feat)
	b.tr.threshold[me] = thr
	b.tr.left[me] = l
	b.tr.right[me] = r
	return me
}

// gather collects the node's sample values for feature f as sorted
// distinct-value groups, with the implicit zero block inserted at its
// ordered position (after any negative values). The group sequence is
// exactly the distinct-value boundary structure the dense rank scan
// walks, so both paths evaluate identical candidate thresholds.
func (b *sparseBuilder) gather(f, lo, hi int) []valGroup {
	pairs := b.pairs[:0]
	var zeroN, zeroPos int32
	for _, row := range b.rows[lo:hi] {
		if v := b.sc.at(f, row); v != 0 {
			pairs = append(pairs, valLabel{v, int8(b.y[row])})
		} else {
			zeroN++
			zeroPos += int32(b.y[row])
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	groups := b.groups[:0]
	i := 0
	pendingZero := zeroN > 0
	for i < len(pairs) {
		v := pairs[i].v
		if pendingZero && v > 0 {
			groups = append(groups, valGroup{0, zeroN, zeroPos})
			pendingZero = false
		}
		g := valGroup{v: v}
		for i < len(pairs) && pairs[i].v == v {
			g.n++
			g.pos += int32(pairs[i].y)
			i++
		}
		groups = append(groups, g)
	}
	if pendingZero {
		groups = append(groups, valGroup{0, zeroN, zeroPos})
	}
	b.pairs, b.groups = pairs, groups
	return groups
}

// bestSplit finds the Gini-optimal (feature, threshold) among a
// random feature subset. The gain expression, evaluation order
// (ascending value, strict improvement) and returned left-side counts
// replicate treeBuilder.bestSplit term for term, so the winning split
// — and on ties, the winner's identity — matches the dense path
// bit-for-bit.
func (b *sparseBuilder) bestSplit(lo, hi, pos int) (feature int, threshold float64, nLeft, leftPosOut int, gain float64, ok bool) {
	feats := drawFeatures(b.featPool, b.nFeat, b.rng)
	n := float64(hi - lo)
	p := float64(pos) / n
	parentGini := 2 * p * (1 - p)
	bestGain := 0.0

	for _, f := range feats {
		groups := b.gather(f, lo, hi)
		leftPos, leftN := 0, 0
		for k := 0; k < len(groups)-1; k++ {
			leftPos += int(groups[k].pos)
			leftN += int(groups[k].n)
			rightPos := pos - leftPos
			rightN := (hi - lo) - leftN
			pl := float64(leftPos) / float64(leftN)
			pr := float64(rightPos) / float64(rightN)
			gini := (float64(leftN)*2*pl*(1-pl) + float64(rightN)*2*pr*(1-pr)) / n
			if g := parentGini - gini; g > bestGain {
				bestGain = g
				feature = f
				threshold = (groups[k].v + groups[k+1].v) / 2
				nLeft, leftPosOut = leftN, leftPos
				ok = true
			}
		}
	}
	return feature, threshold, nLeft, leftPosOut, bestGain, ok
}

// partition commits a split: the node's row range is stably
// partitioned in place by the split predicate. Child row *order*
// differs from the dense path (which partitions per-feature rank
// arrays), but each child's sample multiset — the only input to every
// downstream computation here — is identical.
func (b *sparseBuilder) partition(splitFeat int, thr float64, lo, hi int) {
	s := b.rows[lo:hi]
	w, nr := 0, 0
	for _, row := range s {
		if b.sc.at(splitFeat, row) <= thr {
			s[w] = row
			w++
		} else {
			b.scratch[nr] = row
			nr++
		}
	}
	copy(s[w:], b.scratch[:nr])
}
