package mlearn

import "fmt"

// Batch prediction kernels. The scalar predictors pay a function call
// and a slice-header setup per (vector, tree) — on this model family
// that overhead is comparable to the walk itself, because the linker's
// trees reject most candidates after a handful of splits. The kernels
// here walk each row through the whole ensemble inline over the packed
// knode mirror: a block costs one call total instead of one per
// (row, tree), and each step loads one packed record (threshold, both
// children and the split feature in 1–2 cache lines, a single bounds
// check) instead of indexing four node arrays. The child pick stays a
// branch on purpose: split directions on real data are biased, so the
// predictor mostly guesses right and speculation prefetches the
// dependent node load — measured faster here than a branchless
// shift-select, which serializes the walk into a compare→pick→load
// chain. Rows walk in row-major order so each row's feature values
// stay L1-resident across all of its tree walks, exactly like the
// scalar path (a tree-outer order was measured slower: it trades that
// row locality for node locality the preorder layout already
// provides). Both kernels are exact: bit-identical probabilities and
// verdicts to their scalar counterparts, tree-for-tree.

// PredictProbaBatch evaluates the forest over a block of vectors stored
// row-major in xs (len(out) rows of NumFeatures values each) and writes
// the forest-averaged probability of class 1 for row i to out[i].
// Equivalent to calling PredictProba per row. xs must hold exactly
// len(out) rows; a mismatch panics. (The historical kernel NaN-filled
// the whole output instead, which let an off-by-one in a caller's
// block arithmetic masquerade as a model that rejects everything.)
func (f *Forest) PredictProbaBatch(xs []float64, out []float64) {
	n := len(out)
	if len(xs) != n*f.numFeatures {
		panic(fmt.Sprintf("mlearn: PredictProbaBatch shape mismatch: %d values is not %d rows × %d features",
			len(xs), n, f.numFeatures))
	}
	d := f.numFeatures
	knodes := f.knodes
	// Divide (not multiply by a reciprocal): the kernel's contract is
	// bit-identical output to the scalar sum/T.
	T := float64(len(f.roots))
	off := 0
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, root := range f.roots {
			c := root
			nd := &knodes[c]
			for nd.feat >= 0 {
				if xs[off+int(nd.feat)] > nd.val {
					c = int32(uint32(nd.child >> 32))
				} else {
					c = int32(uint32(nd.child))
				}
				nd = &knodes[c]
			}
			sum += f.prob[c]
		}
		out[i] = sum / T
		off += d
	}
}

// PredictProbaAtLeastBatch is the block form of PredictProbaAtLeast:
// probs[i], oks[i] are exactly what the scalar call returns for row i
// of xs, including the scalar early exit — a row stops walking trees
// the moment its partial sum can no longer reach threshold·NumTrees
// (probs 0, ok false). probs and oks must have equal length and xs
// must hold exactly len(probs) rows; either mismatch panics — a
// silent NaN/false fill (the historical behaviour) reads as "every
// candidate rejected" and masks the caller bug that produced it.
func (f *Forest) PredictProbaAtLeastBatch(xs []float64, threshold float64, probs []float64, oks []bool) {
	n := len(probs)
	if len(oks) != n {
		panic("mlearn: PredictProbaAtLeastBatch probs/oks length mismatch")
	}
	if len(xs) != n*f.numFeatures {
		panic(fmt.Sprintf("mlearn: PredictProbaAtLeastBatch shape mismatch: %d values is not %d rows × %d features",
			len(xs), n, f.numFeatures))
	}
	d := f.numFeatures
	T := len(f.roots)
	need := threshold * float64(T)
	knodes := f.knodes
	roots := f.roots
	off := 0
	for i := 0; i < n; i++ {
		sum := 0.0
		alive := true
		for t := 0; t < T; t++ {
			c := roots[t]
			nd := &knodes[c]
			for nd.feat >= 0 {
				if xs[off+int(nd.feat)] > nd.val {
					c = int32(uint32(nd.child >> 32))
				} else {
					c = int32(uint32(nd.child))
				}
				nd = &knodes[c]
			}
			sum += f.prob[c]
			if sum+float64(T-1-t) < need {
				alive = false
				break
			}
		}
		if alive {
			p := sum / float64(T) // divide: bit-identical to the scalar path
			probs[i] = p
			oks[i] = p >= threshold
		} else {
			probs[i] = 0
			oks[i] = false
		}
		off += d
	}
}
