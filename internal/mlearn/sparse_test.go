package mlearn

import (
	"math/rand"
	"reflect"
	"testing"
)

// sparseMatrix builds an n×d matrix with the given nonzero density;
// nonzero values are drawn from a small set (including negatives and
// repeats, so equal-value runs and the zero block's ordered position
// both get exercised) and labels correlate with a handful of columns
// so trees actually split.
func sparseMatrix(n, d int, density float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	vals := []float64{-2, -0.5, 0.5, 1, 1, 2, 3, 5}
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, d)
		sum := 0.0
		for j := range row {
			if rng.Float64() < density {
				row[j] = vals[rng.Intn(len(vals))]
				if j%7 == 0 {
					sum += row[j]
				}
			}
		}
		if sum+0.3*rng.NormFloat64() > 0.5 {
			y[i] = 1
		}
		X[i] = row
	}
	return X, y
}

// TestSparseDenseEquivalence is the sparse path's core contract: for
// every (X, y, cfg), the sparse builder trains a forest byte-identical
// to the dense builder's — same trees, thresholds, probabilities,
// importances. Shapes sweep density (including fully dense, where the
// zero block vanishes), negative values (the zero block sits
// mid-order), feature fractions (shared RNG stream), and the unlimited
// sentinels.
func TestSparseDenseEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		n, d    int
		density float64
		cfg     ForestConfig
	}{
		{"wide-sparse", 300, 64, 0.05, ForestConfig{Seed: 1, NumTrees: 8}},
		{"mid-density", 200, 16, 0.3, ForestConfig{Seed: 2, NumTrees: 6, MaxDepth: 6}},
		{"fully-dense", 150, 8, 1.0, ForestConfig{Seed: 3, NumTrees: 6}},
		{"all-features", 200, 24, 0.1, ForestConfig{Seed: 4, NumTrees: 5, FeatureFrac: Unlimited}},
		{"unlimited-depth", 200, 32, 0.1, ForestConfig{Seed: 5, NumTrees: 5, MaxDepth: Unlimited, MinLeaf: 1}},
		{"min-leaf", 250, 20, 0.15, ForestConfig{Seed: 6, NumTrees: 6, MinLeaf: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			X, y := sparseMatrix(tc.n, tc.d, tc.density, tc.cfg.Seed+100)
			dense := tc.cfg
			dense.Columns = ColumnsDense
			sparse := tc.cfg
			sparse.Columns = ColumnsSparse
			fd, err := TrainForest(X, y, dense)
			if err != nil {
				t.Fatal(err)
			}
			fs, err := TrainForest(X, y, sparse)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fd, fs) {
				t.Fatalf("sparse forest differs from dense (%d vs %d nodes)", fs.NumNodes(), fd.NumNodes())
			}
			if !reflect.DeepEqual(fd.Importances(), fs.Importances()) {
				t.Fatal("sparse importances differ from dense")
			}
		})
	}
}

// TestSparseWorkerInvariance extends the package's determinism
// contract to the sparse path: every worker count produces the same
// forest, and it is the dense path's forest.
func TestSparseWorkerInvariance(t *testing.T) {
	X, y := sparseMatrix(400, 48, 0.08, 31)
	ref, err := TrainForest(X, y, ForestConfig{Seed: 31, NumTrees: 10, Columns: ColumnsSparse, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 0} {
		f, err := TrainForest(X, y, ForestConfig{Seed: 31, NumTrees: 10, Columns: ColumnsSparse, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, f) {
			t.Fatalf("Workers=%d sparse forest differs from Workers=1", workers)
		}
	}
	fd, err := TrainForest(X, y, ForestConfig{Seed: 31, NumTrees: 10, Columns: ColumnsDense, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, fd) {
		t.Fatal("sparse and dense forests diverge")
	}
}

// TestSparseColsetAt pins the CSC lookup against the dense matrix.
func TestSparseColsetAt(t *testing.T) {
	X, _ := sparseMatrix(120, 17, 0.2, 7)
	sc := newSparseColset(X)
	for i, row := range X {
		for f, want := range row {
			if got := sc.at(f, int32(i)); got != want {
				t.Fatalf("at(%d, %d) = %v, want %v", f, i, got, want)
			}
		}
	}
	nnz := 0
	for f := 0; f < sc.d; f++ {
		if len(sc.rowIdx[f]) != len(sc.vals[f]) {
			t.Fatalf("feature %d: %d rows vs %d vals", f, len(sc.rowIdx[f]), len(sc.vals[f]))
		}
		for k := 1; k < len(sc.rowIdx[f]); k++ {
			if sc.rowIdx[f][k-1] >= sc.rowIdx[f][k] {
				t.Fatalf("feature %d rows not strictly ascending at %d", f, k)
			}
		}
		nnz += len(sc.vals[f])
		for _, v := range sc.vals[f] {
			if v == 0 {
				t.Fatalf("feature %d stores an explicit zero", f)
			}
		}
	}
	if nnz == 0 {
		t.Fatal("matrix generated with no nonzeros — test is vacuous")
	}
}

// TestAutoSparseRouting pins the ColumnsAuto heuristic: wide and
// mostly zero routes sparse, everything else stays dense.
func TestAutoSparseRouting(t *testing.T) {
	wide, _ := sparseMatrix(50, 300, 0.05, 1)
	if !autoSparse(wide) {
		t.Fatal("wide sparse matrix not routed to the sparse path")
	}
	narrow, _ := sparseMatrix(50, 16, 0.05, 2)
	if autoSparse(narrow) {
		t.Fatal("narrow matrix routed to the sparse path")
	}
	dense, _ := sparseMatrix(50, 300, 0.9, 3)
	if autoSparse(dense) {
		t.Fatal("dense wide matrix routed to the sparse path")
	}
}
