package fpstalker

import (
	"strconv"
	"time"

	"fpdyn/internal/fingerprint"
)

// The chain-reconstruction protocol: unlike Evaluate, which maintains
// the database with ground-truth identities and scores each query in
// isolation, ChainEvaluate lets the linker maintain its *own* identity
// assignments — exactly how a deployed tracker operates. The original
// FP-Stalker paper reports its results in this form ("average maximum
// tracking duration"); the paper under reproduction argues the metric
// collapses at scale along with F1.

// ChainResult aggregates a chain-reconstruction run.
type ChainResult struct {
	// Chains is the number of identities the linker created.
	Chains int
	// TrueInstances is the number of real instances replayed.
	TrueInstances int

	// AvgTrackingDuration is the mean, over real instances, of the
	// longest continuous correctly-linked span (FP-Stalker's "average
	// maximum tracking duration").
	AvgTrackingDuration time.Duration
	// AvgChainPurity is the mean share of each linker chain occupied by
	// its dominant real instance (1.0 = chains never mix instances).
	AvgChainPurity float64
	// SplitRatio is linker chains per real multi-visit instance — above
	// 1 means instances fragment into several identities.
	SplitRatio float64
}

// ChainEvaluate replays the records through the linker, assigning each
// record to the top candidate (or minting a fresh identity when the
// linker returns none), then scores the resulting chains against the
// true instances. The replay is inherently sequential — each Add
// changes what the next TopK can see — so parallelism lives inside the
// engine's per-query scoring, not across the stream.
func ChainEvaluate(l Linker, records []*fingerprint.Record, instances []int) ChainResult {
	assigned := make([]string, len(records))
	fresh := 0
	for i, rec := range records {
		cands := l.TopK(rec, 1)
		var id string
		if len(cands) > 0 {
			id = cands[0].ID
		} else {
			fresh++
			id = "chain-" + strconv.Itoa(fresh)
		}
		assigned[i] = id
		l.Add(id, rec)
	}
	return scoreChains(records, instances, assigned)
}

func scoreChains(records []*fingerprint.Record, instances []int, assigned []string) ChainResult {
	var res ChainResult

	// Longest correctly-linked span per true instance: the maximal time
	// window over which consecutive visits of the instance kept the
	// same assigned identity.
	type span struct {
		firstSeen time.Time
		spanStart time.Time
		lastTime  time.Time
		lastID    string
		best      time.Duration
		visits    int
	}
	spans := map[int]*span{}
	for i, rec := range records {
		inst := instances[i]
		s := spans[inst]
		if s == nil {
			spans[inst] = &span{firstSeen: rec.Time, spanStart: rec.Time, lastTime: rec.Time, lastID: assigned[i], visits: 1}
			continue
		}
		s.visits++
		if assigned[i] != s.lastID {
			// Chain broke: close the current span.
			if d := s.lastTime.Sub(s.spanStart); d > s.best {
				s.best = d
			}
			s.spanStart = rec.Time
			s.lastID = assigned[i]
		}
		s.lastTime = rec.Time
	}
	var totalDur time.Duration
	multiVisit := 0
	for _, s := range spans {
		if d := s.lastTime.Sub(s.spanStart); d > s.best {
			s.best = d
		}
		totalDur += s.best
		if s.visits > 1 {
			multiVisit++
		}
	}
	res.TrueInstances = len(spans)
	if len(spans) > 0 {
		res.AvgTrackingDuration = totalDur / time.Duration(len(spans))
	}

	// Chain purity: dominant-instance share per linker identity.
	chainInst := map[string]map[int]int{}
	for i := range records {
		m := chainInst[assigned[i]]
		if m == nil {
			m = map[int]int{}
			chainInst[assigned[i]] = m
		}
		m[instances[i]]++
	}
	res.Chains = len(chainInst)
	purity := 0.0
	for _, m := range chainInst {
		total, best := 0, 0
		for _, c := range m {
			total += c
			if c > best {
				best = c
			}
		}
		purity += float64(best) / float64(total)
	}
	if res.Chains > 0 {
		res.AvgChainPurity = purity / float64(res.Chains)
	}
	if multiVisit > 0 {
		res.SplitRatio = float64(res.Chains) / float64(res.TrueInstances)
	}
	return res
}
